package repro

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/core"
)

// millionScenario is the streaming-pipeline showcase: a 1,000,000-request
// video scenario in sketch mode. Before the streaming refactor the
// pipeline materialized the trace and every per-request result twice
// (vanilla + Apparate) — several hundred MB live for 1M requests; the
// streaming pipeline holds the queue, the handlers, and two fixed-size
// sketches regardless of trace length. The time-varying rate schedule
// extends the bound to scheduled arrivals: the scheduled source buffers
// one second of arrivals at a time, so load dynamics add O(peak
// per-second rate), not O(n).
var millionScenario = core.Scenario{
	Model: "resnet18", Workload: "video-0",
	N: 1_000_000, Seed: 1, Metrics: "sketch",
	RateSchedule: "square:60/0.5/2.5",
}

// memGuardScenario scales the guard scenario's request count through
// APPARATE_MEM_N, so CI can push the same bounded-memory claim well
// past 1M requests (the Makefile's mem-smoke runs 10M) without slowing
// the default. The memory bound must hold at ANY n — that is the whole
// claim — so the guard's heap limit below never scales with it.
func memGuardScenario(tb testing.TB) core.Scenario {
	sc := millionScenario
	if env := os.Getenv("APPARATE_MEM_N"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n <= 0 {
			tb.Fatalf("APPARATE_MEM_N=%q: want a positive integer", env)
		}
		sc.N = n
	}
	return sc
}

// BenchmarkStreamingMillion runs the 1M-request scenario end to end.
// Allocation per request stays flat with trace length (see
// BENCH_stream.json for the before/after record at 100k requests).
func BenchmarkStreamingMillion(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.RunScenario(millionScenario)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("streaming 1M: p50 %.2f->%.2fms, p99 %.2f->%.2fms, acc-loss %.4f\n",
				res.Vanilla.P50ms, res.Apparate.P50ms,
				res.Vanilla.P99ms, res.Apparate.P99ms, res.AccDelta)
		}
	}
}

// TestStreamingMillionBoundedMemory is the CI memory-guard smoke test
// (make mem-smoke): it runs the 1M-request sketch scenario while
// sampling the live heap and fails if the peak grows anywhere near what
// a materialized trace would need. The job exports GOMEMLIMIT=256MiB as
// a second line of defense. Gated behind APPARATE_MEM_GUARD so the
// regular `go test ./...` tier stays fast.
func TestStreamingMillionBoundedMemory(t *testing.T) {
	if os.Getenv("APPARATE_MEM_GUARD") == "" {
		t.Skip("set APPARATE_MEM_GUARD=1 to run the 1M-request memory guard")
	}
	sc := memGuardScenario(t)
	stop := make(chan struct{})
	peakCh := make(chan uint64)
	go func() {
		var peak uint64
		var ms runtime.MemStats
		ticker := time.NewTicker(10 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				peakCh <- peak
				return
			case <-ticker.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
			}
		}
	}()
	start := time.Now()
	res, err := core.RunScenario(sc)
	dur := time.Since(start)
	close(stop)
	peak := <-peakCh
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != sc.N {
		t.Fatalf("served %d requests, want %d", res.Requests, sc.N)
	}
	// A materialized pipeline needs >400 MB live for this scenario
	// (trace + two result slices + two latency slices); the streaming
	// pipeline's live heap is O(queue + handlers + sketches). 128 MiB
	// leaves generous headroom over the observed ~10 MB peak while
	// still catching any reintroduced O(n) buffer.
	const limit = 128 << 20
	t.Logf("%d-request sketch scenario: %.1fs, peak live heap %.1f MiB", sc.N, dur.Seconds(), float64(peak)/(1<<20))
	if peak > limit {
		t.Fatalf("peak live heap %d bytes exceeds %d: the pipeline is materializing per-request state again", peak, limit)
	}
}
