// Package repro's root benchmark harness: one benchmark per table and
// figure of the paper's evaluation. Each benchmark regenerates the
// artifact through internal/experiments and prints the reproduced rows
// once, so `go test -bench=. -benchmem` doubles as the full reproduction
// run (see EXPERIMENTS.md for the paper-vs-measured record).
package repro

import (
	"fmt"
	"testing"

	"repro/internal/experiments"
	"repro/internal/sweep"
)

// runExperiment executes one registered experiment per benchmark
// iteration, printing the tables on the first iteration only.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, t := range tables {
				fmt.Println(t.String())
			}
		}
	}
}

// Motivation (§2).

func BenchmarkFig01(b *testing.B)   { runExperiment(b, "fig1") }
func BenchmarkFig02(b *testing.B)   { runExperiment(b, "fig2") }
func BenchmarkFig04(b *testing.B)   { runExperiment(b, "fig4") }
func BenchmarkFig05(b *testing.B)   { runExperiment(b, "fig5") }
func BenchmarkTable01(b *testing.B) { runExperiment(b, "table1") }

// Design studies (§3).

func BenchmarkFig08(b *testing.B) { runExperiment(b, "fig8") }
func BenchmarkFig09(b *testing.B) { runExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B) { runExperiment(b, "fig10") }

// Classification evaluation (§4.2).

func BenchmarkFig12(b *testing.B)     { runExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)     { runExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)     { runExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)     { runExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)     { runExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)     { runExperiment(b, "fig17") }
func BenchmarkQuantized(b *testing.B) { runExperiment(b, "quant") }

// Generative evaluation (§4.3).

func BenchmarkFig18(b *testing.B) { runExperiment(b, "fig18") }

// Baseline comparisons (§4.4).

func BenchmarkTable02(b *testing.B) { runExperiment(b, "table2") }

// Microbenchmarks (§4.5).

func BenchmarkFig19(b *testing.B)     { runExperiment(b, "fig19") }
func BenchmarkTable03(b *testing.B)   { runExperiment(b, "table3") }
func BenchmarkTable04(b *testing.B)   { runExperiment(b, "table4") }
func BenchmarkTable05(b *testing.B)   { runExperiment(b, "table5") }
func BenchmarkRampStyle(b *testing.B) { runExperiment(b, "rampstyle") }
func BenchmarkAblation(b *testing.B)  { runExperiment(b, "ablation") }

// Extension studies beyond the paper's artifacts.

func BenchmarkExitRules(b *testing.B) { runExperiment(b, "exitrules") }
func BenchmarkCluster(b *testing.B)   { runExperiment(b, "cluster") }

// Sweep engine: a mixed CV/NLP/generative grid through the parallel
// scenario runner, measuring end-to-end grid throughput at full
// parallelism (workers = GOMAXPROCS).

func BenchmarkSweepGrid(b *testing.B) {
	grid := sweep.Grid{
		Models:    []string{"resnet18", "resnet50", "distilbert-base", "t5-large"},
		Workloads: []string{"video-0", "amazon", "cnn-dailymail"},
		Budgets:   []float64{0.01, 0.02},
		N:         2000,
		GenN:      10,
		Seed:      1,
	}
	scenarios, err := grid.Expand()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := sweep.Run(scenarios, sweep.Options{})
		for _, r := range results {
			if r.Err != "" {
				b.Fatalf("%s: %s", r.Scenario.Key(), r.Err)
			}
		}
		if i == 0 {
			fmt.Printf("sweep: %d scenarios\n", len(results))
		}
	}
}
