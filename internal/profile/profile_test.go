package profile

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/exitsim"
	"repro/internal/model"
	"repro/internal/ramp"
	"repro/internal/rng"
)

func collect(t *testing.T, m *model.Model) *Profile {
	t.Helper()
	p, err := Collect(m, []int{1, 2, 4, 8, 16}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCollectRejectsBadInput(t *testing.T) {
	m := model.ResNet50()
	if _, err := Collect(m, nil, 0); err == nil {
		t.Fatal("accepted empty batch sizes")
	}
	if _, err := Collect(m, []int{0}, 0); err == nil {
		t.Fatal("accepted batch size 0")
	}
}

func TestTotalMatchesModel(t *testing.T) {
	for _, m := range model.ClassificationModels() {
		p := collect(t, m)
		for _, b := range []int{1, 4, 16} {
			got, err := p.TotalMS(b)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-m.Latency(b)) > 1e-6*m.Latency(b) {
				t.Errorf("%s bs=%d: profiled total %v, model %v", m.Name, b, got, m.Latency(b))
			}
		}
	}
}

func TestPrefixMatchesModelAnalysis(t *testing.T) {
	m := model.BERTBase()
	p := collect(t, m)
	for _, site := range m.FeasibleRamps() {
		got, err := p.PrefixMS(site.NodeID, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := m.PrefixLatency(site.NodeID, 1)
		if math.Abs(got-want) > 1e-6*m.Latency(1) {
			t.Fatalf("node %d prefix %v, want %v", site.NodeID, got, want)
		}
	}
}

func TestPrefixUnknownNode(t *testing.T) {
	p := collect(t, model.ResNet50())
	if _, err := p.PrefixMS(99999, 1); err == nil {
		t.Fatal("accepted unknown node")
	}
}

func TestInterpolationMonotone(t *testing.T) {
	m := model.GPT2Medium()
	p, err := Collect(m, []int{1, 4, 16}, 0)
	if err != nil {
		t.Fatal(err)
	}
	check := func(seed uint64) bool {
		r := rng.New(seed)
		b1 := r.Intn(20) + 1
		b2 := b1 + r.Intn(10) + 1
		t1, err1 := p.TotalMS(b1)
		t2, err2 := p.TotalMS(b2)
		return err1 == nil && err2 == nil && t2 > t1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInterpolationExactAtProfiledPoints(t *testing.T) {
	m := model.ResNet50()
	p, err := Collect(m, []int{1, 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := p.TotalMS(8)
	if math.Abs(got-m.Latency(8)) > 1e-9 {
		t.Fatalf("profiled point not exact: %v vs %v", got, m.Latency(8))
	}
	// Interpolated point between 1 and 8 lies between the endpoints.
	mid, _ := p.TotalMS(4)
	if mid <= m.Latency(1) || mid >= m.Latency(8) {
		t.Fatalf("interpolated total %v outside endpoints", mid)
	}
}

func TestSavingsDecreaseWithDepth(t *testing.T) {
	m := model.ResNet50()
	p := collect(t, m)
	prev := math.Inf(1)
	for _, site := range m.FeasibleRamps() {
		s, err := p.SavingsMS(site.NodeID)
		if err != nil {
			t.Fatal(err)
		}
		if s <= 0 {
			t.Fatalf("non-positive savings at node %d", site.NodeID)
		}
		if s >= prev {
			t.Fatalf("savings not decreasing with depth at node %d", site.NodeID)
		}
		prev = s
	}
}

func TestNetworkDelayAddsToSavings(t *testing.T) {
	m := model.BERTBase()
	local, _ := Collect(m, []int{1}, 0)
	dist, _ := Collect(m, []int{1}, 0.4)
	site := m.FeasibleRamps()[0]
	sl, _ := local.SavingsMS(site.NodeID)
	sd, _ := dist.SavingsMS(site.NodeID)
	if math.Abs(sd-sl-0.4) > 1e-9 {
		t.Fatalf("network delay not reflected: %v vs %v", sd, sl)
	}
}

func TestMemoryAccounting(t *testing.T) {
	base := MemoryMB(model.BERTBase())
	// 110M fp32 params ≈ 420MB + workspace.
	if base < 400 || base > 600 {
		t.Fatalf("bert-base memory %vMB implausible", base)
	}
	quant := MemoryMB(model.QuantizedBERTBase())
	if quant >= base/3 {
		t.Fatalf("int8 memory %v not ~4x below fp32 %v", quant, base)
	}
}

func TestRampMemoryMatchesPaperScale(t *testing.T) {
	m := model.BERTBase()
	cfg := ramp.NewConfig(m, exitsim.ProfileFor(m, exitsim.KindAmazon), 1.0)
	// DeeBERT: one pooler ramp per encoder (12 for BERT-base).
	for _, s := range ramp.EvenSpacing(cfg.Sites, 12) {
		if err := cfg.Activate(s, ramp.StyleDeeBERTPooler); err != nil {
			t.Fatal(err)
		}
	}
	frac := MemoryOverheadFrac(m, cfg.Active)
	// Paper: DeeBERT inflates BERT-base memory by 6.6%.
	if frac < 0.03 || frac > 0.12 {
		t.Fatalf("DeeBERT-style memory overhead %.3f outside plausible band", frac)
	}
	// Apparate's default ramps must be much lighter per ramp.
	cfg2 := ramp.NewConfig(m, exitsim.ProfileFor(m, exitsim.KindAmazon), 0.02)
	cfg2.DeployInitial(ramp.StyleDefault)
	frac2 := MemoryOverheadFrac(m, cfg2.Active)
	if frac2 >= frac {
		t.Fatalf("default ramp memory %.4f not below DeeBERT-style %.4f", frac2, frac)
	}
}

func TestRampDefinitionSize(t *testing.T) {
	m := model.ResNet50()
	cfg := ramp.NewConfig(m, exitsim.ProfileFor(m, exitsim.KindVideo), 0.02)
	cfg.DeployInitial(ramp.StyleDefault)
	for _, r := range cfg.Active {
		kb := RampDefinitionKB(m, r)
		// Paper: ~10KB definitions keep coordination non-blocking.
		if kb < 1 || kb > 128 {
			t.Fatalf("ramp definition %vKB outside plausible band", kb)
		}
	}
}
