// Package profile implements Apparate's one-time model profiling
// (§3.3): the per-ramp latency overhead and the layer-wise breakdown of
// inference time at each batch size, which the ramp adjuster needs to
// price savings and overheads ("latency characteristics vary across
// models but govern the impact of exits"). It also accounts GPU memory —
// ramps must be resident, and memory is "an increasingly precious
// resource" (§2.3-C1).
//
// Profiles are collected once per model during bootstrap and optionally
// persisted, mirroring the paper's workflow where the controller keeps
// them alongside the ramp definitions.
package profile

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/ramp"
)

// LayerTiming is the profiled execution time of one graph operator.
type LayerTiming struct {
	NodeID int
	Name   string
	// MS is the operator's execution time at each profiled batch size.
	MS map[int]float64
	// CumulativeMS is the prefix time through this operator, batch 1.
	CumulativeMS float64
}

// Profile is a model's one-time profiling record.
type Profile struct {
	ModelName string
	// BatchSizes profiled (the paper profiles "different batch sizes").
	BatchSizes []int
	// Layers in topological order.
	Layers []LayerTiming
	// NetworkDelayMS is the added delay per stage boundary under
	// distributed serving (0 for single-node).
	NetworkDelayMS float64
}

// Collect profiles a model at the given batch sizes. Batch sizes must be
// positive and non-empty.
func Collect(m *model.Model, batchSizes []int, networkDelayMS float64) (*Profile, error) {
	if len(batchSizes) == 0 {
		return nil, fmt.Errorf("profile: no batch sizes given")
	}
	for _, b := range batchSizes {
		if b < 1 {
			return nil, fmt.Errorf("profile: invalid batch size %d", b)
		}
	}
	sorted := append([]int(nil), batchSizes...)
	sort.Ints(sorted)

	order := m.Graph.TopoOrder()
	if order == nil {
		return nil, fmt.Errorf("profile: model graph is cyclic")
	}
	p := &Profile{
		ModelName:      m.Name,
		BatchSizes:     sorted,
		NetworkDelayMS: networkDelayMS,
		Layers:         make([]LayerTiming, 0, len(order)),
	}
	cum := 0.0
	for _, id := range order {
		n := m.Graph.Nodes[id]
		lt := LayerTiming{NodeID: id, Name: n.Name, MS: make(map[int]float64, len(sorted))}
		for _, b := range sorted {
			lt.MS[b] = n.LatFrac * m.Latency(b)
		}
		cum += n.LatFrac * m.Latency(1)
		lt.CumulativeMS = cum
		p.Layers = append(p.Layers, lt)
	}
	return p, nil
}

// PrefixMS returns the time from batch start until node id's output is
// ready, for the given batch size; it interpolates linearly between
// profiled batch sizes and extrapolates from the nearest edge.
func (p *Profile) PrefixMS(nodeID, batch int) (float64, error) {
	idx := -1
	for i := range p.Layers {
		if p.Layers[i].NodeID == nodeID {
			idx = i
			break
		}
	}
	if idx < 0 {
		return 0, fmt.Errorf("profile: node %d not in profile of %s", nodeID, p.ModelName)
	}
	cum := 0.0
	for i := 0; i <= idx; i++ {
		ms, err := p.layerMS(i, batch)
		if err != nil {
			return 0, err
		}
		cum += ms
	}
	return cum, nil
}

// TotalMS returns the full-model execution time at the batch size.
func (p *Profile) TotalMS(batch int) (float64, error) {
	total := 0.0
	for i := range p.Layers {
		ms, err := p.layerMS(i, batch)
		if err != nil {
			return 0, err
		}
		total += ms
	}
	return total, nil
}

func (p *Profile) layerMS(i, batch int) (float64, error) {
	if batch < 1 {
		return 0, fmt.Errorf("profile: invalid batch %d", batch)
	}
	ms := p.Layers[i].MS
	if v, ok := ms[batch]; ok {
		return v, nil
	}
	// Linear interpolation between neighbors; extrapolation at edges.
	bs := p.BatchSizes
	if batch < bs[0] {
		return ms[bs[0]] * float64(batch) / float64(bs[0]), nil
	}
	if batch > bs[len(bs)-1] {
		last := bs[len(bs)-1]
		if len(bs) == 1 {
			return ms[last], nil
		}
		prev := bs[len(bs)-2]
		slope := (ms[last] - ms[prev]) / float64(last-prev)
		return ms[last] + slope*float64(batch-last), nil
	}
	lo := bs[0]
	for _, b := range bs {
		if b > batch {
			hi := b
			frac := float64(batch-lo) / float64(hi-lo)
			return ms[lo] + frac*(ms[hi]-ms[lo]), nil
		}
		lo = b
	}
	return ms[lo], nil
}

// SavingsMS returns the per-exit latency saving of releasing a result at
// the node instead of running the full model, at batch size 1 — the
// quantity the ramp adjuster uses to price candidate ramps (§3.3).
func (p *Profile) SavingsMS(nodeID int) (float64, error) {
	prefix, err := p.PrefixMS(nodeID, 1)
	if err != nil {
		return 0, err
	}
	total, err := p.TotalMS(1)
	if err != nil {
		return 0, err
	}
	return total - prefix + p.NetworkDelayMS, nil
}

// Memory accounting (§2.3-C1).

// MemoryMB estimates a model's GPU-resident size in MB: fp32 weights
// (int8 for quantized variants) plus a fixed activation workspace share.
func MemoryMB(m *model.Model) float64 {
	bytesPerParam := 4.0
	if m.Quantized {
		bytesPerParam = 1.0
	}
	weights := float64(m.Params) * bytesPerParam / (1 << 20)
	return weights * 1.15 // workspace overhead
}

// RampMemoryMB estimates the added GPU memory of a ramp set: each ramp's
// parameter share of the host model. DeeBERT's 12 pooler ramps inflate
// BERT-base by ~6.6% (§2.3); Apparate's lightweight ramps are far
// smaller.
func RampMemoryMB(m *model.Model, ramps []*ramp.Ramp) float64 {
	total := 0.0
	base := MemoryMB(m)
	for _, r := range ramps {
		total += base * r.Style.ParamFrac
	}
	return total
}

// MemoryOverheadFrac reports the ramp set's memory as a fraction of the
// host model's.
func MemoryOverheadFrac(m *model.Model, ramps []*ramp.Ramp) float64 {
	base := MemoryMB(m)
	if base == 0 {
		return 0
	}
	return RampMemoryMB(m, ramps) / base
}

// RampDefinitionKB estimates the wire size of a ramp's definition plus
// weights when the controller ships it to the GPU — the paper measures
// ~10KB, which keeps CPU-GPU coordination non-blocking (§4.5).
func RampDefinitionKB(m *model.Model, r *ramp.Ramp) float64 {
	raw := float64(m.Params) * r.Style.ParamFrac * 4 / 1024
	if raw < 2 {
		raw = 2 // definition floor: graph patch + metadata
	}
	if raw > 64 {
		raw = 64 // fc input width is bounded by the widest intermediate
	}
	return raw
}
