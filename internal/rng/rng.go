// Package rng provides a small, deterministic pseudo-random number
// generator used throughout the simulator.
//
// Every stochastic component in this repository draws from an explicit
// *Rand so that experiments are reproducible bit-for-bit across runs and
// platforms. The generator is SplitMix64 (Steele, Lea, Flood 2014), which
// is fast, has a 64-bit state, and supports cheap stream splitting: a
// parent stream can derive independent child streams for sub-components
// without coordination.
package rng

import (
	"hash/fnv"
	"math"
)

// Rand is a deterministic pseudo-random number generator. The zero value
// is a valid generator seeded with 0; prefer New to make seeds explicit.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed. Two generators created with
// the same seed produce identical sequences.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// golden is the SplitMix64 increment (2^64 / phi, rounded to odd).
const golden = 0x9e3779b97f4a7c15

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	r.state += golden
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Labeled returns the generator for an independent named stream of the
// seed: an FNV-1a hash of the label is mixed into the seed through one
// SplitMix64 step. Every subsystem that draws randomness orthogonal to
// the workload itself (e.g. the "faults" stream behind fault injection)
// must derive its generator through a dedicated label, never by reusing
// the workload seed directly — that guarantee is what keeps enabling a
// subsystem from perturbing the base scenario's arrival and service
// draws.
func Labeled(seed uint64, label string) *Rand {
	h := fnv.New64a()
	h.Write([]byte(label))
	return New(New(seed ^ h.Sum64()).Uint64())
}

// Split derives an independent child stream. The child's sequence does not
// overlap the parent's for any practical horizon, and deriving a child
// advances the parent exactly once, so sibling order is well-defined.
func (r *Rand) Split() *Rand {
	return &Rand{state: r.Uint64()}
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	// 53 high-quality bits into the double's mantissa.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal variate via the Box-Muller transform.
func (r *Rand) Norm() float64 {
	// Avoid u1 == 0 so the log is finite.
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Exp returns an exponential variate with the given rate (mean 1/rate).
// It panics if rate <= 0.
func (r *Rand) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	return -math.Log(1-r.Float64()) / rate
}

// Poisson returns a Poisson variate with the given mean using Knuth's
// method for small means and a normal approximation for large means.
func (r *Rand) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		// Normal approximation with continuity correction; adequate for
		// the arrival-rate magnitudes the simulator uses.
		v := mean + math.Sqrt(mean)*r.Norm() + 0.5
		if v < 0 {
			return 0
		}
		return int(v)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}
