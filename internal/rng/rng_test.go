package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with identical seeds diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("streams with different seeds matched %d/100 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling child streams produced identical first draws")
	}
}

func TestSplitDeterministic(t *testing.T) {
	p1, p2 := New(9), New(9)
	c1, c2 := p1.Split(), p2.Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("split streams from identical parents diverged at %d", i)
		}
	}
}

// TestLabeledIndependence pins the labeled-stream contract: a labeled
// stream is deterministic in (seed, label), distinct labels give
// unrelated streams, and — the property fault injection relies on — a
// labeled stream never coincides with the raw seed stream, so drawing
// from it cannot perturb components seeded with the seed directly.
func TestLabeledIndependence(t *testing.T) {
	a, b := Labeled(42, "faults"), Labeled(42, "faults")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("labeled streams with identical (seed, label) diverged at %d", i)
		}
	}
	base, faults, net := New(42), Labeled(42, "faults"), Labeled(42, "faults.net")
	same := 0
	for i := 0; i < 100; i++ {
		f := faults.Uint64()
		if f == base.Uint64() || f == net.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("labeled stream matched base or sibling stream on %d/100 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) hit only %d distinct values in 1000 draws", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(6)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("Norm variance = %v, want ~1", variance)
	}
}

func TestExpMean(t *testing.T) {
	r := New(8)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(2.0)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Exp(2) mean = %v, want ~0.5", mean)
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestPoissonMean(t *testing.T) {
	for _, mean := range []float64{0.5, 4, 30, 200} {
		r := New(uint64(mean * 100))
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Fatalf("Poisson(%v) mean = %v", mean, got)
		}
	}
}

func TestPoissonNonPositiveMean(t *testing.T) {
	r := New(1)
	if got := r.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
	if got := r.Poisson(-3); got != 0 {
		t.Fatalf("Poisson(-3) = %d, want 0", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		size := int(n%32) + 1
		p := New(seed).Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(11)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %v", got)
	}
}
