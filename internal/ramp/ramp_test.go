package ramp

import (
	"testing"
	"testing/quick"

	"repro/internal/exitsim"
	"repro/internal/model"
	"repro/internal/rng"
)

func testConfig(t *testing.T) *Config {
	t.Helper()
	m := model.ResNet50()
	p := exitsim.ProfileFor(m, exitsim.KindVideo)
	return NewConfig(m, p, 0.02)
}

func TestMaxRampsBudget(t *testing.T) {
	c := testConfig(t)
	// 2% budget / 0.4% per default ramp = 5 ramps.
	if got := c.MaxRamps(StyleDefault); got != 5 {
		t.Fatalf("MaxRamps(default) = %d, want 5", got)
	}
	// Costlier styles admit fewer ramps.
	if got := c.MaxRamps(StyleDeeBERTPooler); got >= 5 {
		t.Fatalf("MaxRamps(pooler) = %d, want < 5", got)
	}
}

func TestMaxRampsCappedBySites(t *testing.T) {
	c := testConfig(t)
	c.BudgetFrac = 100
	if got := c.MaxRamps(StyleDefault); got != len(c.Sites) {
		t.Fatalf("MaxRamps = %d, want %d (site count)", got, len(c.Sites))
	}
}

func TestActivateRespectsBudget(t *testing.T) {
	c := testConfig(t)
	n := 0
	for _, s := range c.Sites {
		if err := c.Activate(s, StyleDefault); err != nil {
			break
		}
		n++
	}
	if n != c.MaxRamps(StyleDefault) {
		t.Fatalf("activated %d ramps, budget admits %d", n, c.MaxRamps(StyleDefault))
	}
	if c.OverheadFrac() > c.BudgetFrac+1e-9 {
		t.Fatalf("overhead %v exceeds budget %v", c.OverheadFrac(), c.BudgetFrac)
	}
}

func TestActivateRejectsDuplicate(t *testing.T) {
	c := testConfig(t)
	if err := c.Activate(c.Sites[0], StyleDefault); err != nil {
		t.Fatal(err)
	}
	if err := c.Activate(c.Sites[0], StyleDefault); err == nil {
		t.Fatal("Activate accepted a duplicate site")
	}
}

func TestActiveSortedByDepth(t *testing.T) {
	c := testConfig(t)
	// Activate out of order.
	_ = c.Activate(c.Sites[3], StyleDefault)
	_ = c.Activate(c.Sites[0], StyleDefault)
	_ = c.Activate(c.Sites[2], StyleDefault)
	prev := -1.0
	for _, r := range c.Active {
		if r.Site.Frac <= prev {
			t.Fatal("active ramps not depth-ordered")
		}
		prev = r.Site.Frac
	}
}

func TestDeactivate(t *testing.T) {
	c := testConfig(t)
	_ = c.Activate(c.Sites[0], StyleDefault)
	_ = c.Activate(c.Sites[1], StyleDefault)
	c.Deactivate(0)
	if len(c.Active) != 1 || c.Active[0].Site.NodeID != c.Sites[1].NodeID {
		t.Fatal("Deactivate removed the wrong ramp")
	}
}

func TestEvenSpacingProperties(t *testing.T) {
	c := testConfig(t)
	check := func(kRaw uint8) bool {
		k := int(kRaw%20) + 1
		sel := EvenSpacing(c.Sites, k)
		if len(sel) == 0 || len(sel) > k {
			return false
		}
		prev := -1.0
		for _, s := range sel {
			if s.Frac <= prev {
				return false
			}
			prev = s.Frac
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEvenSpacingCoversRange(t *testing.T) {
	c := testConfig(t)
	sel := EvenSpacing(c.Sites, 5)
	if len(sel) != 5 {
		t.Fatalf("selected %d sites, want 5", len(sel))
	}
	// First selection in the front third, last in the back third.
	if sel[0].Frac > c.Sites[len(c.Sites)-1].Frac/2 {
		t.Errorf("first ramp too deep: %v", sel[0].Frac)
	}
	if sel[4].Frac < c.Sites[len(c.Sites)-1].Frac/2 {
		t.Errorf("last ramp too shallow: %v", sel[4].Frac)
	}
}

func TestDeployInitialZeroThresholds(t *testing.T) {
	c := testConfig(t)
	c.DeployInitial(StyleDefault)
	if len(c.Active) != c.MaxRamps(StyleDefault) {
		t.Fatalf("deployed %d ramps, want %d", len(c.Active), c.MaxRamps(StyleDefault))
	}
	for _, r := range c.Active {
		if r.Threshold != 0 {
			t.Fatal("initial ramp threshold not 0")
		}
	}
}

func TestEvaluateZeroThresholdNeverExits(t *testing.T) {
	c := testConfig(t)
	c.DeployInitial(StyleDefault)
	r := rng.New(1)
	for i := 0; i < 200; i++ {
		s := exitsim.Sample{Difficulty: r.Float64(), MatchU: r.Float64(), NoiseKey: r.Uint64()}
		out := c.Evaluate(s, 1)
		if out.ExitIndex != -1 {
			t.Fatal("threshold-0 configuration exited")
		}
		if !out.Correct {
			t.Fatal("non-exit marked incorrect")
		}
		want := c.WorstCaseMS(1)
		if out.ServeMS != want {
			t.Fatalf("non-exit latency %v, want worst-case %v", out.ServeMS, want)
		}
	}
}

func TestEvaluateExitsWithHighThreshold(t *testing.T) {
	c := testConfig(t)
	c.DeployInitial(StyleDefault)
	for _, r := range c.Active {
		r.Threshold = 0.99
	}
	s := exitsim.Sample{Difficulty: 0.05, MatchU: 0.3, NoiseKey: 7}
	out := c.Evaluate(s, 1)
	if out.ExitIndex != 0 {
		t.Fatalf("easy sample exited at index %d, want 0", out.ExitIndex)
	}
	if out.ServeMS >= c.Model.Latency(1) {
		t.Fatalf("exit latency %v not below full model %v", out.ServeMS, c.Model.Latency(1))
	}
}

func TestEvaluateRecordsAllRamps(t *testing.T) {
	c := testConfig(t)
	c.DeployInitial(StyleDefault)
	c.Active[0].Threshold = 0.99 // everything exits at ramp 0
	s := exitsim.Sample{Difficulty: 0.1, MatchU: 0.2, NoiseKey: 3}
	out := c.Evaluate(s, 1)
	if len(out.PerRamp) != len(c.Active) {
		t.Fatalf("recorded %d ramp observations, want %d", len(out.PerRamp), len(c.Active))
	}
	// Observations beyond the exit point must still be populated
	// (inputs run to completion with Apparate).
	for i, ob := range out.PerRamp {
		if ob.Err == 0 && !ob.Match {
			t.Fatalf("ramp %d observation looks unpopulated: %+v", i, ob)
		}
	}
}

func TestEvaluateErrScoresDecreaseWithDepth(t *testing.T) {
	c := testConfig(t)
	c.DeployInitial(StyleDefault)
	// Average over many samples: deeper ramps must report lower error.
	r := rng.New(5)
	sums := make([]float64, len(c.Active))
	const n = 2000
	for i := 0; i < n; i++ {
		s := exitsim.Sample{Difficulty: 0.1 + r.Float64()*0.8, MatchU: r.Float64(), NoiseKey: r.Uint64()}
		out := c.Evaluate(s, 1)
		for j, ob := range out.PerRamp {
			sums[j] += ob.Err
		}
	}
	// Per-site quality jitter (±6%) can locally reorder adjacent ramps,
	// but depth must dominate end to end.
	last := len(sums) - 1
	if sums[last] >= sums[0] {
		t.Fatalf("mean err at deepest ramp (%v) not below shallowest (%v)",
			sums[last]/n, sums[0]/n)
	}
}

func TestEvaluateLatencyMonotoneInExitDepth(t *testing.T) {
	c := testConfig(t)
	c.DeployInitial(StyleDefault)
	// Force exit at each ramp in turn by setting only that threshold.
	prev := -1.0
	for i := range c.Active {
		for j := range c.Active {
			c.Active[j].Threshold = 0
		}
		c.Active[i].Threshold = 1.1 // certain exit at ramp i
		s := exitsim.Sample{Difficulty: 0.3, MatchU: 0.5, NoiseKey: 11}
		out := c.Evaluate(s, 1)
		if out.ExitIndex != i {
			t.Fatalf("expected forced exit at %d, got %d", i, out.ExitIndex)
		}
		if out.ServeMS <= prev {
			t.Fatalf("deeper exit %d not slower than previous", i)
		}
		prev = out.ServeMS
	}
}

func TestThresholdsRoundTrip(t *testing.T) {
	c := testConfig(t)
	c.DeployInitial(StyleDefault)
	ts := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	c.SetThresholds(ts)
	got := c.Thresholds()
	for i := range ts {
		if got[i] != ts[i] {
			t.Fatalf("threshold %d = %v, want %v", i, got[i], ts[i])
		}
	}
}

func TestSetThresholdsLengthPanics(t *testing.T) {
	c := testConfig(t)
	c.DeployInitial(StyleDefault)
	defer func() {
		if recover() == nil {
			t.Fatal("SetThresholds length mismatch did not panic")
		}
	}()
	c.SetThresholds([]float64{0.1})
}

func TestCloneIndependent(t *testing.T) {
	c := testConfig(t)
	c.DeployInitial(StyleDefault)
	cl := c.Clone()
	cl.Active[0].Threshold = 0.9
	if c.Active[0].Threshold == 0.9 {
		t.Fatal("Clone shares ramp state with original")
	}
	cl.Deactivate(0)
	if len(c.Active) != c.MaxRamps(StyleDefault) {
		t.Fatal("Clone deactivation affected original")
	}
}

func TestTrainingMinutesReasonable(t *testing.T) {
	m := model.BERTBase()
	// 10% of the 250k Amazon stream, 12 ramps.
	mins := TrainingMinutes(m, 12, 25000, StyleDefault)
	if mins < 0.5 || mins > 30 {
		t.Fatalf("training time %v minutes outside the paper's 'few minutes'", mins)
	}
}

func TestWorstCaseWithinBudget(t *testing.T) {
	c := testConfig(t)
	c.DeployInitial(StyleDefault)
	vanilla := c.Model.Latency(8)
	worst := c.WorstCaseMS(8)
	if worst > vanilla*(1+c.BudgetFrac)+1e-9 {
		t.Fatalf("worst case %v exceeds vanilla+budget %v", worst, vanilla*(1+c.BudgetFrac))
	}
}
