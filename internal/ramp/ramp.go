// Package ramp models early-exit ramps: their architectures (§3.1,
// Figure 8), placement over a model's feasible sites, the
// worst-case-latency budget that bounds the active set (the paper's "ramp
// aggression" parameter), and evaluation of a ramp configuration against
// workload samples.
package ramp

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/exitrule"
	"repro/internal/exitsim"
	"repro/internal/model"
)

// Style describes a ramp architecture. Apparate's default is the
// shallowest viable ramp — a lightweight pooling operator feeding the
// model's final FC layer (§3.1). Richer styles raise exit capability
// slightly but cost more latency per ramp, shrinking the number of ramps
// a budget admits (Figure 8 shows the default winning 1.3–5.4×).
type Style struct {
	Name string
	// OverheadFrac is one ramp's added latency as a fraction of the host
	// model's inference latency (applies at any batch size).
	OverheadFrac float64
	// Quality multiplies exit capability (1.0 = default ramp).
	Quality float64
	// ParamFrac is the ramp's parameter count as a fraction of the host
	// model's parameters (memory accounting; DeeBERT-style ramps inflate
	// BERT-base memory ~6.6% over 12 ramps).
	ParamFrac float64
}

// Predefined ramp styles.
var (
	// StyleDefault is Apparate's pooling + final-FC ramp.
	StyleDefault = Style{Name: "default", OverheadFrac: 0.004, Quality: 1.0, ParamFrac: 0.0035}
	// StyleConvAugmented adds 1–2 conv layers before pooling (the CV
	// "some/fewer ramps" alternative of Figure 8).
	StyleConvAugmented = Style{Name: "conv-augmented", OverheadFrac: 0.012, Quality: 1.03, ParamFrac: 0.012}
	// StyleTwoFC adds two width-reducing FC layers (BERT alternative 1).
	StyleTwoFC = Style{Name: "two-fc", OverheadFrac: 0.010, Quality: 1.02, ParamFrac: 0.009}
	// StyleDeeBERTPooler replicates the full BERT pooler block plus
	// dropout (DeeBERT's ramp; BERT alternative 2).
	StyleDeeBERTPooler = Style{Name: "deebert-pooler", OverheadFrac: 0.015, Quality: 1.04, ParamFrac: 0.0055}
)

// Ramp is an instantiated ramp at a model site with its exit threshold.
type Ramp struct {
	Site      model.RampSite
	Style     Style
	Threshold float64
}

// Config is a model's early-exit configuration: the active ramps (sorted
// by depth), the candidate sites, and the latency budget.
type Config struct {
	Model *model.Model
	// Profile calibrates exit semantics for the workload being served.
	Profile exitsim.Profile
	// BudgetFrac bounds the summed ramp overhead as a fraction of the
	// model's worst-case (all-ramps, no-exit) latency; the paper's
	// default is 2%.
	BudgetFrac float64
	// Sites are all feasible ramp sites of the model, depth-ordered.
	Sites []model.RampSite
	// Active is the deployed ramp set, depth-ordered.
	Active []*Ramp
	// Rule selects the exit strategy (§5); nil means the default
	// entropy rule. The controller's window replay models the entropy
	// rule, so with stricter rules (patience, windowed) tuned
	// thresholds are conservative: deployed exits are a subset of the
	// modeled ones, keeping the accuracy guarantee while estimating
	// savings optimistically.
	Rule exitrule.Rule
}

// NewConfig returns a configuration with no active ramps.
func NewConfig(m *model.Model, p exitsim.Profile, budgetFrac float64) *Config {
	return &Config{
		Model:      m,
		Profile:    p,
		BudgetFrac: budgetFrac,
		Sites:      m.FeasibleRamps(),
	}
}

// MaxRamps returns how many ramps of the given style the budget admits.
func (c *Config) MaxRamps(s Style) int {
	if s.OverheadFrac <= 0 {
		panic("ramp: style with non-positive overhead")
	}
	n := int(math.Floor(c.BudgetFrac/s.OverheadFrac + 1e-9))
	if n > len(c.Sites) {
		n = len(c.Sites)
	}
	return n
}

// OverheadFrac returns the summed overhead fraction of the active set.
func (c *Config) OverheadFrac() float64 {
	total := 0.0
	for _, r := range c.Active {
		total += r.Style.OverheadFrac
	}
	return total
}

// WithinBudget reports whether adding a ramp of the given style would
// keep the active set within budget.
func (c *Config) WithinBudget(s Style) bool {
	return c.OverheadFrac()+s.OverheadFrac <= c.BudgetFrac+1e-9
}

// siteActive reports whether a site already hosts a ramp.
func (c *Config) siteActive(site model.RampSite) bool {
	for _, r := range c.Active {
		if r.Site.NodeID == site.NodeID {
			return true
		}
	}
	return false
}

// Activate deploys a ramp at the given site with threshold 0 (no exiting
// until tuned, §3.1). It returns an error if the site is already active
// or the budget would be exceeded.
func (c *Config) Activate(site model.RampSite, s Style) error {
	if c.siteActive(site) {
		return fmt.Errorf("ramp: site node %d already active", site.NodeID)
	}
	if !c.WithinBudget(s) {
		return fmt.Errorf("ramp: activating at node %d exceeds budget %.3f", site.NodeID, c.BudgetFrac)
	}
	c.Active = append(c.Active, &Ramp{Site: site, Style: s})
	sort.Slice(c.Active, func(i, j int) bool { return c.Active[i].Site.Frac < c.Active[j].Site.Frac })
	return nil
}

// Deactivate removes the ramp at active index i.
func (c *Config) Deactivate(i int) {
	if i < 0 || i >= len(c.Active) {
		panic(fmt.Sprintf("ramp: Deactivate index %d out of range", i))
	}
	c.Active = append(c.Active[:i], c.Active[i+1:]...)
}

// EvenSpacing selects k sites evenly spaced (by list position) across the
// candidates — the paper's initial deployment policy (§3.1). The returned
// sites are depth-ordered and distinct.
func EvenSpacing(sites []model.RampSite, k int) []model.RampSite {
	if k <= 0 || len(sites) == 0 {
		return nil
	}
	if k >= len(sites) {
		out := make([]model.RampSite, len(sites))
		copy(out, sites)
		return out
	}
	out := make([]model.RampSite, 0, k)
	seen := make(map[int]bool)
	for i := 0; i < k; i++ {
		// Quantile positions, offset to avoid clustering at the ends.
		pos := (2*i + 1) * len(sites) / (2 * k)
		if pos >= len(sites) {
			pos = len(sites) - 1
		}
		if !seen[pos] {
			seen[pos] = true
			out = append(out, sites[pos])
		}
	}
	return out
}

// DeployInitial activates the budget-maximal, evenly spaced ramp set with
// all thresholds at 0.
func (c *Config) DeployInitial(s Style) {
	c.Active = nil
	for _, site := range EvenSpacing(c.Sites, c.MaxRamps(s)) {
		if err := c.Activate(site, s); err != nil {
			panic("ramp: DeployInitial budget accounting inconsistent: " + err.Error())
		}
	}
}

// Observation is the per-ramp signal recorded for one input: the error
// score the ramp reported and whether its top prediction matched the
// original model. With Apparate, these are recorded for every input at
// every active ramp irrespective of exits (§3.2).
type Observation struct {
	Err   float64
	Match bool
}

// Outcome is the result of pushing one input through the configured
// model.
type Outcome struct {
	// ExitIndex is the index in Active of the ramp that exited the
	// result, or -1 if the result came from the full model.
	ExitIndex int
	// ServeMS is the serving-time latency of the released result
	// (excludes queuing): prefix latency to the exit point plus the
	// overhead of active ramps at or before it. Non-exiting inputs pay
	// the full model plus all ramp overheads.
	ServeMS float64
	// Correct reports whether the released result matches the original
	// model's output (non-exits are correct by construction).
	Correct bool
	// PerRamp holds one observation per active ramp, in depth order.
	PerRamp []Observation
}

// Evaluate runs one sample through the configuration at the given batch
// size. Thresholds are applied by the caller-visible semantics of §2.2:
// a ramp exits when its error score is strictly below its threshold, so
// threshold 0 never exits.
func (c *Config) Evaluate(s exitsim.Sample, batch int) Outcome {
	out := Outcome{ExitIndex: -1, PerRamp: make([]Observation, len(c.Active))}
	overheadMS := 0.0
	modelLat := c.Model.Latency(batch)
	rule := c.Rule
	if rule == nil {
		rule = exitrule.Entropy{}
	}
	state := rule.NewState()
	for i, r := range c.Active {
		q := r.Style.Quality * r.Site.Quality
		errScore := c.Profile.ErrScore(s, r.Site.Frac, q)
		match := c.Profile.Matches(s, r.Site.Frac, q)
		out.PerRamp[i] = Observation{Err: errScore, Match: match}
		overheadMS += r.Style.OverheadFrac * modelLat
		if out.ExitIndex < 0 && state.Decide(errScore, r.Threshold) {
			out.ExitIndex = i
			out.ServeMS = c.Model.PrefixLatency(r.Site.NodeID, batch) + overheadMS
			out.Correct = match
		}
	}
	if out.ExitIndex < 0 {
		out.ServeMS = modelLat + c.OverheadFrac()*modelLat
		out.Correct = true
	}
	return out
}

// WorstCaseMS returns the latency of a non-exiting input at the given
// batch size under the current active set.
func (c *Config) WorstCaseMS(batch int) float64 {
	return c.Model.Latency(batch) * (1 + c.OverheadFrac())
}

// Thresholds returns the active thresholds in depth order.
func (c *Config) Thresholds() []float64 {
	out := make([]float64, len(c.Active))
	for i, r := range c.Active {
		out[i] = r.Threshold
	}
	return out
}

// SetThresholds assigns thresholds in depth order. It panics on a length
// mismatch.
func (c *Config) SetThresholds(ts []float64) {
	if len(ts) != len(c.Active) {
		panic(fmt.Sprintf("ramp: SetThresholds got %d values for %d ramps", len(ts), len(c.Active)))
	}
	for i, r := range c.Active {
		r.Threshold = ts[i]
	}
}

// Clone returns a deep copy of the configuration (shared Model/Sites).
func (c *Config) Clone() *Config {
	nc := &Config{
		Model:      c.Model,
		Profile:    c.Profile,
		BudgetFrac: c.BudgetFrac,
		Sites:      c.Sites,
		Active:     make([]*Ramp, len(c.Active)),
		Rule:       c.Rule,
	}
	for i, r := range c.Active {
		cp := *r
		nc.Active[i] = &cp
	}
	return nc
}

// TrainingMinutes estimates ramp-training wall time on a single A6000
// (§3.1 reports "a few minutes"): proportional to bootstrap size and the
// ramp parameter share, with parallel backprop across ramps.
func TrainingMinutes(m *model.Model, nRamps, bootstrapSamples int, s Style) float64 {
	perSampleMS := m.BaseLatencyMS * 0.3 // forward through frozen model
	rampCost := 1 + 0.2*s.ParamFrac/StyleDefault.ParamFrac*float64(nRamps)/10
	return float64(bootstrapSamples) * perSampleMS * rampCost / 60000
}
