// Package controller implements Apparate's runtime adaptation (§3.2–3.3):
// an accuracy monitor over released results, accuracy-aware threshold
// tuning via greedy hill climbing with multiplicative step-size control
// (Algorithm 1), and latency-focused ramp adjustment driven by per-ramp
// utility scores and upper-bound exit rates (Algorithm 2, Figure 11).
//
// The controller consumes the per-ramp observations that Apparate records
// for every input at every active ramp — possible because inputs always
// run to the end of the model — and never needs extra inference to
// evaluate a candidate configuration.
package controller

import (
	"repro/internal/metrics"
	"repro/internal/ramp"
)

// Record is the per-input profiling data streamed from the GPU: one
// observation per active ramp, keyed by the ramp site's node ID so the
// history survives ramp-set changes.
type Record struct {
	Obs map[int]ramp.Observation
}

// Config holds the controller's tunables; zero fields take defaults.
type Config struct {
	// AccConstraint is the maximum tolerable accuracy loss relative to
	// the original model (paper default 0.01).
	AccConstraint float64
	// AccWindow is the trigger window length (paper default 16).
	AccWindow int
	// RecordWindow is how many recent records tuning replays (the paper
	// tunes on "the last window of data"; default 512 — wide enough
	// that threshold evaluations are statistically stable for
	// low-continuity workloads, short enough to track drift).
	RecordWindow int
	// AdjustEvery is the ramp-adjustment period in samples (default 128).
	AdjustEvery int
	// MinStep is the smallest threshold step (paper: 0.01).
	MinStep float64
	// InitStep is the starting threshold step (paper: 0.1).
	InitStep float64
	// DisableRampAdjust turns off Algorithm 2 (used by the §4.5
	// ablation).
	DisableRampAdjust bool
}

func (c Config) withDefaults() Config {
	if c.AccConstraint == 0 {
		c.AccConstraint = 0.01
	}
	if c.AccWindow == 0 {
		c.AccWindow = 16
	}
	if c.RecordWindow == 0 {
		c.RecordWindow = 512
	}
	if c.AdjustEvery == 0 {
		c.AdjustEvery = 128
	}
	if c.MinStep == 0 {
		c.MinStep = 0.01
	}
	if c.InitStep == 0 {
		c.InitStep = 0.1
	}
	return c
}

// Controller adapts one model replica's early-exit configuration.
type Controller struct {
	Cfg  *ramp.Config
	Opts Config

	acc     *metrics.AccuracyWindow
	records []Record // ring buffer
	next    int
	filled  int

	sinceAdjust int

	// negStreak counts consecutive adjustment rounds in which a ramp
	// (keyed by site node ID) showed negative utility; deactivation
	// requires persistence so transient regimes (a hostile scene, a new
	// category) do not destroy ramp positions that threshold tuning has
	// already neutralized at far lower cost.
	negStreak map[int]int

	// probeClock alternates the all-positive probing rule between
	// earlier-savings and coverage-gap additions.
	probeClock int

	// Counters for introspection and experiments.
	TuneRounds   int
	AdjustRounds int
}

// New returns a controller managing the given ramp configuration.
func New(cfg *ramp.Config, opts Config) *Controller {
	opts = opts.withDefaults()
	return &Controller{
		Cfg:       cfg,
		Opts:      opts,
		acc:       metrics.NewAccuracyWindow(opts.AccWindow),
		records:   make([]Record, opts.RecordWindow),
		negStreak: make(map[int]int),
	}
}

// Observe ingests the outcome of one served input: records per-ramp
// profiling data, updates the accuracy window, and runs the two control
// loops at their respective cadences. It returns true if the exit
// configuration changed.
func (c *Controller) Observe(out ramp.Outcome) bool {
	rec := Record{Obs: make(map[int]ramp.Observation, len(out.PerRamp))}
	for i, ob := range out.PerRamp {
		rec.Obs[c.Cfg.Active[i].Site.NodeID] = ob
	}
	c.records[c.next] = rec
	c.next = (c.next + 1) % len(c.records)
	if c.filled < len(c.records) {
		c.filled++
	}
	c.acc.Observe(out.Correct)

	changed := false
	// Fast loop: threshold tuning whenever windowed accuracy violates
	// the constraint (§3.2).
	if c.acc.Full() && c.acc.Accuracy() < 1-c.Opts.AccConstraint {
		c.TuneThresholds()
		c.acc.Reset() // judge the new configuration on fresh outcomes
		changed = true
	}
	// Slow loop: periodic ramp adjustment (§3.3). With adjustment
	// disabled (§4.5 ablation), the cadence degrades to a plain
	// threshold-tuning round so exiting still bootstraps off the initial
	// all-zero thresholds.
	c.sinceAdjust++
	if c.sinceAdjust >= c.Opts.AdjustEvery {
		c.sinceAdjust = 0
		if c.Opts.DisableRampAdjust {
			c.TuneThresholds()
			changed = true
		} else if c.AdjustRamps() {
			changed = true
		}
	}
	return changed
}

// window returns the recorded window, oldest first.
func (c *Controller) window() []Record {
	return c.lastRecords(c.filled)
}

// lastRecords returns the most recent n records, oldest first.
func (c *Controller) lastRecords(n int) []Record {
	if n > c.filled {
		n = c.filled
	}
	out := make([]Record, 0, n)
	start := c.next - n
	for i := 0; i < n; i++ {
		idx := (start + i + len(c.records)) % len(c.records)
		out = append(out, c.records[idx])
	}
	return out
}

// TuneThresholds runs one greedy tuning round and installs the resulting
// thresholds. The search runs on the older 60% of the record window and
// is validated on the held-out recent 40%: maximizing savings subject to
// a noisy loss estimate systematically selects configurations whose loss
// is underestimated (a winner's curse), so candidates violating the
// budget on held-out data are scaled down until they comply. Monotone
// loss in thresholds guarantees convergence.
func (c *Controller) TuneThresholds() {
	recs := c.window()
	if len(recs) == 0 || len(c.Cfg.Active) == 0 {
		return
	}
	c.TuneRounds++
	split := len(recs) * 3 / 5
	train, validate := recs[:split], recs[split:]
	if len(train) == 0 || len(validate) == 0 {
		res := GreedySearch(c.Cfg, recs, c.tuneBudget(), c.Opts.InitStep, c.Opts.MinStep)
		c.Cfg.SetThresholds(res.Thresholds)
		return
	}
	res := GreedySearch(c.Cfg, train, c.tuneBudget(), c.Opts.InitStep, c.Opts.MinStep)
	ts := res.Thresholds
	for i := 0; i < 12; i++ {
		if EvalThresholds(c.Cfg, validate, ts).AccLoss <= c.tuneBudget() {
			break
		}
		for j := range ts {
			ts[j] *= 0.75
		}
	}
	c.Cfg.SetThresholds(ts)
}

// tuneBudget is the accuracy-loss target handed to threshold searches:
// the user constraint with headroom for residual estimation noise and
// detection lag.
func (c *Controller) tuneBudget() float64 {
	return 0.6 * c.Opts.AccConstraint
}
