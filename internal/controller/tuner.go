package controller

import (
	"math"

	"repro/internal/ramp"
)

// EvalResult summarizes a threshold configuration replayed over a record
// window.
type EvalResult struct {
	// AccLoss is the fraction of inputs whose released result would
	// disagree with the original model.
	AccLoss float64
	// SavingFrac is the mean per-input latency saving as a fraction of
	// the model's bs=1 inference latency (ramp overheads included).
	SavingFrac float64
	// ExitCount[i] is the number of window inputs exiting at active
	// ramp i.
	ExitCount []int
}

// EvalThresholds replays the window under the given thresholds and
// reports accuracy and latency effects, accounting for inter-ramp
// dependencies (an input exits at the *earliest* ramp whose score is
// below threshold). Inputs lacking an observation for a ramp (the ramp
// was activated after they were recorded) are treated as not exiting
// there. No inference is required — exactly the §3.2 evaluation
// mechanism.
func EvalThresholds(cfg *ramp.Config, recs []Record, thresholds []float64) EvalResult {
	res := EvalResult{ExitCount: make([]int, len(cfg.Active))}
	if len(recs) == 0 {
		return res
	}
	wrong := 0
	totalSaving := 0.0
	allOverhead := cfg.OverheadFrac()
	for _, rec := range recs {
		exit := -1
		overheadUpTo := 0.0
		var exitFrac, exitOverhead float64
		var match bool
		for i, r := range cfg.Active {
			overheadUpTo += r.Style.OverheadFrac
			ob, ok := rec.Obs[r.Site.NodeID]
			if !ok {
				continue
			}
			if ob.Err < thresholds[i] {
				exit = i
				exitFrac = r.Site.Frac
				exitOverhead = overheadUpTo
				match = ob.Match
				break
			}
		}
		if exit >= 0 {
			res.ExitCount[exit]++
			if !match {
				wrong++
			}
			// Saving relative to running the full model with all ramps:
			// forgone layers minus the overhead of ramps up to the exit.
			totalSaving += (1 + allOverhead) - (exitFrac + exitOverhead)
		}
		// Non-exits save nothing (and pay all ramp overheads, already in
		// the baseline of "serving with this ramp set").
	}
	n := float64(len(recs))
	res.AccLoss = float64(wrong) / n
	res.SavingFrac = totalSaving / n
	return res
}

// TuneResult is the outcome of a threshold search.
type TuneResult struct {
	Thresholds []float64
	SavingFrac float64
	AccLoss    float64
	// Evals is the number of configuration evaluations performed, the
	// cost measure behind Figure 10.
	Evals int
}

// GreedySearch is Algorithm 1: hill climbing from all-zero thresholds
// with per-ramp multiplicative-increase/multiplicative-decrease step
// sizes. Each round tentatively raises each ramp's threshold in
// isolation, then commits the single change with the best additional
// saving per unit of additional accuracy loss. Steps double on a
// productive direction and halve when a ramp oversteps the accuracy
// boundary; the search stops when every step has collapsed to minStep
// and no move is admissible.
func GreedySearch(cfg *ramp.Config, recs []Record, accBudget, initStep, minStep float64) TuneResult {
	n := len(cfg.Active)
	thresholds := make([]float64, n)
	steps := make([]float64, n)
	for i := range steps {
		steps[i] = initStep
	}
	cur := EvalThresholds(cfg, recs, thresholds)
	evals := 1
	for {
		bestRamp := -1
		bestGain := 0.0
		var bestEval EvalResult
		var bestThreshold float64
		progressPossible := false
		for i := 0; i < n; i++ {
			if thresholds[i] >= 1 {
				continue // threshold saturated
			}
			progressPossible = true
			cand := thresholds[i] + steps[i]
			if cand > 1 {
				cand = 1
			}
			old := thresholds[i]
			thresholds[i] = cand
			ev := EvalThresholds(cfg, recs, thresholds)
			evals++
			thresholds[i] = old
			if ev.AccLoss > accBudget {
				continue // overstepped the accuracy boundary
			}
			dSav := ev.SavingFrac - cur.SavingFrac
			if dSav <= 0 {
				continue
			}
			dLoss := ev.AccLoss - cur.AccLoss
			gain := dSav / (dLoss + 1e-6)
			if bestRamp < 0 || gain > bestGain {
				bestRamp, bestGain, bestEval, bestThreshold = i, gain, ev, cand
			}
		}
		if !progressPossible {
			break
		}
		if bestRamp >= 0 {
			thresholds[bestRamp] = bestThreshold
			cur = bestEval
			steps[bestRamp] *= 2 // promising direction: speed up
			continue
		}
		// No admissible move this round: every ramp either overstepped
		// the accuracy boundary or has no productive direction at its
		// current step. Shrink steps to hone in on the boundary; stop
		// once every step has bottomed out.
		allMin := true
		for i := range steps {
			if steps[i] > minStep {
				steps[i] /= 2
				if steps[i] < minStep {
					steps[i] = minStep
				}
				allMin = false
			}
		}
		if allMin {
			break
		}
	}
	return TuneResult{Thresholds: thresholds, SavingFrac: cur.SavingFrac, AccLoss: cur.AccLoss, Evals: evals}
}

// GridSearch exhaustively evaluates thresholds over a uniform grid with
// the given step (the paper's comparison baseline, O((1/S)^R)). It
// returns the best-saving configuration within the accuracy budget.
func GridSearch(cfg *ramp.Config, recs []Record, accBudget, step float64) TuneResult {
	n := len(cfg.Active)
	levels := int(math.Round(1/step)) + 1
	thresholds := make([]float64, n)
	best := TuneResult{Thresholds: make([]float64, n)}
	evals := 0
	var walk func(i int)
	walk = func(i int) {
		if i == n {
			ev := EvalThresholds(cfg, recs, thresholds)
			evals++
			if ev.AccLoss <= accBudget && ev.SavingFrac > best.SavingFrac {
				copy(best.Thresholds, thresholds)
				best.SavingFrac = ev.SavingFrac
				best.AccLoss = ev.AccLoss
			}
			return
		}
		for l := 0; l < levels; l++ {
			thresholds[i] = float64(l) * step
			walk(i + 1)
		}
		thresholds[i] = 0
	}
	walk(0)
	best.Evals = evals
	return best
}
