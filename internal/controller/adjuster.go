package controller

import (
	"sort"

	"repro/internal/model"
	"repro/internal/ramp"
)

// Utility quantifies one active ramp's net effect on workload latency
// over the record window, in milliseconds (§3.3): savings summed over
// inputs it exited, minus the overhead it added to inputs that passed it
// without exiting (inputs that already exited upstream pay nothing —
// their result is already out).
type Utility struct {
	NodeID   int
	Savings  float64
	Overhead float64
	Exits    int
}

// Net returns savings − overhead.
func (u Utility) Net() float64 { return u.Savings - u.Overhead }

// utilities evaluates the current active set under its deployed
// thresholds against the window.
func (c *Controller) utilities(recs []Record) []Utility {
	cfg := c.Cfg
	out := make([]Utility, len(cfg.Active))
	base := cfg.Model.Latency(1)
	for i, r := range cfg.Active {
		out[i].NodeID = r.Site.NodeID
	}
	for _, rec := range recs {
		exited := false
		for i, r := range cfg.Active {
			ob, ok := rec.Obs[r.Site.NodeID]
			if exited {
				break
			}
			if ok && ob.Err < r.Threshold {
				// Saving: the layers this input skipped.
				out[i].Savings += base * (1 - r.Site.Frac)
				out[i].Exits++
				exited = true
			} else {
				// The ramp ran but could not exit this input.
				out[i].Overhead += base * r.Style.OverheadFrac
			}
		}
	}
	return out
}

// savedMS returns the per-exit latency saving of a ramp site.
func savedMS(m *model.Model, site model.RampSite) float64 {
	return m.Latency(1) * (1 - site.Frac)
}

// AdjustRamps is Algorithm 2, plus one robustness invariant: the active
// set never goes empty. During hostile regimes (heavy miscalibration
// drift) every ramp can show negative utility and be culled; without at
// least one ramp the controller would lose its feedback stream and never
// recover once the regime passes. A zero-threshold sentinel at the
// deepest feasible site keeps recovery possible at one ramp's overhead.
// It returns true if the active set changed.
func (c *Controller) AdjustRamps() bool {
	if len(c.Cfg.Active) == 0 {
		c.seedSentinel()
		return true
	}
	recs := c.window()
	if len(recs) < c.Opts.AccWindow {
		return false
	}
	c.AdjustRounds++
	utils := c.utilities(recs)

	anyNegative := false
	for _, u := range utils {
		if u.Net() < 0 {
			anyNegative = true
			break
		}
	}

	var deactivated []deactivatedRamp
	if anyNegative {
		// Try a fast threshold-tuning round first: thresholds may be
		// able to make every utility positive without hurting savings.
		before := EvalThresholds(c.Cfg, recs, c.Cfg.Thresholds())
		tuned := GreedySearch(c.Cfg, recs, c.tuneBudget(), c.Opts.InitStep, c.Opts.MinStep)
		if tuned.SavingFrac >= before.SavingFrac {
			c.Cfg.SetThresholds(tuned.Thresholds)
			utils = c.utilities(recs)
		}
		// Update persistence streaks under the (possibly) new
		// thresholds.
		totalExits := 0
		for _, u := range utils {
			totalExits += u.Exits
			if u.Net() < 0 {
				c.negStreak[u.NodeID]++
			} else {
				delete(c.negStreak, u.NodeID)
			}
		}
		// During a total storm — no ramp exits anything — every utility
		// is "negative" by the same overhead. Removing ramps then saves
		// a bounded overhead but destroys positions the system needs the
		// moment the regime passes (thresholds are already zero, so the
		// ramps cost nothing in accuracy). Deactivate only when some
		// ramps are productive and these are relative losers.
		if totalExits == 0 {
			return true
		}
		// Deactivate the single worst ramp whose utility has been
		// negative for two consecutive rounds, and never shrink the set
		// below two ramps: culling is cheap to undo in theory but
		// positions take many rounds to rediscover, so the set erodes
		// slowly while additions can still reclaim the freed budget.
		limit := 1
		if len(utils) <= 2 {
			limit = 0
		}
		for len(deactivated) < limit {
			worst := -1
			for i, u := range utils {
				if u.Net() < 0 && c.negStreak[u.NodeID] >= 2 &&
					(worst < 0 || u.Net() < utils[worst].Net()) {
					worst = i
				}
			}
			if worst < 0 {
				break
			}
			deactivated = append(deactivated, deactivatedRamp{
				site:  c.Cfg.Active[worst].Site,
				exits: utils[worst].Exits,
			})
			delete(c.negStreak, utils[worst].NodeID)
			c.Cfg.Deactivate(worst)
			utils = append(utils[:worst], utils[worst+1:]...)
		}
		if len(deactivated) == 0 {
			// Tuning fixed the utilities, or persistence has not built
			// up yet; nothing else to do.
			return true
		}
		// Restore depth order for the Figure 11 interval logic.
		sort.Slice(deactivated, func(i, j int) bool {
			return deactivated[i].site.Frac < deactivated[j].site.Frac
		})
		added := c.addAfterDeactivation(recs, deactivated)
		if len(c.Cfg.Active) == 0 {
			c.seedSentinel()
		}
		return added || len(deactivated) > 0
	}

	// All utilities positive: reset persistence and probe for earlier
	// savings.
	for k := range c.negStreak {
		delete(c.negStreak, k)
	}
	return c.probeEarlier(utils)
}

type deactivatedRamp struct {
	site  model.RampSite
	exits int
}

// seedSentinel activates the deepest feasible site with threshold 0:
// deepest because late ramps have the highest exit-rate bound (§3.3), so
// recovery starts where exits are most likely.
func (c *Controller) seedSentinel() {
	sites := c.Cfg.Sites
	if len(sites) == 0 {
		return
	}
	if err := c.Cfg.Activate(sites[len(sites)-1], ramp.StyleDefault); err != nil {
		panic("controller: sentinel activation failed: " + err.Error())
	}
}

// addAfterDeactivation implements the candidate-selection half of
// Algorithm 2 (Figure 11): consider sites after the latest
// positive-utility ramp P, split into intervals by the deactivated
// ramps, seed candidates at interval midpoints, and bound each
// candidate's exit rate by the summed profiled exit rates of the next
// deactivated ramp and all earlier deactivations.
func (c *Controller) addAfterDeactivation(recs []Record, deactivated []deactivatedRamp) bool {
	cfg := c.Cfg
	// Depth of the latest surviving (positive) ramp.
	lastPositive := 0.0
	for _, r := range cfg.Active {
		if r.Site.Frac > lastPositive {
			lastPositive = r.Site.Frac
		}
	}
	// Candidate pool: feasible, inactive sites after P that keep a
	// minimum separation from active ramps (clustered ramps waste
	// budget: their exit sets overlap almost entirely, §4.5).
	var pool []model.RampSite
	for _, s := range cfg.Sites {
		if s.Frac <= lastPositive {
			continue
		}
		if c.tooClose(s) {
			continue
		}
		pool = append(pool, s)
	}
	if len(pool) == 0 {
		return false
	}

	// Interval boundaries: the deactivated ramp depths after P.
	var bounds []deactivatedRamp
	for _, d := range deactivated {
		if d.site.Frac > lastPositive {
			bounds = append(bounds, d)
		}
	}

	// upperExits bounds a candidate's window exit count: inputs that
	// exited at the next deactivated ramp downstream, plus all earlier
	// deactivations (those inputs would have reached this depth and
	// might have exited here).
	windowN := len(recs)
	upperExits := func(frac float64) int {
		total := 0
		seenNext := false
		for _, b := range bounds {
			if b.site.Frac <= frac {
				total += b.exits // earlier deactivation
			} else if !seenNext {
				total += b.exits // the following deactivated ramp
				seenNext = true
			}
		}
		if total > windowN {
			total = windowN
		}
		return total
	}

	// Iteratively propose interval midpoints; on rejection move to later
	// candidates within each interval.
	lo := 0
	overheadMS := cfg.Model.Latency(1) * ramp.StyleDefault.OverheadFrac
	for lo < len(pool) {
		mid := (lo + len(pool) - 1) / 2
		cand := pool[mid]
		ub := upperExits(cand.Frac)
		utility := float64(ub)*savedMS(cfg.Model, cand) - float64(windowN-ub)*overheadMS
		if utility > 0 {
			if !cfg.WithinBudget(ramp.StyleDefault) {
				return false
			}
			if err := cfg.Activate(cand, ramp.StyleDefault); err != nil {
				return false
			}
			// Trial ramps start at threshold 0 (§3.3) and get tuned in
			// the next threshold round; nothing else to do here.
			return true
		}
		lo = mid + 1 // try later candidates
	}
	return false
}

// probeEarlier is the all-positive-utilities phase: if budget remains,
// add a trial ramp — alternating between the paper's rule (immediately
// before the highest-utility ramp, for earlier savings) and the midpoint
// of the largest uncovered depth interval (so coverage for hard inputs
// is re-established after deactivations; the following rounds' utilities
// decide whether the trial survives). With no budget left, shift the
// lowest-utility ramp one feasible position earlier (never touching the
// most positive ramp).
func (c *Controller) probeEarlier(utils []Utility) bool {
	cfg := c.Cfg
	if len(utils) == 0 {
		return false
	}
	best, worst := 0, 0
	for i, u := range utils {
		if u.Net() > utils[best].Net() {
			best = i
		}
		if u.Net() < utils[worst].Net() {
			worst = i
		}
	}
	if cfg.WithinBudget(ramp.StyleDefault) {
		c.probeClock++
		if c.probeClock%2 == 0 {
			if site, ok := c.largestGapSite(); ok {
				return cfg.Activate(site, ramp.StyleDefault) == nil
			}
		}
		// Add immediately before the highest-utility ramp.
		if site, ok := c.siteBefore(cfg.Active[best].Site); ok {
			return cfg.Activate(site, ramp.StyleDefault) == nil
		}
		return false
	}
	if worst == best || len(cfg.Active) < 2 {
		return false
	}
	if site, ok := c.siteBefore(cfg.Active[worst].Site); ok {
		style := cfg.Active[worst].Style
		threshold := cfg.Active[worst].Threshold
		cfg.Deactivate(worst)
		if err := cfg.Activate(site, style); err != nil {
			return false
		}
		// The shifted ramp keeps its threshold as a starting point; the
		// next tuning round refines it.
		for _, r := range cfg.Active {
			if r.Site.NodeID == site.NodeID {
				r.Threshold = threshold
			}
		}
		return true
	}
	return false
}

// largestGapSite returns the feasible, inactive site closest to the
// midpoint of the largest uncovered depth interval (between consecutive
// active ramps, or between the deepest ramp and the end of the model).
func (c *Controller) largestGapSite() (model.RampSite, bool) {
	cfg := c.Cfg
	// Active depths plus virtual boundaries.
	depths := []float64{0}
	for _, r := range cfg.Active {
		depths = append(depths, r.Site.Frac)
	}
	end := 0.97
	if n := len(cfg.Sites); n > 0 {
		end = cfg.Sites[n-1].Frac
	}
	depths = append(depths, end)
	gapLo, gapHi := 0.0, 0.0
	for i := 1; i < len(depths); i++ {
		if depths[i]-depths[i-1] > gapHi-gapLo {
			gapLo, gapHi = depths[i-1], depths[i]
		}
	}
	mid := (gapLo + gapHi) / 2
	var found model.RampSite
	ok := false
	bestDist := 2.0
	for _, s := range cfg.Sites {
		if s.Frac <= gapLo || s.Frac >= gapHi || c.tooClose(s) {
			continue
		}
		dist := s.Frac - mid
		if dist < 0 {
			dist = -dist
		}
		if dist < bestDist {
			bestDist = dist
			found = s
			ok = true
		}
	}
	return found, ok
}

// minRampSeparation is the minimum depth-fraction distance between two
// active ramps; closer ramps exit nearly identical input sets while
// doubling the overhead.
const minRampSeparation = 0.04

// tooClose reports whether a site is within minRampSeparation of any
// active ramp (or already active).
func (c *Controller) tooClose(s model.RampSite) bool {
	for _, r := range c.Cfg.Active {
		d := r.Site.Frac - s.Frac
		if d < 0 {
			d = -d
		}
		if d < minRampSeparation {
			return true
		}
	}
	return false
}

// siteBefore returns a feasible, inactive site strictly shallower than
// the given site: the site closest to the midpoint between the previous
// active ramp (or the model start) and the given site. Placing probes at
// gap midpoints closes coverage holes in O(log gap) rounds after
// deactivation storms instead of one adjacent site at a time.
func (c *Controller) siteBefore(site model.RampSite) (model.RampSite, bool) {
	cfg := c.Cfg
	prevActive := 0.0
	for _, r := range cfg.Active {
		if r.Site.Frac < site.Frac && r.Site.Frac > prevActive {
			prevActive = r.Site.Frac
		}
	}
	mid := (prevActive + site.Frac) / 2
	var found model.RampSite
	ok := false
	bestDist := 2.0
	for _, s := range cfg.Sites {
		if s.Frac >= site.Frac || s.Frac <= prevActive {
			continue
		}
		if c.tooClose(s) {
			continue
		}
		dist := s.Frac - mid
		if dist < 0 {
			dist = -dist
		}
		if dist < bestDist {
			bestDist = dist
			found = s
			ok = true
		}
	}
	return found, ok
}
