package controller

import (
	"testing"
	"testing/quick"

	"repro/internal/exitsim"
	"repro/internal/model"
	"repro/internal/ramp"
	"repro/internal/rng"
	"repro/internal/workload"
)

// newCfg builds a deployed ResNet50/video configuration.
func newCfg() *ramp.Config {
	m := model.ResNet50()
	cfg := ramp.NewConfig(m, exitsim.ProfileFor(m, exitsim.KindVideo), 0.02)
	cfg.DeployInitial(ramp.StyleDefault)
	return cfg
}

// record converts an outcome into a controller Record.
func record(cfg *ramp.Config, out ramp.Outcome) Record {
	rec := Record{Obs: make(map[int]ramp.Observation)}
	for i, ob := range out.PerRamp {
		rec.Obs[cfg.Active[i].Site.NodeID] = ob
	}
	return rec
}

// makeRecords evaluates n samples from the stream through cfg.
func makeRecords(cfg *ramp.Config, samples []exitsim.Sample) []Record {
	recs := make([]Record, len(samples))
	for i, s := range samples {
		recs[i] = record(cfg, cfg.Evaluate(s, 1))
	}
	return recs
}

func videoSamples(n int) []exitsim.Sample {
	return workload.Video(0, n, 30, 42).Samples()
}

func TestEvalZeroThresholdsNeutral(t *testing.T) {
	cfg := newCfg()
	recs := makeRecords(cfg, videoSamples(200))
	res := EvalThresholds(cfg, recs, make([]float64, len(cfg.Active)))
	if res.AccLoss != 0 || res.SavingFrac != 0 {
		t.Fatalf("zero thresholds gave loss=%v saving=%v", res.AccLoss, res.SavingFrac)
	}
	for _, c := range res.ExitCount {
		if c != 0 {
			t.Fatal("zero thresholds produced exits")
		}
	}
}

func TestEvalMonotoneInThresholds(t *testing.T) {
	// The fundamental EE property (§3.2): raising any single threshold
	// never decreases latency savings and never decreases accuracy loss.
	cfg := newCfg()
	recs := makeRecords(cfg, videoSamples(300))
	n := len(cfg.Active)
	check := func(seed uint64) bool {
		r := rng.New(seed)
		base := make([]float64, n)
		for i := range base {
			base[i] = r.Float64() * 0.5
		}
		b := EvalThresholds(cfg, recs, base)
		i := r.Intn(n)
		raised := make([]float64, n)
		copy(raised, base)
		raised[i] += r.Float64() * (1 - raised[i])
		a := EvalThresholds(cfg, recs, raised)
		return a.SavingFrac >= b.SavingFrac-1e-12 && a.AccLoss >= b.AccLoss-1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEvalEarliestRampWins(t *testing.T) {
	cfg := newCfg()
	recs := makeRecords(cfg, videoSamples(100))
	// With every threshold maxed, all exits should land on ramp 0 unless
	// its error score was >= 1 (impossible since scores are clamped < 1
	// only when threshold is 1.0 exclusive); allow ramp 0 or none.
	ts := make([]float64, len(cfg.Active))
	for i := range ts {
		ts[i] = 1.0
	}
	res := EvalThresholds(cfg, recs, ts)
	for i := 1; i < len(res.ExitCount); i++ {
		if res.ExitCount[i] > res.ExitCount[0] {
			t.Fatalf("deeper ramp %d captured more exits (%d) than ramp 0 (%d) at max thresholds",
				i, res.ExitCount[i], res.ExitCount[0])
		}
	}
}

func TestEvalMissingObservationsNoExit(t *testing.T) {
	cfg := newCfg()
	recs := makeRecords(cfg, videoSamples(50))
	// Strip ramp 0's observations: no record can exit there.
	node0 := cfg.Active[0].Site.NodeID
	for _, rec := range recs {
		delete(rec.Obs, node0)
	}
	ts := make([]float64, len(cfg.Active))
	ts[0] = 1.0
	res := EvalThresholds(cfg, recs, ts)
	if res.ExitCount[0] != 0 {
		t.Fatal("exits attributed to a ramp with no observations")
	}
}

func TestGreedyRespectsBudget(t *testing.T) {
	cfg := newCfg()
	recs := makeRecords(cfg, videoSamples(256))
	for _, budget := range []float64{0.01, 0.02, 0.05} {
		res := GreedySearch(cfg, recs, budget, 0.1, 0.01)
		if res.AccLoss > budget {
			t.Fatalf("greedy violated budget %v: loss %v", budget, res.AccLoss)
		}
	}
}

func TestGreedyFindsSavings(t *testing.T) {
	cfg := newCfg()
	recs := makeRecords(cfg, videoSamples(256))
	res := GreedySearch(cfg, recs, 0.01, 0.1, 0.01)
	if res.SavingFrac <= 0 {
		t.Fatal("greedy found no savings on an easy video workload")
	}
}

func TestGreedyNearOptimal(t *testing.T) {
	// Figure 10b: greedy is within a few percent of grid search. Use two
	// ramps to keep the grid cheap.
	m := model.ResNet50()
	cfg := ramp.NewConfig(m, exitsim.ProfileFor(m, exitsim.KindVideo), 0.02)
	sites := cfg.Sites
	_ = cfg.Activate(sites[2], ramp.StyleDefault)
	_ = cfg.Activate(sites[8], ramp.StyleDefault)
	recs := makeRecords(cfg, videoSamples(256))

	grid := GridSearch(cfg, recs, 0.01, 0.05)
	greedy := GreedySearch(cfg, recs, 0.01, 0.1, 0.01)
	if grid.SavingFrac <= 0 {
		t.Fatal("grid found no savings; test setup broken")
	}
	gap := (grid.SavingFrac - greedy.SavingFrac) / grid.SavingFrac
	if gap > 0.10 {
		t.Fatalf("greedy optimality gap %.1f%% > 10%%", gap*100)
	}
	if greedy.Evals >= grid.Evals {
		t.Fatalf("greedy used %d evals, grid %d — no speedup", greedy.Evals, grid.Evals)
	}
}

func TestGreedyFarFewerEvalsThanGrid(t *testing.T) {
	// Figure 10a: orders of magnitude fewer evaluations at 3–4 ramps.
	m := model.ResNet50()
	cfg := ramp.NewConfig(m, exitsim.ProfileFor(m, exitsim.KindVideo), 0.02)
	for _, i := range []int{1, 5, 9, 13} {
		_ = cfg.Activate(cfg.Sites[i], ramp.StyleDefault)
	}
	recs := makeRecords(cfg, videoSamples(128))
	greedy := GreedySearch(cfg, recs, 0.01, 0.1, 0.01)
	// Grid with step 0.1 over 4 ramps = 11^4 = 14641 evals.
	if greedy.Evals > 1464 {
		t.Fatalf("greedy used %d evals, want <= 10%% of grid's 14641", greedy.Evals)
	}
}

func TestGridRespectsBudget(t *testing.T) {
	m := model.ResNet50()
	cfg := ramp.NewConfig(m, exitsim.ProfileFor(m, exitsim.KindVideo), 0.02)
	_ = cfg.Activate(cfg.Sites[3], ramp.StyleDefault)
	_ = cfg.Activate(cfg.Sites[9], ramp.StyleDefault)
	recs := makeRecords(cfg, videoSamples(128))
	res := GridSearch(cfg, recs, 0.01, 0.1)
	if res.AccLoss > 0.01 {
		t.Fatalf("grid violated budget: %v", res.AccLoss)
	}
}

func TestControllerBootstrapsExits(t *testing.T) {
	cfg := newCfg()
	ctl := New(cfg, Config{})
	stream := workload.Video(0, 600, 30, 7)
	exits := 0
	for _, req := range stream.Materialize() {
		out := cfg.Evaluate(req.Sample, 1)
		if out.ExitIndex >= 0 {
			exits++
		}
		ctl.Observe(out)
	}
	if exits == 0 {
		t.Fatal("controller never bootstrapped exiting from zero thresholds")
	}
}

func TestControllerMaintainsAccuracy(t *testing.T) {
	cfg := newCfg()
	ctl := New(cfg, Config{AccConstraint: 0.01})
	stream := workload.Video(1, 8000, 30, 11) // night video with regime shifts
	correct, total := 0, 0
	warmup := 1000
	for i, req := range stream.Materialize() {
		out := cfg.Evaluate(req.Sample, 1)
		ctl.Observe(out)
		if i >= warmup {
			total++
			if out.Correct {
				correct++
			}
		}
	}
	acc := float64(correct) / float64(total)
	// The paper's bound is per-window with continual adaptation; allow a
	// small margin over the long-run average.
	// The constraint applies to tuning windows; the long-run average
	// includes the detection transients of each regime shift.
	if acc < 0.975 {
		t.Fatalf("long-run accuracy %.4f below constraint margin", acc)
	}
	if ctl.TuneRounds == 0 {
		t.Fatal("controller never tuned thresholds")
	}
}

func TestControllerAdjustsRamps(t *testing.T) {
	cfg := newCfg()
	ctl := New(cfg, Config{})
	stream := workload.Video(0, 3000, 30, 13)
	for _, req := range stream.Materialize() {
		ctl.Observe(cfg.Evaluate(req.Sample, 1))
	}
	if ctl.AdjustRounds == 0 {
		t.Fatal("controller never ran ramp adjustment")
	}
	if cfg.OverheadFrac() > cfg.BudgetFrac+1e-9 {
		t.Fatalf("adjustment exceeded ramp budget: %v > %v", cfg.OverheadFrac(), cfg.BudgetFrac)
	}
}

func TestAblationTunesWithoutAdjusting(t *testing.T) {
	cfg := newCfg()
	ctl := New(cfg, Config{DisableRampAdjust: true})
	before := make([]int, 0, len(cfg.Active))
	for _, r := range cfg.Active {
		before = append(before, r.Site.NodeID)
	}
	stream := workload.Video(0, 2000, 30, 17)
	exits := 0
	for _, req := range stream.Materialize() {
		out := cfg.Evaluate(req.Sample, 1)
		if out.ExitIndex >= 0 {
			exits++
		}
		ctl.Observe(out)
	}
	if ctl.AdjustRounds != 0 {
		t.Fatal("ablation ran ramp adjustment")
	}
	if exits == 0 {
		t.Fatal("ablation produced no exits (tuning broken)")
	}
	// The ramp set must be untouched.
	if len(cfg.Active) != len(before) {
		t.Fatal("ablation changed the ramp set size")
	}
	for i, r := range cfg.Active {
		if r.Site.NodeID != before[i] {
			t.Fatal("ablation moved a ramp")
		}
	}
}

func TestUtilitiesNegativeWithoutExits(t *testing.T) {
	cfg := newCfg() // thresholds all zero: no exits
	ctl := New(cfg, Config{})
	recs := makeRecords(cfg, videoSamples(128))
	copy(ctl.records, recs)
	ctl.filled = len(recs)
	utils := ctl.utilities(recs)
	for i, u := range utils {
		if u.Net() >= 0 {
			t.Fatalf("ramp %d utility %v not negative with zero exits", i, u.Net())
		}
		if u.Exits != 0 || u.Savings != 0 {
			t.Fatalf("ramp %d has phantom exits: %+v", i, u)
		}
	}
}

func TestUtilitiesCountExits(t *testing.T) {
	cfg := newCfg()
	cfg.Active[0].Threshold = 0.9 // aggressive first ramp
	ctl := New(cfg, Config{})
	recs := makeRecords(cfg, videoSamples(128))
	utils := ctl.utilities(recs)
	if utils[0].Exits == 0 {
		t.Fatal("aggressive ramp recorded no exits")
	}
	if utils[0].Savings <= 0 {
		t.Fatal("exiting ramp has no savings")
	}
	// Inputs exiting at ramp 0 must not be charged overhead at ramp 1.
	maxOverhead := float64(128-utils[0].Exits) * cfg.Model.Latency(1) * cfg.Active[1].Style.OverheadFrac
	if utils[1].Overhead > maxOverhead+1e-9 {
		t.Fatalf("downstream ramp overcharged: %v > %v", utils[1].Overhead, maxOverhead)
	}
}

func TestStormPreservesRampPositions(t *testing.T) {
	cfg := newCfg()
	ctl := New(cfg, Config{})
	before := len(cfg.Active)
	// A stream of impossible inputs is a "total storm": no ramp exits
	// anything, thresholds stay at zero, and the controller must NOT
	// destroy ramp positions (they cost nothing in accuracy and are
	// needed the moment the regime passes).
	r := rng.New(3)
	for i := 0; i < 1024; i++ {
		s := exitsim.Sample{Difficulty: 5, MatchU: 0.999, NoiseKey: r.Uint64()}
		ctl.Observe(cfg.Evaluate(s, 1))
	}
	if len(cfg.Active) != before {
		t.Fatalf("storm changed the ramp set: %d -> %d", before, len(cfg.Active))
	}
}

func TestAdjustCullsRelativeLosers(t *testing.T) {
	cfg := newCfg()
	ctl := New(cfg, Config{})
	// An easy stream exits almost everything at the first ramp; deep
	// ramps idle, show persistent negative utility, and should be
	// culled (down to the 2-ramp floor) with the budget reusable.
	stream := workload.Video(0, 6000, 30, 33)
	for _, req := range stream.Materialize() {
		ctl.Observe(cfg.Evaluate(req.Sample, 1))
	}
	if len(cfg.Active) < 2 {
		t.Fatalf("culling went below the 2-ramp floor: %d", len(cfg.Active))
	}
	if ctl.AdjustRounds == 0 {
		t.Fatal("no adjustment rounds ran")
	}
}

func TestSiteBefore(t *testing.T) {
	cfg := newCfg()
	ctl := New(cfg, Config{})
	// Site before the deepest active ramp must be shallower and inactive.
	deepest := cfg.Active[len(cfg.Active)-1]
	site, ok := ctl.siteBefore(deepest.Site)
	if !ok {
		t.Fatal("no site before the deepest ramp")
	}
	if site.Frac >= deepest.Site.Frac {
		t.Fatal("siteBefore returned a deeper site")
	}
	for _, r := range cfg.Active {
		if r.Site.NodeID == site.NodeID {
			t.Fatal("siteBefore returned an active site")
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.AccConstraint != 0.01 || c.AccWindow != 16 || c.RecordWindow != 512 ||
		c.AdjustEvery != 128 || c.MinStep != 0.01 || c.InitStep != 0.1 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
}
