package controller

import (
	"testing"

	"repro/internal/ramp"
)

// Bursty-window coverage for the tuning loop: schedule-driven load means
// the controller can be asked to tune on degenerate windows — empty
// right after a (re)start, a single record after an idle stretch, or a
// window of alternating SLO misses — and must stay well-defined in all
// of them. The steady-state paths are covered in controller_test.go.

func thresholdsInRange(t *testing.T, cfg *ramp.Config) {
	t.Helper()
	for i, r := range cfg.Active {
		if r.Threshold < 0 || r.Threshold > 1 {
			t.Fatalf("ramp %d threshold %v outside [0, 1]", i, r.Threshold)
		}
	}
}

func TestTuneThresholdsEmptyWindow(t *testing.T) {
	cfg := newCfg()
	ctl := New(cfg, Config{})
	ctl.TuneThresholds() // no observations at all
	if ctl.TuneRounds != 0 {
		t.Fatalf("empty window counted %d tuning rounds, want 0", ctl.TuneRounds)
	}
	thresholdsInRange(t, cfg)
}

func TestTuneThresholdsSingleRecordWindow(t *testing.T) {
	cfg := newCfg()
	ctl := New(cfg, Config{})
	recs := makeRecords(cfg, videoSamples(1))
	ctl.records[0] = recs[0]
	ctl.next, ctl.filled = 1, 1
	// One record: the train/validate split degenerates (train empty), so
	// tuning must fall back to searching the whole window.
	ctl.TuneThresholds()
	if ctl.TuneRounds != 1 {
		t.Fatalf("single-record window counted %d tuning rounds, want 1", ctl.TuneRounds)
	}
	thresholdsInRange(t, cfg)
}

func TestTuneThresholdsNoActiveRamps(t *testing.T) {
	cfg := newCfg()
	ctl := New(cfg, Config{})
	recs := makeRecords(cfg, videoSamples(64))
	for i, r := range recs {
		ctl.records[i] = r
	}
	ctl.next, ctl.filled = 64, 64
	for len(cfg.Active) > 0 {
		cfg.Deactivate(0)
	}
	ctl.TuneThresholds() // nothing to tune; must not panic or count
	if ctl.TuneRounds != 0 {
		t.Fatalf("rampless tuning counted %d rounds, want 0", ctl.TuneRounds)
	}
}

func TestObserveAlternatingMissesTriggersTuning(t *testing.T) {
	cfg := newCfg()
	ctl := New(cfg, Config{AccWindow: 16, AccConstraint: 0.01})
	// Alternate correct/incorrect outcomes: windowed accuracy ~0.5 is a
	// hard violation of the 1% constraint, so tuning must fire as soon
	// as the window fills, and the accuracy window must be judged on
	// fresh outcomes afterwards (Reset).
	samples := videoSamples(64)
	fired := 0
	for i, s := range samples {
		out := cfg.Evaluate(s, 1)
		out.Correct = i%2 == 0
		if ctl.Observe(out) {
			fired++
			if ctl.acc.Full() {
				t.Fatal("accuracy window not reset after a tuning round")
			}
		}
	}
	if fired == 0 || ctl.TuneRounds == 0 {
		t.Fatalf("alternating misses fired %d changes, %d tuning rounds; want both > 0", fired, ctl.TuneRounds)
	}
	thresholdsInRange(t, cfg)
}

func TestObserveAllCorrectNeverTunesOnAccuracy(t *testing.T) {
	cfg := newCfg()
	ctl := New(cfg, Config{AccWindow: 16, AccConstraint: 0.01, AdjustEvery: 1 << 30})
	for _, s := range videoSamples(128) {
		out := cfg.Evaluate(s, 1)
		out.Correct = true
		ctl.Observe(out)
	}
	if ctl.TuneRounds != 0 {
		t.Fatalf("all-correct stream triggered %d accuracy tuning rounds", ctl.TuneRounds)
	}
}

func TestTuneBudgetHeadroom(t *testing.T) {
	ctl := New(newCfg(), Config{AccConstraint: 0.02})
	if got, want := ctl.tuneBudget(), 0.6*0.02; got != want {
		t.Fatalf("tuneBudget() = %v, want %v (60%% of the constraint)", got, want)
	}
	// The headroom must keep the search target strictly inside the user
	// constraint, or validation could admit boundary configurations.
	if ctl.tuneBudget() >= ctl.Opts.AccConstraint {
		t.Fatal("tuning budget not strictly below the user constraint")
	}
}
