package controller

import (
	"testing"

	"repro/internal/exitsim"
	"repro/internal/model"
	"repro/internal/ramp"
	"repro/internal/workload"
)

func TestSentinelRevivesEmptySet(t *testing.T) {
	cfg := newCfg()
	ctl := New(cfg, Config{})
	// Empty the set manually (the invariant is enforced by AdjustRamps,
	// not by Deactivate).
	for len(cfg.Active) > 0 {
		cfg.Deactivate(0)
	}
	if !ctl.AdjustRamps() {
		t.Fatal("AdjustRamps reported no change on an empty set")
	}
	if len(cfg.Active) != 1 {
		t.Fatalf("sentinel seeding produced %d ramps, want 1", len(cfg.Active))
	}
	deepest := cfg.Sites[len(cfg.Sites)-1]
	if cfg.Active[0].Site.NodeID != deepest.NodeID {
		t.Fatal("sentinel not at the deepest feasible site")
	}
	if cfg.Active[0].Threshold != 0 {
		t.Fatal("sentinel threshold not zero")
	}
}

func TestTooCloseSeparation(t *testing.T) {
	cfg := newCfg()
	ctl := New(cfg, Config{})
	// Clear and activate one mid ramp.
	for len(cfg.Active) > 0 {
		cfg.Deactivate(0)
	}
	mid := cfg.Sites[len(cfg.Sites)/2]
	if err := cfg.Activate(mid, ramp.StyleDefault); err != nil {
		t.Fatal(err)
	}
	if !ctl.tooClose(mid) {
		t.Fatal("active site not reported too close to itself")
	}
	for _, s := range cfg.Sites {
		d := s.Frac - mid.Frac
		if d < 0 {
			d = -d
		}
		if got := ctl.tooClose(s); got != (d < minRampSeparation) {
			t.Fatalf("tooClose(%v) = %v for distance %v", s.Frac, got, d)
		}
	}
}

func TestLargestGapSiteFindsDeepGap(t *testing.T) {
	cfg := newCfg()
	ctl := New(cfg, Config{})
	// Leave only the two shallowest ramps: the deep half is the gap.
	for len(cfg.Active) > 2 {
		cfg.Deactivate(len(cfg.Active) - 1)
	}
	site, ok := ctl.largestGapSite()
	if !ok {
		t.Fatal("no gap site found")
	}
	deepestActive := cfg.Active[len(cfg.Active)-1].Site.Frac
	if site.Frac <= deepestActive {
		t.Fatalf("gap site %v not in the deep gap beyond %v", site.Frac, deepestActive)
	}
	// Roughly central in the gap.
	end := cfg.Sites[len(cfg.Sites)-1].Frac
	mid := (deepestActive + end) / 2
	if site.Frac < mid-0.2 || site.Frac > mid+0.2 {
		t.Fatalf("gap site %v far from gap midpoint %v", site.Frac, mid)
	}
}

func TestNegativeStreakResetsOnRecovery(t *testing.T) {
	cfg := newCfg()
	ctl := New(cfg, Config{})
	// Run an easy stream so utilities go positive; any streak built
	// during bootstrap must be cleared.
	stream := workload.Video(0, 2000, 30, 61)
	for _, req := range stream.Materialize() {
		ctl.Observe(cfg.Evaluate(req.Sample, 1))
	}
	for node, streak := range ctl.negStreak {
		if streak >= 2 {
			t.Fatalf("node %d kept streak %d through a productive phase", node, streak)
		}
	}
}

func TestAdjustKeepsBudgetThroughChurn(t *testing.T) {
	// Long mixed stream: every adjustment round must respect the ramp
	// budget and the 2-ramp floor whenever deactivation ran.
	m := model.ResNet50()
	cfg := ramp.NewConfig(m, exitsim.ProfileFor(m, exitsim.KindVideo), 0.02)
	cfg.DeployInitial(ramp.StyleDefault)
	ctl := New(cfg, Config{})
	stream := workload.Video(1, 10000, 30, 62)
	for _, req := range stream.Materialize() {
		ctl.Observe(cfg.Evaluate(req.Sample, 1))
		if cfg.OverheadFrac() > cfg.BudgetFrac+1e-9 {
			t.Fatalf("budget exceeded mid-run: %v", cfg.OverheadFrac())
		}
		if len(cfg.Active) < 1 {
			t.Fatal("active set went empty")
		}
	}
}

func TestMinSeparationHoldsAfterAdaptation(t *testing.T) {
	cfg := newCfg()
	ctl := New(cfg, Config{})
	stream := workload.Video(3, 8000, 30, 63)
	for _, req := range stream.Materialize() {
		ctl.Observe(cfg.Evaluate(req.Sample, 1))
	}
	// The initial even spacing may be tighter than the separation rule;
	// ramps *added* by adaptation must not be near-duplicates.
	for i := 1; i < len(cfg.Active); i++ {
		d := cfg.Active[i].Site.Frac - cfg.Active[i-1].Site.Frac
		if d <= 0 {
			t.Fatalf("active set out of order or duplicated at %d", i)
		}
	}
}
