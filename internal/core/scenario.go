package core

import (
	"fmt"
	"strings"

	"repro/internal/autoscale"
	"repro/internal/controller"
	"repro/internal/exitrule"
	"repro/internal/exitsim"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/serving"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Scenario is one fully specified serving experiment: a model, a
// workload, a platform configuration, and Apparate's parameters. It is
// the uniform entry point shared by apparate-serve (one scenario),
// apparate-sweep (a grid of them), examples, and tests — every field is
// a plain value so a Scenario can be hashed, filtered, and serialized.
type Scenario struct {
	Model    string `json:"model"`
	Workload string `json:"workload"`
	// Platform is "clockwork" or "tf-serve" (classification only).
	Platform string `json:"platform"`
	// Dispatch is "round-robin" or "least-loaded"; it only matters when
	// Replicas > 1.
	Dispatch string `json:"dispatch"`
	// Replicas is the cluster width; 1 runs the single-replica simulator.
	Replicas int `json:"replicas"`
	// N is the request count (sequences for generative workloads).
	N    int    `json:"n"`
	Seed uint64 `json:"seed"`
	// RateMult scales the workload's native arrival rate (video frame
	// rate, trace-derived NLP QPS, or generative sequence rate).
	RateMult float64 `json:"rate_mult"`
	// RampBudget and AccLoss are Apparate's two user-facing parameters.
	RampBudget float64 `json:"ramp_budget"`
	AccLoss    float64 `json:"acc_loss"`
	// ExitRule optionally overrides the exit strategy ("entropy",
	// "windowed-K", "patience-P").
	ExitRule string `json:"exit_rule,omitempty"`
	// GenSlots and GenFlush override the generative engine's
	// continuous-batching slot count and pending-token flush threshold
	// (0 = engine defaults; generative workloads only).
	GenSlots int `json:"gen_slots,omitempty"`
	GenFlush int `json:"gen_flush,omitempty"`
	// KVBlocks, BlockTokens, PrefixHit, and PrefillChunk configure the
	// generative engine's KV-block memory runtime (generative workloads
	// only; all identity-omitted when unset so pre-KV seeds and golden
	// rows never shift). KVBlocks bounds the per-engine KV pool — a
	// sequence holds ⌈(prompt+generated)/BlockTokens⌉ blocks to run,
	// admission blocks FIFO when the pool is exhausted, and overflow
	// preempts + requeues the youngest running sequence (0 = unbounded).
	// BlockTokens sets tokens per block (0 = the engine default of 16;
	// meaningful only with a pool). PrefixHit is the prefix-cache hit
	// probability in [0,1] — hits skip prompt prefill, drawing only from
	// the dedicated "gen.prefix" labeled stream. PrefillChunk chunks
	// prompts longer than the threshold so prefill interleaves with
	// decode on the engine clock (0 = monolithic).
	KVBlocks     int     `json:"kv_blocks,omitempty"`
	BlockTokens  int     `json:"block_tokens,omitempty"`
	PrefixHit    float64 `json:"prefix_hit,omitempty"`
	PrefillChunk int     `json:"prefill_chunk,omitempty"`
	// Metrics selects the latency recorder: "exact" (default) keeps
	// every sample for exact percentiles; "sketch" streams samples into
	// a bounded-memory quantile sketch (~0.5% percentile error) so
	// million-request scenarios run in O(1) memory.
	Metrics string `json:"metrics,omitempty"`
	// RateSchedule makes the arrival rate time-varying: a trace.Schedule
	// spec ("phases:10x1/10x4", "sine:60/0.5/2", "square:30/0.5/4")
	// whose multipliers apply on top of the native rate × RateMult.
	// Empty keeps the workload's stationary arrival process.
	// Classification workloads only; generative scenarios clear it.
	RateSchedule string `json:"rate_schedule,omitempty"`
	// Autoscale replaces the fixed Replicas count with a reactive
	// replica autoscaler: an autoscale spec such as "1..4" or
	// "1..4/window=2000/cool=6000". When set, Replicas is canonicalized
	// to the autoscaler's min (the starting width); the cluster then
	// adds and retires replicas mid-run on windowed backlog and
	// p99-vs-SLO signals. Classification workloads only.
	Autoscale string `json:"autoscale,omitempty"`
	// Hetero makes the cluster heterogeneous: comma-separated positive
	// speed factors cycled over replica indexes ("1,0.5" makes every
	// odd replica half as fast). Dispatch policies see the scaled
	// service times, so least-loaded shifts traffic toward the fast
	// replicas. Cluster scenarios only (Replicas > 1 or Autoscale);
	// single-replica scenarios clear it.
	Hetero string `json:"hetero,omitempty"`
	// Faults injects the deterministic fault model: a faults.Spec string
	// such as "crash:r1@2000+500;delaydist=lognormal:5,1;loss=0.001"
	// describing replica crash/restart schedules (one-shot and periodic
	// MTBF/MTTR), dispatcher→replica network delay distributions, and
	// request-level transit loss. Fault randomness draws from rng
	// streams labeled off the scenario seed, so the base scenario's
	// arrival and service draws are unchanged. Empty (the default) is a
	// perfectly reliable cluster — pre-fault behavior, byte for byte.
	// Classification workloads only.
	Faults string `json:"faults,omitempty"`
	// Retry is the dispatcher's retry/hedging policy: a faults.Retry
	// spec such as "attempts=3" or "attempts=2/hedge=95" (bounded
	// re-dispatch attempts, duplicate dispatch after a latency-quantile
	// deadline, failed-replica exclusion). Empty dispatches each request
	// exactly once. Classification workloads only.
	Retry string `json:"retry,omitempty"`
	// Trace records the Apparate run's full request lifecycle (arrival,
	// dispatch, queueing, service, completion, and every fault-path
	// event) into an obs.Tracer, retrievable via RunScenarioObs.
	// Timeline additionally samples cluster gauges every ObsTickMS
	// virtual milliseconds (0 = obs.DefaultTickMS) into an obs.Timeline.
	// Observability knobs never enter Identity — attaching a tracer
	// must not shift a scenario's derived seed or any simulated
	// outcome. Generative scenarios trace sequence lifecycles
	// (seq_arrive … seq_complete) and sample KV-pool gauges instead of
	// cluster gauges.
	Trace     bool    `json:"trace,omitempty"`
	Timeline  bool    `json:"timeline,omitempty"`
	ObsTickMS float64 `json:"obs_tick_ms,omitempty"`
	// Shards, when > 1, runs the scenario's replica groups on parallel
	// engine loops with a deterministic merge — round-robin clusters
	// shard by stream replay, queue-state dispatch (least-loaded / JSQ)
	// by the conservative-lookahead dispatcher protocol. It is an
	// execution knob, not a scenario axis: results are byte-identical
	// at any shard count (configurations sharding cannot decompose
	// exactly run serial, reported via Result.*ShardMode), so Shards
	// never enters Identity or the result JSON — like Trace/Timeline it
	// cannot shift a seed or an outcome.
	Shards int `json:"-"`
}

// Normalize fills defaults and canonicalizes axes that a scenario class
// ignores, so equivalent scenarios compare equal: generative serving has
// no platform batching policy, dispatch, or replica axis, and dispatch
// is meaningless below two replicas.
func (sc Scenario) Normalize() Scenario {
	if sc.Platform == "" {
		sc.Platform = "clockwork"
	}
	if sc.Dispatch == "" {
		sc.Dispatch = "round-robin"
	}
	if sc.Replicas <= 0 {
		sc.Replicas = 1
	}
	if sc.RateMult == 0 {
		sc.RateMult = 1
	}
	if sc.RampBudget == 0 {
		sc.RampBudget = 0.02
	}
	if sc.AccLoss == 0 {
		sc.AccLoss = 0.01
	}
	if workload.IsGenerative(sc.Workload) {
		sc.Platform = "clockwork"
		sc.Dispatch = "round-robin"
		sc.Replicas = 1
		sc.RateSchedule = ""
		sc.Autoscale = ""
		sc.Hetero = ""
		sc.Faults = ""
		sc.Retry = ""
	} else {
		sc.GenSlots, sc.GenFlush = 0, 0
		sc.KVBlocks, sc.BlockTokens, sc.PrefixHit, sc.PrefillChunk = 0, 0, 0, 0
	}
	if sc.KVBlocks == 0 {
		// Block granularity only means something once a pool bounds it.
		sc.BlockTokens = 0
	}
	if sc.Autoscale != "" {
		// The autoscaler owns the replica axis: runs start at its min
		// width, and dispatch stays meaningful because the cluster can
		// grow past one replica.
		if cfg, err := autoscale.Parse(sc.Autoscale); err == nil {
			sc.Replicas = cfg.Min
		}
	} else if sc.Replicas == 1 {
		// Dispatch and heterogeneity are meaningless below two replicas.
		sc.Dispatch = "round-robin"
		sc.Hetero = ""
	}
	if sc.Hetero != "" {
		// Canonicalize the spec ("1.0, 0.50" and "1,0.5" are the same
		// cluster) so equivalent scenarios share an identity and a seed.
		if speeds, err := serving.ParseSpeeds(sc.Hetero); err == nil {
			sc.Hetero = serving.FormatSpeeds(speeds)
		}
	}
	if sc.Faults != "" {
		// Same canonicalization story: clause order never distinguishes
		// two fault models, so it must not distinguish two scenarios.
		if fs, err := faults.Parse(sc.Faults); err == nil {
			sc.Faults = fs.String()
		}
	}
	if sc.Retry != "" {
		if rp, err := faults.ParseRetry(sc.Retry); err == nil {
			sc.Retry = rp.String()
		}
	}
	if sc.Metrics == "" {
		sc.Metrics = "exact"
	}
	if !sc.Timeline {
		// The tick only means something when the sampler exists.
		sc.ObsTickMS = 0
	}
	return sc
}

// Generative reports whether the scenario drives the generative path.
func (sc Scenario) Generative() bool { return workload.IsGenerative(sc.Workload) }

// Identity is the scenario's stable key over every axis except the seed:
// it names a point in the sweep grid, and per-scenario seeds are derived
// from it so results do not depend on grid enumeration order.
func (sc Scenario) Identity() string {
	sc = sc.Normalize()
	var b strings.Builder
	fmt.Fprintf(&b, "model=%s workload=%s platform=%s dispatch=%s replicas=%d n=%d rate=%g budget=%g accloss=%g",
		sc.Model, sc.Workload, sc.Platform, sc.Dispatch, sc.Replicas, sc.N, sc.RateMult, sc.RampBudget, sc.AccLoss)
	if sc.ExitRule != "" {
		fmt.Fprintf(&b, " rule=%s", sc.ExitRule)
	}
	if sc.GenSlots != 0 {
		fmt.Fprintf(&b, " slots=%d", sc.GenSlots)
	}
	if sc.GenFlush != 0 {
		fmt.Fprintf(&b, " flush=%d", sc.GenFlush)
	}
	if sc.KVBlocks != 0 {
		fmt.Fprintf(&b, " kv=%d", sc.KVBlocks)
	}
	if sc.BlockTokens != 0 {
		fmt.Fprintf(&b, " blocktok=%d", sc.BlockTokens)
	}
	if sc.PrefixHit != 0 {
		fmt.Fprintf(&b, " prefixhit=%g", sc.PrefixHit)
	}
	if sc.PrefillChunk != 0 {
		fmt.Fprintf(&b, " prefillchunk=%d", sc.PrefillChunk)
	}
	// Like the metrics axis below, schedule and autoscale are omitted
	// when unset so pre-existing scenario identities (and the seeds
	// derived from them) are unchanged.
	if sc.RateSchedule != "" {
		fmt.Fprintf(&b, " schedule=%s", sc.RateSchedule)
	}
	if sc.Autoscale != "" {
		fmt.Fprintf(&b, " autoscale=%s", sc.Autoscale)
	}
	if sc.Hetero != "" {
		fmt.Fprintf(&b, " hetero=%s", sc.Hetero)
	}
	if sc.Faults != "" {
		fmt.Fprintf(&b, " faults=%s", sc.Faults)
	}
	if sc.Retry != "" {
		fmt.Fprintf(&b, " retry=%s", sc.Retry)
	}
	// The exact default is omitted so pre-existing scenario identities
	// (and the seeds derived from them) are unchanged.
	if sc.Metrics != "" && sc.Metrics != "exact" {
		fmt.Fprintf(&b, " metrics=%s", sc.Metrics)
	}
	return b.String()
}

// Key is Identity plus the seed — the scenario's full identity.
func (sc Scenario) Key() string {
	return fmt.Sprintf("%s seed=%d", sc.Identity(), sc.Seed)
}

// RunSummary condenses one serving run (vanilla or Apparate) of a
// scenario. For classification, latencies are per-request response
// latencies, Accuracy is agreement with the original model, and
// Throughput counts delivered requests per second. For generative
// serving, latencies are per-token TPT, Accuracy is the ROUGE-L/F1
// sequence-score proxy, and Throughput counts generated tokens per
// second.
type RunSummary struct {
	P25ms  float64 `json:"p25_ms"`
	P50ms  float64 `json:"p50_ms"`
	P95ms  float64 `json:"p95_ms"`
	P99ms  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`

	Accuracy    float64 `json:"accuracy"`
	Throughput  float64 `json:"throughput"`
	DropRate    float64 `json:"drop_rate"`
	SLOMissRate float64 `json:"slo_miss_rate"`
	// Goodput counts only delivered requests that met the SLO, per
	// second — the availability metric degraded-mode studies rank by
	// (0 for generative serving, which has no per-request SLO).
	Goodput float64 `json:"goodput"`
}

func summaryFromDist(d metrics.Recorder) RunSummary {
	return RunSummary{
		P25ms:  d.Percentile(25),
		P50ms:  d.Percentile(50),
		P95ms:  d.Percentile(95),
		P99ms:  d.Percentile(99),
		MeanMS: d.Mean(),
	}
}

// Result is the outcome of one scenario: the vanilla baseline, the
// Apparate run, their deltas, and the adaptation activity.
type Result struct {
	Scenario   Scenario `json:"scenario"`
	Generative bool     `json:"generative"`
	// SLOms is the per-request latency objective (0 for generative).
	SLOms float64 `json:"slo_ms"`
	// Requests is the number of requests (or sequences) served.
	Requests int `json:"requests"`

	Vanilla  RunSummary `json:"vanilla"`
	Apparate RunSummary `json:"apparate"`

	// P50Win / P95Win / P99Win are Apparate's latency wins over vanilla
	// at those percentiles, in percent (positive = faster).
	P50Win float64 `json:"p50_win_pct"`
	P95Win float64 `json:"p95_win_pct"`
	P99Win float64 `json:"p99_win_pct"`
	// AccDelta is vanilla accuracy minus Apparate accuracy — the realized
	// accuracy loss the AccLoss constraint bounds.
	AccDelta float64 `json:"acc_delta"`

	// Adaptation activity, summed across replicas.
	TuneRounds   int `json:"tune_rounds"`
	AdjustRounds int `json:"adjust_rounds"`
	ActiveRamps  int `json:"active_ramps"`

	// Autoscaling activity of the Apparate run (autoscale scenarios
	// only): committed scale-up/down actions and the widest the cluster
	// ever grew.
	ScaleUps     int `json:"scale_ups,omitempty"`
	ScaleDowns   int `json:"scale_downs,omitempty"`
	PeakReplicas int `json:"peak_replicas,omitempty"`

	// Availability under the injected fault model, from the Apparate
	// run (fault/retry scenarios only): realized crashes, requests lost
	// in transit, re-dispatches, hedge duplicates, summed per-replica
	// downtime, and total zero-live-replica time.
	Crashes    int     `json:"crashes,omitempty"`
	Lost       int     `json:"lost,omitempty"`
	Retries    int     `json:"retries,omitempty"`
	Hedges     int     `json:"hedges,omitempty"`
	DowntimeMS float64 `json:"downtime_ms,omitempty"`
	UnavailMS  float64 `json:"unavail_ms,omitempty"`

	// KV-block runtime activity of the Apparate run (generative KV
	// scenarios only): time-averaged pool utilization, prefix-cache
	// hits, preempt-and-requeue events, and mean per-sequence
	// admission-queue wait.
	KVUtil      float64 `json:"kv_util,omitempty"`
	PrefixHits  int     `json:"prefix_hits,omitempty"`
	Preemptions int     `json:"preemptions,omitempty"`
	QueueMS     float64 `json:"queue_ms,omitempty"`

	// VanillaShardMode and ApparateShardMode report how each
	// classification run actually executed under Scenario.Shards
	// (serving.ClusterStats.ShardMode): "replay:N"/"lookahead:N" when
	// it sharded, "serial:<reason>" when it fell back. The two can
	// differ — vanilla handlers are latency-stable so queue-state
	// dispatch shards, while the adaptive Apparate run serializes.
	// Excluded from JSON like Shards itself: execution mode never
	// enters sweep output, which is what keeps sharded runs
	// byte-identical to serial ones. Empty for generative scenarios.
	VanillaShardMode  string `json:"-"`
	ApparateShardMode string `json:"-"`
}

// kindFor maps a workload name to its calibration kind.
func kindFor(name string) exitsim.Kind {
	switch {
	case name == "amazon":
		return exitsim.KindAmazon
	case name == "imdb":
		return exitsim.KindIMDB
	case name == "cnn-dailymail":
		return exitsim.KindCNNDailyMail
	case name == "squad":
		return exitsim.KindSQuAD
	}
	return exitsim.KindVideo
}

// Validate checks the scenario without running it: the model exists, the
// model/workload pairing matches the paper's corpus (CV models serve
// video, NLP classifiers serve review streams, generative models serve
// sequence workloads), and every enum parses.
func (sc Scenario) Validate() error {
	// Check the caller's raw enum values before Normalize canonicalizes
	// axes away (a bad dispatch must error even at one replica).
	if sc.Platform != "" {
		if _, err := serving.ParsePlatform(sc.Platform); err != nil {
			return err
		}
	}
	if sc.Dispatch != "" {
		if _, err := serving.ParseDispatch(sc.Dispatch); err != nil {
			return err
		}
	}
	if _, err := metrics.ParseMode(sc.Metrics); err != nil {
		return err
	}
	if _, err := trace.ParseSchedule(sc.RateSchedule); err != nil {
		return err
	}
	if _, err := autoscale.Parse(sc.Autoscale); err != nil {
		return err
	}
	if _, err := serving.ParseSpeeds(sc.Hetero); err != nil {
		return err
	}
	if _, err := faults.Parse(sc.Faults); err != nil {
		return err
	}
	if _, err := faults.ParseRetry(sc.Retry); err != nil {
		return err
	}
	sc = sc.Normalize()
	m, err := model.ByName(sc.Model)
	if err != nil {
		return err
	}
	known := workload.IsGenerative(sc.Workload) || workload.IsVideo(sc.Workload) ||
		sc.Workload == "amazon" || sc.Workload == "imdb"
	if !known {
		return fmt.Errorf("scenario: unknown workload %q", sc.Workload)
	}
	switch {
	case workload.IsGenerative(sc.Workload) && !m.Generative:
		return fmt.Errorf("scenario: model %s is not generative; cannot serve %s", sc.Model, sc.Workload)
	case !workload.IsGenerative(sc.Workload) && m.Generative:
		return fmt.Errorf("scenario: generative model %s cannot serve classification workload %s", sc.Model, sc.Workload)
	case workload.IsVideo(sc.Workload) && !m.Family.IsCV():
		return fmt.Errorf("scenario: non-CV model %s cannot serve video workload %s", sc.Model, sc.Workload)
	case (sc.Workload == "amazon" || sc.Workload == "imdb") && m.Family.IsCV():
		return fmt.Errorf("scenario: CV model %s cannot serve NLP workload %s", sc.Model, sc.Workload)
	}
	if sc.ExitRule != "" {
		if _, err := exitrule.ByName(sc.ExitRule); err != nil {
			return err
		}
	}
	if sc.N <= 0 {
		return fmt.Errorf("scenario: request count %d must be positive", sc.N)
	}
	if sc.RateMult <= 0 {
		return fmt.Errorf("scenario: rate multiplier %g must be positive", sc.RateMult)
	}
	if sc.GenSlots < 0 || sc.GenFlush < 0 {
		return fmt.Errorf("scenario: gen slots/flush must be non-negative (got %d/%d)", sc.GenSlots, sc.GenFlush)
	}
	if sc.KVBlocks < 0 || sc.BlockTokens < 0 || sc.PrefillChunk < 0 {
		return fmt.Errorf("scenario: kv blocks/block tokens/prefill chunk must be non-negative (got %d/%d/%d)",
			sc.KVBlocks, sc.BlockTokens, sc.PrefillChunk)
	}
	if sc.PrefixHit < 0 || sc.PrefixHit > 1 {
		return fmt.Errorf("scenario: prefix-hit ratio %g must be in [0,1]", sc.PrefixHit)
	}
	if sc.ObsTickMS < 0 {
		return fmt.Errorf("scenario: observability tick %g must be non-negative", sc.ObsTickMS)
	}
	if sc.Shards < 0 {
		return fmt.Errorf("scenario: shard count %d must be non-negative", sc.Shards)
	}
	if fs, _ := faults.Parse(sc.Faults); fs != nil {
		// A clause naming a replica the cluster can never materialize
		// would silently inject nothing — a reliable run masquerading as
		// a chaos result — so reject it here.
		width := sc.Replicas
		if sc.Autoscale != "" {
			if cfg, err := autoscale.Parse(sc.Autoscale); err == nil {
				width = cfg.Max
			}
		}
		if max := fs.MaxReplica(); max >= width {
			return fmt.Errorf("scenario: faults spec names replica r%d but the cluster realizes at most %d replicas", max, width)
		}
	}
	return nil
}

// RunScenario executes one scenario end to end: vanilla baseline plus
// the Apparate run on the same stream, single-replica or cluster,
// classification or generative. It is deterministic: the same Scenario
// always yields an identical Result, with no shared state between calls,
// so scenarios are safe to run concurrently.
func RunScenario(sc Scenario) (*Result, error) {
	// Validate before Normalize: canonicalization collapses axes (e.g.
	// dispatch at one replica) and must not mask a caller's bad value.
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	sc = sc.Normalize()
	if sc.Generative() {
		return runGenScenario(sc, nil)
	}
	return runClassScenario(sc, nil)
}

// ObsData is the observability output of a traced scenario run: the
// lifecycle trace and/or gauge timeline of the Apparate run, per the
// scenario's Trace/Timeline knobs. Unrequested sinks are nil.
type ObsData struct {
	Trace    *obs.Tracer
	Timeline *obs.Timeline
}

// RunScenarioObs runs the scenario exactly like RunScenario and also
// returns its observability output. Only the Apparate run is traced —
// the trace answers "what did Apparate's cluster do", and interleaving
// the vanilla baseline into the same file would make every track
// ambiguous. The Result is identical to an untraced run's: the sinks
// observe the simulation without perturbing it.
func RunScenarioObs(sc Scenario) (*Result, *ObsData, error) {
	if err := sc.Validate(); err != nil {
		return nil, nil, err
	}
	sc = sc.Normalize()
	od := &ObsData{}
	if sc.Generative() {
		res, err := runGenScenario(sc, od)
		return res, od, err
	}
	res, err := runClassScenario(sc, od)
	return res, od, err
}

// runClassScenario runs a classification scenario; when od is non-nil
// it attaches the observability sinks the scenario asks for to the
// Apparate run.
func runClassScenario(sc Scenario, od *ObsData) (*Result, error) {
	m, err := model.ByName(sc.Model)
	if err != nil {
		return nil, err
	}
	kind := kindFor(sc.Workload)
	qps := 30 * sc.RateMult // video frame rate
	if !workload.IsVideo(sc.Workload) {
		// The trace-derived sustainable rate scales with cluster width:
		// R replicas absorb R times the single-replica rate. Autoscaled
		// scenarios size the rate for the min width, so schedule bursts
		// are what force the cluster to grow.
		qps = trace.TargetQPS(m) * sc.RateMult * float64(sc.Replicas)
	}
	sched, _ := trace.ParseSchedule(sc.RateSchedule)
	stream, err := workload.ByNameSched(sc.Workload, sc.N, qps, sc.Seed, sched)
	if err != nil {
		return nil, err
	}

	mode, _ := metrics.ParseMode(sc.Metrics)
	cfg := Config{
		AccuracyConstraint: sc.AccLoss,
		RampBudget:         sc.RampBudget,
		ExitRule:           sc.ExitRule,
		Metrics:            mode,
	}
	cfg.Platform, _ = serving.ParsePlatform(sc.Platform)
	res := &Result{Scenario: sc, Requests: stream.Len()}

	if od != nil {
		if sc.Trace {
			od.Trace = obs.NewTracer()
		}
		if sc.Timeline {
			od.Timeline = obs.NewTimeline(sc.ObsTickMS, m.SLO())
		}
	}

	if sc.Replicas == 1 && sc.Autoscale == "" && sc.Faults == "" && sc.Retry == "" {
		res.VanillaShardMode, res.ApparateShardMode = "serial", "serial"
		if sc.Shards > 1 {
			res.VanillaShardMode = "serial:single-replica"
			res.ApparateShardMode = "serial:single-replica"
		}
		sys := New(m, kind, cfg)
		res.SLOms = sys.Opts.SLOms
		v := sys.ServeVanilla(stream)
		if od != nil {
			// Attach the sinks after the vanilla baseline so only the
			// Apparate run is observed; Opts is a value, so this never
			// leaks into a later ServeVanilla.
			sys.Opts.Trace, sys.Opts.Timeline = od.Trace, od.Timeline
		}
		a := sys.Serve(stream)
		fillClass(res, v, a)
		ctl := sys.Controller()
		res.TuneRounds = ctl.TuneRounds
		res.AdjustRounds = ctl.AdjustRounds
		res.ActiveRamps = len(sys.Handler.Cfg.Active)
		return res, nil
	}

	dispatch, _ := serving.ParseDispatch(sc.Dispatch)
	speeds, _ := serving.ParseSpeeds(sc.Hetero)
	opts := serving.ClusterOptions{
		Options: serving.Options{
			Platform: cfg.Platform, SLOms: m.SLO(),
			MaxBatch: cfg.MaxBatch, Metrics: cfg.Metrics,
		},
		Replicas: sc.Replicas,
		Dispatch: dispatch,
		Speeds:   speeds,
		Shards:   sc.Shards,
	}
	maxReplicas := sc.Replicas
	if sc.Autoscale != "" {
		asCfg, _ := autoscale.Parse(sc.Autoscale)
		asCfg.SLOms = m.SLO()
		opts.Autoscale = &asCfg
		maxReplicas = asCfg.Max
	}
	if sc.Faults != "" {
		opts.Faults, _ = faults.Parse(sc.Faults)
	}
	if sc.Retry != "" {
		opts.Retry, _ = faults.ParseRetry(sc.Retry)
	}
	// The fault streams are labeled off the scenario seed, so the same
	// scenario always realizes the same crash/delay/loss schedule.
	opts.FaultSeed = sc.Seed
	res.SLOms = opts.SLOms

	// One Apparate controller per replica (§3): each replica adapts to
	// the traffic slice it sees. The event engine builds each replica's
	// handler exactly once — autoscaled runs create handlers lazily as
	// the cluster grows, so indexes past the realized peak never
	// materialize.
	handlers := make([]*serving.ApparateHandler, maxReplicas)
	mkApparate := func(i int) serving.Handler {
		mm, _ := model.ByName(sc.Model)
		h := serving.NewApparate(mm, exitsim.ProfileFor(mm, kind), cfg.RampBudget, controller.Config{
			AccConstraint:     cfg.AccuracyConstraint,
			DisableRampAdjust: cfg.DisableRampAdjust,
		})
		if cfg.ExitRule != "" {
			rule, _ := exitrule.ByName(cfg.ExitRule)
			h.Cfg.Rule = rule
		}
		handlers[i] = h
		return h
	}
	mkVanilla := func(i int) serving.Handler {
		mm, _ := model.ByName(sc.Model)
		return &serving.VanillaHandler{Model: mm}
	}
	v := serving.RunCluster(stream, mkVanilla, opts)
	if od != nil {
		// The vanilla baseline above ran with the zero-valued sinks, so
		// only the Apparate cluster is traced.
		opts.Options.Trace, opts.Options.Timeline = od.Trace, od.Timeline
	}
	a := serving.RunCluster(stream, mkApparate, opts)
	res.VanillaShardMode, res.ApparateShardMode = v.ShardMode, a.ShardMode
	fillClass(res, v.Merged, a.Merged)
	if a.Faults != nil {
		res.Crashes = a.Faults.Crashes
		res.Lost = a.Faults.Lost
		res.Retries = a.Faults.Retried
		res.Hedges = a.Faults.Hedged
		res.DowntimeMS = a.Faults.Downtime()
		res.UnavailMS = a.Faults.UnavailMS
	}
	// Sum adaptation activity over the replicas that actually served
	// traffic. Replicas are created lazily as the autoscaler grows the
	// cluster, so handlers past the realized peak were never built and
	// are nil — only the first Scale.Peak() entries are real.
	served := len(handlers)
	if a.Scale != nil {
		served = a.Scale.Peak()
		res.ScaleUps = a.Scale.Ups()
		res.ScaleDowns = a.Scale.Downs()
		res.PeakReplicas = a.Scale.Peak()
	}
	for _, h := range handlers[:served] {
		res.TuneRounds += h.Ctl.TuneRounds
		res.AdjustRounds += h.Ctl.AdjustRounds
		res.ActiveRamps += len(h.Cfg.Active)
	}
	return res, nil
}

func fillClass(res *Result, v, a *serving.Stats) {
	vl, al := v.Latencies(), a.Latencies()
	res.Vanilla = summaryFromDist(vl)
	res.Apparate = summaryFromDist(al)
	res.Vanilla.Accuracy, res.Apparate.Accuracy = v.Accuracy, a.Accuracy
	res.Vanilla.Throughput, res.Apparate.Throughput = v.ThroughputQPS, a.ThroughputQPS
	res.Vanilla.DropRate, res.Apparate.DropRate = v.DropRate, a.DropRate
	res.Vanilla.SLOMissRate, res.Apparate.SLOMissRate = v.SLOMissRate, a.SLOMissRate
	res.Vanilla.Goodput, res.Apparate.Goodput = v.GoodputQPS, a.GoodputQPS
	fillWins(res)
}

func runGenScenario(sc Scenario, od *ObsData) (*Result, error) {
	m, err := model.ByName(sc.Model)
	if err != nil {
		return nil, err
	}
	kind := kindFor(sc.Workload)
	stream, err := workload.GenByName(sc.Workload, sc.N, 2*sc.RateMult, sc.Seed)
	if err != nil {
		return nil, err
	}
	mode, _ := metrics.ParseMode(sc.Metrics)
	cfg := Config{
		AccuracyConstraint: sc.AccLoss,
		RampBudget:         sc.RampBudget,
		GenSlots:           sc.GenSlots,
		GenFlush:           sc.GenFlush,
		KVBlocks:           sc.KVBlocks,
		BlockTokens:        sc.BlockTokens,
		PrefixHitRatio:     sc.PrefixHit,
		PrefillChunkTokens: sc.PrefillChunk,
		Seed:               sc.Seed,
		Metrics:            mode,
	}
	g := NewGen(m, kind, cfg)
	v := g.ServeVanilla(stream)
	if od != nil {
		// Attach the sinks after the vanilla baseline so only the
		// Apparate run is observed, exactly like the cluster path.
		if sc.Trace {
			od.Trace = obs.NewTracer()
		}
		if sc.Timeline {
			od.Timeline = obs.NewTimeline(sc.ObsTickMS, 0)
		}
		g.Engine.Trace, g.Engine.Timeline = od.Trace, od.Timeline
	}
	a := g.Serve(stream)

	res := &Result{Scenario: sc, Generative: true, Requests: stream.Len()}
	// A token-free run (empty stream, or every sequence at GenLen 0) has
	// no TPT distribution to summarize — Percentile on an empty recorder
	// is pinned as a panic, so the summaries stay zero.
	if v.TotalTokens > 0 {
		res.Vanilla = summaryFromDist(v.TPT())
	}
	if a.TotalTokens > 0 {
		res.Apparate = summaryFromDist(a.TPT())
	}
	res.Vanilla.Accuracy, res.Apparate.Accuracy = v.MeanScore, a.MeanScore
	res.Vanilla.Throughput, res.Apparate.Throughput = v.TokensPerSec, a.TokensPerSec
	res.KVUtil = a.KVUtil
	res.PrefixHits = a.PrefixHits
	res.Preemptions = a.Preemptions
	res.QueueMS = a.QueueMS
	fillWins(res)
	res.TuneRounds = g.Policy.TuneRounds
	res.AdjustRounds = g.Policy.MoveRounds
	res.ActiveRamps = 1 // generative serving uses a single adjustable ramp (§4.4)
	return res, nil
}

func fillWins(res *Result) {
	res.P50Win = metrics.WinPercent(res.Vanilla.P50ms, res.Apparate.P50ms)
	res.P95Win = metrics.WinPercent(res.Vanilla.P95ms, res.Apparate.P95ms)
	res.P99Win = metrics.WinPercent(res.Vanilla.P99ms, res.Apparate.P99ms)
	res.AccDelta = res.Vanilla.Accuracy - res.Apparate.Accuracy
}
