package core

import (
	"strings"
	"testing"
)

func TestScenarioNormalizeFaults(t *testing.T) {
	// Canonicalization: clause order never distinguishes fault models.
	sc := Scenario{Model: "resnet50", Workload: "video-0", N: 100, Replicas: 2,
		Faults: "loss=0.01;crash:r1@2000+500"}.Normalize()
	if sc.Faults != "crash:r1@2000+500;loss=0.01" {
		t.Fatalf("faults spec not canonicalized: %q", sc.Faults)
	}
	// Retry shorthand canonicalizes too.
	sc = Scenario{Model: "resnet50", Workload: "video-0", N: 100, Replicas: 2,
		Retry: "3"}.Normalize()
	if sc.Retry != "attempts=3" {
		t.Fatalf("retry spec not canonicalized: %q", sc.Retry)
	}
	// Generative scenarios clear both like every cluster axis.
	sc = Scenario{Model: "t5-large", Workload: "cnn-dailymail", N: 10,
		Faults: "loss=0.01", Retry: "attempts=3"}.Normalize()
	if sc.Faults != "" || sc.Retry != "" {
		t.Fatalf("generative scenario kept faults=%q retry=%q", sc.Faults, sc.Retry)
	}
	// Single-replica scenarios keep faults (a crash of the only replica
	// is exactly the total-outage study).
	sc = Scenario{Model: "resnet50", Workload: "video-0", N: 100,
		Faults: "crash:r0@100+50"}.Normalize()
	if sc.Faults == "" {
		t.Fatal("single-replica scenario lost its fault spec")
	}
}

// TestScenarioIdentityFaultsOmittedWhenUnset pins seed stability: the
// fault axes must not leak into pre-existing identities, so every
// fault-free scenario keeps the seed it had before the subsystem
// existed.
func TestScenarioIdentityFaultsOmittedWhenUnset(t *testing.T) {
	base := Scenario{Model: "resnet50", Workload: "video-0", N: 100, Replicas: 2}
	id := base.Identity()
	if strings.Contains(id, "faults=") || strings.Contains(id, "retry=") {
		t.Fatalf("unset fault axes leaked into identity %q", id)
	}
	faulty := base
	faulty.Faults = "loss=0.01"
	if faulty.Identity() == id || !strings.Contains(faulty.Identity(), "faults=loss=0.01") {
		t.Fatalf("faults axis mishandled in identity %q", faulty.Identity())
	}
	retried := base
	retried.Retry = "attempts=3"
	if retried.Identity() == id || !strings.Contains(retried.Identity(), "retry=attempts=3") {
		t.Fatalf("retry axis mishandled in identity %q", retried.Identity())
	}
}

func TestScenarioValidateRejectsBadFaults(t *testing.T) {
	base := Scenario{Model: "resnet50", Workload: "video-0", N: 100, Replicas: 2}
	for _, bad := range []string{"crash:r1", "loss=2", "mtbf:0/5", "delaydist=weibull:1", "nonsense"} {
		sc := base
		sc.Faults = bad
		if err := sc.Validate(); err == nil {
			t.Fatalf("faults=%q validated", bad)
		}
	}
	for _, bad := range []string{"attempts=0", "hedge=101", "retries=2"} {
		sc := base
		sc.Retry = bad
		if err := sc.Validate(); err == nil {
			t.Fatalf("retry=%q validated", bad)
		}
	}
	good := base
	good.Faults = "mtbf:8000/1000;delaydist=lognormal:5,1;loss=0.001"
	good.Retry = "attempts=2/hedge=95"
	if err := good.Validate(); err != nil {
		t.Fatalf("valid fault scenario rejected: %v", err)
	}
}

// TestScenarioValidateRejectsUnrealizableReplica pins that a fault
// clause naming a replica the cluster can never materialize is an
// error, not a silently reliable run presented as a chaos result.
func TestScenarioValidateRejectsUnrealizableReplica(t *testing.T) {
	sc := Scenario{Model: "resnet50", Workload: "video-0", N: 100, Replicas: 2,
		Faults: "crash:r5@2000+500"}
	if err := sc.Validate(); err == nil {
		t.Fatal("crash:r5 on a 2-replica cluster validated")
	}
	// The autoscaler's max bounds the realizable width, not Replicas.
	sc = Scenario{Model: "resnet50", Workload: "video-0", N: 100,
		Autoscale: "1..4", Faults: "crash:r3@2000+500"}
	if err := sc.Validate(); err != nil {
		t.Fatalf("crash:r3 under autoscale 1..4 rejected: %v", err)
	}
	sc.Faults = "mtbf:r4@8000/1000"
	if err := sc.Validate(); err == nil {
		t.Fatal("mtbf:r4 under autoscale 1..4 validated")
	}
}

// TestRunScenarioFaultyCluster runs the knobs end to end: a crashy,
// lossy cluster with retries must still complete, report availability
// metrics consistent with the injected schedule, and remain
// deterministic.
func TestRunScenarioFaultyCluster(t *testing.T) {
	sc := Scenario{
		Model: "resnet50", Workload: "video-0", N: 2000, Seed: 22,
		Replicas: 2, Dispatch: "least-loaded",
		Faults: "crash:r1@3000+1000;loss=0.01", Retry: "attempts=3",
	}
	a, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Requests != 2000 {
		t.Fatalf("served %d requests, want 2000", a.Requests)
	}
	if a.Crashes != 1 {
		t.Fatalf("realized %d crashes, want 1", a.Crashes)
	}
	if a.DowntimeMS != 1000 {
		t.Fatalf("downtime %g, want 1000", a.DowntimeMS)
	}
	if a.Retries == 0 {
		t.Fatal("lossy run with attempts=3 reported no retries")
	}
	if a.Apparate.Goodput <= 0 || a.Vanilla.Goodput <= 0 {
		t.Fatalf("goodput missing: vanilla %g apparate %g", a.Vanilla.Goodput, a.Apparate.Goodput)
	}
	b, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("faulty scenario not deterministic:\n%+v\n%+v", a, b)
	}
}

// TestRunScenarioRetryOnlyOnReliableCluster pins that a retry policy on
// a reliable cluster is inert for everything but hedging: with no
// faults and no hedge, attempts=3 changes nothing versus the plain
// cluster run.
func TestRunScenarioRetryOnlyOnReliableCluster(t *testing.T) {
	base := Scenario{Model: "resnet50", Workload: "video-0", N: 1500, Seed: 23, Replicas: 2}
	plain, err := RunScenario(base)
	if err != nil {
		t.Fatal(err)
	}
	retried := base
	retried.Retry = "attempts=3"
	withRetry, err := RunScenario(retried)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Vanilla != withRetry.Vanilla || plain.Apparate != withRetry.Apparate {
		t.Fatalf("inert retry changed results:\n%+v\n%+v", plain, withRetry)
	}
}
