package core

import (
	"strings"
	"testing"
)

func TestScenarioNormalizeHetero(t *testing.T) {
	// Single fixed replica: heterogeneity is meaningless and clears.
	sc := Scenario{Model: "resnet50", Workload: "video-0", N: 100, Hetero: "1,0.5"}.Normalize()
	if sc.Hetero != "" {
		t.Fatalf("single-replica scenario kept hetero=%q", sc.Hetero)
	}
	// Cluster: kept and canonicalized.
	sc = Scenario{Model: "resnet50", Workload: "video-0", N: 100,
		Replicas: 3, Hetero: "1.0, 0.50"}.Normalize()
	if sc.Hetero != "1,0.5" {
		t.Fatalf("hetero spec not canonicalized: %q", sc.Hetero)
	}
	// Autoscale keeps it too (the cluster can grow past one replica).
	sc = Scenario{Model: "resnet50", Workload: "video-0", N: 100,
		Autoscale: "1..4", Hetero: "1,0.5"}.Normalize()
	if sc.Hetero != "1,0.5" {
		t.Fatalf("autoscaled scenario lost hetero: %q", sc.Hetero)
	}
	// Generative scenarios clear it like every cluster axis.
	sc = Scenario{Model: "t5-large", Workload: "cnn-dailymail", N: 10,
		Hetero: "1,0.5"}.Normalize()
	if sc.Hetero != "" {
		t.Fatalf("generative scenario kept hetero=%q", sc.Hetero)
	}
}

func TestScenarioIdentityHeteroOmittedWhenUnset(t *testing.T) {
	base := Scenario{Model: "resnet50", Workload: "video-0", N: 100, Replicas: 2}
	if strings.Contains(base.Identity(), "hetero=") {
		t.Fatalf("unset hetero leaked into identity %q", base.Identity())
	}
	het := base
	het.Hetero = "1,0.5"
	if het.Identity() == base.Identity() {
		t.Fatal("hetero axis did not change the identity")
	}
	if !strings.Contains(het.Identity(), "hetero=1,0.5") {
		t.Fatalf("hetero token missing from %q", het.Identity())
	}
}

func TestScenarioValidateRejectsBadHetero(t *testing.T) {
	base := Scenario{Model: "resnet50", Workload: "video-0", N: 100, Replicas: 2}
	for _, bad := range []string{"0", "-1,2", "fast", "1,,2", "nan", "1,inf"} {
		sc := base
		sc.Hetero = bad
		if err := sc.Validate(); err == nil {
			t.Fatalf("hetero=%q validated", bad)
		}
	}
	good := base
	good.Hetero = "2,1,0.5"
	if err := good.Validate(); err != nil {
		t.Fatalf("valid hetero rejected: %v", err)
	}
}

// TestRunScenarioHeterogeneousCluster runs the knob end to end: a
// heterogeneous least-loaded cluster must serve every request and skew
// load toward the fast replica.
func TestRunScenarioHeterogeneousCluster(t *testing.T) {
	res, err := RunScenario(Scenario{
		Model: "bert-base", Workload: "amazon", N: 3000, Seed: 21,
		Replicas: 2, Dispatch: "least-loaded", Hetero: "2,0.5",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 3000 {
		t.Fatalf("served %d requests, want 3000", res.Requests)
	}
	if res.Scenario.Hetero != "2,0.5" {
		t.Fatalf("result lost the hetero axis: %+v", res.Scenario)
	}
}
