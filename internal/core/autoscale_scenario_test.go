package core

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestScenarioNormalizeAutoscaleOwnsReplicas(t *testing.T) {
	sc := Scenario{Model: "resnet50", Workload: "video-0", N: 100,
		Replicas: 3, Dispatch: "least-loaded", Autoscale: "1..4"}.Normalize()
	if sc.Replicas != 1 {
		t.Fatalf("autoscale scenario normalized to %d replicas, want min=1", sc.Replicas)
	}
	if sc.Dispatch != "least-loaded" {
		t.Fatalf("autoscale scenario collapsed dispatch to %q; the cluster can grow past one replica", sc.Dispatch)
	}
}

func TestScenarioNormalizeGenerativeClearsLoadDynamics(t *testing.T) {
	sc := Scenario{Model: "t5-large", Workload: "cnn-dailymail", N: 10,
		RateSchedule: "phases:10x1/10x4", Autoscale: "1..4"}.Normalize()
	if sc.RateSchedule != "" || sc.Autoscale != "" {
		t.Fatalf("generative scenario kept schedule=%q autoscale=%q", sc.RateSchedule, sc.Autoscale)
	}
}

func TestScenarioIdentityNewAxesOmittedWhenUnset(t *testing.T) {
	base := Scenario{Model: "resnet50", Workload: "video-0", N: 100}
	id := base.Identity()
	if strings.Contains(id, "schedule=") || strings.Contains(id, "autoscale=") {
		t.Fatalf("unset load-dynamics axes leaked into identity %q", id)
	}
	sched := base
	sched.RateSchedule = "phases:10x1/10x4"
	as := base
	as.Autoscale = "1..4"
	if sched.Identity() == id || as.Identity() == id {
		t.Fatal("set load-dynamics axes did not change the identity")
	}
	if !strings.Contains(sched.Identity(), "schedule=phases:10x1/10x4") {
		t.Fatalf("schedule token missing from %q", sched.Identity())
	}
	if !strings.Contains(as.Identity(), "autoscale=1..4") {
		t.Fatalf("autoscale token missing from %q", as.Identity())
	}
}

func TestScenarioValidateRejectsBadLoadDynamics(t *testing.T) {
	base := Scenario{Model: "resnet50", Workload: "video-0", N: 100}
	bad := base
	bad.RateSchedule = "phases:10"
	if err := bad.Validate(); err == nil {
		t.Fatal("bad schedule spec validated")
	}
	bad = base
	bad.Autoscale = "4..1"
	if err := bad.Validate(); err == nil {
		t.Fatal("inverted autoscale range validated")
	}
	good := base
	good.RateSchedule = "sine:60/0.5/2"
	good.Autoscale = "1..4/window=2000"
	if err := good.Validate(); err != nil {
		t.Fatalf("valid load-dynamics scenario rejected: %v", err)
	}
}

func TestRunScenarioAutoscaled(t *testing.T) {
	sc := Scenario{
		Model: "bert-base", Workload: "amazon", N: 5000, Seed: 11,
		RateSchedule: "phases:15x1/15x4", Autoscale: "1..4",
	}
	res, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakReplicas < 2 {
		t.Fatalf("4x bursts peaked at %d replicas; autoscaling never engaged", res.PeakReplicas)
	}
	if res.ScaleUps == 0 {
		t.Fatal("no scale-ups recorded")
	}
	if res.Requests != sc.N {
		t.Fatalf("served %d requests, want %d", res.Requests, sc.N)
	}
	// JSON stability for pre-existing scenarios: the new fields are
	// omitempty, so a non-autoscaled result must not mention them.
	plain, err := RunScenario(Scenario{Model: "resnet18", Workload: "video-0", N: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"scale_ups", "scale_downs", "peak_replicas", "rate_schedule", "autoscale"} {
		if strings.Contains(string(buf), field) {
			t.Fatalf("non-autoscaled result JSON leaked %q: %s", field, buf)
		}
	}
}

func TestRunScenarioScheduledDeterministic(t *testing.T) {
	sc := Scenario{
		Model: "resnet50", Workload: "video-1", N: 3000, Seed: 5,
		RateSchedule: "square:30/0.5/3", Autoscale: "1..3", Dispatch: "least-loaded",
	}
	a, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("scheduled autoscaled scenario not deterministic:\n%s\n%s", ja, jb)
	}
}
