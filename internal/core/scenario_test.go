package core

import (
	"reflect"
	"strings"
	"testing"
)

func TestScenarioValidate(t *testing.T) {
	bad := []Scenario{
		{Model: "no-such-model", Workload: "video-0", N: 100},
		{Model: "resnet50", Workload: "no-such-workload", N: 100},
		{Model: "resnet50", Workload: "amazon", N: 100},   // CV model, NLP workload
		{Model: "bert-base", Workload: "video-0", N: 100}, // NLP model, video
		{Model: "bert-base", Workload: "squad", N: 100},   // classifier, generative workload
		{Model: "t5-large", Workload: "imdb", N: 100},     // generative model, classification
		{Model: "resnet50", Workload: "video-0", N: 100, Platform: "nope"},
		{Model: "resnet50", Workload: "video-0", N: 100, Dispatch: "nope"},
		{Model: "resnet50", Workload: "video-0", N: 100, ExitRule: "nope"},
		{Model: "resnet50", Workload: "video-0", N: 0},
		{Model: "resnet50", Workload: "video-0", N: 100, RateMult: -1},
	}
	for _, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", sc)
		}
	}
	good := Scenario{Model: "resnet50", Workload: "video-0", N: 100}
	if err := good.Validate(); err != nil {
		t.Fatalf("Validate rejected %+v: %v", good, err)
	}
}

// RunScenario must reject a bad dispatch even at one replica, where
// Normalize would otherwise collapse the axis and mask the typo.
func TestRunScenarioRejectsBadEnumsBeforeNormalize(t *testing.T) {
	_, err := RunScenario(Scenario{Model: "resnet50", Workload: "video-0", N: 100, Dispatch: "fifo"})
	if err == nil {
		t.Fatal("RunScenario accepted dispatch \"fifo\"")
	}
	_, err = RunScenario(Scenario{Model: "t5-large", Workload: "squad", N: 5, Platform: "nope"})
	if err == nil {
		t.Fatal("RunScenario accepted platform \"nope\" on a generative scenario")
	}
}

func TestScenarioNormalizeCanonicalizes(t *testing.T) {
	sc := Scenario{Model: "t5-large", Workload: "squad", N: 10,
		Platform: "tf-serve", Dispatch: "least-loaded", Replicas: 4}.Normalize()
	if sc.Platform != "clockwork" || sc.Dispatch != "round-robin" || sc.Replicas != 1 {
		t.Fatalf("generative scenario not canonicalized: %+v", sc)
	}
	one := Scenario{Model: "resnet50", Workload: "video-0", N: 10, Dispatch: "least-loaded"}.Normalize()
	if one.Dispatch != "round-robin" {
		t.Fatalf("dispatch should collapse at one replica: %+v", one)
	}
}

func TestScenarioIdentityExcludesSeed(t *testing.T) {
	a := Scenario{Model: "resnet50", Workload: "video-0", N: 100, Seed: 1}
	b := a
	b.Seed = 99
	if a.Identity() != b.Identity() {
		t.Fatal("Identity must not depend on the seed")
	}
	if a.Key() == b.Key() {
		t.Fatal("Key must depend on the seed")
	}
}

func TestRunScenarioClassification(t *testing.T) {
	res, err := RunScenario(Scenario{Model: "resnet50", Workload: "video-0", N: 3000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Generative {
		t.Fatal("classification scenario marked generative")
	}
	if res.Requests != 3000 || res.SLOms <= 0 {
		t.Fatalf("bad run metadata: %+v", res)
	}
	if res.Apparate.P50ms >= res.Vanilla.P50ms {
		t.Fatalf("apparate median %.2f not below vanilla %.2f", res.Apparate.P50ms, res.Vanilla.P50ms)
	}
	if res.AccDelta > 0.011+0.005 {
		t.Fatalf("accuracy loss %.4f far above the 1%% constraint", res.AccDelta)
	}
	if res.TuneRounds == 0 && res.AdjustRounds == 0 {
		t.Fatal("no adaptation recorded")
	}
}

func TestRunScenarioCluster(t *testing.T) {
	res, err := RunScenario(Scenario{
		Model: "bert-base", Workload: "amazon", N: 3000, Seed: 2,
		Replicas: 3, Dispatch: "least-loaded",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TuneRounds == 0 {
		t.Fatal("cluster run recorded no tuning across replicas")
	}
	if res.ActiveRamps == 0 {
		t.Fatal("cluster run recorded no active ramps")
	}
	if res.Vanilla.Throughput <= 0 || res.Apparate.Throughput <= 0 {
		t.Fatalf("cluster throughput missing: %+v", res)
	}
}

func TestRunScenarioGenerative(t *testing.T) {
	res, err := RunScenario(Scenario{Model: "t5-large", Workload: "cnn-dailymail", N: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Generative {
		t.Fatal("generative scenario not marked")
	}
	if res.Requests != 20 {
		t.Fatalf("served %d sequences, want 20", res.Requests)
	}
	if res.Vanilla.Accuracy != 1 {
		t.Fatalf("vanilla sequence score %v, want 1 (no exits)", res.Vanilla.Accuracy)
	}
	if res.Apparate.Throughput <= 0 {
		t.Fatal("generative throughput missing")
	}
}

// TestRunScenarioObsGenerative: a traced generative scenario keeps its
// observability knobs through Normalize, returns populated sinks (the
// timeline in its generative column mode), and its Result is identical
// to an untraced run's — the sinks are passive.
func TestRunScenarioObsGenerative(t *testing.T) {
	sc := Scenario{
		Model: "t5-large", Workload: "cnn-dailymail", N: 20, Seed: 3,
		KVBlocks: 48, PrefixHit: 0.4, PrefillChunk: 128,
		Trace: true, Timeline: true, ObsTickMS: 200,
	}
	if n := sc.Normalize(); !n.Trace || !n.Timeline {
		t.Fatal("Normalize cleared the generative observability knobs")
	}
	res, od, err := RunScenarioObs(sc)
	if err != nil {
		t.Fatal(err)
	}
	if od.Trace == nil || od.Timeline == nil {
		t.Fatalf("generative traced run returned nil sinks: %+v", od)
	}
	if od.Trace.Len() == 0 || len(od.Timeline.Rows) == 0 {
		t.Fatalf("generative sinks are empty: %d events, %d rows",
			od.Trace.Len(), len(od.Timeline.Rows))
	}
	if !od.Timeline.Gen {
		t.Fatal("generative timeline not in generative column mode")
	}
	plain, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if *res != *plain {
		t.Fatalf("tracing changed the generative result:\ntraced: %+v\nplain:  %+v", res, plain)
	}
}

func TestRunScenarioGenEngineKnobs(t *testing.T) {
	base := Scenario{Model: "t5-large", Workload: "cnn-dailymail", N: 20, Seed: 3}
	tuned := base
	tuned.GenSlots, tuned.GenFlush = 2, 4
	if base.Identity() == tuned.Identity() {
		t.Fatal("gen engine knobs missing from Identity")
	}
	a, err := RunScenario(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(tuned)
	if err != nil {
		t.Fatal(err)
	}
	// Fewer slots mean smaller decode batches, so each full step is
	// faster: vanilla per-token TPT must drop.
	if b.Vanilla.P50ms >= a.Vanilla.P50ms {
		t.Fatalf("2-slot vanilla TPT %.2fms not below default-8 %.2fms",
			b.Vanilla.P50ms, a.Vanilla.P50ms)
	}
	// On classification scenarios the knobs are inert and normalize away.
	cls := Scenario{Model: "resnet50", Workload: "video-0", N: 100, GenSlots: 2}
	if cls.Normalize().GenSlots != 0 {
		t.Fatal("gen knobs must collapse on classification scenarios")
	}
	if _, err := RunScenario(Scenario{Model: "t5-large", Workload: "squad", N: 5, GenSlots: -1}); err == nil {
		t.Fatal("negative gen-slots accepted")
	}
}

// TestRunScenarioDeterministic: the same scenario yields an identical
// result — the property the sweep's parallelism rests on.
func TestRunScenarioDeterministic(t *testing.T) {
	sc := Scenario{Model: "resnet18", Workload: "video-2", N: 1500, Seed: 11, Replicas: 2}
	a, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("RunScenario is not deterministic for identical scenarios")
	}
}

// TestScenarioMetricsModeIsLive pins that the Metrics knob reaches the
// recorder on every scenario class — a silent fallback to exact would
// pass the memory guard (two exact Dists for 1M requests are only a few
// MB) while ignoring the user's -metrics sketch. Sketch mode must be
// observable end to end: the sketched percentiles of a dispersed
// latency distribution differ from the exact ones (bin quantization),
// while count-based fields stay identical.
func TestScenarioMetricsModeIsLive(t *testing.T) {
	for _, sc := range []Scenario{
		{Model: "resnet50", Workload: "video-0", N: 3000, Seed: 5},                                        // single replica
		{Model: "bert-base", Workload: "amazon", N: 3000, Seed: 5, Replicas: 2, Dispatch: "least-loaded"}, // cluster
		{Model: "t5-large", Workload: "cnn-dailymail", N: 30, Seed: 5},                                    // generative
	} {
		exact := sc
		exact.Metrics = "exact"
		sketch := sc
		sketch.Metrics = "sketch"
		re, err := RunScenario(exact)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := RunScenario(sketch)
		if err != nil {
			t.Fatal(err)
		}
		if re.Requests != rs.Requests {
			t.Fatalf("%s: request counts differ across modes: %d vs %d", sc.Workload, re.Requests, rs.Requests)
		}
		differs := false
		for _, pair := range [][2]float64{
			{re.Vanilla.P50ms, rs.Vanilla.P50ms},
			{re.Vanilla.P95ms, rs.Vanilla.P95ms},
			{re.Apparate.P50ms, rs.Apparate.P50ms},
			{re.Apparate.P95ms, rs.Apparate.P95ms},
		} {
			if pair[0] != pair[1] {
				differs = true
			}
			// And the sketch must still be within its 1% error budget.
			if pair[0] != 0 {
				if rel := (pair[1] - pair[0]) / pair[0]; rel > 0.01 || rel < -0.01 {
					t.Fatalf("%s: sketch percentile %v off exact %v by more than 1%%", sc.Workload, pair[1], pair[0])
				}
			}
		}
		if !differs {
			t.Fatalf("%s: sketch summaries bit-identical to exact — Metrics knob is not reaching the recorder", sc.Workload)
		}
	}
}

func TestScenarioKVKnobs(t *testing.T) {
	base := Scenario{Model: "t5-large", Workload: "cnn-dailymail", N: 20, Seed: 3}
	kv := base
	kv.KVBlocks, kv.BlockTokens, kv.PrefixHit, kv.PrefillChunk = 96, 8, 0.5, 128
	if base.Identity() == kv.Identity() {
		t.Fatal("KV knobs missing from Identity")
	}
	// Unset knobs are identity-omitted: the base identity must not
	// mention any KV token, so pre-KV derived seeds never shift.
	for _, tok := range []string{"kv=", "blocktok=", "prefixhit=", "prefillchunk="} {
		if strings.Contains(base.Identity(), tok) {
			t.Fatalf("identity %q mentions %q with the knob unset", base.Identity(), tok)
		}
	}
	a, err := RunScenario(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(kv)
	if err != nil {
		t.Fatal(err)
	}
	if a.KVUtil != 0 || a.Preemptions != 0 || a.PrefixHits != 0 || a.QueueMS != 0 {
		t.Fatalf("KV-off scenario reported KV activity: %+v", a)
	}
	if b.KVUtil <= 0 {
		t.Fatalf("bounded-pool scenario reported zero kv_util (prefix hits %d)", b.PrefixHits)
	}
	if b.PrefixHits == 0 {
		t.Fatal("prefix-cache scenario realized zero hits at ratio 0.5")
	}
	// On classification scenarios the knobs are inert and normalize
	// away; without a pool, block granularity normalizes away too.
	cls := Scenario{Model: "resnet50", Workload: "video-0", N: 100, KVBlocks: 96, PrefixHit: 0.5}
	if n := cls.Normalize(); n.KVBlocks != 0 || n.PrefixHit != 0 {
		t.Fatal("KV knobs must collapse on classification scenarios")
	}
	poolless := Scenario{Model: "t5-large", Workload: "cnn-dailymail", N: 20, BlockTokens: 8}
	if poolless.Normalize().BlockTokens != 0 {
		t.Fatal("block tokens must collapse without a pool")
	}
	if _, err := RunScenario(Scenario{Model: "t5-large", Workload: "squad", N: 5, KVBlocks: -1}); err == nil {
		t.Fatal("negative kv-blocks accepted")
	}
	if _, err := RunScenario(Scenario{Model: "t5-large", Workload: "squad", N: 5, PrefixHit: 1.5}); err == nil {
		t.Fatal("out-of-range prefix-hit accepted")
	}
}
