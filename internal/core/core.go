// Package core is the top-level API of the Apparate reproduction: it
// ties together model preparation (§3.1), the serving simulator, and the
// runtime controller (§3.2–3.3) behind the workflow of Figure 6. A user
// registers a model and an accuracy constraint; Apparate configures the
// model with early-exit ramps, deploys it to a serving platform, and
// continually adapts thresholds and ramp positions while results exit
// early and inputs run to completion.
//
// Classification:
//
//	m := model.ResNet50()
//	sys := core.New(m, exitsim.KindVideo, core.Config{})
//	stats := sys.Serve(workload.Video(0, 10000, 30, 1))
//
// Generative:
//
//	g := core.NewGen(model.T5Large(), exitsim.KindCNNDailyMail, core.Config{})
//	stats := g.Serve(workload.CNNDailyMail(500, 3, 1))
package core

import (
	"repro/internal/controller"
	"repro/internal/exitrule"
	"repro/internal/exitsim"
	"repro/internal/genserve"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/ramp"
	"repro/internal/serving"
	"repro/internal/workload"
)

// Config carries Apparate's two user-facing parameters (§3) plus
// deployment knobs; zero values take the paper's defaults.
type Config struct {
	// AccuracyConstraint is the tolerable accuracy loss relative to the
	// original model (default 0.01, i.e. 1%).
	AccuracyConstraint float64
	// RampBudget bounds active-ramp overhead as a fraction of worst-case
	// latency — the paper's "ramp aggression" (default 0.02).
	RampBudget float64
	// Style selects the ramp architecture (default: the lightweight
	// pooling+FC ramp of §3.1).
	Style ramp.Style
	// Platform selects the serving platform (default Clockwork).
	Platform serving.Platform
	// SLOms overrides the model's default SLO of 2× its bs=1 latency.
	SLOms float64
	// MaxBatch caps serving batch sizes (default 16).
	MaxBatch int
	// DisableRampAdjust turns off the §3.3 loop (ablation).
	DisableRampAdjust bool
	// ExitRule selects the exit strategy by name ("entropy" default,
	// "windowed-K", "patience-P"); Apparate's controller is agnostic to
	// the technique (§5).
	ExitRule string
	// GenSlots overrides the generative engine's continuous-batching slot
	// count (default 8).
	GenSlots int
	// GenFlush overrides the generative engine's pending-token flush
	// threshold (default 8).
	GenFlush int
	// KVBlocks bounds the generative engine's KV-block pool (0 =
	// unbounded: the pre-KV engine).
	KVBlocks int
	// BlockTokens is the KV-block granularity in tokens (0 = the engine
	// default of 16; meaningful with KVBlocks > 0).
	BlockTokens int
	// PrefixHitRatio is the generative prefix-cache hit probability in
	// [0,1]; hits skip prompt prefill and are not charged KV blocks for
	// the cached prefix.
	PrefixHitRatio float64
	// PrefillChunkTokens chunks generative prompts longer than this
	// threshold, interleaving prefill with decode on the engine clock
	// (0 = monolithic prefill).
	PrefillChunkTokens int
	// Seed drives generative engine-internal randomness (the gen.prefix
	// stream); only meaningful when PrefixHitRatio > 0.
	Seed uint64
	// Metrics selects the latency/TPT recorder implementation: exact
	// (every sample kept, O(n) memory) or sketch (log-scaled histogram,
	// O(1) memory, ~0.5% percentile error). Default exact.
	Metrics metrics.Mode
}

func (c Config) withDefaults() Config {
	if c.AccuracyConstraint == 0 {
		c.AccuracyConstraint = 0.01
	}
	if c.RampBudget == 0 {
		c.RampBudget = 0.02
	}
	if c.Style.Name == "" {
		c.Style = ramp.StyleDefault
	}
	return c
}

// System is a prepared classification serving system.
type System struct {
	Model   *model.Model
	Handler *serving.ApparateHandler
	Opts    serving.Options
	cfg     Config
}

// New prepares the model with early exits for the given workload kind:
// ramp sites from the cut-vertex analysis, the budget-maximal evenly
// spaced initial deployment with zero thresholds, and a controller
// enforcing the accuracy constraint.
func New(m *model.Model, kind exitsim.Kind, cfg Config) *System {
	cfg = cfg.withDefaults()
	profile := exitsim.ProfileFor(m, kind)
	h := serving.NewApparate(m, profile, cfg.RampBudget, controller.Config{
		AccConstraint:     cfg.AccuracyConstraint,
		DisableRampAdjust: cfg.DisableRampAdjust,
	})
	if cfg.Style.Name != ramp.StyleDefault.Name {
		// Redeploy with the requested ramp architecture.
		h.Cfg.DeployInitial(cfg.Style)
	}
	if cfg.ExitRule != "" {
		rule, err := exitrule.ByName(cfg.ExitRule)
		if err != nil {
			panic(err) // registration-time misconfiguration
		}
		h.Cfg.Rule = rule
	}
	slo := cfg.SLOms
	if slo == 0 {
		slo = m.SLO()
	}
	return &System{
		Model:   m,
		Handler: h,
		Opts: serving.Options{
			Platform: cfg.Platform,
			SLOms:    slo,
			MaxBatch: cfg.MaxBatch,
			Metrics:  cfg.Metrics,
		},
		cfg: cfg,
	}
}

// Serve runs the workload through the platform with Apparate managing
// exits. The stream is consumed through a fresh iterator, so the same
// stream can be served any number of times.
func (s *System) Serve(stream *workload.Stream) *serving.Stats {
	return serving.Run(stream.Iter(), s.Handler, s.Opts)
}

// ServeVanilla runs the same workload with the unmodified model on the
// same platform configuration, for comparison.
func (s *System) ServeVanilla(stream *workload.Stream) *serving.Stats {
	return serving.Run(stream.Iter(), &serving.VanillaHandler{Model: s.Model}, s.Opts)
}

// Controller exposes the runtime controller for inspection.
func (s *System) Controller() *controller.Controller { return s.Handler.Ctl }

// GenSystem is a prepared generative serving system.
type GenSystem struct {
	Model  *model.Model
	Engine *genserve.Engine
	Policy *genserve.ApparateGen
}

// NewGen prepares a generative model: the decode head doubles as the
// ramp (no training needed, §3.1), a single adjustable ramp protects
// tail TPT, and parallel decoding recovers exit savings (§3.4).
func NewGen(m *model.Model, kind exitsim.Kind, cfg Config) *GenSystem {
	cfg = cfg.withDefaults()
	profile := exitsim.ProfileFor(m, kind)
	eng := genserve.NewEngine(m, profile)
	eng.Metrics = cfg.Metrics
	if cfg.GenSlots > 0 {
		eng.MaxConcurrent = cfg.GenSlots
	}
	if cfg.GenFlush > 0 {
		eng.FlushCount = cfg.GenFlush
	}
	eng.KVBlocks = cfg.KVBlocks
	eng.BlockTokens = cfg.BlockTokens
	eng.PrefixHitRatio = cfg.PrefixHitRatio
	eng.PrefillChunkTokens = cfg.PrefillChunkTokens
	eng.Seed = cfg.Seed
	return &GenSystem{
		Model:  m,
		Engine: eng,
		Policy: genserve.NewApparateGen(m, profile, cfg.AccuracyConstraint),
	}
}

// Serve runs the generative workload under Apparate's token exiting.
func (g *GenSystem) Serve(stream *workload.GenStream) *genserve.Stats {
	return g.Engine.Run(stream, g.Policy)
}

// ServeVanilla runs the workload without exits, for comparison.
func (g *GenSystem) ServeVanilla(stream *workload.GenStream) *genserve.Stats {
	return g.Engine.Run(stream, genserve.VanillaGen{})
}
