package core

import (
	"encoding/json"
	"testing"
)

// TestRunScenarioShardsByteIdentity pins Shards as a pure execution
// knob: the full marshaled Result — every stat the sweep writes to disk
// — must be byte-identical with sharding on and off, so a sweep run at
// any shard count reproduces the committed golden output exactly. The
// grid covers both parallel modes (round-robin replay; least-loaded and
// join-shortest-queue under the conservative-lookahead dispatcher),
// heterogeneous speeds, and an uneven replica/shard split, and checks
// the reported shard modes: the vanilla baseline shards queue-state
// dispatch (latency-stable handlers) while the adaptive Apparate run
// falls back to serial — with identical bytes either way.
func TestRunScenarioShardsByteIdentity(t *testing.T) {
	cases := []struct {
		name         string
		mod          func(*Scenario)
		vanillaMode  string
		apparateMode string
	}{
		{"round-robin", func(sc *Scenario) {}, "replay:4", "replay:4"},
		{"least-loaded", func(sc *Scenario) { sc.Dispatch = "least-loaded" },
			"lookahead:4", "serial:adaptive-handler"},
		{"jsq-hetero-uneven", func(sc *Scenario) {
			sc.Dispatch = "join-shortest-queue"
			sc.Replicas = 5
			sc.Hetero = "1,0.5"
		}, "lookahead:4", "serial:adaptive-handler"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := Scenario{
				Model: "resnet50", Workload: "video-0", N: 3000, Seed: 7,
				Replicas: 4, Dispatch: "round-robin",
			}
			tc.mod(&sc)
			serial, err := RunScenario(sc)
			if err != nil {
				t.Fatal(err)
			}
			sc.Shards = 4
			sharded, err := RunScenario(sc)
			if err != nil {
				t.Fatal(err)
			}
			if serial.VanillaShardMode != "serial" || serial.ApparateShardMode != "serial" {
				t.Fatalf("serial run reported modes %q/%q",
					serial.VanillaShardMode, serial.ApparateShardMode)
			}
			if sharded.VanillaShardMode != tc.vanillaMode {
				t.Fatalf("vanilla shard mode %q, want %q", sharded.VanillaShardMode, tc.vanillaMode)
			}
			if sharded.ApparateShardMode != tc.apparateMode {
				t.Fatalf("apparate shard mode %q, want %q", sharded.ApparateShardMode, tc.apparateMode)
			}
			a, err := json.Marshal(serial)
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(sharded)
			if err != nil {
				t.Fatal(err)
			}
			if string(a) != string(b) {
				t.Fatalf("sharded Result diverges from serial:\n serial:  %s\n sharded: %s", a, b)
			}
		})
	}
}

// Shards must never enter the scenario's identity or key: two runs that
// differ only in shard count are the same experiment.
func TestScenarioIdentityExcludesShards(t *testing.T) {
	a := Scenario{Model: "resnet50", Workload: "video-0", N: 100, Replicas: 4}
	b := a
	b.Shards = 8
	if a.Identity() != b.Identity() {
		t.Fatal("Identity must not depend on Shards")
	}
	if a.Key() != b.Key() {
		t.Fatal("Key must not depend on Shards")
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("Validate rejected Shards=8: %v", err)
	}
	b.Shards = -1
	if err := b.Validate(); err == nil {
		t.Fatal("Validate accepted a negative shard count")
	}
}
