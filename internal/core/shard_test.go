package core

import (
	"encoding/json"
	"testing"
)

// TestRunScenarioShardsByteIdentity pins Shards as a pure execution
// knob: the full marshaled Result — every stat the sweep writes to disk
// — must be byte-identical with sharding on and off, so a sweep run at
// any shard count reproduces the committed golden output exactly.
func TestRunScenarioShardsByteIdentity(t *testing.T) {
	sc := Scenario{
		Model: "resnet50", Workload: "video-0", N: 3000, Seed: 7,
		Replicas: 4, Dispatch: "round-robin",
	}
	serial, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	sc.Shards = 4
	sharded, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("sharded Result diverges from serial:\n serial:  %s\n sharded: %s", a, b)
	}
}

// Shards must never enter the scenario's identity or key: two runs that
// differ only in shard count are the same experiment.
func TestScenarioIdentityExcludesShards(t *testing.T) {
	a := Scenario{Model: "resnet50", Workload: "video-0", N: 100, Replicas: 4}
	b := a
	b.Shards = 8
	if a.Identity() != b.Identity() {
		t.Fatal("Identity must not depend on Shards")
	}
	if a.Key() != b.Key() {
		t.Fatal("Key must not depend on Shards")
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("Validate rejected Shards=8: %v", err)
	}
	b.Shards = -1
	if err := b.Validate(); err == nil {
		t.Fatal("Validate accepted a negative shard count")
	}
}
