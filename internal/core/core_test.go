package core

import (
	"testing"

	"repro/internal/exitsim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/ramp"
	"repro/internal/workload"
)

func TestEndToEndClassification(t *testing.T) {
	sys := New(model.ResNet50(), exitsim.KindVideo, Config{})
	stream := workload.Video(0, 5000, 30, 41)
	v := sys.ServeVanilla(stream)
	a := sys.Serve(stream)
	if a.Accuracy < 0.98 {
		t.Fatalf("accuracy %v below constraint margin", a.Accuracy)
	}
	win := metrics.WinPercent(v.Latencies().Median(), a.Latencies().Median())
	if win < 20 {
		t.Fatalf("median win %v%% too small for an easy CV workload", win)
	}
}

func TestEndToEndGenerative(t *testing.T) {
	g := NewGen(model.T5Large(), exitsim.KindCNNDailyMail, Config{})
	stream := workload.CNNDailyMail(150, 3, 43)
	v := g.ServeVanilla(stream)
	a := g.Serve(stream)
	if a.MeanScore < 0.98 {
		t.Fatalf("sequence score %v below constraint margin", a.MeanScore)
	}
	if a.TPT().Median() >= v.TPT().Median() {
		t.Fatal("no TPT improvement")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.AccuracyConstraint != 0.01 || c.RampBudget != 0.02 || c.Style.Name != "default" {
		t.Fatalf("unexpected defaults: %+v", c)
	}
}

func TestCustomRampStyle(t *testing.T) {
	sys := New(model.BERTBase(), exitsim.KindAmazon, Config{Style: ramp.StyleDeeBERTPooler})
	for _, r := range sys.Handler.Cfg.Active {
		if r.Style.Name != ramp.StyleDeeBERTPooler.Name {
			t.Fatal("custom ramp style not deployed")
		}
	}
	// Costlier ramps, same budget: fewer of them.
	def := New(model.BERTBase(), exitsim.KindAmazon, Config{})
	if len(sys.Handler.Cfg.Active) >= len(def.Handler.Cfg.Active) {
		t.Fatal("pooler-style deployment not smaller than default")
	}
}

func TestSLOOverride(t *testing.T) {
	sys := New(model.ResNet50(), exitsim.KindVideo, Config{SLOms: 100})
	if sys.Opts.SLOms != 100 {
		t.Fatalf("SLO override ignored: %v", sys.Opts.SLOms)
	}
	def := New(model.ResNet50(), exitsim.KindVideo, Config{})
	if def.Opts.SLOms != model.ResNet50().SLO() {
		t.Fatalf("default SLO wrong: %v", def.Opts.SLOms)
	}
}

func TestAblationDisablesAdjustment(t *testing.T) {
	sys := New(model.ResNet50(), exitsim.KindVideo, Config{DisableRampAdjust: true})
	stream := workload.Video(0, 2000, 30, 47)
	sys.Serve(stream)
	if sys.Controller().AdjustRounds != 0 {
		t.Fatal("ablation ran ramp adjustment")
	}
}
