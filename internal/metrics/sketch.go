package metrics

import (
	"fmt"
	"math"
)

// Sketch bin layout: values in [sketchMinValue, sketchMaxValue) map to
// log-scaled bins with ratio sketchGamma between consecutive bin edges.
// A bin's representative value is its geometric midpoint, so any sample
// is reported within a factor of sqrt(gamma) of its true value — a
// relative error of ~0.5% at gamma = 1.01, comfortably inside the 1%
// equivalence budget the property tests assert. The range covers
// sub-microsecond to ~11.5-day latencies in milliseconds; values below
// the range land in a dedicated underflow bin represented by the exact
// tracked minimum.
const (
	sketchGamma    = 1.01
	sketchMinValue = 1e-6
	sketchMaxValue = 1e9
)

var (
	sketchInvLogGamma = 1 / math.Log(sketchGamma)
	sketchBins        = int(math.Ceil(math.Log(sketchMaxValue/sketchMinValue)*sketchInvLogGamma)) + 1
)

// Sketch is a streaming quantile recorder: a fixed-size log-scaled
// histogram whose memory is independent of the number of samples
// (~3.5k bins, ~28 KiB). Insertion order does not affect its state, and
// all arithmetic is deterministic, so sketch-mode sweep output is
// byte-identical at any worker count. The zero value is NOT usable; use
// NewSketch.
type Sketch struct {
	counts []uint64
	// low counts samples below sketchMinValue (including zero and
	// negative values, which latencies never produce but which must not
	// corrupt the histogram).
	low      int
	count    int
	sum      float64
	min, max float64
}

// NewSketch returns an empty sketch.
func NewSketch() *Sketch {
	return &Sketch{counts: make([]uint64, sketchBins)}
}

// Reset empties the sketch in place, reusing the bin array — the
// hot-path alternative to allocating a fresh NewSketch per window.
func (s *Sketch) Reset() {
	clear(s.counts)
	s.low, s.count = 0, 0
	s.sum, s.min, s.max = 0, 0, 0
}

// Add appends one sample.
func (s *Sketch) Add(v float64) {
	if s.count == 0 || v < s.min {
		s.min = v
	}
	if s.count == 0 || v > s.max {
		s.max = v
	}
	s.count++
	s.sum += v
	if v < sketchMinValue {
		s.low++
		return
	}
	idx := int(math.Log(v/sketchMinValue) * sketchInvLogGamma)
	if idx >= len(s.counts) {
		idx = len(s.counts) - 1
	}
	s.counts[idx]++
}

// Merge folds another sketch into this one.
func (s *Sketch) Merge(other Recorder) {
	os, ok := other.(*Sketch)
	if !ok {
		panic(fmt.Sprintf("metrics: cannot merge %T into *Sketch", other))
	}
	if os.count == 0 {
		return
	}
	if s.count == 0 || os.min < s.min {
		s.min = os.min
	}
	if s.count == 0 || os.max > s.max {
		s.max = os.max
	}
	s.count += os.count
	s.sum += os.sum
	s.low += os.low
	for i, c := range os.counts {
		s.counts[i] += c
	}
}

// Len reports the number of samples recorded.
func (s *Sketch) Len() int { return s.count }

// Percentile returns the approximate p-th percentile (p in [0, 100]),
// within a relative error of sqrt(gamma)-1 (~0.5%). It panics on an
// empty sketch or out-of-range p, mirroring Dist.
func (s *Sketch) Percentile(p float64) float64 {
	if s.count == 0 {
		panic("metrics: Percentile of empty sketch")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("metrics: percentile %v out of [0,100]", p))
	}
	// Same closest-rank convention as Dist: rank p spans [0, n-1].
	rank := p / 100 * float64(s.count-1)
	cum := float64(s.low)
	if rank < cum {
		return s.min
	}
	for i, c := range s.counts {
		if c == 0 {
			continue
		}
		cum += float64(c)
		if rank < cum {
			return s.clamp(sketchMinValue * math.Pow(sketchGamma, float64(i)+0.5))
		}
	}
	return s.max
}

// clamp keeps bin representatives inside the exactly-tracked range.
func (s *Sketch) clamp(v float64) float64 {
	if v < s.min {
		return s.min
	}
	if v > s.max {
		return s.max
	}
	return v
}

// Median returns the 50th percentile.
func (s *Sketch) Median() float64 { return s.Percentile(50) }

// Mean returns the exact arithmetic mean. It panics when empty.
func (s *Sketch) Mean() float64 {
	if s.count == 0 {
		panic("metrics: Mean of empty sketch")
	}
	return s.sum / float64(s.count)
}

// Min returns the exact smallest sample.
func (s *Sketch) Min() float64 {
	if s.count == 0 {
		panic("metrics: Min of empty sketch")
	}
	return s.min
}

// Max returns the exact largest sample.
func (s *Sketch) Max() float64 {
	if s.count == 0 {
		panic("metrics: Max of empty sketch")
	}
	return s.max
}

// Summarize computes a Summary. It panics when empty.
func (s *Sketch) Summarize() Summary { return summarize(s) }
