package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestPercentileKnownValues(t *testing.T) {
	d := NewDist(0)
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 100}, {50, 50.5}, {25, 25.75}, {95, 95.05},
	}
	for _, c := range cases {
		if got := d.Percentile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileSingleSample(t *testing.T) {
	d := NewDist(1)
	d.Add(42)
	for _, p := range []float64{0, 50, 100} {
		if got := d.Percentile(p); got != 42 {
			t.Errorf("Percentile(%v) = %v, want 42", p, got)
		}
	}
}

func TestPercentileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty distribution")
		}
	}()
	NewDist(0).Percentile(50)
}

func TestPercentileOutOfRangePanics(t *testing.T) {
	d := NewDist(1)
	d.Add(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on p > 100")
		}
	}()
	d.Percentile(101)
}

func TestPercentileMonotone(t *testing.T) {
	// Property: percentiles are non-decreasing in p for any sample set.
	check := func(seed uint64) bool {
		r := rng.New(seed)
		d := NewDist(0)
		n := r.Intn(200) + 1
		for i := 0; i < n; i++ {
			d.Add(r.Float64() * 1000)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 2.5 {
			v := d.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileInsensitiveToInsertionOrder(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(100) + 2
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.Float64() * 100
		}
		d1 := NewDist(n)
		d1.AddAll(vals)
		shuffled := make([]float64, n)
		copy(shuffled, vals)
		perm := r.Perm(n)
		for i, j := range perm {
			shuffled[i] = vals[j]
		}
		d2 := NewDist(n)
		d2.AddAll(shuffled)
		for _, p := range []float64{25, 50, 95} {
			if d1.Percentile(p) != d2.Percentile(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanMinMax(t *testing.T) {
	d := NewDist(0)
	d.AddAll([]float64{3, 1, 2})
	if d.Mean() != 2 {
		t.Errorf("Mean = %v, want 2", d.Mean())
	}
	if d.Min() != 1 || d.Max() != 3 {
		t.Errorf("Min/Max = %v/%v, want 1/3", d.Min(), d.Max())
	}
}

func TestAddAfterQuery(t *testing.T) {
	d := NewDist(0)
	d.Add(5)
	_ = d.Median()
	d.Add(1)
	if got := d.Min(); got != 1 {
		t.Errorf("Min after re-add = %v, want 1", got)
	}
}

func TestCDFShape(t *testing.T) {
	d := NewDist(0)
	for i := 0; i < 1000; i++ {
		d.Add(float64(i))
	}
	cdf := d.CDF(11)
	if len(cdf) != 11 {
		t.Fatalf("CDF length = %d, want 11", len(cdf))
	}
	if !sort.SliceIsSorted(cdf, func(i, j int) bool { return cdf[i].Value < cdf[j].Value }) {
		t.Fatal("CDF values not sorted")
	}
	last := cdf[len(cdf)-1]
	if last.Fraction != 1.0 {
		t.Errorf("final CDF fraction = %v, want 1.0", last.Fraction)
	}
	for _, pt := range cdf {
		if pt.Fraction <= 0 || pt.Fraction > 1 {
			t.Errorf("CDF fraction out of (0,1]: %v", pt.Fraction)
		}
	}
}

func TestCDFEmpty(t *testing.T) {
	if got := NewDist(0).CDF(5); got != nil {
		t.Fatalf("CDF of empty distribution = %v, want nil", got)
	}
}

func TestSummarize(t *testing.T) {
	d := NewDist(0)
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	s := d.Summarize()
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Errorf("Summary basics wrong: %+v", s)
	}
	if math.Abs(s.Median-50.5) > 1e-9 || math.Abs(s.Mean-50.5) > 1e-9 {
		t.Errorf("Summary center wrong: %+v", s)
	}
	if s.P25 >= s.Median || s.Median >= s.P95 || s.P95 >= s.P99 {
		t.Errorf("Summary quantiles not ordered: %+v", s)
	}
}

func TestWinPercent(t *testing.T) {
	if got := WinPercent(100, 60); got != 40 {
		t.Errorf("WinPercent(100,60) = %v, want 40", got)
	}
	if got := WinPercent(100, 120); got != -20 {
		t.Errorf("WinPercent(100,120) = %v, want -20", got)
	}
	if got := WinPercent(0, 5); got != 0 {
		t.Errorf("WinPercent(0,5) = %v, want 0", got)
	}
}

func TestAccuracyWindowBasics(t *testing.T) {
	w := NewAccuracyWindow(4)
	if w.Accuracy() != 1.0 {
		t.Errorf("empty window accuracy = %v, want 1", w.Accuracy())
	}
	w.Observe(true)
	w.Observe(false)
	if got := w.Accuracy(); got != 0.5 {
		t.Errorf("accuracy = %v, want 0.5", got)
	}
	if w.Full() {
		t.Error("window reported full with 2/4 samples")
	}
	w.Observe(true)
	w.Observe(true)
	if !w.Full() {
		t.Error("window not full with 4/4 samples")
	}
	if got := w.Accuracy(); got != 0.75 {
		t.Errorf("accuracy = %v, want 0.75", got)
	}
}

func TestAccuracyWindowEviction(t *testing.T) {
	w := NewAccuracyWindow(2)
	w.Observe(false)
	w.Observe(false)
	w.Observe(true) // evicts one false
	w.Observe(true) // evicts the other
	if got := w.Accuracy(); got != 1.0 {
		t.Errorf("accuracy after eviction = %v, want 1", got)
	}
}

func TestAccuracyWindowMatchesNaive(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		size := r.Intn(16) + 1
		w := NewAccuracyWindow(size)
		var history []bool
		for i := 0; i < 100; i++ {
			v := r.Bool(0.7)
			w.Observe(v)
			history = append(history, v)
			start := len(history) - size
			if start < 0 {
				start = 0
			}
			correct := 0
			for _, h := range history[start:] {
				if h {
					correct++
				}
			}
			want := float64(correct) / float64(len(history)-start)
			if math.Abs(w.Accuracy()-want) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAccuracyWindowReset(t *testing.T) {
	w := NewAccuracyWindow(3)
	w.Observe(false)
	w.Reset()
	if w.Accuracy() != 1.0 || w.Full() {
		t.Error("Reset did not clear the window")
	}
}

func TestAccuracyWindowSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewAccuracyWindow(0) did not panic")
		}
	}()
	NewAccuracyWindow(0)
}

func TestCounter(t *testing.T) {
	var c Counter
	if c.Mean() != 0 {
		t.Errorf("empty Counter mean = %v, want 0", c.Mean())
	}
	c.Add(2)
	c.Add(4)
	if c.Mean() != 3 || c.Count != 2 || c.Sum != 6 {
		t.Errorf("Counter state wrong: %+v", c)
	}
}
