package metrics

import "testing"

// These tests pin Recorder edge-case behavior the obs timeline sampler
// depends on: it creates a fresh recorder per window, merges shards,
// and summarizes windows that may hold a single completion.

// TestMergeEmptyOperand checks merging an empty recorder is a no-op for
// both implementations — stats, count, and percentiles are unchanged.
func TestMergeEmptyOperand(t *testing.T) {
	for _, mode := range []Mode{ModeExact, ModeSketch} {
		t.Run(mode.String(), func(t *testing.T) {
			r := NewRecorder(mode, 4)
			for _, v := range []float64{5, 10, 20} {
				r.Add(v)
			}
			before := r.Summarize()
			r.Merge(NewRecorder(mode, 0))
			after := r.Summarize()
			if before != after {
				t.Fatalf("merging an empty operand changed the summary: %+v vs %+v", before, after)
			}
			if r.Len() != 3 {
				t.Fatalf("Len = %d after empty merge, want 3", r.Len())
			}
		})
	}
}

// TestMergeIntoEmpty checks the mirror case: an empty recorder absorbs
// a populated operand completely, including min/max.
func TestMergeIntoEmpty(t *testing.T) {
	for _, mode := range []Mode{ModeExact, ModeSketch} {
		t.Run(mode.String(), func(t *testing.T) {
			src := NewRecorder(mode, 4)
			for _, v := range []float64{5, 10, 20} {
				src.Add(v)
			}
			dst := NewRecorder(mode, 0)
			dst.Merge(src)
			if dst.Len() != 3 {
				t.Fatalf("Len = %d after merge into empty, want 3", dst.Len())
			}
			s := dst.Summarize()
			// The sketch answers within ~0.5% relative error; exact is exact.
			if s.Min > 5.03 || s.Min < 4.97 || s.Max > 20.1 || s.Max < 19.9 {
				t.Fatalf("merge into empty lost min/max: %+v", s)
			}
		})
	}
}

// TestSummarizeSingleSample checks a one-sample window summarizes with
// every percentile equal to that sample.
func TestSummarizeSingleSample(t *testing.T) {
	for _, mode := range []Mode{ModeExact, ModeSketch} {
		t.Run(mode.String(), func(t *testing.T) {
			r := NewRecorder(mode, 1)
			r.Add(42)
			s := r.Summarize()
			if s.Count != 1 {
				t.Fatalf("Count = %d, want 1", s.Count)
			}
			for name, got := range map[string]float64{
				"Mean": s.Mean, "P25": s.P25, "Median": s.Median,
				"P95": s.P95, "P99": s.P99, "Min": s.Min, "Max": s.Max,
			} {
				if got < 41.8 || got > 42.2 {
					t.Errorf("%s = %v, want ~42", name, got)
				}
			}
		})
	}
}

// TestPercentileEmptyPanicsBothModes pins the contract the timeline
// guards against with its winDone counter: querying an empty recorder
// panics rather than returning a silent zero, in both modes.
func TestPercentileEmptyPanicsBothModes(t *testing.T) {
	for _, mode := range []Mode{ModeExact, ModeSketch} {
		t.Run(mode.String(), func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("Percentile on an empty recorder did not panic")
				}
			}()
			NewRecorder(mode, 0).Percentile(99)
		})
	}
}
