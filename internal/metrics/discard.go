package metrics

// Discard is a Recorder that drops every sample and reports itself
// empty. The conservative-lookahead sharded runtime records the
// dispatcher shard's shadow replicas into it: the shadow simulation
// exists only for its control-plane decisions, so keeping its samples
// would double latency memory (and, in exact mode, break the
// O(queue)-not-O(trace) bound) for numbers that are thrown away.
type Discard struct{}

// Add drops the sample.
func (Discard) Add(float64) {}

// Len reports zero samples.
func (Discard) Len() int { return 0 }

// Percentile panics like any empty recorder would be queried in error.
func (Discard) Percentile(float64) float64 {
	panic("metrics: Percentile on a Discard recorder")
}

// Median panics; Discard holds no samples.
func (Discard) Median() float64 { panic("metrics: Median on a Discard recorder") }

// Mean panics; Discard holds no samples.
func (Discard) Mean() float64 { panic("metrics: Mean on a Discard recorder") }

// Min panics; Discard holds no samples.
func (Discard) Min() float64 { panic("metrics: Min on a Discard recorder") }

// Max panics; Discard holds no samples.
func (Discard) Max() float64 { panic("metrics: Max on a Discard recorder") }

// Summarize panics; Discard holds no samples.
func (Discard) Summarize() Summary { panic("metrics: Summarize on a Discard recorder") }

// Merge drops the other recorder's samples.
func (Discard) Merge(Recorder) {}
