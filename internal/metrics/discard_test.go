package metrics

import "testing"

// TestDiscardRecorder pins the null recorder: samples vanish, the
// recorder stays empty, and merging from it is a no-op — so a shadow
// replica recorded into Discard can never leak into merged cluster
// stats (mergeStats skips empty recorders).
func TestDiscardRecorder(t *testing.T) {
	var d Discard
	for i := 0; i < 1000; i++ {
		d.Add(float64(i))
	}
	if d.Len() != 0 {
		t.Fatalf("Discard.Len() = %d, want 0", d.Len())
	}
	real := NewRecorder(ModeExact, 4)
	real.Add(1)
	d.Merge(real)
	if d.Len() != 0 {
		t.Fatalf("Discard.Merge retained samples: Len = %d", d.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Percentile on Discard did not panic")
		}
	}()
	d.Percentile(99)
}
