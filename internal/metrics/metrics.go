// Package metrics provides the latency and accuracy bookkeeping used by
// the serving simulator and the experiment harness: exact percentile
// computation over collected samples, a bounded-memory quantile sketch,
// CDF extraction, sliding accuracy windows, and latency-win summaries in
// the format the paper reports. The Recorder interface abstracts over
// the exact and sketched implementations so simulators can stream
// samples into either without caring which is underneath.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Recorder accumulates float64 samples (latencies in milliseconds,
// unless stated otherwise) and answers order-statistic queries. Two
// implementations exist: Dist (exact, O(n) memory) and Sketch
// (approximate, O(1) memory). Simulators record into the interface;
// the caller picks the implementation per scenario via NewRecorder.
type Recorder interface {
	// Add appends one sample.
	Add(v float64)
	// Len reports the number of samples recorded.
	Len() int
	// Percentile returns the p-th percentile (p in [0, 100]). It panics
	// on an empty recorder or out-of-range p.
	Percentile(p float64) float64
	// Median returns the 50th percentile.
	Median() float64
	// Mean returns the arithmetic mean. It panics when empty.
	Mean() float64
	// Min returns the smallest sample. It panics when empty.
	Min() float64
	// Max returns the largest sample. It panics when empty.
	Max() float64
	// Summarize computes a Summary. It panics when empty.
	Summarize() Summary
	// Merge folds another recorder of the same implementation into this
	// one. It panics on mismatched implementations: exact and sketched
	// samples cannot be combined losslessly.
	Merge(other Recorder)
}

// Mode selects a Recorder implementation.
type Mode int

// Supported recorder modes.
const (
	// ModeExact keeps every sample (Dist): exact percentiles, O(n)
	// memory.
	ModeExact Mode = iota
	// ModeSketch keeps a log-scaled histogram (Sketch): percentiles
	// within ~0.5% relative error, O(1) memory.
	ModeSketch
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeExact:
		return "exact"
	case ModeSketch:
		return "sketch"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Modes lists the supported mode names in canonical order.
func Modes() []string { return []string{"exact", "sketch"} }

// ParseMode maps a mode name to its Mode value. The empty string is the
// exact default.
func ParseMode(name string) (Mode, error) {
	switch name {
	case "", "exact":
		return ModeExact, nil
	case "sketch":
		return ModeSketch, nil
	}
	return 0, fmt.Errorf("metrics: unknown mode %q (want exact | sketch)", name)
}

// NewRecorder returns an empty recorder of the given mode. capacity is a
// size hint for ModeExact and ignored for ModeSketch.
func NewRecorder(m Mode, capacity int) Recorder {
	if m == ModeSketch {
		return NewSketch()
	}
	return NewDist(capacity)
}

// Dist collects float64 samples and answers exact order-statistic
// queries. The zero value is an empty, usable distribution.
//
// Internally Dist keeps a sorted run plus an unsorted pending tail:
// Add/AddAll append to the tail in O(1), and the first query after a
// batch of adds sorts just the tail and merges it into the run —
// O(k log k + n) for k pending adds instead of the O(n log n) full
// re-sort per query that interleaved add/query workloads used to pay
// (see BenchmarkDistInterleaved).
type Dist struct {
	sorted  []float64 // sorted run
	pending []float64 // unsorted recent adds
	sum     float64
}

// NewDist returns an empty distribution with the given capacity hint.
func NewDist(capacity int) *Dist {
	return &Dist{sorted: make([]float64, 0, capacity)}
}

// Add appends one sample.
func (d *Dist) Add(v float64) {
	d.pending = append(d.pending, v)
	d.sum += v
}

// AddAll appends all samples.
func (d *Dist) AddAll(vs []float64) {
	d.pending = append(d.pending, vs...)
	for _, v := range vs {
		d.sum += v
	}
}

// Merge folds another exact distribution into this one.
func (d *Dist) Merge(other Recorder) {
	od, ok := other.(*Dist)
	if !ok {
		panic(fmt.Sprintf("metrics: cannot merge %T into *Dist", other))
	}
	d.AddAll(od.sorted)
	d.AddAll(od.pending)
}

// Len reports the number of samples collected.
func (d *Dist) Len() int { return len(d.sorted) + len(d.pending) }

// ensureSorted folds the pending tail into the sorted run.
func (d *Dist) ensureSorted() {
	if len(d.pending) == 0 {
		return
	}
	sort.Float64s(d.pending)
	d.sorted = mergeSorted(d.sorted, d.pending)
	d.pending = d.pending[:0]
}

// mergeSorted merges sorted b into sorted a in one backward pass,
// reusing a's backing array when capacity allows.
func mergeSorted(a, b []float64) []float64 {
	n, m := len(a), len(b)
	if n == 0 {
		return append(a, b...)
	}
	a = append(a, b...) // grow; the tail is overwritten by the merge
	i, j := n-1, m-1
	for k := n + m - 1; j >= 0; k-- {
		if i >= 0 && a[i] > b[j] {
			a[k] = a[i]
			i--
		} else {
			a[k] = b[j]
			j--
		}
	}
	return a
}

// Percentile returns the p-th percentile (p in [0, 100]) using linear
// interpolation between closest ranks. It panics on an empty distribution
// or out-of-range p: both indicate harness bugs, not runtime conditions.
func (d *Dist) Percentile(p float64) float64 {
	if d.Len() == 0 {
		panic("metrics: Percentile of empty distribution")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("metrics: percentile %v out of [0,100]", p))
	}
	d.ensureSorted()
	if len(d.sorted) == 1 {
		return d.sorted[0]
	}
	rank := p / 100 * float64(len(d.sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return d.sorted[lo]
	}
	frac := rank - float64(lo)
	return d.sorted[lo]*(1-frac) + d.sorted[hi]*frac
}

// Median returns the 50th percentile.
func (d *Dist) Median() float64 { return d.Percentile(50) }

// Mean returns the arithmetic mean. It panics on an empty distribution.
func (d *Dist) Mean() float64 {
	if d.Len() == 0 {
		panic("metrics: Mean of empty distribution")
	}
	return d.sum / float64(d.Len())
}

// Min returns the smallest sample.
func (d *Dist) Min() float64 {
	if d.Len() == 0 {
		panic("metrics: Min of empty distribution")
	}
	d.ensureSorted()
	return d.sorted[0]
}

// Max returns the largest sample.
func (d *Dist) Max() float64 {
	if d.Len() == 0 {
		panic("metrics: Max of empty distribution")
	}
	d.ensureSorted()
	return d.sorted[len(d.sorted)-1]
}

// CDFPoint is one point on an empirical CDF.
type CDFPoint struct {
	Value    float64 // sample value
	Fraction float64 // fraction of samples <= Value
}

// CDF returns the empirical CDF downsampled to at most points entries
// (plus the final point). points must be >= 2.
func (d *Dist) CDF(points int) []CDFPoint {
	if points < 2 {
		panic("metrics: CDF needs at least 2 points")
	}
	if d.Len() == 0 {
		return nil
	}
	d.ensureSorted()
	n := len(d.sorted)
	out := make([]CDFPoint, 0, points)
	for i := 0; i < points; i++ {
		idx := i * (n - 1) / (points - 1)
		out = append(out, CDFPoint{
			Value:    d.sorted[idx],
			Fraction: float64(idx+1) / float64(n),
		})
	}
	return out
}

// Summary is the (median, p25, p95, mean) tuple the paper's figures report.
type Summary struct {
	Count  int
	Mean   float64
	P25    float64
	Median float64
	P95    float64
	P99    float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary. It panics on an empty distribution.
func (d *Dist) Summarize() Summary { return summarize(d) }

// summarize builds a Summary from any recorder.
func summarize(r Recorder) Summary {
	return Summary{
		Count:  r.Len(),
		Mean:   r.Mean(),
		P25:    r.Percentile(25),
		Median: r.Median(),
		P95:    r.Percentile(95),
		P99:    r.Percentile(99),
		Min:    r.Min(),
		Max:    r.Max(),
	}
}

// WinPercent reports the relative improvement of got over base at a given
// quantile, in percent: positive means got is faster (smaller).
func WinPercent(base, got float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - got) / base * 100
}

// AccuracyWindow maintains a sliding window of boolean accuracy outcomes
// (did the released result match the original model's output?) and reports
// the windowed accuracy. This is the trigger signal for threshold tuning
// (§3.2: "average achieved accuracy over the past 16 samples").
type AccuracyWindow struct {
	size    int
	buf     []bool
	next    int
	filled  int
	correct int
}

// NewAccuracyWindow returns a window over the past size outcomes.
// size must be positive.
func NewAccuracyWindow(size int) *AccuracyWindow {
	if size <= 0 {
		panic("metrics: AccuracyWindow size must be positive")
	}
	return &AccuracyWindow{size: size, buf: make([]bool, size)}
}

// Observe records one outcome.
func (w *AccuracyWindow) Observe(correct bool) {
	if w.filled == w.size {
		if w.buf[w.next] {
			w.correct--
		}
	} else {
		w.filled++
	}
	w.buf[w.next] = correct
	if correct {
		w.correct++
	}
	w.next = (w.next + 1) % w.size
}

// Accuracy reports the fraction of correct outcomes in the window.
// It returns 1.0 before any outcome is observed (no evidence of loss).
func (w *AccuracyWindow) Accuracy() float64 {
	if w.filled == 0 {
		return 1.0
	}
	return float64(w.correct) / float64(w.filled)
}

// Full reports whether the window has observed at least size outcomes.
func (w *AccuracyWindow) Full() bool { return w.filled == w.size }

// Reset empties the window.
func (w *AccuracyWindow) Reset() {
	w.next, w.filled, w.correct = 0, 0, 0
}

// Counter tracks a running total with a count, for mean throughput-style
// metrics.
type Counter struct {
	Sum   float64
	Count int
}

// Add records one observation.
func (c *Counter) Add(v float64) {
	c.Sum += v
	c.Count++
}

// Mean returns Sum/Count, or 0 when empty.
func (c *Counter) Mean() float64 {
	if c.Count == 0 {
		return 0
	}
	return c.Sum / float64(c.Count)
}
