// Package metrics provides the latency and accuracy bookkeeping used by
// the serving simulator and the experiment harness: exact percentile
// computation over collected samples, CDF extraction, sliding accuracy
// windows, and latency-win summaries in the format the paper reports.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Dist collects float64 samples (latencies in milliseconds, unless stated
// otherwise) and answers exact order-statistic queries. The zero value is
// an empty, usable distribution.
type Dist struct {
	samples []float64
	sorted  bool
}

// NewDist returns an empty distribution with the given capacity hint.
func NewDist(capacity int) *Dist {
	return &Dist{samples: make([]float64, 0, capacity)}
}

// Add appends one sample.
func (d *Dist) Add(v float64) {
	d.samples = append(d.samples, v)
	d.sorted = false
}

// AddAll appends all samples.
func (d *Dist) AddAll(vs []float64) {
	d.samples = append(d.samples, vs...)
	d.sorted = false
}

// Len reports the number of samples collected.
func (d *Dist) Len() int { return len(d.samples) }

func (d *Dist) ensureSorted() {
	if !d.sorted {
		sort.Float64s(d.samples)
		d.sorted = true
	}
}

// Percentile returns the p-th percentile (p in [0, 100]) using linear
// interpolation between closest ranks. It panics on an empty distribution
// or out-of-range p: both indicate harness bugs, not runtime conditions.
func (d *Dist) Percentile(p float64) float64 {
	if len(d.samples) == 0 {
		panic("metrics: Percentile of empty distribution")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("metrics: percentile %v out of [0,100]", p))
	}
	d.ensureSorted()
	if len(d.samples) == 1 {
		return d.samples[0]
	}
	rank := p / 100 * float64(len(d.samples)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return d.samples[lo]
	}
	frac := rank - float64(lo)
	return d.samples[lo]*(1-frac) + d.samples[hi]*frac
}

// Median returns the 50th percentile.
func (d *Dist) Median() float64 { return d.Percentile(50) }

// Mean returns the arithmetic mean. It panics on an empty distribution.
func (d *Dist) Mean() float64 {
	if len(d.samples) == 0 {
		panic("metrics: Mean of empty distribution")
	}
	sum := 0.0
	for _, v := range d.samples {
		sum += v
	}
	return sum / float64(len(d.samples))
}

// Min returns the smallest sample.
func (d *Dist) Min() float64 {
	if len(d.samples) == 0 {
		panic("metrics: Min of empty distribution")
	}
	d.ensureSorted()
	return d.samples[0]
}

// Max returns the largest sample.
func (d *Dist) Max() float64 {
	if len(d.samples) == 0 {
		panic("metrics: Max of empty distribution")
	}
	d.ensureSorted()
	return d.samples[len(d.samples)-1]
}

// CDFPoint is one point on an empirical CDF.
type CDFPoint struct {
	Value    float64 // sample value
	Fraction float64 // fraction of samples <= Value
}

// CDF returns the empirical CDF downsampled to at most points entries
// (plus the final point). points must be >= 2.
func (d *Dist) CDF(points int) []CDFPoint {
	if points < 2 {
		panic("metrics: CDF needs at least 2 points")
	}
	if len(d.samples) == 0 {
		return nil
	}
	d.ensureSorted()
	n := len(d.samples)
	out := make([]CDFPoint, 0, points)
	for i := 0; i < points; i++ {
		idx := i * (n - 1) / (points - 1)
		out = append(out, CDFPoint{
			Value:    d.samples[idx],
			Fraction: float64(idx+1) / float64(n),
		})
	}
	return out
}

// Summary is the (median, p25, p95, mean) tuple the paper's figures report.
type Summary struct {
	Count  int
	Mean   float64
	P25    float64
	Median float64
	P95    float64
	P99    float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary. It panics on an empty distribution.
func (d *Dist) Summarize() Summary {
	return Summary{
		Count:  d.Len(),
		Mean:   d.Mean(),
		P25:    d.Percentile(25),
		Median: d.Median(),
		P95:    d.Percentile(95),
		P99:    d.Percentile(99),
		Min:    d.Min(),
		Max:    d.Max(),
	}
}

// WinPercent reports the relative improvement of got over base at a given
// quantile, in percent: positive means got is faster (smaller).
func WinPercent(base, got float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - got) / base * 100
}

// AccuracyWindow maintains a sliding window of boolean accuracy outcomes
// (did the released result match the original model's output?) and reports
// the windowed accuracy. This is the trigger signal for threshold tuning
// (§3.2: "average achieved accuracy over the past 16 samples").
type AccuracyWindow struct {
	size    int
	buf     []bool
	next    int
	filled  int
	correct int
}

// NewAccuracyWindow returns a window over the past size outcomes.
// size must be positive.
func NewAccuracyWindow(size int) *AccuracyWindow {
	if size <= 0 {
		panic("metrics: AccuracyWindow size must be positive")
	}
	return &AccuracyWindow{size: size, buf: make([]bool, size)}
}

// Observe records one outcome.
func (w *AccuracyWindow) Observe(correct bool) {
	if w.filled == w.size {
		if w.buf[w.next] {
			w.correct--
		}
	} else {
		w.filled++
	}
	w.buf[w.next] = correct
	if correct {
		w.correct++
	}
	w.next = (w.next + 1) % w.size
}

// Accuracy reports the fraction of correct outcomes in the window.
// It returns 1.0 before any outcome is observed (no evidence of loss).
func (w *AccuracyWindow) Accuracy() float64 {
	if w.filled == 0 {
		return 1.0
	}
	return float64(w.correct) / float64(w.filled)
}

// Full reports whether the window has observed at least size outcomes.
func (w *AccuracyWindow) Full() bool { return w.filled == w.size }

// Reset empties the window.
func (w *AccuracyWindow) Reset() {
	w.next, w.filled, w.correct = 0, 0, 0
}

// Counter tracks a running total with a count, for mean throughput-style
// metrics.
type Counter struct {
	Sum   float64
	Count int
}

// Add records one observation.
func (c *Counter) Add(v float64) {
	c.Sum += v
	c.Count++
}

// Mean returns Sum/Count, or 0 when empty.
func (c *Counter) Mean() float64 {
	if c.Count == 0 {
		return 0
	}
	return c.Sum / float64(c.Count)
}
