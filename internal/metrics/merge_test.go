package metrics

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// Shard-merge round-trip: the cluster simulator records latencies into
// per-replica recorders and folds them with Merge, so merging shards
// must be equivalent to recording the union stream directly — exactly
// for Dist (same sample multiset), and bin-exactly for Sketch (merge
// adds counts, so percentiles are identical, and mean differs only by
// float summation order).

// shardSamples draws a lognormal-ish latency stream and deals it
// round-robin into k shards.
func shardSamples(n, k int, seed uint64) (all []float64, shards [][]float64) {
	r := rng.New(seed)
	shards = make([][]float64, k)
	for i := 0; i < n; i++ {
		v := math.Exp(r.Norm()*0.8+2) + r.Float64()
		all = append(all, v)
		shards[i%k] = append(shards[i%k], v)
	}
	return all, shards
}

func recordAll(rec Recorder, vs []float64) {
	for _, v := range vs {
		rec.Add(v)
	}
}

var mergeProbes = []float64{0, 1, 5, 25, 50, 75, 90, 95, 99, 99.9, 100}

func TestDistShardMergeRoundTrip(t *testing.T) {
	for _, k := range []int{2, 4, 7} {
		all, shards := shardSamples(10000, k, 77)
		union := NewDist(0)
		recordAll(union, all)
		merged := NewDist(0)
		for _, sh := range shards {
			d := NewDist(0)
			recordAll(d, sh)
			// Query some shards before merging so both pending-tail and
			// sorted-run states feed the merge path.
			if len(sh) > 0 && k == 4 {
				d.Median()
			}
			merged.Merge(d)
		}
		if merged.Len() != union.Len() {
			t.Fatalf("k=%d: merged %d samples, union %d", k, merged.Len(), union.Len())
		}
		for _, p := range mergeProbes {
			if got, want := merged.Percentile(p), union.Percentile(p); got != want {
				t.Fatalf("k=%d: p%v mismatch: merged %v, union %v", k, p, got, want)
			}
		}
		if got, want := merged.Mean(), union.Mean(); math.Abs(got-want) > 1e-9*want {
			t.Fatalf("k=%d: mean mismatch: merged %v, union %v", k, got, want)
		}
		if merged.Min() != union.Min() || merged.Max() != union.Max() {
			t.Fatalf("k=%d: min/max mismatch", k)
		}
	}
}

func TestSketchShardMergeRoundTrip(t *testing.T) {
	for _, k := range []int{2, 4, 7} {
		all, shards := shardSamples(10000, k, 78)
		union := NewSketch()
		recordAll(union, all)
		merged := NewSketch()
		for _, sh := range shards {
			s := NewSketch()
			recordAll(s, sh)
			merged.Merge(s)
		}
		if merged.Len() != union.Len() {
			t.Fatalf("k=%d: merged %d samples, union %d", k, merged.Len(), union.Len())
		}
		// Merge is count addition per bin, so order statistics are
		// bit-identical, not merely within sketch error.
		for _, p := range mergeProbes {
			if got, want := merged.Percentile(p), union.Percentile(p); got != want {
				t.Fatalf("k=%d: p%v mismatch: merged %v, union %v", k, p, got, want)
			}
		}
		if merged.Min() != union.Min() || merged.Max() != union.Max() {
			t.Fatalf("k=%d: min/max mismatch", k)
		}
		if got, want := merged.Mean(), union.Mean(); math.Abs(got-want) > 1e-9*want {
			t.Fatalf("k=%d: mean mismatch: merged %v, union %v", k, got, want)
		}
	}
}

// TestSketchMergeTracksExact ties the two implementations together: a
// merged sketch's percentiles stay within the sketch's error bound of
// the exact merged distribution.
func TestSketchMergeTracksExact(t *testing.T) {
	all, shards := shardSamples(20000, 4, 79)
	exact := NewDist(0)
	recordAll(exact, all)
	merged := NewSketch()
	for _, sh := range shards {
		s := NewSketch()
		recordAll(s, sh)
		merged.Merge(s)
	}
	for _, p := range []float64{25, 50, 95, 99} {
		got, want := merged.Percentile(p), exact.Percentile(p)
		if rel := math.Abs(got-want) / want; rel > 0.01 {
			t.Fatalf("p%v: sketch %v vs exact %v (rel err %v > 1%%)", p, got, want, rel)
		}
	}
}
