package metrics

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// relErr is the sketch-vs-exact equivalence budget: 1% relative error at
// the quantiles the paper's summaries report.
const relErr = 0.01

// checkEquivalence feeds identical samples to an exact Dist and a Sketch
// and asserts p50/p95/p99 agree within the budget.
func checkEquivalence(t *testing.T, name string, samples []float64) {
	t.Helper()
	d := NewDist(len(samples))
	s := NewSketch()
	for _, v := range samples {
		d.Add(v)
		s.Add(v)
	}
	for _, p := range []float64{50, 95, 99} {
		exact := d.Percentile(p)
		got := s.Percentile(p)
		if exact == 0 {
			continue
		}
		if re := math.Abs(got-exact) / math.Abs(exact); re > relErr {
			t.Errorf("%s p%g: sketch %v vs exact %v (rel err %.4f > %v)",
				name, p, got, exact, re, relErr)
		}
	}
	if s.Len() != d.Len() {
		t.Errorf("%s: sketch count %d != exact %d", name, s.Len(), d.Len())
	}
	if s.Min() != d.Min() || s.Max() != d.Max() {
		t.Errorf("%s: sketch min/max not exact: %v/%v vs %v/%v",
			name, s.Min(), s.Max(), d.Min(), d.Max())
	}
	if me, mg := d.Mean(), s.Mean(); math.Abs(mg-me) > 1e-9*math.Abs(me) {
		t.Errorf("%s: sketch mean %v != exact %v", name, mg, me)
	}
}

// TestSketchEquivalence is the property test behind the streaming
// pipeline's accuracy claim: on uniform, lognormal, and bimodal latency
// shapes, sketch quantiles sit within 1% of the exact distribution.
func TestSketchEquivalence(t *testing.T) {
	const n = 20000
	for seed := uint64(1); seed <= 5; seed++ {
		r := rng.New(seed)
		uniform := make([]float64, n)
		lognormal := make([]float64, n)
		bimodal := make([]float64, n)
		for i := 0; i < n; i++ {
			uniform[i] = 5 + 95*r.Float64() // 5..100ms
			lognormal[i] = 10 * math.Exp(0.6*r.Norm())
			// Bimodal: fast exits around 4ms, full passes around 40ms.
			if r.Bool(0.6) {
				bimodal[i] = 4 + r.Norm()*0.4
			} else {
				bimodal[i] = 40 + r.Norm()*4
			}
			if bimodal[i] < 0.1 {
				bimodal[i] = 0.1
			}
		}
		checkEquivalence(t, "uniform", uniform)
		checkEquivalence(t, "lognormal", lognormal)
		checkEquivalence(t, "bimodal", bimodal)
	}
}

func TestSketchInsertionOrderIrrelevant(t *testing.T) {
	r := rng.New(9)
	vals := make([]float64, 5000)
	for i := range vals {
		vals[i] = math.Exp(2 * r.Norm())
	}
	a, b := NewSketch(), NewSketch()
	for _, v := range vals {
		a.Add(v)
	}
	for i := len(vals) - 1; i >= 0; i-- {
		b.Add(vals[i])
	}
	for _, p := range []float64{0, 25, 50, 95, 99, 100} {
		if a.Percentile(p) != b.Percentile(p) {
			t.Fatalf("p%g depends on insertion order: %v vs %v", p, a.Percentile(p), b.Percentile(p))
		}
	}
}

func TestSketchMerge(t *testing.T) {
	r := rng.New(11)
	whole, a, b := NewSketch(), NewSketch(), NewSketch()
	for i := 0; i < 4000; i++ {
		v := 1 + 50*r.Float64()
		whole.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(b)
	if a.Len() != whole.Len() || a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatal("merged sketch counts/extremes differ from whole")
	}
	for _, p := range []float64{25, 50, 95, 99} {
		if a.Percentile(p) != whole.Percentile(p) {
			t.Fatalf("merged p%g %v != whole %v", p, a.Percentile(p), whole.Percentile(p))
		}
	}
}

func TestSketchUnderflowAndEdges(t *testing.T) {
	s := NewSketch()
	s.Add(0)
	s.Add(1e-9)
	s.Add(5)
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Min() != 0 || s.Max() != 5 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if got := s.Percentile(0); got != 0 {
		t.Fatalf("p0 = %v, want exact min", got)
	}
	if got := s.Percentile(100); got != 5 {
		t.Fatalf("p100 = %v, want exact max", got)
	}
}

func TestSketchEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Percentile of empty sketch did not panic")
		}
	}()
	NewSketch().Percentile(50)
}

func TestParseMode(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Mode
	}{{"", ModeExact}, {"exact", ModeExact}, {"sketch", ModeSketch}} {
		got, err := ParseMode(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParseMode(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseMode("histogram"); err == nil {
		t.Fatal("ParseMode accepted unknown mode")
	}
	if ModeExact.String() != "exact" || ModeSketch.String() != "sketch" {
		t.Fatal("bad mode strings")
	}
}

func TestNewRecorderModes(t *testing.T) {
	if _, ok := NewRecorder(ModeExact, 8).(*Dist); !ok {
		t.Fatal("ModeExact did not produce a Dist")
	}
	if _, ok := NewRecorder(ModeSketch, 8).(*Sketch); !ok {
		t.Fatal("ModeSketch did not produce a Sketch")
	}
}

func TestDistMerge(t *testing.T) {
	a, b := NewDist(4), NewDist(4)
	a.AddAll([]float64{1, 5, 3})
	b.AddAll([]float64{2, 4})
	a.Merge(b)
	if a.Len() != 5 || a.Median() != 3 || a.Min() != 1 || a.Max() != 5 {
		t.Fatalf("merged dist wrong: len=%d median=%v", a.Len(), a.Median())
	}
}

func TestMergeModeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("cross-mode merge did not panic")
		}
	}()
	NewDist(1).Merge(NewSketch())
}
