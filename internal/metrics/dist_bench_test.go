package metrics

import (
	"sort"
	"testing"

	"repro/internal/rng"
)

// naiveDist is the pre-refactor Dist: every percentile query after an
// add re-sorts the entire sample slice. Kept here as the benchmark
// baseline proving the merge-sorted-runs win for interleaved add/query
// workloads (adaptation loops query percentiles every window while
// samples keep streaming in).
type naiveDist struct {
	samples []float64
	sorted  bool
}

func (d *naiveDist) Add(v float64) {
	d.samples = append(d.samples, v)
	d.sorted = false
}

func (d *naiveDist) Percentile(p float64) float64 {
	if !d.sorted {
		sort.Float64s(d.samples)
		d.sorted = true
	}
	rank := int(p / 100 * float64(len(d.samples)-1))
	return d.samples[rank]
}

// interleavedWorkload: bursts of adds with a percentile query after each
// burst — the pattern serving Stats and the controller's windows produce.
const (
	benchBursts   = 200
	benchBurstLen = 100
)

func benchValues() []float64 {
	r := rng.New(1)
	vals := make([]float64, benchBursts*benchBurstLen)
	for i := range vals {
		vals[i] = r.Float64() * 100
	}
	return vals
}

func BenchmarkDistInterleavedNaive(b *testing.B) {
	vals := benchValues()
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		d := &naiveDist{}
		k := 0
		for burst := 0; burst < benchBursts; burst++ {
			for j := 0; j < benchBurstLen; j++ {
				d.Add(vals[k])
				k++
			}
			sink += d.Percentile(99)
		}
	}
	_ = sink
}

func BenchmarkDistInterleavedMerge(b *testing.B) {
	vals := benchValues()
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		d := NewDist(len(vals))
		k := 0
		for burst := 0; burst < benchBursts; burst++ {
			for j := 0; j < benchBurstLen; j++ {
				d.Add(vals[k])
				k++
			}
			sink += d.Percentile(99)
		}
	}
	_ = sink
}
