// Package exitrule provides pluggable exit strategies. The paper's
// related work (§5) observes that existing proposals differ in how they
// turn ramp outputs into exit decisions — label confidence [48], entropy
// of the prediction [76], windowed entropy averaged over the past k
// ramps (§2.2), or patience counters across ramps [84] — and that
// Apparate is agnostic to the technique. Rules plug into
// ramp.Config.Evaluate; the controller's threshold machinery is
// unchanged because every rule consumes the same per-ramp error score
// and per-ramp threshold.
package exitrule

import "fmt"

// Rule names an exit strategy and creates per-input deciders. Rules must
// be stateless; per-input state lives in the State.
type Rule interface {
	Name() string
	// NewState returns a fresh decider for one input's pass through the
	// ramp sequence. Decide is called once per active ramp in depth
	// order.
	NewState() State
}

// State decides exits for a single input.
type State interface {
	// Decide ingests one ramp's error score and that ramp's threshold
	// and reports whether the result exits here.
	Decide(err, threshold float64) bool
}

// Entropy is the default strategy (DeeBERT-style, and Apparate's §2.2
// semantics): exit when the ramp's error/entropy score is below the
// ramp's threshold.
type Entropy struct{}

// Name returns "entropy".
func (Entropy) Name() string { return "entropy" }

// NewState returns the stateless entropy decider.
func (Entropy) NewState() State { return entropyState{} }

type entropyState struct{}

func (entropyState) Decide(err, threshold float64) bool { return err < threshold }

// Windowed averages the error score over the past K ramps (§2.2:
// "entropy in the predicted result, or averaged over the past k ramps")
// and exits when the average clears the current ramp's threshold. K
// must be positive.
type Windowed struct {
	K int
}

// Name returns "windowed-k".
func (w Windowed) Name() string { return fmt.Sprintf("windowed-%d", w.K) }

// NewState returns a decider carrying the ring of recent scores.
func (w Windowed) NewState() State {
	if w.K <= 0 {
		panic("exitrule: Windowed requires K > 0")
	}
	return &windowedState{k: w.K}
}

type windowedState struct {
	k    int
	errs []float64
}

func (s *windowedState) Decide(err, threshold float64) bool {
	s.errs = append(s.errs, err)
	if len(s.errs) > s.k {
		s.errs = s.errs[len(s.errs)-s.k:]
	}
	sum := 0.0
	for _, e := range s.errs {
		sum += e
	}
	return sum/float64(len(s.errs)) < threshold
}

// Patience is the PABEE-style strategy [84]: exit only after the score
// has cleared the threshold at P consecutive ramps, trading some latency
// for robustness against a single overconfident ramp. P must be
// positive.
type Patience struct {
	P int
}

// Name returns "patience-p".
func (p Patience) Name() string { return fmt.Sprintf("patience-%d", p.P) }

// NewState returns a decider carrying the consecutive-clear counter.
func (p Patience) NewState() State {
	if p.P <= 0 {
		panic("exitrule: Patience requires P > 0")
	}
	return &patienceState{p: p.P}
}

type patienceState struct {
	p     int
	clear int
}

func (s *patienceState) Decide(err, threshold float64) bool {
	if err < threshold {
		s.clear++
	} else {
		s.clear = 0
	}
	return s.clear >= s.p
}

// ByName returns a rule by its canonical name ("entropy", "windowed-K",
// "patience-P").
func ByName(name string) (Rule, error) {
	switch name {
	case "entropy", "":
		return Entropy{}, nil
	}
	var k int
	if _, err := fmt.Sscanf(name, "windowed-%d", &k); err == nil && k > 0 {
		return Windowed{K: k}, nil
	}
	if _, err := fmt.Sscanf(name, "patience-%d", &k); err == nil && k > 0 {
		return Patience{P: k}, nil
	}
	return nil, fmt.Errorf("exitrule: unknown rule %q", name)
}
