package exitrule

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestEntropyBasics(t *testing.T) {
	s := Entropy{}.NewState()
	if s.Decide(0.2, 0.1) {
		t.Fatal("exited above threshold")
	}
	if !s.Decide(0.05, 0.1) {
		t.Fatal("did not exit below threshold")
	}
	if s.Decide(0.0, 0.0) {
		t.Fatal("threshold 0 must never exit")
	}
}

func TestWindowedAveraging(t *testing.T) {
	s := Windowed{K: 2}.NewState()
	// First score 0.3 (avg 0.3): no exit at T=0.2.
	if s.Decide(0.3, 0.2) {
		t.Fatal("exited on high first score")
	}
	// Second score 0.05: avg 0.175 < 0.2 -> exit.
	if !s.Decide(0.05, 0.2) {
		t.Fatal("did not exit once the window average cleared")
	}
}

func TestWindowedRingEviction(t *testing.T) {
	s := Windowed{K: 2}.NewState()
	_ = s.Decide(0.9, 0.0)
	_ = s.Decide(0.9, 0.0)
	// The 0.9s must age out of the window of 2.
	_ = s.Decide(0.05, 0.0)
	if !s.Decide(0.05, 0.1) {
		t.Fatal("stale scores were not evicted from the window")
	}
}

func TestPatienceCounting(t *testing.T) {
	s := Patience{P: 2}.NewState()
	if s.Decide(0.01, 0.1) {
		t.Fatal("exited before patience was met")
	}
	if !s.Decide(0.01, 0.1) {
		t.Fatal("did not exit after P consecutive clears")
	}
}

func TestPatienceResetsOnFailure(t *testing.T) {
	s := Patience{P: 2}.NewState()
	_ = s.Decide(0.01, 0.1) // clear 1
	_ = s.Decide(0.5, 0.1)  // reset
	if s.Decide(0.01, 0.1) {
		t.Fatal("counter did not reset after a failed ramp")
	}
	if !s.Decide(0.01, 0.1) {
		t.Fatal("did not exit after re-accumulating patience")
	}
}

func TestPatienceStricterThanEntropy(t *testing.T) {
	// Property: for the same score sequence and thresholds, patience
	// exits no earlier than entropy.
	check := func(seed uint64) bool {
		r := rng.New(seed)
		ent := Entropy{}.NewState()
		pat := Patience{P: 2}.NewState()
		entExit, patExit := -1, -1
		for i := 0; i < 10; i++ {
			e := r.Float64()
			th := r.Float64() * 0.5
			if entExit < 0 && ent.Decide(e, th) {
				entExit = i
			}
			if patExit < 0 && pat.Decide(e, th) {
				patExit = i
			}
		}
		if patExit >= 0 && entExit < 0 {
			return false // patience exited where entropy never did
		}
		return entExit < 0 || patExit < 0 || patExit >= entExit
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestByName(t *testing.T) {
	cases := map[string]string{
		"":           "entropy",
		"entropy":    "entropy",
		"windowed-3": "windowed-3",
		"patience-2": "patience-2",
	}
	for in, want := range cases {
		r, err := ByName(in)
		if err != nil {
			t.Fatalf("ByName(%q): %v", in, err)
		}
		if r.Name() != want {
			t.Fatalf("ByName(%q) = %q, want %q", in, r.Name(), want)
		}
	}
	for _, bad := range []string{"softmax", "windowed-0", "patience--1"} {
		if _, err := ByName(bad); err == nil {
			t.Fatalf("ByName(%q) accepted", bad)
		}
	}
}

func TestConstructorsPanicOnBadParams(t *testing.T) {
	for _, f := range []func(){
		func() { Windowed{K: 0}.NewState() },
		func() { Patience{P: 0}.NewState() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad parameter did not panic")
				}
			}()
			f()
		}()
	}
}
