package exitsim

import (
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/rng"
)

func sampleFrom(r *rng.Rand) Sample {
	return Sample{
		Difficulty: r.Float64() * 1.2,
		MatchU:     r.Float64(),
		Bias:       r.Float64() * 0.1,
		NoiseKey:   r.Uint64(),
	}
}

var testProfile = Profile{CMax: 0.95, Gamma: 0.3, Steep: 12, NoiseSigma: 0.02}

func TestCapabilityMonotoneInDepth(t *testing.T) {
	prev := -1.0
	for d := 0.05; d <= 1.0; d += 0.05 {
		c := testProfile.Capability(d, 1.0)
		if c <= prev {
			t.Fatalf("capability not increasing at depth %v", d)
		}
		if c < 0 || c > 0.995 {
			t.Fatalf("capability %v out of range at depth %v", c, d)
		}
		prev = c
	}
}

func TestCapabilityZeroDepth(t *testing.T) {
	if got := testProfile.Capability(0, 1.0); got != 0 {
		t.Fatalf("Capability(0) = %v, want 0", got)
	}
}

func TestCapabilityQualityBoost(t *testing.T) {
	base := testProfile.Capability(0.4, 1.0)
	rich := testProfile.Capability(0.4, 1.08)
	if rich <= base {
		t.Fatal("richer ramp style did not raise capability")
	}
}

func TestTrueErrMonotoneDepth(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		s := sampleFrom(r)
		prev := 2.0
		for d := 0.05; d <= 1.0; d += 0.05 {
			e := testProfile.TrueErr(s, d, 1.0)
			if e > prev {
				return false
			}
			prev = e
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTrueErrMonotoneDifficulty(t *testing.T) {
	s1 := Sample{Difficulty: 0.2}
	s2 := Sample{Difficulty: 0.6}
	if testProfile.TrueErr(s1, 0.3, 1.0) >= testProfile.TrueErr(s2, 0.3, 1.0) {
		t.Fatal("harder sample did not get higher true error")
	}
}

func TestErrScoreDeterministic(t *testing.T) {
	s := Sample{Difficulty: 0.4, MatchU: 0.5, NoiseKey: 123}
	a := testProfile.ErrScore(s, 0.3, 1.0)
	b := testProfile.ErrScore(s, 0.3, 1.0)
	if a != b {
		t.Fatal("ErrScore not deterministic")
	}
}

func TestErrScoreBounded(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		s := sampleFrom(r)
		for d := 0.05; d <= 1.0; d += 0.05 {
			e := testProfile.ErrScore(s, d, 1.0)
			if e < 0 || e > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatchesNestedInDepth(t *testing.T) {
	// Property 3: a match at a shallow depth implies matches at all
	// deeper depths (fixed quality).
	check := func(seed uint64) bool {
		r := rng.New(seed)
		s := sampleFrom(r)
		matched := false
		for d := 0.05; d <= 1.0; d += 0.01 {
			m := testProfile.Matches(s, d, 1.0)
			if matched && !m {
				return false
			}
			if m {
				matched = true
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchRateCalibrated(t *testing.T) {
	// Over many samples at fixed depth, match frequency should be close
	// to the mean of (1 - TrueErr - Bias).
	r := rng.New(99)
	const n = 50000
	matches, expect := 0.0, 0.0
	for i := 0; i < n; i++ {
		s := sampleFrom(r)
		if testProfile.Matches(s, 0.5, 1.0) {
			matches++
		}
		p := 1 - testProfile.TrueErr(s, 0.5, 1.0) - s.Bias
		if p < 0 {
			p = 0
		}
		expect += p
	}
	got, want := matches/n, expect/n
	if got < want-0.01 || got > want+0.01 {
		t.Fatalf("match rate %v, want ~%v", got, want)
	}
}

func TestBiasReducesMatches(t *testing.T) {
	r := rng.New(7)
	const n = 20000
	base, biased := 0, 0
	for i := 0; i < n; i++ {
		s := sampleFrom(r)
		s.Bias = 0
		if testProfile.Matches(s, 0.4, 1.0) {
			base++
		}
		s.Bias = 0.15
		if testProfile.Matches(s, 0.4, 1.0) {
			biased++
		}
	}
	if biased >= base {
		t.Fatalf("bias did not reduce matches: %d vs %d", biased, base)
	}
}

func TestOptimalExitDepth(t *testing.T) {
	depths := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	// A trivially easy sample should exit at the first depth.
	easy := Sample{Difficulty: 0.0, MatchU: 0.01}
	if got := testProfile.OptimalExitDepth(easy, depths, 1.0); got != 0.1 {
		t.Fatalf("easy sample optimal depth = %v, want 0.1", got)
	}
	// An impossible sample exits nowhere.
	hard := Sample{Difficulty: 5.0, MatchU: 0.99}
	if got := testProfile.OptimalExitDepth(hard, depths, 1.0); got != -1 {
		t.Fatalf("hard sample optimal depth = %v, want -1", got)
	}
}

func TestOptimalExitDepthIsEarliestMatch(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		s := sampleFrom(r)
		depths := []float64{0.1, 0.25, 0.4, 0.6, 0.8}
		got := testProfile.OptimalExitDepth(s, depths, 1.0)
		for _, d := range depths {
			if testProfile.Matches(s, d, 1.0) {
				return got == d
			}
		}
		return got == -1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProfileForCVEarlierThanNLP(t *testing.T) {
	cv := ProfileFor(model.ResNet50(), KindVideo)
	nlp := ProfileFor(model.BERTBase(), KindAmazon)
	// At a shallow depth, CV capability must exceed NLP capability:
	// that is what produces the paper's CV >> NLP win gap.
	if cv.Capability(0.15, 1.0) <= nlp.Capability(0.15, 1.0) {
		t.Fatal("CV profile not more capable early than NLP")
	}
}

func TestProfileForLargerCVMoreCapable(t *testing.T) {
	small := ProfileFor(model.ResNet18(), KindVideo)
	large := ProfileFor(model.ResNet101(), KindVideo)
	if large.Capability(0.1, 1.0) <= small.Capability(0.1, 1.0) {
		t.Fatal("larger CV model not relatively more capable early")
	}
}

func TestProfileForQuantizedLessCapable(t *testing.T) {
	base := ProfileFor(model.BERTBase(), KindAmazon)
	quant := ProfileFor(model.QuantizedBERTBase(), KindAmazon)
	if quant.CMax >= base.CMax {
		t.Fatal("quantized model capability not reduced")
	}
}

func TestProfileForNLPSizesShareShape(t *testing.T) {
	a := ProfileFor(model.BERTBase(), KindAmazon)
	b := ProfileFor(model.BERTLarge(), KindAmazon)
	if a.Gamma != b.Gamma || a.CMax != b.CMax {
		t.Fatal("NLP profiles should share relative shape across sizes")
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{KindVideo, KindAmazon, KindIMDB, KindCNNDailyMail, KindSQuAD}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "unknown" || seen[s] {
			t.Fatalf("bad or duplicate kind string %q", s)
		}
		seen[s] = true
	}
	if !KindCNNDailyMail.IsGenerative() || KindVideo.IsGenerative() {
		t.Fatal("IsGenerative misclassifies kinds")
	}
}
