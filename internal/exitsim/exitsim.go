// Package exitsim models the semantic behavior of early-exit ramps
// without executing real DNNs. It is the substitution layer documented in
// DESIGN.md: every quantity Apparate's algorithms consume — a ramp's
// error/entropy score for an input, and whether the ramp's top prediction
// matches the original model's output — is produced by a calibrated
// stochastic model that preserves the structural properties the paper's
// algorithms rely on:
//
//  1. Deeper ramps produce lower error scores and higher oracle-match
//     probability for every input (monotone in depth), so "later ramps
//     almost always exhibit higher exit rates" (§3.3) holds.
//  2. Raising a ramp's threshold admits exits with strictly higher error
//     scores, so accuracy decreases and latency savings increase
//     monotonically in thresholds (§3.2, Figure 9).
//  3. Oracle matches are nested across depth via a shared per-input
//     uniform: if a shallow ramp matches the original model, so do all
//     deeper ramps. This makes "the earliest ramp that predicts the
//     correct response" (the paper's optimal exit, §2.2) well defined.
//  4. Workload drift can carry a *miscalibration bias*: ramps trained on
//     bootstrap data are overconfident on out-of-distribution regimes, so
//     the same error score implies a higher true mismatch probability.
//     This is the mechanism that makes one-time threshold tuning lose
//     8.3–23.9% accuracy (Table 1, Table 2) while continual tuning holds
//     the constraint.
package exitsim

import (
	"math"
)

// Sample is the latent, per-input state from which every ramp observation
// is derived deterministically.
type Sample struct {
	// Difficulty in [0, ~1.2]: how much model capability the input needs
	// for the ramp prediction to agree with the original model. Values
	// above the deepest capability mean the input can never exit
	// correctly ("hard" inputs, challenge C1).
	Difficulty float64
	// MatchU is the per-input uniform that couples oracle matches across
	// depths (nesting).
	MatchU float64
	// Bias is the regime miscalibration bias (>= 0): extra mismatch
	// probability invisible to the confidence score.
	Bias float64
	// NoiseKey seeds the per-(input, ramp) observation noise.
	NoiseKey uint64
}

// Profile calibrates exit behavior for one (model family, workload) pair.
type Profile struct {
	// CMax is the capability approached at full model depth.
	CMax float64
	// Gamma shapes capability vs depth: small values mean early ramps
	// are already capable (CV); values near 1 push capability late (NLP).
	Gamma float64
	// Steep is the logistic steepness mapping (difficulty − capability)
	// to an error score.
	Steep float64
	// NoiseSigma is the standard deviation of observation noise added to
	// the true error to form the score a ramp reports.
	NoiseSigma float64
}

// Capability returns the ramp capability at the given depth fraction
// (0, 1] for a ramp-architecture quality multiplier (1.0 = Apparate's
// default lightweight ramp; richer ramps are slightly above 1).
func (p Profile) Capability(depth, quality float64) float64 {
	if depth <= 0 {
		return 0
	}
	c := p.CMax * math.Pow(depth, p.Gamma) * quality
	if c > 0.995 {
		c = 0.995
	}
	return c
}

func logistic(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// TrueErr returns the latent error of a ramp at the given depth for the
// sample: the probability that the ramp's top prediction disagrees with
// the original model, before miscalibration bias.
func (p Profile) TrueErr(s Sample, depth, quality float64) float64 {
	return logistic(p.Steep * (s.Difficulty - p.Capability(depth, quality)))
}

// splitmix is the SplitMix64 finalizer used for deterministic
// per-(input, ramp) noise.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashNorm returns a deterministic standard-normal variate keyed by
// (key, depth).
func hashNorm(key uint64, depth float64) float64 {
	x := key ^ math.Float64bits(depth)
	u1 := float64(splitmix(x)>>11) / (1 << 53)
	u2 := float64(splitmix(x+1)>>11) / (1 << 53)
	if u1 >= 1 {
		u1 = math.Nextafter(1, 0)
	}
	return math.Sqrt(-2*math.Log(1-u1)) * math.Cos(2*math.Pi*u2)
}

// ErrScore returns the error score the ramp reports for the sample — the
// entropy-style confidence signal Apparate compares against thresholds
// (§2.2). It is the true error plus bounded observation noise, clamped to
// [0, 1], and is deterministic for a given sample.
func (p Profile) ErrScore(s Sample, depth, quality float64) float64 {
	e := p.TrueErr(s, depth, quality) + p.NoiseSigma*hashNorm(s.NoiseKey, depth)
	if e < 0 {
		return 0
	}
	if e > 1 {
		return 1
	}
	return e
}

// Matches reports whether the ramp's top prediction at the given depth
// agrees with the original model's output. Matches are nested in depth:
// for fixed sample and quality, Matches(d1) implies Matches(d2) for all
// d2 >= d1.
func (p Profile) Matches(s Sample, depth, quality float64) bool {
	prob := 1 - p.TrueErr(s, depth, quality) - s.Bias
	if prob < 0 {
		prob = 0
	}
	return s.MatchU < prob
}

// OptimalExitDepth returns the smallest depth among the given sorted
// candidate depths at which the sample matches the original model, or -1
// if it matches at none — the per-input optimal exit of §2.2.
func (p Profile) OptimalExitDepth(s Sample, depths []float64, quality float64) float64 {
	for _, d := range depths {
		if p.Matches(s, d, quality) {
			return d
		}
	}
	return -1
}
