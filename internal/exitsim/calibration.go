package exitsim

import (
	"math"

	"repro/internal/model"
)

// Kind identifies a workload class for calibration purposes.
type Kind int

// Workload kinds from §4.1.
const (
	KindVideo        Kind = iota // real-time object classification on video
	KindAmazon                   // Amazon product reviews, category-ordered
	KindIMDB                     // IMDB reviews streamed sentence by sentence
	KindCNNDailyMail             // text summarization (generative)
	KindSQuAD                    // question answering (generative)
)

// String returns the workload-kind name.
func (k Kind) String() string {
	switch k {
	case KindVideo:
		return "video"
	case KindAmazon:
		return "amazon"
	case KindIMDB:
		return "imdb"
	case KindCNNDailyMail:
		return "cnn-dailymail"
	case KindSQuAD:
		return "squad"
	}
	return "unknown"
}

// IsGenerative reports whether the kind is a generative workload.
func (k Kind) IsGenerative() bool {
	return k == KindCNNDailyMail || k == KindSQuAD
}

// ProfileFor returns the calibrated exit profile for a model-workload
// pair. Calibration encodes the paper's empirical observations:
//
//   - CV: task performance is similar across family members, so ramps can
//     sit early even in larger models (§4.2); capability rises fast with
//     depth (small Gamma), and relative wins grow with model size.
//   - NLP classification: capability accrues later (larger Gamma) and
//     ramps fall at similar relative positions across sizes.
//   - Generative: token-level exits are plentiful (auto-regressive
//     continuity), with capability between the CV and NLP extremes.
//   - Quantization reduces overparameterization, so the quantized BERTs
//     have uniformly lower capability (mildly fewer exits, §4.2).
func ProfileFor(m *model.Model, k Kind) Profile {
	var p Profile
	switch {
	case m.Family.IsCV():
		// Larger CV models keep similar absolute capability needs, so
		// their *relative* exit depths shrink: scale Gamma down slightly
		// with block count (resnet18 → resnet101 median wins grow 13.8%).
		size := math.Min(1, 16/float64(m.NumBlocks+4))
		p = Profile{CMax: 0.95, Gamma: 0.16 + 0.08*size, Steep: 25, NoiseSigma: 0.02}
	case m.Family == model.FamilyT5:
		// T5's decode head doubles as the ramp (§3.1), and summarization
		// tokens exit very early — the paper's 70–78% TPT wins.
		p = Profile{CMax: 0.96, Gamma: 0.22, Steep: 25, NoiseSigma: 0.02}
	case m.Family == model.FamilyLlama:
		// Llama exits later; wins grow with model size (22.6% at 7B to
		// 37.4% at 13B), so larger members get relatively earlier
		// capability like the CV families.
		size := math.Min(1, 32/float64(m.NumBlocks))
		p = Profile{CMax: 0.92, Gamma: 1.15 + (size-0.8)*4.25, Steep: 25, NoiseSigma: 0.02}
	default:
		// Encoder/decoder NLP classifiers.
		p = Profile{CMax: 0.92, Gamma: 0.52, Steep: 25, NoiseSigma: 0.025}
	}
	if m.Quantized {
		p.CMax -= 0.05
	}
	switch k {
	case KindIMDB:
		// Sentence-level inputs are shorter and slightly easier than
		// full reviews.
		p.CMax = math.Min(0.97, p.CMax+0.02)
	case KindSQuAD:
		// Extractive QA tokens are easier than abstractive summaries.
		p.CMax = math.Min(0.97, p.CMax+0.01)
	}
	return p
}
