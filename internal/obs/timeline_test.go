package obs

import (
	"bytes"
	"strings"
	"testing"
)

func staticGauges(g Gauges) func(float64) Gauges { return func(float64) Gauges { return g } }

func TestTimelineTickZeroAndCatchUp(t *testing.T) {
	tl := NewTimeline(100, 0)
	g := Gauges{Replicas: 2, Live: 2, Queued: 3, QueueDepths: []int{1, 2}}
	tl.CatchUp(0, staticGauges(g))
	if len(tl.Rows) != 1 || tl.Rows[0].TMS != 0 {
		t.Fatalf("first CatchUp(0) rows = %+v, want single t=0 row", tl.Rows)
	}
	// A jump over several ticks emits every intermediate row.
	tl.CatchUp(350, staticGauges(g))
	if len(tl.Rows) != 4 {
		t.Fatalf("after CatchUp(350): %d rows, want 4 (t=0,100,200,300)", len(tl.Rows))
	}
	for i, want := range []float64{0, 100, 200, 300} {
		if tl.Rows[i].TMS != want {
			t.Errorf("row %d t = %v, want %v", i, tl.Rows[i].TMS, want)
		}
	}
	// No duplicate emission when time hasn't crossed the next tick.
	tl.CatchUp(399, staticGauges(g))
	if len(tl.Rows) != 4 {
		t.Fatalf("CatchUp(399) emitted a row early: %d rows", len(tl.Rows))
	}
}

func TestTimelineWindowStats(t *testing.T) {
	tl := NewTimeline(100, 50)
	tl.CatchUp(0, staticGauges(Gauges{}))
	tl.Observe(10, false)
	tl.Observe(20, false)
	tl.Observe(200, true) // SLO miss: counted in p99 window, not goodput
	tl.CatchUp(100, staticGauges(Gauges{}))
	r := tl.Rows[1]
	if r.WinDone != 3 {
		t.Errorf("WinDone = %d, want 3", r.WinDone)
	}
	// 2 good completions in a 100ms window = 20 qps.
	if r.WinGoodputQPS != 20 {
		t.Errorf("WinGoodputQPS = %v, want 20", r.WinGoodputQPS)
	}
	// Closest-rank p99 of 3 samples lands on the middle one (~20, within
	// the sketch's 0.5% relative error).
	if r.WinP99MS < 19 || r.WinP99MS > 21 {
		t.Errorf("WinP99MS = %v, want ~20 (closest-rank over 3 samples)", r.WinP99MS)
	}
	// Window resets: the next tick with no completions is an empty row
	// and must not panic on the empty sketch.
	tl.CatchUp(200, staticGauges(Gauges{}))
	r = tl.Rows[2]
	if r.WinDone != 0 || r.WinP99MS != 0 || r.WinGoodputQPS != 0 {
		t.Errorf("empty window row = %+v, want zeroed stats", r)
	}
}

func TestTimelineWriteCSV(t *testing.T) {
	tl := NewTimeline(50, 0)
	tl.CatchUp(0, staticGauges(Gauges{Replicas: 2, Live: 1, Queued: 5, Inflight: 1, Parked: 3, QueueDepths: []int{5, 0}}))
	tl.Observe(12.5, false)
	tl.CatchUp(50, staticGauges(Gauges{Replicas: 2, Live: 2, QueueDepths: []int{0, 0}}))

	var a, b bytes.Buffer
	if err := tl.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := tl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WriteCSV is not byte-stable across calls")
	}
	lines := strings.Split(strings.TrimSuffix(a.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header + 2 rows:\n%s", len(lines), a.String())
	}
	if lines[0] != "t_ms,replicas,live,queued,inflight,parked,win_done,win_p99_ms,win_goodput_qps,queue_depths" {
		t.Errorf("header = %s", lines[0])
	}
	if lines[1] != "0,2,1,5,1,3,0,0,0,5;0" {
		t.Errorf("row 0 = %s", lines[1])
	}
	if !strings.HasPrefix(lines[2], "50,2,2,0,0,0,1,") || !strings.HasSuffix(lines[2], ",20,0;0") {
		t.Errorf("row 1 = %s", lines[2])
	}
}

func TestTimelineDefaultTick(t *testing.T) {
	tl := NewTimeline(0, 0)
	if tl.TickMS != DefaultTickMS {
		t.Errorf("TickMS = %v, want %v", tl.TickMS, DefaultTickMS)
	}
}

// TestTimelineFinishNeverTicked: Finish on a timeline that never saw a
// CatchUp emits exactly one closing row (the tick-0 row), whether or not
// the window holds completions.
func TestTimelineFinishNeverTicked(t *testing.T) {
	tl := NewTimeline(100, 0)
	tl.Finish(0, staticGauges(Gauges{}))
	if len(tl.Rows) != 1 || tl.Rows[0].TMS != 0 || tl.Rows[0].WinDone != 0 {
		t.Fatalf("Finish(0) on a never-ticked timeline: rows = %+v, want single empty t=0 row", tl.Rows)
	}

	tl = NewTimeline(100, 0)
	tl.Observe(12, false)
	tl.Finish(0, staticGauges(Gauges{}))
	if len(tl.Rows) != 1 {
		t.Fatalf("Finish(0) with one completion: %d rows, want 1", len(tl.Rows))
	}
	if tl.Rows[0].WinDone != 1 {
		t.Fatalf("closing row = %+v, want the completion folded in", tl.Rows[0])
	}
}

// TestTimelineNeverTickedWritesHeaderOnly: a timeline with no rows at
// all (never caught up, never finished) writes just the header — the
// zero-sequence generative case.
func TestTimelineNeverTickedWritesHeaderOnly(t *testing.T) {
	for _, gen := range []bool{false, true} {
		tl := NewTimeline(100, 0)
		tl.Gen = gen
		var buf bytes.Buffer
		if err := tl.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		want := csvHeader
		if gen {
			want = genCSVHeader
		}
		if buf.String() != want {
			t.Fatalf("gen=%v: empty timeline CSV = %q, want header only", gen, buf.String())
		}
	}
}

// TestTimelineGenWriteCSV pins the generative column set byte-for-byte.
func TestTimelineGenWriteCSV(t *testing.T) {
	tl := NewTimeline(50, 0)
	tl.Gen = true
	tl.CatchUp(0, staticGauges(Gauges{Running: 3, Queued: 2, KVFree: 6, KVHeld: 10, KVUtil: 0.625, Preempts: 1}))
	tl.Observe(12.5, false)
	tl.CatchUp(50, staticGauges(Gauges{Running: 1, KVFree: 12, KVHeld: 4, KVUtil: 0.25, KVBlockMS: 420, Preempts: 2}))

	var a, b bytes.Buffer
	if err := tl.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := tl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("gen WriteCSV is not byte-stable across calls")
	}
	lines := strings.Split(strings.TrimSuffix(a.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header + 2 rows:\n%s", len(lines), a.String())
	}
	if lines[0] != strings.TrimSuffix(genCSVHeader, "\n") {
		t.Errorf("header = %s", lines[0])
	}
	if lines[1] != "0,3,2,6,10,0.625,0,1,0,0,0" {
		t.Errorf("row 0 = %s", lines[1])
	}
	if !strings.HasPrefix(lines[2], "50,1,0,12,4,0.25,420,2,1,") || !strings.HasSuffix(lines[2], ",20") {
		t.Errorf("row 1 = %s", lines[2])
	}
}
