package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteJSONLDeterministicAndOmitsEmpty(t *testing.T) {
	tr := NewTracer()
	tr.Emit(Event{TMS: 0, Kind: KindArrive, Req: 0, Replica: -1})
	e := At(12.5, KindEnqueue)
	e.Req = 3
	e.Replica = 1
	e.Val = 4
	tr.Emit(e)
	o := At(99.25, KindOutageEnd)
	o.DurMS = 10.75
	tr.Emit(o)

	var a, b bytes.Buffer
	if err := tr.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WriteJSONL is not byte-stable across calls")
	}

	lines := strings.Split(strings.TrimSuffix(a.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	want := []string{
		`{"t":0,"kind":"arrive","req":0}`,
		`{"t":12.5,"kind":"enqueue","req":3,"replica":1,"val":4}`,
		`{"t":99.25,"kind":"outage_end","dur_ms":10.75}`,
	}
	for i, w := range want {
		if lines[i] != w {
			t.Errorf("line %d:\n got %s\nwant %s", i, lines[i], w)
		}
	}
	// Every line must also be valid JSON.
	for i, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Errorf("line %d is not valid JSON: %v", i, err)
		}
	}
}

func TestWriteChromeValidJSONAndTracks(t *testing.T) {
	tr := NewTracer()
	s := At(10, KindServeStart)
	s.Replica = 2
	s.Batch = 4
	s.DurMS = 25
	tr.Emit(s)
	c := At(50, KindCrash)
	c.Replica = 0
	tr.Emit(c)
	r := At(80, KindRestart)
	r.Replica = 0
	r.DurMS = 30
	tr.Emit(r)
	tr.Emit(At(50, KindOutageStart))
	o := At(80, KindOutageEnd)
	o.DurMS = 30
	tr.Emit(o)
	i := At(5, KindArrive)
	i.Req = 7
	tr.Emit(i)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	// Metadata: dispatcher + replicas 0..2 (max replica seen is 2).
	metas := 0
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "M" {
			metas++
		}
	}
	if metas != 4 {
		t.Errorf("got %d thread metadata events, want 4 (dispatcher + 3 replicas)", metas)
	}
	// serve_start renders as a complete event with microsecond ts/dur on
	// tid replica+1; outage renders B/E on the dispatcher tid 0.
	foundX, foundOutB := false, false
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			foundX = true
			if ev["ts"].(float64) != 10000 || ev["dur"].(float64) != 25000 {
				t.Errorf("X event ts/dur = %v/%v, want 10000/25000", ev["ts"], ev["dur"])
			}
			if ev["tid"].(float64) != 3 {
				t.Errorf("X event tid = %v, want 3", ev["tid"])
			}
		}
		if ev["ph"] == "B" && ev["name"] == "outage" {
			foundOutB = true
			if ev["tid"].(float64) != 0 {
				t.Errorf("outage B tid = %v, want 0 (dispatcher)", ev["tid"])
			}
		}
	}
	if !foundX {
		t.Error("no X (complete) event for serve_start")
	}
	if !foundOutB {
		t.Error("no B event for outage_start")
	}
}

// TestWriteChromeGenSlotTracks: a generative trace renders queue/slot
// track names, residencies and committed work as X slices at their
// commit instant minus duration, and preemptions as instants.
func TestWriteChromeGenSlotTracks(t *testing.T) {
	tr := NewTracer()
	a := At(0, KindSeqArrive)
	a.Req = 3
	a.Val = 64
	tr.Emit(a)
	p := At(40, KindPrefillChunk)
	p.Req = 3
	p.Replica = 1
	p.Val = 32
	p.DurMS = 30
	tr.Emit(p)
	pe := At(70, KindPreempt)
	pe.Req = 3
	pe.Replica = 1
	pe.Val = 5
	pe.DurMS = 60
	tr.Emit(pe)
	c := At(200, KindSeqComplete)
	c.Req = 3
	c.Replica = 1
	c.DurMS = 120
	c.LatMS = 200
	tr.Emit(c)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("gen Chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	names := map[string]bool{}
	var seqSlices, preemptInstants int
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "M" {
			names[ev["args"].(map[string]any)["name"].(string)] = true
		}
		if ev["ph"] == "X" && ev["name"] == "seq(3)" {
			seqSlices++
			ts, dur := ev["ts"].(float64), ev["dur"].(float64)
			if !(ts == 10000 && dur == 60000) && !(ts == 80000 && dur == 120000) {
				t.Errorf("seq slice ts/dur = %v/%v, want the preempted or final residency", ts, dur)
			}
		}
		if ev["ph"] == "i" && ev["name"] == "preempt" {
			preemptInstants++
		}
		if ev["ph"] == "X" && ev["name"] == "prefill(32)" {
			if ev["ts"].(float64) != 10000 || ev["dur"].(float64) != 30000 {
				t.Errorf("prefill slice ts/dur = %v/%v, want 10000/30000", ev["ts"], ev["dur"])
			}
		}
	}
	if !names["queue"] || !names["slot 0"] || !names["slot 1"] {
		t.Errorf("gen track names = %v, want queue + slot 0..1", names)
	}
	if seqSlices != 2 {
		t.Errorf("%d seq(3) slices, want 2 (preempted residency + final residency)", seqSlices)
	}
	if preemptInstants != 1 {
		t.Errorf("%d preempt instants, want 1", preemptInstants)
	}
}

func TestTracerEmptyWritesAreValid(t *testing.T) {
	tr := NewTracer()
	var j, c bytes.Buffer
	if err := tr.WriteJSONL(&j); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 0 {
		t.Errorf("empty trace JSONL = %q, want empty", j.String())
	}
	if err := tr.WriteChrome(&c); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(c.Bytes(), &doc); err != nil {
		t.Fatalf("empty Chrome trace is not valid JSON: %v", err)
	}
}
