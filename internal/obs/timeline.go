package obs

import (
	"bufio"
	"io"
	"strconv"

	"repro/internal/metrics"
)

// Gauges is one instantaneous snapshot of simulator state, filled by the
// simulator's snapshot callback at each tick.
type Gauges struct {
	// Replicas is the configured replica count (autoscale target).
	Replicas int
	// Live is the number of replicas currently up (Replicas minus
	// crashed ones).
	Live int
	// Queued is the total number of requests waiting in replica queues.
	Queued int
	// Inflight is the number of batches executing right now.
	Inflight int
	// Parked is the number of arrivals held at the dispatcher because no
	// replica is live.
	Parked int
	// QueueDepths is the per-replica queue depth, indexed by replica.
	QueueDepths []int

	// Generative gauges, sampled only when Timeline.Gen is set (zero on
	// classification runs). Running/Queued reuse the semantics above.
	//
	// Running is the number of sequences resident in decode slots.
	Running int
	// KVFree / KVHeld are the free and held block counts of the KV pool.
	KVFree int
	// KVHeld is the number of KV blocks currently granted to sequences.
	KVHeld int
	// KVUtil is the instantaneous pool utilization, KVHeld/(KVFree+KVHeld).
	KVUtil float64
	// Preempts is the cumulative preemption count up to this tick.
	Preempts int
	// KVBlockMS is the exact block-milliseconds integral (∫held·dt)
	// accumulated inside this row's window, so the column sums to
	// Stats.KVUtil × KVBlocks × span over the whole run.
	KVBlockMS float64
}

// Row is one emitted timeline sample: the gauges at a tick instant plus
// the rolling-window latency stats accumulated since the previous tick.
type Row struct {
	TMS    float64
	Gauges Gauges
	// WinDone is the number of requests completed in the window.
	WinDone int
	// WinP99MS is the window's p99 latency (0 when the window is empty).
	WinP99MS float64
	// WinGoodputQPS is the window's SLO-compliant completion rate.
	WinGoodputQPS float64
}

// Timeline samples simulator gauges at a fixed virtual-time tick and
// accumulates per-window latency stats, emitting one Row per tick. Like
// Tracer it is single-threaded and belongs to one run.
//
// It is deliberately NOT an engine process: scheduling tick events on
// the loop would advance the clock past the last real event and perturb
// end-of-run bookkeeping (fault windows clip at loop.Now()). Instead the
// simulator calls CatchUp from the engine's advance hook, which emits
// all tick rows that the clock just stepped over — the clock itself
// never moves for the sampler's sake.
type Timeline struct {
	// TickMS is the sampling period in virtual milliseconds.
	TickMS float64
	// SLOms classifies window completions as goodput; 0 counts all.
	SLOms float64
	// Gen selects the generative CSV column set (KV-pool gauges instead
	// of replica/queue-depth gauges). Set by the generative engine when
	// it attaches the timeline.
	Gen bool

	Rows []Row

	nextTick float64
	winLat   *metrics.Sketch
	winDone  int
	winGood  int
}

// DefaultTickMS is the sampling period when none is configured.
const DefaultTickMS = 100

// NewTimeline returns an empty timeline sampling every tickMS (0 means
// DefaultTickMS) with the given goodput SLO (0 means count every
// completion as good).
func NewTimeline(tickMS, sloMS float64) *Timeline {
	if tickMS <= 0 {
		tickMS = DefaultTickMS
	}
	return &Timeline{TickMS: tickMS, SLOms: sloMS, winLat: metrics.NewSketch()}
}

// Observe records one completed request into the current window.
func (tl *Timeline) Observe(latMS float64, sloMiss bool) {
	tl.winLat.Add(latMS)
	tl.winDone++
	if tl.SLOms <= 0 || !sloMiss {
		tl.winGood++
	}
}

// CatchUp emits a Row for every pending tick instant <= nowMS, calling
// snap for the gauges at each. snap receives the tick instant being
// sampled so gauges that integrate over the window (KVBlockMS) can be
// exact; snapshots that only read instantaneous state ignore it. The
// first call emits the tick-0 row. The window stats land on the first
// row of a batch and reset after it: when the clock jumps several ticks
// at once the intermediate rows are (correctly) empty-window rows, since
// no completions happened inside them.
func (tl *Timeline) CatchUp(nowMS float64, snap func(tMS float64) Gauges) {
	for tl.nextTick <= nowMS {
		g := snap(tl.nextTick)
		row := Row{TMS: tl.nextTick, Gauges: g, WinDone: tl.winDone}
		if tl.winDone > 0 {
			row.WinP99MS = tl.winLat.Percentile(99)
			row.WinGoodputQPS = float64(tl.winGood) / tl.TickMS * 1000
		}
		tl.Rows = append(tl.Rows, row)
		tl.winDone, tl.winGood = 0, 0
		tl.winLat.Reset()
		tl.nextTick += tl.TickMS
	}
}

// Finish flushes the sampler at the end of a run: pending full ticks
// emit via CatchUp, then any completions recorded after the last tick
// emit as one final partial-window row stamped at nowMS, so the
// timeline's summed WinDone always equals the run's delivered count.
func (tl *Timeline) Finish(nowMS float64, snap func(tMS float64) Gauges) {
	tl.CatchUp(nowMS, snap)
	if tl.winDone == 0 {
		return
	}
	row := Row{TMS: nowMS, Gauges: snap(nowMS), WinDone: tl.winDone, WinP99MS: tl.winLat.Percentile(99)}
	if span := nowMS - (tl.nextTick - tl.TickMS); span > 0 {
		row.WinGoodputQPS = float64(tl.winGood) / span * 1000
	}
	tl.Rows = append(tl.Rows, row)
	tl.winDone, tl.winGood = 0, 0
	tl.winLat.Reset()
}

// csvHeader is the fixed column set of WriteCSV.
const csvHeader = "t_ms,replicas,live,queued,inflight,parked,win_done,win_p99_ms,win_goodput_qps,queue_depths\n"

// genCSVHeader is the generative column set, selected by Timeline.Gen.
const genCSVHeader = "t_ms,running,queued,kv_free,kv_held,kv_util,kv_block_ms,preempts,win_done,win_p99_ms,win_goodput_qps\n"

// WriteCSV writes the timeline with a fixed header. Per-replica queue
// depths are semicolon-joined in the final column so the row count stays
// stable when autoscaling changes the replica count mid-run. Generative
// timelines (Gen set) swap the replica gauges for the KV-pool column
// set. Floats use the shortest exact representation; output is
// byte-stable.
func (tl *Timeline) WriteCSV(w io.Writer) error {
	if tl.Gen {
		return tl.writeGenCSV(w)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(csvHeader); err != nil {
		return err
	}
	var buf []byte
	for _, r := range tl.Rows {
		buf = buf[:0]
		buf = append(buf, ftoa(r.TMS)...)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(r.Gauges.Replicas), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(r.Gauges.Live), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(r.Gauges.Queued), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(r.Gauges.Inflight), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(r.Gauges.Parked), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(r.WinDone), 10)
		buf = append(buf, ',')
		buf = append(buf, ftoa(r.WinP99MS)...)
		buf = append(buf, ',')
		buf = append(buf, ftoa(r.WinGoodputQPS)...)
		buf = append(buf, ',')
		for i, d := range r.Gauges.QueueDepths {
			if i > 0 {
				buf = append(buf, ';')
			}
			buf = strconv.AppendInt(buf, int64(d), 10)
		}
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// writeGenCSV emits the generative column set (see genCSVHeader).
func (tl *Timeline) writeGenCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(genCSVHeader); err != nil {
		return err
	}
	var buf []byte
	for _, r := range tl.Rows {
		buf = buf[:0]
		buf = append(buf, ftoa(r.TMS)...)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(r.Gauges.Running), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(r.Gauges.Queued), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(r.Gauges.KVFree), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(r.Gauges.KVHeld), 10)
		buf = append(buf, ',')
		buf = append(buf, ftoa(r.Gauges.KVUtil)...)
		buf = append(buf, ',')
		buf = append(buf, ftoa(r.Gauges.KVBlockMS)...)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(r.Gauges.Preempts), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(r.WinDone), 10)
		buf = append(buf, ',')
		buf = append(buf, ftoa(r.WinP99MS)...)
		buf = append(buf, ',')
		buf = append(buf, ftoa(r.WinGoodputQPS)...)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}
