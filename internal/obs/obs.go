// Package obs is the observability substrate of the simulators: a
// structured request-lifecycle trace and a time-series telemetry
// sampler, both on the engine's virtual clock. Every study that needs
// to see *when* things happened — queue depths through an outage, the
// race between a hedge and its straggler, the lag between a burst and
// the scale-up it forces — records through this package instead of
// growing bespoke logging.
//
// Two contracts are load-bearing:
//
//   - Zero cost when off. A nil *Tracer / *Timeline compiles to one
//     pointer check on the serving hot path; `make bench-obs` gates the
//     untraced numbers against BENCH_cluster.json.
//   - Determinism. Events are emitted single-threaded in simulation
//     order and encoded with byte-stable formatting, so trace output is
//     byte-identical at any sweep worker count — the same invariant the
//     sweep CSVs already pin.
//
// Sinks: JSONL (one event per line, streamable into anything) and the
// Chrome trace-event format (load the file at ui.perfetto.dev — one
// track per replica, plus a dispatcher track with outage spans).
package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// Kind names one lifecycle event type. Request-scoped kinds carry a
// request ID; replica-scoped kinds carry a replica index; cluster-scoped
// kinds (scale/outage transitions) carry neither.
type Kind string

// Lifecycle event kinds.
const (
	// KindArrive marks a request entering the system at its arrival time.
	KindArrive Kind = "arrive"
	// KindDispatch marks the dispatcher routing a request (or a retried /
	// hedged copy) to a replica.
	KindDispatch Kind = "dispatch"
	// KindEnqueue marks a copy joining a replica's queue; Val is the
	// queue depth after the append.
	KindEnqueue Kind = "enqueue"
	// KindServeStart marks a batch starting execution on a replica;
	// Batch is the batch size and DurMS the batch execution time.
	KindServeStart Kind = "serve_start"
	// KindComplete marks a request's response release; LatMS is the
	// response latency and TMS the release instant (arrival + latency).
	KindComplete Kind = "complete"
	// KindDrop marks a request dropped by policy: a Clockwork SLO drop
	// or a TF-Serving queue overflow with no retry budget left.
	KindDrop Kind = "drop"

	// Fault-path kinds.

	// KindRequeue marks a copy pulled off a crashed (or mid-flight dead)
	// replica and handed back to the dispatcher.
	KindRequeue Kind = "requeue"
	// KindRetry marks a bounded re-dispatch after a loss timeout or a
	// queue-overflow bounce.
	KindRetry Kind = "retry"
	// KindHedge marks the hedge deadline firing: a duplicate copy is
	// dispatched to a different replica.
	KindHedge Kind = "hedge"
	// KindPark marks an arrival held at the dispatcher because zero
	// replicas were live; it re-dispatches when capacity returns.
	KindPark Kind = "park"
	// KindLost marks a request resolved as lost: every copy vanished in
	// transit and the retry budget is exhausted.
	KindLost Kind = "lost"
	// KindTimeout marks a loss-detection timeout firing for a copy that
	// never arrived.
	KindTimeout Kind = "timeout"
	// KindCrash and KindRestart bracket a replica's down window; the
	// restart carries the outage duration in DurMS.
	KindCrash   Kind = "crash"
	KindRestart Kind = "restart"

	// Autoscale / availability kinds.

	// KindScaleUp and KindScaleDown mark committed autoscaler actions;
	// Val is the replica count after the step.
	KindScaleUp   Kind = "scale_up"
	KindScaleDown Kind = "scale_down"
	// KindOutageStart and KindOutageEnd bracket a zero-live-replica
	// window; the end carries the window length in DurMS, and the summed
	// DurMS over all pairs equals ClusterStats.Faults.UnavailMS.
	KindOutageStart Kind = "outage_start"
	KindOutageEnd   Kind = "outage_end"

	// Generative sequence-lifecycle kinds — the generative engine's
	// analog of the request kinds above. Replica carries the decode-slot
	// index (one Perfetto track per slot); Req is the sequence's request
	// ID.

	// KindSeqArrive marks a sequence reaching the admission queue; Val is
	// the prompt length in tokens.
	KindSeqArrive Kind = "seq_arrive"
	// KindKVAdmit marks a sequence claiming a decode slot; Val is the KV
	// blocks it holds after the admission grant (0 on the unbounded
	// path), and DurMS is this admission's queue wait — summed over all
	// kv_admit events it reconciles with Stats.QueueMS × Seqs, re-queues
	// included.
	KindKVAdmit Kind = "kv_admit"
	// KindPrefixHit marks a sequence whose prompt prefix hit the prefix
	// cache (prefill skipped); emitted at arrival, event count reconciles
	// with Stats.PrefixHits.
	KindPrefixHit Kind = "prefix_hit"
	// KindPrefillChunk marks a committed prefill chunk; Val is the chunk
	// size in tokens and DurMS the chunk's duration (the chunk ran over
	// [TMS-DurMS, TMS]). In-flight chunks lost to preemption are never
	// emitted — the trace shows committed work only.
	KindPrefillChunk Kind = "prefill_chunk"
	// KindDecodeFlush marks a committed decode stretch flushing its
	// tokens at a block boundary (or sequence end); Val is the token
	// count committed and DurMS the stretch's duration.
	KindDecodeFlush Kind = "decode_flush"
	// KindPreempt marks a running sequence evicted by the KV pool: Val is
	// the blocks it freed and DurMS its slot residency (the evicted
	// stretch ran over [TMS-DurMS, TMS]). Event count reconciles with
	// Stats.Preemptions.
	KindPreempt Kind = "preempt"
	// KindSeqRequeue marks a preempted sequence re-entering the admission
	// queue at its head; Val is the queue length after the insert.
	KindSeqRequeue Kind = "seq_requeue"
	// KindSeqComplete marks a sequence finishing: DurMS is its final slot
	// residency and LatMS the end-to-end sequence latency (arrival to
	// completion).
	KindSeqComplete Kind = "seq_complete"
)

// Event is one typed lifecycle record on the virtual clock. Zero-valued
// optional fields are omitted from the encodings; Req and Replica use -1
// as their "not applicable" sentinel because 0 is a valid ID and index.
type Event struct {
	// TMS is the event's virtual time in milliseconds.
	TMS float64
	// Kind is the event type.
	Kind Kind
	// Req is the request ID, or -1 for non-request events.
	Req int
	// Replica is the replica index, or -1 for non-replica events.
	Replica int
	// Batch is the batch size (serve_start, complete).
	Batch int
	// Val is a kind-specific count: queue depth after an enqueue,
	// replica count after a scale step, dispatch attempt number.
	Val int
	// DurMS is a kind-specific duration: batch execution time
	// (serve_start), down-window length (restart), outage length
	// (outage_end).
	DurMS float64
	// LatMS is the response latency (complete).
	LatMS float64
}

// At returns an Event at time t with the request/replica sentinels
// cleared; callers fill the fields their kind carries.
func At(tMS float64, kind Kind) Event {
	return Event{TMS: tMS, Kind: kind, Req: -1, Replica: -1}
}

// Tracer buffers lifecycle events in emission order. It is not
// concurrency-safe — one tracer belongs to one (single-threaded)
// simulation run, exactly like the engine loop it observes. Memory is
// O(events); tracing is opt-in, and runs that need bounded memory
// (mem-smoke) leave it off.
type Tracer struct {
	Events []Event
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Emit appends one event.
func (t *Tracer) Emit(e Event) { t.Events = append(t.Events, e) }

// Len reports the number of buffered events.
func (t *Tracer) Len() int { return len(t.Events) }

// ftoa renders a float in the shortest exact form — the same byte-stable
// formatting the sweep CSVs use, so trace output never depends on
// printf rounding.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// appendJSON renders one event as a compact JSON object with a fixed
// key order, omitting inapplicable fields.
func appendJSON(buf []byte, e Event) []byte {
	buf = append(buf, `{"t":`...)
	buf = append(buf, ftoa(e.TMS)...)
	buf = append(buf, `,"kind":"`...)
	buf = append(buf, e.Kind...)
	buf = append(buf, '"')
	if e.Req >= 0 {
		buf = append(buf, `,"req":`...)
		buf = strconv.AppendInt(buf, int64(e.Req), 10)
	}
	if e.Replica >= 0 {
		buf = append(buf, `,"replica":`...)
		buf = strconv.AppendInt(buf, int64(e.Replica), 10)
	}
	if e.Batch != 0 {
		buf = append(buf, `,"batch":`...)
		buf = strconv.AppendInt(buf, int64(e.Batch), 10)
	}
	if e.Val != 0 {
		buf = append(buf, `,"val":`...)
		buf = strconv.AppendInt(buf, int64(e.Val), 10)
	}
	if e.DurMS != 0 {
		buf = append(buf, `,"dur_ms":`...)
		buf = append(buf, ftoa(e.DurMS)...)
	}
	if e.LatMS != 0 {
		buf = append(buf, `,"lat_ms":`...)
		buf = append(buf, ftoa(e.LatMS)...)
	}
	buf = append(buf, '}')
	return buf
}

// WriteJSONL writes the trace as JSON Lines in emission order. The
// encoding is byte-stable: fixed key order, shortest-exact floats, no
// map iteration anywhere — two runs of the same simulation produce
// identical bytes.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var buf []byte
	for _, e := range t.Events {
		buf = appendJSON(buf[:0], e)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Chrome trace-event constants: timestamps are microseconds, and every
// event lives in one process ("the cluster") with one thread per track.
const (
	chromeDispatcherTID = 0 // dispatcher / cluster-level track
)

// chromeTID maps an event to its track: replica-scoped events render on
// the replica's thread, everything else on the dispatcher track.
func chromeTID(e Event) int {
	if e.Replica >= 0 {
		return e.Replica + 1
	}
	return chromeDispatcherTID
}

// genTrace reports whether the trace came from the generative engine
// (tracks are decode slots, not replicas): generative traces always
// open with a seq_arrive, classification traces never emit one.
func (t *Tracer) genTrace() bool {
	return len(t.Events) > 0 && t.Events[0].Kind == KindSeqArrive
}

// WriteChrome writes the trace in the Chrome trace-event JSON format
// (viewable at ui.perfetto.dev or chrome://tracing): batches render as
// duration slices on their replica's track, crash/restart and
// outage_start/outage_end pairs render as "down"/"outage" spans, and
// every other event renders as an instant with its fields as args.
//
// Generative traces render one track per decode slot instead: each
// committed slot residency is an "X" slice named seq(<req>) emitted at
// its seq_complete/preempt (so work lost to preemption never paints the
// track), prefill chunks and decode stretches nest inside it as
// prefill(<tokens>)/decode(<tokens>) slices, and preemptions add an
// instant marker at the eviction instant.
func (t *Tracer) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	maxReplica := -1
	for _, e := range t.Events {
		if e.Replica > maxReplica {
			maxReplica = e.Replica
		}
	}
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	sep := "\n"
	emit := func(s string) error {
		if _, err := bw.WriteString(sep + s); err != nil {
			return err
		}
		sep = ",\n"
		return nil
	}
	meta := func(tid int, name string) error {
		return emit(fmt.Sprintf(`{"ph":"M","pid":0,"tid":%d,"name":"thread_name","args":{"name":%q}}`, tid, name))
	}
	track, track0 := "replica", "dispatcher"
	if t.genTrace() {
		track, track0 = "slot", "queue"
	}
	if err := meta(chromeDispatcherTID, track0); err != nil {
		return err
	}
	for i := 0; i <= maxReplica; i++ {
		if err := meta(i+1, fmt.Sprintf("%s %d", track, i)); err != nil {
			return err
		}
	}
	// slice renders the [TMS-DurMS, TMS] span an event commits as an
	// "X" duration slice on its track.
	slice := func(e Event, name string, extra string) error {
		return emit(fmt.Sprintf(`{"name":%q,"ph":"X","ts":%s,"dur":%s,"pid":0,"tid":%d%s}`,
			name, ftoa((e.TMS-e.DurMS)*1000), ftoa(e.DurMS*1000), chromeTID(e), extra))
	}
	for _, e := range t.Events {
		ts := ftoa(e.TMS * 1000) // ms -> us
		tid := chromeTID(e)
		var line string
		switch e.Kind {
		case KindServeStart:
			line = fmt.Sprintf(`{"name":"batch(%d)","ph":"X","ts":%s,"dur":%s,"pid":0,"tid":%d}`,
				e.Batch, ts, ftoa(e.DurMS*1000), tid)
		case KindSeqComplete:
			if err := slice(e, fmt.Sprintf("seq(%d)", e.Req),
				fmt.Sprintf(`,"args":{"lat_ms":%s}`, ftoa(e.LatMS))); err != nil {
				return err
			}
			continue
		case KindPreempt:
			// The evicted residency paints the track, then an instant
			// marks the eviction itself.
			if err := slice(e, fmt.Sprintf("seq(%d)", e.Req), ""); err != nil {
				return err
			}
			line = fmt.Sprintf(`{"name":"preempt","ph":"i","s":"t","ts":%s,"pid":0,"tid":%d,"args":{"req":%d,"blocks":%d}}`,
				ts, tid, e.Req, e.Val)
		case KindPrefillChunk:
			if err := slice(e, fmt.Sprintf("prefill(%d)", e.Val),
				fmt.Sprintf(`,"args":{"req":%d}`, e.Req)); err != nil {
				return err
			}
			continue
		case KindDecodeFlush:
			if err := slice(e, fmt.Sprintf("decode(%d)", e.Val),
				fmt.Sprintf(`,"args":{"req":%d}`, e.Req)); err != nil {
				return err
			}
			continue
		case KindCrash:
			line = fmt.Sprintf(`{"name":"down","ph":"B","ts":%s,"pid":0,"tid":%d}`, ts, tid)
		case KindRestart:
			line = fmt.Sprintf(`{"name":"down","ph":"E","ts":%s,"pid":0,"tid":%d}`, ts, tid)
		case KindOutageStart:
			line = fmt.Sprintf(`{"name":"outage","ph":"B","ts":%s,"pid":0,"tid":%d}`, ts, tid)
		case KindOutageEnd:
			line = fmt.Sprintf(`{"name":"outage","ph":"E","ts":%s,"pid":0,"tid":%d}`, ts, tid)
		default:
			args := make([]byte, 0, 64)
			if e.Req >= 0 {
				args = append(args, `"req":`...)
				args = strconv.AppendInt(args, int64(e.Req), 10)
			}
			if e.Batch != 0 {
				if len(args) > 0 {
					args = append(args, ',')
				}
				args = append(args, `"batch":`...)
				args = strconv.AppendInt(args, int64(e.Batch), 10)
			}
			if e.Val != 0 {
				if len(args) > 0 {
					args = append(args, ',')
				}
				args = append(args, `"val":`...)
				args = strconv.AppendInt(args, int64(e.Val), 10)
			}
			if e.LatMS != 0 {
				if len(args) > 0 {
					args = append(args, ',')
				}
				args = append(args, `"lat_ms":`...)
				args = append(args, ftoa(e.LatMS)...)
			}
			line = fmt.Sprintf(`{"name":%q,"ph":"i","s":"t","ts":%s,"pid":0,"tid":%d,"args":{%s}}`,
				string(e.Kind), ts, tid, args)
		}
		if err := emit(line); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
