// Package faults is the deterministic fault-model of the cluster
// simulator: replica crash/restart schedules, per-hop network delay
// distributions, and request-level loss, plus the dispatcher-side
// retry/hedging policy that turns those faults into availability
// rather than lost work.
//
// A Spec is pure description — parsed from a compact string such as
//
//	crash:r1@2000+500;mtbf:8000/1000;delaydist=lognormal:5,1;loss=0.001
//
// and realized by serving.RunCluster as events on the shared engine
// clock. Every stochastic element (churn up/down draws, network delay
// samples, loss coin flips) is drawn from dedicated rng streams labeled
// off the scenario seed (rng.Labeled), so enabling faults never
// perturbs the base scenario's arrival and service draws, and a faulty
// run is exactly as deterministic as a fault-free one.
package faults

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/rng"
)

// DelayKind names a network-delay distribution family.
type DelayKind int

// Supported delay distributions.
const (
	// DelayNone is the free network: zero delay on every hop.
	DelayNone DelayKind = iota
	// DelayConst adds a fixed delay A ms to every hop.
	DelayConst
	// DelayUniform draws uniformly from [A, B) ms.
	DelayUniform
	// DelayExp draws exponentially with mean A ms.
	DelayExp
	// DelayLognormal draws A·exp(B·N(0,1)) ms — median A, log-sigma B,
	// the heavy-tailed shape measured on real datacenter hops.
	DelayLognormal
)

// DelayDist is a per-hop network delay distribution between the
// dispatcher and a replica. The zero value is the free network.
type DelayDist struct {
	Kind DelayKind
	A, B float64
}

// Sample draws one hop delay in milliseconds. The free network draws
// nothing, so configuring a Spec without a delay distribution consumes
// no randomness.
func (d DelayDist) Sample(r *rng.Rand) float64 {
	switch d.Kind {
	case DelayConst:
		return d.A
	case DelayUniform:
		return d.A + (d.B-d.A)*r.Float64()
	case DelayExp:
		return r.Exp(1 / d.A)
	case DelayLognormal:
		return d.A * math.Exp(d.B*r.Norm())
	}
	return 0
}

// String renders the distribution in the spec form ParseDelay accepts.
func (d DelayDist) String() string {
	switch d.Kind {
	case DelayConst:
		return "const:" + ftoa(d.A)
	case DelayUniform:
		return "uniform:" + ftoa(d.A) + "," + ftoa(d.B)
	case DelayExp:
		return "exp:" + ftoa(d.A)
	case DelayLognormal:
		return "lognormal:" + ftoa(d.A) + "," + ftoa(d.B)
	}
	return ""
}

// ParseDelay parses a delay-distribution spec: const:V | uniform:A,B |
// exp:MEAN | lognormal:MEDIAN,SIGMA (all in milliseconds). The empty
// spec is the free network.
func ParseDelay(spec string) (DelayDist, error) {
	var d DelayDist
	if spec == "" {
		return d, nil
	}
	kind, args, ok := strings.Cut(spec, ":")
	if !ok {
		return d, fmt.Errorf("faults: delay dist %q must be KIND:ARGS (const:2, uniform:1,5, exp:3, lognormal:5,1)", spec)
	}
	vals, err := floats(args)
	if err != nil {
		return d, fmt.Errorf("faults: delay dist %q: %v", spec, err)
	}
	want := 2
	switch kind {
	case "const":
		d.Kind, want = DelayConst, 1
	case "uniform":
		d.Kind = DelayUniform
	case "exp":
		d.Kind, want = DelayExp, 1
	case "lognormal":
		d.Kind = DelayLognormal
	default:
		return DelayDist{}, fmt.Errorf("faults: unknown delay dist %q (want const | uniform | exp | lognormal)", kind)
	}
	if len(vals) != want {
		return DelayDist{}, fmt.Errorf("faults: delay dist %s wants %d args, got %d", kind, want, len(vals))
	}
	d.A = vals[0]
	if want == 2 {
		d.B = vals[1]
	}
	switch {
	case d.Kind == DelayUniform && (d.A < 0 || d.B < d.A):
		return DelayDist{}, fmt.Errorf("faults: uniform delay bounds [%g, %g) must satisfy 0 <= a <= b", d.A, d.B)
	case d.Kind == DelayLognormal && (d.A <= 0 || d.B < 0):
		return DelayDist{}, fmt.Errorf("faults: lognormal delay (median %g, sigma %g) wants median > 0, sigma >= 0", d.A, d.B)
	case (d.Kind == DelayConst || d.Kind == DelayExp) && d.A <= 0:
		return DelayDist{}, fmt.Errorf("faults: %s delay %g must be positive", kind, d.A)
	}
	return d, nil
}

// Crash is a one-shot fail-stop: replica Replica goes down at AtMS and
// restarts (empty-queued) DownMS later.
type Crash struct {
	Replica int
	AtMS    float64
	DownMS  float64
}

// Churn is a periodic crash/restart process: up-times are exponential
// with mean UpMS (MTBF) and down-times exponential with mean DownMS
// (MTTR), drawn from a per-replica labeled rng stream. Replica -1
// applies the process to every replica independently.
type Churn struct {
	Replica int
	UpMS    float64
	DownMS  float64
}

// Spec is a complete fault model for one cluster run. The zero Spec
// injects nothing.
type Spec struct {
	// Crashes are one-shot crash/restart events.
	Crashes []Crash
	// Churns are periodic MTBF/MTTR processes.
	Churns []Churn
	// Delay is the dispatcher→replica network delay distribution,
	// sampled per dispatched copy.
	Delay DelayDist
	// Loss is the probability a dispatched copy is lost in transit.
	Loss float64
	// TimeoutMS is the dispatcher's loss-detection timeout: a lost copy
	// is noticed (and retried or recorded lost) this long after
	// dispatch. Zero defers to the serving layer's SLO.
	TimeoutMS float64
}

// Empty reports whether the spec injects no faults at all.
func (s *Spec) Empty() bool {
	return s == nil ||
		len(s.Crashes) == 0 && len(s.Churns) == 0 && s.Delay.Kind == DelayNone && s.Loss == 0
}

// MaxReplica returns the highest replica index named by a crash or
// churn clause, or -1 when no clause names one (all-replica churn and
// pure network faults).
func (s *Spec) MaxReplica() int {
	max := -1
	for _, c := range s.Crashes {
		if c.Replica > max {
			max = c.Replica
		}
	}
	for _, c := range s.Churns {
		if c.Replica > max {
			max = c.Replica
		}
	}
	return max
}

// String renders the spec in the canonical form Parse accepts: crashes
// sorted by (replica, time), then churns by replica, then delaydist,
// loss, and timeout. Parse(s.String()) reproduces the spec, and two
// specs describing the same fault model render identically — the
// property scenario identities (and the seeds derived from them) rely
// on.
func (s *Spec) String() string {
	if s.Empty() && (s == nil || s.TimeoutMS == 0) {
		return ""
	}
	crashes := append([]Crash(nil), s.Crashes...)
	sort.Slice(crashes, func(i, j int) bool {
		if crashes[i].Replica != crashes[j].Replica {
			return crashes[i].Replica < crashes[j].Replica
		}
		return crashes[i].AtMS < crashes[j].AtMS
	})
	churns := append([]Churn(nil), s.Churns...)
	sort.Slice(churns, func(i, j int) bool { return churns[i].Replica < churns[j].Replica })
	var parts []string
	for _, c := range crashes {
		parts = append(parts, fmt.Sprintf("crash:r%d@%s+%s", c.Replica, ftoa(c.AtMS), ftoa(c.DownMS)))
	}
	for _, c := range churns {
		if c.Replica < 0 {
			parts = append(parts, fmt.Sprintf("mtbf:%s/%s", ftoa(c.UpMS), ftoa(c.DownMS)))
		} else {
			parts = append(parts, fmt.Sprintf("mtbf:r%d@%s/%s", c.Replica, ftoa(c.UpMS), ftoa(c.DownMS)))
		}
	}
	if s.Delay.Kind != DelayNone {
		parts = append(parts, "delaydist="+s.Delay.String())
	}
	if s.Loss > 0 {
		parts = append(parts, "loss="+ftoa(s.Loss))
	}
	if s.TimeoutMS > 0 {
		parts = append(parts, "timeout="+ftoa(s.TimeoutMS))
	}
	return strings.Join(parts, ";")
}

// Parse parses a fault spec: semicolon-separated clauses, each one of
//
//	crash:r<I>@<AT>+<DOWN>      one-shot crash of replica I at AT ms,
//	                            down for DOWN ms
//	mtbf:<UP>/<DOWN>            periodic churn on every replica: mean
//	                            up-time UP ms, mean down-time DOWN ms
//	mtbf:r<I>@<UP>/<DOWN>       periodic churn on replica I only
//	delaydist=<DIST>            dispatcher→replica delay distribution
//	                            (const:V | uniform:A,B | exp:MEAN |
//	                            lognormal:MEDIAN,SIGMA)
//	loss=<P>                    per-copy transit loss probability
//	timeout=<MS>                loss-detection timeout override
//
// The empty spec returns (nil, nil): no fault model at all.
func Parse(spec string) (*Spec, error) {
	if spec == "" {
		return nil, nil
	}
	s := &Spec{}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		switch {
		case strings.HasPrefix(clause, "crash:"):
			c, err := parseCrash(strings.TrimPrefix(clause, "crash:"))
			if err != nil {
				return nil, err
			}
			s.Crashes = append(s.Crashes, c)
		case strings.HasPrefix(clause, "mtbf:"):
			c, err := parseChurn(strings.TrimPrefix(clause, "mtbf:"))
			if err != nil {
				return nil, err
			}
			s.Churns = append(s.Churns, c)
		case strings.HasPrefix(clause, "delaydist="):
			d, err := ParseDelay(strings.TrimPrefix(clause, "delaydist="))
			if err != nil {
				return nil, err
			}
			s.Delay = d
		case strings.HasPrefix(clause, "loss="):
			v, err := strconv.ParseFloat(strings.TrimPrefix(clause, "loss="), 64)
			if err != nil || !(v >= 0) || v >= 1 {
				return nil, fmt.Errorf("faults: loss %q must be a probability in [0, 1)", strings.TrimPrefix(clause, "loss="))
			}
			s.Loss = v
		case strings.HasPrefix(clause, "timeout="):
			v, err := strconv.ParseFloat(strings.TrimPrefix(clause, "timeout="), 64)
			if err != nil || !(v > 0) {
				return nil, fmt.Errorf("faults: timeout %q must be a positive duration in ms", strings.TrimPrefix(clause, "timeout="))
			}
			s.TimeoutMS = v
		default:
			return nil, fmt.Errorf("faults: unknown clause %q (want crash: | mtbf: | delaydist= | loss= | timeout=)", clause)
		}
	}
	if s.Empty() && s.TimeoutMS == 0 {
		return nil, fmt.Errorf("faults: spec %q injects nothing", spec)
	}
	return s, nil
}

// parseCrash parses "r<I>@<AT>+<DOWN>".
func parseCrash(s string) (Crash, error) {
	rep, rest, ok := strings.Cut(s, "@")
	if !ok {
		return Crash{}, fmt.Errorf("faults: crash clause %q must be r<I>@<AT>+<DOWN>", s)
	}
	idx, err := replicaIndex(rep)
	if err != nil {
		return Crash{}, err
	}
	atS, downS, ok := strings.Cut(rest, "+")
	if !ok {
		return Crash{}, fmt.Errorf("faults: crash clause %q must be r<I>@<AT>+<DOWN>", s)
	}
	at, err1 := strconv.ParseFloat(atS, 64)
	down, err2 := strconv.ParseFloat(downS, 64)
	if err1 != nil || err2 != nil || at < 0 || !(down > 0) {
		return Crash{}, fmt.Errorf("faults: crash clause %q wants AT >= 0 and DOWN > 0 ms", s)
	}
	return Crash{Replica: idx, AtMS: at, DownMS: down}, nil
}

// parseChurn parses "<UP>/<DOWN>" or "r<I>@<UP>/<DOWN>".
func parseChurn(s string) (Churn, error) {
	idx := -1
	if strings.HasPrefix(s, "r") {
		rep, rest, ok := strings.Cut(s, "@")
		if !ok {
			return Churn{}, fmt.Errorf("faults: mtbf clause %q must be <UP>/<DOWN> or r<I>@<UP>/<DOWN>", s)
		}
		var err error
		if idx, err = replicaIndex(rep); err != nil {
			return Churn{}, err
		}
		s = rest
	}
	upS, downS, ok := strings.Cut(s, "/")
	if !ok {
		return Churn{}, fmt.Errorf("faults: mtbf clause %q must be <UP>/<DOWN>", s)
	}
	up, err1 := strconv.ParseFloat(upS, 64)
	down, err2 := strconv.ParseFloat(downS, 64)
	if err1 != nil || err2 != nil || !(up > 0) || !(down > 0) {
		return Churn{}, fmt.Errorf("faults: mtbf clause %q wants positive UP and DOWN means in ms", s)
	}
	return Churn{Replica: idx, UpMS: up, DownMS: down}, nil
}

func replicaIndex(s string) (int, error) {
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("faults: replica %q must be r<INDEX>", s)
	}
	idx, err := strconv.Atoi(s[1:])
	if err != nil || idx < 0 {
		return 0, fmt.Errorf("faults: replica %q must be r<INDEX> with INDEX >= 0", s)
	}
	return idx, nil
}

// Retry is the dispatcher's failure-handling policy. The zero value
// dispatches every request exactly once and never hedges — pre-fault
// behavior.
type Retry struct {
	// Attempts bounds dispatch attempts per request (loss retries and
	// overflow re-dispatches; crash requeues are infrastructure and are
	// not bounded by it). 0 and 1 both mean a single attempt.
	Attempts int
	// HedgeQ, when positive, hedges: a request still unserved after the
	// HedgeQ-th percentile of observed delivered latencies gets a
	// duplicate dispatched to a different replica; the first copy to be
	// batched wins. In (0, 100).
	HedgeQ float64
	// HedgeMin is the number of delivered latencies the dispatcher must
	// observe before hedging engages (default 32 when hedging is on).
	HedgeMin int
}

// Enabled reports whether the policy changes dispatch behavior at all.
func (r Retry) Enabled() bool { return r.Attempts > 1 || r.HedgeQ > 0 }

// String renders the policy in the canonical spec form ParseRetry
// accepts ("" for the zero policy).
func (r Retry) String() string {
	if !r.Enabled() {
		return ""
	}
	var parts []string
	if r.Attempts > 1 {
		parts = append(parts, "attempts="+strconv.Itoa(r.Attempts))
	}
	if r.HedgeQ > 0 {
		parts = append(parts, "hedge="+ftoa(r.HedgeQ))
		if r.HedgeMin > 0 && r.HedgeMin != DefaultHedgeMin {
			parts = append(parts, "hedgemin="+strconv.Itoa(r.HedgeMin))
		}
	}
	return strings.Join(parts, "/")
}

// DefaultHedgeMin is the delivered-latency sample floor below which
// hedging stays off (the quantile estimate is too noisy to act on).
const DefaultHedgeMin = 32

// ParseRetry parses a retry/hedging spec: '/'-separated key=value
// pairs from attempts=<N>, hedge=<PERCENTILE>, hedgemin=<SAMPLES>; a
// bare integer is shorthand for attempts=<N>. The empty spec is the
// zero (single-attempt, no-hedge) policy.
func ParseRetry(spec string) (Retry, error) {
	var r Retry
	if spec == "" {
		return r, nil
	}
	if n, err := strconv.Atoi(spec); err == nil {
		if n < 1 {
			return r, fmt.Errorf("faults: retry attempts %d must be >= 1", n)
		}
		r.Attempts = n
		return r, nil
	}
	for _, p := range strings.Split(spec, "/") {
		key, val, ok := strings.Cut(p, "=")
		if !ok {
			return Retry{}, fmt.Errorf("faults: retry option %q must be key=value", p)
		}
		switch key {
		case "attempts":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Retry{}, fmt.Errorf("faults: retry attempts %q must be an integer >= 1", val)
			}
			r.Attempts = n
		case "hedge":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil || !(v > 0) || v >= 100 {
				return Retry{}, fmt.Errorf("faults: hedge percentile %q must be in (0, 100)", val)
			}
			r.HedgeQ = v
		case "hedgemin":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Retry{}, fmt.Errorf("faults: hedgemin %q must be an integer >= 1", val)
			}
			r.HedgeMin = n
		default:
			return Retry{}, fmt.Errorf("faults: unknown retry option %q (want attempts | hedge | hedgemin)", key)
		}
	}
	if r.HedgeQ > 0 && r.HedgeMin == 0 {
		r.HedgeMin = DefaultHedgeMin
	}
	if r.HedgeQ == 0 && r.HedgeMin != 0 {
		return Retry{}, fmt.Errorf("faults: hedgemin without hedge has no effect")
	}
	return r, nil
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func floats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
