package faults

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestParseRoundTrip(t *testing.T) {
	specs := []string{
		"crash:r1@2000+500",
		"crash:r0@0+100;crash:r1@2000+500",
		"mtbf:8000/1000",
		"mtbf:r2@8000/1000",
		"delaydist=lognormal:5,1",
		"delaydist=const:2",
		"delaydist=uniform:1,5",
		"delaydist=exp:3",
		"loss=0.001",
		"crash:r1@2000+500;delaydist=lognormal:5,1;loss=0.001",
		"mtbf:8000/1000;delaydist=exp:2;loss=0.01;timeout=40",
	}
	for _, spec := range specs {
		s, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if got := s.String(); got != spec {
			t.Fatalf("Parse(%q).String() = %q", spec, got)
		}
		again, err := Parse(s.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", s.String(), err)
		}
		if again.String() != s.String() {
			t.Fatalf("round trip unstable: %q -> %q", s.String(), again.String())
		}
	}
}

// TestCanonicalOrdering pins that clause order does not matter: the
// same fault model always renders to the same canonical string, which
// is what keeps scenario identities (and derived seeds) stable.
func TestCanonicalOrdering(t *testing.T) {
	a, err := Parse("loss=0.01;crash:r1@2000+500;crash:r0@100+50;delaydist=exp:2")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("crash:r0@100+50;delaydist=exp:2;crash:r1@2000+500;loss=0.01")
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("clause order changed canonical form: %q vs %q", a.String(), b.String())
	}
}

func TestParseEmpty(t *testing.T) {
	s, err := Parse("")
	if err != nil || s != nil {
		t.Fatalf("Parse(\"\") = %v, %v; want nil, nil", s, err)
	}
	if !s.Empty() {
		t.Fatal("nil spec must report Empty")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"crash:1@2000+500",     // missing r prefix
		"crash:r1@2000",        // missing down duration
		"crash:r-1@0+10",       // negative replica
		"crash:r1@-5+10",       // negative time
		"crash:r1@5+0",         // zero downtime
		"mtbf:8000",            // missing MTTR
		"mtbf:0/1000",          // zero MTBF
		"delaydist=normal:1,2", // unknown family
		"delaydist=exp:0",      // non-positive mean
		"delaydist=uniform:5,1",
		"delaydist=lognormal:0,1",
		"loss=1",
		"loss=-0.1",
		"loss=x",
		"timeout=0",
		"jitter=5",
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
	if _, err := Parse("crash:r1@2000+500"); err != nil {
		t.Fatal(err)
	}
}

func TestMaxReplica(t *testing.T) {
	s, err := Parse("crash:r1@100+50;mtbf:r3@1000/100")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.MaxReplica(); got != 3 {
		t.Fatalf("MaxReplica = %d, want 3", got)
	}
	s, err = Parse("mtbf:1000/100;loss=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.MaxReplica(); got != -1 {
		t.Fatalf("all-replica churn MaxReplica = %d, want -1", got)
	}
}

func TestDelaySampleMoments(t *testing.T) {
	const n = 200000
	cases := []struct {
		spec string
		mean float64
		tol  float64
	}{
		{"const:2", 2, 0.001},
		{"uniform:1,5", 3, 0.05},
		{"exp:3", 3, 0.05},
		// lognormal mean = median * exp(sigma^2/2)
		{"lognormal:5,0.5", 5 * math.Exp(0.125), 0.1},
	}
	for _, c := range cases {
		d, err := ParseDelay(c.spec)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.Labeled(7, "faults.test")
		sum := 0.0
		for i := 0; i < n; i++ {
			v := d.Sample(r)
			if v < 0 {
				t.Fatalf("%s sampled negative delay %g", c.spec, v)
			}
			sum += v
		}
		if got := sum / n; math.Abs(got-c.mean) > c.tol*c.mean+0.001 {
			t.Errorf("%s mean = %g, want ~%g", c.spec, got, c.mean)
		}
	}
}

// TestFreeNetworkDrawsNothing pins the no-perturbation property at the
// distribution level: a Spec without a delay distribution consumes no
// randomness when sampled.
func TestFreeNetworkDrawsNothing(t *testing.T) {
	r := rng.New(3)
	before := *r
	if v := (DelayDist{}).Sample(r); v != 0 {
		t.Fatalf("free network sampled %g, want 0", v)
	}
	if *r != before {
		t.Fatal("free-network Sample advanced the rng")
	}
}

func TestRetryRoundTrip(t *testing.T) {
	specs := []string{
		"attempts=3",
		"attempts=2/hedge=95",
		"hedge=99",
		"attempts=3/hedge=90/hedgemin=64",
	}
	for _, spec := range specs {
		r, err := ParseRetry(spec)
		if err != nil {
			t.Fatalf("ParseRetry(%q): %v", spec, err)
		}
		if got := r.String(); got != spec {
			t.Fatalf("ParseRetry(%q).String() = %q", spec, got)
		}
	}
	// Bare-integer shorthand canonicalizes to attempts=N.
	r, err := ParseRetry("3")
	if err != nil || r.Attempts != 3 || r.String() != "attempts=3" {
		t.Fatalf("ParseRetry(\"3\") = %+v (%v)", r, err)
	}
	// Zero policy.
	z, err := ParseRetry("")
	if err != nil || z.Enabled() || z.String() != "" {
		t.Fatalf("ParseRetry(\"\") = %+v (%v)", z, err)
	}
	// Hedging defaults its sample floor.
	h, err := ParseRetry("hedge=95")
	if err != nil || h.HedgeMin != DefaultHedgeMin {
		t.Fatalf("hedge default floor = %+v (%v)", h, err)
	}
}

func TestRetryErrors(t *testing.T) {
	for _, spec := range []string{
		"attempts=0", "attempts=x", "hedge=0", "hedge=100",
		"hedgemin=8", "retries=3", "0",
	} {
		if _, err := ParseRetry(spec); err == nil {
			t.Errorf("ParseRetry(%q) accepted", spec)
		}
	}
}
