package serving

import (
	"repro/internal/autoscale"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// PlanScale replays the deterministic dispatch backlog model over one
// stream pass and drives a reactive scaler with windowed signals,
// returning the replica plan that the cluster replay passes consult.
//
// The pass serves nothing: it only advances the same per-replica work
// horizons the least-loaded dispatcher uses (batch-1 service at
// estCost), and summarizes each window into an autoscale.Signal — the
// estimated p99 latency (queueing plus service under the horizon
// model), the peak per-replica queue backlog, and the utilization of
// active capacity. Windowed latencies stream into a bounded sketch, so
// planning is O(1) memory like everything else in the pipeline, and
// every quantity is a pure function of the stream and the options —
// the plan is identical at any sweep worker count.
func PlanScale(stream *workload.Stream, estCost []float64, cfg autoscale.Config, dispatch Dispatch) *autoscale.Plan {
	sc := autoscale.New(cfg)
	eff := sc.Config()
	plan := &autoscale.Plan{Start: sc.Replicas()}
	asn := assigner{dispatch: dispatch, estCost: estCost, horizon: make([]float64, cfg.Max)}

	winEnd := eff.WindowMS
	lat := metrics.NewSketch()
	var peakBacklog, busy float64
	closeWindow := func() {
		sig := autoscale.Signal{
			Requests:      lat.Len(),
			PeakBacklogMS: peakBacklog,
			Utilization:   busy / (float64(sc.Replicas()) * eff.WindowMS),
		}
		if sig.Requests > 0 {
			sig.P99LatMS = lat.Percentile(99)
		}
		if n, changed := sc.Observe(winEnd, sig); changed {
			plan.Steps = append(plan.Steps, autoscale.Step{AtMS: winEnd, Replicas: n})
		}
		lat = metrics.NewSketch()
		peakBacklog, busy = 0, 0
		winEnd += eff.WindowMS
	}

	it := stream.Iter()
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		// A scaling step at exactly winEnd applies to arrivals >= winEnd,
		// matching Plan cursor semantics in the replay passes.
		for r.ArrivalMS >= winEnd {
			closeWindow()
		}
		target := asn.assign(sc.Replicas(), r.ArrivalMS)
		// After assignment the target's horizon extends past the arrival
		// by the request's estimated queueing + service time.
		est := asn.horizon[target] - r.ArrivalMS
		lat.Add(est)
		if wait := est - estCost[target]; wait > peakBacklog {
			peakBacklog = wait
		}
		busy += estCost[target]
	}
	return plan
}
