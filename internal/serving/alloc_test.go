package serving

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/workload"
)

// The alloc pins below are regression gates for the zero-alloc hot
// path: a whole simulation run — thousands of requests — must stay
// within a small fixed allocation budget, because every per-event and
// per-request allocation was hoisted into reused buffers (engine event
// freelist, head-index queues, pend table, sketch windows). Budgets are
// measured values padded ~3x so innocuous churn (map resizes inside the
// runtime, one-off growth) never flakes, while any reintroduced
// per-event allocation — which costs O(requests) — trips them
// immediately.

// TestRunSteadyStateAllocBudget pins the single-replica Run hot path in
// sketch mode: the per-request cost must be zero allocations, so the
// whole 2000-request run stays within a fixed setup-only budget.
func TestRunSteadyStateAllocBudget(t *testing.T) {
	m := model.ResNet50()
	s := workload.Video(1, 2000, 60, 91)
	opts := Options{Platform: Clockwork, SLOms: m.SLO(), Metrics: metrics.ModeSketch}
	const budget = 50 // measured: 14
	avg := testing.AllocsPerRun(5, func() {
		Run(s.Iter(), &VanillaHandler{Model: m}, opts)
	})
	t.Logf("serving.Run: %.0f allocs per 2000-request run", avg)
	if avg > budget {
		t.Fatalf("serving.Run allocated %.0f times per run, budget %d — a per-request allocation crept back into the hot path", avg, budget)
	}
}

// TestRunClusterSteadyStateAllocBudget pins the reliable cluster path
// (obs off, no faults): allocations must scale with replica count, not
// request count.
func TestRunClusterSteadyStateAllocBudget(t *testing.T) {
	m := model.ResNet50()
	s := workload.Video(1, 2000, 60, 92)
	opts := ClusterOptions{
		Options:  Options{Platform: Clockwork, SLOms: m.SLO(), Metrics: metrics.ModeSketch},
		Replicas: 4,
		Dispatch: RoundRobin,
	}
	const budget = 150 // measured: 50
	avg := testing.AllocsPerRun(5, func() {
		RunCluster(s, func(int) Handler { return &VanillaHandler{Model: m} }, opts)
	})
	t.Logf("RunCluster reliable: %.0f allocs per 2000-request run", avg)
	if avg > budget {
		t.Fatalf("RunCluster allocated %.0f times per run, budget %d — a per-request allocation crept back into the reliable path", avg, budget)
	}
}

// TestRunClusterFaultyAllocBudget pins the fault-arbiter path: the
// direct-mapped pend table and op-coded fault events must keep the
// per-request cost at zero even with churn, delays, and loss active.
func TestRunClusterFaultyAllocBudget(t *testing.T) {
	m := model.ResNet50()
	s := workload.Video(1, 2000, 60, 93)
	opts := ClusterOptions{
		Options:   Options{Platform: Clockwork, SLOms: m.SLO(), Metrics: metrics.ModeSketch},
		Replicas:  4,
		Dispatch:  RoundRobin,
		Faults:    mustFaults(t, "mtbf:3000/400;delaydist=exp:2;loss=0.02"),
		FaultSeed: 11,
	}
	const budget = 450 // measured: 148
	avg := testing.AllocsPerRun(5, func() {
		RunCluster(s, func(int) Handler { return &VanillaHandler{Model: m} }, opts)
	})
	t.Logf("RunCluster faulty: %.0f allocs per 2000-request run", avg)
	if avg > budget {
		t.Fatalf("faulty RunCluster allocated %.0f times per run, budget %d — a per-request allocation crept back into the fault arbiter", avg, budget)
	}
}
