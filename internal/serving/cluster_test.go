package serving

import (
	"testing"

	"repro/internal/controller"
	"repro/internal/exitsim"
	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestClusterSustainsHigherRate(t *testing.T) {
	m := model.BERTBase()
	// 2x the single-replica target overloads one replica badly but
	// should be comfortable for three.
	qps := trace.TargetQPS(m) * 2
	s := workload.Amazon(6000, qps, 51)
	opts := Options{Platform: Clockwork, SLOms: m.SLO()}

	single := Run(s.Iter(), &VanillaHandler{Model: m}, opts)
	cluster := RunCluster(s, func(int) Handler { return &VanillaHandler{Model: m} },
		ClusterOptions{Options: opts, Replicas: 3, Dispatch: LeastLoaded})

	if cluster.Merged.DropRate >= single.DropRate {
		t.Fatalf("3 replicas drop rate %v not below single replica %v",
			cluster.Merged.DropRate, single.DropRate)
	}
	if cluster.Merged.DropRate > 0.1 {
		t.Fatalf("cluster still dropping %v at a sustainable aggregate rate", cluster.Merged.DropRate)
	}
}

func TestClusterServesEveryRequestOnce(t *testing.T) {
	m := model.ResNet50()
	s := workload.Video(0, 3000, 90, 52)
	opts := Options{Platform: Clockwork, SLOms: m.SLO()}
	for _, d := range []Dispatch{RoundRobin, LeastLoaded} {
		seen := map[int]bool{}
		dup := -1
		copts := ClusterOptions{Options: opts, Replicas: 4, Dispatch: d}
		copts.Observer = func(r Result) {
			if seen[r.ID] {
				dup = r.ID
			}
			seen[r.ID] = true
		}
		cluster := RunCluster(s, func(int) Handler { return &VanillaHandler{Model: m} }, copts)
		if dup >= 0 {
			t.Fatalf("%v: request %d served twice", d, dup)
		}
		if len(seen) != 3000 || cluster.Merged.Total != 3000 {
			t.Fatalf("%v: %d distinct results (merged total %d), want 3000", d, len(seen), cluster.Merged.Total)
		}
	}
}

func TestClusterPerReplicaControllers(t *testing.T) {
	m := model.ResNet50()
	prof := exitsim.ProfileFor(m, exitsim.KindVideo)
	s := workload.Video(0, 6000, 60, 53)
	opts := Options{Platform: Clockwork, SLOms: m.SLO()}
	var handlers []*ApparateHandler
	cluster := RunCluster(s, func(i int) Handler {
		h := NewApparate(model.ResNet50(), prof, 0.02, controller.Config{})
		handlers = append(handlers, h)
		return h
	}, ClusterOptions{Options: opts, Replicas: 2, Dispatch: RoundRobin})

	if cluster.Merged.Accuracy < 0.98 {
		t.Fatalf("cluster accuracy %v below constraint margin", cluster.Merged.Accuracy)
	}
	// Each replica's controller must have adapted independently.
	adapted := 0
	for _, h := range handlers {
		if h.Ctl.TuneRounds+h.Ctl.AdjustRounds > 0 {
			adapted++
		}
	}
	if adapted < 2 {
		t.Fatalf("only %d replica controllers adapted", adapted)
	}
}

func TestLeastLoadedBeatsRoundRobinOnBursts(t *testing.T) {
	m := model.BERTBase()
	qps := trace.TargetQPS(m) * 2
	s := workload.Amazon(6000, qps, 54)
	opts := Options{Platform: Clockwork, SLOms: m.SLO()}
	run := func(d Dispatch) float64 {
		c := RunCluster(s, func(int) Handler { return &VanillaHandler{Model: m} },
			ClusterOptions{Options: opts, Replicas: 3, Dispatch: d})
		return c.Merged.DropRate
	}
	rr, ll := run(RoundRobin), run(LeastLoaded)
	if ll > rr {
		t.Fatalf("least-loaded drop rate %v above round-robin %v", ll, rr)
	}
}

func TestClusterPanicsOnZeroReplicas(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RunCluster with 0 replicas did not panic")
		}
	}()
	RunCluster(nil, func(int) Handler { return nil }, ClusterOptions{Replicas: 0})
}

func TestDispatchStrings(t *testing.T) {
	if RoundRobin.String() != "round-robin" || LeastLoaded.String() != "least-loaded" {
		t.Fatal("bad dispatch names")
	}
}

func TestParsePlatformDispatchRoundTrip(t *testing.T) {
	for _, name := range Platforms() {
		p, err := ParsePlatform(name)
		if err != nil || p.String() != name {
			t.Fatalf("ParsePlatform(%q) = %v, %v", name, p, err)
		}
	}
	for _, name := range Dispatches() {
		d, err := ParseDispatch(name)
		if err != nil || d.String() != name {
			t.Fatalf("ParseDispatch(%q) = %v, %v", name, d, err)
		}
	}
	if _, err := ParsePlatform("nope"); err == nil {
		t.Fatal("ParsePlatform accepted unknown name")
	}
	if _, err := ParseDispatch("nope"); err == nil {
		t.Fatal("ParseDispatch accepted unknown name")
	}
}

// TestRoundRobinOrdering pins the dispatch contract: request i lands on
// replica i mod R, and each replica sees its slice in arrival order.
func TestRoundRobinOrdering(t *testing.T) {
	m := model.ResNet50()
	s := workload.Video(0, 100, 30, 55)
	// A generous SLO so nothing drops and every request is observable.
	opts := Options{Platform: Clockwork, SLOms: 10 * m.SLO()}
	const replicas = 3
	perReplica := make([][]int, replicas)
	cluster := RunCluster(s, func(int) Handler { return &VanillaHandler{Model: m} },
		ClusterOptions{Options: opts, Replicas: replicas, Dispatch: RoundRobin,
			ReplicaObserver: func(replica int, r Result) {
				perReplica[replica] = append(perReplica[replica], r.ID)
			}})
	for i, ids := range perReplica {
		prev := -1
		for _, id := range ids {
			if id%replicas != i {
				t.Fatalf("replica %d served request %d (want ids ≡ %d mod %d)", i, id, i, replicas)
			}
			if id <= prev {
				t.Fatalf("replica %d results out of arrival order: %d after %d", i, id, prev)
			}
			prev = id
		}
		if len(ids) == 0 || cluster.PerReplica[i].Total == 0 {
			t.Fatalf("replica %d received no requests", i)
		}
	}
}

// TestLeastLoadedTieBreaking pins the tie rule: when several replicas
// carry equal backlog, the lowest-indexed one wins, so a burst of
// simultaneous arrivals spreads deterministically as 0,1,2,0,1,2,...
func TestLeastLoadedTieBreaking(t *testing.T) {
	m := model.ResNet50()
	const n, replicas = 12, 3
	reqs := make([]workload.Request, n)
	for i := range reqs {
		// All arrive at t=0: every assignment starts from a tie.
		reqs[i] = workload.Request{ID: i, ArrivalMS: 0}
	}
	opts := Options{Platform: Clockwork, SLOms: 100 * m.SLO()}
	perReplica := make([][]int, replicas)
	cluster := RunCluster(workload.FromSlice("burst", 0, reqs),
		func(int) Handler { return &VanillaHandler{Model: m} },
		ClusterOptions{Options: opts, Replicas: replicas, Dispatch: LeastLoaded,
			ReplicaObserver: func(replica int, r Result) {
				perReplica[replica] = append(perReplica[replica], r.ID)
			}})
	// Equal batch-1 latency per request means backlogs stay balanced and
	// every round of assignments re-ties; the strict-inequality rule must
	// then cycle 0,1,2 exactly like round-robin.
	for i, ids := range perReplica {
		if len(ids) != n/replicas || cluster.PerReplica[i].Total != n/replicas {
			t.Fatalf("replica %d served %d requests, want %d", i, len(ids), n/replicas)
		}
		for _, id := range ids {
			if id%replicas != i {
				t.Fatalf("tie-break sent request %d to replica %d (want %d)", id, i, id%replicas)
			}
		}
	}
}
