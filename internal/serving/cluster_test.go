package serving

import (
	"testing"

	"repro/internal/controller"
	"repro/internal/exitsim"
	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestClusterSustainsHigherRate(t *testing.T) {
	m := model.BERTBase()
	// 2x the single-replica target overloads one replica badly but
	// should be comfortable for three.
	qps := trace.TargetQPS(m) * 2
	s := workload.Amazon(6000, qps, 51)
	opts := Options{Platform: Clockwork, SLOms: m.SLO()}

	single := Run(s.Requests, &VanillaHandler{Model: m}, opts)
	cluster := RunCluster(s.Requests, func(int) Handler { return &VanillaHandler{Model: m} },
		ClusterOptions{Options: opts, Replicas: 3, Dispatch: LeastLoaded})

	if cluster.Merged.DropRate >= single.DropRate {
		t.Fatalf("3 replicas drop rate %v not below single replica %v",
			cluster.Merged.DropRate, single.DropRate)
	}
	if cluster.Merged.DropRate > 0.1 {
		t.Fatalf("cluster still dropping %v at a sustainable aggregate rate", cluster.Merged.DropRate)
	}
}

func TestClusterServesEveryRequestOnce(t *testing.T) {
	m := model.ResNet50()
	s := workload.Video(0, 3000, 90, 52)
	opts := Options{Platform: Clockwork, SLOms: m.SLO()}
	for _, d := range []Dispatch{RoundRobin, LeastLoaded} {
		cluster := RunCluster(s.Requests, func(int) Handler { return &VanillaHandler{Model: m} },
			ClusterOptions{Options: opts, Replicas: 4, Dispatch: d})
		seen := map[int]bool{}
		for _, r := range cluster.Merged.Results {
			if seen[r.ID] {
				t.Fatalf("%v: request %d served twice", d, r.ID)
			}
			seen[r.ID] = true
		}
		if len(seen) != 3000 {
			t.Fatalf("%v: %d distinct results, want 3000", d, len(seen))
		}
	}
}

func TestClusterPerReplicaControllers(t *testing.T) {
	m := model.ResNet50()
	prof := exitsim.ProfileFor(m, exitsim.KindVideo)
	s := workload.Video(0, 6000, 60, 53)
	opts := Options{Platform: Clockwork, SLOms: m.SLO()}
	var handlers []*ApparateHandler
	cluster := RunCluster(s.Requests, func(i int) Handler {
		h := NewApparate(model.ResNet50(), prof, 0.02, controller.Config{})
		handlers = append(handlers, h)
		return h
	}, ClusterOptions{Options: opts, Replicas: 2, Dispatch: RoundRobin})

	if cluster.Merged.Accuracy < 0.98 {
		t.Fatalf("cluster accuracy %v below constraint margin", cluster.Merged.Accuracy)
	}
	// Each replica's controller must have adapted independently.
	adapted := 0
	for _, h := range handlers {
		if h.Ctl.TuneRounds+h.Ctl.AdjustRounds > 0 {
			adapted++
		}
	}
	if adapted < 2 {
		t.Fatalf("only %d replica controllers adapted", adapted)
	}
}

func TestLeastLoadedBeatsRoundRobinOnBursts(t *testing.T) {
	m := model.BERTBase()
	qps := trace.TargetQPS(m) * 2
	s := workload.Amazon(6000, qps, 54)
	opts := Options{Platform: Clockwork, SLOms: m.SLO()}
	run := func(d Dispatch) float64 {
		c := RunCluster(s.Requests, func(int) Handler { return &VanillaHandler{Model: m} },
			ClusterOptions{Options: opts, Replicas: 3, Dispatch: d})
		return c.Merged.DropRate
	}
	rr, ll := run(RoundRobin), run(LeastLoaded)
	if ll > rr {
		t.Fatalf("least-loaded drop rate %v above round-robin %v", ll, rr)
	}
}

func TestClusterPanicsOnZeroReplicas(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RunCluster with 0 replicas did not panic")
		}
	}()
	RunCluster(nil, func(int) Handler { return nil }, ClusterOptions{Replicas: 0})
}

func TestDispatchStrings(t *testing.T) {
	if RoundRobin.String() != "round-robin" || LeastLoaded.String() != "least-loaded" {
		t.Fatal("bad dispatch names")
	}
}
