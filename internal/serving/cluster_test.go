package serving

import (
	"testing"

	"repro/internal/controller"
	"repro/internal/exitsim"
	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestClusterSustainsHigherRate(t *testing.T) {
	m := model.BERTBase()
	// 2x the single-replica target overloads one replica badly but
	// should be comfortable for three.
	qps := trace.TargetQPS(m) * 2
	s := workload.Amazon(6000, qps, 51)
	opts := Options{Platform: Clockwork, SLOms: m.SLO()}

	single := Run(s.Iter(), &VanillaHandler{Model: m}, opts)
	cluster := RunCluster(s, func(int) Handler { return &VanillaHandler{Model: m} },
		ClusterOptions{Options: opts, Replicas: 3, Dispatch: LeastLoaded})

	if cluster.Merged.DropRate >= single.DropRate {
		t.Fatalf("3 replicas drop rate %v not below single replica %v",
			cluster.Merged.DropRate, single.DropRate)
	}
	if cluster.Merged.DropRate > 0.1 {
		t.Fatalf("cluster still dropping %v at a sustainable aggregate rate", cluster.Merged.DropRate)
	}
}

func TestClusterServesEveryRequestOnce(t *testing.T) {
	m := model.ResNet50()
	s := workload.Video(0, 3000, 90, 52)
	for _, p := range []Platform{Clockwork, TFServe} {
		opts := Options{Platform: p, SLOms: m.SLO()}
		for _, d := range []Dispatch{RoundRobin, LeastLoaded, JoinShortestQueue} {
			seen := map[int]bool{}
			dup := -1
			copts := ClusterOptions{Options: opts, Replicas: 4, Dispatch: d}
			copts.Observer = func(r Result) {
				if seen[r.ID] {
					dup = r.ID
				}
				seen[r.ID] = true
			}
			cluster := RunCluster(s, func(int) Handler { return &VanillaHandler{Model: m} }, copts)
			if dup >= 0 {
				t.Fatalf("%v/%v: request %d served twice", p, d, dup)
			}
			if len(seen) != 3000 || cluster.Merged.Total != 3000 {
				t.Fatalf("%v/%v: %d distinct results (merged total %d), want 3000", p, d, len(seen), cluster.Merged.Total)
			}
		}
	}
}

// TestClusterSinglePass pins the engine refactor's core acceptance
// criterion: RunCluster makes exactly one pass over the request stream
// regardless of replica count — no per-replica trace replay.
func TestClusterSinglePass(t *testing.T) {
	m := model.ResNet50()
	base := workload.Video(0, 500, 60, 57)
	for _, replicas := range []int{1, 4, 16} {
		passes := 0
		s := workload.NewStream("counted", 0, base.Len(), func() func(i int) workload.Request {
			passes++
			it := base.Iter()
			return func(int) workload.Request {
				r, _ := it.Next()
				return r
			}
		})
		cs := RunCluster(s, func(int) Handler { return &VanillaHandler{Model: m} },
			ClusterOptions{Options: Options{Platform: Clockwork, SLOms: m.SLO()},
				Replicas: replicas, Dispatch: LeastLoaded})
		if cs.Merged.Total != base.Len() {
			t.Fatalf("replicas=%d: served %d of %d requests", replicas, cs.Merged.Total, base.Len())
		}
		if passes != 1 {
			t.Fatalf("replicas=%d: RunCluster made %d passes over the stream, want exactly 1", replicas, passes)
		}
	}
}

func TestClusterPerReplicaControllers(t *testing.T) {
	m := model.ResNet50()
	prof := exitsim.ProfileFor(m, exitsim.KindVideo)
	s := workload.Video(0, 6000, 60, 53)
	opts := Options{Platform: Clockwork, SLOms: m.SLO()}
	var handlers []*ApparateHandler
	cluster := RunCluster(s, func(i int) Handler {
		h := NewApparate(model.ResNet50(), prof, 0.02, controller.Config{})
		handlers = append(handlers, h)
		return h
	}, ClusterOptions{Options: opts, Replicas: 2, Dispatch: RoundRobin})

	if cluster.Merged.Accuracy < 0.98 {
		t.Fatalf("cluster accuracy %v below constraint margin", cluster.Merged.Accuracy)
	}
	// Each replica's controller must have adapted independently.
	adapted := 0
	for _, h := range handlers {
		if h.Ctl.TuneRounds+h.Ctl.AdjustRounds > 0 {
			adapted++
		}
	}
	if adapted < 2 {
		t.Fatalf("only %d replica controllers adapted", adapted)
	}
}

// TestLeastLoadedAdaptsToHeterogeneousReplicas is where exact-queue-state
// least-loaded earns its keep: on a heterogeneous cluster (one fast, one
// nominal, one slow replica via the Speeds hook), round-robin keeps
// sending a third of the traffic to the slow replica and drops heavily,
// while least-loaded reads each replica's true outstanding work — which
// reflects its speed — and shifts load to the fast one. Work-awareness
// also beats job counting (JSQ), which can't see that the slow replica's
// short queue still takes longer to drain.
func TestLeastLoadedAdaptsToHeterogeneousReplicas(t *testing.T) {
	m := model.BERTBase()
	qps := trace.TargetQPS(m) * 2
	s := workload.Amazon(6000, qps, 54)
	opts := Options{Platform: Clockwork, SLOms: m.SLO()}
	speeds := []float64{1.6, 1, 0.55}
	run := func(d Dispatch) float64 {
		c := RunCluster(s, func(int) Handler { return &VanillaHandler{Model: m} },
			ClusterOptions{Options: opts, Replicas: 3, Dispatch: d, Speeds: speeds})
		return c.Merged.DropRate
	}
	rr, ll, jsq := run(RoundRobin), run(LeastLoaded), run(JoinShortestQueue)
	if ll >= rr/2 {
		t.Fatalf("least-loaded drop rate %v not well below round-robin %v on a heterogeneous cluster", ll, rr)
	}
	if ll > jsq {
		t.Fatalf("least-loaded drop rate %v above join-shortest-queue %v; work-awareness should beat job counting", ll, jsq)
	}
}

// TestHeterogeneousSpeedsScaleLatency pins the Speeds hook itself: a
// uniformly 2x-faster cluster must serve every request with strictly
// lower p99 than the nominal one.
func TestHeterogeneousSpeedsScaleLatency(t *testing.T) {
	m := model.ResNet50()
	s := workload.Video(0, 2000, 60, 56)
	opts := Options{Platform: Clockwork, SLOms: m.SLO()}
	run := func(speeds []float64) *ClusterStats {
		return RunCluster(s, func(int) Handler { return &VanillaHandler{Model: m} },
			ClusterOptions{Options: opts, Replicas: 2, Dispatch: RoundRobin, Speeds: speeds})
	}
	nominal, fast := run(nil), run([]float64{2})
	if fast.Merged.Total != nominal.Merged.Total {
		t.Fatalf("speed scaling changed the request count: %d vs %d", fast.Merged.Total, nominal.Merged.Total)
	}
	if fp, np := fast.Merged.Lat.Percentile(99), nominal.Merged.Lat.Percentile(99); fp >= np {
		t.Fatalf("2x speeds p99 %v not below nominal %v", fp, np)
	}
}

func TestClusterPanicsOnZeroReplicas(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RunCluster with 0 replicas did not panic")
		}
	}()
	RunCluster(nil, func(int) Handler { return nil }, ClusterOptions{Replicas: 0})
}

func TestDispatchStrings(t *testing.T) {
	if RoundRobin.String() != "round-robin" || LeastLoaded.String() != "least-loaded" ||
		JoinShortestQueue.String() != "join-shortest-queue" {
		t.Fatal("bad dispatch names")
	}
}

func TestParsePlatformDispatchRoundTrip(t *testing.T) {
	for _, name := range Platforms() {
		p, err := ParsePlatform(name)
		if err != nil || p.String() != name {
			t.Fatalf("ParsePlatform(%q) = %v, %v", name, p, err)
		}
	}
	for _, name := range Dispatches() {
		d, err := ParseDispatch(name)
		if err != nil || d.String() != name {
			t.Fatalf("ParseDispatch(%q) = %v, %v", name, d, err)
		}
	}
	if _, err := ParsePlatform("nope"); err == nil {
		t.Fatal("ParsePlatform accepted unknown name")
	}
	if _, err := ParseDispatch("nope"); err == nil {
		t.Fatal("ParseDispatch accepted unknown name")
	}
}

// TestRoundRobinOrdering pins the dispatch contract: request i lands on
// replica i mod R, and each replica sees its slice in arrival order.
func TestRoundRobinOrdering(t *testing.T) {
	m := model.ResNet50()
	s := workload.Video(0, 100, 30, 55)
	// A generous SLO so nothing drops and every request is observable.
	opts := Options{Platform: Clockwork, SLOms: 10 * m.SLO()}
	const replicas = 3
	perReplica := make([][]int, replicas)
	cluster := RunCluster(s, func(int) Handler { return &VanillaHandler{Model: m} },
		ClusterOptions{Options: opts, Replicas: replicas, Dispatch: RoundRobin,
			ReplicaObserver: func(replica int, r Result) {
				perReplica[replica] = append(perReplica[replica], r.ID)
			}})
	for i, ids := range perReplica {
		prev := -1
		for _, id := range ids {
			if id%replicas != i {
				t.Fatalf("replica %d served request %d (want ids ≡ %d mod %d)", i, id, i, replicas)
			}
			if id <= prev {
				t.Fatalf("replica %d results out of arrival order: %d after %d", i, id, prev)
			}
			prev = id
		}
		if len(ids) == 0 || cluster.PerReplica[i].Total == 0 {
			t.Fatalf("replica %d received no requests", i)
		}
	}
}

// TestDispatchTieBreaking pins the tie rule for both exact-queue-state
// policies: when several replicas carry equal load, the lowest-indexed
// one wins, so a burst of simultaneous arrivals spreads
// deterministically as 0,1,2,0,1,2,... (LeastLoaded compares estimated
// outstanding work; JoinShortestQueue compares jobs in system — with
// identical replicas both re-tie after every assignment, and the
// strict-inequality scan must then cycle like round-robin.)
func TestDispatchTieBreaking(t *testing.T) {
	m := model.ResNet50()
	const n, replicas = 12, 3
	reqs := make([]workload.Request, n)
	for i := range reqs {
		// All arrive at t=0: every assignment starts from a tie.
		reqs[i] = workload.Request{ID: i, ArrivalMS: 0}
	}
	opts := Options{Platform: Clockwork, SLOms: 100 * m.SLO()}
	for _, d := range []Dispatch{LeastLoaded, JoinShortestQueue} {
		perReplica := make([][]int, replicas)
		cluster := RunCluster(workload.FromSlice("burst", 0, reqs),
			func(int) Handler { return &VanillaHandler{Model: m} },
			ClusterOptions{Options: opts, Replicas: replicas, Dispatch: d,
				ReplicaObserver: func(replica int, r Result) {
					perReplica[replica] = append(perReplica[replica], r.ID)
				}})
		for i, ids := range perReplica {
			if len(ids) != n/replicas || cluster.PerReplica[i].Total != n/replicas {
				t.Fatalf("%v: replica %d served %d requests, want %d", d, i, len(ids), n/replicas)
			}
			for _, id := range ids {
				if id%replicas != i {
					t.Fatalf("%v: tie-break sent request %d to replica %d (want %d)", d, id, i, id%replicas)
				}
			}
		}
	}
}
