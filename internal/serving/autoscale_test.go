package serving

import (
	"testing"

	"repro/internal/autoscale"
	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/workload"
)

// burstStream builds a scheduled workload whose rate alternates between
// a light phase and an overload phase for one replica of the model.
func burstStream(m *model.Model, n int, seed uint64) *workload.Stream {
	sched, err := trace.ParseSchedule("phases:15x1/15x4")
	if err != nil {
		panic(err)
	}
	s, err := workload.ByNameSched("amazon", n, trace.TargetQPS(m), seed, sched)
	if err != nil {
		panic(err)
	}
	return s
}

// elastic runs an autoscaled 1..4 vanilla cluster over the stream and
// returns its stats (the realized plan rides on ClusterStats.Scale).
func elastic(m *model.Model, s *workload.Stream, d Dispatch) *ClusterStats {
	return RunCluster(s, func(int) Handler { return &VanillaHandler{Model: m} }, ClusterOptions{
		Options:   Options{Platform: Clockwork, SLOms: m.SLO()},
		Dispatch:  d,
		Autoscale: &autoscale.Config{Min: 1, Max: 4},
	})
}

func TestAutoscaleReactsToBursts(t *testing.T) {
	m := model.BERTBase()
	cs := elastic(m, burstStream(m, 8000, 61), RoundRobin)
	plan := cs.Scale
	if plan == nil {
		t.Fatal("autoscaled run returned no plan")
	}
	if plan.Start != 1 {
		t.Fatalf("plan starts at %d replicas, want min=1", plan.Start)
	}
	if plan.Peak() < 2 {
		t.Fatalf("4x bursts never scaled past %d replicas", plan.Peak())
	}
	if plan.Ups() == 0 || plan.Downs() == 0 {
		t.Fatalf("phased load produced %d ups / %d downs; want both positive", plan.Ups(), plan.Downs())
	}
	for _, step := range plan.Steps {
		if step.Replicas < 1 || step.Replicas > 4 {
			t.Fatalf("plan step %+v outside [1, 4]", step)
		}
	}
}

// TestAutoscaleDeterministic pins that the online scaler — consulted on
// the event loop, not via a planning pass — still realizes an identical
// plan on identical inputs.
func TestAutoscaleDeterministic(t *testing.T) {
	m := model.BERTBase()
	a := elastic(m, burstStream(m, 6000, 62), LeastLoaded).Scale
	b := elastic(m, burstStream(m, 6000, 62), LeastLoaded).Scale
	if a.Start != b.Start || len(a.Steps) != len(b.Steps) {
		t.Fatalf("plans differ: %+v vs %+v", a, b)
	}
	for i := range a.Steps {
		if a.Steps[i] != b.Steps[i] {
			t.Fatalf("plan step %d differs: %+v vs %+v", i, a.Steps[i], b.Steps[i])
		}
	}
}

func TestAutoscaledClusterServesEveryRequestOnce(t *testing.T) {
	m := model.BERTBase()
	s := burstStream(m, 6000, 63)
	opts := Options{Platform: Clockwork, SLOms: m.SLO()}
	for _, d := range []Dispatch{RoundRobin, LeastLoaded, JoinShortestQueue} {
		seen := map[int]bool{}
		dup := -1
		copts := ClusterOptions{
			Options:   opts,
			Dispatch:  d,
			Autoscale: &autoscale.Config{Min: 1, Max: 4},
		}
		copts.Observer = func(r Result) {
			if seen[r.ID] {
				dup = r.ID
			}
			seen[r.ID] = true
		}
		cluster := RunCluster(s, func(int) Handler { return &VanillaHandler{Model: m} }, copts)
		if dup >= 0 {
			t.Fatalf("%v: request %d served twice", d, dup)
		}
		if len(seen) != 6000 || cluster.Merged.Total != 6000 {
			t.Fatalf("%v: %d distinct results (merged total %d), want 6000", d, len(seen), cluster.Merged.Total)
		}
		if cluster.Scale == nil {
			t.Fatalf("%v: autoscaled run returned no plan", d)
		}
		if got := len(cluster.PerReplica); got != cluster.Scale.Peak() {
			t.Fatalf("%v: %d replicas created, want plan peak %d", d, got, cluster.Scale.Peak())
		}
	}
}

// TestAutoscaleAbsorbsBurstsBetterThanMinCluster is the burst-absorption
// study in miniature: under phased overload, an elastic 1..4 cluster
// must drop far less than the fixed min-width cluster it starts as.
func TestAutoscaleAbsorbsBurstsBetterThanMinCluster(t *testing.T) {
	m := model.BERTBase()
	s := burstStream(m, 8000, 64)
	opts := Options{Platform: Clockwork, SLOms: m.SLO()}
	mk := func(int) Handler { return &VanillaHandler{Model: m} }

	fixed := RunCluster(s, mk, ClusterOptions{Options: opts, Replicas: 1, Dispatch: RoundRobin})
	elastic := RunCluster(s, mk, ClusterOptions{
		Options: opts, Dispatch: RoundRobin,
		Autoscale: &autoscale.Config{Min: 1, Max: 4},
	})

	if elastic.Merged.DropRate >= fixed.Merged.DropRate {
		t.Fatalf("elastic drop rate %v not below fixed min-width %v",
			elastic.Merged.DropRate, fixed.Merged.DropRate)
	}
	if fixed.Merged.DropRate < 0.05 {
		t.Fatalf("burst phases too gentle to exercise autoscaling (fixed drop rate %v)", fixed.Merged.DropRate)
	}
}

// TestAutoscaleScaleDownLag measures the retire side: after the last
// burst, the realized plan must eventually return to the minimum width
// (the scale-down-lag study's invariant).
func TestAutoscaleScaleDownLag(t *testing.T) {
	m := model.BERTBase()
	plan := elastic(m, burstStream(m, 8000, 65), RoundRobin).Scale
	if plan.Downs() == 0 {
		t.Fatal("plan never scales down after bursts")
	}
	min := plan.Start
	for _, step := range plan.Steps {
		if step.Replicas < min {
			min = step.Replicas
		}
	}
	if min != 1 {
		t.Fatalf("plan never returned to min width: floor %d, want 1", min)
	}
}

// TestAutoscaleScalesUpDuringOutage is the capacity-accounting
// regression for fault injection: a crashed replica must not count as
// capacity. A smooth fixed-rate load comfortable for two replicas
// triggers no scaling on a reliable cluster; with one replica crashed
// for a long window, the survivor overloads and the scaler — whose
// utilization signal is computed over live replicas only — must add
// capacity during the outage.
func TestAutoscaleScalesUpDuringOutage(t *testing.T) {
	m := model.ResNet50()
	const crashAt, down = 3000.0, 9000.0
	run := func(spec string) *ClusterStats {
		// 160 fps: comfortable across two replicas (the reliable run
		// below realizes zero scaling actions), well beyond one.
		s := workload.Video(0, 12000, 160, 68)
		var fs *faults.Spec
		if spec != "" {
			var err error
			if fs, err = faults.Parse(spec); err != nil {
				t.Fatal(err)
			}
		}
		return RunCluster(s, func(int) Handler { return &VanillaHandler{Model: m} }, ClusterOptions{
			Options:   Options{Platform: Clockwork, SLOms: m.SLO()},
			Dispatch:  RoundRobin,
			Autoscale: &autoscale.Config{Min: 2, Max: 4},
			Faults:    fs,
			FaultSeed: 13,
		})
	}
	reliable := run("")
	if ups := reliable.Scale.Ups(); ups != 0 {
		t.Fatalf("reliable cluster scaled up %d times under a comfortable load", ups)
	}
	faulty := run("crash:r1@3000+9000")
	upDuringOutage := false
	for _, step := range faulty.Scale.Steps {
		if step.Replicas > 2 && step.AtMS >= crashAt && step.AtMS <= crashAt+down {
			upDuringOutage = true
		}
	}
	if !upDuringOutage {
		t.Fatalf("scaler never added capacity during the outage: plan %+v", faulty.Scale)
	}
}

// TestAutoscaleInheritsSLO checks the SLOms fallback from Options.
func TestAutoscaleInheritsSLO(t *testing.T) {
	m := model.BERTBase()
	s := burstStream(m, 4000, 66)
	opts := Options{Platform: Clockwork, SLOms: m.SLO()}
	cs := RunCluster(s, func(int) Handler { return &VanillaHandler{Model: m} }, ClusterOptions{
		Options: opts, Dispatch: RoundRobin,
		Autoscale: &autoscale.Config{Min: 1, Max: 3}, // SLOms zero: inherit
	})
	if cs.Scale == nil || cs.Scale.Peak() < 2 {
		t.Fatalf("inherited-SLO autoscaling never engaged: %+v", cs.Scale)
	}
}

// TestAutoscaleRetiredReplicaDrains pins the retire semantics: a
// replica dropped from the active set stops receiving arrivals but
// finishes the work already queued on it — nothing is lost or
// re-dispatched.
func TestAutoscaleRetiredReplicaDrains(t *testing.T) {
	m := model.BERTBase()
	s := burstStream(m, 8000, 67)
	perReplica := map[int]int{}
	cs := RunCluster(s, func(int) Handler { return &VanillaHandler{Model: m} }, ClusterOptions{
		Options:   Options{Platform: Clockwork, SLOms: m.SLO()},
		Dispatch:  RoundRobin,
		Autoscale: &autoscale.Config{Min: 1, Max: 4},
		ReplicaObserver: func(replica int, r Result) {
			perReplica[replica]++
		},
	})
	if cs.Scale.Downs() == 0 {
		t.Skip("no scale-down realized; nothing to check")
	}
	total := 0
	for i, st := range cs.PerReplica {
		if perReplica[i] != st.Total {
			t.Fatalf("replica %d observed %d results but recorded %d", i, perReplica[i], st.Total)
		}
		total += st.Total
	}
	if total != 8000 {
		t.Fatalf("replica totals sum to %d, want 8000", total)
	}
}
