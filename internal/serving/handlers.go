package serving

import (
	"repro/internal/controller"
	"repro/internal/exitsim"
	"repro/internal/model"
	"repro/internal/ramp"
)

// LatencyStable is an optional Handler capability: a handler whose
// BatchLatency is a pure function of the batch size — unaffected by
// anything Serve does — may report true. The conservative-lookahead
// sharded runtime requires it: the dispatcher shard freezes every
// replica's latency table at start of run and simulates the control
// plane against the frozen tables, which reproduces the serial decision
// sequence only if the real handlers' latencies cannot drift during the
// run. Handlers that adapt their worst case online (Apparate's ramp
// adjustment) must report false; handlers that do not implement the
// interface are treated as unstable.
type LatencyStable interface {
	LatencyStable() bool
}

// latencyStable reports whether h declares a Serve-independent
// BatchLatency.
func latencyStable(h Handler) bool {
	ls, ok := h.(LatencyStable)
	return ok && ls.LatencyStable()
}

// VanillaHandler serves the original model with no early exits.
type VanillaHandler struct {
	Model *model.Model
}

// BatchLatency returns the model's batch execution time.
func (h *VanillaHandler) BatchLatency(b int) float64 { return h.Model.Latency(b) }

// Serve runs the request to the end of the model.
func (h *VanillaHandler) Serve(s exitsim.Sample, b int) ramp.Outcome {
	return ramp.Outcome{ExitIndex: -1, ServeMS: h.Model.Latency(b), Correct: true}
}

// LatencyStable: the model's latency profile is immutable.
func (h *VanillaHandler) LatencyStable() bool { return true }

// ApparateHandler serves an EE-enabled model under Apparate's controller:
// results exit early, inputs run to completion, and every outcome feeds
// the controller's adaptation loops.
type ApparateHandler struct {
	Cfg *ramp.Config
	Ctl *controller.Controller
}

// NewApparate prepares a model with Apparate's default ramps (even
// spacing, zero thresholds) and attaches a controller.
func NewApparate(m *model.Model, profile exitsim.Profile, budgetFrac float64, ctlOpts controller.Config) *ApparateHandler {
	cfg := ramp.NewConfig(m, profile, budgetFrac)
	cfg.DeployInitial(ramp.StyleDefault)
	return &ApparateHandler{Cfg: cfg, Ctl: controller.New(cfg, ctlOpts)}
}

// BatchLatency is the worst case: full model plus all active ramps. The
// scheduler plans with it, which is how Apparate's tail-latency impact
// stays bounded by the ramp budget.
func (h *ApparateHandler) BatchLatency(b int) float64 { return h.Cfg.WorstCaseMS(b) }

// Serve evaluates the input against the EE configuration and feeds the
// controller.
func (h *ApparateHandler) Serve(s exitsim.Sample, b int) ramp.Outcome {
	out := h.Cfg.Evaluate(s, b)
	h.Ctl.Observe(out)
	return out
}

// LatencyStable: the worst case moves whenever ramp adjustment changes
// the active set, and ramp adjustment is driven by Serve outcomes — so
// the handler is stable only in the §4.5 ablation that disables it
// (threshold tuning still runs, but thresholds never touch WorstCaseMS).
func (h *ApparateHandler) LatencyStable() bool { return h.Ctl.Opts.DisableRampAdjust }

// StaticEEHandler serves a fixed early-exit configuration with no runtime
// adaptation — the behavior of existing EE models like BranchyNet and
// DeeBERT (§4.4). Thresholds are whatever the configuration carries.
type StaticEEHandler struct {
	Cfg *ramp.Config
}

// BatchLatency includes every always-on ramp.
func (h *StaticEEHandler) BatchLatency(b int) float64 { return h.Cfg.WorstCaseMS(b) }

// Serve evaluates the fixed configuration. With static EE models an exit
// truly halts execution, but the response latency is identical to
// Apparate's release-at-ramp semantics, so the same evaluation applies.
func (h *StaticEEHandler) Serve(s exitsim.Sample, b int) ramp.Outcome {
	return h.Cfg.Evaluate(s, b)
}

// LatencyStable: the configuration is fixed for the whole run.
func (h *StaticEEHandler) LatencyStable() bool { return true }
