package serving

import (
	"repro/internal/controller"
	"repro/internal/exitsim"
	"repro/internal/model"
	"repro/internal/ramp"
)

// VanillaHandler serves the original model with no early exits.
type VanillaHandler struct {
	Model *model.Model
}

// BatchLatency returns the model's batch execution time.
func (h *VanillaHandler) BatchLatency(b int) float64 { return h.Model.Latency(b) }

// Serve runs the request to the end of the model.
func (h *VanillaHandler) Serve(s exitsim.Sample, b int) ramp.Outcome {
	return ramp.Outcome{ExitIndex: -1, ServeMS: h.Model.Latency(b), Correct: true}
}

// ApparateHandler serves an EE-enabled model under Apparate's controller:
// results exit early, inputs run to completion, and every outcome feeds
// the controller's adaptation loops.
type ApparateHandler struct {
	Cfg *ramp.Config
	Ctl *controller.Controller
}

// NewApparate prepares a model with Apparate's default ramps (even
// spacing, zero thresholds) and attaches a controller.
func NewApparate(m *model.Model, profile exitsim.Profile, budgetFrac float64, ctlOpts controller.Config) *ApparateHandler {
	cfg := ramp.NewConfig(m, profile, budgetFrac)
	cfg.DeployInitial(ramp.StyleDefault)
	return &ApparateHandler{Cfg: cfg, Ctl: controller.New(cfg, ctlOpts)}
}

// BatchLatency is the worst case: full model plus all active ramps. The
// scheduler plans with it, which is how Apparate's tail-latency impact
// stays bounded by the ramp budget.
func (h *ApparateHandler) BatchLatency(b int) float64 { return h.Cfg.WorstCaseMS(b) }

// Serve evaluates the input against the EE configuration and feeds the
// controller.
func (h *ApparateHandler) Serve(s exitsim.Sample, b int) ramp.Outcome {
	out := h.Cfg.Evaluate(s, b)
	h.Ctl.Observe(out)
	return out
}

// StaticEEHandler serves a fixed early-exit configuration with no runtime
// adaptation — the behavior of existing EE models like BranchyNet and
// DeeBERT (§4.4). Thresholds are whatever the configuration carries.
type StaticEEHandler struct {
	Cfg *ramp.Config
}

// BatchLatency includes every always-on ramp.
func (h *StaticEEHandler) BatchLatency(b int) float64 { return h.Cfg.WorstCaseMS(b) }

// Serve evaluates the fixed configuration. With static EE models an exit
// truly halts execution, but the response latency is identical to
// Apparate's release-at-ramp semantics, so the same evaluation applies.
func (h *StaticEEHandler) Serve(s exitsim.Sample, b int) ramp.Outcome {
	return h.Cfg.Evaluate(s, b)
}
