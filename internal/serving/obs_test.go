package serving

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/autoscale"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/workload"
)

// terminalKinds are the events that finalize a request's fate exactly
// once: served, dropped by policy, or lost in transit.
func isTerminal(k obs.Kind) bool {
	return k == obs.KindComplete || k == obs.KindDrop || k == obs.KindLost
}

// TestTraceOutagePairsMatchUnavailMS pins the reconciliation contract:
// a faulty run's trace contains matching outage_start/outage_end pairs
// whose summed duration equals FaultStats.UnavailMS exactly — including
// a window still open at the end of the run, which finish clips.
func TestTraceOutagePairsMatchUnavailMS(t *testing.T) {
	m := model.ResNet50()
	tr := obs.NewTracer()
	// Both replicas down over [1000,1400]: a total outage of 400ms.
	cs := faultCluster(m, 2000, 2, 60, 71, 4, ClusterOptions{
		Dispatch: RoundRobin,
		Faults:   mustFaults(t, "crash:r0@1000+500;crash:r1@900+500"),
		Options:  Options{Trace: tr},
	})
	if cs.Faults == nil || cs.Faults.UnavailMS <= 0 {
		t.Fatalf("scenario did not produce an outage: %+v", cs.Faults)
	}
	open := math.NaN()
	sum := 0.0
	pairs := 0
	for _, e := range tr.Events {
		switch e.Kind {
		case obs.KindOutageStart:
			if !math.IsNaN(open) {
				t.Fatalf("outage_start at %g with window already open at %g", e.TMS, open)
			}
			open = e.TMS
		case obs.KindOutageEnd:
			if math.IsNaN(open) {
				t.Fatalf("outage_end at %g without an open window", e.TMS)
			}
			if got := e.TMS - open; got != e.DurMS {
				t.Fatalf("outage_end dur %g != window span %g", e.DurMS, got)
			}
			sum += e.DurMS
			pairs++
			open = math.NaN()
		}
	}
	if !math.IsNaN(open) {
		t.Fatal("trace ends with an unmatched outage_start")
	}
	if pairs == 0 {
		t.Fatal("no outage pairs traced")
	}
	if sum != cs.Faults.UnavailMS {
		t.Fatalf("traced outage durations sum to %g, UnavailMS = %g", sum, cs.Faults.UnavailMS)
	}
}

// TestTraceCompletenessUnderFaults checks every arrival resolves exactly
// once in the trace, even through crashes, retries, and hedges.
func TestTraceCompletenessUnderFaults(t *testing.T) {
	m := model.ResNet50()
	tr := obs.NewTracer()
	cs := faultCluster(m, 3000, 3, 90, 77, 4, ClusterOptions{
		Dispatch: LeastLoaded,
		Faults:   mustFaults(t, "mtbf:800/200;loss=0.05"),
		Retry:    mustRetry(t, "attempts=3"),
		Options:  Options{Trace: tr},
	})
	arrivals := 0
	terminal := map[int]int{}
	for _, e := range tr.Events {
		if e.Kind == obs.KindArrive {
			arrivals++
		}
		if isTerminal(e.Kind) {
			terminal[e.Req]++
		}
	}
	if arrivals != 3000 {
		t.Fatalf("traced %d arrivals, want 3000", arrivals)
	}
	if len(terminal) != 3000 {
		t.Fatalf("%d requests reached a terminal event, want 3000", len(terminal))
	}
	for id, n := range terminal {
		if n != 1 {
			t.Fatalf("request %d has %d terminal events, want 1", id, n)
		}
	}
	if cs.Merged.Total != 3000 {
		t.Fatalf("Merged.Total = %d, want 3000", cs.Merged.Total)
	}
}

// TestTracingDoesNotChangeResults pins the zero-perturbation contract:
// attaching a tracer and a timeline must not change any simulation
// outcome, on reliable, faulty, and autoscaled runs alike.
func TestTracingDoesNotChangeResults(t *testing.T) {
	m := model.ResNet50()
	cases := []struct {
		name string
		opts func() ClusterOptions
	}{
		{"reliable", func() ClusterOptions { return ClusterOptions{Dispatch: LeastLoaded} }},
		{"faulty", func() ClusterOptions {
			return ClusterOptions{
				Dispatch: RoundRobin,
				Faults:   mustFaults(t, "mtbf:900/150;loss=0.03"),
				Retry:    mustRetry(t, "attempts=2/hedge=95"),
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plain := faultCluster(m, 2500, 2, 75, 73, 4, tc.opts())
			traced := tc.opts()
			traced.Options.Trace = obs.NewTracer()
			traced.Options.Timeline = obs.NewTimeline(100, m.SLO())
			obsd := faultCluster(m, 2500, 2, 75, 73, 4, traced)
			if plain.Merged.Total != obsd.Merged.Total ||
				plain.Merged.Delivered != obsd.Merged.Delivered ||
				plain.Merged.Drops != obsd.Merged.Drops ||
				plain.Merged.Lost != obsd.Merged.Lost ||
				plain.Merged.SLOMisses != obsd.Merged.SLOMisses {
				t.Fatalf("tracing changed outcomes: %+v vs %+v", plain.Merged, obsd.Merged)
			}
			if plain.Merged.Lat.Percentile(99) != obsd.Merged.Lat.Percentile(99) {
				t.Fatal("tracing changed the latency distribution")
			}
			if (plain.Faults == nil) != (obsd.Faults == nil) {
				t.Fatal("tracing changed fault-mode activation")
			}
			if plain.Faults != nil && (plain.Faults.UnavailMS != obsd.Faults.UnavailMS ||
				plain.Faults.Crashes != obsd.Faults.Crashes ||
				plain.Faults.Lost != obsd.Faults.Lost) {
				t.Fatalf("tracing changed fault stats: %+v vs %+v", plain.Faults, obsd.Faults)
			}
		})
	}
}

// TestTraceDeterministicAcrossRuns pins byte-identity of the sinks: two
// identical runs must produce identical JSONL, Chrome, and timeline CSV
// bytes.
func TestTraceDeterministicAcrossRuns(t *testing.T) {
	m := model.ResNet50()
	run := func() (*obs.Tracer, *obs.Timeline) {
		tr := obs.NewTracer()
		tl := obs.NewTimeline(100, m.SLO())
		faultCluster(m, 2000, 2, 60, 79, 4, ClusterOptions{
			Dispatch: RoundRobin,
			Faults:   mustFaults(t, "crash:r0@500+300;loss=0.02"),
			Retry:    mustRetry(t, "attempts=2"),
			Options:  Options{Trace: tr, Timeline: tl},
		})
		return tr, tl
	}
	tr1, tl1 := run()
	tr2, tl2 := run()
	var j1, j2, c1, c2, t1, t2 bytes.Buffer
	for _, p := range []struct {
		tr *obs.Tracer
		tl *obs.Timeline
		j  *bytes.Buffer
		c  *bytes.Buffer
		t  *bytes.Buffer
	}{{tr1, tl1, &j1, &c1, &t1}, {tr2, tl2, &j2, &c2, &t2}} {
		if err := p.tr.WriteJSONL(p.j); err != nil {
			t.Fatal(err)
		}
		if err := p.tr.WriteChrome(p.c); err != nil {
			t.Fatal(err)
		}
		if err := p.tl.WriteCSV(p.t); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Error("JSONL trace differs between identical runs")
	}
	if !bytes.Equal(c1.Bytes(), c2.Bytes()) {
		t.Error("Chrome trace differs between identical runs")
	}
	if !bytes.Equal(t1.Bytes(), t2.Bytes()) {
		t.Error("timeline CSV differs between identical runs")
	}
	if tr1.Len() == 0 || len(tl1.Rows) == 0 {
		t.Fatalf("empty observability output: %d events, %d rows", tr1.Len(), len(tl1.Rows))
	}
}

// TestAutoscaleTraceRecordsScaleDecisions checks scale_up/scale_down
// events mirror the realized plan exactly.
func TestAutoscaleTraceRecordsScaleDecisions(t *testing.T) {
	m := model.ResNet50()
	tr := obs.NewTracer()
	s := workload.Video(0, 4000, 150, 83)
	cs := RunCluster(s, func(int) Handler { return &VanillaHandler{Model: m} }, ClusterOptions{
		Dispatch:  LeastLoaded,
		Autoscale: &autoscale.Config{Min: 1, Max: 4},
		Options:   Options{Platform: Clockwork, SLOms: m.SLO(), Trace: tr},
	})
	if cs.Scale == nil || len(cs.Scale.Steps) == 0 {
		t.Skip("scenario produced no scaling steps")
	}
	var steps []obs.Event
	for _, e := range tr.Events {
		if e.Kind == obs.KindScaleUp || e.Kind == obs.KindScaleDown {
			steps = append(steps, e)
		}
	}
	if len(steps) != len(cs.Scale.Steps) {
		t.Fatalf("traced %d scale events, plan has %d steps", len(steps), len(cs.Scale.Steps))
	}
	for i, st := range cs.Scale.Steps {
		if steps[i].TMS != st.AtMS || steps[i].Val != st.Replicas {
			t.Fatalf("scale event %d = (%g, %d), plan step = (%g, %d)",
				i, steps[i].TMS, steps[i].Val, st.AtMS, st.Replicas)
		}
	}
}

// TestSingleReplicaRunTrace exercises the Run (non-cluster) path: every
// request arrives and terminates exactly once, and the timeline rows
// cover the run.
func TestSingleReplicaRunTrace(t *testing.T) {
	m := model.ResNet50()
	tr := obs.NewTracer()
	tl := obs.NewTimeline(100, m.SLO())
	s := workload.Video(0, 1000, 40, 87)
	st := Run(s.Iter(), &VanillaHandler{Model: m}, Options{
		Platform: Clockwork, SLOms: m.SLO(), Trace: tr, Timeline: tl,
	})
	arrivals, terminals := 0, 0
	for _, e := range tr.Events {
		if e.Kind == obs.KindArrive {
			arrivals++
		}
		if isTerminal(e.Kind) {
			terminals++
		}
	}
	if arrivals != 1000 || terminals != 1000 {
		t.Fatalf("traced %d arrivals / %d terminals, want 1000/1000", arrivals, terminals)
	}
	if st.Total != 1000 {
		t.Fatalf("Total = %d, want 1000", st.Total)
	}
	if len(tl.Rows) == 0 {
		t.Fatal("timeline emitted no rows")
	}
	if tl.Rows[0].TMS != 0 {
		t.Fatalf("first timeline row at %g, want 0", tl.Rows[0].TMS)
	}
	done := 0
	for _, r := range tl.Rows {
		done += r.WinDone
	}
	if done != st.Delivered {
		t.Fatalf("timeline windows saw %d completions, Stats.Delivered = %d", done, st.Delivered)
	}
}
