package serving

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/workload"
)

// Dispatch selects how a cluster front-end spreads requests over
// replicas.
type Dispatch int

// Dispatch policies.
const (
	// RoundRobin cycles replicas in arrival order.
	RoundRobin Dispatch = iota
	// LeastLoaded sends each arrival to the replica with the least
	// outstanding estimated work (join-shortest-queue).
	LeastLoaded
)

// String returns the policy name.
func (d Dispatch) String() string {
	switch d {
	case RoundRobin:
		return "round-robin"
	case LeastLoaded:
		return "least-loaded"
	}
	return fmt.Sprintf("Dispatch(%d)", int(d))
}

// Dispatches lists the supported dispatch policy names in canonical
// order.
func Dispatches() []string { return []string{"round-robin", "least-loaded"} }

// ParseDispatch maps a policy name to its Dispatch value.
func ParseDispatch(name string) (Dispatch, error) {
	switch name {
	case "round-robin":
		return RoundRobin, nil
	case "least-loaded":
		return LeastLoaded, nil
	}
	return 0, fmt.Errorf("serving: unknown dispatch policy %q (want round-robin | least-loaded)", name)
}

// ClusterOptions configures a multi-replica run. The paper's platforms
// scale models across replicas decided by the serving platform, and
// Apparate attaches one controller per replica (§3, implementation
// details) — so each replica gets its own Handler and adapts to the
// slice of traffic it sees.
type ClusterOptions struct {
	Options
	Replicas int
	Dispatch Dispatch
	// ReplicaObserver, when non-nil, receives every per-request Result
	// tagged with the replica that served it (Options.Observer fires
	// too, untagged).
	ReplicaObserver func(replica int, r Result)
}

// ClusterStats aggregates a cluster run.
type ClusterStats struct {
	PerReplica []*Stats
	// Merged aggregates every request's outcome across replicas:
	// summed counts, merged latency recorders, cluster-wide rates.
	Merged *Stats
}

// dispatchFilter replays the deterministic dispatch decision over a
// stream pass and yields only the requests assigned to one replica. The
// per-request assignment depends solely on arrival order (round-robin)
// or on the deterministic backlog estimate (least-loaded), so every
// replica's pass over a fresh iterator reproduces the same split — the
// streaming equivalent of materializing per-replica sub-slices, at O(1)
// memory per pass.
type dispatchFilter struct {
	src     *workload.Iter
	replica int
	opts    ClusterOptions
	estCost []float64 // per-replica batch-1 latency estimate (least-loaded)
	horizon []float64
	i       int
}

func (f *dispatchFilter) Next() (workload.Request, bool) {
	for {
		r, ok := f.src.Next()
		if !ok {
			return workload.Request{}, false
		}
		var target int
		switch f.opts.Dispatch {
		case RoundRobin:
			target = f.i % f.opts.Replicas
		case LeastLoaded:
			// Track each replica's estimated work horizon: the time its
			// already-assigned requests will keep it busy, assuming
			// batch-1 service (a conservative, handler-agnostic
			// estimate).
			best := 0
			for j := 1; j < f.opts.Replicas; j++ {
				if backlog(f.horizon[j], r.ArrivalMS) < backlog(f.horizon[best], r.ArrivalMS) {
					best = j
				}
			}
			start := r.ArrivalMS
			if f.horizon[best] > start {
				start = f.horizon[best]
			}
			f.horizon[best] = start + f.estCost[best]
			target = best
		}
		f.i++
		if target == f.replica {
			return r, true
		}
	}
}

// RunCluster simulates the request stream over a pool of replicas.
// makeHandler builds the handler for replica i (a fresh Apparate
// controller per replica, or shared-nothing vanilla handlers). Each
// replica streams its slice of the trace through its own pass of the
// dispatch decision, so the cluster simulator, like the single-replica
// one, holds no per-request state.
func RunCluster(stream *workload.Stream, makeHandler func(i int) Handler, opts ClusterOptions) *ClusterStats {
	if opts.Replicas <= 0 {
		panic("serving: RunCluster needs at least one replica")
	}
	// Least-loaded needs per-replica service-time estimates for its
	// backlog model. The estimate handlers are used only at dispatch
	// time; fresh handlers serve the actual sub-streams below.
	var estCost []float64
	if opts.Dispatch == LeastLoaded {
		estCost = make([]float64, opts.Replicas)
		for i := range estCost {
			estCost[i] = makeHandler(i).BatchLatency(1)
		}
	}

	cs := &ClusterStats{PerReplica: make([]*Stats, opts.Replicas)}
	merged := &Stats{Lat: metrics.NewRecorder(opts.Metrics, 4096)}
	for i := 0; i < opts.Replicas; i++ {
		ropts := opts.Options
		if opts.ReplicaObserver != nil {
			replica, inner := i, opts.Observer
			ropts.Observer = func(r Result) {
				if inner != nil {
					inner(r)
				}
				opts.ReplicaObserver(replica, r)
			}
		}
		src := &dispatchFilter{
			src:     stream.Iter(),
			replica: i,
			opts:    opts,
			estCost: estCost,
			horizon: make([]float64, opts.Replicas),
		}
		st := Run(src, makeHandler(i), ropts)
		cs.PerReplica[i] = st
		mergeStats(merged, st)
	}
	merged.finalize()
	// AvgBatch averages the per-replica batch means, matching the
	// single-replica definition per slice.
	var batches metrics.Counter
	for _, st := range cs.PerReplica {
		batches.Add(st.AvgBatch)
	}
	merged.AvgBatch = batches.Mean()
	cs.Merged = merged
	return cs
}

// mergeStats folds one replica's aggregates into the cluster totals.
func mergeStats(dst, src *Stats) {
	dst.Total += src.Total
	dst.Delivered += src.Delivered
	dst.Drops += src.Drops
	dst.SLOMisses += src.SLOMisses
	dst.Correct += src.Correct
	dst.Exits += src.Exits
	if src.Lat.Len() > 0 {
		dst.Lat.Merge(src.Lat)
	}
	if src.sawArrival && (!dst.sawArrival || src.FirstArrivalMS < dst.FirstArrivalMS) {
		dst.FirstArrivalMS = src.FirstArrivalMS
		dst.sawArrival = true
	}
	if src.LastDoneMS > dst.LastDoneMS {
		dst.LastDoneMS = src.LastDoneMS
	}
}

func backlog(horizon, now float64) float64 {
	if horizon < now {
		return 0
	}
	return horizon - now
}
