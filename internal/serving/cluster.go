package serving

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"

	"repro/internal/autoscale"
	"repro/internal/engine"
	"repro/internal/exitsim"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/ramp"
	"repro/internal/workload"
)

// Dispatch selects how a cluster front-end spreads requests over
// replicas. Every policy is exact: it reads the replicas' true
// simulated state — queue depth and in-flight work — at the arrival
// instant, not a backlog estimate. Ties always break to the lowest
// replica index, so a burst of simultaneous arrivals against idle
// replicas spreads deterministically as 0, 1, 2, ...
type Dispatch int

// Dispatch policies.
const (
	// RoundRobin cycles the active replicas in arrival order.
	RoundRobin Dispatch = iota
	// LeastLoaded sends each arrival to the replica with the least
	// outstanding estimated work in milliseconds: the remaining
	// execution time of its in-flight batch plus batch-1 service for
	// every queued request. Ties break to the lowest replica index.
	LeastLoaded
	// JoinShortestQueue sends each arrival to the replica with the
	// fewest requests in its system (queued + in-flight) — true JSQ,
	// which only an exact-queue-state simulator can express. Ties break
	// to the lowest replica index.
	JoinShortestQueue
)

// String returns the policy name.
func (d Dispatch) String() string {
	switch d {
	case RoundRobin:
		return "round-robin"
	case LeastLoaded:
		return "least-loaded"
	case JoinShortestQueue:
		return "join-shortest-queue"
	}
	return fmt.Sprintf("Dispatch(%d)", int(d))
}

// Dispatches lists the supported dispatch policy names in canonical
// order.
func Dispatches() []string {
	return []string{"round-robin", "least-loaded", "join-shortest-queue"}
}

// ParseDispatch maps a policy name to its Dispatch value.
func ParseDispatch(name string) (Dispatch, error) {
	switch name {
	case "round-robin":
		return RoundRobin, nil
	case "least-loaded":
		return LeastLoaded, nil
	case "join-shortest-queue":
		return JoinShortestQueue, nil
	}
	return 0, fmt.Errorf("serving: unknown dispatch policy %q (want round-robin | least-loaded | join-shortest-queue)", name)
}

// ParseSpeeds parses a replica-heterogeneity spec: comma-separated
// positive speed factors cycled over replica indexes ("1,0.5" makes
// every odd replica half as fast). The empty spec returns nil — a
// homogeneous cluster.
func ParseSpeeds(spec string) ([]float64, error) {
	if spec == "" {
		return nil, nil
	}
	parts := strings.Split(spec, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("serving: hetero speed %q: %v", p, err)
		}
		// !(v > 0) also rejects NaN, which compares false to everything.
		if !(v > 0) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("serving: hetero speed %g must be positive and finite", v)
		}
		out = append(out, v)
	}
	return out, nil
}

// FormatSpeeds renders a speed set in the canonical spec form ParseSpeeds
// accepts.
func FormatSpeeds(speeds []float64) string {
	parts := make([]string, len(speeds))
	for i, v := range speeds {
		parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}

// ClusterOptions configures a multi-replica run. The paper's platforms
// scale models across replicas decided by the serving platform, and
// Apparate attaches one controller per replica (§3, implementation
// details) — so each replica gets its own Handler and adapts to the
// slice of traffic it sees.
type ClusterOptions struct {
	Options
	Replicas int
	Dispatch Dispatch
	// Speeds, when non-empty, makes the cluster heterogeneous:
	// Speeds[i % len(Speeds)] is replica i's service-speed factor (2.0
	// executes batches twice as fast as the handler's nominal profile).
	// Dispatch policies and autoscale signals see the scaled service
	// times, so least-loaded naturally prefers the faster replicas.
	Speeds []float64
	// Autoscale, when non-nil, replaces the fixed Replicas count with a
	// reactive replica autoscaler consulted online on the event loop:
	// windowed backlog/latency signals computed from the live cluster
	// state drive the scaler, and its decisions take effect for every
	// later arrival. Replicas is ignored; the run starts at
	// Autoscale.Min and never exceeds Autoscale.Max. A zero
	// Autoscale.SLOms inherits Options.SLOms.
	Autoscale *autoscale.Config
	// Faults, when non-nil and non-empty, injects the deterministic
	// fault model into the run: replica crash/restart schedules,
	// dispatcher→replica network delays, and transit loss, all realized
	// as events on the shared engine clock. A crashed replica's queue is
	// requeued to the dispatcher, dispatch excludes down replicas, and
	// ClusterStats.Faults reports the availability outcome.
	Faults *faults.Spec
	// Retry is the dispatcher's retry/hedging policy (zero value =
	// dispatch each request exactly once, pre-fault behavior). It is
	// meaningful with or without Faults: hedging also covers plain slow
	// queues.
	Retry faults.Retry
	// FaultSeed seeds the dedicated fault rng streams (derived through
	// rng.Labeled, so fault draws never perturb the workload's own
	// stream). Typically the scenario seed; only read when Faults or
	// Retry are active.
	FaultSeed uint64
	// ReplicaObserver, when non-nil, receives every per-request Result
	// tagged with the replica that served it (Options.Observer fires
	// too, untagged). Results that never reached a replica (Lost) fire
	// Options.Observer only.
	ReplicaObserver func(replica int, r Result)
	// Shards, when > 1, runs the scenario's replica groups on that many
	// independent engine loops in parallel, merged deterministically so
	// the output is byte-identical to the serial run. Two parallel modes
	// exist: round-robin clusters decouple completely (each shard
	// replays the arrival stream and keeps its own targets), and
	// queue-state dispatch (least-loaded / join-shortest-queue) over
	// latency-stable handlers runs under a conservative-lookahead
	// dispatcher shard that reproduces the serial decision sequence
	// exactly. Every other configuration — autoscale, faults, retry,
	// observability sinks, or handlers that adapt their latency online
	// — runs serial, and ClusterStats.ShardMode reports which path ran,
	// so Shards never changes results — it only changes wall-clock.
	Shards int
}

// ClusterStats aggregates a cluster run.
type ClusterStats struct {
	PerReplica []*Stats
	// Merged aggregates every request's outcome across replicas:
	// summed counts, merged latency recorders, cluster-wide rates.
	Merged *Stats
	// Scale is the realized autoscaling plan (nil for fixed-replica
	// runs).
	Scale *autoscale.Plan
	// Faults reports availability under the injected fault model (nil
	// when the run had no fault mode active).
	Faults *FaultStats
	// ShardMode reports how the run actually executed, so a silent
	// serial fallback is distinguishable from a sharded run: "serial"
	// (Shards <= 1), "replay:N" (round-robin decoupled shards),
	// "lookahead:N" (conservative-lookahead dispatcher + N worker
	// shards), or "serial:<reason>" when Shards > 1 fell back —
	// "serial:autoscale", "serial:faults", "serial:retry", "serial:obs",
	// "serial:single-replica", "serial:adaptive-handler".
	ShardMode string
}

// Event classes on the shared engine loop. Arrivals rank before replica
// wakes at the same instant, so every request that has arrived by time
// t is enqueued before any replica forms a batch at t — the event-heap
// form of the single-replica simulator's "admit everything that has
// arrived by now" loop.
const (
	classArrival engine.Class = iota
	classWake
	// classFault ranks crash/restart transitions after same-instant
	// arrivals and wakes, and classTimeout ranks loss-detection timeouts
	// and hedge deadlines last. Both are new classes appended after the
	// pre-fault ones, so the same-instant pop order — and with it every
	// byte-identity pin — of fault-free runs is unchanged.
	classFault
	classTimeout
)

// scaledHandler wraps a Handler with a service-speed factor — the
// heterogeneity hook. BatchLatency and the outcome's release offset
// both scale, so scheduling decisions and response latencies agree.
type scaledHandler struct {
	Handler
	speed float64
}

func (h *scaledHandler) BatchLatency(b int) float64 {
	return h.Handler.BatchLatency(b) / h.speed
}

func (h *scaledHandler) Serve(s exitsim.Sample, b int) ramp.Outcome {
	out := h.Handler.Serve(s, b)
	out.ServeMS /= h.speed
	return out
}

// LatencyStable delegates: scaling by a constant preserves stability.
func (h *scaledHandler) LatencyStable() bool { return latencyStable(h.Handler) }

// replicaSim is one replica on the shared event loop: its own handler,
// queue, GPU-busy horizon, and Stats. Batching policy decisions re-run
// the exact logic of the single-replica simulator (clockworkPick /
// tfservePick plus clockwork's catch-up hold), restructured as an
// event-driven state machine: enqueue on arrival, wake at batch
// completion / hold expiry / batch-timeout, re-evaluate the policy at
// each wake.
type replicaSim struct {
	c   *clusterSim
	idx int
	h   Handler
	// estCost is the replica's batch-1 service-time estimate, captured
	// at creation; dispatch backlog estimates and autoscale signals use
	// it.
	estCost float64
	st      *Stats
	opts    Options

	// queue[qhead:] is the live queue. Consumption advances qhead
	// instead of re-slicing the front off, which would strand the
	// array's spare capacity and force one allocation per admitted
	// request; onWake compacts the dead prefix back to the front once
	// it outgrows the live tail, so memory stays O(peak queue) and
	// steady-state admission is allocation-free.
	queue     []workload.Request
	qhead     int
	busyUntil float64
	inflight  int
	// down marks a crashed replica (fault injection only): it receives
	// no dispatches and forms no batches until its restart event. The
	// batch in flight at crash time has already committed — the
	// simulator treats batch execution as atomic — but everything queued
	// is requeued to the dispatcher.
	down bool
	// wakeAt is the earliest pending wake (+Inf when none); used to
	// dedup wake events so a hold or timeout wait schedules one event,
	// not one per evaluation.
	wakeAt float64
	// recordFn caches the record method value so batch picking does not
	// allocate a closure per batch.
	recordFn func(Result)
}

// q returns the live queued requests.
func (r *replicaSim) q() []workload.Request { return r.queue[r.qhead:] }

// qlen is the live queue depth.
func (r *replicaSim) qlen() int { return len(r.queue) - r.qhead }

// record routes one copy's outcome: straight into the replica's Stats,
// or — under fault injection — through the dispatcher's arbiter, which
// discards duplicate copies and decides whether a drop is final.
func (r *replicaSim) record(res Result) {
	if r.c.fm != nil {
		r.c.fm.complete(r, res)
		return
	}
	r.st.record(res, r.opts.Observer)
	r.c.observeResult(res, r.idx)
}

// observeResult traces one finalized result on replica idx's track and
// feeds the timeline's rolling window. Fault-mode callers invoke it only
// for the copy that won (or finally lost) its request, so duplicated
// hedge work never double-counts in the trace either.
func (c *clusterSim) observeResult(res Result, idx int) {
	if c.tr != nil {
		if res.Dropped {
			e := obs.At(c.loop.Now(), obs.KindDrop)
			e.Req = res.ID
			e.Replica = idx
			c.tr.Emit(e)
		} else {
			e := obs.At(res.ArrivalMS+res.LatencyMS, obs.KindComplete)
			e.Req = res.ID
			e.Replica = idx
			e.Batch = res.BatchSize
			e.LatMS = res.LatencyMS
			c.tr.Emit(e)
		}
	}
	if c.tl != nil && !res.Dropped {
		c.tl.Observe(res.LatencyMS, res.SLOMiss)
	}
}

// enqueue admits one dispatched arrival at time now.
func (r *replicaSim) enqueue(req workload.Request, now float64) {
	r.st.noteArrival(req)
	if r.opts.Platform == TFServe && r.qlen() >= r.opts.QueueCap {
		if r.c.fm != nil {
			// Queue overflow under fault mode: the dispatcher may retry
			// the rejected copy on another replica.
			r.c.fm.reject(r, req, now)
			return
		}
		r.record(Result{
			ID: req.ID, ArrivalMS: req.ArrivalMS,
			Dropped: true, SLOMiss: true, ExitIndex: -1,
		})
		return
	}
	// Appends only ever extend the array (no compaction here): a batch
	// being served aliases the region before qhead, and fault-mode
	// completions can re-enter enqueue mid-batch, so moving live
	// entries is only safe at wake time.
	r.queue = append(r.queue, req)
	if tr := r.c.tr; tr != nil {
		e := obs.At(now, obs.KindEnqueue)
		e.Req = req.ID
		e.Replica = r.idx
		e.Val = r.qlen()
		tr.Emit(e)
	}
	if r.busyUntil < now {
		// Idle (no completion wake pending): evaluate at this instant.
		// busyUntil == now means the completion wake at now is still
		// pending and will evaluate after all of now's arrivals.
		r.scheduleWake(now)
	}
}

// scheduleWake requests a policy evaluation at time at, deduplicating
// against an earlier-or-equal pending wake (whose evaluation will
// reschedule whatever is still needed).
func (r *replicaSim) scheduleWake(at float64) {
	if r.wakeAt <= at {
		return
	}
	r.wakeAt = at
	r.c.loop.Schedule(at, classWake, r, 0, 0)
}

// OnEvent dispatches the replica's engine events; replicas are their
// own pre-bound handlers (wakes are their only event kind), so
// scheduling a wake never allocates.
func (r *replicaSim) OnEvent(now float64, _ uint8, _ uint64) { r.onWake(now) }

// onWake re-evaluates the batching policy at time now. Wakes are
// idempotent: a stale wake observing a busy GPU (a batch formed since
// it was scheduled) is ignored, and re-evaluating an unchanged state
// reaches the same decision.
func (r *replicaSim) onWake(now float64) {
	if now >= r.wakeAt {
		r.wakeAt = math.Inf(1)
	}
	if r.down {
		return // crashed: the restart (and later dispatches) resume us
	}
	if r.busyUntil > now {
		return // serving; the completion wake re-evaluates
	}
	r.inflight = 0
	if r.qlen() == 0 {
		if r.qhead > 0 {
			// Empty: rewind to the front so appends reuse the capacity.
			r.queue, r.qhead = r.queue[:0], 0
		}
		return
	}
	// No batch aliases the dead prefix at wake time, so this is the one
	// safe place to reclaim it; compacting only once the prefix
	// outgrows the live tail keeps the copy cost amortized O(1).
	if r.qhead > r.qlen() {
		n := copy(r.queue, r.queue[r.qhead:])
		r.queue, r.qhead = r.queue[:n], 0
	}
	switch r.opts.Platform {
	case Clockwork:
		batch, rest := clockworkPick(r.q(), r.recordFn, now, r.h, r.opts)
		r.qhead = len(r.queue) - len(rest)
		if batch == nil {
			return // everything queued was hopeless and dropped
		}
		// Catch-up batching: when the backlog is real (the oldest
		// request has burned a quarter of its SLO) and the batch took
		// the whole queue, briefly holding the GPU for an imminent
		// arrival forms a larger batch whose amortization drains the
		// backlog (§2.1). The hold is admitted only while serving the
		// grown batch would still meet the oldest request's SLO; the
		// next arrival re-triggers this evaluation, growing the batch
		// one admission at a time exactly like the single-replica
		// simulator's catch-up loop.
		if len(rest) == 0 && len(batch) < r.opts.MaxBatch {
			oldestWait := now - batch[0].ArrivalMS
			if oldestWait > 0.25*r.opts.SLOms {
				if tNext, ok := r.c.nextArrival(); ok {
					hold := tNext - now
					if hold < 0 {
						hold = 0
					}
					if oldestWait+hold+r.h.BatchLatency(len(batch)+1) <= r.opts.SLOms {
						// Hold: put the batch back. It is the tail of the
						// array (rest was empty), so rewinding qhead
						// restores it in place.
						r.qhead = len(r.queue) - len(batch)
						r.scheduleWake(tNext)
						return
					}
				}
			}
		}
		r.serve(batch, now)
	case TFServe:
		tNext, more := r.c.nextArrival()
		batch, rest, _ := tfservePick(r.q(), now, more, tNext, r.opts)
		if batch == nil {
			// Waiting: wake at the head's batch-timeout deadline or the
			// next arrival, whichever comes first.
			at := r.q()[0].ArrivalMS + r.opts.BatchTimeoutMS
			if more && tNext < at {
				at = tNext
			}
			if at < now {
				at = now
			}
			r.scheduleWake(at)
			return
		}
		r.qhead = len(r.queue) - len(rest)
		r.serve(batch, now)
	}
}

// serve executes one batch starting at now and schedules the completion
// wake.
func (r *replicaSim) serve(batch []workload.Request, now float64) {
	b := len(batch)
	dur := r.h.BatchLatency(b)
	r.st.batches.Add(float64(b))
	if tr := r.c.tr; tr != nil {
		e := obs.At(now, obs.KindServeStart)
		e.Replica = r.idx
		e.Batch = b
		e.DurMS = dur
		tr.Emit(e)
	}
	for _, req := range batch {
		out := r.h.Serve(req.Sample, b)
		lat := now + out.ServeMS - req.ArrivalMS
		r.record(Result{
			ID:        req.ID,
			ArrivalMS: req.ArrivalMS,
			LatencyMS: lat,
			ServeMS:   out.ServeMS,
			BatchSize: b,
			ExitIndex: out.ExitIndex,
			Correct:   out.Correct,
			SLOMiss:   lat > r.opts.SLOms,
		})
	}
	r.inflight = b
	r.busyUntil = now + dur
	r.scheduleWake(r.busyUntil)
}

// work is the replica's outstanding estimated work at time now in
// milliseconds: the remaining execution of the in-flight batch plus the
// estimated drain time of its queue under maximal batching — the
// least-loaded signal. Using the batched drain time (not queue length ×
// batch-1 cost) matters: batches amortize, so a replica with six queued
// requests that form one batch is far less loaded than six serialized
// requests would suggest.
func (r *replicaSim) work(now float64) float64 {
	w := r.busyUntil - now
	if w < 0 {
		w = 0
	}
	if n := r.qlen(); n > 0 {
		full := n / r.opts.MaxBatch
		if full > 0 {
			w += float64(full) * r.h.BatchLatency(r.opts.MaxBatch)
		}
		if rest := n % r.opts.MaxBatch; rest > 0 {
			w += r.h.BatchLatency(rest)
		}
	}
	return w
}

// jobs is the number of requests in the replica's system at time now
// (queued + in-flight) — the join-shortest-queue signal.
func (r *replicaSim) jobs(now float64) int {
	n := r.qlen()
	if r.busyUntil > now {
		n += r.inflight
	}
	return n
}

// clusterSim is the single-pass cluster runtime: one engine loop, one
// arrival source with a single request of lookahead, all replicas as
// event-driven processes on the shared clock, and the autoscaler
// consulted online at window boundaries.
type clusterSim struct {
	loop *engine.Loop
	opts ClusterOptions
	base Options // default-filled per-replica options (observer unset)

	it   *workload.Iter
	next workload.Request
	has  bool

	mk func(i int) Handler
	// replicas[i] is replica i; in a sharded-mode worker the slice
	// still spans every global index but foreign replicas are nil — the
	// worker replays the full arrival stream (so the round-robin
	// counter and the one-request lookahead match the serial run
	// exactly) and simply skips enqueueing arrivals it does not own.
	replicas []*replicaSim
	active   int
	rr       int // round-robin arrival counter

	// asnPublish and asnNext are the conservative-lookahead dispatch
	// hooks (both nil outside lookahead-sharded runs, so the serial hot
	// path pays two predictable nil checks). The dispatcher shard
	// publishes every target it picks through asnPublish; worker shards
	// consume targets through asnNext instead of computing dispatch
	// locally, so every worker applies exactly the dispatcher's — and
	// therefore the serial run's — decision sequence.
	asnPublish func(int)
	asnNext    func() int

	// fm is the fault runtime (nil for reliable runs — every fault-mode
	// branch in the hot path is guarded on it, which is what keeps
	// fault-free runs byte-identical to the pre-fault simulator).
	fm *faultMode

	// tr and tl mirror base.Trace/base.Timeline (nil when observability
	// is off — every emission site is guarded on them, the same
	// zero-cost-when-off pattern fm uses).
	tr *obs.Tracer
	tl *obs.Timeline

	// Online autoscaling state (nil scaler for fixed-width runs).
	scaler      *autoscale.Scaler
	plan        *autoscale.Plan
	winEnd      float64
	winLat      *metrics.Sketch
	peakBacklog float64
	busy        float64

	// depthArena backs the QueueDepths slices handed to the timeline:
	// each gauge sample takes the next len(replicas) slots instead of
	// its own allocation. Retained rows keep old blocks alive; the
	// arena only ever appends, so handed-out slices never move.
	depthArena []int
	// snapAt and snapFn let the advance hook pass a pre-advance
	// snapshot instant to the timeline without allocating a closure per
	// clock step.
	snapAt float64
	snapFn func(float64) obs.Gauges
}

// OnEvent dispatches the cluster's engine events; the arrival source is
// its own pre-bound handler (arrivals are its only event kind), so
// scheduling the next arrival never allocates.
func (c *clusterSim) OnEvent(now float64, _ uint8, _ uint64) { c.onArrival(now) }

// Start schedules the first arrival; clusterSim is an engine.Process.
func (c *clusterSim) Start(l *engine.Loop) {
	if c.has {
		l.Schedule(c.next.ArrivalMS, classArrival, c, 0, 0)
	}
}

// nextArrival exposes the source's one-request lookahead: the arrival
// time of the next request not yet dispatched, if any. Replicas consult
// it for clockwork's catch-up hold and TF-Serving's batch-timeout wait
// — the same single request of future the single-replica simulator
// peeks at.
func (c *clusterSim) nextArrival() (float64, bool) {
	return c.next.ArrivalMS, c.has
}

// onArrival dispatches one request: close any elapsed autoscale
// windows (a scaling step at exactly winEnd applies to arrivals >=
// winEnd), pick the target replica from true queue state, enqueue, fold
// the arrival into the window signals, and schedule the next arrival.
func (c *clusterSim) onArrival(now float64) {
	req := c.next
	if r, ok := c.it.Next(); ok {
		c.next = r
	} else {
		c.next, c.has = workload.Request{}, false
	}

	if c.scaler != nil {
		for req.ArrivalMS >= c.winEnd {
			c.closeWindow()
		}
	}

	if c.tr != nil {
		e := obs.At(now, obs.KindArrive)
		e.Req = req.ID
		c.tr.Emit(e)
	}
	if c.fm != nil {
		c.fm.dispatchNew(req, now)
	} else if target := c.pickTarget(now); c.replicas[target] == nil {
		// Sharded-mode worker: another shard owns this arrival. In
		// replay mode the dispatch call above already advanced the
		// round-robin counter; in lookahead mode the assignment stream
		// consumed one decision. The stream cursor advances below —
		// that is all the global state a foreign arrival touches in
		// the serial run.
	} else {
		if c.tr != nil {
			e := obs.At(now, obs.KindDispatch)
			e.Req = req.ID
			e.Replica = target
			c.tr.Emit(e)
		}
		rep := c.replicas[target]
		if c.scaler != nil {
			wait := rep.work(now)
			c.winLat.Add(wait + rep.estCost)
			if wait > c.peakBacklog {
				c.peakBacklog = wait
			}
			c.busy += rep.estCost
		}
		rep.enqueue(req, now)
	}

	if c.has {
		c.loop.Schedule(c.next.ArrivalMS, classArrival, c, 0, 0)
	}
}

// pickTarget resolves one arrival's dispatch target: locally via the
// policy, or — in a lookahead-sharded worker — by consuming the
// dispatcher shard's published decision (the worker cannot compute
// queue-state dispatch itself, its foreign replicas are nil). The
// dispatcher side publishes what it picked so workers replay the
// identical sequence.
func (c *clusterSim) pickTarget(now float64) int {
	var target int
	if c.asnNext != nil {
		target = c.asnNext()
	} else {
		target = c.dispatch(now)
	}
	if c.asnPublish != nil {
		c.asnPublish(target)
	}
	return target
}

// dispatch picks the target among the active replicas at time now.
func (c *clusterSim) dispatch(now float64) int {
	target := 0
	switch c.opts.Dispatch {
	case RoundRobin:
		target = c.rr % c.active
	case LeastLoaded:
		best := c.replicas[0].work(now)
		for j := 1; j < c.active; j++ {
			if w := c.replicas[j].work(now); w < best {
				target, best = j, w
			}
		}
	case JoinShortestQueue:
		best := c.replicas[0].jobs(now)
		for j := 1; j < c.active; j++ {
			if n := c.replicas[j].jobs(now); n < best {
				target, best = j, n
			}
		}
	}
	c.rr++
	return target
}

// pickAmong selects the dispatch target among the given replica
// indexes (non-empty, ascending) under the cluster's dispatch policy;
// ties break to the lowest index exactly like dispatch. The fault
// runtime uses it to dispatch over the live (and not-yet-tried)
// subset; the round-robin counter advances once per call either way.
func (c *clusterSim) pickAmong(eligible []int, now float64) int {
	target := eligible[0]
	switch c.opts.Dispatch {
	case RoundRobin:
		target = eligible[c.rr%len(eligible)]
	case LeastLoaded:
		best := c.replicas[eligible[0]].work(now)
		for _, j := range eligible[1:] {
			if w := c.replicas[j].work(now); w < best {
				target, best = j, w
			}
		}
	case JoinShortestQueue:
		best := c.replicas[eligible[0]].jobs(now)
		for _, j := range eligible[1:] {
			if n := c.replicas[j].jobs(now); n < best {
				target, best = j, n
			}
		}
	}
	c.rr++
	return target
}

// closeWindow summarizes the elapsed signal window, feeds the scaler,
// and applies any replica-count change to subsequent dispatch.
func (c *clusterSim) closeWindow() {
	eff := c.scaler.Config()
	capacity := float64(c.scaler.Replicas())
	outage := false
	if c.fm != nil {
		// Crashed replicas are not capacity: utilization measures demand
		// against the replicas that can actually serve, so an outage
		// reads as load (and can trigger scale-up) instead of reading as
		// spare capacity.
		if live := c.fm.liveActive(); live > 0 {
			capacity = float64(live)
		} else {
			outage = true
		}
	}
	sig := autoscale.Signal{
		Requests:      c.winLat.Len(),
		PeakBacklogMS: c.peakBacklog,
		Utilization:   c.busy / (capacity * eff.WindowMS),
	}
	if outage {
		// Zero live replicas: report saturated capacity so the scaler
		// can never read a total outage as an idle cluster.
		sig.Utilization = 1
	}
	if sig.Requests > 0 {
		sig.P99LatMS = c.winLat.Percentile(99)
	}
	if n, changed := c.scaler.Observe(c.winEnd, sig); changed {
		c.plan.Steps = append(c.plan.Steps, autoscale.Step{AtMS: c.winEnd, Replicas: n})
		c.setActive(n)
	}
	c.winLat.Reset()
	c.peakBacklog, c.busy = 0, 0
	c.winEnd += eff.WindowMS
}

// setActive resizes the dispatchable replica set. Newly activated
// replicas get fresh handlers; retired replicas stop receiving arrivals
// but keep draining their queues on the shared clock, and resume where
// they left off if reactivated.
func (c *clusterSim) setActive(n int) {
	for i := len(c.replicas); i < n; i++ {
		c.addReplica(i)
	}
	c.active = n
	if c.fm != nil {
		c.fm.onActiveChanged(c.loop.Now())
	}
}

// gauges snapshots the cluster's instantaneous state as of time nowMS
// (the last processed instant): per-replica queue depths, in-flight
// batch sizes, live capacity, and parked arrivals.
func (c *clusterSim) gauges(nowMS float64) obs.Gauges {
	n := len(c.replicas)
	// Carve the sample's depth row out of the arena: retained timeline
	// rows keep old blocks alive, so a full block is abandoned to them
	// and replaced rather than grown (growing would move slices already
	// handed out).
	if cap(c.depthArena)-len(c.depthArena) < n {
		size := 1024
		if size < 4*n {
			size = 4 * n
		}
		c.depthArena = make([]int, 0, size)
	}
	start := len(c.depthArena)
	c.depthArena = c.depthArena[:start+n]
	g := obs.Gauges{Replicas: c.active, QueueDepths: c.depthArena[start : start+n : start+n]}
	for i, rep := range c.replicas {
		g.QueueDepths[i] = rep.qlen()
		g.Queued += rep.qlen()
		if rep.busyUntil > nowMS {
			g.Inflight += rep.inflight
		}
		if i < c.active && !rep.down {
			g.Live++
		}
	}
	if c.fm != nil {
		g.Parked = c.fm.parkedCount()
	}
	return g
}

// addReplica creates replica i with its handler (speed-scaled when the
// cluster is heterogeneous) and latency recorder.
func (c *clusterSim) addReplica(i int) {
	h := c.mk(i)
	if len(c.opts.Speeds) > 0 {
		h = &scaledHandler{Handler: h, speed: c.opts.Speeds[i%len(c.opts.Speeds)]}
	}
	ropts := c.base
	if c.opts.ReplicaObserver != nil {
		replica, inner := i, c.base.Observer
		ropts.Observer = func(r Result) {
			if inner != nil {
				inner(r)
			}
			c.opts.ReplicaObserver(replica, r)
		}
	}
	rep := &replicaSim{
		c:       c,
		idx:     i,
		h:       h,
		estCost: h.BatchLatency(1),
		st:      &Stats{Lat: metrics.NewRecorder(c.base.Metrics, 4096)},
		opts:    ropts,
		// busyUntil == now means "completion wake pending at now", so a
		// fresh replica must start strictly idle, not at zero.
		busyUntil: math.Inf(-1),
		wakeAt:    math.Inf(1),
	}
	rep.recordFn = rep.record
	c.replicas = append(c.replicas, rep)
	if c.fm != nil {
		c.fm.onReplicaAdded(i)
	}
}

// RunCluster simulates the request stream over a pool of replicas in a
// single pass: every replica is an event-driven process on one shared
// engine clock, dispatch reads true per-replica queue depth and
// in-flight work at each arrival, and (with Autoscale set) the scaler
// is consulted online at window boundaries — no per-replica trace
// replay and no separate planning pass. makeHandler builds the handler
// for replica i exactly once (a fresh Apparate controller per replica,
// or shared-nothing vanilla handlers); with autoscaling, handlers past
// the starting width are created lazily when the cluster first grows
// to them. The run is a pure function of (stream, handlers, options):
// event order is deterministic, so sweeps stay byte-identical at any
// worker count, and memory is bounded by queue depths — independent of
// trace length.
func RunCluster(stream *workload.Stream, makeHandler func(i int) Handler, opts ClusterOptions) *ClusterStats {
	if opts.Autoscale == nil && opts.Replicas <= 0 {
		panic("serving: RunCluster needs at least one replica")
	}
	mode, reason := shardPlan(opts)
	switch mode {
	case shardReplay:
		return runShardedCluster(stream, makeHandler, opts)
	case shardLookahead:
		// Handlers are built serially in replica order before the
		// stability check — the serial run's creation order — and
		// whichever path runs below reuses them, so a fallback here is
		// still byte-identical to a plain serial run.
		handlers := make([]Handler, opts.Replicas)
		stable := true
		for i := range handlers {
			handlers[i] = makeHandler(i)
			stable = stable && latencyStable(handlers[i])
		}
		if stable {
			return runLookaheadCluster(stream, handlers, opts)
		}
		cs := runSerialCluster(stream, func(i int) Handler { return handlers[i] }, opts)
		cs.ShardMode = "serial:adaptive-handler"
		return cs
	}
	cs := runSerialCluster(stream, makeHandler, opts)
	cs.ShardMode = reason
	return cs
}

// runSerialCluster is the single-loop cluster runtime — the reference
// semantics every sharded mode must reproduce byte for byte.
func runSerialCluster(stream *workload.Stream, makeHandler func(i int) Handler, opts ClusterOptions) *ClusterStats {
	c := &clusterSim{
		loop: engine.New(),
		opts: opts,
		base: opts.Options.withDefaults(),
		mk:   makeHandler,
		it:   stream.Iter(),
	}
	c.tr, c.tl = c.base.Trace, c.base.Timeline
	if r, ok := c.it.Next(); ok {
		c.next, c.has = r, true
	}

	start := opts.Replicas
	if opts.Autoscale != nil {
		cfg := *opts.Autoscale
		if cfg.SLOms == 0 {
			cfg.SLOms = opts.SLOms
		}
		c.scaler = autoscale.New(cfg)
		eff := c.scaler.Config()
		c.plan = &autoscale.Plan{Start: c.scaler.Replicas()}
		c.winEnd = eff.WindowMS
		c.winLat = metrics.NewSketch()
		start = c.scaler.Replicas()
	}
	if !opts.Faults.Empty() || opts.Retry.Enabled() {
		c.fm = newFaultMode(c, opts.Faults, opts.Retry, opts.FaultSeed)
	}
	if c.scaler != nil && c.tr != nil {
		c.scaler.OnDecision = func(atMS float64, from, to int) {
			kind := obs.KindScaleUp
			if to < from {
				kind = obs.KindScaleDown
			}
			e := obs.At(atMS, kind)
			e.Val = to
			c.tr.Emit(e)
		}
	}
	c.setActive(start)

	c.loop.Add(c)
	if c.fm != nil {
		c.loop.Add(c.fm)
	}
	if c.tl != nil {
		// Sample from the engine's advance hook, never from tick events on
		// the heap: a tick process would extend the clock past the last
		// real event and shift end-of-run bookkeeping (fault windows clip
		// at loop.Now()), breaking timeline-on == timeline-off results.
		// snapFn is bound once; snapAt carries the pre-advance instant so
		// no per-step closure is needed.
		c.snapFn = func(float64) obs.Gauges { return c.gauges(c.snapAt) }
		c.loop.OnAdvance(func(prev, now float64) {
			c.snapAt = prev
			c.tl.CatchUp(now, c.snapFn)
		})
	}
	c.loop.Run()
	if c.tl != nil {
		end := c.loop.Now()
		c.tl.Finish(end, func(float64) obs.Gauges { return c.gauges(end) })
	}

	cs := &ClusterStats{PerReplica: make([]*Stats, len(c.replicas)), Scale: c.plan}
	merged := &Stats{Lat: metrics.NewRecorder(c.base.Metrics, 4096)}
	var batches metrics.Counter
	for i, rep := range c.replicas {
		rep.st.finalize()
		cs.PerReplica[i] = rep.st
		mergeStats(merged, rep.st)
		// AvgBatch averages the per-replica batch means, matching the
		// single-replica definition per slice.
		batches.Add(rep.st.AvgBatch)
	}
	if c.fm != nil {
		c.fm.finish(c.loop.Now())
		mergeStats(merged, c.fm.st)
		cs.Faults = c.fm.fs
	}
	merged.finalize()
	merged.AvgBatch = batches.Mean()
	cs.Merged = merged
	return cs
}

// Shard-execution modes, as classified by shardPlan.
const (
	// shardSerial: run on one loop (the reason string says why).
	shardSerial = iota
	// shardReplay: round-robin decoupled shards — targets are a pure
	// function of arrival index, so shards need no communication.
	shardReplay
	// shardLookahead: queue-state dispatch under the conservative-
	// lookahead dispatcher protocol (still subject to the handler
	// latency-stability check, which needs the handlers built).
	shardLookahead
)

// shardPlan classifies how this configuration may execute, with the
// fallback reason for the serial cases. Round-robin never reads replica
// state, so replica groups decouple completely once each shard replays
// the full arrival stream. Least-loaded and join-shortest-queue read
// cross-replica queue state at every arrival, but dispatch decisions
// happen only at arrivals and a request assigned at t cannot complete
// before t plus the smallest batch service time — the classic
// conservative-lookahead condition — so a dispatcher shard can resolve
// every assignment exactly while worker shards simulate their replica
// groups in parallel (runLookaheadCluster). The autoscaler's windows,
// the fault arbiter, retry/hedging, and order-sensitive observer sinks
// still couple replicas beyond what the lookahead bound covers, so
// those configurations run serial and Shards is a no-op.
func shardPlan(opts ClusterOptions) (int, string) {
	switch {
	case opts.Shards <= 1:
		return shardSerial, "serial"
	case opts.Autoscale != nil:
		return shardSerial, "serial:autoscale"
	case !opts.Faults.Empty():
		return shardSerial, "serial:faults"
	case opts.Retry.Enabled():
		return shardSerial, "serial:retry"
	case opts.Trace != nil || opts.Timeline != nil ||
		opts.Observer != nil || opts.ReplicaObserver != nil:
		return shardSerial, "serial:obs"
	case opts.Replicas <= 1:
		return shardSerial, "serial:single-replica"
	case opts.Dispatch == RoundRobin:
		return shardReplay, ""
	default:
		return shardLookahead, ""
	}
}

// runShardedCluster is the parallel mode inside one scenario: replica
// group g = {i : i % shards == g} runs on its own engine loop in its
// own goroutine, each replaying the full arrival stream but enqueueing
// only its own round-robin targets. Because round-robin targets are a
// pure function of arrival index, every replica sees byte-for-byte the
// event sequence it would see in the serial run, and the merge below
// walks replicas in global index order — so the result is identical to
// the serial run, just faster.
func runShardedCluster(stream *workload.Stream, makeHandler func(i int) Handler, opts ClusterOptions) *ClusterStats {
	nrep := opts.Replicas
	shards := opts.Shards
	if shards > nrep {
		shards = nrep
	}
	base := opts.Options.withDefaults()
	// Handlers are built serially in replica order before any shard
	// runs: creation order matches the serial run exactly and
	// makeHandler is never called concurrently.
	handlers := make([]Handler, nrep)
	for i := range handlers {
		handlers[i] = makeHandler(i)
	}
	sims := make([]*clusterSim, shards)
	var wg sync.WaitGroup
	for g := 0; g < shards; g++ {
		c := &clusterSim{
			loop: engine.New(),
			opts: opts,
			base: base,
			mk:   func(i int) Handler { return handlers[i] },
			it:   stream.Iter(),
		}
		if r, ok := c.it.Next(); ok {
			c.next, c.has = r, true
		}
		for i := 0; i < nrep; i++ {
			if i%shards == g {
				c.addReplica(i)
			} else {
				c.replicas = append(c.replicas, nil)
			}
		}
		c.active = nrep
		sims[g] = c
		wg.Add(1)
		go func(c *clusterSim) {
			defer wg.Done()
			c.loop.Add(c)
			c.loop.Run()
		}(c)
	}
	wg.Wait()

	// Merge in global replica order — the same float-addition order as
	// the serial run's merge loop, so aggregates match bit for bit.
	cs := &ClusterStats{
		PerReplica: make([]*Stats, nrep),
		ShardMode:  "replay:" + strconv.Itoa(shards),
	}
	merged := &Stats{Lat: metrics.NewRecorder(base.Metrics, 4096)}
	var batches metrics.Counter
	for i := 0; i < nrep; i++ {
		rep := sims[i%shards].replicas[i]
		rep.st.finalize()
		cs.PerReplica[i] = rep.st
		mergeStats(merged, rep.st)
		batches.Add(rep.st.AvgBatch)
	}
	merged.finalize()
	merged.AvgBatch = batches.Mean()
	cs.Merged = merged
	return cs
}

// mergeStats folds one replica's aggregates into the cluster totals.
func mergeStats(dst, src *Stats) {
	dst.Total += src.Total
	dst.Delivered += src.Delivered
	dst.Drops += src.Drops
	dst.Lost += src.Lost
	dst.SLOMisses += src.SLOMisses
	dst.Correct += src.Correct
	dst.Exits += src.Exits
	if src.Lat.Len() > 0 {
		dst.Lat.Merge(src.Lat)
	}
	if src.sawArrival && (!dst.sawArrival || src.FirstArrivalMS < dst.FirstArrivalMS) {
		dst.FirstArrivalMS = src.FirstArrivalMS
		dst.sawArrival = true
	}
	if src.LastDoneMS > dst.LastDoneMS {
		dst.LastDoneMS = src.LastDoneMS
	}
}
