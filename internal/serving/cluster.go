package serving

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/workload"
)

// Dispatch selects how a cluster front-end spreads requests over
// replicas.
type Dispatch int

// Dispatch policies.
const (
	// RoundRobin cycles replicas in arrival order.
	RoundRobin Dispatch = iota
	// LeastLoaded sends each arrival to the replica with the least
	// outstanding estimated work (join-shortest-queue).
	LeastLoaded
)

// String returns the policy name.
func (d Dispatch) String() string {
	switch d {
	case RoundRobin:
		return "round-robin"
	case LeastLoaded:
		return "least-loaded"
	}
	return fmt.Sprintf("Dispatch(%d)", int(d))
}

// Dispatches lists the supported dispatch policy names in canonical
// order.
func Dispatches() []string { return []string{"round-robin", "least-loaded"} }

// ParseDispatch maps a policy name to its Dispatch value.
func ParseDispatch(name string) (Dispatch, error) {
	switch name {
	case "round-robin":
		return RoundRobin, nil
	case "least-loaded":
		return LeastLoaded, nil
	}
	return 0, fmt.Errorf("serving: unknown dispatch policy %q (want round-robin | least-loaded)", name)
}

// ClusterOptions configures a multi-replica run. The paper's platforms
// scale models across replicas decided by the serving platform, and
// Apparate attaches one controller per replica (§3, implementation
// details) — so each replica gets its own Handler and adapts to the
// slice of traffic it sees.
type ClusterOptions struct {
	Options
	Replicas int
	Dispatch Dispatch
}

// ClusterStats aggregates a cluster run.
type ClusterStats struct {
	PerReplica []*Stats
	// Merged holds every request's result across replicas.
	Merged *Stats
}

// RunCluster simulates the request stream over a pool of replicas.
// makeHandler builds the handler for replica i (a fresh Apparate
// controller per replica, or shared-nothing vanilla handlers).
func RunCluster(reqs []workload.Request, makeHandler func(i int) Handler, opts ClusterOptions) *ClusterStats {
	if opts.Replicas <= 0 {
		panic("serving: RunCluster needs at least one replica")
	}
	// Dispatch pass: split the arrival stream.
	sub := make([][]workload.Request, opts.Replicas)
	switch opts.Dispatch {
	case RoundRobin:
		for i, r := range reqs {
			sub[i%opts.Replicas] = append(sub[i%opts.Replicas], r)
		}
	case LeastLoaded:
		// Track each replica's estimated work horizon: the time its
		// already-assigned requests will keep it busy, assuming
		// batch-1 service (a conservative, handler-agnostic estimate).
		handlers := make([]Handler, opts.Replicas)
		horizon := make([]float64, opts.Replicas)
		for i := range handlers {
			handlers[i] = makeHandler(i)
		}
		// The dispatch-time handlers are only used for latency
		// estimates; fresh handlers serve the actual sub-streams below.
		for _, r := range reqs {
			best := 0
			for i := 1; i < opts.Replicas; i++ {
				if backlog(horizon[i], r.ArrivalMS) < backlog(horizon[best], r.ArrivalMS) {
					best = i
				}
			}
			start := r.ArrivalMS
			if horizon[best] > start {
				start = horizon[best]
			}
			horizon[best] = start + handlers[best].BatchLatency(1)
			sub[best] = append(sub[best], r)
		}
	}

	cs := &ClusterStats{PerReplica: make([]*Stats, opts.Replicas)}
	merged := &Stats{}
	var batches metrics.Counter
	for i := 0; i < opts.Replicas; i++ {
		st := Run(sub[i], makeHandler(i), opts.Options)
		cs.PerReplica[i] = st
		merged.Results = append(merged.Results, st.Results...)
		batches.Add(st.AvgBatch)
	}
	// Re-summarize the merged results.
	if len(reqs) > 0 {
		cs.Merged = summarize(merged.Results, batches, reqs)
	} else {
		cs.Merged = merged
	}
	return cs
}

func backlog(horizon, now float64) float64 {
	if horizon < now {
		return 0
	}
	return horizon - now
}
