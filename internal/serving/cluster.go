package serving

import (
	"fmt"

	"repro/internal/autoscale"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Dispatch selects how a cluster front-end spreads requests over
// replicas.
type Dispatch int

// Dispatch policies.
const (
	// RoundRobin cycles replicas in arrival order.
	RoundRobin Dispatch = iota
	// LeastLoaded sends each arrival to the replica with the least
	// outstanding estimated work (join-shortest-queue).
	LeastLoaded
)

// String returns the policy name.
func (d Dispatch) String() string {
	switch d {
	case RoundRobin:
		return "round-robin"
	case LeastLoaded:
		return "least-loaded"
	}
	return fmt.Sprintf("Dispatch(%d)", int(d))
}

// Dispatches lists the supported dispatch policy names in canonical
// order.
func Dispatches() []string { return []string{"round-robin", "least-loaded"} }

// ParseDispatch maps a policy name to its Dispatch value.
func ParseDispatch(name string) (Dispatch, error) {
	switch name {
	case "round-robin":
		return RoundRobin, nil
	case "least-loaded":
		return LeastLoaded, nil
	}
	return 0, fmt.Errorf("serving: unknown dispatch policy %q (want round-robin | least-loaded)", name)
}

// ClusterOptions configures a multi-replica run. The paper's platforms
// scale models across replicas decided by the serving platform, and
// Apparate attaches one controller per replica (§3, implementation
// details) — so each replica gets its own Handler and adapts to the
// slice of traffic it sees.
type ClusterOptions struct {
	Options
	Replicas int
	Dispatch Dispatch
	// Autoscale, when non-nil, replaces the fixed Replicas count with a
	// reactive replica autoscaler: a planning pass over the stream
	// drives the scaler with windowed backlog/latency signals, and the
	// resulting Plan decides how many replicas are active at every
	// arrival. Replicas is ignored; the run starts at Autoscale.Min and
	// never exceeds Autoscale.Max. A zero Autoscale.SLOms inherits
	// Options.SLOms.
	Autoscale *autoscale.Config
	// ReplicaObserver, when non-nil, receives every per-request Result
	// tagged with the replica that served it (Options.Observer fires
	// too, untagged).
	ReplicaObserver func(replica int, r Result)
}

// ClusterStats aggregates a cluster run.
type ClusterStats struct {
	PerReplica []*Stats
	// Merged aggregates every request's outcome across replicas:
	// summed counts, merged latency recorders, cluster-wide rates.
	Merged *Stats
	// Scale is the realized autoscaling plan (nil for fixed-replica
	// runs).
	Scale *autoscale.Plan
}

// assigner is the deterministic dispatch decision shared by the replay
// passes and the autoscale planning pass: round-robin cycles the active
// replicas in arrival order; least-loaded tracks each replica's
// estimated work horizon (the time its already-assigned requests keep
// it busy at batch-1 service) and picks the smallest backlog. The
// horizon model is also the planning pass's load signal, so the plan
// and the replay agree on every assignment.
type assigner struct {
	dispatch Dispatch
	estCost  []float64 // per-replica batch-1 latency estimate; nil skips the horizon model
	horizon  []float64
	i        int
}

// assign picks the target among the first active replicas for an
// arrival and advances the backlog model.
func (a *assigner) assign(active int, arrivalMS float64) int {
	var target int
	switch a.dispatch {
	case RoundRobin:
		target = a.i % active
	case LeastLoaded:
		for j := 1; j < active; j++ {
			if backlog(a.horizon[j], arrivalMS) < backlog(a.horizon[target], arrivalMS) {
				target = j
			}
		}
	}
	a.i++
	if a.estCost != nil {
		start := arrivalMS
		if a.horizon[target] > start {
			start = a.horizon[target]
		}
		a.horizon[target] = start + a.estCost[target]
	}
	return target
}

// dispatchFilter replays the deterministic dispatch decision over a
// stream pass and yields only the requests assigned to one replica. The
// per-request assignment depends solely on arrival order (round-robin)
// or on the deterministic backlog estimate (least-loaded), so every
// replica's pass over a fresh iterator reproduces the same split — the
// streaming equivalent of materializing per-replica sub-slices, at O(1)
// memory per pass.
type dispatchFilter struct {
	src      *workload.Iter
	replica  int
	replicas int
	asn      assigner
	// scale, when non-nil, bounds the active replica set per arrival by
	// the autoscaling plan; retired replicas simply stop receiving
	// requests, and reactivated ones resume where they left off.
	scale *autoscale.Cursor
}

func (f *dispatchFilter) Next() (workload.Request, bool) {
	for {
		r, ok := f.src.Next()
		if !ok {
			return workload.Request{}, false
		}
		active := f.replicas
		if f.scale != nil {
			active = f.scale.At(r.ArrivalMS)
		}
		if f.asn.assign(active, r.ArrivalMS) == f.replica {
			return r, true
		}
	}
}

// RunCluster simulates the request stream over a pool of replicas.
// makeHandler builds the handler for replica i (a fresh Apparate
// controller per replica, or shared-nothing vanilla handlers). Each
// replica streams its slice of the trace through its own pass of the
// dispatch decision, so the cluster simulator, like the single-replica
// one, holds no per-request state. With Autoscale set, a planning pass
// first turns windowed load signals into a replica Plan, and every
// replay pass consults the same plan — add/retire decisions are part of
// the deterministic dispatch replay, not shared mutable state.
func RunCluster(stream *workload.Stream, makeHandler func(i int) Handler, opts ClusterOptions) *ClusterStats {
	// Least-loaded and autoscaling need per-replica service-time
	// estimates for the backlog model. The estimate handlers are used
	// only at dispatch/planning time; fresh handlers serve the actual
	// sub-streams below.
	var estCost []float64
	var plan *autoscale.Plan
	replicas := opts.Replicas
	if opts.Autoscale != nil {
		cfg := *opts.Autoscale
		if cfg.SLOms == 0 {
			cfg.SLOms = opts.SLOms
		}
		estCost = make([]float64, cfg.Max)
		for i := range estCost {
			estCost[i] = makeHandler(i).BatchLatency(1)
		}
		plan = PlanScale(stream, estCost, cfg, opts.Dispatch)
		replicas = plan.Peak()
	} else {
		if replicas <= 0 {
			panic("serving: RunCluster needs at least one replica")
		}
		if opts.Dispatch == LeastLoaded {
			estCost = make([]float64, replicas)
			for i := range estCost {
				estCost[i] = makeHandler(i).BatchLatency(1)
			}
		}
	}

	cs := &ClusterStats{PerReplica: make([]*Stats, replicas), Scale: plan}
	merged := &Stats{Lat: metrics.NewRecorder(opts.Metrics, 4096)}
	for i := 0; i < replicas; i++ {
		ropts := opts.Options
		if opts.ReplicaObserver != nil {
			replica, inner := i, opts.Observer
			ropts.Observer = func(r Result) {
				if inner != nil {
					inner(r)
				}
				opts.ReplicaObserver(replica, r)
			}
		}
		src := &dispatchFilter{
			src:      stream.Iter(),
			replica:  i,
			replicas: replicas,
			asn: assigner{
				dispatch: opts.Dispatch,
				estCost:  estCost,
				horizon:  make([]float64, len(estCost)),
			},
		}
		if plan != nil {
			src.scale = plan.Cursor()
		}
		st := Run(src, makeHandler(i), ropts)
		cs.PerReplica[i] = st
		mergeStats(merged, st)
	}
	merged.finalize()
	// AvgBatch averages the per-replica batch means, matching the
	// single-replica definition per slice.
	var batches metrics.Counter
	for _, st := range cs.PerReplica {
		batches.Add(st.AvgBatch)
	}
	merged.AvgBatch = batches.Mean()
	cs.Merged = merged
	return cs
}

// mergeStats folds one replica's aggregates into the cluster totals.
func mergeStats(dst, src *Stats) {
	dst.Total += src.Total
	dst.Delivered += src.Delivered
	dst.Drops += src.Drops
	dst.SLOMisses += src.SLOMisses
	dst.Correct += src.Correct
	dst.Exits += src.Exits
	if src.Lat.Len() > 0 {
		dst.Lat.Merge(src.Lat)
	}
	if src.sawArrival && (!dst.sawArrival || src.FirstArrivalMS < dst.FirstArrivalMS) {
		dst.FirstArrivalMS = src.FirstArrivalMS
		dst.sawArrival = true
	}
	if src.LastDoneMS > dst.LastDoneMS {
		dst.LastDoneMS = src.LastDoneMS
	}
}

func backlog(horizon, now float64) float64 {
	if horizon < now {
		return 0
	}
	return horizon - now
}
