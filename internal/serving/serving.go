// Package serving is a discrete-event simulator of GPU model-serving
// platforms (§2.1): requests arrive on a trace, are queued, batched under
// a platform policy, and executed on a single-replica GPU whose batch
// latency comes from the model's profile. Two policies are provided:
//
//   - Clockwork-style: work-conserving and SLO-aware — each scheduling
//     decision picks the largest batch whose completion keeps the oldest
//     queued request within its SLO, dropping requests whose deadline is
//     already unreachable [30].
//   - TF-Serving-style: batches form when max_batch_size requests are
//     queued or the oldest has waited batch_timeout, without SLO
//     awareness [51]; late responses are delivered, not dropped.
//
// The handler abstraction lets vanilla models, Apparate, and every
// baseline share the same queueing machinery, so latency differences come
// only from exiting behavior.
//
// The simulator is streaming end to end: requests are pulled from a
// RequestSource one at a time (plus one request of lookahead for the
// scheduling policies) and outcomes are folded into aggregate Stats and
// a metrics.Recorder as they happen, so memory is bounded by the queue
// depth — independent of trace length.
package serving

import (
	"fmt"

	"repro/internal/exitsim"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/ramp"
	"repro/internal/workload"
)

// Platform selects a batching policy.
type Platform int

// Supported platforms.
const (
	Clockwork Platform = iota
	TFServe
)

// String returns the platform name.
func (p Platform) String() string {
	switch p {
	case Clockwork:
		return "clockwork"
	case TFServe:
		return "tf-serve"
	}
	return fmt.Sprintf("Platform(%d)", int(p))
}

// Platforms lists the supported platform names in canonical order.
func Platforms() []string { return []string{"clockwork", "tf-serve"} }

// ParsePlatform maps a platform name to its Platform value.
func ParsePlatform(name string) (Platform, error) {
	switch name {
	case "clockwork":
		return Clockwork, nil
	case "tf-serve":
		return TFServe, nil
	}
	return 0, fmt.Errorf("serving: unknown platform %q (want clockwork | tf-serve)", name)
}

// RequestSource yields requests in arrival order; workload.Iter is the
// canonical implementation.
type RequestSource interface {
	Next() (workload.Request, bool)
}

// Options configures a serving run.
type Options struct {
	Platform Platform
	// SLOms is the per-request latency objective.
	SLOms float64
	// MaxBatch caps batch sizes (paper experiments use 1–16).
	MaxBatch int
	// BatchTimeoutMS is TF-Serving's batch_timeout_micros analogue.
	BatchTimeoutMS float64
	// QueueCap bounds TF-Serving's pending queue; arrivals beyond it are
	// rejected. This is what makes small max_batch_size trade throughput
	// for latency (Figure 2): bursts overflow instead of queueing
	// indefinitely. Clockwork needs no cap — its SLO-awareness drops
	// hopeless requests instead. Defaults to 4×MaxBatch.
	QueueCap int
	// Metrics selects the latency recorder: exact (every sample kept)
	// or sketch (bounded memory, ~0.5% percentile error).
	Metrics metrics.Mode
	// Observer, when non-nil, receives every per-request Result as it is
	// produced, in emission order. The simulator retains no per-request
	// state itself; tests and trace tools that need raw results hook in
	// here.
	Observer func(Result)
	// Trace, when non-nil, collects the request lifecycle (arrive,
	// enqueue, serve_start, complete, drop — plus the fault and
	// autoscale kinds on cluster runs) as typed events on the virtual
	// clock. Nil costs one pointer check per site on the hot path.
	Trace *obs.Tracer
	// Timeline, when non-nil, samples queue/throughput gauges at its
	// tick. Nil costs one pointer check per site, like Trace.
	Timeline *obs.Timeline
}

func (o Options) withDefaults() Options {
	if o.MaxBatch == 0 {
		o.MaxBatch = 16
	}
	if o.BatchTimeoutMS == 0 {
		o.BatchTimeoutMS = 2
	}
	if o.QueueCap == 0 {
		o.QueueCap = 4 * o.MaxBatch
	}
	return o
}

// Handler models one request-serving backend.
type Handler interface {
	// BatchLatency returns the worst-case execution time of a batch of
	// the given size (all layers plus any ramp overheads); the scheduler
	// plans with it.
	BatchLatency(batch int) float64
	// Serve processes one request inside a batch of the given size and
	// reports its outcome; ServeMS is the offset from batch start at
	// which the response is released.
	Serve(s exitsim.Sample, batch int) ramp.Outcome
}

// Result is the fate of one request.
type Result struct {
	ID        int
	ArrivalMS float64
	// LatencyMS is response latency including queuing (undefined when
	// Dropped).
	LatencyMS float64
	// ServeMS is the serving-time component.
	ServeMS   float64
	BatchSize int
	ExitIndex int
	Correct   bool
	Dropped   bool
	SLOMiss   bool
	// Lost marks a request that never reached a replica: every dispatched
	// copy was lost in transit and the retry budget is exhausted. Lost
	// results are also Dropped (they were not served). Fault-injected
	// cluster runs only.
	Lost bool
}

// Stats aggregates a serving run. It holds summaries — counts, rates,
// and a latency recorder — never the per-request results themselves; use
// Options.Observer to tap the raw result stream.
type Stats struct {
	// Lat records delivered-request latencies; nil until the run starts.
	Lat metrics.Recorder

	// Total counts every request (delivered + dropped); Delivered,
	// Drops, SLOMisses, Correct, and Exits break the outcomes down.
	// SLOMisses and Correct count delivered requests only; Exits counts
	// delivered requests that left at a ramp.
	Total     int
	Delivered int
	Drops     int
	SLOMisses int
	Correct   int
	Exits     int
	// Lost counts the subset of Drops that were lost in transit
	// (fault-injected runs only).
	Lost int

	AvgBatch      float64
	DropRate      float64
	SLOMissRate   float64
	ThroughputQPS float64
	// GoodputQPS counts only delivered requests that met their SLO —
	// the availability metric degraded-mode studies rank by.
	GoodputQPS float64
	// Accuracy is the fraction of delivered results matching the
	// original model.
	Accuracy float64

	// FirstArrivalMS and LastDoneMS bound the run's makespan.
	FirstArrivalMS float64
	LastDoneMS     float64

	batches    metrics.Counter
	sawArrival bool
}

// Latencies returns the latency recorder of delivered requests.
func (s *Stats) Latencies() metrics.Recorder { return s.Lat }

// noteArrival tracks the first arrival timestamp for throughput spans.
func (s *Stats) noteArrival(r workload.Request) {
	if !s.sawArrival {
		s.FirstArrivalMS = r.ArrivalMS
		s.sawArrival = true
	}
}

// record folds one result into the aggregates and forwards it to the
// observer.
func (s *Stats) record(r Result, observer func(Result)) {
	s.Total++
	if r.Dropped {
		s.Drops++
		if r.Lost {
			s.Lost++
		}
	} else {
		s.Delivered++
		if r.SLOMiss {
			s.SLOMisses++
		}
		if r.Correct {
			s.Correct++
		}
		if r.ExitIndex >= 0 {
			s.Exits++
		}
		s.Lat.Add(r.LatencyMS)
		if done := r.ArrivalMS + r.LatencyMS; done > s.LastDoneMS {
			s.LastDoneMS = done
		}
	}
	if observer != nil {
		observer(r)
	}
}

// finalize computes the derived rates once the run is complete.
func (s *Stats) finalize() {
	s.AvgBatch = s.batches.Mean()
	if s.Total == 0 {
		return
	}
	s.DropRate = float64(s.Drops) / float64(s.Total)
	if s.Delivered > 0 {
		s.SLOMissRate = float64(s.SLOMisses) / float64(s.Delivered)
		s.Accuracy = float64(s.Correct) / float64(s.Delivered)
	}
	if s.LastDoneMS > 0 {
		if span := s.LastDoneMS - s.FirstArrivalMS; span > 0 {
			s.ThroughputQPS = float64(s.Delivered) / span * 1000
			s.GoodputQPS = float64(s.Delivered-s.SLOMisses) / span * 1000
		}
	}
}

// lookahead wraps a RequestSource with a one-request peek buffer — all
// the future the scheduling policies ever need.
type lookahead struct {
	src RequestSource
	buf workload.Request
	has bool
	eof bool
}

func (l *lookahead) peek() (workload.Request, bool) {
	if l.has {
		return l.buf, true
	}
	if l.eof {
		return workload.Request{}, false
	}
	r, ok := l.src.Next()
	if !ok {
		l.eof = true
		return workload.Request{}, false
	}
	l.buf, l.has = r, true
	return r, true
}

func (l *lookahead) pop() (workload.Request, bool) {
	r, ok := l.peek()
	l.has = false
	return r, ok
}

// Run simulates serving the request stream with the handler.
func Run(src RequestSource, h Handler, opts Options) *Stats {
	opts = opts.withDefaults()
	st := &Stats{Lat: metrics.NewRecorder(opts.Metrics, 4096)}
	in := &lookahead{src: src}

	now := 0.0 // GPU-free time
	// queue[qhead:] is the live queue. Consumption advances qhead
	// instead of re-slicing the front off (which would strand the
	// array's spare capacity and cost one allocation per request); the
	// dead prefix is compacted back to the front at the top of the loop
	// once it outgrows the live tail.
	queue := make([]workload.Request, 0, opts.MaxBatch*4)
	qhead := 0

	tr, tl := opts.Trace, opts.Timeline
	rec := func(r Result) {
		st.record(r, opts.Observer)
		if tr != nil && r.Dropped {
			e := obs.At(now, obs.KindDrop)
			e.Req = r.ID
			tr.Emit(e)
		}
	}
	// admit traces one arrival joining the queue (or, during catch-up
	// batching, the forming batch) on the single replica's track.
	admit := func(req workload.Request, depth int) {
		if tr == nil {
			return
		}
		e := obs.At(req.ArrivalMS, obs.KindArrive)
		e.Req = req.ID
		tr.Emit(e)
		e.Kind = obs.KindEnqueue
		e.Replica = 0
		e.Val = depth
		tr.Emit(e)
	}

	// snap is the timeline's gauge callback, bound once: it reads the
	// loop variables through the closure, and each emitted row gets its
	// own one-element depth slice (rows retain their slices).
	var snap func(float64) obs.Gauges
	if tl != nil {
		snap = func(float64) obs.Gauges {
			d := len(queue) - qhead
			return obs.Gauges{Replicas: 1, Live: 1, Queued: d, QueueDepths: []int{d}}
		}
	}

	for {
		// No batch aliases the dead prefix at the top of the loop, so
		// reclaim it here: rewind when empty, compact once the prefix
		// outgrows the live tail (amortized O(1) per request).
		if qhead == len(queue) {
			queue, qhead = queue[:0], 0
		} else if qhead > len(queue)-qhead {
			n := copy(queue, queue[qhead:])
			queue, qhead = queue[:n], 0
		}
		if tl != nil {
			tl.CatchUp(now, snap)
		}
		// Admit every request that has arrived by `now`.
		for {
			next, ok := in.peek()
			if !ok || next.ArrivalMS > now {
				break
			}
			in.pop()
			st.noteArrival(next)
			if opts.Platform == TFServe && len(queue)-qhead >= opts.QueueCap {
				if tr != nil {
					e := obs.At(next.ArrivalMS, obs.KindArrive)
					e.Req = next.ID
					tr.Emit(e)
				}
				rec(Result{
					ID: next.ID, ArrivalMS: next.ArrivalMS,
					Dropped: true, SLOMiss: true, ExitIndex: -1,
				})
			} else {
				queue = append(queue, next)
				admit(next, len(queue)-qhead)
			}
		}
		if len(queue)-qhead == 0 {
			next, ok := in.peek()
			if !ok {
				break // stream exhausted and nothing queued: done
			}
			// Idle: jump to the next arrival.
			now = next.ArrivalMS
			continue
		}

		var batch []workload.Request
		switch opts.Platform {
		case Clockwork:
			var rest []workload.Request
			batch, rest = clockworkPick(queue[qhead:], rec, now, h, opts)
			qhead = len(queue) - len(rest)
			if batch == nil {
				// Everything queued was dropped; loop to admit more.
				continue
			}
			// Catch-up batching: when the backlog is real (the oldest
			// request has already burned a quarter of its SLO), briefly
			// holding the GPU for imminent arrivals forms a larger batch
			// whose amortization drains the backlog — larger batches
			// have far lower per-request cost (§2.1). The hold is
			// admitted only while the oldest request still meets its
			// SLO.
			if len(rest) == 0 { // the batch took the whole queue
				oldestWait := now - batch[0].ArrivalMS
				if oldestWait > 0.25*opts.SLOms {
					// The batch is the tail of the queue's array, so it
					// grows in place by appending to the queue and
					// re-slicing — no copy.
					bstart := len(queue) - len(batch)
					for len(batch) < opts.MaxBatch {
						nreq, ok := in.peek()
						if !ok {
							break
						}
						next := nreq.ArrivalMS
						hold := next - now
						if hold < 0 {
							hold = 0
						}
						if oldestWait+hold+h.BatchLatency(len(batch)+1) > opts.SLOms {
							break
						}
						if next > now {
							now = next
							oldestWait = now - batch[0].ArrivalMS
						}
						in.pop()
						st.noteArrival(nreq)
						queue = append(queue, nreq)
						qhead = len(queue)
						batch = queue[bstart:]
						admit(nreq, len(batch))
					}
				}
			}
		case TFServe:
			next, more := in.peek()
			var wait float64
			var rest []workload.Request
			batch, rest, wait = tfservePick(queue[qhead:], now, more, next.ArrivalMS, opts)
			if batch == nil {
				now += wait
				continue
			}
			qhead = len(queue) - len(rest)
		}

		b := len(batch)
		start := now
		dur := h.BatchLatency(b)
		st.batches.Add(float64(b))
		if tr != nil {
			e := obs.At(start, obs.KindServeStart)
			e.Replica = 0
			e.Batch = b
			e.DurMS = dur
			tr.Emit(e)
		}
		for _, req := range batch {
			out := h.Serve(req.Sample, b)
			lat := start + out.ServeMS - req.ArrivalMS
			miss := lat > opts.SLOms
			st.record(Result{
				ID:        req.ID,
				ArrivalMS: req.ArrivalMS,
				LatencyMS: lat,
				ServeMS:   out.ServeMS,
				BatchSize: b,
				ExitIndex: out.ExitIndex,
				Correct:   out.Correct,
				SLOMiss:   miss,
			}, opts.Observer)
			if tr != nil {
				e := obs.At(req.ArrivalMS+lat, obs.KindComplete)
				e.Req = req.ID
				e.Replica = 0
				e.Batch = b
				e.LatMS = lat
				tr.Emit(e)
			}
			if tl != nil {
				tl.Observe(lat, miss)
			}
		}
		now = start + dur
	}

	if tl != nil {
		tl.Finish(now, func(float64) obs.Gauges {
			return obs.Gauges{Replicas: 1, Live: 1, QueueDepths: []int{0}}
		})
	}
	st.finalize()
	return st
}

// clockworkPick drops requests whose SLO is unreachable even at batch
// size 1, then selects the largest batch that keeps the oldest remaining
// request within its SLO. Drops are reported through rec so cluster
// runs under fault injection can arbitrate them (a hedged twin may
// still succeed elsewhere).
func clockworkPick(queue []workload.Request, rec func(Result), now float64, h Handler, opts Options) ([]workload.Request, []workload.Request) {
	// Drop hopeless requests (oldest first).
	for len(queue) > 0 {
		oldest := queue[0]
		if now-oldest.ArrivalMS+h.BatchLatency(1) <= opts.SLOms {
			break
		}
		rec(Result{
			ID: oldest.ID, ArrivalMS: oldest.ArrivalMS, Dropped: true, SLOMiss: true,
			ExitIndex: -1,
		})
		queue = queue[1:]
	}
	if len(queue) == 0 {
		return nil, queue
	}
	b := 1
	maxB := opts.MaxBatch
	if maxB > len(queue) {
		maxB = len(queue)
	}
	oldestWait := now - queue[0].ArrivalMS
	for b < maxB && oldestWait+h.BatchLatency(b+1) <= opts.SLOms {
		b++
	}
	return queue[:b], queue[b:]
}

// tfservePick forms a batch when max_batch_size requests are waiting or
// the oldest exceeds the batch timeout; otherwise it reports how long to
// wait.
func tfservePick(queue []workload.Request, now float64, more bool, nextArrival float64, opts Options) ([]workload.Request, []workload.Request, float64) {
	if len(queue) >= opts.MaxBatch {
		return queue[:opts.MaxBatch], queue[opts.MaxBatch:], 0
	}
	deadline := queue[0].ArrivalMS + opts.BatchTimeoutMS
	if now >= deadline || !more {
		// Flush the whole queue as the batch. The batch aliases the
		// queue's array; callers consume it synchronously before
		// admitting anything, so no copy is needed.
		return queue, queue[len(queue):], 0
	}
	// Wait for either the timeout or the next arrival, whichever first.
	wait := deadline - now
	if more && nextArrival > now && nextArrival-now < wait {
		wait = nextArrival - now
	}
	if wait <= 0 {
		wait = 1e-6
	}
	return nil, queue, wait
}
