// Package serving is a discrete-event simulator of GPU model-serving
// platforms (§2.1): requests arrive on a trace, are queued, batched under
// a platform policy, and executed on a single-replica GPU whose batch
// latency comes from the model's profile. Two policies are provided:
//
//   - Clockwork-style: work-conserving and SLO-aware — each scheduling
//     decision picks the largest batch whose completion keeps the oldest
//     queued request within its SLO, dropping requests whose deadline is
//     already unreachable [30].
//   - TF-Serving-style: batches form when max_batch_size requests are
//     queued or the oldest has waited batch_timeout, without SLO
//     awareness [51]; late responses are delivered, not dropped.
//
// The handler abstraction lets vanilla models, Apparate, and every
// baseline share the same queueing machinery, so latency differences come
// only from exiting behavior.
package serving

import (
	"fmt"

	"repro/internal/exitsim"
	"repro/internal/metrics"
	"repro/internal/ramp"
	"repro/internal/workload"
)

// Platform selects a batching policy.
type Platform int

// Supported platforms.
const (
	Clockwork Platform = iota
	TFServe
)

// String returns the platform name.
func (p Platform) String() string {
	switch p {
	case Clockwork:
		return "clockwork"
	case TFServe:
		return "tf-serve"
	}
	return fmt.Sprintf("Platform(%d)", int(p))
}

// Platforms lists the supported platform names in canonical order.
func Platforms() []string { return []string{"clockwork", "tf-serve"} }

// ParsePlatform maps a platform name to its Platform value.
func ParsePlatform(name string) (Platform, error) {
	switch name {
	case "clockwork":
		return Clockwork, nil
	case "tf-serve":
		return TFServe, nil
	}
	return 0, fmt.Errorf("serving: unknown platform %q (want clockwork | tf-serve)", name)
}

// Options configures a serving run.
type Options struct {
	Platform Platform
	// SLOms is the per-request latency objective.
	SLOms float64
	// MaxBatch caps batch sizes (paper experiments use 1–16).
	MaxBatch int
	// BatchTimeoutMS is TF-Serving's batch_timeout_micros analogue.
	BatchTimeoutMS float64
	// QueueCap bounds TF-Serving's pending queue; arrivals beyond it are
	// rejected. This is what makes small max_batch_size trade throughput
	// for latency (Figure 2): bursts overflow instead of queueing
	// indefinitely. Clockwork needs no cap — its SLO-awareness drops
	// hopeless requests instead. Defaults to 4×MaxBatch.
	QueueCap int
}

func (o Options) withDefaults() Options {
	if o.MaxBatch == 0 {
		o.MaxBatch = 16
	}
	if o.BatchTimeoutMS == 0 {
		o.BatchTimeoutMS = 2
	}
	if o.QueueCap == 0 {
		o.QueueCap = 4 * o.MaxBatch
	}
	return o
}

// Handler models one request-serving backend.
type Handler interface {
	// BatchLatency returns the worst-case execution time of a batch of
	// the given size (all layers plus any ramp overheads); the scheduler
	// plans with it.
	BatchLatency(batch int) float64
	// Serve processes one request inside a batch of the given size and
	// reports its outcome; ServeMS is the offset from batch start at
	// which the response is released.
	Serve(s exitsim.Sample, batch int) ramp.Outcome
}

// Result is the fate of one request.
type Result struct {
	ID        int
	ArrivalMS float64
	// LatencyMS is response latency including queuing (undefined when
	// Dropped).
	LatencyMS float64
	// ServeMS is the serving-time component.
	ServeMS   float64
	BatchSize int
	ExitIndex int
	Correct   bool
	Dropped   bool
	SLOMiss   bool
}

// Stats aggregates a serving run.
type Stats struct {
	Results       []Result
	AvgBatch      float64
	DropRate      float64
	SLOMissRate   float64
	ThroughputQPS float64
	// Accuracy is the fraction of delivered results matching the
	// original model.
	Accuracy float64
}

// Latencies returns the latency distribution of delivered requests.
func (s *Stats) Latencies() *metrics.Dist {
	d := metrics.NewDist(len(s.Results))
	for _, r := range s.Results {
		if !r.Dropped {
			d.Add(r.LatencyMS)
		}
	}
	return d
}

// Run simulates serving the request stream with the handler.
func Run(reqs []workload.Request, h Handler, opts Options) *Stats {
	opts = opts.withDefaults()
	results := make([]Result, 0, len(reqs))
	var batches metrics.Counter

	now := 0.0 // GPU-free time
	i := 0     // next arrival index
	queue := make([]workload.Request, 0, opts.MaxBatch*4)

	for i < len(reqs) || len(queue) > 0 {
		// Admit every request that has arrived by `now`.
		for i < len(reqs) && reqs[i].ArrivalMS <= now {
			if opts.Platform == TFServe && len(queue) >= opts.QueueCap {
				results = append(results, Result{
					ID: reqs[i].ID, ArrivalMS: reqs[i].ArrivalMS,
					Dropped: true, SLOMiss: true, ExitIndex: -1,
				})
			} else {
				queue = append(queue, reqs[i])
			}
			i++
		}
		if len(queue) == 0 {
			// Idle: jump to the next arrival.
			now = reqs[i].ArrivalMS
			continue
		}

		var batch []workload.Request
		switch opts.Platform {
		case Clockwork:
			batch, queue, results = clockworkPick(queue, results, now, h, opts)
			if batch == nil {
				// Everything queued was dropped; loop to admit more.
				continue
			}
			// Catch-up batching: when the backlog is real (the oldest
			// request has already burned a quarter of its SLO), briefly
			// holding the GPU for imminent arrivals forms a larger batch
			// whose amortization drains the backlog — larger batches
			// have far lower per-request cost (§2.1). The hold is
			// admitted only while the oldest request still meets its
			// SLO.
			if len(batch) == len(queue)+len(batch) { // took the whole queue
				oldestWait := now - batch[0].ArrivalMS
				if oldestWait > 0.25*opts.SLOms {
					extended := false
					for len(batch) < opts.MaxBatch && i < len(reqs) {
						next := reqs[i].ArrivalMS
						hold := next - now
						if hold < 0 {
							hold = 0
						}
						if oldestWait+hold+h.BatchLatency(len(batch)+1) > opts.SLOms {
							break
						}
						if !extended {
							// The batch aliases the queue's backing
							// array; copy before growing it.
							batch = append([]workload.Request(nil), batch...)
							extended = true
						}
						if next > now {
							now = next
							oldestWait = now - batch[0].ArrivalMS
						}
						batch = append(batch, reqs[i])
						i++
					}
				}
			}
		case TFServe:
			var wait float64
			batch, queue, wait = tfservePick(queue, now, i < len(reqs), reqsNextArrival(reqs, i), opts)
			if batch == nil {
				now += wait
				continue
			}
		}

		b := len(batch)
		start := now
		dur := h.BatchLatency(b)
		batches.Add(float64(b))
		for _, req := range batch {
			out := h.Serve(req.Sample, b)
			lat := start + out.ServeMS - req.ArrivalMS
			results = append(results, Result{
				ID:        req.ID,
				ArrivalMS: req.ArrivalMS,
				LatencyMS: lat,
				ServeMS:   out.ServeMS,
				BatchSize: b,
				ExitIndex: out.ExitIndex,
				Correct:   out.Correct,
				SLOMiss:   lat > opts.SLOms,
			})
		}
		now = start + dur
	}

	return summarize(results, batches, reqs)
}

func reqsNextArrival(reqs []workload.Request, i int) float64 {
	if i < len(reqs) {
		return reqs[i].ArrivalMS
	}
	return 0
}

// clockworkPick drops requests whose SLO is unreachable even at batch
// size 1, then selects the largest batch that keeps the oldest remaining
// request within its SLO.
func clockworkPick(queue []workload.Request, results []Result, now float64, h Handler, opts Options) ([]workload.Request, []workload.Request, []Result) {
	// Drop hopeless requests (oldest first).
	for len(queue) > 0 {
		oldest := queue[0]
		if now-oldest.ArrivalMS+h.BatchLatency(1) <= opts.SLOms {
			break
		}
		results = append(results, Result{
			ID: oldest.ID, ArrivalMS: oldest.ArrivalMS, Dropped: true, SLOMiss: true,
			ExitIndex: -1,
		})
		queue = queue[1:]
	}
	if len(queue) == 0 {
		return nil, queue, results
	}
	b := 1
	maxB := opts.MaxBatch
	if maxB > len(queue) {
		maxB = len(queue)
	}
	oldestWait := now - queue[0].ArrivalMS
	for b < maxB && oldestWait+h.BatchLatency(b+1) <= opts.SLOms {
		b++
	}
	batch := queue[:b]
	return batch, queue[b:], results
}

// tfservePick forms a batch when max_batch_size requests are waiting or
// the oldest exceeds the batch timeout; otherwise it reports how long to
// wait.
func tfservePick(queue []workload.Request, now float64, more bool, nextArrival float64, opts Options) ([]workload.Request, []workload.Request, float64) {
	if len(queue) >= opts.MaxBatch {
		return queue[:opts.MaxBatch], queue[opts.MaxBatch:], 0
	}
	deadline := queue[0].ArrivalMS + opts.BatchTimeoutMS
	if now >= deadline || !more {
		// Copy the flush: the emptied queue reuses the backing array.
		batch := make([]workload.Request, len(queue))
		copy(batch, queue)
		return batch, queue[:0], 0
	}
	// Wait for either the timeout or the next arrival, whichever first.
	wait := deadline - now
	if more && nextArrival > now && nextArrival-now < wait {
		wait = nextArrival - now
	}
	if wait <= 0 {
		wait = 1e-6
	}
	return nil, queue, wait
}

func summarize(results []Result, batches metrics.Counter, reqs []workload.Request) *Stats {
	s := &Stats{Results: results, AvgBatch: batches.Mean()}
	if len(results) == 0 {
		return s
	}
	drops, misses, correct, delivered := 0, 0, 0, 0
	var lastDone float64
	for _, r := range results {
		if r.Dropped {
			drops++
			continue
		}
		delivered++
		if r.SLOMiss {
			misses++
		}
		if r.Correct {
			correct++
		}
		if done := r.ArrivalMS + r.LatencyMS; done > lastDone {
			lastDone = done
		}
	}
	n := float64(len(results))
	s.DropRate = float64(drops) / n
	if delivered > 0 {
		s.SLOMissRate = float64(misses) / float64(delivered)
		s.Accuracy = float64(correct) / float64(delivered)
	}
	if lastDone > 0 {
		span := lastDone - reqs[0].ArrivalMS
		if span > 0 {
			s.ThroughputQPS = float64(delivered) / span * 1000
		}
	}
	return s
}
