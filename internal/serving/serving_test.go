package serving

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/controller"
	"repro/internal/exitsim"
	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/workload"
)

func vanillaResNet() (*model.Model, *VanillaHandler) {
	m := model.ResNet50()
	return m, &VanillaHandler{Model: m}
}

func TestVanillaLowRateBatchOne(t *testing.T) {
	m, h := vanillaResNet()
	// 30fps with a 16.4ms model: Clockwork should serve almost entirely
	// at batch size 1 (the paper's CV observation, §4.5).
	s := workload.Video(0, 2000, 30, 1)
	stats := Run(s.Iter(), h, Options{Platform: Clockwork, SLOms: m.SLO()})
	if stats.AvgBatch > 1.5 {
		t.Fatalf("avg batch %v at 30fps, want ~1", stats.AvgBatch)
	}
	if stats.DropRate > 0.01 {
		t.Fatalf("drop rate %v at a trivially sustainable rate", stats.DropRate)
	}
	lat := stats.Latencies()
	if lat.Median() < m.Latency(1) {
		t.Fatalf("median latency %v below pure serve time %v", lat.Median(), m.Latency(1))
	}
}

func TestClockworkRespectsSLO(t *testing.T) {
	m, h := vanillaResNet()
	qps := trace.TargetQPS(m)
	s := workload.Amazon(4000, qps, 2)
	stats := Run(s.Iter(), h, Options{Platform: Clockwork, SLOms: m.SLO()})
	// Clockwork plans batches against the SLO: delivered requests should
	// essentially never miss it (drops absorb infeasibility).
	if stats.SLOMissRate > 0.001 {
		t.Fatalf("clockwork SLO miss rate %v, want ~0", stats.SLOMissRate)
	}
}

func TestClockworkDropsUnderOverload(t *testing.T) {
	m, h := vanillaResNet()
	// 10x the sustainable rate must induce drops.
	s := workload.Amazon(4000, 10*trace.TargetQPS(m), 3)
	stats := Run(s.Iter(), h, Options{Platform: Clockwork, SLOms: m.SLO()})
	if stats.DropRate < 0.2 {
		t.Fatalf("drop rate %v under 10x overload, want substantial", stats.DropRate)
	}
}

func TestSnippetCriterionHolds(t *testing.T) {
	// §4.1: at TargetQPS, vanilla serving should drop < 20%.
	for _, m := range []*model.Model{model.BERTBase(), model.GPT2Medium()} {
		h := &VanillaHandler{Model: m}
		s := workload.Amazon(3000, trace.TargetQPS(m), 4)
		stats := Run(s.Iter(), h, Options{Platform: Clockwork, SLOms: m.SLO()})
		if stats.DropRate > 0.2 {
			t.Errorf("%s: drop rate %v > 20%% at target qps", m.Name, stats.DropRate)
		}
	}
}

func TestTFServeBatchSizeKnob(t *testing.T) {
	// Figure 2: smaller max_batch_size lowers delivered latency but
	// harms throughput (bursts overflow the bounded queue), while larger
	// max_batch_size absorbs bursts with bigger batches at higher
	// latency.
	m := model.BERTBase()
	h := &VanillaHandler{Model: m}
	qps := trace.TargetQPS(m)
	var prevBatch, prevMedian, prevDrops float64
	for i, mb := range []int{1, 4, 16} {
		s := workload.Amazon(4000, qps, 5)
		// TF-Serving accumulates batches up to batch_timeout; operators
		// scale the timeout with the target batch size.
		timeout := 1 + float64(mb-1)*1000/qps
		stats := Run(s.Iter(), h, Options{Platform: TFServe, SLOms: m.SLO(), MaxBatch: mb, BatchTimeoutMS: timeout})
		med := stats.Latencies().Median()
		if i > 0 {
			if stats.AvgBatch <= prevBatch {
				t.Errorf("max_batch %d: avg batch %v not above previous %v", mb, stats.AvgBatch, prevBatch)
			}
			if med <= prevMedian {
				t.Errorf("max_batch %d: median %v not above previous %v", mb, med, prevMedian)
			}
			if stats.DropRate > prevDrops {
				t.Errorf("max_batch %d: drop rate %v above previous %v (throughput should improve)",
					mb, stats.DropRate, prevDrops)
			}
		}
		prevBatch, prevMedian, prevDrops = stats.AvgBatch, med, stats.DropRate
	}
}

func TestTFServeDeliversEverythingAtLowRate(t *testing.T) {
	m := model.BERTBase()
	h := &VanillaHandler{Model: m}
	// A rate far below bs=1 capacity never overflows the queue.
	s := workload.Amazon(2000, 5, 6)
	stats := Run(s.Iter(), h, Options{Platform: TFServe, SLOms: m.SLO(), MaxBatch: 8})
	if stats.DropRate != 0 {
		t.Fatalf("tf-serve dropped requests at a trivial rate: %v", stats.DropRate)
	}
	if stats.Delivered != 2000 {
		t.Fatalf("delivered %d results, want 2000", stats.Delivered)
	}
}

func TestResultsCompleteAndConsistent(t *testing.T) {
	m, h := vanillaResNet()
	s := workload.Video(2, 1000, 30, 7)
	// The simulator keeps no per-request state; the Observer hook is the
	// streaming tap for raw results.
	seen := make(map[int]bool)
	var bad string
	stats := Run(s.Iter(), h, Options{
		Platform: Clockwork, SLOms: m.SLO(),
		Observer: func(r Result) {
			if seen[r.ID] {
				bad = fmt.Sprintf("request %d served twice", r.ID)
			}
			seen[r.ID] = true
			if !r.Dropped {
				if r.LatencyMS < r.ServeMS-1e-9 {
					bad = fmt.Sprintf("latency %v below serve time %v", r.LatencyMS, r.ServeMS)
				}
				if r.BatchSize < 1 {
					bad = fmt.Sprintf("bad batch size %d", r.BatchSize)
				}
			}
		},
	})
	if bad != "" {
		t.Fatal(bad)
	}
	if len(seen) != 1000 || stats.Total != 1000 {
		t.Fatalf("served %d distinct requests (stats.Total=%d), want 1000", len(seen), stats.Total)
	}
}

func TestVanillaAlwaysCorrect(t *testing.T) {
	m, h := vanillaResNet()
	s := workload.Video(0, 500, 30, 9)
	stats := Run(s.Iter(), h, Options{Platform: Clockwork, SLOms: m.SLO()})
	if stats.Accuracy != 1.0 {
		t.Fatalf("vanilla accuracy %v, want 1", stats.Accuracy)
	}
}

func TestApparateLowersLatencyKeepsAccuracy(t *testing.T) {
	m := model.ResNet50()
	prof := exitsim.ProfileFor(m, exitsim.KindVideo)
	s := workload.Video(0, 6000, 30, 11)

	vStats := Run(s.Iter(), &VanillaHandler{Model: m}, Options{Platform: Clockwork, SLOms: m.SLO()})
	h := NewApparate(model.ResNet50(), prof, 0.02, controller.Config{})
	aStats := Run(s.Iter(), h, Options{Platform: Clockwork, SLOms: m.SLO()})

	vMed := vStats.Latencies().Median()
	aMed := aStats.Latencies().Median()
	if aMed >= vMed {
		t.Fatalf("apparate median %v not below vanilla %v", aMed, vMed)
	}
	if aStats.Accuracy < 0.98 {
		t.Fatalf("apparate accuracy %v below constraint margin", aStats.Accuracy)
	}
	// Tail impact bounded by the 2% ramp budget (Figure 13).
	vP95 := vStats.Latencies().Percentile(95)
	aP95 := aStats.Latencies().Percentile(95)
	if aP95 > vP95*1.05 {
		t.Fatalf("apparate P95 %v exceeds vanilla %v by more than budget margin", aP95, vP95)
	}
}

func TestApparateThroughputPreserved(t *testing.T) {
	m := model.BERTBase()
	prof := exitsim.ProfileFor(m, exitsim.KindAmazon)
	qps := trace.TargetQPS(m)
	s := workload.Amazon(4000, qps, 12)
	vStats := Run(s.Iter(), &VanillaHandler{Model: m}, Options{Platform: Clockwork, SLOms: m.SLO()})
	h := NewApparate(model.BERTBase(), prof, 0.02, controller.Config{})
	aStats := Run(s.Iter(), h, Options{Platform: Clockwork, SLOms: m.SLO()})
	if aStats.ThroughputQPS < vStats.ThroughputQPS*0.97 {
		t.Fatalf("apparate throughput %v vs vanilla %v: more than 3%% loss",
			aStats.ThroughputQPS, vStats.ThroughputQPS)
	}
}

func TestStaticEEHandlerExits(t *testing.T) {
	m := model.ResNet50()
	prof := exitsim.ProfileFor(m, exitsim.KindVideo)
	h := NewApparate(m, prof, 0.02, controller.Config{})
	static := &StaticEEHandler{Cfg: h.Cfg}
	for _, r := range static.Cfg.Active {
		r.Threshold = 0.3
	}
	s := workload.Video(0, 500, 30, 13)
	stats := Run(s.Iter(), static, Options{Platform: Clockwork, SLOms: m.SLO()})
	if stats.Exits == 0 {
		t.Fatal("static EE handler produced no exits")
	}
}

func TestPlatformStrings(t *testing.T) {
	if Clockwork.String() != "clockwork" || TFServe.String() != "tf-serve" {
		t.Fatal("bad platform strings")
	}
}

func TestThroughputPositive(t *testing.T) {
	m, h := vanillaResNet()
	s := workload.Video(0, 300, 30, 15)
	stats := Run(s.Iter(), h, Options{Platform: Clockwork, SLOms: m.SLO()})
	if stats.ThroughputQPS <= 0 || math.IsNaN(stats.ThroughputQPS) {
		t.Fatalf("throughput %v", stats.ThroughputQPS)
	}
}

func TestCatchUpBatchingDrainsBacklog(t *testing.T) {
	// A model whose bs=1 service time slightly exceeds the arrival
	// period runs at >100% utilization at batch 1; catch-up batching
	// must hold for imminent arrivals and drain the backlog with larger
	// batches instead of letting waits sawtooth into drops.
	m := &model.Model{
		Name: "knife-edge", Family: model.FamilyResNet,
		Graph: model.ResNet50().Graph, Params: 1,
		BaseLatencyMS: 10.2, BatchBeta: 0.06, NumBlocks: 16,
	}
	reqs := make([]workload.Request, 3000)
	for i := range reqs {
		reqs[i] = workload.Request{ID: i, ArrivalMS: float64(i) * 10} // 100 qps
	}
	src := workload.FromSlice("knife-edge", 0, reqs)
	stats := Run(src.Iter(), &VanillaHandler{Model: m}, Options{Platform: Clockwork, SLOms: 60})
	if stats.DropRate > 0.01 {
		t.Fatalf("drop rate %v at 102%% bs-1 utilization; catch-up batching should absorb it", stats.DropRate)
	}
	if stats.AvgBatch <= 1.01 {
		t.Fatalf("avg batch %v: no catch-up batching happened", stats.AvgBatch)
	}
}
