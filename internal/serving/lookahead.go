package serving

import (
	"math"
	"strconv"
	"sync"

	"repro/internal/engine"
	"repro/internal/exitsim"
	"repro/internal/metrics"
	"repro/internal/ramp"
	"repro/internal/workload"
)

// Conservative-lookahead sharding for queue-state dispatch.
//
// Least-loaded and join-shortest-queue read every replica's queue state
// at every arrival, so replica groups cannot decouple the way
// round-robin shards do. But the coupling is one-directional and
// bounded: dispatch decisions happen only at arrival events, the
// signals they read (busy remainder, batched drain estimate, queue
// length) are pure functions of earlier dispatch decisions plus the
// replicas' frozen latency tables, and a request assigned at time t
// cannot complete before t plus the smallest batch-1 service time —
// the classic parallel-DES lookahead bound.
//
// The design realizes that bound as a pipeline:
//
//   - A designated dispatcher shard runs a full control-plane replica
//     of the cluster: every replica present, but its handler replaced
//     by a shadowHandler (the real handler's latency table frozen at
//     start of run — legal exactly because every handler declared
//     LatencyStable) and its stats recorded into metrics.Discard.
//     Serve outcomes never influence scheduling, so this shadow
//     simulation makes bit-for-bit the decision sequence the serial run
//     makes, including every within-epoch state transition (clockwork
//     drops, SLO-limited batch picks, catch-up holds, TF-Serve timeout
//     flushes) that a snapshot-only protocol would miss.
//   - The dispatcher paces its loop in lookahead-bounded epochs via
//     engine.RunUntil and publishes the epoch's resolved assignments as
//     a block at each epoch barrier (or earlier when a block fills
//     under burst).
//   - Worker shards own replica group g = {i : i % workers == g}, each
//     replaying the full arrival stream exactly like replay-mode shards
//     — the shared one-request lookahead replicas peek at must match
//     the serial run — but consuming the dispatcher's published target
//     for every arrival instead of dispatching locally.
//   - The merge walks replicas in global index order, the serial run's
//     float-addition order.
//
// Progress is deadlock-free by construction: the dispatcher only ever
// blocks on a full assignment channel, workers only on an empty one,
// and the dispatcher closes every channel after the final flush, so
// there is no wait cycle. Workers consume exactly one assignment per
// arrival — the number the dispatcher publishes.

// shadowHandler is the dispatcher shard's stand-in for a replica it
// does not serve on: the replica's batch-latency table frozen at start
// of run, pre-scaled by the replica's speed factor. Every control-plane
// read — dispatch signals, batch picks, catch-up holds — calls
// BatchLatency at batch sizes 1..MaxBatch, which the table covers.
// Serve returns a zero outcome: the dispatcher records results only
// into Discard recorders, and outcomes never feed back into scheduling
// (busyUntil advances by BatchLatency, not ServeMS).
type shadowHandler struct {
	lat []float64 // lat[b-1] = BatchLatency(b) for b in 1..MaxBatch
}

func (h *shadowHandler) BatchLatency(b int) float64 { return h.lat[b-1] }

func (h *shadowHandler) Serve(exitsim.Sample, int) ramp.Outcome { return ramp.Outcome{} }

const (
	// asnBlockCap bounds one published assignment block; a block that
	// fills mid-epoch (burst) flushes immediately, so dispatcher-side
	// buffering is O(1) regardless of trace length.
	asnBlockCap = 4096
	// asnFlushMin is the minimum block size worth publishing at an
	// epoch barrier. Epochs are one lookahead long (a few virtual
	// milliseconds), so low-rate runs would otherwise ship one-entry
	// blocks — channel-send overhead per arrival instead of per ~512.
	// Correctness never needs an eager flush: workers have no real-time
	// deadline, they just block until the block arrives.
	asnFlushMin = 512
	// asnChanDepth is the per-worker block-channel buffer: enough for
	// the dispatcher to run ahead without unbounded queueing.
	asnChanDepth = 8
)

// asnReader replays a worker's view of the dispatcher's assignment
// stream: blocks in, one target per arrival out.
type asnReader struct {
	ch  <-chan []int32
	buf []int32
	pos int
}

func (r *asnReader) next() int {
	for r.pos == len(r.buf) {
		blk, ok := <-r.ch
		if !ok {
			// The dispatcher publishes exactly one target per arrival
			// and every worker consumes exactly one per arrival, so an
			// exhausted channel here is a protocol bug, not a race.
			panic("serving: assignment stream ended before the arrival stream")
		}
		r.buf, r.pos = blk, 0
	}
	v := r.buf[r.pos]
	r.pos++
	return int(v)
}

// runLookaheadCluster executes a queue-state-dispatch cluster over
// min(Shards, Replicas) worker shards plus the dispatcher, byte-
// identical to runSerialCluster. Callers guarantee every handler is
// latency-stable (RunCluster checked) and that the configuration
// passed shardPlan's shardLookahead classification.
func runLookaheadCluster(stream *workload.Stream, handlers []Handler, opts ClusterOptions) *ClusterStats {
	nrep := opts.Replicas
	workers := opts.Shards
	if workers > nrep {
		// More shards than replicas clamps: an empty worker would sit
		// at the barrier owning nothing.
		workers = nrep
	}
	base := opts.Options.withDefaults()

	// Freeze each replica's latency table, speed-scaled exactly as the
	// worker's real replica will be, and derive the lookahead bound:
	// the smallest batch-1 service time across replicas — no batch
	// assigned inside an epoch can complete before the epoch's horizon.
	shadows := make([]Handler, nrep)
	lookahead := math.Inf(1)
	for i, h := range handlers {
		if len(opts.Speeds) > 0 {
			h = &scaledHandler{Handler: h, speed: opts.Speeds[i%len(opts.Speeds)]}
		}
		tab := make([]float64, base.MaxBatch)
		for b := 1; b <= base.MaxBatch; b++ {
			tab[b-1] = h.BatchLatency(b)
		}
		shadows[i] = &shadowHandler{lat: tab}
		if tab[0] < lookahead {
			lookahead = tab[0]
		}
	}
	if !(lookahead > 0) || math.IsInf(lookahead, 1) {
		lookahead = 1 // degenerate profile: pace in 1ms epochs
	}

	chans := make([]chan []int32, workers)
	for g := range chans {
		chans[g] = make(chan []int32, asnChanDepth)
	}

	var wg sync.WaitGroup
	sims := make([]*clusterSim, workers)
	for g := 0; g < workers; g++ {
		c := &clusterSim{
			loop: engine.New(),
			opts: opts,
			base: base,
			mk:   func(i int) Handler { return handlers[i] },
			it:   stream.Iter(),
		}
		if r, ok := c.it.Next(); ok {
			c.next, c.has = r, true
		}
		src := &asnReader{ch: chans[g]}
		c.asnNext = src.next
		for i := 0; i < nrep; i++ {
			if i%workers == g {
				c.addReplica(i)
			} else {
				c.replicas = append(c.replicas, nil)
			}
		}
		c.active = nrep
		sims[g] = c
		wg.Add(1)
		go func(c *clusterSim) {
			defer wg.Done()
			c.loop.Add(c)
			c.loop.Run()
		}(c)
	}

	// The dispatcher runs on the caller's goroutine. Its options clear
	// Speeds — the shadow tables are already speed-scaled, and scaling
	// twice would skew every decision.
	dopts := opts
	dopts.Speeds = nil
	d := &clusterSim{
		loop: engine.New(),
		opts: dopts,
		base: base,
		mk:   func(i int) Handler { return shadows[i] },
		it:   stream.Iter(),
	}
	if r, ok := d.it.Next(); ok {
		d.next, d.has = r, true
	}
	for i := 0; i < nrep; i++ {
		d.addReplica(i)
	}
	d.active = nrep
	for _, rep := range d.replicas {
		rep.st.Lat = metrics.Discard{}
	}
	block := make([]int32, 0, asnBlockCap)
	flush := func() {
		if len(block) == 0 {
			return
		}
		blk := block
		for _, ch := range chans {
			ch <- blk
		}
		block = make([]int32, 0, asnBlockCap)
	}
	d.asnPublish = func(target int) {
		block = append(block, int32(target))
		if len(block) == asnBlockCap {
			flush()
		}
	}
	d.loop.Add(d)
	for {
		next, ok := d.loop.NextAt()
		if !ok {
			break
		}
		// Anchoring the horizon at the next event (not the current
		// clock) guarantees every epoch fires at least one event even
		// across idle gaps longer than the lookahead.
		if !d.loop.RunUntil(next + lookahead) {
			break
		}
		if len(block) >= asnFlushMin {
			flush()
		}
	}
	flush()
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()

	// Merge in global replica order — the serial merge's float-addition
	// order — taking each replica from its owning worker.
	cs := &ClusterStats{
		PerReplica: make([]*Stats, nrep),
		ShardMode:  "lookahead:" + strconv.Itoa(workers),
	}
	merged := &Stats{Lat: metrics.NewRecorder(base.Metrics, 4096)}
	var batches metrics.Counter
	for i := 0; i < nrep; i++ {
		rep := sims[i%workers].replicas[i]
		rep.st.finalize()
		cs.PerReplica[i] = rep.st
		mergeStats(merged, rep.st)
		batches.Add(rep.st.AvgBatch)
	}
	merged.finalize()
	merged.AvgBatch = batches.Mean()
	cs.Merged = merged
	return cs
}
