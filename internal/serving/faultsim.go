package serving

import (
	"math"
	"sort"

	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/workload"
)

// FaultStats aggregates availability under an injected fault model.
type FaultStats struct {
	// Crashes counts realized crash events (one-shot and churn).
	Crashes int
	// Lost counts requests that never reached any replica: every
	// dispatched copy was lost in transit and the retry budget ran out.
	Lost int
	// Retried counts re-dispatches of all kinds: loss-timeout retries,
	// queue-overflow re-dispatches, and crash requeues.
	Retried int
	// Hedged counts hedge duplicates launched; Wasted counts copy
	// outcomes discarded because another copy won the request first
	// (the cost of hedging without cancellation).
	Hedged int
	Wasted int
	// DowntimeMS is each replica's total down time in milliseconds,
	// indexed like ClusterStats.PerReplica.
	DowntimeMS []float64
	// UnavailMS is the total time the cluster spent with zero live
	// replicas.
	UnavailMS float64
	// Outages records the duration of every per-replica down interval —
	// the availability distribution (percentiles via metrics.Recorder).
	Outages metrics.Recorder
}

// Downtime is the summed per-replica downtime.
func (f *FaultStats) Downtime() float64 {
	total := 0.0
	for _, d := range f.DowntimeMS {
		total += d
	}
	return total
}

// pendSlot is the dispatcher's book entry for one not-yet-resolved
// request: how many copies are outstanding (queued, in transit, or
// lost-but-undetected), how many dispatch attempts it has consumed, and
// which replicas have been tried (failed-replica exclusion). Slots live
// in faultMode.pend, a direct-mapped power-of-two table indexed by
// request ID — request IDs are dense and the outstanding set is a
// sliding window, so id & (len-1) is collision-free at a table a bit
// wider than the window, and the table doubles on the rare collision.
// id == -1 marks a free slot; a recycled slot keeps its tried backing
// array, so steady-state bookkeeping allocates nothing.
type pendSlot struct {
	id       int
	req      workload.Request
	attempts int
	copies   int
	hedged   bool
	tried    []int
}

// faultMode is the dispatcher-side fault runtime: it realizes a
// faults.Spec as events on the cluster's engine clock (crash/restart
// transitions, delayed deliveries, loss-detection timeouts) and owns
// the retry/hedging policy plus the arbitration that keeps duplicate
// copies from double-counting. All randomness comes from rng streams
// labeled off the fault seed — the "faults" streams — so the workload's
// own draws are untouched and a faulty run is exactly as deterministic
// as a reliable one: same spec, same seed, same events, at any sweep
// worker count.
type faultMode struct {
	c     *clusterSim
	spec  *faults.Spec // nil in retry-only mode
	retry faults.Retry

	// net draws transit loss and delay, one copy at a time in dispatch
	// order; churnSeed derives each replica's independent MTBF/MTTR
	// stream.
	net       *rng.Rand
	churnSeed uint64
	timeoutMS float64

	// pend is the direct-mapped outstanding-request table (see
	// pendSlot); npend counts live slots. Slot pointers are stable
	// within one event dispatch — inserts (the only trigger of table
	// growth) happen only when a fresh arrival enters the runtime.
	pend  []pendSlot
	npend int
	// parked holds the IDs of requests that arrived while zero replicas
	// were live; they re-dispatch in FIFO order at the next restart. IDs
	// are never recycled within a run, so an ID whose slot has resolved
	// simply looks up to nil — the staleness check.
	parked   []int
	eligible []int // scratch for pick
	// churnProcs holds one entry per started churn chain; engine events
	// address them by index so the chain carries no closure state.
	churnProcs []churnProc
	// latQ estimates delivered-latency quantiles for the hedge deadline.
	latQ *metrics.Sketch

	// st carries dispatcher-level outcomes: the true first-arrival
	// timestamp and the Lost results, merged into ClusterStats.Merged.
	st *Stats
	fs *FaultStats
	// downAt[i] is the start of replica i's current outage (NaN while
	// up); unavailAt the start of the current zero-live window.
	downAt    []float64
	unavailAt float64
}

func newFaultMode(c *clusterSim, spec *faults.Spec, retry faults.Retry, seed uint64) *faultMode {
	fm := &faultMode{
		c:         c,
		spec:      spec,
		retry:     retry,
		net:       rng.Labeled(seed, "faults.net"),
		churnSeed: rng.Labeled(seed, "faults.churn").Uint64(),
		pend:      newPendTable(64),
		latQ:      metrics.NewSketch(),
		st:        &Stats{Lat: metrics.NewRecorder(c.base.Metrics, 16)},
		fs:        &FaultStats{Outages: metrics.NewRecorder(c.base.Metrics, 16)},
		unavailAt: math.NaN(),
	}
	fm.timeoutMS = c.base.SLOms
	if spec != nil && spec.TimeoutMS > 0 {
		fm.timeoutMS = spec.TimeoutMS
	}
	if fm.timeoutMS <= 0 {
		fm.timeoutMS = 100 // SLO-less options: a fixed detection delay
	}
	return fm
}

// newPendTable returns a free-marked direct-mapped table of the given
// power-of-two size.
func newPendTable(size int) []pendSlot {
	t := make([]pendSlot, size)
	for i := range t {
		t[i].id = -1
	}
	return t
}

// lookup returns the live slot for id, or nil once the request has
// resolved (or was never pending).
func (fm *faultMode) lookup(id int) *pendSlot {
	s := &fm.pend[id&(len(fm.pend)-1)]
	if s.id != id {
		return nil
	}
	return s
}

// insert claims a slot for a fresh arrival, doubling the table when the
// request's home slot is occupied by an older outstanding request.
// Growth preserves the direct-mapped invariant: IDs distinct mod N are
// distinct mod 2N, so live entries never collide after rehashing.
func (fm *faultMode) insert(req workload.Request) *pendSlot {
	for {
		s := &fm.pend[req.ID&(len(fm.pend)-1)]
		if s.id == -1 {
			s.id = req.ID
			s.req = req
			s.attempts, s.copies = 0, 0
			s.hedged = false
			s.tried = s.tried[:0]
			fm.npend++
			return s
		}
		next := newPendTable(2 * len(fm.pend))
		for i := range fm.pend {
			if fm.pend[i].id != -1 {
				next[fm.pend[i].id&(len(next)-1)] = fm.pend[i]
			}
		}
		fm.pend = next
	}
}

// del frees id's slot; a no-op if the request already resolved.
func (fm *faultMode) del(id int) {
	s := &fm.pend[id&(len(fm.pend)-1)]
	if s.id == id {
		s.id = -1
		fm.npend--
	}
}

// parkedCount is the number of arrivals held at the dispatcher.
func (fm *faultMode) parkedCount() int { return len(fm.parked) }

// churnProc is one replica's MTBF/MTTR chain: the engine addresses it
// by index, and the chain's exponential draws come from its own rng
// stream so churn is independent of dispatch order.
type churnProc struct {
	replica int
	ch      faults.Churn
	r       *rng.Rand
}

// Engine-event op codes dispatched to faultMode.OnEvent. opDeliver
// packs its target and request ID into one arg; the others carry a
// replica index, churn-process index, or request ID directly.
const (
	opCrashOnce uint8 = iota
	opRestartOnce
	opChurnCrash
	opChurnRestart
	opHedge
	opLossTimeout
	opDeliver
)

// deliverIDBits is the arg split for opDeliver: the low 40 bits carry
// the request ID (IDs are dense stream positions, far below 2^40) and
// the high bits the target replica.
const deliverIDBits = 40

// OnEvent dispatches the fault runtime's engine events; faultMode is
// its own pre-bound handler, so arming a crash, restart, hedge,
// timeout, or delayed delivery never allocates.
func (fm *faultMode) OnEvent(now float64, op uint8, arg uint64) {
	switch op {
	case opCrashOnce:
		fm.crash(int(arg), now)
	case opRestartOnce:
		fm.restart(int(arg), now)
	case opChurnCrash:
		p := &fm.churnProcs[arg]
		if fm.idle() {
			return // drained: stop rescheduling, bounding the run
		}
		fm.crash(p.replica, now)
		fm.c.loop.Schedule(now+p.r.Exp(1/p.ch.DownMS), classFault, fm, opChurnRestart, arg)
	case opChurnRestart:
		p := &fm.churnProcs[arg]
		fm.restart(p.replica, now)
		fm.c.loop.Schedule(now+p.r.Exp(1/p.ch.UpMS), classFault, fm, opChurnCrash, arg)
	case opHedge:
		fm.onHedge(int(arg), now)
	case opLossTimeout:
		fm.onLossTimeout(int(arg), now)
	case opDeliver:
		fm.deliver(int(arg>>deliverIDBits), int(arg&(1<<deliverIDBits-1)), now)
	}
}

// Start schedules the spec's one-shot crash/restart pairs; faultMode is
// an engine.Process. Churn processes start per replica in
// onReplicaAdded (replicas can be created mid-run by the autoscaler).
func (fm *faultMode) Start(l *engine.Loop) {
	if fm.spec == nil {
		return
	}
	for _, cr := range fm.spec.Crashes {
		l.Schedule(cr.AtMS, classFault, fm, opCrashOnce, uint64(cr.Replica))
		l.Schedule(cr.AtMS+cr.DownMS, classFault, fm, opRestartOnce, uint64(cr.Replica))
	}
}

// onReplicaAdded extends the per-replica fault state and attaches any
// churn process covering the new replica.
func (fm *faultMode) onReplicaAdded(i int) {
	fm.downAt = append(fm.downAt, math.NaN())
	fm.fs.DowntimeMS = append(fm.fs.DowntimeMS, 0)
	if fm.spec == nil {
		return
	}
	for _, ch := range fm.spec.Churns {
		if ch.Replica == -1 || ch.Replica == i {
			fm.startChurn(i, ch)
		}
	}
}

// startChurn begins replica i's periodic MTBF/MTTR process: up-times
// and down-times are exponential draws from a per-replica stream
// derived from the churn seed, so the process is independent of
// dispatch order and of every other replica's churn. The chain stops
// rescheduling once the trace is drained and nothing is outstanding,
// bounding the run.
func (fm *faultMode) startChurn(i int, ch faults.Churn) {
	r := rng.New(fm.churnSeed ^ (uint64(i)+1)*0x9e3779b97f4a7c15)
	fm.churnProcs = append(fm.churnProcs, churnProc{replica: i, ch: ch, r: r})
	idx := uint64(len(fm.churnProcs) - 1)
	fm.c.loop.Schedule(fm.c.loop.Now()+r.Exp(1/ch.UpMS), classFault, fm, opChurnCrash, idx)
}

// idle reports that no future work can appear: the trace is exhausted
// and every request has resolved.
func (fm *faultMode) idle() bool { return !fm.c.has && fm.npend == 0 }

// liveActive counts dispatchable replicas: active and not down.
func (fm *faultMode) liveActive() int {
	n := 0
	for i := 0; i < fm.c.active; i++ {
		if !fm.c.replicas[i].down {
			n++
		}
	}
	return n
}

// crash fail-stops replica i at time now. The batch in flight has
// already committed (batch execution is atomic in the simulator), but
// everything still queued is requeued to the dispatcher and
// re-dispatched immediately — crash requeues are infrastructure, not
// bounded by Retry.Attempts. Crashing an already-down replica, a
// replica the run never materialized, or a drained cluster is a no-op;
// overlapping down windows merge (the earliest restart revives). A
// retired replica can crash too — it is still a machine, its draining
// queue still requeues and its downtime still accrues — but only
// active live capacity moves the unavailability window.
func (fm *faultMode) crash(i int, now float64) {
	if i >= len(fm.c.replicas) || fm.idle() {
		return
	}
	rep := fm.c.replicas[i]
	if rep.down {
		return
	}
	rep.down = true
	fm.fs.Crashes++
	fm.downAt[i] = now
	if tr := fm.c.tr; tr != nil {
		e := obs.At(now, obs.KindCrash)
		e.Replica = i
		tr.Emit(e)
	}
	if fm.liveActive() == 0 && math.IsNaN(fm.unavailAt) {
		fm.openUnavail(now)
	}
	// The crashed replica's live queue requeues; no event can enqueue
	// onto a down replica, so iterating the emptied array is safe.
	q := rep.q()
	rep.queue, rep.qhead = rep.queue[:0], 0
	for _, req := range q {
		entry := fm.lookup(req.ID)
		if entry == nil {
			continue // stale copy of an already-resolved request
		}
		entry.copies--
		fm.fs.Retried++
		fm.send(entry, now, false, obs.KindRequeue)
	}
}

// restart revives replica i (empty-queued, idle). The unavailability
// window closes — and parked requests flush — only if the revival
// actually restored dispatchable capacity (reviving a retired replica
// does not).
func (fm *faultMode) restart(i int, now float64) {
	if i >= len(fm.c.replicas) {
		return
	}
	rep := fm.c.replicas[i]
	if !rep.down {
		return
	}
	rep.down = false
	d := now - fm.downAt[i]
	fm.fs.DowntimeMS[i] += d
	fm.fs.Outages.Add(d)
	fm.downAt[i] = math.NaN()
	if tr := fm.c.tr; tr != nil {
		e := obs.At(now, obs.KindRestart)
		e.Replica = i
		e.DurMS = d
		tr.Emit(e)
	}
	if fm.liveActive() > 0 {
		fm.closeUnavail(now)
		fm.flushParked(now)
	}
}

// openUnavail starts a zero-live-capacity window at time now.
func (fm *faultMode) openUnavail(now float64) {
	fm.unavailAt = now
	if tr := fm.c.tr; tr != nil {
		tr.Emit(obs.At(now, obs.KindOutageStart))
	}
}

// closeUnavail ends an open zero-live-capacity window at time now. The
// traced outage_end carries the window length, so summed pair durations
// reconcile exactly with FaultStats.UnavailMS.
func (fm *faultMode) closeUnavail(now float64) {
	if !math.IsNaN(fm.unavailAt) {
		d := now - fm.unavailAt
		fm.fs.UnavailMS += d
		fm.unavailAt = math.NaN()
		if tr := fm.c.tr; tr != nil {
			e := obs.At(now, obs.KindOutageEnd)
			e.DurMS = d
			tr.Emit(e)
		}
	}
}

// flushParked re-dispatches every request parked during a zero-live
// window, in FIFO order.
func (fm *faultMode) flushParked(now float64) {
	if len(fm.parked) == 0 {
		return
	}
	parked := fm.parked
	fm.parked = nil
	for _, id := range parked {
		entry := fm.lookup(id)
		if entry == nil {
			continue // resolved while parked
		}
		fm.send(entry, now, false, obs.KindDispatch)
	}
}

// onActiveChanged reconciles availability state after the autoscaler
// resizes the active set: capacity is capacity, whether it comes from
// a restart or a scale-up, so a resize that restores live capacity
// ends the unavailability window and flushes parked requests, and a
// scale-down that strands the cluster on down replicas opens one.
func (fm *faultMode) onActiveChanged(now float64) {
	if fm.liveActive() > 0 {
		fm.closeUnavail(now)
		fm.flushParked(now)
	} else if math.IsNaN(fm.unavailAt) && !fm.idle() {
		fm.openUnavail(now)
	}
}

// dispatchNew admits one fresh arrival into the fault runtime.
func (fm *faultMode) dispatchNew(req workload.Request, now float64) {
	fm.st.noteArrival(req)
	entry := fm.insert(req)
	fm.send(entry, now, true, obs.KindDispatch)
}

// send dispatches one copy of the request: pick a live replica
// (preferring untried ones), arm the hedge deadline on the first
// attempt, then put the copy on the wire — where it may be lost or
// delayed. fresh marks the request's very first dispatch, which is the
// only one that folds into the autoscaler's window signals (retries
// are not new demand). kind is the trace label for this dispatch —
// dispatch, requeue, retry, or hedge.
func (fm *faultMode) send(entry *pendSlot, now float64, fresh bool, kind obs.Kind) {
	c := fm.c
	target, ok := fm.pick(now, entry.tried)
	if !ok {
		// Zero live replicas: hold at the dispatcher until a restart or
		// scale-up restores capacity. The autoscale window sees a
		// pessimistic latency sample so an outage registers as load,
		// never as idleness.
		fm.parked = append(fm.parked, entry.id)
		if tr := c.tr; tr != nil {
			e := obs.At(now, obs.KindPark)
			e.Req = entry.req.ID
			tr.Emit(e)
		}
		if c.scaler != nil && fresh {
			c.winLat.Add(2 * c.base.SLOms)
		}
		return
	}
	entry.attempts++
	entry.copies++
	entry.tried = append(entry.tried, target)
	rep := c.replicas[target]
	if tr := c.tr; tr != nil {
		e := obs.At(now, kind)
		e.Req = entry.req.ID
		e.Replica = target
		e.Val = entry.attempts
		tr.Emit(e)
	}
	if c.scaler != nil && fresh {
		wait := rep.work(now)
		c.winLat.Add(wait + rep.estCost)
		if wait > c.peakBacklog {
			c.peakBacklog = wait
		}
		c.busy += rep.estCost
	}
	// Hedge: at most one duplicate per request, armed on the first
	// dispatch once the latency estimator has enough samples and a
	// second replica exists to host the copy.
	if fm.retry.HedgeQ > 0 && entry.attempts == 1 &&
		fm.latQ.Len() >= fm.retry.HedgeMin && c.active > 1 {
		at := now + fm.latQ.Percentile(fm.retry.HedgeQ)
		c.loop.Schedule(at, classTimeout, fm, opHedge, uint64(entry.id))
	}
	if fm.spec != nil {
		// Transit: loss and delay are per-copy draws from the dedicated
		// network stream, in dispatch order.
		if fm.spec.Loss > 0 && fm.net.Float64() < fm.spec.Loss {
			c.loop.Schedule(now+fm.timeoutMS, classTimeout, fm, opLossTimeout, uint64(entry.id))
			return // the copy never arrives; the timeout notices
		}
		if fm.spec.Delay.Kind != faults.DelayNone {
			if d := fm.spec.Delay.Sample(fm.net); d > 0 {
				c.loop.Schedule(now+d, classArrival, fm, opDeliver,
					uint64(target)<<deliverIDBits|uint64(entry.id))
				return
			}
		}
	}
	rep.enqueue(entry.req, now)
}

// pick selects a live active replica under the cluster's dispatch
// policy, preferring replicas not yet tried for this request
// (failed-replica exclusion); when every live replica has been tried
// the exclusion is waived rather than failing the dispatch. ok=false
// means zero live replicas.
func (fm *faultMode) pick(now float64, tried []int) (int, bool) {
	c := fm.c
	fm.eligible = fm.eligible[:0]
	for i := 0; i < c.active; i++ {
		if c.replicas[i].down || containsInt(tried, i) {
			continue
		}
		fm.eligible = append(fm.eligible, i)
	}
	if len(fm.eligible) == 0 {
		for i := 0; i < c.active; i++ {
			if !c.replicas[i].down {
				fm.eligible = append(fm.eligible, i)
			}
		}
	}
	if len(fm.eligible) == 0 {
		return 0, false
	}
	return c.pickAmong(fm.eligible, now), true
}

// deliver completes a delayed hop: the copy reaches its replica —
// unless the request already resolved (the copy evaporates) or the
// replica died while the copy was on the wire (requeue).
func (fm *faultMode) deliver(target, id int, now float64) {
	entry := fm.lookup(id)
	if entry == nil {
		return
	}
	rep := fm.c.replicas[target]
	if rep.down {
		entry.copies--
		fm.fs.Retried++
		fm.send(entry, now, false, obs.KindRequeue)
		return
	}
	rep.enqueue(entry.req, now)
}

// onLossTimeout fires when a lost copy's detection timeout expires:
// retry if the attempt budget allows, otherwise the request is lost
// for good once no other copy is still racing.
func (fm *faultMode) onLossTimeout(id int, now float64) {
	entry := fm.lookup(id)
	if entry == nil {
		return // another copy resolved the request
	}
	entry.copies--
	if tr := fm.c.tr; tr != nil {
		e := obs.At(now, obs.KindTimeout)
		e.Req = id
		tr.Emit(e)
	}
	if entry.attempts < fm.attemptCap() {
		fm.fs.Retried++
		fm.send(entry, now, false, obs.KindRetry)
		return
	}
	if entry.copies > 0 {
		return // a hedge twin may still succeed
	}
	fm.del(id)
	fm.recordLost(entry.req, now)
}

// recordLost finalizes a request as lost at time now.
func (fm *faultMode) recordLost(req workload.Request, now float64) {
	fm.fs.Lost++
	fm.st.record(Result{
		ID: req.ID, ArrivalMS: req.ArrivalMS,
		Dropped: true, Lost: true, SLOMiss: true, ExitIndex: -1,
	}, fm.c.base.Observer)
	if tr := fm.c.tr; tr != nil {
		e := obs.At(now, obs.KindLost)
		e.Req = req.ID
		tr.Emit(e)
	}
}

// onHedge fires at the hedge deadline: a request still unresolved gets
// one duplicate dispatched to a different replica; first copy to be
// batched wins.
func (fm *faultMode) onHedge(id int, now float64) {
	entry := fm.lookup(id)
	if entry == nil || entry.hedged {
		return
	}
	entry.hedged = true
	fm.fs.Hedged++
	fm.send(entry, now, false, obs.KindHedge)
}

// reject handles a queue-overflow bounce (TF-Serving's bounded queue):
// the dispatcher may retry the copy on another live replica while the
// attempt budget lasts; otherwise the drop is final once this was the
// last copy.
func (fm *faultMode) reject(r *replicaSim, req workload.Request, now float64) {
	entry := fm.lookup(req.ID)
	if entry == nil {
		return // stale copy bounced off a full queue
	}
	entry.copies--
	if entry.attempts < fm.attemptCap() && fm.liveOther(r.idx) {
		fm.fs.Retried++
		fm.send(entry, now, false, obs.KindRetry)
		return
	}
	if entry.copies > 0 {
		return
	}
	fm.del(req.ID)
	res := Result{
		ID: req.ID, ArrivalMS: req.ArrivalMS,
		Dropped: true, SLOMiss: true, ExitIndex: -1,
	}
	r.st.record(res, r.opts.Observer)
	fm.c.observeResult(res, r.idx)
}

// complete arbitrates one copy's outcome from a replica. The first
// copy to resolve wins the request; later copies are wasted work. A
// policy drop only finalizes the request when it was the last
// outstanding copy — a hedge twin may still succeed elsewhere.
func (fm *faultMode) complete(r *replicaSim, res Result) {
	entry := fm.lookup(res.ID)
	if entry == nil {
		fm.fs.Wasted++
		return
	}
	entry.copies--
	if res.Dropped {
		if entry.copies > 0 {
			return
		}
		fm.del(res.ID)
		r.st.record(res, r.opts.Observer)
		fm.c.observeResult(res, r.idx)
		return
	}
	fm.del(res.ID)
	r.st.record(res, r.opts.Observer)
	fm.c.observeResult(res, r.idx)
	fm.latQ.Add(res.LatencyMS)
}

// attemptCap is the per-request dispatch budget (>= 1).
func (fm *faultMode) attemptCap() int {
	if fm.retry.Attempts > 1 {
		return fm.retry.Attempts
	}
	return 1
}

// liveOther reports whether any live active replica other than idx
// exists — the precondition for an overflow retry to go anywhere new.
func (fm *faultMode) liveOther(idx int) bool {
	for i := 0; i < fm.c.active; i++ {
		if i != idx && !fm.c.replicas[i].down {
			return true
		}
	}
	return false
}

// finish closes the books at the end of the run: open downtimes and
// unavailability windows are clipped at the final event time, and any
// request still unresolved (impossible under a well-formed schedule,
// handled defensively in deterministic ID order) is recorded lost.
func (fm *faultMode) finish(endMS float64) {
	for i, at := range fm.downAt {
		if !math.IsNaN(at) {
			d := endMS - at
			fm.fs.DowntimeMS[i] += d
			fm.fs.Outages.Add(d)
			fm.downAt[i] = math.NaN()
			if tr := fm.c.tr; tr != nil {
				// Balance the open crash span so the trace's down windows
				// reconcile with DowntimeMS even when the run ends mid-outage.
				e := obs.At(endMS, obs.KindRestart)
				e.Replica = i
				e.DurMS = d
				tr.Emit(e)
			}
		}
	}
	fm.closeUnavail(endMS)
	if fm.npend == 0 {
		return
	}
	ids := make([]int, 0, fm.npend)
	for i := range fm.pend {
		if fm.pend[i].id != -1 {
			ids = append(ids, fm.pend[i].id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		entry := fm.lookup(id)
		fm.del(id)
		fm.recordLost(entry.req, endMS)
	}
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
