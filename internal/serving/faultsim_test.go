package serving

import (
	"testing"

	"repro/internal/autoscale"
	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/workload"
)

func mustFaults(t *testing.T, spec string) *faults.Spec {
	t.Helper()
	s, err := faults.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustRetry(t *testing.T, spec string) faults.Retry {
	t.Helper()
	r, err := faults.ParseRetry(spec)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// faultCluster runs a vanilla video cluster under the given fault
// options with a generous SLO (nothing drops for latency reasons).
func faultCluster(m *model.Model, n, replicas int, qps float64, seed uint64, sloMult float64, opts ClusterOptions) *ClusterStats {
	s := workload.Video(0, n, qps, seed)
	opts.Options.Platform = Clockwork
	opts.Options.SLOms = sloMult * m.SLO()
	opts.Replicas = replicas
	return RunCluster(s, func(int) Handler { return &VanillaHandler{Model: m} }, opts)
}

// TestFaultSeedDoesNotPerturbReliableRuns pins half of the
// no-perturbation contract: a run with the fault machinery disabled is
// byte-identical whatever FaultSeed says, because no fault stream is
// ever created, let alone drawn from. (The other half — faults=off
// equals the pre-fault simulator — is pinned by the golden sweep rows
// and the single-replica equivalence gate.)
func TestFaultSeedDoesNotPerturbReliableRuns(t *testing.T) {
	m := model.ResNet50()
	a := faultCluster(m, 2000, 2, 60, 71, 1, ClusterOptions{Dispatch: LeastLoaded})
	b := faultCluster(m, 2000, 2, 60, 71, 1, ClusterOptions{Dispatch: LeastLoaded, FaultSeed: 999})
	if a.Faults != nil || b.Faults != nil {
		t.Fatal("reliable runs must not activate fault mode")
	}
	if a.Merged.Total != b.Merged.Total || a.Merged.Drops != b.Merged.Drops ||
		a.Merged.Lat.Percentile(99) != b.Merged.Lat.Percentile(99) {
		t.Fatal("FaultSeed changed a reliable run")
	}
}

// TestFaultStreamLeavesWorkloadUnchanged pins the other direction at
// the request level: the requests a faulty run sees (IDs, arrival
// times, sample difficulties) are exactly the fault-free stream —
// fault draws come from labeled side streams, never from the workload
// seed.
func TestFaultStreamLeavesWorkloadUnchanged(t *testing.T) {
	m := model.ResNet50()
	type key struct {
		arrival    float64
		difficulty float64
	}
	collect := func(opts ClusterOptions) map[int]key {
		seen := map[int]key{}
		s := workload.Video(0, 1500, 60, 72)
		opts.Options = Options{Platform: Clockwork, SLOms: 10 * m.SLO()}
		opts.Replicas = 2
		it := s.Iter()
		for {
			r, ok := it.Next()
			if !ok {
				break
			}
			seen[r.ID] = key{r.ArrivalMS, r.Sample.Difficulty}
		}
		RunCluster(s, func(int) Handler { return &VanillaHandler{Model: m} }, opts)
		return seen
	}
	base := collect(ClusterOptions{})
	faulty := collect(ClusterOptions{
		Faults:    mustFaults(t, "crash:r1@2000+500;delaydist=exp:2;loss=0.01"),
		Retry:     mustRetry(t, "attempts=3"),
		FaultSeed: 7,
	})
	if len(base) != len(faulty) {
		t.Fatalf("stream lengths differ: %d vs %d", len(base), len(faulty))
	}
	for id, k := range base {
		if faulty[id] != k {
			t.Fatalf("request %d changed under faults: %+v vs %+v", id, k, faulty[id])
		}
	}
}

// TestCrashRequeuesAndAccountsDowntime is the basic crash/restart
// acceptance: a one-shot mid-run crash loses nothing (the dead
// replica's queue is requeued), no dispatch lands on the dead replica
// during its outage, and the availability metrics match the injected
// schedule exactly.
func TestCrashRequeuesAndAccountsDowntime(t *testing.T) {
	m := model.ResNet50()
	const crashAt, down = 2000.0, 500.0
	perReplica := make(map[int][]Result)
	// 150 fps over two replicas keeps real queues standing, so the
	// crash catches replica 1 with work to requeue.
	cs := faultCluster(m, 3000, 2, 150, 73, 10, ClusterOptions{
		Dispatch:  RoundRobin,
		Faults:    mustFaults(t, "crash:r1@2000+500"),
		FaultSeed: 1,
		ReplicaObserver: func(rep int, r Result) {
			perReplica[rep] = append(perReplica[rep], r)
		},
	})
	if cs.Faults == nil {
		t.Fatal("fault run reported no FaultStats")
	}
	if cs.Merged.Total != 3000 || cs.Merged.Drops != 0 {
		t.Fatalf("crash lost work: total %d, drops %d", cs.Merged.Total, cs.Merged.Drops)
	}
	if cs.Faults.Crashes != 1 {
		t.Fatalf("realized %d crashes, want 1", cs.Faults.Crashes)
	}
	if got := cs.Faults.DowntimeMS[1]; got != down {
		t.Fatalf("replica 1 downtime %g, want %g", got, down)
	}
	if got := cs.Faults.DowntimeMS[0]; got != 0 {
		t.Fatalf("replica 0 downtime %g, want 0", got)
	}
	if cs.Faults.UnavailMS != 0 {
		t.Fatalf("one live replica remained but UnavailMS = %g", cs.Faults.UnavailMS)
	}
	if cs.Faults.Retried == 0 {
		t.Fatal("crash requeued nothing despite a loaded queue")
	}
	if cs.Faults.Outages.Len() != 1 || cs.Faults.Outages.Max() != down {
		t.Fatalf("outage recorder %d entries max %g, want 1 entry of %g",
			cs.Faults.Outages.Len(), cs.Faults.Outages.Max(), down)
	}
	// No request that arrived during the outage may be served by the
	// dead replica.
	for _, r := range perReplica[1] {
		if r.ArrivalMS >= crashAt && r.ArrivalMS < crashAt+down {
			t.Fatalf("replica 1 served request %d that arrived at %g during its outage", r.ID, r.ArrivalMS)
		}
	}
}

// TestTotalOutageParksAndResumes pins the zero-live-replica path: with
// a single replica crashed, arrivals park at the dispatcher and are
// served after the restart; the unavailability window equals the
// injected downtime and nothing is lost.
func TestTotalOutageParksAndResumes(t *testing.T) {
	m := model.ResNet50()
	const down = 400.0
	cs := faultCluster(m, 2000, 1, 30, 74, 20, ClusterOptions{
		Dispatch:  RoundRobin,
		Faults:    mustFaults(t, "crash:r0@1000+400"),
		FaultSeed: 2,
	})
	if cs.Merged.Total != 2000 || cs.Merged.Drops != 0 || cs.Faults.Lost != 0 {
		t.Fatalf("total outage lost work: total %d drops %d lost %d",
			cs.Merged.Total, cs.Merged.Drops, cs.Faults.Lost)
	}
	if cs.Faults.UnavailMS != down {
		t.Fatalf("UnavailMS = %g, want %g", cs.Faults.UnavailMS, down)
	}
	if cs.Faults.DowntimeMS[0] != down {
		t.Fatalf("downtime %g, want %g", cs.Faults.DowntimeMS[0], down)
	}
}

// TestLossRetriesRecoverRequests: with heavy transit loss, a bounded
// retry budget turns lost requests into delivered ones; without it
// they are recorded Lost. Conservation holds either way: every request
// resolves exactly once.
func TestLossRetriesRecoverRequests(t *testing.T) {
	m := model.ResNet50()
	run := func(retry string) *ClusterStats {
		return faultCluster(m, 3000, 2, 60, 75, 10, ClusterOptions{
			Dispatch:  RoundRobin,
			Faults:    mustFaults(t, "loss=0.2;timeout=30"),
			Retry:     mustRetry(t, retry),
			FaultSeed: 3,
		})
	}
	plain, retried := run(""), run("attempts=4")
	if plain.Merged.Total != 3000 || retried.Merged.Total != 3000 {
		t.Fatalf("conservation violated: totals %d / %d, want 3000", plain.Merged.Total, retried.Merged.Total)
	}
	if plain.Faults.Lost == 0 {
		t.Fatal("20% loss with no retry lost nothing")
	}
	if plain.Merged.Lost != plain.Faults.Lost {
		t.Fatalf("merged lost %d != fault stats lost %d", plain.Merged.Lost, plain.Faults.Lost)
	}
	if retried.Faults.Lost*10 > plain.Faults.Lost {
		t.Fatalf("4 attempts left %d lost vs %d without retry; want ~p^4 reduction",
			retried.Faults.Lost, plain.Faults.Lost)
	}
	if retried.Faults.Retried == 0 {
		t.Fatal("retried run reported no retries")
	}
	if retried.Merged.Delivered <= plain.Merged.Delivered {
		t.Fatalf("retries delivered %d <= %d without", retried.Merged.Delivered, plain.Merged.Delivered)
	}
}

// TestNetworkDelayShiftsLatency pins the delay hop: a constant 5ms
// dispatcher→replica delay shifts the whole latency distribution by
// ~5ms under light load.
func TestNetworkDelayShiftsLatency(t *testing.T) {
	m := model.ResNet50()
	base := faultCluster(m, 2000, 2, 30, 76, 10, ClusterOptions{Dispatch: RoundRobin})
	delayed := faultCluster(m, 2000, 2, 30, 76, 10, ClusterOptions{
		Dispatch:  RoundRobin,
		Faults:    mustFaults(t, "delaydist=const:5"),
		FaultSeed: 4,
	})
	if delayed.Merged.Total != base.Merged.Total {
		t.Fatalf("delay changed request count: %d vs %d", delayed.Merged.Total, base.Merged.Total)
	}
	dm, bm := delayed.Merged.Lat.Mean(), base.Merged.Lat.Mean()
	if dm < bm+4 || dm > bm+8 {
		t.Fatalf("const:5 delay shifted mean latency by %g (from %g to %g), want ~5", dm-bm, bm, dm)
	}
}

// TestHedgingRescuesSlowReplica is where hedging earns its keep: on a
// heterogeneous cluster round-robin keeps feeding the slow replica,
// whose queue grows and drops; hedging duplicates the stragglers onto
// the fast replica, cutting both drops and the tail.
func TestHedgingRescuesSlowReplica(t *testing.T) {
	m := model.ResNet50()
	// The slow replica (0.6x) is still SLO-feasible at batch 1 — so
	// clockwork queues rather than insta-drops — but at 300 fps its
	// round-robin slice exceeds its batched capacity, so stragglers
	// pile up behind it and clockwork starts dropping them as hopeless.
	run := func(retry string) *ClusterStats {
		return faultCluster(m, 4000, 2, 300, 77, 2, ClusterOptions{
			Dispatch:  RoundRobin,
			Speeds:    []float64{1.5, 0.6},
			Retry:     mustRetry(t, retry),
			FaultSeed: 5,
		})
	}
	plain, hedged := run(""), run("hedge=50")
	if hedged.Faults == nil || hedged.Faults.Hedged == 0 {
		t.Fatal("hedge policy never hedged on an overloaded slow replica")
	}
	if hedged.Merged.Total != 4000 || plain.Merged.Total != 4000 {
		t.Fatalf("conservation violated: %d / %d", hedged.Merged.Total, plain.Merged.Total)
	}
	if hedged.Merged.Drops >= plain.Merged.Drops {
		t.Fatalf("hedging drops %d not below plain %d", hedged.Merged.Drops, plain.Merged.Drops)
	}
	if hedged.Merged.GoodputQPS <= plain.Merged.GoodputQPS {
		t.Fatalf("hedged goodput %g not above plain %g",
			hedged.Merged.GoodputQPS, plain.Merged.GoodputQPS)
	}
	// Hedging without cancellation wastes the losing copy's work; the
	// arbiter must account for every discarded duplicate.
	if hedged.Faults.Wasted == 0 || hedged.Faults.Wasted > hedged.Faults.Hedged {
		t.Fatalf("wasted-copy accounting off: %d wasted of %d hedges",
			hedged.Faults.Wasted, hedged.Faults.Hedged)
	}
}

// TestChurnConservesRequests: a sustained MTBF/MTTR churn process
// crashes replicas repeatedly; with no transit loss every request must
// still resolve exactly once (requeues, not losses), and the realized
// outage count must match the recorded crash count.
func TestChurnConservesRequests(t *testing.T) {
	m := model.ResNet50()
	seen := map[int]int{}
	cs := faultCluster(m, 6000, 3, 90, 78, 20, ClusterOptions{
		Dispatch:  LeastLoaded,
		Faults:    mustFaults(t, "mtbf:3000/400"),
		FaultSeed: 6,
		ReplicaObserver: func(_ int, r Result) {
			seen[r.ID]++
		},
	})
	if cs.Faults.Crashes == 0 {
		t.Fatal("churn process never crashed anything over a 100s trace")
	}
	if cs.Merged.Total != 6000 || cs.Merged.Drops != 0 {
		t.Fatalf("churn lost work: total %d drops %d", cs.Merged.Total, cs.Merged.Drops)
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("request %d resolved %d times", id, n)
		}
	}
	if cs.Faults.Outages.Len() != cs.Faults.Crashes {
		t.Fatalf("%d outages recorded for %d crashes", cs.Faults.Outages.Len(), cs.Faults.Crashes)
	}
	if cs.Faults.Downtime() <= 0 {
		t.Fatal("churn accrued no downtime")
	}
}

// TestFaultyRunsDeterministic pins determinism under the full fault
// stack: two identical faulty runs produce identical availability
// stats and latency distributions.
func TestFaultyRunsDeterministic(t *testing.T) {
	m := model.ResNet50()
	run := func() *ClusterStats {
		return faultCluster(m, 4000, 3, 90, 79, 5, ClusterOptions{
			Dispatch:  LeastLoaded,
			Faults:    mustFaults(t, "mtbf:4000/500;delaydist=lognormal:2,0.5;loss=0.05"),
			Retry:     mustRetry(t, "attempts=3/hedge=95"),
			FaultSeed: 11,
		})
	}
	a, b := run(), run()
	if a.Merged.Total != b.Merged.Total || a.Merged.Drops != b.Merged.Drops ||
		a.Merged.Lost != b.Merged.Lost {
		t.Fatalf("request accounting diverged: %+v vs %+v", a.Merged, b.Merged)
	}
	af, bf := a.Faults, b.Faults
	if af.Crashes != bf.Crashes || af.Lost != bf.Lost || af.Retried != bf.Retried ||
		af.Hedged != bf.Hedged || af.Wasted != bf.Wasted ||
		af.UnavailMS != bf.UnavailMS || af.Downtime() != bf.Downtime() {
		t.Fatalf("availability stats diverged: %+v vs %+v", af, bf)
	}
	for _, p := range []float64{50, 95, 99} {
		if a.Merged.Lat.Percentile(p) != b.Merged.Lat.Percentile(p) {
			t.Fatalf("p%g diverged: %g vs %g", p, a.Merged.Lat.Percentile(p), b.Merged.Lat.Percentile(p))
		}
	}
}

// TestScaleUpEndsOutage pins that capacity is capacity: when the only
// replica crashes for a long window, the autoscaler (seeing
// utilization forced to 1 and pessimistic latency samples) adds a
// fresh replica, and that scale-up — not the eventual restart — must
// flush the parked requests and close the unavailability window.
func TestScaleUpEndsOutage(t *testing.T) {
	m := model.ResNet50()
	const down = 10000.0
	s := workload.Video(0, 2000, 30, 81)
	cs := RunCluster(s, func(int) Handler { return &VanillaHandler{Model: m} }, ClusterOptions{
		Options:   Options{Platform: Clockwork, SLOms: 60 * m.SLO()},
		Dispatch:  RoundRobin,
		Autoscale: &autoscale.Config{Min: 1, Max: 2},
		Faults:    mustFaults(t, "crash:r0@2000+10000"),
		FaultSeed: 14,
	})
	if cs.Scale.Ups() == 0 {
		t.Fatal("autoscaler never reacted to the outage")
	}
	if cs.Merged.Total != 2000 || cs.Merged.Drops != 0 {
		t.Fatalf("outage lost work: total %d drops %d", cs.Merged.Total, cs.Merged.Drops)
	}
	if cs.Faults.UnavailMS >= down {
		t.Fatalf("unavailability %g spans the whole %gms outage despite a scale-up",
			cs.Faults.UnavailMS, down)
	}
	if cs.Faults.UnavailMS <= 0 {
		t.Fatal("zero-live window never recorded before the scale-up")
	}
}

// TestChurnWithAutoscaleConservesRequests drives the messiest
// composition — periodic churn over an elastic cluster, where replicas
// are created, retired, crashed, and revived in every order — and
// holds the core invariant: every request resolves exactly once.
func TestChurnWithAutoscaleConservesRequests(t *testing.T) {
	m := model.ResNet50()
	seen := map[int]int{}
	cs := RunCluster(workload.Video(0, 6000, 120, 82),
		func(int) Handler { return &VanillaHandler{Model: m} }, ClusterOptions{
			Options:   Options{Platform: Clockwork, SLOms: 20 * m.SLO()},
			Dispatch:  LeastLoaded,
			Autoscale: &autoscale.Config{Min: 1, Max: 3},
			Faults:    mustFaults(t, "mtbf:4000/600"),
			Retry:     mustRetry(t, "attempts=3"),
			FaultSeed: 15,
			ReplicaObserver: func(_ int, r Result) {
				seen[r.ID]++
			},
		})
	if cs.Faults.Crashes == 0 {
		t.Fatal("churn never crashed anything")
	}
	if cs.Merged.Total != 6000 {
		t.Fatalf("resolved %d requests, want 6000", cs.Merged.Total)
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("request %d resolved %d times", id, n)
		}
	}
}

// TestGoodputUnderFaults: goodput (delivered-within-SLO per second)
// must degrade when faults are injected and be reported on both the
// merged stats and per-replica.
func TestGoodputUnderFaults(t *testing.T) {
	m := model.ResNet50()
	base := faultCluster(m, 4000, 2, 60, 80, 1, ClusterOptions{Dispatch: RoundRobin})
	faulty := faultCluster(m, 4000, 2, 60, 80, 1, ClusterOptions{
		Dispatch:  RoundRobin,
		Faults:    mustFaults(t, "crash:r0@2000+3000;loss=0.05"),
		FaultSeed: 12,
	})
	if base.Merged.GoodputQPS <= 0 {
		t.Fatal("reliable run reported zero goodput")
	}
	if faulty.Merged.GoodputQPS >= base.Merged.GoodputQPS {
		t.Fatalf("faulty goodput %g not below reliable %g",
			faulty.Merged.GoodputQPS, base.Merged.GoodputQPS)
	}
}
