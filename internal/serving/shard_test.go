package serving

import (
	"fmt"
	"testing"

	"repro/internal/autoscale"
	"repro/internal/controller"
	"repro/internal/exitsim"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/workload"
)

// TestShardedClusterByteIdentity is the sharded runtime's anchor: for
// every shardable configuration, RunCluster with Shards>1 must reproduce
// the serial run byte-for-byte — identical merged stats, identical
// per-replica stats, across platforms, metrics modes, handler kinds, and
// uneven replica/shard splits. Sharding is an execution knob, never a
// semantics knob.
func TestShardedClusterByteIdentity(t *testing.T) {
	type handlerCase struct {
		name string
		mk   func(m *model.Model, kind exitsim.Kind) func(int) Handler
	}
	handlers := []handlerCase{
		{"vanilla", func(m *model.Model, _ exitsim.Kind) func(int) Handler {
			return func(int) Handler { return &VanillaHandler{Model: m} }
		}},
		{"apparate", func(m *model.Model, kind exitsim.Kind) func(int) Handler {
			prof := exitsim.ProfileFor(m, kind)
			return func(int) Handler {
				return NewApparate(m, prof, 0.02, controller.Config{})
			}
		}},
	}
	type wlCase struct {
		name   string
		m      *model.Model
		kind   exitsim.Kind
		stream *workload.Stream
	}
	workloads := []wlCase{
		{"video", model.ResNet50(), exitsim.KindVideo, workload.Video(1, 4000, 60, 81)},
		{"amazon", model.BERTBase(), exitsim.KindAmazon, workload.Amazon(4000, 40, 82)},
	}
	type split struct{ replicas, shards int }
	splits := []split{
		{4, 2},  // even split
		{5, 2},  // uneven: shard 0 owns 3 replicas, shard 1 owns 2
		{4, 4},  // one replica per shard
		{3, 16}, // shards clamp to replica count
	}
	assertIdentical := func(t *testing.T, serial, sharded *ClusterStats) {
		t.Helper()
		if want, got := statsFingerprint(serial.Merged), statsFingerprint(sharded.Merged); want != got {
			t.Fatalf("merged stats diverge:\n serial:  %s\n sharded: %s", want, got)
		}
		if len(serial.PerReplica) != len(sharded.PerReplica) {
			t.Fatalf("replica counts diverge: %d vs %d",
				len(serial.PerReplica), len(sharded.PerReplica))
		}
		for i := range serial.PerReplica {
			want := statsFingerprint(serial.PerReplica[i])
			got := statsFingerprint(sharded.PerReplica[i])
			if want != got {
				t.Fatalf("replica %d stats diverge:\n serial:  %s\n sharded: %s", i, want, got)
			}
		}
	}
	for _, wl := range workloads {
		for _, platform := range []Platform{Clockwork, TFServe} {
			for _, mode := range []metrics.Mode{metrics.ModeExact, metrics.ModeSketch} {
				for _, hc := range handlers {
					for _, sp := range splits {
						name := fmt.Sprintf("%s/%s/%s/%s/r%d-s%d",
							wl.name, platform, mode, hc.name, sp.replicas, sp.shards)
						t.Run(name, func(t *testing.T) {
							opts := ClusterOptions{
								Options:  Options{Platform: platform, SLOms: wl.m.SLO(), Metrics: mode},
								Replicas: sp.replicas,
								Dispatch: RoundRobin,
							}
							serial := RunCluster(wl.stream, hc.mk(wl.m, wl.kind), opts)
							opts.Shards = sp.shards
							sharded := RunCluster(wl.stream, hc.mk(wl.m, wl.kind), opts)
							if serial.ShardMode != "serial" {
								t.Fatalf("serial run reported ShardMode %q", serial.ShardMode)
							}
							if sharded.ShardMode != fmt.Sprintf("replay:%d", min(sp.shards, sp.replicas)) {
								t.Fatalf("sharded run reported ShardMode %q", sharded.ShardMode)
							}
							assertIdentical(t, serial, sharded)
						})
					}
				}
			}
		}
	}

	// Queue-state dispatch grid: least-loaded and join-shortest-queue
	// run under the conservative-lookahead dispatcher protocol, crossed
	// with heterogeneous speeds and uneven replica/shard splits — the
	// {3,16} split pins that shards > replicas clamps to the replica
	// count instead of parking an empty worker at the barrier.
	// Latency-stable handlers (vanilla; Apparate with ramp adjustment
	// frozen) must shard; the adaptive Apparate handler must fall back
	// to "serial:adaptive-handler" with unchanged results either way.
	type qsHandlerCase struct {
		name string
		mk   func(m *model.Model, kind exitsim.Kind) func(int) Handler
		// mode is the expected ShardMode given w = min(shards, replicas).
		mode func(w int) string
	}
	qsHandlers := []qsHandlerCase{
		{"vanilla", func(m *model.Model, _ exitsim.Kind) func(int) Handler {
			return func(int) Handler { return &VanillaHandler{Model: m} }
		}, func(w int) string { return fmt.Sprintf("lookahead:%d", w) }},
		{"apparate-frozen", func(m *model.Model, kind exitsim.Kind) func(int) Handler {
			prof := exitsim.ProfileFor(m, kind)
			return func(int) Handler {
				return NewApparate(m, prof, 0.02, controller.Config{DisableRampAdjust: true})
			}
		}, func(w int) string { return fmt.Sprintf("lookahead:%d", w) }},
		{"apparate", func(m *model.Model, kind exitsim.Kind) func(int) Handler {
			prof := exitsim.ProfileFor(m, kind)
			return func(int) Handler {
				return NewApparate(m, prof, 0.02, controller.Config{})
			}
		}, func(int) string { return "serial:adaptive-handler" }},
	}
	wl := workloads[0] // video: the bursty frame groups stress dispatch ties
	qsSplits := []split{{4, 2}, {5, 2}, {3, 16}}
	for _, platform := range []Platform{Clockwork, TFServe} {
		for _, dispatch := range []Dispatch{LeastLoaded, JoinShortestQueue} {
			for _, hetero := range []string{"", "1,0.5"} {
				for _, hc := range qsHandlers {
					for _, sp := range qsSplits {
						name := fmt.Sprintf("%s/%s/hetero=%s/%s/r%d-s%d",
							platform, dispatch, hetero, hc.name, sp.replicas, sp.shards)
						t.Run(name, func(t *testing.T) {
							speeds, err := ParseSpeeds(hetero)
							if err != nil {
								t.Fatal(err)
							}
							opts := ClusterOptions{
								Options:  Options{Platform: platform, SLOms: wl.m.SLO()},
								Replicas: sp.replicas,
								Dispatch: dispatch,
								Speeds:   speeds,
							}
							serial := RunCluster(wl.stream, hc.mk(wl.m, wl.kind), opts)
							opts.Shards = sp.shards
							sharded := RunCluster(wl.stream, hc.mk(wl.m, wl.kind), opts)
							if serial.ShardMode != "serial" {
								t.Fatalf("serial run reported ShardMode %q", serial.ShardMode)
							}
							if want := hc.mode(min(sp.shards, sp.replicas)); sharded.ShardMode != want {
								t.Fatalf("sharded run reported ShardMode %q, want %q", sharded.ShardMode, want)
							}
							assertIdentical(t, serial, sharded)
						})
					}
				}
			}
		}
	}
}

// TestShardsFallbackEquality pins the other half of the contract: every
// configuration the sharded runtime does not support falls back to the
// serial path, changes nothing — not even by accident — and reports why
// it fell back through ClusterStats.ShardMode (so a no-op fallback is
// never mistaken for a sharded run). Least-loaded and JSQ left this
// list when the conservative-lookahead mode landed; they are covered by
// TestShardedClusterByteIdentity's queue-state grid now.
func TestShardsFallbackEquality(t *testing.T) {
	m := model.ResNet50()
	s := workload.Video(1, 2000, 60, 83)
	base := ClusterOptions{
		Options:  Options{Platform: Clockwork, SLOms: m.SLO()},
		Replicas: 4,
		Dispatch: RoundRobin,
	}
	cases := []struct {
		name string
		mode string
		mod  func(*ClusterOptions)
	}{
		{"autoscale", "serial:autoscale", func(o *ClusterOptions) { o.Autoscale = &autoscale.Config{Min: 1, Max: 4} }},
		{"faults", "serial:faults", func(o *ClusterOptions) { o.Faults = mustFaults(t, "mtbf:3000/400;loss=0.02") }},
		{"retry", "serial:retry", func(o *ClusterOptions) { o.Retry = faults.Retry{Attempts: 2} }},
		{"obs", "serial:obs", func(o *ClusterOptions) { o.ReplicaObserver = func(int, Result) {} }},
		{"single-replica", "serial:single-replica", func(o *ClusterOptions) { o.Replicas = 1 }},
		{"adaptive-handler-least-loaded", "serial:adaptive-handler", func(o *ClusterOptions) { o.Dispatch = LeastLoaded }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := base
			tc.mod(&opts)
			mkAdaptive := func(int) Handler {
				return NewApparate(m, exitsim.ProfileFor(m, exitsim.KindVideo), 0.02, controller.Config{})
			}
			mk := func(int) Handler { return &VanillaHandler{Model: m} }
			if tc.mode == "serial:adaptive-handler" {
				mk = mkAdaptive
			}
			plain := RunCluster(s, mk, opts)
			opts.Shards = 4
			withShards := RunCluster(s, mk, opts)
			if plain.ShardMode != "serial" {
				t.Fatalf("unsharded run reported ShardMode %q", plain.ShardMode)
			}
			if withShards.ShardMode != tc.mode {
				t.Fatalf("fallback run reported ShardMode %q, want %q", withShards.ShardMode, tc.mode)
			}
			if want, got := statsFingerprint(plain.Merged), statsFingerprint(withShards.Merged); want != got {
				t.Fatalf("fallback run changed under Shards=4:\n plain:  %s\n shards: %s", want, got)
			}
			for i := range plain.PerReplica {
				want := statsFingerprint(plain.PerReplica[i])
				got := statsFingerprint(withShards.PerReplica[i])
				if want != got {
					t.Fatalf("replica %d changed under Shards=4:\n plain:  %s\n shards: %s", i, want, got)
				}
			}
		})
	}
}
