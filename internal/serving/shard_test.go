package serving

import (
	"fmt"
	"testing"

	"repro/internal/autoscale"
	"repro/internal/controller"
	"repro/internal/exitsim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/workload"
)

// TestShardedClusterByteIdentity is the sharded runtime's anchor: for
// every shardable configuration, RunCluster with Shards>1 must reproduce
// the serial run byte-for-byte — identical merged stats, identical
// per-replica stats, across platforms, metrics modes, handler kinds, and
// uneven replica/shard splits. Sharding is an execution knob, never a
// semantics knob.
func TestShardedClusterByteIdentity(t *testing.T) {
	type handlerCase struct {
		name string
		mk   func(m *model.Model, kind exitsim.Kind) func(int) Handler
	}
	handlers := []handlerCase{
		{"vanilla", func(m *model.Model, _ exitsim.Kind) func(int) Handler {
			return func(int) Handler { return &VanillaHandler{Model: m} }
		}},
		{"apparate", func(m *model.Model, kind exitsim.Kind) func(int) Handler {
			prof := exitsim.ProfileFor(m, kind)
			return func(int) Handler {
				return NewApparate(m, prof, 0.02, controller.Config{})
			}
		}},
	}
	type wlCase struct {
		name   string
		m      *model.Model
		kind   exitsim.Kind
		stream *workload.Stream
	}
	workloads := []wlCase{
		{"video", model.ResNet50(), exitsim.KindVideo, workload.Video(1, 4000, 60, 81)},
		{"amazon", model.BERTBase(), exitsim.KindAmazon, workload.Amazon(4000, 40, 82)},
	}
	type split struct{ replicas, shards int }
	splits := []split{
		{4, 2},  // even split
		{5, 2},  // uneven: shard 0 owns 3 replicas, shard 1 owns 2
		{4, 4},  // one replica per shard
		{3, 16}, // shards clamp to replica count
	}
	for _, wl := range workloads {
		for _, platform := range []Platform{Clockwork, TFServe} {
			for _, mode := range []metrics.Mode{metrics.ModeExact, metrics.ModeSketch} {
				for _, hc := range handlers {
					for _, sp := range splits {
						name := fmt.Sprintf("%s/%s/%s/%s/r%d-s%d",
							wl.name, platform, mode, hc.name, sp.replicas, sp.shards)
						t.Run(name, func(t *testing.T) {
							opts := ClusterOptions{
								Options:  Options{Platform: platform, SLOms: wl.m.SLO(), Metrics: mode},
								Replicas: sp.replicas,
								Dispatch: RoundRobin,
							}
							serial := RunCluster(wl.stream, hc.mk(wl.m, wl.kind), opts)
							opts.Shards = sp.shards
							sharded := RunCluster(wl.stream, hc.mk(wl.m, wl.kind), opts)

							if want, got := statsFingerprint(serial.Merged), statsFingerprint(sharded.Merged); want != got {
								t.Fatalf("merged stats diverge:\n serial:  %s\n sharded: %s", want, got)
							}
							if len(serial.PerReplica) != len(sharded.PerReplica) {
								t.Fatalf("replica counts diverge: %d vs %d",
									len(serial.PerReplica), len(sharded.PerReplica))
							}
							for i := range serial.PerReplica {
								want := statsFingerprint(serial.PerReplica[i])
								got := statsFingerprint(sharded.PerReplica[i])
								if want != got {
									t.Fatalf("replica %d stats diverge:\n serial:  %s\n sharded: %s", i, want, got)
								}
							}
						})
					}
				}
			}
		}
	}
}

// TestShardsFallbackEquality pins the other half of the contract: every
// configuration the sharded runtime does not support falls back to the
// serial path silently, so setting Shards on such a run changes nothing
// — not even by accident.
func TestShardsFallbackEquality(t *testing.T) {
	m := model.ResNet50()
	s := workload.Video(1, 2000, 60, 83)
	base := ClusterOptions{
		Options:  Options{Platform: Clockwork, SLOms: m.SLO()},
		Replicas: 4,
		Dispatch: RoundRobin,
	}
	cases := []struct {
		name string
		mod  func(*ClusterOptions)
	}{
		{"least-loaded", func(o *ClusterOptions) { o.Dispatch = LeastLoaded }},
		{"jsq", func(o *ClusterOptions) { o.Dispatch = JoinShortestQueue }},
		{"autoscale", func(o *ClusterOptions) { o.Autoscale = &autoscale.Config{Min: 1, Max: 4} }},
		{"faults", func(o *ClusterOptions) { o.Faults = mustFaults(t, "mtbf:3000/400;loss=0.02") }},
		{"single-replica", func(o *ClusterOptions) { o.Replicas = 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := base
			tc.mod(&opts)
			plain := RunCluster(s, func(int) Handler { return &VanillaHandler{Model: m} }, opts)
			opts.Shards = 4
			withShards := RunCluster(s, func(int) Handler { return &VanillaHandler{Model: m} }, opts)
			if want, got := statsFingerprint(plain.Merged), statsFingerprint(withShards.Merged); want != got {
				t.Fatalf("fallback run changed under Shards=4:\n plain:  %s\n shards: %s", want, got)
			}
			for i := range plain.PerReplica {
				want := statsFingerprint(plain.PerReplica[i])
				got := statsFingerprint(withShards.PerReplica[i])
				if want != got {
					t.Fatalf("replica %d changed under Shards=4:\n plain:  %s\n shards: %s", i, want, got)
				}
			}
		})
	}
}
