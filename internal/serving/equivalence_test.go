package serving

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/controller"
	"repro/internal/exitsim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/workload"
)

// statsFingerprint renders every observable quantity of a Stats —
// counts, rates, makespan, and the full latency recorder surface — in
// full float precision, so two runs compare byte-identically.
func statsFingerprint(s *Stats) string {
	fp := fmt.Sprintf("total=%d delivered=%d drops=%d misses=%d correct=%d exits=%d "+
		"avgbatch=%v droprate=%v missrate=%v tput=%v acc=%v first=%v last=%v lat_len=%d",
		s.Total, s.Delivered, s.Drops, s.SLOMisses, s.Correct, s.Exits,
		s.AvgBatch, s.DropRate, s.SLOMissRate, s.ThroughputQPS, s.Accuracy,
		s.FirstArrivalMS, s.LastDoneMS, s.Lat.Len())
	if s.Lat.Len() > 0 {
		fp += fmt.Sprintf(" mean=%v min=%v max=%v", s.Lat.Mean(), s.Lat.Min(), s.Lat.Max())
		for p := 1; p <= 100; p++ {
			fp += fmt.Sprintf(" p%d=%v", p, s.Lat.Percentile(float64(p)))
		}
	}
	return fp
}

// TestClusterSingleReplicaEquivalence is the engine refactor's anchor:
// for Replicas=1 without autoscale, the event-driven RunCluster must
// reproduce the single-replica Run byte-for-byte — identical Stats,
// identical recorder output, and an identical per-request Result stream
// — across both platforms, both metrics modes, both handler kinds, and
// both workload families. The single-replica simulator is the reference
// semantics; the cluster runtime is the same machine restructured as
// events on the shared engine clock.
func TestClusterSingleReplicaEquivalence(t *testing.T) {
	type handlerCase struct {
		name string
		mk   func(m *model.Model, kind exitsim.Kind) Handler
	}
	handlers := []handlerCase{
		{"vanilla", func(m *model.Model, _ exitsim.Kind) Handler {
			return &VanillaHandler{Model: m}
		}},
		{"apparate", func(m *model.Model, kind exitsim.Kind) Handler {
			return NewApparate(m, exitsim.ProfileFor(m, kind), 0.02, controller.Config{})
		}},
	}
	type wlCase struct {
		name   string
		m      *model.Model
		kind   exitsim.Kind
		stream *workload.Stream
	}
	workloads := []wlCase{
		{"video", model.ResNet50(), exitsim.KindVideo, workload.Video(1, 4000, 45, 71)},
		{"amazon", model.BERTBase(), exitsim.KindAmazon, workload.Amazon(4000, 40, 72)},
	}
	for _, wl := range workloads {
		for _, platform := range []Platform{Clockwork, TFServe} {
			for _, mode := range []metrics.Mode{metrics.ModeExact, metrics.ModeSketch} {
				for _, hc := range handlers {
					name := fmt.Sprintf("%s/%s/%s/%s", wl.name, platform, mode, hc.name)
					t.Run(name, func(t *testing.T) {
						opts := Options{Platform: platform, SLOms: wl.m.SLO(), Metrics: mode}

						var runResults []Result
						runOpts := opts
						runOpts.Observer = func(r Result) { runResults = append(runResults, r) }
						single := Run(wl.stream.Iter(), hc.mk(wl.m, wl.kind), runOpts)

						var clusterResults []Result
						copts := ClusterOptions{Options: opts, Replicas: 1, Dispatch: RoundRobin}
						copts.Observer = func(r Result) { clusterResults = append(clusterResults, r) }
						cluster := RunCluster(wl.stream, func(int) Handler { return hc.mk(wl.m, wl.kind) }, copts)

						if len(cluster.PerReplica) != 1 {
							t.Fatalf("single-replica cluster built %d replicas", len(cluster.PerReplica))
						}
						want, got := statsFingerprint(single), statsFingerprint(cluster.PerReplica[0])
						if want != got {
							t.Fatalf("replica stats diverge from Run:\n run:     %s\n cluster: %s", want, got)
						}
						// Merged stats re-derive the same aggregates from the
						// one replica.
						if mw := statsFingerprint(cluster.Merged); mw != want {
							t.Fatalf("merged stats diverge from Run:\n run:    %s\n merged: %s", want, mw)
						}
						if !reflect.DeepEqual(runResults, clusterResults) {
							if len(runResults) != len(clusterResults) {
								t.Fatalf("result streams differ in length: %d vs %d", len(runResults), len(clusterResults))
							}
							for i := range runResults {
								if runResults[i] != clusterResults[i] {
									t.Fatalf("result %d diverges:\n run:     %+v\n cluster: %+v", i, runResults[i], clusterResults[i])
								}
							}
						}
					})
				}
			}
		}
	}
}
