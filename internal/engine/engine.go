// Package engine is the shared discrete-event core of the simulators:
// one virtual clock, one binary event heap, and a deterministic pop
// order. The serving cluster runtime and the generative slot engine are
// both built on it, so "one clock, one heap, all actors advanced
// together in a single pass" holds for every simulation in the repo.
//
// Determinism is the load-bearing property. Events pop ordered by
// (time, class, sequence): the class ranks simultaneous events of
// different kinds (the serving cluster admits an arrival before the
// replica wake that batches it; the generative engine admits an
// arrival before the slot completion that frees capacity for it), and
// the monotonically increasing sequence number makes same-time
// same-class events FIFO in scheduling order. Because scheduling order is itself a deterministic function of
// the simulation inputs, an engine run is a pure function of its
// initial events — the root of the sweep's workers-1-vs-8
// byte-identity guarantee.
//
// Memory is O(pending events), never O(trace): sources schedule one
// arrival of lookahead at a time, so the heap stays a handful of
// entries regardless of stream length (the mem-smoke bound).
//
// Allocation is O(peak pending events), never O(events fired): events
// are plain values in the heap slice, so the slice's spare capacity is
// the freelist — a popped slot is reused by the next Schedule with no
// per-event allocation. Hot actors implement Handler and schedule
// (handler, op, arg) triples; the closure-based ScheduleFunc remains
// for tests and cold paths but allocates an adapter per call.
package engine

import "fmt"

// Class ranks simultaneous events: at equal timestamps, lower classes
// fire first. Callers define their own ordering; the serving cluster
// uses arrival < wake, genserve uses arrival < slot-free. Changing an
// existing caller's class numbering shifts same-instant pop order and
// with it every downstream byte-identity pin — add new classes after
// the existing ones.
type Class uint8

// Handler receives dispatched events. One long-lived handler serves
// many events, discriminated by the caller-defined op code and packed
// arg — the zero-alloc replacement for capturing state in a closure.
type Handler interface {
	OnEvent(now float64, op uint8, arg uint64)
}

// funcEvent adapts a bare closure to Handler for ScheduleFunc. It
// allocates once per call, which is fine for tests and setup paths but
// not for per-request scheduling.
type funcEvent struct {
	fn func(now float64)
}

func (f *funcEvent) OnEvent(now float64, _ uint8, _ uint64) { f.fn(now) }

// Event is one scheduled dispatch. Events are values: the heap slice
// owns them, and popped slots are recycled by later Schedules.
type event struct {
	at    float64
	seq   uint64
	arg   uint64
	h     Handler
	class Class
	op    uint8
}

// Loop is a single-threaded discrete-event loop: a virtual clock in
// milliseconds and a deterministic min-heap of pending events. The zero
// value is not ready; use New.
type Loop struct {
	now     float64
	heap    []event
	seq     uint64
	inRun   bool
	halted  bool
	advance func(prev, now float64)
}

// New returns an empty loop at time zero.
func New() *Loop { return &Loop{} }

// Now returns the current virtual time in milliseconds. Outside an
// event callback it is the time of the last completed event.
func (l *Loop) Now() float64 { return l.now }

// Pending returns the number of scheduled events.
func (l *Loop) Pending() int { return len(l.heap) }

// Schedule enqueues h.OnEvent(at, op, arg) at virtual time `at`. This
// is the zero-alloc path: the event is a value appended into the heap
// slice's spare capacity, so steady-state scheduling (pop one, push
// one) never allocates. Scheduling in the past panics: an actor that
// reacts to an event it should already have seen is a simulation bug,
// not a recoverable condition. Events at the current instant are legal
// and fire after the running callback returns, in (class,
// scheduling-order) rank.
func (l *Loop) Schedule(at float64, class Class, h Handler, op uint8, arg uint64) {
	if at < l.now {
		panic(fmt.Sprintf("engine: scheduling at %g before now %g", at, l.now))
	}
	l.seq++
	l.heap = append(l.heap, event{at: at, class: class, seq: l.seq, h: h, op: op, arg: arg})
	l.up(len(l.heap) - 1)
}

// ScheduleFunc enqueues a bare closure. It allocates a small adapter
// per call — use Schedule with a pre-bound Handler on hot paths.
func (l *Loop) ScheduleFunc(at float64, class Class, fn func(now float64)) {
	l.Schedule(at, class, &funcEvent{fn: fn}, 0, 0)
}

// Process is a simulation actor: Start schedules its initial event(s).
// It exists so composites (a cluster, a slot pool, a window tracker)
// plug into one loop uniformly; actors interact afterwards by
// scheduling further events from their callbacks.
type Process interface {
	Start(l *Loop)
}

// Add starts a process on the loop.
func (l *Loop) Add(p Process) { p.Start(l) }

// OnAdvance registers fn to run whenever Run is about to advance the
// clock to a strictly later instant, with the previous and new times.
// It fires before the event at the new instant executes, so fn sees the
// simulation state as of `prev` — the hook observability samplers hang
// off. Unlike a self-rescheduling tick process, an advance hook adds no
// heap events and never extends the clock past the last real event, so
// registering one cannot perturb event order, sequence numbers, or
// end-of-run bookkeeping. Passing nil clears the hook. Only one hook is
// supported; composing is the caller's job.
func (l *Loop) OnAdvance(fn func(prev, now float64)) { l.advance = fn }

// Run pops events in deterministic order until the heap is empty (or
// Halt is called), advancing the clock to each event's timestamp.
func (l *Loop) Run() {
	if l.inRun {
		panic("engine: Run called from inside an event callback")
	}
	l.inRun = true
	defer func() { l.inRun = false }()
	for len(l.heap) > 0 && !l.halted {
		e := l.pop()
		if l.advance != nil && e.at > l.now {
			l.advance(l.now, e.at)
		}
		l.now = e.at
		e.h.OnEvent(l.now, e.op, e.arg)
	}
	l.halted = false
}

// NextAt returns the timestamp of the earliest pending event and
// whether one exists. Callers pacing a run in bounded slices (RunUntil)
// peek it to aim each horizon past at least one event, so a slice never
// spins over an idle gap in virtual time.
func (l *Loop) NextAt() (float64, bool) {
	if len(l.heap) == 0 {
		return 0, false
	}
	return l.heap[0].at, true
}

// RunUntil pops events in exactly the order Run would, but only while
// their timestamps are strictly below horizon, then returns leaving the
// remaining events pending and the clock at the last fired event. This
// is the epoch primitive of conservative-lookahead sharding: the caller
// alternates bounded slices with cross-shard publication at each
// horizon barrier, and because slicing never reorders, drops, or adds
// events, any sequence of RunUntil calls that drains the heap fires the
// exact event sequence one Run call would (pinned by
// TestRunUntilSlicedMatchesRun). An event scheduled exactly at the
// horizon does not fire — the horizon is exclusive, so an epoch
// [prev, horizon) commits everything the lookahead bound proves cannot
// be affected by later epochs. The return value reports whether events
// remain pending.
func (l *Loop) RunUntil(horizon float64) bool {
	if l.inRun {
		panic("engine: RunUntil called from inside an event callback")
	}
	l.inRun = true
	defer func() { l.inRun = false }()
	for len(l.heap) > 0 && !l.halted && l.heap[0].at < horizon {
		e := l.pop()
		if l.advance != nil && e.at > l.now {
			l.advance(l.now, e.at)
		}
		l.now = e.at
		e.h.OnEvent(l.now, e.op, e.arg)
	}
	l.halted = false
	return len(l.heap) > 0
}

// Halt stops Run (or RunUntil) after the current callback returns,
// leaving any remaining events pending.
func (l *Loop) Halt() { l.halted = true }

// less orders the heap by (time, class, sequence).
func (l *Loop) less(i, j int) bool {
	a, b := l.heap[i], l.heap[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.class != b.class {
		return a.class < b.class
	}
	return a.seq < b.seq
}

func (l *Loop) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !l.less(i, parent) {
			return
		}
		l.heap[i], l.heap[parent] = l.heap[parent], l.heap[i]
		i = parent
	}
}

func (l *Loop) pop() event {
	top := l.heap[0]
	n := len(l.heap) - 1
	l.heap[0] = l.heap[n]
	l.heap[n].h = nil // release the handler reference; the slot itself is reused
	l.heap = l.heap[:n]
	i := 0
	for {
		left, right := 2*i+1, 2*i+2
		if left >= n {
			return top
		}
		child := left
		if right < n && l.less(right, left) {
			child = right
		}
		if !l.less(child, i) {
			return top
		}
		l.heap[i], l.heap[child] = l.heap[child], l.heap[i]
		i = child
	}
}
