package engine

import (
	"fmt"
	"testing"
)

// TestPopOrderDeterministic pins the heap contract: events pop by time,
// then class, then scheduling order — regardless of insertion order.
func TestPopOrderDeterministic(t *testing.T) {
	l := New()
	var got []string
	rec := func(tag string) func(float64) {
		return func(now float64) { got = append(got, fmt.Sprintf("%s@%g", tag, now)) }
	}
	// Insert deliberately out of order.
	l.ScheduleFunc(5, 2, rec("wake"))
	l.ScheduleFunc(5, 1, rec("arr-b"))
	l.ScheduleFunc(2, 1, rec("early"))
	l.ScheduleFunc(5, 0, rec("window"))
	l.ScheduleFunc(5, 1, rec("arr-c")) // same time+class as arr-b: FIFO by schedule order
	l.Run()
	want := "early@2 window@5 arr-b@5 arr-c@5 wake@5"
	if s := fmt.Sprint(got); s != "["+want+"]" {
		t.Fatalf("pop order %v, want [%s]", got, want)
	}
}

// TestSameInstantSchedulingRanksByClass checks that an event scheduled
// from inside a callback at the current instant still ranks by class
// against already-pending same-time events: a source that emits the
// next arrival at an identical timestamp beats a pending replica wake.
func TestSameInstantSchedulingRanksByClass(t *testing.T) {
	l := New()
	var got []string
	l.ScheduleFunc(3, 2, func(float64) { got = append(got, "wake") })
	l.ScheduleFunc(3, 1, func(float64) {
		got = append(got, "arr-1")
		// Scheduled later than the wake, but class 1 < 2 wins at time 3.
		l.ScheduleFunc(3, 1, func(float64) { got = append(got, "arr-2") })
	})
	l.Run()
	if fmt.Sprint(got) != "[arr-1 arr-2 wake]" {
		t.Fatalf("same-instant scheduling order %v", got)
	}
}

func TestClockAdvancesMonotonically(t *testing.T) {
	l := New()
	prev := -1.0
	n := 0
	var chain func(at float64)
	chain = func(at float64) {
		l.ScheduleFunc(at, 0, func(now float64) {
			if now < prev {
				t.Fatalf("clock went backward: %g after %g", now, prev)
			}
			prev = now
			n++
			if n < 50 {
				chain(now + float64(n%3)) // includes zero-delay steps
			}
		})
	}
	chain(0)
	l.Run()
	if n != 50 {
		t.Fatalf("ran %d events, want 50", n)
	}
	if l.Pending() != 0 {
		t.Fatalf("%d events left pending", l.Pending())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	l := New()
	l.ScheduleFunc(10, 0, func(now float64) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		l.ScheduleFunc(now-1, 0, func(float64) {})
	})
	l.Run()
}

func TestRunInsideCallbackPanics(t *testing.T) {
	l := New()
	l.ScheduleFunc(0, 0, func(float64) {
		defer func() {
			if recover() == nil {
				t.Error("nested Run did not panic")
			}
		}()
		l.Run()
	})
	l.Run()
}

func TestHaltStopsEarly(t *testing.T) {
	l := New()
	ran := 0
	for i := 0; i < 5; i++ {
		l.ScheduleFunc(float64(i), 0, func(now float64) {
			ran++
			if now == 2 {
				l.Halt()
			}
		})
	}
	l.Run()
	if ran != 3 {
		t.Fatalf("halt at t=2 ran %d events, want 3", ran)
	}
	if l.Pending() != 2 {
		t.Fatalf("%d events pending after halt, want 2", l.Pending())
	}
	// A fresh Run drains the remainder.
	l.Run()
	if ran != 5 || l.Pending() != 0 {
		t.Fatalf("resume ran %d total with %d pending, want 5 and 0", ran, l.Pending())
	}
}

// TestFaultEventInterleaving drives the loop the way the fault-injected
// cluster runtime does: an arrival chain (class 0), wake/hold events
// (class 1), crash/restart transitions (class 2), and loss-timeout
// deadlines (class 3) all landing on shared instants. It pins that the
// (time, class, seq) pop order fully determines execution — two
// identical runs observe identical sequences — that same-instant events
// rank fault transitions after arrivals and wakes but before timeouts,
// and that Pending stays bounded by the live actors, never growing with
// the number of processed events.
func TestFaultEventInterleaving(t *testing.T) {
	run := func() (trace []string, maxPending int) {
		l := New()
		rec := func(tag string) func(float64) {
			return func(now float64) {
				trace = append(trace, fmt.Sprintf("%s@%g", tag, now))
				if p := l.Pending(); p > maxPending {
					maxPending = p
				}
			}
		}
		// Arrival source: one event of lookahead, rescheduling itself —
		// the streaming-source shape. Arrivals every 2ms.
		var arrive func(i int)
		arrive = func(i int) {
			l.ScheduleFunc(float64(2*i), 0, func(now float64) {
				rec(fmt.Sprintf("arr%d", i))(now)
				// Each arrival requests a wake (hold/timeout style) at the
				// same instant and one 3ms out.
				l.ScheduleFunc(now, 1, rec(fmt.Sprintf("wake%d", i)))
				l.ScheduleFunc(now+3, 1, rec(fmt.Sprintf("hold%d", i)))
				if i < 19 {
					arrive(i + 1)
				}
			})
		}
		arrive(0)
		// A churn process: crash/restart pairs sharing instants with
		// arrivals (t=8 collides with arr4, t=20 with arr10).
		for _, at := range []float64{8, 20, 32} {
			l.ScheduleFunc(at, 2, rec(fmt.Sprintf("crash@%g", at)))
			l.ScheduleFunc(at+4, 2, rec(fmt.Sprintf("restart@%g", at+4)))
		}
		// Loss-detection timeouts at the same colliding instants.
		l.ScheduleFunc(8, 3, rec("timeout-a"))
		l.ScheduleFunc(20, 3, rec("timeout-b"))
		l.Run()
		return trace, maxPending
	}
	a, pa := run()
	b, pb := run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("identical fault schedules popped differently:\n%v\n%v", a, b)
	}
	if pa != pb {
		t.Fatalf("pending-watermark diverged: %d vs %d", pa, pb)
	}
	// Same-instant class ranking at t=8: the arrival admits first, its
	// wake batches, then the crash transition, then the loss timeout.
	order := map[string]int{}
	for i, e := range a {
		order[e] = i
	}
	for _, pair := range [][2]string{
		{"arr4@8", "wake4@8"},
		{"wake4@8", "crash@8@8"},
		{"crash@8@8", "timeout-a@8"},
		{"arr10@20", "crash@20@20"},
		{"crash@20@20", "timeout-b@20"},
	} {
		ia, oka := order[pair[0]]
		ib, okb := order[pair[1]]
		if !oka || !okb {
			t.Fatalf("trace missing %v (trace %v)", pair, a)
		}
		if ia >= ib {
			t.Fatalf("%s popped after %s", pair[0], pair[1])
		}
	}
	// Pending is O(live actors): one arrival of lookahead, a handful of
	// wakes, the static fault schedule — never O(events processed).
	if pa > 12 {
		t.Fatalf("pending watermark %d suggests events accumulate", pa)
	}
	if len(a) != 20*3+8 {
		t.Fatalf("ran %d events, want %d", len(a), 20*3+8)
	}
}

type ticker struct {
	period float64
	left   int
	fired  int
}

func (p *ticker) Start(l *Loop) { l.ScheduleFunc(0, 0, p.tick(l)) }

func (p *ticker) tick(l *Loop) func(float64) {
	return func(now float64) {
		p.fired++
		if p.left--; p.left > 0 {
			l.ScheduleFunc(now+p.period, 0, p.tick(l))
		}
	}
}

func TestProcessInterleaving(t *testing.T) {
	l := New()
	a := &ticker{period: 2, left: 10}
	b := &ticker{period: 3, left: 10}
	l.Add(a)
	l.Add(b)
	l.Run()
	if a.fired != 10 || b.fired != 10 {
		t.Fatalf("tickers fired %d/%d, want 10/10", a.fired, b.fired)
	}
	if l.Now() != 27 { // slower ticker: 9 periods of 3ms
		t.Fatalf("final clock %g, want 27", l.Now())
	}
}

func TestOnAdvanceHook(t *testing.T) {
	l := New()
	type step struct{ prev, now float64 }
	var steps []step
	l.OnAdvance(func(prev, now float64) { steps = append(steps, step{prev, now}) })
	// Two events at t=5 (same instant: one advance), then t=9.
	l.ScheduleFunc(5, 0, func(now float64) {})
	l.ScheduleFunc(5, 1, func(now float64) {})
	l.ScheduleFunc(9, 0, func(now float64) {})
	l.Run()
	want := []step{{0, 5}, {5, 9}}
	if len(steps) != len(want) {
		t.Fatalf("advance fired %d times, want %d: %v", len(steps), len(want), steps)
	}
	for i, w := range want {
		if steps[i] != w {
			t.Fatalf("advance %d = %v, want %v", i, steps[i], w)
		}
	}
}

func TestOnAdvanceSeesPreAdvanceState(t *testing.T) {
	// The hook fires before the event at the new instant executes: an
	// event-scoped side effect at t=10 must not be visible to the hook
	// transitioning to t=10.
	l := New()
	fired := false
	l.OnAdvance(func(prev, now float64) {
		if now == 10 && fired {
			t.Fatal("advance hook ran after the t=10 event")
		}
	})
	l.ScheduleFunc(10, 0, func(now float64) { fired = true })
	l.Run()
	if !fired {
		t.Fatal("event did not run")
	}
}

func TestOnAdvanceDoesNotPerturbOrder(t *testing.T) {
	run := func(hook bool) []float64 {
		l := New()
		if hook {
			l.OnAdvance(func(prev, now float64) {})
		}
		var order []float64
		for _, at := range []float64{3, 1, 2, 2, 5} {
			at := at
			l.ScheduleFunc(at, 0, func(now float64) { order = append(order, now) })
		}
		l.Run()
		return order
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event order differs at %d: %v vs %v", i, a, b)
		}
	}
}

// countHandler records dispatched (op, arg) pairs and reschedules
// itself until done — the pre-bound-handler shape hot actors use.
type countHandler struct {
	l     *Loop
	calls []uint64
	left  int
}

func (h *countHandler) OnEvent(now float64, op uint8, arg uint64) {
	h.calls = append(h.calls, uint64(op)<<32|arg)
	if h.left--; h.left > 0 {
		h.l.Schedule(now+1, Class(op), h, op, arg+1)
	}
}

// TestHandlerSchedule pins the handler API: op and arg round-trip
// through the heap, and handler events interleave with closure events
// by the same (time, class, seq) order.
func TestHandlerSchedule(t *testing.T) {
	l := New()
	h := &countHandler{l: l, left: 3}
	l.Schedule(0, 1, h, 7, 100)
	var closures []float64
	l.ScheduleFunc(1, 0, func(now float64) { closures = append(closures, now) })
	l.Run()
	want := []uint64{7<<32 | 100, 7<<32 | 101, 7<<32 | 102}
	if fmt.Sprint(h.calls) != fmt.Sprint(want) {
		t.Fatalf("handler calls %v, want %v", h.calls, want)
	}
	if fmt.Sprint(closures) != "[1]" {
		t.Fatalf("closure fired at %v, want [1]", closures)
	}
}

// selfPump reschedules itself n times without touching any per-event
// state — the steady-state pop-one-push-one shape.
type selfPump struct {
	l    *Loop
	left int
}

func (p *selfPump) OnEvent(now float64, op uint8, arg uint64) {
	if p.left--; p.left > 0 {
		p.l.Schedule(now+1, 0, p, op, arg)
	}
}

// TestScheduleSteadyStateZeroAlloc is the engine's alloc pin: once the
// heap has grown to its working set, pop-one-push-one scheduling through
// the handler API allocates nothing. A regression here silently erodes
// every BENCH_*.json row, so it fails loudly instead.
func TestScheduleSteadyStateZeroAlloc(t *testing.T) {
	l := New()
	p := &selfPump{l: l}
	// Warm the heap capacity.
	p.left = 100
	l.Schedule(0, 0, p, 0, 0)
	l.Run()
	avg := testing.AllocsPerRun(10, func() {
		p.left = 1000
		l.Schedule(l.Now(), 0, p, 0, 0)
		l.Run()
	})
	if avg != 0 {
		t.Fatalf("steady-state handler scheduling allocates %.1f allocs/run, want 0", avg)
	}
}

// TestRunUntilSlicedMatchesRun is the epoch primitive's pop-order pin:
// draining a loop through bounded RunUntil slices fires exactly the
// event sequence — same times, same callback order — that one Run call
// fires, for a workload whose events cross-schedule each other across
// slice boundaries. Conservative-lookahead sharding rests on this: an
// epoch barrier may pause the loop anywhere without perturbing results.
func TestRunUntilSlicedMatchesRun(t *testing.T) {
	seed := func(l *Loop, got *[]string) {
		n := 0
		var rec func(now float64)
		rec = func(now float64) {
			*got = append(*got, fmt.Sprintf("%d@%g", n, now))
			n++
			if n < 40 {
				// Irregular gaps and rotating classes, so slices cut at
				// idle stretches, same-instant runs, and class ties alike.
				l.ScheduleFunc(now+float64((n*7)%5), Class(n%3), rec)
			}
		}
		l.ScheduleFunc(0, 0, rec)
		l.ScheduleFunc(1.5, 1, rec)
	}

	var want []string
	l1 := New()
	seed(l1, &want)
	l1.Run()

	var got []string
	l2 := New()
	seed(l2, &got)
	for {
		next, ok := l2.NextAt()
		if !ok {
			break
		}
		if !l2.RunUntil(next + 2.5) {
			break
		}
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("sliced pop order diverges:\n run:      %v\n rununtil: %v", want, got)
	}
	if l1.Now() != l2.Now() {
		t.Fatalf("final clocks diverge: %g vs %g", l1.Now(), l2.Now())
	}
}

// TestRunUntilHorizonExclusive pins the barrier semantics: an event
// scheduled exactly at the horizon does not fire (the epoch [prev, h)
// commits only what the lookahead bound covers), the clock stays at the
// last fired event, and the return value reports pending work.
func TestRunUntilHorizonExclusive(t *testing.T) {
	l := New()
	var got []float64
	l.ScheduleFunc(5, 0, func(now float64) { got = append(got, now) })
	l.ScheduleFunc(10, 0, func(now float64) { got = append(got, now) })
	if !l.RunUntil(5) {
		t.Fatal("RunUntil(5) reported an empty heap with events at 5 and 10 pending")
	}
	if len(got) != 0 || l.Now() != 0 {
		t.Fatalf("event at the horizon fired: got %v, now %g", got, l.Now())
	}
	if !l.RunUntil(5.1) {
		t.Fatal("RunUntil(5.1) reported an empty heap with the event at 10 pending")
	}
	if fmt.Sprint(got) != "[5]" || l.Now() != 5 {
		t.Fatalf("after RunUntil(5.1): got %v, now %g", got, l.Now())
	}
	if l.RunUntil(100) {
		t.Fatal("RunUntil(100) reported pending events after draining the heap")
	}
	if fmt.Sprint(got) != "[5 10]" || l.Now() != 10 {
		t.Fatalf("after draining: got %v, now %g", got, l.Now())
	}
}

// TestNextAt pins the peek: empty loop reports none, otherwise the
// earliest pending timestamp, without disturbing the heap.
func TestNextAt(t *testing.T) {
	l := New()
	if _, ok := l.NextAt(); ok {
		t.Fatal("NextAt on an empty loop reported a pending event")
	}
	l.ScheduleFunc(7, 0, func(float64) {})
	l.ScheduleFunc(3, 0, func(float64) {})
	if at, ok := l.NextAt(); !ok || at != 3 {
		t.Fatalf("NextAt = %g, %v; want 3, true", at, ok)
	}
	if l.Pending() != 2 {
		t.Fatalf("NextAt disturbed the heap: %d pending, want 2", l.Pending())
	}
}
