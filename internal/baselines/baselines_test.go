package baselines

import (
	"testing"

	"repro/internal/controller"
	"repro/internal/exitsim"
	"repro/internal/model"
	"repro/internal/ramp"
	"repro/internal/serving"
	"repro/internal/workload"
)

func videoSetup() (*model.Model, exitsim.Profile, *workload.Stream) {
	m := model.ResNet50()
	return m, exitsim.ProfileFor(m, exitsim.KindVideo), workload.Video(0, 6000, 30, 21)
}

func TestOptimalNeverWrongNeverSlower(t *testing.T) {
	m, p, s := videoSetup()
	h := NewOptimal(m, p)
	for _, req := range s.Materialize()[:1000] {
		out := h.Serve(req.Sample, 1)
		if !out.Correct {
			t.Fatal("optimal produced an incorrect result")
		}
		if out.ServeMS > m.Latency(1)+1e-9 {
			t.Fatalf("optimal latency %v above vanilla %v", out.ServeMS, m.Latency(1))
		}
	}
}

func TestOptimalBeatsApparate(t *testing.T) {
	m, p, s := videoSetup()
	opts := serving.Options{Platform: serving.Clockwork, SLOms: m.SLO()}
	opt := serving.Run(s.Iter(), NewOptimal(m, p), opts)
	app := serving.Run(s.Iter(), serving.NewApparate(model.ResNet50(), p, 0.02, controller.Config{}), opts)
	if opt.Latencies().Median() > app.Latencies().Median() {
		t.Fatalf("optimal median %v above apparate %v", opt.Latencies().Median(), app.Latencies().Median())
	}
	if opt.Accuracy != 1.0 {
		t.Fatalf("optimal accuracy %v", opt.Accuracy)
	}
}

func TestStaticEEHasAllRampsOn(t *testing.T) {
	m, p, s := videoSetup()
	boot := s.Samples()[:600]
	h := StaticEE(m, p, ramp.StyleDefault, 0.22, SharedThreshold, boot, nil, 0.01)
	if len(h.Cfg.Active) != len(m.FeasibleRamps()) {
		t.Fatalf("static EE has %d ramps, want all %d", len(h.Cfg.Active), len(m.FeasibleRamps()))
	}
	// Total overhead ~22% (the §2.3 measurement for BranchyNet).
	if o := h.Cfg.OverheadFrac(); o < 0.21 || o > 0.23 {
		t.Fatalf("static EE total overhead %v, want ~0.22", o)
	}
	// Shared threshold: all equal.
	t0 := h.Cfg.Active[0].Threshold
	for _, r := range h.Cfg.Active {
		if r.Threshold != t0 {
			t.Fatal("shared-threshold variant has unequal thresholds")
		}
	}
}

func TestStaticEEAccurateOnBootstrap(t *testing.T) {
	m, p, s := videoSetup()
	boot := s.Samples()[:600]
	h := StaticEE(m, p, ramp.StyleDefault, 0.22, SharedThreshold, boot, nil, 0.01)
	loss, _ := replay(h.Cfg, boot, h.Cfg.Thresholds())
	// Default variants tune at the upstream papers' looser criterion
	// (3x the production budget).
	if loss > 0.03 {
		t.Fatalf("bootstrap accuracy loss %v exceeds tuned budget", loss)
	}
}

func TestStaticEEDriftsOnFullWorkload(t *testing.T) {
	// Table 2 / Table 1: one-time tuning degrades under drift while
	// Apparate holds the constraint.
	m := model.ResNet50()
	p := exitsim.ProfileFor(m, exitsim.KindVideo)
	s := workload.Video(1, 20000, 30, 23) // night video, regime shifts
	samples := s.Samples()
	boot := samples[:2000]
	h := StaticEE(m, p, ramp.StyleDefault, 0.22, PerRamp, boot, nil, 0.01)
	loss, _ := replay(h.Cfg, samples[2000:], h.Cfg.Thresholds())
	if loss <= 0.01 {
		t.Fatalf("static EE loss %v on drifting workload; expected constraint violation", loss)
	}
}

func TestOracleTunedMeetsBudgetOnTest(t *testing.T) {
	m, p, s := videoSetup()
	samples := s.Samples()
	h := StaticEE(m, p, ramp.StyleDefault, 0.22, OracleTuned, nil, samples, 0.01)
	loss, _ := replay(h.Cfg, samples, h.Cfg.Thresholds())
	if loss > 0.01 {
		t.Fatalf("oracle-tuned static EE violates budget on its tuning data: %v", loss)
	}
}

func TestPerRampAtLeastShared(t *testing.T) {
	m, p, s := videoSetup()
	boot := s.Samples()[:1000]
	shared := StaticEE(m, p, ramp.StyleDefault, 0.22, SharedThreshold, boot, nil, 0.01)
	per := StaticEE(m, p, ramp.StyleDefault, 0.22, PerRamp, boot, nil, 0.01)
	_, sharedSav := replay(shared.Cfg, boot, shared.Cfg.Thresholds())
	_, perSav := replay(per.Cfg, boot, per.Cfg.Thresholds())
	// Coordinate ascent uses a coarser step than the shared grid, so
	// allow a sliver of slack; it must not be meaningfully worse.
	if perSav < sharedSav*0.99 {
		t.Fatalf("per-ramp tuning (%v) worse than shared (%v) on its own data", perSav, sharedSav)
	}
}

func TestTwoLayerMeetsAccuracyOnBootstrap(t *testing.T) {
	m, p, s := videoSetup()
	boot := s.Samples()[:1000]
	h := NewTwoLayer(m, p, boot, 0.01)
	if h.Threshold <= 0 {
		t.Fatal("two-layer tuned a zero threshold on an easy workload")
	}
	wrong := 0
	for _, smp := range boot {
		out := h.Serve(smp, 1)
		if !out.Correct {
			wrong++
		}
	}
	if float64(wrong)/float64(len(boot)) > 0.01 {
		t.Fatalf("two-layer bootstrap loss %v", float64(wrong)/float64(len(boot)))
	}
}

func TestTwoLayerLatencyStructure(t *testing.T) {
	m, p, s := videoSetup()
	boot := s.Samples()[:1000]
	h := NewTwoLayer(m, p, boot, 0.01)
	base := m.Latency(1)
	easySeen := false
	for _, smp := range s.Samples()[:2000] {
		out := h.Serve(smp, 1)
		if out.ExitIndex == 0 {
			easySeen = true
			if out.ServeMS != base*h.CompressedFrac {
				t.Fatalf("easy input latency %v, want %v", out.ServeMS, base*h.CompressedFrac)
			}
		}
	}
	if !easySeen {
		t.Fatal("no input released by the compressed stage on an easy video")
	}
	// A hopeless input must cascade and pay both stages.
	hard := exitsim.Sample{Difficulty: 5, MatchU: 0.999, NoiseKey: 1}
	out := h.Serve(hard, 1)
	if out.ExitIndex != -1 {
		t.Fatal("impossible input released by the compressed stage")
	}
	if out.ServeMS != base*h.CompressedFrac+base {
		t.Fatalf("hard input latency %v, want compressed+base", out.ServeMS)
	}
	if !out.Correct {
		t.Fatal("cascaded input marked incorrect")
	}
}

func TestApparateBeatsTwoLayerOnEasyInputs(t *testing.T) {
	// §4.2: Apparate's early ramps (first third of the model) beat the
	// baselines' compressed models (≈45% of base latency) on easy
	// inputs.
	m, p, s := videoSetup()
	opts := serving.Options{Platform: serving.Clockwork, SLOms: m.SLO()}
	boot := s.Samples()[:1000]
	two := serving.Run(s.Iter(), NewTwoLayer(m, p, boot, 0.01), opts)
	app := serving.Run(s.Iter(), serving.NewApparate(model.ResNet50(), p, 0.02, controller.Config{}), opts)
	if app.Latencies().Median() >= two.Latencies().Median() {
		t.Fatalf("apparate median %v not below two-layer %v",
			app.Latencies().Median(), two.Latencies().Median())
	}
}

func TestOnlineOptimalAccurateAndFast(t *testing.T) {
	m, p, s := videoSetup()
	opts := serving.Options{Platform: serving.Clockwork, SLOms: m.SLO()}
	oo := NewOnlineOptimal(m, p, 0.02, s.Samples(), 0.01)
	stats := serving.Run(s.Iter(), oo, opts)
	if stats.Accuracy < 0.985 {
		t.Fatalf("online optimal accuracy %v below budget margin", stats.Accuracy)
	}
	vanilla := serving.Run(s.Iter(), &serving.VanillaHandler{Model: m}, opts)
	if stats.Latencies().Median() >= vanilla.Latencies().Median() {
		t.Fatal("online optimal no faster than vanilla")
	}
}

func TestOnlineOptimalBetweenApparateAndOracle(t *testing.T) {
	m, p, s := videoSetup()
	opts := serving.Options{Platform: serving.Clockwork, SLOms: m.SLO()}
	oo := serving.Run(s.Iter(), NewOnlineOptimal(m, p, 0.02, s.Samples(), 0.01), opts)
	opt := serving.Run(s.Iter(), NewOptimal(m, p), opts)
	// The oracle with per-input exits and zero overhead must dominate
	// chunk-level online tuning.
	if opt.Latencies().Median() > oo.Latencies().Median() {
		t.Fatalf("offline optimal median %v above online optimal %v",
			opt.Latencies().Median(), oo.Latencies().Median())
	}
}
