package baselines

import (
	"repro/internal/exitsim"
	"repro/internal/model"
	"repro/internal/ramp"
)

// OnlineOptimalHandler is the "more realistic online optimal" of §4.2: it
// retunes thresholds at chunk granularity (as fast as GPU model
// definitions can be updated, not per sample), tuning on recent history
// of {20, 40, 80} batches and — with oracle knowledge — keeping whichever
// history length performs best on the upcoming chunk.
type OnlineOptimalHandler struct {
	Cfg *ramp.Config
	// stream is the full sample sequence in arrival order (an oracle
	// baseline may see it upfront).
	stream    []exitsim.Sample
	idx       int
	chunkSize int
	histories []int
	accBudget float64
}

// NewOnlineOptimal deploys Apparate's initial ramp set and prepares the
// oracle tuner over the given stream.
func NewOnlineOptimal(m *model.Model, p exitsim.Profile, budgetFrac float64,
	stream []exitsim.Sample, accBudget float64) *OnlineOptimalHandler {
	cfg := ramp.NewConfig(m, p, budgetFrac)
	cfg.DeployInitial(ramp.StyleDefault)
	return &OnlineOptimalHandler{
		Cfg:       cfg,
		stream:    stream,
		chunkSize: 64,
		// "Past {20, 40, 80} batches of inputs" (§4.2): at the average
		// serving batch sizes of these workloads (~6 requests), that is
		// roughly 120–480 samples.
		histories: []int{120, 240, 480},
		accBudget: accBudget,
	}
}

// BatchLatency includes the active ramp overheads.
func (h *OnlineOptimalHandler) BatchLatency(b int) float64 { return h.Cfg.WorstCaseMS(b) }

// Serve evaluates the sample under the current thresholds, retuning at
// chunk boundaries. Calls must follow stream order (the serving
// simulator's FIFO dispatch guarantees this).
func (h *OnlineOptimalHandler) Serve(s exitsim.Sample, b int) ramp.Outcome {
	if h.idx%h.chunkSize == 0 {
		h.retune()
	}
	h.idx++
	return h.Cfg.Evaluate(s, b)
}

func (h *OnlineOptimalHandler) retune() {
	upTo := h.idx + h.chunkSize
	if upTo > len(h.stream) {
		upTo = len(h.stream)
	}
	upcoming := h.stream[h.idx:upTo]
	if len(upcoming) == 0 {
		return
	}
	bestSav := -1.0
	var bestTS []float64
	for _, hist := range h.histories {
		lo := h.idx - hist
		if lo < 0 {
			lo = 0
		}
		past := h.stream[lo:h.idx]
		if len(past) == 0 {
			continue
		}
		ts := tunePerRamp(h.Cfg, past, h.accBudget)
		loss, sav := replay(h.Cfg, upcoming, ts)
		if loss <= h.accBudget && sav > bestSav {
			bestSav, bestTS = sav, ts
		}
	}
	if bestTS != nil {
		h.Cfg.SetThresholds(bestTS)
		return
	}
	// No history-derived configuration meets the constraint on the
	// upcoming chunk: keep the least-inaccurate one rather than giving
	// up on exits entirely, mirroring the paper's "performs best on the
	// upcoming data" selection.
	bestLoss := 2.0
	for _, hist := range h.histories {
		lo := h.idx - hist
		if lo < 0 {
			lo = 0
		}
		past := h.stream[lo:h.idx]
		if len(past) == 0 {
			continue
		}
		ts := tunePerRamp(h.Cfg, past, h.accBudget)
		loss, _ := replay(h.Cfg, upcoming, ts)
		if loss < bestLoss {
			bestLoss, bestTS = loss, ts
		}
	}
	if bestTS != nil && bestLoss <= 2*h.accBudget {
		h.Cfg.SetThresholds(bestTS)
	} else {
		h.Cfg.SetThresholds(make([]float64, len(h.Cfg.Active)))
	}
}
