// Package baselines implements every comparison system from the paper's
// evaluation (§4.1, §4.4): offline-optimal exiting, the realistic online
// optimal, existing static EE models (BranchyNet, DeeBERT and their
// favorably tuned variants), and two-layer inference systems
// (Tabi/FilterForward-style).
package baselines

import (
	"repro/internal/exitsim"
	"repro/internal/model"
	"repro/internal/ramp"
	"repro/internal/serving"
)

// OptimalHandler is the §2.2 oracle: every input exits at the earliest
// feasible ramp whose prediction matches the original model, with no ramp
// overheads. It upper-bounds any EE system's latency wins.
type OptimalHandler struct {
	Model   *model.Model
	Profile exitsim.Profile
	sites   []model.RampSite
}

// NewOptimal returns the oracle handler.
func NewOptimal(m *model.Model, p exitsim.Profile) *OptimalHandler {
	return &OptimalHandler{Model: m, Profile: p, sites: m.FeasibleRamps()}
}

// BatchLatency is the vanilla model latency (the oracle adds no ramps to
// plan around).
func (h *OptimalHandler) BatchLatency(b int) float64 { return h.Model.Latency(b) }

// Serve exits at the earliest correct ramp; inputs with no correct ramp
// run the full model.
func (h *OptimalHandler) Serve(s exitsim.Sample, b int) ramp.Outcome {
	for _, site := range h.sites {
		if h.Profile.Matches(s, site.Frac, site.Quality) {
			return ramp.Outcome{
				ExitIndex: site.NodeID,
				ServeMS:   h.Model.PrefixLatency(site.NodeID, b),
				Correct:   true,
			}
		}
	}
	return ramp.Outcome{ExitIndex: -1, ServeMS: h.Model.Latency(b), Correct: true}
}

// Variant selects a static-EE tuning policy (§4.4, Table 2).
type Variant int

// Static EE tuning variants.
const (
	// SharedThreshold is the default recommendation of BranchyNet and
	// DeeBERT: one threshold for every ramp, tuned once on bootstrap
	// data.
	SharedThreshold Variant = iota
	// PerRamp ("+") removes the shared-threshold restriction, still
	// tuned once on bootstrap data.
	PerRamp
	// OracleTuned ("opt") performs one-time tuning on the *test* data
	// itself: the best static configuration in hindsight.
	OracleTuned
)

// StaticEE builds an existing-EE-style handler: always-on ramps at every
// feasible site (the prescribed architectures place ramps after every
// layer; totalOverheadFrac spreads their cost, e.g. 22% for BranchyNet
// and 19.5% for DeeBERT per §2.3-C1), with one-time threshold tuning and
// no runtime adaptation.
func StaticEE(m *model.Model, p exitsim.Profile, style ramp.Style,
	totalOverheadFrac float64, variant Variant,
	bootstrap, test []exitsim.Sample, accBudget float64) *serving.StaticEEHandler {

	sites := m.FeasibleRamps()
	perRamp := style
	perRamp.OverheadFrac = totalOverheadFrac / float64(len(sites))
	cfg := ramp.NewConfig(m, p, totalOverheadFrac+1e-6)
	for _, s := range sites {
		if err := cfg.Activate(s, perRamp); err != nil {
			panic("baselines: static EE activation failed: " + err.Error())
		}
	}

	tuneOn := bootstrap
	// The upstream EE papers recommend one-time tuning against a looser
	// dev-set criterion than production's 1% (BranchyNet and DeeBERT
	// report operating points with multi-point accuracy drops); the
	// default and "+" variants reflect that, while "opt" applies the
	// strict budget with oracle test-set knowledge (§4.4).
	if variant != OracleTuned {
		accBudget *= 3
	} else {
		tuneOn = test
	}
	switch variant {
	case SharedThreshold:
		t := tuneShared(cfg, tuneOn, accBudget)
		ts := make([]float64, len(cfg.Active))
		for i := range ts {
			ts[i] = t
		}
		cfg.SetThresholds(ts)
	case PerRamp, OracleTuned:
		cfg.SetThresholds(tunePerRamp(cfg, tuneOn, accBudget))
	}
	return &serving.StaticEEHandler{Cfg: cfg}
}

// replay evaluates a threshold vector over samples, returning accuracy
// loss and mean saving fraction (mirrors the controller's evaluator but
// works on raw samples instead of recorded windows).
func replay(cfg *ramp.Config, samples []exitsim.Sample, thresholds []float64) (accLoss, savingFrac float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	wrong := 0
	saving := 0.0
	allOverhead := cfg.OverheadFrac()
	for _, s := range samples {
		overheadUpTo := 0.0
		for i, r := range cfg.Active {
			overheadUpTo += r.Style.OverheadFrac
			q := r.Style.Quality * r.Site.Quality
			e := cfg.Profile.ErrScore(s, r.Site.Frac, q)
			if e < thresholds[i] {
				if !cfg.Profile.Matches(s, r.Site.Frac, q) {
					wrong++
				}
				saving += (1 + allOverhead) - (r.Site.Frac + overheadUpTo)
				break
			}
		}
	}
	n := float64(len(samples))
	return float64(wrong) / n, saving / n
}

// tuneShared finds the largest shared threshold meeting the accuracy
// budget on the tuning samples (savings are monotone in the threshold,
// so largest-feasible is best).
func tuneShared(cfg *ramp.Config, samples []exitsim.Sample, accBudget float64) float64 {
	best := 0.0
	ts := make([]float64, len(cfg.Active))
	for i := 0; i <= 100; i++ {
		t := float64(i) / 100
		for j := range ts {
			ts[j] = t
		}
		loss, _ := replay(cfg, samples, ts)
		if loss <= accBudget {
			best = t
		}
	}
	return best
}

// tunePerRamp greedily raises individual thresholds (coordinate ascent
// with a fixed 0.02 step) while the accuracy budget holds.
func tunePerRamp(cfg *ramp.Config, samples []exitsim.Sample, accBudget float64) []float64 {
	n := len(cfg.Active)
	ts := make([]float64, n)
	_, curSav := replay(cfg, samples, ts)
	for {
		bestRamp := -1
		bestSav := curSav
		for i := 0; i < n; i++ {
			if ts[i] >= 1 {
				continue
			}
			ts[i] += 0.02
			loss, sav := replay(cfg, samples, ts)
			ts[i] -= 0.02
			if loss <= accBudget && sav > bestSav {
				bestRamp, bestSav = i, sav
			}
		}
		if bestRamp < 0 {
			return ts
		}
		ts[bestRamp] += 0.02
		curSav = bestSav
	}
}

// TwoLayerHandler models Tabi [73] / FilterForward [17]: a compressed
// model serves every input, and low-confidence inputs cascade to the base
// model. Following §4.2, the comparison is favorable to the baseline: no
// hosting overhead for the compressed model, no inter-stage queuing, and
// scheduling plans with the base model's latency alone.
type TwoLayerHandler struct {
	Model   *model.Model
	Profile exitsim.Profile
	// CompressedFrac is the compressed model's latency as a fraction of
	// the base model's.
	CompressedFrac float64
	// EquivDepth is the base-model depth whose capability the compressed
	// model matches (a distilled model is far more capable than an early
	// ramp of equal cost).
	EquivDepth float64
	// Threshold is the confidence cutoff below which the compressed
	// result is released.
	Threshold float64
}

// NewTwoLayer builds the two-layer baseline and tunes its confidence
// threshold once on bootstrap data to meet the accuracy budget. The
// compressed stage is FilterForward's tiny forwarding model for CV
// (~35% of base latency) and a Tabi-style distilled transformer for NLP
// (~55%, the DistilBERT-to-BERT ratio).
func NewTwoLayer(m *model.Model, p exitsim.Profile, bootstrap []exitsim.Sample, accBudget float64) *TwoLayerHandler {
	h := &TwoLayerHandler{
		Model: m, Profile: p,
		CompressedFrac: 0.55,
		EquivDepth:     0.62,
	}
	if m.Family.IsCV() {
		h.CompressedFrac = 0.35
		h.EquivDepth = 0.70
	}
	// Largest threshold whose bootstrap accuracy loss stays in budget.
	best := 0.0
	for i := 0; i <= 100; i++ {
		t := float64(i) / 100
		wrong := 0
		for _, s := range bootstrap {
			if p.ErrScore(s, h.EquivDepth, 1.0) < t && !p.Matches(s, h.EquivDepth, 1.0) {
				wrong++
			}
		}
		if float64(wrong)/float64(len(bootstrap)) <= accBudget {
			best = t
		}
	}
	h.Threshold = best
	return h
}

// BatchLatency plans with the base model only (favorable to the
// baseline).
func (h *TwoLayerHandler) BatchLatency(b int) float64 { return h.Model.Latency(b) }

// Serve releases the compressed model's answer for confident inputs and
// cascades the rest through the full model.
func (h *TwoLayerHandler) Serve(s exitsim.Sample, b int) ramp.Outcome {
	cLat := h.Model.Latency(b) * h.CompressedFrac
	if h.Profile.ErrScore(s, h.EquivDepth, 1.0) < h.Threshold {
		return ramp.Outcome{
			ExitIndex: 0,
			ServeMS:   cLat,
			Correct:   h.Profile.Matches(s, h.EquivDepth, 1.0),
		}
	}
	return ramp.Outcome{
		ExitIndex: -1,
		ServeMS:   cLat + h.Model.Latency(b),
		Correct:   true,
	}
}
