package genserve

import (
	"math"
	"testing"

	"repro/internal/engine"
	"repro/internal/exitsim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/workload"
)

func t5Setup() (*Engine, *workload.GenStream) {
	m := model.T5Large()
	e := NewEngine(m, exitsim.ProfileFor(m, exitsim.KindCNNDailyMail))
	s := workload.CNNDailyMail(120, 3, 31)
	return e, s
}

func TestVanillaTPTConstant(t *testing.T) {
	e, s := t5Setup()
	var seqs []SeqResult
	e.OnSeq = func(sr SeqResult) { seqs = append(seqs, sr) }
	stats := e.Run(s, VanillaGen{})
	e.OnSeq = nil
	want := e.stepMS()
	for _, seq := range seqs {
		for _, tk := range seq.Tokens {
			if tk.TPTms != want {
				t.Fatalf("vanilla TPT %v, want %v", tk.TPTms, want)
			}
			if tk.Exited || !tk.Match {
				t.Fatal("vanilla token exited or mismatched")
			}
		}
	}
	if len(seqs) != stats.Seqs {
		t.Fatalf("observer saw %d sequences, stats counted %d", len(seqs), stats.Seqs)
	}
	if stats.MeanMatchRate != 1.0 {
		t.Fatalf("vanilla match rate %v", stats.MeanMatchRate)
	}
}

func TestTokenCountsMatchRequests(t *testing.T) {
	e, s := t5Setup()
	var seqs []SeqResult
	e.OnSeq = func(sr SeqResult) { seqs = append(seqs, sr) }
	e.Run(s, VanillaGen{})
	e.OnSeq = nil
	reqs := s.Materialize()
	for i, seq := range seqs {
		if len(seq.Tokens) != reqs[i].GenLen {
			t.Fatalf("seq %d generated %d tokens, want %d", i, len(seq.Tokens), reqs[i].GenLen)
		}
	}
}

func TestOptimalGenFasterNeverWrong(t *testing.T) {
	e, s := t5Setup()
	van := e.Run(s, VanillaGen{})
	opt := e.Run(s, NewOptimalGen(e.Model, e.Profile))
	if opt.MeanMatchRate != 1.0 {
		t.Fatalf("optimal match rate %v", opt.MeanMatchRate)
	}
	if opt.TPT().Median() >= van.TPT().Median() {
		t.Fatalf("optimal median TPT %v not below vanilla %v",
			opt.TPT().Median(), van.TPT().Median())
	}
}

func TestFREEFixedRampSavesTPT(t *testing.T) {
	e, s := t5Setup()
	free := NewFREE(e.Model, e.Profile, s, 0.01)
	if free.Threshold <= 0 {
		t.Fatal("FREE tuned a zero threshold")
	}
	van := e.Run(s, VanillaGen{})
	fr := e.Run(s, free)
	if fr.TPT().Median() >= van.TPT().Median() {
		t.Fatalf("FREE median %v not below vanilla %v", fr.TPT().Median(), van.TPT().Median())
	}
}

func TestFREELosesAccuracyUnderDrift(t *testing.T) {
	// §4.4: FREE's one-time tuning yields accuracy losses on drifting
	// workloads while Apparate holds the constraint.
	m := model.T5Large()
	e := NewEngine(m, exitsim.ProfileFor(m, exitsim.KindCNNDailyMail))
	s := workload.CNNDailyMail(400, 3, 33)
	free := e.Run(s, NewFREE(m, e.Profile, s, 0.01))
	app := e.Run(s, NewApparateGen(m, e.Profile, 0.01))
	if free.MeanScore >= app.MeanScore {
		t.Fatalf("FREE sequence score %v not below Apparate %v",
			free.MeanScore, app.MeanScore)
	}
	// The 1% constraint applies to the sequence-level score (§4.3).
	if app.MeanScore < 0.985 {
		t.Fatalf("Apparate sequence score %v below constraint margin", app.MeanScore)
	}
}

func TestApparateGenSavesTPT(t *testing.T) {
	e, s := t5Setup()
	van := e.Run(s, VanillaGen{})
	app := e.Run(s, NewApparateGen(e.Model, e.Profile, 0.01))
	vm, am := van.TPT().Median(), app.TPT().Median()
	if am >= vm {
		t.Fatalf("apparate median TPT %v not below vanilla %v", am, vm)
	}
	// Paper: 70–78% median TPT wins for T5; require a substantial win.
	if (vm-am)/vm < 0.3 {
		t.Fatalf("apparate TPT win only %.1f%%", (vm-am)/vm*100)
	}
}

func TestApparateGenAdapts(t *testing.T) {
	e, s := t5Setup()
	pol := NewApparateGen(e.Model, e.Profile, 0.01)
	e.Run(s, pol)
	if pol.TuneRounds == 0 {
		t.Fatal("generative policy never tuned")
	}
}

func TestApparateGenTailMild(t *testing.T) {
	// §4.3: P95 TPT may exceed vanilla slightly (parallel-decode
	// catch-up), but only by a few percent.
	e, s := t5Setup()
	van := e.Run(s, VanillaGen{})
	app := e.Run(s, NewApparateGen(e.Model, e.Profile, 0.01))
	vp, ap := van.TPT().Percentile(95), app.TPT().Percentile(95)
	if ap > vp*1.15 {
		t.Fatalf("apparate P95 TPT %v exceeds vanilla %v by >15%%", ap, vp)
	}
}

func TestLlamaWinsGrowWithSize(t *testing.T) {
	win := func(m *model.Model) float64 {
		// Long enough for the single-ramp position search to converge.
		e := NewEngine(m, exitsim.ProfileFor(m, exitsim.KindSQuAD))
		s := workload.SQuAD(700, 2, 35)
		van := e.Run(s, VanillaGen{})
		app := e.Run(s, NewApparateGen(m, e.Profile, 0.01))
		vm := van.TPT().Median()
		return (vm - app.TPT().Median()) / vm
	}
	w7 := win(model.Llama27B())
	w13 := win(model.Llama213B())
	if w7 <= 0 || w13 <= 0 {
		t.Fatalf("llama wins not positive: 7B=%v 13B=%v", w7, w13)
	}
	if w13 <= w7 {
		t.Fatalf("13B win %v not above 7B win %v", w13, w7)
	}
}

func TestFlushBoundsPending(t *testing.T) {
	// With an always-exit policy, the flush must trigger every
	// FlushCount tokens and add the standalone-flush cost.
	m := model.T5Large()
	e := NewEngine(m, exitsim.ProfileFor(m, exitsim.KindCNNDailyMail))
	e.FlushCount = 4
	req := workload.GenRequest{ID: 0, GenLen: 16, SeqSeed: 1, BaseDifficulty: 0.1}
	pol := &alwaysExit{depth: 0.3}
	tokens, _ := e.decodeSequence(req, pol)
	if pol.flushes != 4 {
		t.Fatalf("saw %d flushes for 16 always-exit tokens with FlushCount 4", pol.flushes)
	}
	// Every 4th token pays the flush premium.
	if tokens[3].TPTms <= tokens[2].TPTms {
		t.Fatal("flush token not slower than plain exit token")
	}
}

type alwaysExit struct {
	depth   float64
	flushes int
}

func (a *alwaysExit) Decide(exitsim.Sample) (bool, float64, float64, bool) {
	return true, a.depth, 0, true
}
func (a *alwaysExit) ObserveFlush() { a.flushes++ }

func TestSlotsBoundConcurrency(t *testing.T) {
	// With 1 slot, sequences serialize: each starts no earlier than the
	// previous finishes.
	m := model.T5Large()
	e := NewEngine(m, exitsim.ProfileFor(m, exitsim.KindCNNDailyMail))
	e.MaxConcurrent = 1
	s := workload.CNNDailyMail(20, 50, 37) // arrival rate far above service
	var seqs []SeqResult
	e.OnSeq = func(sr SeqResult) { seqs = append(seqs, sr) }
	e.Run(s, VanillaGen{})
	e.OnSeq = nil
	for i := 1; i < len(seqs); i++ {
		if seqs[i].StartMS < seqs[i-1].DoneMS-1e-9 {
			t.Fatalf("seq %d started before seq %d finished", i, i-1)
		}
	}
}

func TestSaturatedBatchFactor(t *testing.T) {
	m := model.T5Large()
	e := NewEngine(m, exitsim.ProfileFor(m, exitsim.KindCNNDailyMail))
	if e.batchFactor() <= 1 {
		t.Fatal("saturated batch factor not above 1")
	}
	if e.stepMS() <= m.BaseLatencyMS {
		t.Fatal("step latency ignores batching")
	}
}

// TestRunBoundedPendingEvents pins the engine-migration memory claim: a
// generative run's pending event count stays bounded by the slot pool
// (slot completions + one armed arrival + the monitor below), never
// growing with the stream. A light-load stream is the regression
// trigger: when slots free before the next arrival, a buggy pump would
// re-arm a duplicate arrival event per completion.
func TestRunBoundedPendingEvents(t *testing.T) {
	m := model.T5Large()
	e := NewEngine(m, exitsim.ProfileFor(m, exitsim.KindCNNDailyMail))
	// Wire a sim exactly like Run, plus a monitor process sampling the
	// heap between events.
	g := &genSim{
		e:     e,
		pol:   VanillaGen{},
		loop:  engine.New(),
		it:    workload.CNNDailyMail(400, 0.5, 9).Iter(),
		free:  e.MaxConcurrent,
		armAt: math.Inf(1),
		stats: &Stats{TPTRec: metrics.NewRecorder(e.Metrics, 4096)},
	}
	if r, ok := g.it.Next(); ok {
		g.next, g.has = r, true
	}
	maxPending := 0
	var monitor func(now float64)
	monitor = func(now float64) {
		if p := g.loop.Pending(); p > maxPending {
			maxPending = p
		}
		if g.has || g.free < e.MaxConcurrent {
			g.loop.ScheduleFunc(now+50, 2, monitor)
		}
	}
	g.loop.Add(g)
	g.loop.ScheduleFunc(0, 2, monitor)
	g.loop.Run()
	if g.stats.Seqs != 400 {
		t.Fatalf("served %d sequences, want 400", g.stats.Seqs)
	}
	// Bound: MaxConcurrent slot completions + 1 armed arrival + the
	// monitor's own event.
	if limit := e.MaxConcurrent + 2; maxPending > limit {
		t.Fatalf("pending events peaked at %d (> %d): arrival events are duplicating with the stream", maxPending, limit)
	}
}
