package genserve

import (
	"math"
	"testing"
	"testing/quick"
)

func TestScoreFromMatchRateBounds(t *testing.T) {
	if got := ScoreFromMatchRate(1); got != 1 {
		t.Fatalf("score(1) = %v, want 1", got)
	}
	if got := ScoreFromMatchRate(0); got != 0 {
		t.Fatalf("score(0) = %v, want 0", got)
	}
	if got := ScoreFromMatchRate(-0.5); got != 0 {
		t.Fatalf("score(-0.5) = %v, want 0", got)
	}
}

func TestScoreConcave(t *testing.T) {
	// Sequence metrics are forgiving of small token divergence: the
	// score must sit above the match rate on (0, 1).
	check := func(raw uint16) bool {
		r := float64(raw%999+1) / 1000 // (0, 1)
		s := ScoreFromMatchRate(r)
		return s >= r && s <= 1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScoreMonotone(t *testing.T) {
	prev := -1.0
	for r := 0.0; r <= 1.0; r += 0.01 {
		s := ScoreFromMatchRate(r)
		if s < prev {
			t.Fatalf("score not monotone at rate %v", r)
		}
		prev = s
	}
}

func TestTokenBudgetConsistentWithScore(t *testing.T) {
	// A match-rate loss equal to TokenBudget(b) must produce a score
	// loss of at most ~b (the budget carries a safety margin relative
	// to the exact inverse).
	for _, b := range []float64{0.005, 0.01, 0.02, 0.05} {
		rate := 1 - TokenBudget(b)
		scoreLoss := 1 - ScoreFromMatchRate(rate)
		if scoreLoss > b+1e-9 {
			t.Fatalf("budget %v: score loss %v exceeds the sequence budget", b, scoreLoss)
		}
	}
}

func TestTokenBudgetCapped(t *testing.T) {
	if got := TokenBudget(0.9); got != 1 {
		t.Fatalf("TokenBudget(0.9) = %v, want capped at 1", got)
	}
	if math.Abs(TokenBudget(0.01)-0.015) > 1e-12 {
		t.Fatalf("TokenBudget(0.01) = %v, want 0.015", TokenBudget(0.01))
	}
}
