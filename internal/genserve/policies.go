package genserve

import (
	"repro/internal/exitsim"
	"repro/internal/model"
	"repro/internal/ramp"
	"repro/internal/workload"
)

// VanillaGen never exits: every token runs the full decode step.
type VanillaGen struct{}

// Decide runs the full pass.
func (VanillaGen) Decide(exitsim.Sample) (bool, float64, float64, bool) {
	return false, 1, 0, true
}

// ObserveFlush is a no-op.
func (VanillaGen) ObserveFlush() {}

// OptimalGen is the §4.3 oracle: each token exits at the earliest
// feasible ramp producing the original model's token, with no ramp
// overhead and no parallel-decode penalty (the engine's penalty applies
// only on non-exits, which the oracle takes only when no ramp matches).
type OptimalGen struct {
	Profile exitsim.Profile
	Sites   []model.RampSite
}

// NewOptimalGen builds the oracle over the model's feasible ramp sites.
func NewOptimalGen(m *model.Model, p exitsim.Profile) *OptimalGen {
	return &OptimalGen{Profile: p, Sites: m.FeasibleRamps()}
}

// Decide exits at the earliest matching site.
func (o *OptimalGen) Decide(s exitsim.Sample) (bool, float64, float64, bool) {
	for _, site := range o.Sites {
		if o.Profile.Matches(s, site.Frac, site.Quality) {
			return true, site.Frac, 0, true
		}
	}
	return false, 1, 0, true
}

// ObserveFlush is a no-op.
func (o *OptimalGen) ObserveFlush() {}

// FREEGen models FREE [14]: one fixed ramp whose position and threshold
// are selected once on a bootstrap prefix (default: the first 3% of
// requests) to maximize savings under the accuracy constraint; the whole
// model is fine-tuned for that ramp (a small quality boost) and nothing
// adapts afterwards — the source of its 5.5% accuracy loss under drift.
type FREEGen struct {
	Profile   exitsim.Profile
	Depth     float64
	Threshold float64
	Overhead  float64
	Quality   float64
	// siteQ is the chosen site's intrinsic quality.
	siteQ float64
}

// NewFREE selects the ramp position and threshold on the bootstrap
// prefix of the stream.
// accBudget is the sequence-score budget; it is converted to the
// corresponding token-level mismatch budget internally.
func NewFREE(m *model.Model, p exitsim.Profile, stream *workload.GenStream, accBudget float64) *FREEGen {
	f := &FREEGen{Profile: p, Quality: 1.05, Overhead: ramp.StyleDefault.OverheadFrac}
	tokenBudget := TokenBudget(accBudget)
	nBoot := stream.Len() * 3 / 100
	if nBoot < 1 {
		nBoot = 1
	}
	// Collect bootstrap token samples (materializing only the prefix).
	var samples []exitsim.Sample
	for _, req := range stream.Prefix(nBoot) {
		ts := workload.NewTokenSampler(req)
		for i := 0; i < req.GenLen; i++ {
			samples = append(samples, ts.Next())
		}
	}
	sites := m.FeasibleRamps()
	bestSaving := -1.0
	for _, site := range sites {
		for ti := 0; ti <= 100; ti += 2 {
			t := float64(ti) / 100
			wrong, exits := 0, 0
			for _, s := range samples {
				q := f.Quality * site.Quality
				if p.ErrScore(s, site.Frac, q) < t {
					exits++
					if !p.Matches(s, site.Frac, q) {
						wrong++
					}
				}
			}
			if float64(wrong)/float64(len(samples)) > tokenBudget {
				break // loss is monotone in t; higher t only worsens it
			}
			saving := float64(exits) * (1 - site.Frac)
			if saving > bestSaving {
				bestSaving = saving
				f.Depth = site.Frac
				f.Threshold = t
				f.siteQ = site.Quality
			}
		}
	}
	return f
}

// Decide applies the fixed ramp.
func (f *FREEGen) Decide(s exitsim.Sample) (bool, float64, float64, bool) {
	q := f.Quality * f.siteQ
	if f.Profile.ErrScore(s, f.Depth, q) < f.Threshold {
		return true, f.Depth, f.Overhead, f.Profile.Matches(s, f.Depth, q)
	}
	return false, 1, f.Overhead, true
}

// ObserveFlush is a no-op: FREE collects no runtime feedback.
func (f *FREEGen) ObserveFlush() {}

// tokenObs is one token's feedback at the active ramp.
type tokenObs struct {
	err   float64
	match bool
}

// ApparateGen manages a single adjustable ramp (the paper uses a ramp
// budget of 1 for generative scenarios to protect tail TPT, §4.4).
// Thresholds retune every window on token feedback; the ramp position is
// chosen among a coarse set of candidate sites (quantiles of the feasible
// positions, the spirit of Algorithm 2's interval midpoints): an initial
// sweep measures each candidate once, after which the policy sits at the
// best exponentially-weighted utility and periodically re-probes the
// others so workload drift can move the ramp. Feedback within a
// parallel-decoding instance is truncated at the first token whose exit
// deviates from the original model, since later comparisons may reflect
// cascading errors (§3.4).
type ApparateGen struct {
	Model     *model.Model
	Profile   exitsim.Profile
	Sites     []model.RampSite
	SiteIdx   int
	Threshold float64
	Overhead  float64
	AccBudget float64

	window      []tokenObs
	windowCap   int
	adjustEvery int
	sinceAdjust int
	divergence  bool

	candidates []int     // site indices under consideration
	ewma       []float64 // per-candidate utility estimate
	visited    []bool
	cur        int // index into candidates
	probeClock int

	// TuneRounds and MoveRounds count adaptation actions.
	TuneRounds int
	MoveRounds int
}

// NewApparateGen starts with the ramp mid-model and no exiting.
// accBudget is the sequence-score budget; the token-level mismatch budget
// enforced on feedback windows is derived via TokenBudget.
func NewApparateGen(m *model.Model, p exitsim.Profile, accBudget float64) *ApparateGen {
	sites := m.FeasibleRamps()
	// Candidate positions at quantiles of the feasible sites.
	quantiles := []float64{0.02, 0.08, 0.16, 0.25, 0.38, 0.5, 0.68, 0.85}
	cands := make([]int, 0, len(quantiles))
	seen := map[int]bool{}
	for _, q := range quantiles {
		idx := int(q * float64(len(sites)-1))
		if !seen[idx] {
			seen[idx] = true
			cands = append(cands, idx)
		}
	}
	a := &ApparateGen{
		Model: m, Profile: p, Sites: sites,
		Overhead:    ramp.StyleDefault.OverheadFrac,
		AccBudget:   TokenBudget(accBudget),
		windowCap:   192,
		adjustEvery: 192,
		candidates:  cands,
		ewma:        make([]float64, len(cands)),
		visited:     make([]bool, len(cands)),
	}
	// Start the sweep at the middle candidate.
	a.cur = len(cands) / 2
	a.SiteIdx = cands[a.cur]
	return a
}

func (a *ApparateGen) depth() float64 { return a.Sites[a.SiteIdx].Frac }

// Decide evaluates the token at the active ramp, records feedback, and
// runs the adaptation loops on their cadences.
func (a *ApparateGen) Decide(s exitsim.Sample) (bool, float64, float64, bool) {
	q := a.Sites[a.SiteIdx].Quality
	e := a.Profile.ErrScore(s, a.depth(), q)
	match := a.Profile.Matches(s, a.depth(), q)
	exit := e < a.Threshold

	// Token-level feedback, truncated at the first in-instance
	// divergence.
	if !a.divergence {
		a.window = append(a.window, tokenObs{err: e, match: match})
		if len(a.window) > a.windowCap {
			a.window = a.window[len(a.window)-a.windowCap:]
		}
		if exit && !match {
			a.divergence = true
		}
	}

	a.sinceAdjust++
	if a.sinceAdjust >= a.adjustEvery {
		a.sinceAdjust = 0
		a.adapt()
	}
	return exit, a.depth(), a.Overhead, !exit || match
}

// ObserveFlush closes a parallel-decoding instance, re-arming feedback.
func (a *ApparateGen) ObserveFlush() { a.divergence = false }

// tune picks the largest threshold whose windowed loss fits the budget.
func (a *ApparateGen) tune() {
	best := 0.0
	n := float64(len(a.window))
	if n == 0 {
		return
	}
	for ti := 0; ti <= 100; ti++ {
		t := float64(ti) / 100
		wrong := 0
		for _, o := range a.window {
			if o.err < t && !o.match {
				wrong++
			}
		}
		if float64(wrong)/n <= a.AccBudget {
			best = t
		} else {
			break // monotone in t
		}
	}
	a.Threshold = best
	a.TuneRounds++
}

// adapt retunes the threshold, folds the window's utility into the
// current candidate's estimate, and decides where the ramp sits next:
// unvisited candidates first (the sweep), then the best estimate, with a
// periodic probe of the stalest alternative so drift can be tracked. The
// threshold survives moves — error scores are calibrated against match
// probability at any depth, so the accuracy guarantee carries over while
// the next tune refines it on fresh data.
func (a *ApparateGen) adapt() {
	a.tune()
	exits := 0
	for _, o := range a.window {
		if o.err < a.Threshold {
			exits++
		}
	}
	n := len(a.window)
	if n == 0 {
		return
	}
	base := a.Model.BaseLatencyMS
	utility := (float64(exits)*(1-a.depth())*base - float64(n-exits)*a.Overhead*base) / float64(n)

	if a.visited[a.cur] {
		a.ewma[a.cur] = 0.6*a.ewma[a.cur] + 0.4*utility
	} else {
		a.ewma[a.cur] = utility
		a.visited[a.cur] = true
	}

	next := a.cur
	if unvisited := a.firstUnvisited(); unvisited >= 0 {
		next = unvisited
	} else {
		best := 0
		for i := range a.ewma {
			if a.ewma[i] > a.ewma[best] {
				best = i
			}
		}
		next = best
		// Periodically re-probe a neighboring candidate so the
		// estimates around the incumbent stay current under drift;
		// distant candidates would cost a full window of foregone exits
		// for little information.
		a.probeClock++
		if a.probeClock%8 == 0 {
			if (a.probeClock/8)%2 == 0 && best > 0 {
				next = best - 1
			} else if best < len(a.candidates)-1 {
				next = best + 1
			}
		}
	}
	if next != a.cur {
		a.cur = next
		a.SiteIdx = a.candidates[next]
		a.MoveRounds++
		a.window = a.window[:0]
	}
}

func (a *ApparateGen) firstUnvisited() int {
	for i, v := range a.visited {
		if !v {
			return i
		}
	}
	return -1
}
