package genserve

import (
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/workload"
)

// DefaultBlockTokens is the KV-block granularity used when Engine.KVBlocks
// sets a pool but Engine.BlockTokens is zero (vLLM's default block size).
const DefaultBlockTokens = 16

// kvActive reports whether any KV-runtime knob is set. With all of them
// zero, Run takes the classic slot path — byte-identical to the pre-KV
// engine, with no extra rng draws.
func (e *Engine) kvActive() bool {
	return e.KVBlocks > 0 || e.PrefixHitRatio > 0 || e.PrefillChunkTokens > 0
}

// Engine-event op codes dispatched to kvSim.OnEvent.
const (
	opKVArrive    uint8 = iota // a request reached the admission queue
	opKVMilestone              // a running sequence finished a prefill chunk or decode stretch
)

// kvSeq is one sequence's runtime state under the KV-block runtime.
type kvSeq struct {
	req    workload.GenRequest
	tokens []TokenResult

	// hit records the sequence's prefix-cache draw; effPrompt is the
	// prompt tokens the sequence must prefill and hold blocks for — 0 on
	// a hit, where the cached prefix's blocks are shared with the cache
	// rather than charged to the sequence.
	hit       bool
	effPrompt int

	// flushTail is the decode time beyond the per-token TPT sum — the
	// end-of-sequence standalone flush — charged to the final decode
	// stretch.
	flushTail float64

	// gDone counts generated tokens committed at milestones. A preempted
	// sequence resumes from here: re-admission recomputes (re-prefills)
	// effPrompt+gDone tokens, then decoding continues — vLLM's recompute
	// preemption. Token decisions are never re-drawn; the policy saw
	// each token exactly once at first admission.
	gDone       int
	prefillLeft int

	// pendingPrefill / pendingG describe the in-flight milestone: the
	// prefill tokens it completes, or the gDone it commits. pendingDur
	// is the milestone's duration, kept so the commit-time trace event
	// can report the span it covered.
	pendingPrefill int
	pendingG       int
	pendingDur     float64

	blocks     int
	slot       int
	enqueuedAt float64
	admittedAt float64
	startMS    float64
	started    bool
	waitMS     float64
	matchRate  float64
}

// kvSim runs one generative simulation under the KV-block memory
// runtime: admission is a FIFO queue on the engine clock gated by both a
// free decode slot and pool headroom, running sequences advance through
// per-sequence milestone events (prefill chunks, then decode stretches
// between block boundaries), and growth past the pool preempts +
// requeues the youngest running sequence deterministically.
type kvSim struct {
	e    *Engine
	pol  Policy
	loop *engine.Loop
	it   *workload.GenIter

	next   workload.GenRequest
	has    bool
	prefix *rng.Rand // the "gen.prefix" labeled stream; nil when ratio is 0

	blockTokens int
	waiting     []*kvSeq // FIFO; preempted sequences re-enter at the head
	slots       []*kvSeq // decode-slot table; nil = free
	// slotEpoch invalidates in-flight milestone events: every admission
	// to and eviction from a slot bumps its epoch, and a milestone whose
	// packed epoch is stale is dropped (the engine has no cancellation).
	slotEpoch []uint32
	freeSlots int
	running   int

	used     int     // blocks in use (tracked only when KVBlocks > 0)
	utilInt  float64 // ∫ used dt, folded at every pool transition
	utilLast float64

	stats        *Stats
	sumRate      float64
	sumScore     float64
	totalWaitMS  float64
	firstArrival float64
	haveFirst    bool
	lastDone     float64

	// Observability sinks (nil = off; every emission site is
	// nil-guarded, so untraced runs stay byte- and alloc-identical).
	// intReported is the slice of utilInt already reported through
	// timeline rows, so each row's KVBlockMS is a telescoping delta and
	// the column sums exactly to the run's ∫used·dt.
	tr          *obs.Tracer
	tl          *obs.Timeline
	snapFn      func(float64) obs.Gauges
	intReported float64
}

// runKV serves the stream under the KV-block memory runtime.
func (e *Engine) runKV(stream *workload.GenStream, pol Policy) *Stats {
	k := &kvSim{
		e:           e,
		pol:         pol,
		loop:        engine.New(),
		it:          stream.Iter(),
		blockTokens: e.BlockTokens,
		slots:       make([]*kvSeq, e.MaxConcurrent),
		slotEpoch:   make([]uint32, e.MaxConcurrent),
		freeSlots:   e.MaxConcurrent,
		stats:       &Stats{TPTRec: metrics.NewRecorder(e.Metrics, 4096)},
	}
	if k.blockTokens <= 0 {
		k.blockTokens = DefaultBlockTokens
	}
	if e.PrefixHitRatio > 0 {
		k.prefix = rng.Labeled(e.Seed, "gen.prefix")
	}
	if r, ok := k.it.Next(); ok {
		k.next, k.has = r, true
	}
	k.tr, k.tl = e.Trace, e.Timeline
	if k.tl != nil {
		// Sample from the advance hook, never from tick events on the
		// heap — the clock must not move for the sampler's sake (same
		// rule as the cluster path).
		k.tl.Gen = true
		k.snapFn = k.gauges
		k.loop.OnAdvance(func(prev, now float64) { k.tl.CatchUp(now, k.snapFn) })
	}
	k.loop.Add(k)
	k.loop.Run()
	if k.tl != nil && k.haveFirst {
		k.tl.Finish(k.loop.Now(), k.snapFn)
	}
	if k.stats.Seqs > 0 {
		k.stats.MeanMatchRate = k.sumRate / float64(k.stats.Seqs)
		k.stats.MeanScore = k.sumScore / float64(k.stats.Seqs)
		k.stats.QueueMS = k.totalWaitMS / float64(k.stats.Seqs)
		if span := k.lastDone - k.firstArrival; span > 0 {
			k.stats.TokensPerSec = float64(k.stats.TotalTokens) / span * 1000
			if e.KVBlocks > 0 {
				k.foldUtil(k.lastDone)
				k.stats.KVUtil = k.utilInt / (float64(e.KVBlocks) * span)
			}
		}
	}
	return k.stats
}

// Start schedules the first arrival; kvSim is an engine.Process.
func (k *kvSim) Start(l *engine.Loop) {
	if k.has {
		l.Schedule(k.next.ArrivalMS, classArrival, k, opKVArrive, 0)
	}
}

// OnEvent dispatches engine events; kvSim is its own pre-bound handler.
// Milestone args pack slot<<32 | epoch so a stale event (its sequence
// was preempted after scheduling) is recognized and dropped.
func (k *kvSim) OnEvent(now float64, op uint8, arg uint64) {
	switch op {
	case opKVArrive:
		k.arrive(now)
	case opKVMilestone:
		slot := int(arg >> 32)
		if s := k.slots[slot]; s != nil && uint32(arg) == k.slotEpoch[slot] {
			k.milestone(s, now)
		}
	}
	k.pump(now)
}

// arrive moves the pending request into the admission queue, drawing its
// prefix-cache fate, and arms the next arrival event (one request of
// lookahead, as in the classic path).
func (k *kvSim) arrive(now float64) {
	req := k.next
	if r, ok := k.it.Next(); ok {
		k.next = r
		k.loop.Schedule(r.ArrivalMS, classArrival, k, opKVArrive, 0)
	} else {
		k.next, k.has = workload.GenRequest{}, false
	}
	if !k.haveFirst {
		k.firstArrival, k.haveFirst = req.ArrivalMS, true
	}
	s := &kvSeq{req: req, effPrompt: req.PromptLen, enqueuedAt: now}
	if k.tr != nil {
		e := obs.At(now, obs.KindSeqArrive)
		e.Req = req.ID
		e.Val = req.PromptLen
		k.tr.Emit(e)
	}
	if k.prefix != nil && k.prefix.Float64() < k.e.PrefixHitRatio {
		s.hit = true
		s.effPrompt = 0
		k.stats.PrefixHits++
		if k.tr != nil {
			e := obs.At(now, obs.KindPrefixHit)
			e.Req = req.ID
			k.tr.Emit(e)
		}
	}
	k.waiting = append(k.waiting, s)
}

// pump admits from the head of the queue while a slot is free and the
// head's working set fits the pool. Admission is strictly FIFO — a head
// that does not fit blocks everything behind it until memory frees.
func (k *kvSim) pump(now float64) {
	for len(k.waiting) > 0 && k.freeSlots > 0 && k.fits(k.waiting[0]) {
		s := k.waiting[0]
		k.waiting[0] = nil
		k.waiting = k.waiting[1:]
		k.admit(s, now)
	}
}

// fits reports whether the sequence's working set — blocks for its
// recompute prefix plus the first new token — has pool headroom. A
// sequence too large to ever fit is still admitted once the pool is
// completely idle, so the queue cannot wedge.
func (k *kvSim) fits(s *kvSeq) bool {
	if k.e.KVBlocks <= 0 {
		return true
	}
	need := k.blocksFor(s.effPrompt + s.gDone + 1)
	return k.used+need <= k.e.KVBlocks || k.running == 0
}

func (k *kvSim) blocksFor(tokens int) int {
	if tokens <= 0 {
		return 0
	}
	return (tokens + k.blockTokens - 1) / k.blockTokens
}

// admit claims a slot and the recompute working set's blocks, decides
// the sequence's tokens on first admission, and schedules its first
// milestone.
func (k *kvSim) admit(s *kvSeq, now float64) {
	k.freeSlots--
	k.running++
	s.waitMS += now - s.enqueuedAt
	s.admittedAt = now
	slot := -1
	for i, occ := range k.slots {
		if occ == nil {
			slot = i
			break
		}
	}
	s.slot = slot
	k.slots[slot] = s
	k.slotEpoch[slot]++
	if !s.started {
		s.started = true
		s.startMS = now
		var total float64
		s.tokens, total = k.e.decodeSequence(s.req, k.pol)
		for _, tk := range s.tokens {
			total -= tk.TPTms
		}
		s.flushTail = total
		k.record(s)
	}
	if k.e.KVBlocks > 0 {
		k.grant(s, k.blocksFor(s.effPrompt+s.gDone), now)
	}
	if k.tr != nil {
		e := obs.At(now, obs.KindKVAdmit)
		e.Req = s.req.ID
		e.Replica = s.slot
		e.Val = s.blocks
		e.DurMS = now - s.enqueuedAt
		k.tr.Emit(e)
	}
	s.prefillLeft = s.effPrompt + s.gDone
	k.advance(s, now)
}

// record folds the sequence's decided tokens into the run's aggregates —
// once, at first admission, exactly when the classic path would.
func (k *kvSim) record(s *kvSeq) {
	match := 0
	for _, tk := range s.tokens {
		if tk.Match {
			match++
		}
		k.stats.TPTRec.Add(tk.TPTms)
	}
	rate := 1.0
	if len(s.tokens) > 0 {
		rate = float64(match) / float64(len(s.tokens))
	}
	s.matchRate = rate
	k.sumRate += rate
	k.sumScore += ScoreFromMatchRate(rate)
	k.stats.Seqs++
	k.stats.TotalTokens += len(s.tokens)
}

// advance schedules the sequence's next milestone: a prefill chunk, a
// decode stretch to the next block boundary, or completion.
func (k *kvSim) advance(s *kvSeq, now float64) {
	if s.prefillLeft > 0 {
		chunk := s.prefillLeft
		if c := k.e.PrefillChunkTokens; c > 0 && chunk > c {
			chunk = c
		}
		s.pendingPrefill = chunk
		s.pendingDur = k.e.prefillMS(chunk)
		k.schedule(s, now+s.pendingDur)
		return
	}
	if s.gDone >= s.req.GenLen {
		k.complete(s, now)
		return
	}
	gNext := s.req.GenLen
	if k.e.KVBlocks > 0 {
		headroom := s.blocks*k.blockTokens - (s.effPrompt + s.gDone)
		if headroom <= 0 {
			if !k.acquire(s, now) {
				return // s itself was preempted while asking for a block
			}
			headroom = s.blocks*k.blockTokens - (s.effPrompt + s.gDone)
		}
		if g := s.gDone + headroom; g < gNext {
			gNext = g
		}
	}
	dur := 0.0
	for i := s.gDone; i < gNext; i++ {
		dur += s.tokens[i].TPTms
	}
	if gNext == s.req.GenLen {
		dur += s.flushTail
	}
	s.pendingG = gNext
	s.pendingDur = dur
	k.schedule(s, now+dur)
}

// milestone commits the in-flight chunk or decode stretch and advances.
// Trace slices emit here, at commit time, so work lost to preemption
// never appears in the trace.
func (k *kvSim) milestone(s *kvSeq, now float64) {
	if s.pendingPrefill > 0 {
		if k.tr != nil {
			e := obs.At(now, obs.KindPrefillChunk)
			e.Req = s.req.ID
			e.Replica = s.slot
			e.Val = s.pendingPrefill
			e.DurMS = s.pendingDur
			k.tr.Emit(e)
		}
		s.prefillLeft -= s.pendingPrefill
		s.pendingPrefill = 0
	} else {
		if k.tr != nil {
			e := obs.At(now, obs.KindDecodeFlush)
			e.Req = s.req.ID
			e.Replica = s.slot
			e.Val = s.pendingG - s.gDone
			e.DurMS = s.pendingDur
			k.tr.Emit(e)
		}
		s.gDone = s.pendingG
	}
	k.advance(s, now)
}

func (k *kvSim) schedule(s *kvSeq, at float64) {
	arg := uint64(s.slot)<<32 | uint64(k.slotEpoch[s.slot])
	k.loop.Schedule(at, classSlotFree, k, opKVMilestone, arg)
}

// acquire grants the sequence one more KV block, preempting the
// youngest running sequence while the pool is exhausted. It returns
// false when the requester itself was the victim — it is the youngest —
// and has been requeued. A sole runner is always granted (the pool may
// transiently oversubscribe) so one oversized sequence cannot wedge the
// engine.
func (k *kvSim) acquire(s *kvSeq, now float64) bool {
	for k.used >= k.e.KVBlocks && k.running > 1 {
		v := k.youngest()
		if v == s {
			k.preempt(s, now)
			return false
		}
		k.preempt(v, now)
	}
	k.grant(s, 1, now)
	return true
}

// grant charges n pool blocks to the sequence, without admission checks
// (callers gate on fits / acquire).
func (k *kvSim) grant(s *kvSeq, n int, now float64) {
	if n <= 0 {
		return
	}
	k.foldUtil(now)
	k.used += n
	s.blocks += n
}

// youngest returns the most recently admitted running sequence, ties
// broken by the larger request ID — a total, deterministic order.
func (k *kvSim) youngest() *kvSeq {
	var y *kvSeq
	for _, s := range k.slots {
		if s == nil {
			continue
		}
		if y == nil || s.admittedAt > y.admittedAt ||
			(s.admittedAt == y.admittedAt && s.req.ID > y.req.ID) {
			y = s
		}
	}
	return y
}

// preempt evicts a running sequence: its blocks and slot free, any
// in-flight milestone goes stale, mid-stretch work is lost (it resumes
// from its last committed milestone and recomputes on re-admission),
// and it re-enters the queue at the head so FIFO order is preserved for
// work already granted.
func (k *kvSim) preempt(v *kvSeq, now float64) {
	k.stats.Preemptions++
	if k.tr != nil {
		e := obs.At(now, obs.KindPreempt)
		e.Req = v.req.ID
		e.Replica = v.slot
		e.Val = v.blocks
		e.DurMS = now - v.admittedAt
		k.tr.Emit(e)
	}
	k.slotEpoch[v.slot]++
	k.slots[v.slot] = nil
	k.freeSlots++
	k.running--
	if v.blocks > 0 {
		k.foldUtil(now)
		k.used -= v.blocks
		v.blocks = 0
	}
	v.pendingPrefill, v.pendingG = 0, 0
	v.enqueuedAt = now
	k.waiting = append(k.waiting, nil)
	copy(k.waiting[1:], k.waiting)
	k.waiting[0] = v
	if k.tr != nil {
		e := obs.At(now, obs.KindSeqRequeue)
		e.Req = v.req.ID
		e.Val = len(k.waiting)
		k.tr.Emit(e)
	}
}

// complete retires a finished sequence, freeing its slot and blocks.
func (k *kvSim) complete(s *kvSeq, now float64) {
	if k.tr != nil {
		e := obs.At(now, obs.KindSeqComplete)
		e.Req = s.req.ID
		e.Replica = s.slot
		e.DurMS = now - s.admittedAt
		e.LatMS = now - s.req.ArrivalMS
		k.tr.Emit(e)
	}
	if k.tl != nil {
		k.tl.Observe(now-s.req.ArrivalMS, false)
	}
	k.slotEpoch[s.slot]++
	k.slots[s.slot] = nil
	k.freeSlots++
	k.running--
	if s.blocks > 0 {
		k.foldUtil(now)
		k.used -= s.blocks
		s.blocks = 0
	}
	k.totalWaitMS += s.waitMS
	if now > k.lastDone {
		k.lastDone = now
	}
	if k.e.OnSeq != nil {
		k.e.OnSeq(SeqResult{
			Request: s.req, StartMS: s.startMS, DoneMS: now,
			Tokens: s.tokens, MatchRate: s.matchRate,
		})
	}
}

// foldUtil integrates the pool occupancy up to now.
func (k *kvSim) foldUtil(now float64) {
	k.utilInt += float64(k.used) * (now - k.utilLast)
	k.utilLast = now
}

// gauges snapshots the KV runtime at tick instant tMS. Ticks fire from
// the advance hook, so tMS lies in (prev event, next event] and every
// counter still holds its pre-event value — exactly the state at tMS.
// The block-ms integral is evaluated exactly at tMS (without folding it
// into utilInt, which belongs to event processing) and reported as a
// delta against what earlier rows already carried, so the kv_block_ms
// column telescopes to the run's full ∫used·dt.
func (k *kvSim) gauges(tMS float64) obs.Gauges {
	g := obs.Gauges{Running: k.running, Queued: len(k.waiting), Preempts: k.stats.Preemptions}
	if k.has && k.next.ArrivalMS <= tMS {
		g.Queued++ // the armed arrival has arrived by tMS but its event hasn't fired
	}
	if k.e.KVBlocks > 0 {
		g.KVHeld = k.used
		g.KVFree = k.e.KVBlocks - k.used
		g.KVUtil = float64(k.used) / float64(k.e.KVBlocks)
		total := k.utilInt + float64(k.used)*(tMS-k.utilLast)
		g.KVBlockMS = total - k.intReported
		k.intReported = total
	}
	return g
}
