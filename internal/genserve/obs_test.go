package genserve

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/exitsim"
	"repro/internal/obs"
	"repro/internal/workload"
)

// tracedKVEngine is the reconciliation workhorse: a pool two growing
// sequences overflow (preemptions), a prefix cache (hits), chunked
// prefill, and all-at-once arrivals (queue waits).
func tracedKVEngine() *Engine {
	e := kvEngine()
	e.KVBlocks = 10
	e.BlockTokens = 8
	e.PrefixHitRatio = 0.4
	e.PrefillChunkTokens = 8
	e.Seed = 7
	return e
}

func countKind(tr *obs.Tracer, k obs.Kind) int {
	n := 0
	for _, e := range tr.Events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// TestGenTraceReconcilesWithStats pins the reconciliation contract: the
// trace's event counts and summed fields equal the run's Stats exactly
// (floats within addition-order epsilon), and the timeline's per-row
// block-ms integrals telescope to KVUtil × KVBlocks × makespan.
func TestGenTraceReconcilesWithStats(t *testing.T) {
	e := tracedKVEngine()
	tr := obs.NewTracer()
	tl := obs.NewTimeline(50, 0)
	e.Trace, e.Timeline = tr, tl
	st := e.Run(kvStream(6, 24, 64), VanillaGen{})
	if st.Preemptions == 0 || st.PrefixHits == 0 || st.QueueMS == 0 {
		t.Fatalf("scenario exercises nothing: preempt=%d hits=%d queue=%v",
			st.Preemptions, st.PrefixHits, st.QueueMS)
	}
	if got := countKind(tr, obs.KindPreempt); got != st.Preemptions {
		t.Fatalf("%d preempt events, Stats.Preemptions = %d", got, st.Preemptions)
	}
	if got := countKind(tr, obs.KindSeqRequeue); got != st.Preemptions {
		t.Fatalf("%d seq_requeue events, want one per preemption (%d)", got, st.Preemptions)
	}
	if got := countKind(tr, obs.KindPrefixHit); got != st.PrefixHits {
		t.Fatalf("%d prefix_hit events, Stats.PrefixHits = %d", got, st.PrefixHits)
	}
	if got := countKind(tr, obs.KindSeqArrive); got != 6 {
		t.Fatalf("%d seq_arrive events, want 6 (one per request, re-queues excluded)", got)
	}
	if got := countKind(tr, obs.KindSeqComplete); got != st.Seqs {
		t.Fatalf("%d seq_complete events, Stats.Seqs = %d", got, st.Seqs)
	}
	// Every admission's queue wait is carried in its kv_admit; the sum
	// is the run's total wait, re-queues included.
	wait := 0.0
	for _, ev := range tr.Events {
		if ev.Kind == obs.KindKVAdmit {
			wait += ev.DurMS
		}
	}
	if want := st.QueueMS * float64(st.Seqs); math.Abs(wait-want) > 1e-6*want {
		t.Fatalf("summed kv_admit waits %v, Stats.QueueMS×Seqs = %v", wait, want)
	}
	// Committed decode flushes account for every generated token exactly
	// once (preempted stretches recompute, but only commits emit).
	decoded := 0
	for _, ev := range tr.Events {
		if ev.Kind == obs.KindDecodeFlush {
			decoded += ev.Val
		}
	}
	if decoded != st.TotalTokens {
		t.Fatalf("decode_flush tokens sum to %d, Stats.TotalTokens = %d", decoded, st.TotalTokens)
	}
	// The timeline's kv_block_ms column telescopes to the exact pool
	// integral: KVUtil × KVBlocks × makespan.
	blockMS, preempts, complete := 0.0, 0, 0
	for _, r := range tl.Rows {
		blockMS += r.Gauges.KVBlockMS
		preempts = r.Gauges.Preempts
		complete += r.WinDone
	}
	want := st.KVUtil * float64(e.KVBlocks) * (lastCompletion(tr) - 0)
	if math.Abs(blockMS-want) > 1e-6*want {
		t.Fatalf("timeline block-ms sums to %v, KVUtil×KVBlocks×span = %v", blockMS, want)
	}
	if preempts != st.Preemptions {
		t.Fatalf("final timeline row carries %d preemptions, Stats = %d", preempts, st.Preemptions)
	}
	if complete != st.Seqs {
		t.Fatalf("timeline windows observed %d completions, Stats.Seqs = %d", complete, st.Seqs)
	}
}

// lastCompletion is the trace's last seq_complete instant — the
// generative makespan's right edge (arrivals here are all at 0).
func lastCompletion(tr *obs.Tracer) float64 {
	last := 0.0
	for _, e := range tr.Events {
		if e.Kind == obs.KindSeqComplete && e.TMS > last {
			last = e.TMS
		}
	}
	return last
}

// TestGenTracingDoesNotChangeResults: the sinks are passive — every
// Stats observable is bit-identical with and without them, on both the
// KV and the classic path.
func TestGenTracingDoesNotChangeResults(t *testing.T) {
	run := func(kv, traced bool) *Stats {
		var e *Engine
		if kv {
			e = tracedKVEngine()
		} else {
			e = kvEngine()
		}
		if traced {
			e.Trace, e.Timeline = obs.NewTracer(), obs.NewTimeline(50, 0)
		}
		return e.Run(kvStream(6, 24, 64), VanillaGen{})
	}
	for _, kv := range []bool{true, false} {
		off, on := run(kv, false), run(kv, true)
		if off.Seqs != on.Seqs || off.TotalTokens != on.TotalTokens ||
			off.TokensPerSec != on.TokensPerSec || off.MeanScore != on.MeanScore ||
			off.KVUtil != on.KVUtil || off.QueueMS != on.QueueMS ||
			off.Preemptions != on.Preemptions || off.PrefixHits != on.PrefixHits {
			t.Fatalf("kv=%v: tracing changed results: off=%+v on=%+v", kv, off, on)
		}
		if off.TotalTokens > 0 && off.TPT().Percentile(99) != on.TPT().Percentile(99) {
			t.Fatalf("kv=%v: tracing moved p99 TPT", kv)
		}
	}
}

// TestGenTraceDeterministicAcrossRuns: two identical traced runs write
// byte-identical JSONL, Chrome, and CSV files.
func TestGenTraceDeterministicAcrossRuns(t *testing.T) {
	run := func() (*obs.Tracer, *obs.Timeline) {
		e := tracedKVEngine()
		e.Trace, e.Timeline = obs.NewTracer(), obs.NewTimeline(50, 0)
		e.Run(kvStream(6, 24, 64), VanillaGen{})
		return e.Trace, e.Timeline
	}
	tr1, tl1 := run()
	tr2, tl2 := run()
	var a, b bytes.Buffer
	if err := tr1.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := tr2.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("repeat traced runs wrote different JSONL")
	}
	a.Reset()
	b.Reset()
	if err := tr1.WriteChrome(&a); err != nil {
		t.Fatal(err)
	}
	if err := tr2.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("repeat traced runs wrote different Chrome traces")
	}
	a.Reset()
	b.Reset()
	if err := tl1.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := tl2.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("repeat traced runs wrote different timeline CSVs")
	}
}

// TestGenClassicPathTraced: with no KV knob the classic slot path still
// traces arrivals, admissions, and completions on per-slot tracks, and
// the timeline uses the generative column set.
func TestGenClassicPathTraced(t *testing.T) {
	e := kvEngine()
	e.MaxConcurrent = 2
	tr := obs.NewTracer()
	tl := obs.NewTimeline(50, 0)
	e.Trace, e.Timeline = tr, tl
	st := e.Run(kvStream(5, 24, 16), VanillaGen{})
	if st.Seqs != 5 {
		t.Fatalf("completed %d sequences, want 5", st.Seqs)
	}
	if got := countKind(tr, obs.KindSeqArrive); got != 5 {
		t.Fatalf("%d seq_arrive events, want 5", got)
	}
	if got := countKind(tr, obs.KindKVAdmit); got != 5 {
		t.Fatalf("%d kv_admit events, want 5", got)
	}
	if got := countKind(tr, obs.KindSeqComplete); got != 5 {
		t.Fatalf("%d seq_complete events, want 5", got)
	}
	for _, ev := range tr.Events {
		if ev.Kind == obs.KindSeqComplete && (ev.Replica < 0 || ev.Replica >= 2) {
			t.Fatalf("seq_complete on slot %d, want [0,2)", ev.Replica)
		}
	}
	if !tl.Gen {
		t.Fatal("classic-path timeline not marked generative")
	}
	done := 0
	for _, r := range tl.Rows {
		done += r.WinDone
	}
	if done != 5 {
		t.Fatalf("timeline windows observed %d completions, want 5", done)
	}
	var csv bytes.Buffer
	if err := tl.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(csv.Bytes(), []byte("t_ms,running,queued,kv_free")) {
		t.Fatalf("classic-path timeline CSV has wrong header: %q", csv.Bytes()[:40])
	}
}

// TestGenZeroSequenceTimelineHeaderOnly: an empty stream must produce a
// header-only CSV and an empty trace without panicking, on both paths.
func TestGenZeroSequenceTimelineHeaderOnly(t *testing.T) {
	empty := workload.GenFromSlice("kv-test", exitsim.KindCNNDailyMail, nil)
	for _, kv := range []bool{true, false} {
		e := kvEngine()
		if kv {
			e.KVBlocks = 10
		}
		tr := obs.NewTracer()
		tl := obs.NewTimeline(50, 0)
		e.Trace, e.Timeline = tr, tl
		st := e.Run(empty, VanillaGen{})
		if st.Seqs != 0 {
			t.Fatalf("kv=%v: empty stream completed %d sequences", kv, st.Seqs)
		}
		if tr.Len() != 0 {
			t.Fatalf("kv=%v: empty stream traced %d events", kv, tr.Len())
		}
		var csv bytes.Buffer
		if err := tl.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		if want := "t_ms,running,queued,kv_free,kv_held,kv_util,kv_block_ms,preempts,win_done,win_p99_ms,win_goodput_qps\n"; csv.String() != want {
			t.Fatalf("kv=%v: zero-sequence CSV = %q, want header only", kv, csv.String())
		}
	}
}
