package genserve

import (
	"testing"

	"repro/internal/exitsim"
	"repro/internal/model"
	"repro/internal/workload"
)

// kvStream builds a small hand-rolled stream: all requests arrive at
// once, so admission order is decided purely by the KV runtime.
func kvStream(n, promptLen, genLen int) *workload.GenStream {
	reqs := make([]workload.GenRequest, n)
	for i := range reqs {
		reqs[i] = workload.GenRequest{
			ID: i, ArrivalMS: 0, PromptLen: promptLen, GenLen: genLen,
			SeqSeed: uint64(1000 + i), BaseDifficulty: 0.3,
		}
	}
	return workload.GenFromSlice("kv-test", exitsim.KindCNNDailyMail, reqs)
}

func kvEngine() *Engine {
	m := model.T5Large()
	return NewEngine(m, exitsim.ProfileFor(m, exitsim.KindCNNDailyMail))
}

// TestKVPoolExhaustionBlocksAdmission: with slots for everyone but a
// pool that holds only one sequence's working set, admissions must
// serialize — every later sequence starts only after the previous one
// completes, never concurrently.
func TestKVPoolExhaustionBlocksAdmission(t *testing.T) {
	e := kvEngine()
	e.KVBlocks = 6
	e.BlockTokens = 16 // one 64-token prompt + 16 gen = 5 blocks; two can't fit
	var seqs []SeqResult
	e.OnSeq = func(sr SeqResult) { seqs = append(seqs, sr) }
	st := e.Run(kvStream(4, 64, 16), VanillaGen{})
	if st.Seqs != 4 || len(seqs) != 4 {
		t.Fatalf("completed %d/%d sequences, want 4", st.Seqs, len(seqs))
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i].StartMS < seqs[i-1].DoneMS {
			t.Fatalf("seq %d started at %v before seq %d finished at %v — pool did not block admission",
				seqs[i].Request.ID, seqs[i].StartMS, seqs[i-1].Request.ID, seqs[i-1].DoneMS)
		}
	}
	if st.QueueMS <= 0 {
		t.Fatalf("mean queue wait %v, want > 0 under an exhausted pool", st.QueueMS)
	}
	if st.KVUtil <= 0 || st.KVUtil > 1 {
		t.Fatalf("kv utilization %v out of (0, 1]", st.KVUtil)
	}
}

// TestKVUnboundedPoolAdmitsFreely: the same stream with no pool starts
// every sequence immediately (slots permitting) with zero queue wait.
func TestKVUnboundedPoolAdmitsFreely(t *testing.T) {
	e := kvEngine()
	e.PrefillChunkTokens = 32 // any KV knob routes through the KV runtime
	var seqs []SeqResult
	e.OnSeq = func(sr SeqResult) { seqs = append(seqs, sr) }
	st := e.Run(kvStream(4, 64, 16), VanillaGen{})
	if st.QueueMS != 0 {
		t.Fatalf("mean queue wait %v, want 0 with slots and no pool", st.QueueMS)
	}
	for _, sr := range seqs {
		if sr.StartMS != 0 {
			t.Fatalf("seq %d started at %v, want 0", sr.Request.ID, sr.StartMS)
		}
	}
	if st.KVUtil != 0 || st.Preemptions != 0 {
		t.Fatalf("unbounded pool reported util %v, %d preemptions", st.KVUtil, st.Preemptions)
	}
}

// TestKVPreemptionDeterministicExactlyOnce: a pool two growing
// sequences overflow must preempt, the victim must be the youngest,
// every sequence still completes exactly once, and the whole run must
// be identical when repeated.
func TestKVPreemptionDeterministicExactlyOnce(t *testing.T) {
	run := func() (*Stats, []SeqResult) {
		e := kvEngine()
		e.KVBlocks = 10
		e.BlockTokens = 8
		// Two sequences fit at admission (prompt 24 + first token = 4
		// blocks each) but each grows to ⌈(24+64)/8⌉ = 11 blocks, so the
		// pool must preempt as they decode.
		var seqs []SeqResult
		e.OnSeq = func(sr SeqResult) { seqs = append(seqs, sr) }
		st := e.Run(kvStream(3, 24, 64), VanillaGen{})
		return st, seqs
	}
	st1, seqs1 := run()
	if st1.Preemptions == 0 {
		t.Fatal("overflowing pool recorded zero preemptions")
	}
	if st1.Seqs != 3 || len(seqs1) != 3 {
		t.Fatalf("completed %d sequences (%d observed), want 3 exactly once each", st1.Seqs, len(seqs1))
	}
	seen := map[int]int{}
	for _, sr := range seqs1 {
		seen[sr.Request.ID]++
		if len(sr.Tokens) != 64 {
			t.Fatalf("seq %d delivered %d tokens, want 64 — preemption lost or duplicated tokens", sr.Request.ID, len(sr.Tokens))
		}
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("seq %d completed %d times", id, n)
		}
	}
	if st1.TotalTokens != 3*64 {
		t.Fatalf("total tokens %d, want %d — tokens must be recorded exactly once", st1.TotalTokens, 3*64)
	}
	st2, seqs2 := run()
	if st1.Preemptions != st2.Preemptions || st1.QueueMS != st2.QueueMS || st1.KVUtil != st2.KVUtil ||
		st1.TokensPerSec != st2.TokensPerSec {
		t.Fatalf("repeat run diverged: preempt %d/%d queue %v/%v util %v/%v tok/s %v/%v",
			st1.Preemptions, st2.Preemptions, st1.QueueMS, st2.QueueMS,
			st1.KVUtil, st2.KVUtil, st1.TokensPerSec, st2.TokensPerSec)
	}
	for i := range seqs1 {
		if seqs1[i].Request.ID != seqs2[i].Request.ID || seqs1[i].DoneMS != seqs2[i].DoneMS {
			t.Fatalf("repeat run completion %d diverged: %d@%v vs %d@%v", i,
				seqs1[i].Request.ID, seqs1[i].DoneMS, seqs2[i].Request.ID, seqs2[i].DoneMS)
		}
	}
}

// TestKVPrefixDrawsOnlyFromLabeledStream: with PrefixHitRatio = 0 the
// gen.prefix stream is never consulted, so the engine seed cannot
// influence anything; with a ratio set, the seed changes which
// sequences hit but never the decoded tokens (decisions derive from the
// workload and admission order, which stays FIFO either way).
func TestKVPrefixDrawsOnlyFromLabeledStream(t *testing.T) {
	run := func(seed uint64, ratio float64) *Stats {
		e := kvEngine()
		e.KVBlocks = 256
		e.Seed = seed
		e.PrefixHitRatio = ratio
		return e.Run(kvStream(8, 64, 32), VanillaGen{})
	}
	a, b := run(1, 0), run(2, 0)
	if a.PrefixHits != 0 || b.PrefixHits != 0 {
		t.Fatalf("ratio 0 drew prefix hits: %d/%d", a.PrefixHits, b.PrefixHits)
	}
	if a.TokensPerSec != b.TokensPerSec || a.QueueMS != b.QueueMS || a.KVUtil != b.KVUtil {
		t.Fatalf("ratio-0 runs with different seeds diverged: tok/s %v/%v queue %v/%v util %v/%v",
			a.TokensPerSec, b.TokensPerSec, a.QueueMS, b.QueueMS, a.KVUtil, b.KVUtil)
	}
	c, d := run(1, 0.5), run(2, 0.5)
	if c.TotalTokens != d.TotalTokens || c.MeanMatchRate != d.MeanMatchRate {
		t.Fatalf("prefix draws leaked into token decisions: tokens %d/%d match %v/%v",
			c.TotalTokens, d.TotalTokens, c.MeanMatchRate, d.MeanMatchRate)
	}
	if c.PrefixHits == d.PrefixHits && c.TokensPerSec == d.TokensPerSec {
		t.Fatal("different seeds realized identical prefix-cache fates (stream not seed-labeled?)")
	}
}

// TestKVOffByteIdenticalToClassicPath: with every KV knob unset, Run
// must take the classic slot path — same stats object semantics, no KV
// counters, regardless of the engine seed (no gen.prefix draws happen).
func TestKVOffByteIdenticalToClassicPath(t *testing.T) {
	m := model.T5Large()
	s := workload.CNNDailyMail(60, 3, 9)
	run := func(seed uint64) *Stats {
		e := NewEngine(m, exitsim.ProfileFor(m, exitsim.KindCNNDailyMail))
		e.Seed = seed
		if e.kvActive() {
			t.Fatal("kvActive with no KV knob set")
		}
		return e.Run(s, NewApparateGen(m, e.Profile, 0.01))
	}
	a, b := run(1), run(99)
	if a.KVUtil != 0 || a.PrefixHits != 0 || a.Preemptions != 0 || a.QueueMS != 0 {
		t.Fatalf("classic path reported KV activity: %+v", a)
	}
	if a.TokensPerSec != b.TokensPerSec || a.MeanMatchRate != b.MeanMatchRate ||
		a.MeanScore != b.MeanScore || a.TotalTokens != b.TotalTokens {
		t.Fatal("engine seed changed a KV-off run — a stray rng draw exists on the classic path")
	}
}

// TestKVChunkedPrefillPreservesFIFO: chunked prefill interleaves
// prompt chunks with other sequences' progress, but admission must stay
// strictly FIFO — arrival order equals start order.
func TestKVChunkedPrefillPreservesFIFO(t *testing.T) {
	e := kvEngine()
	e.MaxConcurrent = 2
	e.PrefillChunkTokens = 64
	reqs := make([]workload.GenRequest, 6)
	for i := range reqs {
		// Staggered arrivals with alternating long/short prompts: a
		// non-FIFO admission would start a short-prompt latecomer first.
		promptLen := 512
		if i%2 == 1 {
			promptLen = 64
		}
		reqs[i] = workload.GenRequest{
			ID: i, ArrivalMS: float64(i) * 10, PromptLen: promptLen, GenLen: 8,
			SeqSeed: uint64(2000 + i), BaseDifficulty: 0.3,
		}
	}
	var starts []SeqResult
	e.OnSeq = func(sr SeqResult) { starts = append(starts, sr) }
	e.Run(workload.GenFromSlice("kv-fifo", exitsim.KindCNNDailyMail, reqs), VanillaGen{})
	byID := map[int]float64{}
	for _, sr := range starts {
		byID[sr.Request.ID] = sr.StartMS
	}
	for i := 1; i < len(reqs); i++ {
		if byID[i] < byID[i-1] {
			t.Fatalf("seq %d started at %v before seq %d at %v — chunked prefill broke FIFO admission",
				i, byID[i], i-1, byID[i-1])
		}
	}
	// The long prompt must actually be chunked: sequence 0's prefill
	// spans 512/64 = 8 chunks, so with chunk-sized interleaving its
	// completion lands after sequence 1's despite starting first.
	if len(starts) != 6 {
		t.Fatalf("completed %d sequences, want 6", len(starts))
	}
}

// TestKVRunTokenFreeNoPanic pins the Stats.TPT contract on token-free
// runs (satellite: TotalTokens == 0 early-out): an empty stream and an
// all-zero-GenLen stream both produce TotalTokens 0, and callers must
// check it before querying percentiles — Percentile on the empty
// recorder is pinned as a panic by the metrics package.
func TestKVRunTokenFreeNoPanic(t *testing.T) {
	e := kvEngine()
	empty := workload.GenFromSlice("empty", exitsim.KindCNNDailyMail, nil)
	st := e.Run(empty, VanillaGen{})
	if st.Seqs != 0 || st.TotalTokens != 0 {
		t.Fatalf("empty stream produced %d seqs / %d tokens", st.Seqs, st.TotalTokens)
	}
	st = e.Run(kvStream(3, 64, 0), VanillaGen{})
	if st.Seqs != 3 || st.TotalTokens != 0 {
		t.Fatalf("zero-GenLen stream: %d seqs / %d tokens, want 3 / 0", st.Seqs, st.TotalTokens)
	}
	if st.TPT().Len() != 0 {
		t.Fatalf("token-free run recorded %d TPT samples", st.TPT().Len())
	}
	// The KV runtime handles the same degenerate streams.
	e.KVBlocks = 8
	st = e.Run(kvStream(3, 64, 0), VanillaGen{})
	if st.Seqs != 3 || st.TotalTokens != 0 {
		t.Fatalf("KV zero-GenLen stream: %d seqs / %d tokens, want 3 / 0", st.Seqs, st.TotalTokens)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Percentile on a token-free run did not panic; the TotalTokens guard is load-bearing")
			}
		}()
		st.TPT().Percentile(50)
	}()
}
