// Package genserve simulates generative LLM serving (§3.4, §4.3):
// continuous batching over a fixed pool of decode slots, per-token early
// exits between decoder blocks, and the synchronized parallel-decoding
// mechanism that recovers exit savings despite auto-regressive KV
// dependencies — an exited token's remaining layers run batched alongside
// the next non-exiting token (or a periodic flush), so time-per-token
// (TPT) improves for exiting tokens at a mild penalty for the flusher.
//
// Like the classification simulator, the engine streams — sequences are
// pulled from the workload iterator one at a time and every token's TPT
// is folded into a metrics.Recorder, so a run's memory is bounded by one
// sequence, independent of stream length — and it runs on the shared
// discrete-event core (internal/engine): decode-slot completions are
// events on the same kind of clock that drives the cluster simulator.
package genserve

import (
	"math"

	"repro/internal/engine"
	"repro/internal/exitsim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/workload"
)

// TokenResult records one generated token.
type TokenResult struct {
	// TPTms is the time between this token's emission and the previous
	// one's (time-per-token).
	TPTms float64
	// Exited reports whether the token's result left at a ramp.
	Exited bool
	// Match reports whether the released token equals the original
	// model's token (non-exits always match).
	Match bool
}

// SeqResult is one completed sequence.
type SeqResult struct {
	Request workload.GenRequest
	StartMS float64
	DoneMS  float64
	Tokens  []TokenResult
	// MatchRate is the fraction of released tokens agreeing with the
	// original model — the proxy behind the ROUGE-L / F1 sequence
	// scores.
	MatchRate float64
}

// Stats aggregates a generative run: summaries only, never the
// per-sequence results (hook Engine.OnSeq to tap those).
type Stats struct {
	// TPTRec records every token's time-per-token.
	TPTRec metrics.Recorder
	// Seqs counts completed sequences.
	Seqs int
	// MeanMatchRate averages sequence match rates (1.0 = the original
	// model's output exactly).
	MeanMatchRate float64
	// MeanScore averages the ROUGE-L / F1 proxy across sequences.
	MeanScore float64
	// TotalTokens counts every generated token across sequences. Callers
	// must not query TPT() percentiles when this is zero (empty stream or
	// all-zero GenLen): metrics pins Percentile-on-empty as a panic.
	TotalTokens int
	// TokensPerSec is the delivered token throughput over the makespan
	// (first arrival to last sequence completion).
	TokensPerSec float64

	// KV-block runtime activity; all zero unless a KV knob is set on the
	// Engine (KVBlocks / PrefixHitRatio / PrefillChunkTokens).
	//
	// KVUtil is the time-averaged fraction of the KV pool in use over the
	// makespan (0 when the pool is unbounded). PrefixHits counts
	// sequences whose prompt prefix hit the cache. Preemptions counts
	// preempt-and-requeue events. QueueMS is the mean per-sequence
	// admission-queue wait, including re-queues after preemption.
	KVUtil      float64
	PrefixHits  int
	Preemptions int
	QueueMS     float64
}

// ScoreFromMatchRate maps a token match rate to a sequence-quality score
// in the spirit of ROUGE-L / F1: sequence metrics are concave in token
// agreement (a few divergent tokens barely move the score), which is why
// the paper notes that sequence-level accuracy "grants more flexibility
// for exiting decisions at individual tokens" (§4.3).
func ScoreFromMatchRate(r float64) float64 {
	if r <= 0 {
		return 0
	}
	return math.Sqrt(r)
}

// TokenBudget converts a sequence-score accuracy budget into the
// token-level mismatch budget the adaptation loops enforce. With
// score = sqrt(rate) a score loss of b tolerates a token-rate loss of
// 1-(1-b)^2 ≈ 2b; the budget keeps a safety margin below that bound so
// transients (drift between tuning rounds) stay inside the constraint.
func TokenBudget(seqBudget float64) float64 {
	b := 1.5 * seqBudget
	if b > 1 {
		b = 1
	}
	return b
}

// TPT returns the time-per-token recorder across every token of every
// sequence.
func (s *Stats) TPT() metrics.Recorder { return s.TPTRec }

// Policy decides, per token, whether and where the token exits.
type Policy interface {
	// Decide returns the exit depth fraction for this token's sample and
	// whether the released token matches the oracle; exit=false means a
	// full pass. overheadFrac is the ramp overhead the token pays.
	Decide(s exitsim.Sample) (exit bool, depth, overheadFrac float64, match bool)
	// ObserveFlush tells the policy a parallel-decoding instance ended
	// (feedback boundary, §3.4).
	ObserveFlush()
}

// Engine runs generative serving simulations.
type Engine struct {
	Model   *model.Model
	Profile exitsim.Profile
	// MaxConcurrent is the continuous-batching slot count; arrivals are
	// configured to saturate it (§4.1), so decode steps run at this
	// batch size.
	MaxConcurrent int
	// FlushCount flushes accumulated exited tokens after this many even
	// without a non-exiting token (bounds KV-state lag, §4.4).
	FlushCount int
	// Metrics selects the TPT recorder implementation (exact | sketch).
	Metrics metrics.Mode
	// OnSeq, when non-nil, receives every completed sequence in
	// completion order; the engine itself retains none of them.
	OnSeq func(SeqResult)

	// Trace, when non-nil, receives sequence-lifecycle events
	// (seq_arrive / kv_admit / prefill_chunk / decode_flush / preempt /
	// seq_requeue / seq_complete). Timeline, when non-nil, samples
	// KV-pool and queue gauges on the engine clock's advance hook. Both
	// are passive sinks: nil-guarded emission sites, so leaving them nil
	// is byte- and alloc-identical to an engine without them.
	Trace    *obs.Tracer
	Timeline *obs.Timeline

	// KVBlocks bounds the engine's KV-block pool: a sequence must hold
	// ⌈(prompt+generated)/BlockTokens⌉ blocks to run, admission blocks
	// (FIFO) when the pool is exhausted, and growth past the pool
	// preempts + requeues the youngest running sequence. 0 = unbounded
	// (the pre-KV engine).
	KVBlocks int
	// BlockTokens is the KV-block granularity in tokens; 0 means
	// DefaultBlockTokens. Meaningful only with KVBlocks > 0.
	BlockTokens int
	// PrefixHitRatio is the probability a sequence's prompt prefix is
	// resident in the prefix cache (hit ⇒ prefill skipped and the cached
	// blocks are shared, not charged to the sequence). Draws come only
	// from the dedicated rng.Labeled(Seed, "gen.prefix") stream, so a
	// ratio of 0 performs no draws at all.
	PrefixHitRatio float64
	// PrefillChunkTokens chunks prompts longer than this threshold into
	// chunks of this size, each its own event on the engine clock, so
	// long prefills interleave with decode progress instead of being one
	// opaque lump. 0 = monolithic prefill.
	PrefillChunkTokens int
	// Seed drives engine-internal randomness (the gen.prefix stream).
	Seed uint64
}

// NewEngine returns an engine with the paper's defaults.
func NewEngine(m *model.Model, p exitsim.Profile) *Engine {
	return &Engine{Model: m, Profile: p, MaxConcurrent: 8, FlushCount: 8}
}

// batchFactor is the decode-step slowdown at the saturated batch size.
func (e *Engine) batchFactor() float64 {
	return 1 + e.Model.BatchBeta*float64(e.MaxConcurrent-1)
}

// stepMS is the full decode-step latency at saturation.
func (e *Engine) stepMS() float64 { return e.Model.BaseLatencyMS * e.batchFactor() }

// prefillMS estimates prompt processing time: parallel over prompt
// tokens, far cheaper per token than decoding.
func (e *Engine) prefillMS(promptLen int) float64 {
	return e.Model.BaseLatencyMS * (0.5 + float64(promptLen)/512)
}

// decodeSequence simulates one sequence under the policy, returning the
// per-token results and the total decode duration.
func (e *Engine) decodeSequence(req workload.GenRequest, pol Policy) ([]TokenResult, float64) {
	sampler := workload.NewTokenSampler(req)
	step := e.stepMS()
	tokens := make([]TokenResult, 0, req.GenLen)
	pending := 0 // exited tokens awaiting their remaining layers
	var pendingDepth float64
	total := 0.0
	for i := 0; i < req.GenLen; i++ {
		s := sampler.Next()
		exit, depth, ohFrac, match := pol.Decide(s)
		var tpt float64
		if exit {
			// Result released at the ramp; remaining layers deferred. The
			// eventual catch-up/flush must run every pending token's
			// remaining layers, so its cost is bounded by the
			// deepest-exiting (minimum-depth) member of the batch, not
			// whichever token exited last.
			tpt = depth*step + ohFrac*step
			if pending == 0 || depth < pendingDepth {
				pendingDepth = depth
			}
			pending++
			if pending >= e.FlushCount {
				// Standalone flush: remaining layers for the batch of
				// pending tokens run now, delaying the next token.
				tpt += (1 - pendingDepth) * step * (1 + e.Model.BatchBeta*float64(pending-1)) / float64(pending)
				pending = 0
				pol.ObserveFlush()
			}
		} else {
			// Full pass, catching up the pending tokens' remaining
			// layers batched alongside (mild penalty, §3.4).
			catchup := 0.0
			if pending > 0 {
				catchup = (1 - pendingDepth) * step * e.Model.BatchBeta * float64(pending)
				pending = 0
				pol.ObserveFlush()
			}
			tpt = step + ohFrac*step + catchup
		}
		tokens = append(tokens, TokenResult{TPTms: tpt, Exited: exit, Match: match})
		total += tpt
	}
	if pending > 0 {
		// Trailing pending tokens still owe their remaining layers: a
		// standalone flush runs them batched after the last token, so the
		// sequence occupies its slot (and delays its completion) for that
		// long. No token's TPT moves — every result was already released
		// at its ramp — but the decode duration must include it.
		total += (1 - pendingDepth) * step * (1 + e.Model.BatchBeta*float64(pending-1))
		pol.ObserveFlush()
	}
	return tokens, total
}

// Event classes on the shared engine loop: sequence arrivals rank
// before slot completions at the same instant, so a sequence arriving
// exactly as a slot frees starts in it without waiting.
const (
	classArrival engine.Class = iota
	classSlotFree
)

// genSim runs one generative simulation on the shared discrete-event
// engine: the decode-slot pool is a set of completion events on the
// engine clock (the old standalone slot-completion heap, migrated), and
// sequences are admitted FIFO — one request of lookahead, so memory
// stays bounded by the slot count regardless of stream length.
type genSim struct {
	e    *Engine
	pol  Policy
	loop *engine.Loop
	it   *workload.GenIter

	next workload.GenRequest
	has  bool
	free int // idle decode slots
	// armAt is the earliest pending arrival event (+Inf when none): a
	// slot-free callback must not re-arm an arrival that is already
	// scheduled, or pending events would grow with the stream instead
	// of staying bounded by the slot count.
	armAt float64

	stats        *Stats
	sumRate      float64
	sumScore     float64
	firstArrival float64
	lastDone     float64

	// Observability sinks and the per-slot occupancy table behind them.
	// The table exists only when a sink is attached (slots == nil
	// otherwise), so untraced runs allocate nothing and completion
	// events carry arg 0 exactly as before — arg never affects event
	// ordering, so traced runs stay outcome-identical too.
	tr     *obs.Tracer
	tl     *obs.Timeline
	slots  []genSlot
	snapFn func(float64) obs.Gauges
}

// genSlot is one decode slot's occupant, tracked only under observation.
type genSlot struct {
	req  workload.GenRequest
	at   float64 // admission instant
	busy bool
}

// Engine-event op codes dispatched to genSim.OnEvent.
const (
	opPump     uint8 = iota // an arrival instant: admit what fits
	opSlotFree              // a sequence finished: free its slot, pump
)

// OnEvent dispatches engine events; genSim is its own pre-bound
// handler, so arming an arrival or a slot completion never allocates.
// Under observation the completion arg carries the slot index.
func (g *genSim) OnEvent(now float64, op uint8, arg uint64) {
	if op == opSlotFree {
		g.free++
		if g.slots != nil {
			g.slotDone(now, int(arg))
		}
	}
	g.pump(now)
}

// claimSlot records the sequence in the lowest free slot and emits its
// arrival/admission events. The classic path has no standing admission
// queue — the single pending request admits as soon as a slot frees — so
// seq_arrive and kv_admit emit together at the admission instant, the
// admission's wait carried in kv_admit's DurMS.
func (g *genSim) claimSlot(req workload.GenRequest, now float64) int {
	slot := 0
	for g.slots[slot].busy {
		slot++
	}
	g.slots[slot] = genSlot{req: req, at: now, busy: true}
	if g.tr != nil {
		e := obs.At(now, obs.KindSeqArrive)
		e.Req = req.ID
		e.Val = req.PromptLen
		g.tr.Emit(e)
		e = obs.At(now, obs.KindKVAdmit)
		e.Req = req.ID
		e.Replica = slot
		e.DurMS = now - req.ArrivalMS
		g.tr.Emit(e)
	}
	return slot
}

// slotDone retires the observed slot's occupant: a seq_complete event on
// the slot's track and a timeline window observation.
func (g *genSim) slotDone(now float64, slot int) {
	s := &g.slots[slot]
	s.busy = false
	if g.tr != nil {
		e := obs.At(now, obs.KindSeqComplete)
		e.Req = s.req.ID
		e.Replica = slot
		e.DurMS = now - s.at
		e.LatMS = now - s.req.ArrivalMS
		g.tr.Emit(e)
	}
	if g.tl != nil {
		g.tl.Observe(now-s.req.ArrivalMS, false)
	}
}

// Start schedules the first arrival; genSim is an engine.Process.
func (g *genSim) Start(l *engine.Loop) {
	if g.has {
		g.armAt = g.next.ArrivalMS
		l.Schedule(g.next.ArrivalMS, classArrival, g, opPump, 0)
	}
}

// pump admits the pending sequence whenever a slot is free and its
// arrival has come, then lines up the next arrival event. Admissions are
// strictly FIFO: the next request is not pulled until the current one
// holds a slot, which both preserves arrival-order semantics and keeps
// the lookahead at one request.
func (g *genSim) pump(now float64) {
	if now >= g.armAt {
		g.armAt = math.Inf(1)
	}
	for g.has && g.next.ArrivalMS <= now && g.free > 0 {
		req := g.next
		if r, ok := g.it.Next(); ok {
			g.next = r
		} else {
			g.next, g.has = workload.GenRequest{}, false
		}
		g.admit(req, now)
	}
	if g.has && g.next.ArrivalMS > now && g.next.ArrivalMS < g.armAt {
		g.armAt = g.next.ArrivalMS
		g.loop.Schedule(g.next.ArrivalMS, classArrival, g, opPump, 0)
	}
}

// admit starts one sequence in a free slot at time now and schedules the
// slot's completion on the engine clock.
func (g *genSim) admit(req workload.GenRequest, now float64) {
	if g.stats.Seqs == 0 {
		g.firstArrival = req.ArrivalMS
	}
	g.free--
	var arg uint64
	if g.slots != nil {
		arg = uint64(g.claimSlot(req, now))
	}
	tokens, decodeMS := g.e.decodeSequence(req, g.pol)
	done := now + g.e.prefillMS(req.PromptLen) + decodeMS
	g.loop.Schedule(done, classSlotFree, g, opSlotFree, arg)
	match := 0
	for _, tk := range tokens {
		if tk.Match {
			match++
		}
		g.stats.TPTRec.Add(tk.TPTms)
	}
	rate := 1.0
	if len(tokens) > 0 {
		rate = float64(match) / float64(len(tokens))
	}
	g.sumRate += rate
	g.sumScore += ScoreFromMatchRate(rate)
	g.stats.Seqs++
	g.stats.TotalTokens += len(tokens)
	if done > g.lastDone {
		g.lastDone = done
	}
	if g.e.OnSeq != nil {
		g.e.OnSeq(SeqResult{
			Request: req, StartMS: now, DoneMS: done,
			Tokens: tokens, MatchRate: rate,
		})
	}
}

// Run serves the generative stream with the policy on the shared
// discrete-event engine. A sequence starts at max(its arrival, the
// earliest slot-free time) — when no slot is idle at arrival, the
// admission waits for the next completion event, which is exactly the
// earliest-free-slot rule the standalone heap implemented. When any KV
// knob is set (KVBlocks / PrefixHitRatio / PrefillChunkTokens) the
// KV-block memory runtime takes over; with all of them zero this path
// is byte-identical to the pre-KV engine.
func (e *Engine) Run(stream *workload.GenStream, pol Policy) *Stats {
	if e.kvActive() {
		return e.runKV(stream, pol)
	}
	g := &genSim{
		e:     e,
		pol:   pol,
		loop:  engine.New(),
		it:    stream.Iter(),
		free:  e.MaxConcurrent,
		armAt: math.Inf(1),
		stats: &Stats{TPTRec: metrics.NewRecorder(e.Metrics, 4096)},
	}
	if r, ok := g.it.Next(); ok {
		g.next, g.has = r, true
	}
	if e.Trace != nil || e.Timeline != nil {
		g.tr, g.tl = e.Trace, e.Timeline
		g.slots = make([]genSlot, e.MaxConcurrent)
	}
	if g.tl != nil {
		// Sample from the advance hook, never from tick events on the
		// heap — the clock must not move for the sampler's sake (same
		// rule as the cluster path).
		g.tl.Gen = true
		g.snapFn = func(tMS float64) obs.Gauges {
			queued := 0
			if g.has && g.next.ArrivalMS <= tMS {
				queued = 1
			}
			return obs.Gauges{Running: e.MaxConcurrent - g.free, Queued: queued}
		}
		g.loop.OnAdvance(func(prev, now float64) { g.tl.CatchUp(now, g.snapFn) })
	}
	g.loop.Add(g)
	g.loop.Run()
	if g.tl != nil && g.stats.Seqs > 0 {
		g.tl.Finish(g.loop.Now(), g.snapFn)
	}
	if g.stats.Seqs > 0 {
		g.stats.MeanMatchRate = g.sumRate / float64(g.stats.Seqs)
		g.stats.MeanScore = g.sumScore / float64(g.stats.Seqs)
		if span := g.lastDone - g.firstArrival; span > 0 {
			g.stats.TokensPerSec = float64(g.stats.TotalTokens) / span * 1000
		}
	}
	return g.stats
}
