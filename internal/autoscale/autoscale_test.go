package autoscale

import (
	"testing"
)

func mustParse(t *testing.T, spec string) Config {
	t.Helper()
	c, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	return c
}

func TestParseSpecs(t *testing.T) {
	c := mustParse(t, "1..4")
	if c.Min != 1 || c.Max != 4 {
		t.Fatalf("1..4 parsed to min=%d max=%d", c.Min, c.Max)
	}
	c = mustParse(t, "2..8/window=2000/cool=7000/up=0.9/down=0.3")
	if c.Min != 2 || c.Max != 8 || c.WindowMS != 2000 || c.CooldownMS != 7000 ||
		c.UpLatFrac != 0.9 || c.DownUtil != 0.3 {
		t.Fatalf("override spec parsed to %+v", c)
	}
	for _, bad := range []string{
		"4", "4..1", "0..4", "1..4/window", "1..4/warp=2", "a..b",
		"1..4/up=0.5/downlat=0.6", // down >= up latency fraction
		"1..4/down=1.5",
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) unexpectedly succeeded", bad)
		}
	}
	if c, err := Parse(""); err != nil || c != (Config{}) {
		t.Fatalf("empty spec: got (%+v, %v)", c, err)
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	for _, spec := range []string{"1..4", "2..8/window=2000", "1..3/up=0.9/down=0.3"} {
		c := mustParse(t, spec)
		c2 := mustParse(t, c.String())
		if c != c2 {
			t.Fatalf("%q: round trip %q changed config: %+v vs %+v", spec, c.String(), c, c2)
		}
	}
}

// scalerCfg is a convenient test configuration: 1..4 replicas, 100 ms
// SLO, 1 s windows, 1 s cooldown so consecutive windows can act.
func scalerCfg() Config {
	return Config{Min: 1, Max: 4, SLOms: 100, WindowMS: 1000, CooldownMS: 1000}
}

func TestScalerScalesUpOnLatency(t *testing.T) {
	s := New(scalerCfg())
	hot := Signal{Requests: 50, P99LatMS: 250, Utilization: 1.2}
	for i := 1; i <= 5; i++ {
		n, _ := s.Observe(float64(i)*1000, hot)
		want := 1 + i
		if want > 4 {
			want = 4
		}
		if n != want {
			t.Fatalf("window %d: replicas %d, want %d", i, n, want)
		}
	}
	if s.Ups != 3 {
		t.Fatalf("Ups = %d, want 3 (capped at max)", s.Ups)
	}
}

func TestScalerScalesUpOnBacklog(t *testing.T) {
	s := New(scalerCfg())
	// Latency under the line but a deep queue: backlog wins.
	n, changed := s.Observe(1000, Signal{Requests: 50, P99LatMS: 60, PeakBacklogMS: 500, Utilization: 0.9})
	if !changed || n != 2 {
		t.Fatalf("backlog signal: replicas %d changed=%v, want 2 true", n, changed)
	}
}

func TestScalerScalesDownWhenIdle(t *testing.T) {
	s := New(scalerCfg())
	hot := Signal{Requests: 50, P99LatMS: 250, Utilization: 1.2}
	s.Observe(1000, hot)
	s.Observe(2000, hot) // at 3 replicas
	cold := Signal{Requests: 20, P99LatMS: 40, Utilization: 0.1}
	n, _ := s.Observe(3000, cold)
	if n != 2 {
		t.Fatalf("cold window: replicas %d, want 2", n)
	}
	// A zero-request window also scales down.
	n, _ = s.Observe(4000, Signal{})
	if n != 1 {
		t.Fatalf("idle window: replicas %d, want 1", n)
	}
	// Never below min.
	if n, _ = s.Observe(5000, Signal{}); n != 1 {
		t.Fatalf("below-min scale-down: replicas %d, want 1", n)
	}
	if s.Downs != 2 {
		t.Fatalf("Downs = %d, want 2", s.Downs)
	}
}

func TestScalerCooldown(t *testing.T) {
	cfg := scalerCfg()
	cfg.CooldownMS = 5000
	s := New(cfg)
	hot := Signal{Requests: 50, P99LatMS: 250, Utilization: 1.2}
	if n, _ := s.Observe(1000, hot); n != 2 {
		t.Fatalf("first action blocked: %d", n)
	}
	for _, now := range []float64{2000, 3000, 4000, 5000} {
		if n, changed := s.Observe(now, hot); changed || n != 2 {
			t.Fatalf("cooldown violated at t=%v: replicas %d", now, n)
		}
	}
	if n, changed := s.Observe(6000, hot); !changed || n != 3 {
		t.Fatalf("post-cooldown action missing: replicas %d changed=%v", n, changed)
	}
}

func TestScalerHysteresis(t *testing.T) {
	// A borderline window — neither hot nor cold — must not flap.
	s := New(scalerCfg())
	mid := Signal{Requests: 50, P99LatMS: 80, Utilization: 0.6}
	for i := 1; i <= 10; i++ {
		if _, changed := s.Observe(float64(i)*1000, mid); changed {
			t.Fatalf("borderline window %d triggered a scaling action", i)
		}
	}
}

func TestPlanCursorAndCounts(t *testing.T) {
	p := &Plan{Start: 1, Steps: []Step{
		{AtMS: 1000, Replicas: 2},
		{AtMS: 2000, Replicas: 3},
		{AtMS: 5000, Replicas: 2},
		{AtMS: 9000, Replicas: 1},
	}}
	if p.Peak() != 3 || p.Ups() != 2 || p.Downs() != 2 {
		t.Fatalf("peak/ups/downs = %d/%d/%d, want 3/2/2", p.Peak(), p.Ups(), p.Downs())
	}
	cur := p.Cursor()
	checks := []struct {
		t    float64
		want int
	}{{0, 1}, {999.9, 1}, {1000, 2}, {1500, 2}, {2000, 3}, {4999, 3}, {5000, 2}, {9000, 1}, {20000, 1}}
	for _, c := range checks {
		if got := cur.At(c.t); got != c.want {
			t.Fatalf("cursor At(%v) = %d, want %d", c.t, got, c.want)
		}
		if got := p.At(c.t); got != c.want {
			t.Fatalf("plan At(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestScalerOnDecision(t *testing.T) {
	s := New(scalerCfg())
	type dec struct {
		at       float64
		from, to int
	}
	var decs []dec
	s.OnDecision = func(atMS float64, from, to int) { decs = append(decs, dec{atMS, from, to}) }
	hot := Signal{Requests: 50, P99LatMS: 250, Utilization: 1.2}
	s.Observe(1000, hot)      // 1 -> 2
	s.Observe(2000, hot)      // 2 -> 3
	s.Observe(2500, hot)      // cooldown: no decision, no callback
	s.Observe(3000, Signal{}) // idle: 3 -> 2
	want := []dec{{1000, 1, 2}, {2000, 2, 3}, {3000, 3, 2}}
	if len(decs) != len(want) {
		t.Fatalf("OnDecision fired %d times, want %d: %v", len(decs), len(want), decs)
	}
	for i, w := range want {
		if decs[i] != w {
			t.Fatalf("decision %d = %v, want %v", i, decs[i], w)
		}
	}
}
