// Package autoscale implements a reactive replica autoscaler for the
// cluster simulator: windowed load signals (estimated p99 latency
// versus the SLO, peak queue backlog per replica, capacity utilization)
// drive scale-up/scale-down decisions bounded by min/max replica counts
// and a cooldown between actions. The scaler itself is pure policy — it
// consumes Signals and emits replica counts — so it is deterministic,
// trivially testable, and independent of the serving layer that feeds
// it. The cluster runtime consults the scaler online: window boundaries
// are crossed on the event loop, each window's Signal is computed from
// the live simulated queue state, and every decision takes effect for
// the arrivals that follow. The realized decisions are recorded as a
// Plan — the (time, replicas) step function reported on ClusterStats —
// and because the whole event loop is deterministic, autoscaled cluster
// runs stay byte-identical at any sweep worker count.
package autoscale

import (
	"fmt"
	"strconv"
	"strings"
)

// Config bounds and tunes the reactive scaler; zero thresholds take the
// defaults noted on each field.
type Config struct {
	// Min and Max bound the replica count; runs start at Min.
	Min, Max int
	// SLOms is the latency objective the latency signals compare
	// against. It must be set by the caller (the serving layer knows the
	// model's SLO); Parse leaves it zero.
	SLOms float64
	// WindowMS is the signal window length (default 1000).
	WindowMS float64
	// CooldownMS is the minimum gap between scaling actions (default
	// 3×WindowMS): reacting to every window makes the replica count
	// chase noise, and real autoscalers rate-limit for the same reason.
	CooldownMS float64
	// UpLatFrac scales up when the windowed estimated p99 latency
	// exceeds UpLatFrac×SLOms (default 1.0 — the SLO itself).
	UpLatFrac float64
	// UpBacklogFrac scales up when the window's peak per-replica queue
	// backlog exceeds UpBacklogFrac×SLOms (default 2.0): a backlog worth
	// two SLOs cannot drain without misses even if latency has not
	// crossed the line yet.
	UpBacklogFrac float64
	// DownLatFrac and DownUtil gate scale-down: the windowed p99 must
	// sit below DownLatFrac×SLOms (default 0.75 — the default SLO is 2×
	// the batch-1 service time, so an unqueued window sits near
	// 0.5×SLO and qualifies) AND utilization of the active capacity
	// below DownUtil (default 0.45), so retiring a replica cannot
	// immediately re-trigger scale-up.
	DownLatFrac float64
	DownUtil    float64
}

func (c Config) withDefaults() Config {
	if c.WindowMS == 0 {
		c.WindowMS = 1000
	}
	if c.CooldownMS == 0 {
		c.CooldownMS = 3 * c.WindowMS
	}
	if c.UpLatFrac == 0 {
		c.UpLatFrac = 1.0
	}
	if c.UpBacklogFrac == 0 {
		c.UpBacklogFrac = 2.0
	}
	if c.DownLatFrac == 0 {
		c.DownLatFrac = 0.75
	}
	if c.DownUtil == 0 {
		c.DownUtil = 0.45
	}
	return c
}

// Validate checks the bounds and thresholds.
func (c Config) Validate() error {
	if c.Min < 1 {
		return fmt.Errorf("autoscale: min replicas %d must be >= 1", c.Min)
	}
	if c.Max < c.Min {
		return fmt.Errorf("autoscale: max replicas %d must be >= min %d", c.Max, c.Min)
	}
	c = c.withDefaults()
	if c.WindowMS <= 0 || c.CooldownMS <= 0 {
		return fmt.Errorf("autoscale: window %gms and cooldown %gms must be positive", c.WindowMS, c.CooldownMS)
	}
	if c.UpLatFrac <= 0 || c.DownLatFrac <= 0 || c.DownLatFrac >= c.UpLatFrac {
		return fmt.Errorf("autoscale: need 0 < down=%g < up=%g latency fractions", c.DownLatFrac, c.UpLatFrac)
	}
	if c.DownUtil <= 0 || c.DownUtil >= 1 {
		return fmt.Errorf("autoscale: down-utilization %g must be in (0, 1)", c.DownUtil)
	}
	return nil
}

// String returns the canonical "MIN..MAX[/key=value...]" spec,
// omitting values that equal the defaults.
func (c Config) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d..%d", c.Min, c.Max)
	d := Config{Min: c.Min, Max: c.Max}.withDefaults()
	f := func(key string, v, def float64) {
		if v != 0 && v != def {
			fmt.Fprintf(&b, "/%s=%g", key, v)
		}
	}
	f("window", c.WindowMS, d.WindowMS)
	// Cooldown's default derives from the (possibly overridden) window.
	if c.CooldownMS != 0 && c.CooldownMS != 3*c.withDefaults().WindowMS {
		fmt.Fprintf(&b, "/cool=%g", c.CooldownMS)
	}
	f("up", c.UpLatFrac, d.UpLatFrac)
	f("backlog", c.UpBacklogFrac, d.UpBacklogFrac)
	f("downlat", c.DownLatFrac, d.DownLatFrac)
	f("down", c.DownUtil, d.DownUtil)
	return b.String()
}

// Parse parses an autoscaler spec: "MIN..MAX" optionally followed by
// '/'-separated key=value overrides, e.g.
//
//	1..4
//	1..4/window=2000/cool=6000
//	2..8/up=0.9/down=0.3
//
// Keys: window (ms), cool (ms), up (scale-up p99/SLO fraction), backlog
// (scale-up backlog/SLO fraction), downlat (scale-down p99/SLO
// fraction), down (scale-down utilization). SLOms is left zero for the
// caller to fill. The empty spec returns the zero Config and no error.
func Parse(spec string) (Config, error) {
	var c Config
	if spec == "" {
		return c, nil
	}
	parts := strings.Split(spec, "/")
	lo, hi, ok := strings.Cut(parts[0], "..")
	if !ok {
		return c, fmt.Errorf("autoscale: spec %q must start with MIN..MAX (e.g. 1..4)", spec)
	}
	var err error
	if c.Min, err = strconv.Atoi(lo); err != nil {
		return c, fmt.Errorf("autoscale: min replicas %q: %v", lo, err)
	}
	if c.Max, err = strconv.Atoi(hi); err != nil {
		return c, fmt.Errorf("autoscale: max replicas %q: %v", hi, err)
	}
	for _, p := range parts[1:] {
		key, valS, ok := strings.Cut(p, "=")
		if !ok {
			return c, fmt.Errorf("autoscale: option %q must be key=value", p)
		}
		v, err := strconv.ParseFloat(valS, 64)
		if err != nil {
			return c, fmt.Errorf("autoscale: option %s=%q: %v", key, valS, err)
		}
		switch key {
		case "window":
			c.WindowMS = v
		case "cool":
			c.CooldownMS = v
		case "up":
			c.UpLatFrac = v
		case "backlog":
			c.UpBacklogFrac = v
		case "downlat":
			c.DownLatFrac = v
		case "down":
			c.DownUtil = v
		default:
			return c, fmt.Errorf("autoscale: unknown option %q (want window | cool | up | backlog | downlat | down)", key)
		}
	}
	if err := c.Validate(); err != nil {
		return c, err
	}
	return c, nil
}

// Signal is one window's aggregated load observation.
type Signal struct {
	// Requests is the number of arrivals in the window.
	Requests int
	// P99LatMS is the windowed estimated p99 request latency.
	P99LatMS float64
	// PeakBacklogMS is the window's peak per-replica queue backlog in
	// milliseconds of estimated work.
	PeakBacklogMS float64
	// Utilization is demanded service time over active capacity
	// (replicas × window length); may exceed 1 when overloaded.
	Utilization float64
}

// Scaler turns windowed Signals into replica counts. It is pure state
// machine — no clock, no randomness — so identical signal sequences
// always yield identical decisions.
type Scaler struct {
	cfg      Config
	replicas int
	lastAct  float64
	acted    bool

	// Ups and Downs count committed scaling actions.
	Ups, Downs int

	// OnDecision, when non-nil, is invoked after each committed scaling
	// action with the decision time and the replica counts before and
	// after. It is observation only — the decision is already made when
	// it fires — so wiring it cannot change scaler behavior.
	OnDecision func(atMS float64, from, to int)
}

// New returns a scaler starting at cfg.Min replicas. It panics on an
// invalid config — scaler construction is experiment setup, not a
// runtime condition.
func New(cfg Config) *Scaler {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Scaler{cfg: cfg.withDefaults(), replicas: cfg.Min}
}

// Config returns the scaler's effective (default-filled) configuration.
func (s *Scaler) Config() Config { return s.cfg }

// Replicas returns the current replica count.
func (s *Scaler) Replicas() int { return s.replicas }

// Observe ingests one window's signal at nowMS (the window's end) and
// returns the new replica count and whether it changed. Scaling moves
// one replica at a time — the reactive policy of self-stabilizing
// elastic frameworks — and honors the cooldown between actions.
func (s *Scaler) Observe(nowMS float64, sig Signal) (int, bool) {
	if s.acted && nowMS-s.lastAct < s.cfg.CooldownMS {
		return s.replicas, false
	}
	prev := s.replicas
	slo := s.cfg.SLOms
	switch {
	case s.replicas < s.cfg.Max &&
		(sig.P99LatMS > s.cfg.UpLatFrac*slo || sig.PeakBacklogMS > s.cfg.UpBacklogFrac*slo):
		s.replicas++
		s.Ups++
	case s.replicas > s.cfg.Min && sig.Requests > 0 &&
		sig.P99LatMS < s.cfg.DownLatFrac*slo && sig.Utilization < s.cfg.DownUtil:
		s.replicas--
		s.Downs++
	case s.replicas > s.cfg.Min && sig.Requests == 0:
		// An idle window is the strongest scale-down evidence there is.
		s.replicas--
		s.Downs++
	default:
		return s.replicas, false
	}
	s.lastAct, s.acted = nowMS, true
	if s.OnDecision != nil {
		s.OnDecision(nowMS, prev, s.replicas)
	}
	return s.replicas, true
}

// Step is one replica-count change: from AtMS on, Replicas are active.
type Step struct {
	AtMS     float64 `json:"at_ms"`
	Replicas int     `json:"replicas"`
}

// Plan is a realized scaling timeline: the Start count from time zero,
// then the committed steps in increasing time order. The cluster
// runtime builds it online as decisions commit and reports it on
// ClusterStats; it costs O(# scale events) memory and replays
// monotonically via a Cursor.
type Plan struct {
	Start int    `json:"start"`
	Steps []Step `json:"steps,omitempty"`
}

// At returns the active replica count at time tMS (linear scan — use a
// Cursor for monotone sweeps).
func (p *Plan) At(tMS float64) int {
	n := p.Start
	for _, s := range p.Steps {
		if s.AtMS > tMS {
			break
		}
		n = s.Replicas
	}
	return n
}

// Peak returns the maximum replica count the plan ever activates.
func (p *Plan) Peak() int {
	peak := p.Start
	for _, s := range p.Steps {
		if s.Replicas > peak {
			peak = s.Replicas
		}
	}
	return peak
}

// Ups and Downs count the plan's scale-up and scale-down steps.
func (p *Plan) Ups() int {
	ups, cur := 0, p.Start
	for _, s := range p.Steps {
		if s.Replicas > cur {
			ups++
		}
		cur = s.Replicas
	}
	return ups
}

// Downs counts the plan's scale-down steps.
func (p *Plan) Downs() int {
	downs, cur := 0, p.Start
	for _, s := range p.Steps {
		if s.Replicas < cur {
			downs++
		}
		cur = s.Replicas
	}
	return downs
}

// Cursor walks a plan under non-decreasing time queries in O(1)
// amortized per query — the tool for analyses that sweep a realized
// plan against a timeline.
type Cursor struct {
	plan *Plan
	i    int
	cur  int
}

// Cursor returns a fresh cursor positioned at time zero.
func (p *Plan) Cursor() *Cursor {
	return &Cursor{plan: p, cur: p.Start}
}

// At returns the active replica count at tMS; queries must not go
// backward in time.
func (c *Cursor) At(tMS float64) int {
	for c.i < len(c.plan.Steps) && c.plan.Steps[c.i].AtMS <= tMS {
		c.cur = c.plan.Steps[c.i].Replicas
		c.i++
	}
	return c.cur
}
