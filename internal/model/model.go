package model

import (
	"fmt"
	"sort"
)

// Family identifies a model architecture family. Placement policies and
// the exit simulator key behavior off the family (e.g., CV latency is
// front-loaded while transformer latency is even across blocks, §3.3).
type Family int

// Model families in the paper's corpus.
const (
	FamilyResNet Family = iota
	FamilyVGG
	FamilyBERT
	FamilyGPT
	FamilyT5
	FamilyLlama
)

var familyNames = map[Family]string{
	FamilyResNet: "resnet",
	FamilyVGG:    "vgg",
	FamilyBERT:   "bert",
	FamilyGPT:    "gpt",
	FamilyT5:     "t5",
	FamilyLlama:  "llama",
}

// String returns the family name.
func (f Family) String() string {
	if s, ok := familyNames[f]; ok {
		return s
	}
	return fmt.Sprintf("Family(%d)", int(f))
}

// IsCV reports whether the family is a vision family.
func (f Family) IsCV() bool { return f == FamilyResNet || f == FamilyVGG }

// Model is a registered inference model: the graph, its latency profile,
// and the metadata Apparate's preparation and runtime phases need.
type Model struct {
	Name   string
	Family Family
	Graph  *Graph
	// Params is the parameter count (documentation/memory accounting).
	Params int64
	// BaseLatencyMS is the batch-size-1 inference latency: a full forward
	// pass for classification models, or a single decode step for
	// generative models.
	BaseLatencyMS float64
	// BatchBeta controls batch scaling: Latency(b) = Base·(1+Beta·(b−1)).
	// Highly parallel CV models have small Beta; large transformers are
	// closer to linear.
	BatchBeta float64
	// Generative marks auto-regressive decoder models (GPT-2 is used for
	// classification in the paper, so Generative is set only for T5 and
	// Llama).
	Generative bool
	// Quantized marks post-training int8 variants (§4.2).
	Quantized bool
	// NumBlocks is the count of architectural blocks (ResNet blocks,
	// encoder/decoder layers).
	NumBlocks int

	prefix []float64
	cut    []bool
}

// Latency returns the model inference latency in milliseconds for the
// given batch size. batch must be >= 1.
func (m *Model) Latency(batch int) float64 {
	if batch < 1 {
		panic(fmt.Sprintf("model: Latency batch %d < 1", batch))
	}
	return m.BaseLatencyMS * (1 + m.BatchBeta*float64(batch-1))
}

// SLO returns the model's default service-level objective: 2× the bs=1
// latency, floored at 10ms, matching Table 5.
func (m *Model) SLO() float64 {
	slo := 2 * m.BaseLatencyMS
	if slo < 10 {
		slo = 10
	}
	return slo
}

func (m *Model) ensureAnalysis() {
	if m.prefix == nil {
		m.prefix = m.Graph.PrefixFrac()
	}
	if m.cut == nil {
		m.cut = m.Graph.CutVertices()
	}
}

// PrefixFrac returns the fraction of model compute consumed through node
// id, inclusive.
func (m *Model) PrefixFrac(id int) float64 {
	m.ensureAnalysis()
	return m.prefix[id]
}

// PrefixLatency returns the latency in ms from batch start until the
// output of node id is available, for the given batch size.
func (m *Model) PrefixLatency(id, batch int) float64 {
	return m.PrefixFrac(id) * m.Latency(batch)
}

// RampSite is a feasible ramp location: the graph node whose output a
// ramp would consume.
type RampSite struct {
	NodeID int
	// Frac is the fraction of model compute consumed when this site's
	// output is ready (prefix latency fraction).
	Frac float64
	// Block is the architectural block index of the site.
	Block int
	// Quality is the site's intrinsic ramp-capability multiplier
	// (~[0.94, 1.06]): intermediates at some layers summarize the input
	// better than their depth alone suggests, which is what makes ramp
	// *positioning* worth optimizing at runtime (§3.3). Deterministic
	// per (model, node).
	Quality float64
}

// siteQuality derives the deterministic quality multiplier for a node.
func siteQuality(modelName string, nodeID int) float64 {
	h := uint64(nodeID) + 0x9e3779b97f4a7c15
	for _, c := range []byte(modelName) {
		h = (h ^ uint64(c)) * 0x100000001b3
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	u := float64(h>>11) / (1 << 53)
	return 0.94 + 0.12*u
}

// rampFeasibleKinds are operator kinds whose outputs carry the full data
// flow a ramp should see. Pooling/activation outputs are redundant with
// the preceding weight layer; embeddings and heads are excluded.
func rampFeasibleKind(k OpKind) bool {
	switch k {
	case OpConv, OpFC, OpAdd, OpNorm, OpAttention, OpFFN:
		return true
	}
	return false
}

// FeasibleRamps returns the model's candidate ramp sites: cut vertices of
// the graph (so a ramp sees all data flow to that point, Figure 7) with
// weight-carrying kinds, excluding sites so late that exiting there saves
// nothing (prefix fraction > 0.97). For generative models, only decoder
// block boundaries qualify (input tokens must be fully processed, §3.1).
// Sites are returned in increasing depth order.
func (m *Model) FeasibleRamps() []RampSite {
	m.ensureAnalysis()
	var out []RampSite
	for id := range m.Graph.Nodes {
		n := &m.Graph.Nodes[id]
		if !m.cut[id] || !rampFeasibleKind(n.Kind) {
			continue
		}
		frac := m.prefix[id]
		if frac > 0.97 {
			continue
		}
		if m.Generative && n.Kind != OpAdd && n.Kind != OpNorm {
			// Generative ramps sit between transformer blocks only.
			continue
		}
		out = append(out, RampSite{
			NodeID: id, Frac: frac, Block: n.Block,
			Quality: siteQuality(m.Name, id),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Frac < out[j].Frac })
	return out
}

// FeasibleFraction reports the share of graph operators that are feasible
// ramp sites; the paper observes 9.2–68.4% across its corpus.
func (m *Model) FeasibleFraction() float64 {
	return float64(len(m.FeasibleRamps())) / float64(m.Graph.Len())
}

// Validate checks the model's graph and metadata.
func (m *Model) Validate() error {
	if err := m.Graph.Validate(); err != nil {
		return fmt.Errorf("model %s: %w", m.Name, err)
	}
	if m.BaseLatencyMS <= 0 {
		return fmt.Errorf("model %s: non-positive base latency", m.Name)
	}
	if m.BatchBeta < 0 || m.BatchBeta > 1 {
		return fmt.Errorf("model %s: batch beta %v out of [0,1]", m.Name, m.BatchBeta)
	}
	if len(m.FeasibleRamps()) == 0 {
		return fmt.Errorf("model %s: no feasible ramp sites", m.Name)
	}
	return nil
}
