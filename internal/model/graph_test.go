package model

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// chain builds a linear graph of n nodes.
func chain(n int) *Graph {
	g := NewGraph()
	frac := 1.0 / float64(n)
	prev := -1
	for i := 0; i < n; i++ {
		id := g.AddNode("n", OpConv, frac, i)
		if prev >= 0 {
			g.AddEdge(prev, id)
		}
		prev = id
	}
	return g
}

// diamond builds src -> {a, b} -> snk.
func diamond() *Graph {
	g := NewGraph()
	src := g.AddNode("src", OpInput, 0.25, -1)
	a := g.AddNode("a", OpConv, 0.25, 0)
	b := g.AddNode("b", OpConv, 0.25, 0)
	snk := g.AddNode("snk", OpOutput, 0.25, -1)
	g.AddEdge(src, a)
	g.AddEdge(src, b)
	g.AddEdge(a, snk)
	g.AddEdge(b, snk)
	return g
}

func TestChainAllCutVertices(t *testing.T) {
	g := chain(5)
	cv := g.CutVertices()
	for i, c := range cv {
		if !c {
			t.Errorf("chain node %d not a cut vertex", i)
		}
	}
}

func TestDiamondBranchesNotCut(t *testing.T) {
	g := diamond()
	cv := g.CutVertices()
	want := []bool{true, false, false, true}
	for i := range want {
		if cv[i] != want[i] {
			t.Errorf("diamond node %d cut = %v, want %v", i, cv[i], want[i])
		}
	}
}

func TestResidualBlockCutVertices(t *testing.T) {
	// input -> conv1 -> conv2 -> add <- input skip; add -> out.
	// The convs are bypassed by the skip, so only input/add/out are cut.
	g := NewGraph()
	in := g.AddNode("in", OpInput, 0.2, -1)
	c1 := g.AddNode("c1", OpConv, 0.2, 0)
	c2 := g.AddNode("c2", OpConv, 0.2, 0)
	add := g.AddNode("add", OpAdd, 0.2, 0)
	out := g.AddNode("out", OpOutput, 0.2, -1)
	g.AddEdge(in, c1)
	g.AddEdge(c1, c2)
	g.AddEdge(c2, add)
	g.AddEdge(in, add)
	g.AddEdge(add, out)
	cv := g.CutVertices()
	want := []bool{true, false, false, true, true}
	for i := range want {
		if cv[i] != want[i] {
			t.Errorf("node %d cut = %v, want %v", i, cv[i], want[i])
		}
	}
}

func TestTopoOrderValid(t *testing.T) {
	g := diamond()
	order := g.TopoOrder()
	if order == nil {
		t.Fatal("TopoOrder returned nil for a DAG")
	}
	pos := make(map[int]int)
	for i, id := range order {
		pos[id] = i
	}
	for id := range g.Nodes {
		for _, s := range g.Succ(id) {
			if pos[id] >= pos[s] {
				t.Errorf("edge %d->%d violates topo order", id, s)
			}
		}
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	g := NewGraph()
	a := g.AddNode("a", OpConv, 0.5, 0)
	b := g.AddNode("b", OpConv, 0.5, 0)
	g.AddEdge(a, b)
	g.AddEdge(b, a)
	if g.TopoOrder() != nil {
		t.Fatal("TopoOrder did not detect a cycle")
	}
}

func TestValidateRejectsMultipleSinks(t *testing.T) {
	g := NewGraph()
	a := g.AddNode("a", OpInput, 0.4, -1)
	b := g.AddNode("b", OpConv, 0.3, 0)
	c := g.AddNode("c", OpConv, 0.3, 0)
	g.AddEdge(a, b)
	g.AddEdge(a, c)
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted a graph with two sinks")
	}
}

func TestValidateRejectsBadFractions(t *testing.T) {
	g := chain(4) // fractions sum to 1
	g.Nodes[0].LatFrac = 0.9
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted fractions summing to != 1")
	}
}

func TestValidateEmpty(t *testing.T) {
	if err := NewGraph().Validate(); err == nil {
		t.Fatal("Validate accepted an empty graph")
	}
}

func TestPrefixFracChain(t *testing.T) {
	g := chain(4)
	pf := g.PrefixFrac()
	want := []float64{0.25, 0.5, 0.75, 1.0}
	for i := range want {
		if diff := pf[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("prefix[%d] = %v, want %v", i, pf[i], want[i])
		}
	}
}

// countPathsThrough enumerates all source->sink paths in a small DAG and
// reports for each node whether every path includes it — the ground-truth
// definition of the ramp-feasibility condition.
func pathsThroughAll(g *Graph) []bool {
	src, snk := g.Source(), g.Sink()
	onAll := make([]bool, g.Len())
	for i := range onAll {
		onAll[i] = true
	}
	var path []int
	var walk func(n int)
	walk = func(n int) {
		path = append(path, n)
		if n == snk {
			onPath := make([]bool, g.Len())
			for _, p := range path {
				onPath[p] = true
			}
			for i := range onAll {
				if !onPath[i] {
					onAll[i] = false
				}
			}
		} else {
			for _, s := range g.Succ(n) {
				walk(s)
			}
		}
		path = path[:len(path)-1]
	}
	walk(src)
	return onAll
}

// randomLayeredDAG builds a small random single-source single-sink DAG.
func randomLayeredDAG(r *rng.Rand) *Graph {
	g := NewGraph()
	layers := r.Intn(4) + 2
	var prev []int
	src := g.AddNode("src", OpInput, 0, -1)
	prev = []int{src}
	total := 1
	for l := 0; l < layers; l++ {
		width := r.Intn(3) + 1
		var cur []int
		for w := 0; w < width; w++ {
			id := g.AddNode("n", OpConv, 0, l)
			// Connect from at least one previous-layer node.
			from := prev[r.Intn(len(prev))]
			g.AddEdge(from, id)
			// Possibly extra in-edges.
			for _, p := range prev {
				if p != from && r.Bool(0.3) {
					g.AddEdge(p, id)
				}
			}
			cur = append(cur, id)
			total++
		}
		prev = cur
	}
	snk := g.AddNode("snk", OpOutput, 0, -1)
	for _, p := range prev {
		g.AddEdge(p, snk)
	}
	total++
	// Even fractions.
	frac := 1.0 / float64(total)
	for i := range g.Nodes {
		g.Nodes[i].LatFrac = frac
	}
	return g
}

func TestCutVerticesMatchPathEnumeration(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		g := randomLayeredDAG(r)
		// Some random DAGs may have dangling nodes unreachable to sink;
		// only test graphs that validate.
		if g.Validate() != nil {
			return true
		}
		got := g.CutVertices()
		want := pathsThroughAll(g)
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgePanicsOutOfRange(t *testing.T) {
	g := chain(2)
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge out of range did not panic")
		}
	}()
	g.AddEdge(0, 99)
}
