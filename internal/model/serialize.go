package model

import (
	"encoding/json"
	"fmt"
	"io"
)

// This file provides a graph-exchange format in the spirit of ONNX/NNEF
// (§2.1: platforms ingest pre-trained models "in graph exchange formats
// like ONNX"): a self-contained JSON document with the operator graph,
// edges, and the latency/metadata profile Apparate's preparation phase
// consumes. Round-tripping a model through Export/Import preserves its
// analysis results (cut vertices, feasible ramps, prefix fractions).

// wireModel is the serialized form.
type wireModel struct {
	FormatVersion int        `json:"format_version"`
	Name          string     `json:"name"`
	Family        string     `json:"family"`
	Params        int64      `json:"params"`
	BaseLatencyMS float64    `json:"base_latency_ms"`
	BatchBeta     float64    `json:"batch_beta"`
	Generative    bool       `json:"generative"`
	Quantized     bool       `json:"quantized"`
	NumBlocks     int        `json:"num_blocks"`
	Nodes         []wireNode `json:"nodes"`
	Edges         [][2]int   `json:"edges"`
}

type wireNode struct {
	Name    string  `json:"name"`
	Kind    string  `json:"kind"`
	LatFrac float64 `json:"lat_frac"`
	Block   int     `json:"block"`
}

const formatVersion = 1

var kindByName = func() map[string]OpKind {
	m := make(map[string]OpKind, len(opNames))
	for k, n := range opNames {
		m[n] = k
	}
	return m
}()

var familyByName = func() map[string]Family {
	m := make(map[string]Family, len(familyNames))
	for f, n := range familyNames {
		m[n] = f
	}
	return m
}()

// Export writes the model to w in the exchange format.
func Export(m *Model, w io.Writer) error {
	wm := wireModel{
		FormatVersion: formatVersion,
		Name:          m.Name,
		Family:        m.Family.String(),
		Params:        m.Params,
		BaseLatencyMS: m.BaseLatencyMS,
		BatchBeta:     m.BatchBeta,
		Generative:    m.Generative,
		Quantized:     m.Quantized,
		NumBlocks:     m.NumBlocks,
	}
	for _, n := range m.Graph.Nodes {
		wm.Nodes = append(wm.Nodes, wireNode{
			Name: n.Name, Kind: n.Kind.String(), LatFrac: n.LatFrac, Block: n.Block,
		})
	}
	for id := range m.Graph.Nodes {
		for _, s := range m.Graph.Succ(id) {
			wm.Edges = append(wm.Edges, [2]int{id, s})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(wm)
}

// Import reads a model from the exchange format and validates it.
func Import(r io.Reader) (*Model, error) {
	var wm wireModel
	if err := json.NewDecoder(r).Decode(&wm); err != nil {
		return nil, fmt.Errorf("model: decoding exchange document: %w", err)
	}
	if wm.FormatVersion != formatVersion {
		return nil, fmt.Errorf("model: unsupported format version %d (want %d)",
			wm.FormatVersion, formatVersion)
	}
	fam, ok := familyByName[wm.Family]
	if !ok {
		return nil, fmt.Errorf("model: unknown family %q", wm.Family)
	}
	g := NewGraph()
	for _, n := range wm.Nodes {
		kind, ok := kindByName[n.Kind]
		if !ok {
			return nil, fmt.Errorf("model: unknown operator kind %q", n.Kind)
		}
		g.AddNode(n.Name, kind, n.LatFrac, n.Block)
	}
	for _, e := range wm.Edges {
		if e[0] < 0 || e[0] >= g.Len() || e[1] < 0 || e[1] >= g.Len() {
			return nil, fmt.Errorf("model: edge %v out of range", e)
		}
		g.AddEdge(e[0], e[1])
	}
	m := &Model{
		Name:          wm.Name,
		Family:        fam,
		Graph:         g,
		Params:        wm.Params,
		BaseLatencyMS: wm.BaseLatencyMS,
		BatchBeta:     wm.BatchBeta,
		Generative:    wm.Generative,
		Quantized:     wm.Quantized,
		NumBlocks:     wm.NumBlocks,
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("model: imported model invalid: %w", err)
	}
	return m, nil
}
