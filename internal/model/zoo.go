package model

import (
	"fmt"
	"math"
)

// This file is the model zoo: builders for every model in the paper's
// corpus (§4.1). Graph shapes follow the published architectures; latency
// profiles are calibrated so that batch-size-1 latencies match the
// paper's Table 5 and batch scaling matches the serving curves in
// Figure 1. Generative models use per-decode-step latency.

// blockWeights returns n weights summing to 1 with exponential
// front-loading controlled by decay (0 = uniform). CV models spend their
// latency early (large spatial dimensions), transformers evenly (§3.3).
func blockWeights(n int, decay float64) []float64 {
	if n <= 0 {
		panic("model: blockWeights with n <= 0")
	}
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		x := 0.0
		if n > 1 {
			x = float64(i) / float64(n-1)
		}
		w[i] = math.Exp(-decay * x)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// buildResNet constructs a residual CV model: stem, a chain of residual
// blocks (convs bypassed by a skip edge, merged by Add), and a pool+FC
// head. Only the block-boundary Adds are cut vertices, reproducing
// Figure 7(a): ramps between blocks, never inside.
func buildResNet(name string, blocks, convsPerBlock int, params int64, baseLat, beta float64) *Model {
	g := NewGraph()
	const stemFrac, headFrac = 0.05, 0.03
	bodyFrac := 1 - stemFrac - headFrac
	w := blockWeights(blocks, 1.2)

	in := g.AddNode("input", OpInput, 0, -1)
	stemConv := g.AddNode("stem.conv", OpConv, stemFrac*0.8, -1)
	stemPool := g.AddNode("stem.pool", OpPool, stemFrac*0.2, -1)
	g.AddEdge(in, stemConv)
	g.AddEdge(stemConv, stemPool)

	prev := stemPool
	for b := 0; b < blocks; b++ {
		bw := bodyFrac * w[b]
		convFrac := bw * 0.96 / float64(convsPerBlock)
		first := prev
		cur := prev
		for c := 0; c < convsPerBlock; c++ {
			conv := g.AddNode(fmt.Sprintf("block%d.conv%d", b, c), OpConv, convFrac, b)
			g.AddEdge(cur, conv)
			cur = conv
		}
		add := g.AddNode(fmt.Sprintf("block%d.add", b), OpAdd, bw*0.04, b)
		g.AddEdge(cur, add)
		g.AddEdge(first, add) // residual skip
		prev = add
	}

	pool := g.AddNode("head.pool", OpPool, headFrac*0.3, -1)
	fc := g.AddNode("head.fc", OpFC, headFrac*0.7, -1)
	out := g.AddNode("output", OpOutput, 0, -1)
	g.AddEdge(prev, pool)
	g.AddEdge(pool, fc)
	g.AddEdge(fc, out)

	return &Model{
		Name: name, Family: FamilyResNet, Graph: g, Params: params,
		BaseLatencyMS: baseLat, BatchBeta: beta, NumBlocks: blocks,
	}
}

// buildVGG constructs a chained (linear) CV model: conv layers with
// interleaved pools, then three FC layers. Every weight layer is a cut
// vertex, reproducing Figure 7(b): ramps feasible at all layers.
func buildVGG(name string, convs int, params int64, baseLat, beta float64) *Model {
	g := NewGraph()
	const convShare, poolShare, fcShare = 0.88, 0.02, 0.10
	w := blockWeights(convs, 1.0)
	in := g.AddNode("input", OpInput, 0, -1)
	prev := in
	// A pool after every second conv, VGG-style.
	pools := convs / 2
	poolFrac := poolShare / float64(pools)
	pi := 0
	for c := 0; c < convs; c++ {
		conv := g.AddNode(fmt.Sprintf("conv%d", c), OpConv, convShare*w[c], c)
		g.AddEdge(prev, conv)
		prev = conv
		if c%2 == 1 && pi < pools {
			pool := g.AddNode(fmt.Sprintf("pool%d", pi), OpPool, poolFrac, c)
			g.AddEdge(prev, pool)
			prev = pool
			pi++
		}
	}
	for f := 0; f < 3; f++ {
		fc := g.AddNode(fmt.Sprintf("fc%d", f), OpFC, fcShare/3, convs+f)
		g.AddEdge(prev, fc)
		prev = fc
	}
	out := g.AddNode("output", OpOutput, 0, -1)
	g.AddEdge(prev, out)
	return &Model{
		Name: name, Family: FamilyVGG, Graph: g, Params: params,
		BaseLatencyMS: baseLat, BatchBeta: beta, NumBlocks: convs + 3,
	}
}

// buildTransformer constructs an encoder- or decoder-stack transformer:
// embeddings, N blocks of (attention, residual Add, Norm, FFN, residual
// Add, Norm), and an FC head. The Add/Norm merge points are cut vertices
// while attention/FFN outputs are not, reproducing Figure 7(c).
func buildTransformer(name string, fam Family, blocks int, params int64, baseLat, beta float64, generative bool) *Model {
	g := NewGraph()
	const embedFrac, headFrac = 0.02, 0.02
	bodyFrac := 1 - embedFrac - headFrac
	w := blockWeights(blocks, 0) // even latency across blocks

	in := g.AddNode("input", OpInput, 0, -1)
	embed := g.AddNode("embed", OpEmbed, embedFrac, -1)
	g.AddEdge(in, embed)
	prev := embed
	for b := 0; b < blocks; b++ {
		bw := bodyFrac * w[b]
		attn := g.AddNode(fmt.Sprintf("block%d.attn", b), OpAttention, bw*0.42, b)
		add1 := g.AddNode(fmt.Sprintf("block%d.add1", b), OpAdd, bw*0.01, b)
		norm1 := g.AddNode(fmt.Sprintf("block%d.norm1", b), OpNorm, bw*0.02, b)
		ffn := g.AddNode(fmt.Sprintf("block%d.ffn", b), OpFFN, bw*0.50, b)
		add2 := g.AddNode(fmt.Sprintf("block%d.add2", b), OpAdd, bw*0.01, b)
		norm2 := g.AddNode(fmt.Sprintf("block%d.norm2", b), OpNorm, bw*0.04, b)
		g.AddEdge(prev, attn)
		g.AddEdge(attn, add1)
		g.AddEdge(prev, add1) // residual skip around attention
		g.AddEdge(add1, norm1)
		g.AddEdge(norm1, ffn)
		g.AddEdge(ffn, add2)
		g.AddEdge(norm1, add2) // residual skip around FFN
		g.AddEdge(add2, norm2)
		prev = norm2
	}
	head := g.AddNode("head.fc", OpFC, headFrac, -1)
	out := g.AddNode("output", OpOutput, 0, -1)
	g.AddEdge(prev, head)
	g.AddEdge(head, out)
	return &Model{
		Name: name, Family: fam, Graph: g, Params: params,
		BaseLatencyMS: baseLat, BatchBeta: beta, Generative: generative,
		NumBlocks: blocks,
	}
}

// Classification CV models (PyTorch Model Zoo pretrained on ImageNet).

// ResNet18 returns the ResNet-18 model (8 basic blocks).
func ResNet18() *Model { return buildResNet("resnet18", 8, 2, 11_700_000, 6.5, 0.06) }

// ResNet50 returns the ResNet-50 model (16 bottleneck blocks).
func ResNet50() *Model { return buildResNet("resnet50", 16, 3, 25_600_000, 16.4, 0.06) }

// ResNet101 returns the ResNet-101 model (33 bottleneck blocks).
func ResNet101() *Model { return buildResNet("resnet101", 33, 3, 44_500_000, 33.3, 0.06) }

// VGG11 returns the VGG-11 model.
func VGG11() *Model { return buildVGG("vgg11", 8, 132_900_000, 3.3, 0.30) }

// VGG13 returns the VGG-13 model.
func VGG13() *Model { return buildVGG("vgg13", 10, 133_000_000, 3.8, 0.30) }

// VGG16 returns the VGG-16 model.
func VGG16() *Model { return buildVGG("vgg16", 13, 138_400_000, 4.5, 0.30) }

// Classification NLP models (HuggingFace pretrained, Yelp fine-tuned).

// Distilbert returns DistilBERT-base (6 encoders, distilled).
func Distilbert() *Model {
	return buildTransformer("distilbert-base", FamilyBERT, 6, 66_000_000, 15.5, 0.20, false)
}

// BERTBase returns BERT-base (12 encoders).
func BERTBase() *Model {
	return buildTransformer("bert-base", FamilyBERT, 12, 110_000_000, 29.4, 0.25, false)
}

// BERTLarge returns BERT-large (24 encoders).
func BERTLarge() *Model {
	return buildTransformer("bert-large", FamilyBERT, 24, 345_000_000, 63.2, 0.30, false)
}

// GPT2Medium returns GPT2-medium used as a decoder-only classifier
// (24 blocks).
func GPT2Medium() *Model {
	return buildTransformer("gpt2-medium", FamilyGPT, 24, 345_000_000, 103.0, 0.58, false)
}

// QuantizedBERTBase returns the post-training int8 BERT-base variant
// (§4.2): ~1.7× faster, same architecture, less overparameterized.
func QuantizedBERTBase() *Model {
	m := buildTransformer("bert-base-int8", FamilyBERT, 12, 110_000_000, 17.3, 0.25, false)
	m.Quantized = true
	return m
}

// QuantizedBERTLarge returns the post-training int8 BERT-large variant.
func QuantizedBERTLarge() *Model {
	m := buildTransformer("bert-large-int8", FamilyBERT, 24, 345_000_000, 37.2, 0.30, false)
	m.Quantized = true
	return m
}

// Generative models; BaseLatencyMS is per decode step.

// T5Large returns the T5-large decoder stack (24 blocks, 770M params).
// The encoder runs once per sequence and is accounted for by the
// generative serving layer as prefill.
func T5Large() *Model {
	return buildTransformer("t5-large", FamilyT5, 24, 770_000_000, 16.0, 0.08, true)
}

// Llama27B returns the Llama-2 7B decoder (32 blocks).
func Llama27B() *Model {
	return buildTransformer("llama2-7b", FamilyLlama, 32, 6_700_000_000, 24.0, 0.08, true)
}

// Llama213B returns the Llama-2 13B decoder (40 blocks).
func Llama213B() *Model {
	return buildTransformer("llama2-13b", FamilyLlama, 40, 13_000_000_000, 38.0, 0.08, true)
}

// All returns a fresh instance of every model in the zoo.
func All() []*Model {
	return []*Model{
		ResNet18(), ResNet50(), ResNet101(),
		VGG11(), VGG13(), VGG16(),
		Distilbert(), BERTBase(), BERTLarge(), GPT2Medium(),
		QuantizedBERTBase(), QuantizedBERTLarge(),
		T5Large(), Llama27B(), Llama213B(),
	}
}

// ClassificationModels returns the 10 classification models of §4.1.
func ClassificationModels() []*Model {
	return []*Model{
		ResNet18(), ResNet50(), ResNet101(),
		VGG11(), VGG13(), VGG16(),
		Distilbert(), BERTBase(), BERTLarge(), GPT2Medium(),
	}
}

// ByName returns a fresh instance of the named model.
func ByName(name string) (*Model, error) {
	for _, m := range All() {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("model: unknown model %q", name)
}
