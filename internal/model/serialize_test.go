package model

import (
	"bytes"
	"strings"
	"testing"
)

func TestExportImportRoundTrip(t *testing.T) {
	for _, m := range All() {
		var buf bytes.Buffer
		if err := Export(m, &buf); err != nil {
			t.Fatalf("%s: export: %v", m.Name, err)
		}
		got, err := Import(&buf)
		if err != nil {
			t.Fatalf("%s: import: %v", m.Name, err)
		}
		if got.Name != m.Name || got.Family != m.Family || got.Params != m.Params ||
			got.BaseLatencyMS != m.BaseLatencyMS || got.BatchBeta != m.BatchBeta ||
			got.Generative != m.Generative || got.Quantized != m.Quantized ||
			got.NumBlocks != m.NumBlocks {
			t.Fatalf("%s: metadata mismatch after round trip", m.Name)
		}
		if got.Graph.Len() != m.Graph.Len() {
			t.Fatalf("%s: node count %d != %d", m.Name, got.Graph.Len(), m.Graph.Len())
		}
		// Analysis results must be preserved: same feasible ramp sites.
		a, b := m.FeasibleRamps(), got.FeasibleRamps()
		if len(a) != len(b) {
			t.Fatalf("%s: feasible ramp count changed: %d -> %d", m.Name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: ramp site %d changed: %+v -> %+v", m.Name, i, a[i], b[i])
			}
		}
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	if _, err := Import(strings.NewReader("not json")); err == nil {
		t.Fatal("accepted non-JSON input")
	}
}

func TestImportRejectsWrongVersion(t *testing.T) {
	doc := `{"format_version": 99, "name": "x", "family": "resnet", "nodes": [], "edges": []}`
	if _, err := Import(strings.NewReader(doc)); err == nil {
		t.Fatal("accepted unknown format version")
	}
}

func TestImportRejectsUnknownKind(t *testing.T) {
	doc := `{"format_version": 1, "name": "x", "family": "resnet", "base_latency_ms": 1,
		"nodes": [{"name":"a","kind":"Teleport","lat_frac":1,"block":0}], "edges": []}`
	if _, err := Import(strings.NewReader(doc)); err == nil {
		t.Fatal("accepted unknown operator kind")
	}
}

func TestImportRejectsUnknownFamily(t *testing.T) {
	doc := `{"format_version": 1, "name": "x", "family": "rnn", "nodes": [], "edges": []}`
	if _, err := Import(strings.NewReader(doc)); err == nil {
		t.Fatal("accepted unknown family")
	}
}

func TestImportRejectsOutOfRangeEdge(t *testing.T) {
	doc := `{"format_version": 1, "name": "x", "family": "vgg", "base_latency_ms": 1,
		"nodes": [{"name":"a","kind":"Conv","lat_frac":1,"block":0}], "edges": [[0, 5]]}`
	if _, err := Import(strings.NewReader(doc)); err == nil {
		t.Fatal("accepted out-of-range edge")
	}
}

func TestImportValidatesGraph(t *testing.T) {
	// Two sources: invalid model graph must be rejected.
	doc := `{"format_version": 1, "name": "x", "family": "vgg", "base_latency_ms": 1,
		"nodes": [
			{"name":"a","kind":"Conv","lat_frac":0.5,"block":0},
			{"name":"b","kind":"Conv","lat_frac":0.5,"block":0}
		], "edges": []}`
	if _, err := Import(strings.NewReader(doc)); err == nil {
		t.Fatal("accepted a disconnected graph")
	}
}
