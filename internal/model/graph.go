// Package model provides the ONNX-like graph intermediate representation
// that Apparate ingests, the cut-vertex analysis that determines feasible
// ramp positions (§3.1, Figure 7), and a model zoo with per-layer latency
// profiles calibrated to the paper's Table 5.
package model

import (
	"fmt"
)

// OpKind classifies a graph operator. The simulator does not execute
// tensor math; kinds exist so placement policies can reason about model
// structure (e.g., "ramps go between encoder blocks, not inside them").
type OpKind int

// Operator kinds covering the model families in the paper's corpus.
const (
	OpInput OpKind = iota
	OpConv
	OpReLU
	OpPool
	OpFC
	OpAdd // residual addition
	OpNorm
	OpEmbed
	OpAttention
	OpFFN
	OpSoftmax
	OpOutput
)

var opNames = map[OpKind]string{
	OpInput:     "Input",
	OpConv:      "Conv",
	OpReLU:      "ReLU",
	OpPool:      "Pool",
	OpFC:        "FC",
	OpAdd:       "Add",
	OpNorm:      "Norm",
	OpEmbed:     "Embed",
	OpAttention: "Attention",
	OpFFN:       "FFN",
	OpSoftmax:   "Softmax",
	OpOutput:    "Output",
}

// String returns the operator name.
func (k OpKind) String() string {
	if s, ok := opNames[k]; ok {
		return s
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Node is one operator in the computation graph.
type Node struct {
	ID   int
	Name string
	Kind OpKind
	// LatFrac is this operator's share of the model's total inference
	// latency at batch size 1. Fractions over the whole graph sum to 1.
	LatFrac float64
	// Block is the index of the architectural block (ResNet block, BERT
	// encoder, decoder layer) this node belongs to, or -1 for stem/head
	// operators outside any block.
	Block int
}

// Graph is a single-source, single-sink directed acyclic graph of
// operators — the shape ONNX exports for the model families used here.
type Graph struct {
	Nodes []Node
	succ  [][]int
	pred  [][]int
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{}
}

// AddNode appends a node and returns its ID.
func (g *Graph) AddNode(name string, kind OpKind, latFrac float64, block int) int {
	id := len(g.Nodes)
	g.Nodes = append(g.Nodes, Node{ID: id, Name: name, Kind: kind, LatFrac: latFrac, Block: block})
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	return id
}

// AddEdge adds a directed edge from -> to. It panics on out-of-range IDs,
// which indicate a builder bug.
func (g *Graph) AddEdge(from, to int) {
	if from < 0 || from >= len(g.Nodes) || to < 0 || to >= len(g.Nodes) {
		panic(fmt.Sprintf("model: edge %d->%d out of range (n=%d)", from, to, len(g.Nodes)))
	}
	g.succ[from] = append(g.succ[from], to)
	g.pred[to] = append(g.pred[to], from)
}

// Succ returns the successor IDs of node id.
func (g *Graph) Succ(id int) []int { return g.succ[id] }

// Pred returns the predecessor IDs of node id.
func (g *Graph) Pred(id int) []int { return g.pred[id] }

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.Nodes) }

// Source returns the unique node without predecessors. Validate must have
// passed for the result to be meaningful.
func (g *Graph) Source() int {
	for i := range g.Nodes {
		if len(g.pred[i]) == 0 {
			return i
		}
	}
	return -1
}

// Sink returns the unique node without successors.
func (g *Graph) Sink() int {
	for i := range g.Nodes {
		if len(g.succ[i]) == 0 {
			return i
		}
	}
	return -1
}

// Validate checks that the graph is a DAG with exactly one source and one
// sink, that every node lies on some source→sink path, and that latency
// fractions sum to ~1.
func (g *Graph) Validate() error {
	if len(g.Nodes) == 0 {
		return fmt.Errorf("model: empty graph")
	}
	sources, sinks := 0, 0
	for i := range g.Nodes {
		if len(g.pred[i]) == 0 {
			sources++
		}
		if len(g.succ[i]) == 0 {
			sinks++
		}
	}
	if sources != 1 {
		return fmt.Errorf("model: graph has %d sources, want 1", sources)
	}
	if sinks != 1 {
		return fmt.Errorf("model: graph has %d sinks, want 1", sinks)
	}
	order := g.TopoOrder()
	if order == nil {
		return fmt.Errorf("model: graph contains a cycle")
	}
	// Reachability from source and to sink.
	fromSrc := g.reachableFrom(g.Source(), nil)
	toSink := g.reachableTo(g.Sink(), nil)
	for i := range g.Nodes {
		if !fromSrc[i] || !toSink[i] {
			return fmt.Errorf("model: node %d (%s) not on a source→sink path", i, g.Nodes[i].Name)
		}
	}
	total := 0.0
	for i := range g.Nodes {
		if g.Nodes[i].LatFrac < 0 {
			return fmt.Errorf("model: node %d has negative latency fraction", i)
		}
		total += g.Nodes[i].LatFrac
	}
	if total < 0.999 || total > 1.001 {
		return fmt.Errorf("model: latency fractions sum to %v, want 1", total)
	}
	return nil
}

// TopoOrder returns a topological ordering of node IDs, or nil if the
// graph has a cycle. Ties are broken by node ID so the order is stable.
func (g *Graph) TopoOrder() []int {
	indeg := make([]int, len(g.Nodes))
	for i := range g.Nodes {
		for range g.pred[i] {
			indeg[i]++
		}
	}
	// Stable Kahn's algorithm: process ready nodes in ID order.
	var order []int
	ready := make([]int, 0, len(g.Nodes))
	for i := range g.Nodes {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	for len(ready) > 0 {
		// Pop the smallest ID for determinism.
		minIdx := 0
		for i := 1; i < len(ready); i++ {
			if ready[i] < ready[minIdx] {
				minIdx = i
			}
		}
		n := ready[minIdx]
		ready = append(ready[:minIdx], ready[minIdx+1:]...)
		order = append(order, n)
		for _, s := range g.succ[n] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(order) != len(g.Nodes) {
		return nil
	}
	return order
}

// reachableFrom marks every node reachable from start following edges
// forward, skipping the node `skip` (pass nil-equivalent -1 via skipID).
func (g *Graph) reachableFrom(start int, skip map[int]bool) []bool {
	seen := make([]bool, len(g.Nodes))
	if skip[start] {
		return seen
	}
	stack := []int{start}
	seen[start] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.succ[n] {
			if !seen[s] && !skip[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

func (g *Graph) reachableTo(end int, skip map[int]bool) []bool {
	seen := make([]bool, len(g.Nodes))
	if skip[end] {
		return seen
	}
	stack := []int{end}
	seen[end] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range g.pred[n] {
			if !seen[p] && !skip[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	return seen
}

// CutVertices reports, for every node, whether all source→sink paths pass
// through it — the paper's feasibility condition for ramp placement: "no
// edge can start before a ramp and re-enter the model's computation after
// the ramp" (§3.1). The source and sink are trivially cut vertices.
//
// Complexity is O(V·(V+E)); model graphs here have at most a few hundred
// nodes, so this is well within budget and kept simple on purpose.
func (g *Graph) CutVertices() []bool {
	out := make([]bool, len(g.Nodes))
	src, snk := g.Source(), g.Sink()
	for v := range g.Nodes {
		if v == src || v == snk {
			out[v] = true
			continue
		}
		reach := g.reachableFrom(src, map[int]bool{v: true})
		out[v] = !reach[snk]
	}
	return out
}

// PrefixFrac returns, for each node, the cumulative latency fraction of
// all operators that execute no later than it, inclusive. For cut
// vertices this is exactly the fraction of model compute a ramp placed
// immediately after the node would have consumed. Nodes are accumulated
// in topological order; for nodes on parallel branches the value is the
// fraction of work topologically ordered at-or-before the node, which is
// an upper bound — ramp placement only queries cut vertices, where the
// value is exact.
func (g *Graph) PrefixFrac() []float64 {
	order := g.TopoOrder()
	out := make([]float64, len(g.Nodes))
	cum := 0.0
	for _, id := range order {
		cum += g.Nodes[id].LatFrac
		out[id] = cum
	}
	return out
}
