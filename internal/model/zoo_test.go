package model

import (
	"math"
	"testing"
)

func TestAllModelsValidate(t *testing.T) {
	for _, m := range All() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestTable5Latencies(t *testing.T) {
	// Table 5 bs=1 latencies and default SLOs.
	cases := []struct {
		name    string
		latency float64
		slo     float64
	}{
		{"resnet18", 6.5, 13.0},
		{"resnet50", 16.4, 32.8},
		{"resnet101", 33.3, 66.6},
		{"vgg11", 3.3, 10.0},
		{"vgg13", 3.8, 10.0},
		{"vgg16", 4.5, 10.0},
		{"distilbert-base", 15.5, 31.0},
		{"bert-base", 29.4, 58.8},
		{"bert-large", 63.2, 126.4},
		{"gpt2-medium", 103.0, 206.0},
	}
	for _, c := range cases {
		m, err := ByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Latency(1); math.Abs(got-c.latency) > 1e-9 {
			t.Errorf("%s Latency(1) = %v, want %v", c.name, got, c.latency)
		}
		if got := m.SLO(); math.Abs(got-c.slo) > 1e-9 {
			t.Errorf("%s SLO = %v, want %v", c.name, got, c.slo)
		}
	}
}

func TestLatencyMonotoneInBatch(t *testing.T) {
	for _, m := range All() {
		prev := 0.0
		for b := 1; b <= 32; b++ {
			l := m.Latency(b)
			if l <= prev {
				t.Errorf("%s: Latency(%d)=%v not increasing", m.Name, b, l)
			}
			prev = l
		}
		// Sub-linear: serving bs=16 must be cheaper than 16 sequential.
		if m.Latency(16) >= 16*m.Latency(1) {
			t.Errorf("%s: batching brings no amortization", m.Name)
		}
	}
}

func TestLatencyPanicsOnZeroBatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Latency(0) did not panic")
		}
	}()
	ResNet50().Latency(0)
}

func TestResNetRampsOnlyAtBlockBoundaries(t *testing.T) {
	m := ResNet50()
	for _, s := range m.FeasibleRamps() {
		n := m.Graph.Nodes[s.NodeID]
		if n.Kind == OpConv && n.Block >= 0 {
			t.Errorf("resnet50 feasible ramp at inner conv node %d", s.NodeID)
		}
	}
	// One Add per block should be feasible (except possibly the last,
	// excluded by the 0.97 depth cutoff).
	if n := len(m.FeasibleRamps()); n < m.NumBlocks-2 {
		t.Errorf("resnet50 has %d feasible ramps, want >= %d", n, m.NumBlocks-2)
	}
}

func TestVGGRampsAtMostLayers(t *testing.T) {
	m := VGG13()
	// Chained design: every conv layer (and early FCs) should be feasible.
	n := len(m.FeasibleRamps())
	if n < 10 {
		t.Errorf("vgg13 has only %d feasible ramps", n)
	}
}

func TestBERTRampsAtMergePoints(t *testing.T) {
	m := BERTBase()
	for _, s := range m.FeasibleRamps() {
		kind := m.Graph.Nodes[s.NodeID].Kind
		if kind == OpAttention || kind == OpFFN {
			t.Errorf("bert-base feasible ramp at non-merge node %d (%v)", s.NodeID, kind)
		}
	}
}

func TestFeasibleFractionInPaperRange(t *testing.T) {
	// Paper: 9.2–68.4% of layers have ramps across the corpus. Allow a
	// modest margin for graph-granularity differences.
	for _, m := range ClassificationModels() {
		f := m.FeasibleFraction()
		if f < 0.05 || f > 0.75 {
			t.Errorf("%s feasible fraction %.3f outside [0.05, 0.75]", m.Name, f)
		}
	}
}

func TestFeasibleRampsSortedAndInRange(t *testing.T) {
	for _, m := range All() {
		sites := m.FeasibleRamps()
		prev := -1.0
		for _, s := range sites {
			if s.Frac <= prev {
				t.Errorf("%s: ramp sites not strictly ordered by depth", m.Name)
			}
			if s.Frac <= 0 || s.Frac > 0.97 {
				t.Errorf("%s: ramp site frac %v out of (0, 0.97]", m.Name, s.Frac)
			}
			prev = s.Frac
		}
	}
}

func TestGenerativeFlag(t *testing.T) {
	for _, m := range All() {
		wantGen := m.Family == FamilyT5 || m.Family == FamilyLlama
		if m.Generative != wantGen {
			t.Errorf("%s Generative = %v, want %v", m.Name, m.Generative, wantGen)
		}
	}
}

func TestQuantizedFasterThanBase(t *testing.T) {
	if QuantizedBERTBase().Latency(1) >= BERTBase().Latency(1) {
		t.Error("int8 bert-base not faster than fp32")
	}
	if QuantizedBERTLarge().Latency(1) >= BERTLarge().Latency(1) {
		t.Error("int8 bert-large not faster than fp32")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("alexnet"); err == nil {
		t.Fatal("ByName accepted an unknown model")
	}
}

func TestPrefixLatencyScalesWithBatch(t *testing.T) {
	m := BERTBase()
	sites := m.FeasibleRamps()
	mid := sites[len(sites)/2]
	l1 := m.PrefixLatency(mid.NodeID, 1)
	l8 := m.PrefixLatency(mid.NodeID, 8)
	if l8 <= l1 {
		t.Error("prefix latency does not grow with batch size")
	}
	ratio := l8 / l1
	want := m.Latency(8) / m.Latency(1)
	if math.Abs(ratio-want) > 1e-9 {
		t.Errorf("prefix latency batch scaling %v != model scaling %v", ratio, want)
	}
}

func TestModelSizesOrdered(t *testing.T) {
	// Larger family members must be slower (paper: wins grow with size).
	order := [][2]string{
		{"resnet18", "resnet50"}, {"resnet50", "resnet101"},
		{"vgg11", "vgg13"}, {"vgg13", "vgg16"},
		{"distilbert-base", "bert-base"}, {"bert-base", "bert-large"},
		{"bert-large", "gpt2-medium"},
		{"t5-large", "llama2-7b"}, {"llama2-7b", "llama2-13b"},
	}
	for _, pair := range order {
		a, _ := ByName(pair[0])
		b, _ := ByName(pair[1])
		if a.Latency(1) >= b.Latency(1) {
			t.Errorf("%s (%.1fms) not faster than %s (%.1fms)",
				pair[0], a.Latency(1), pair[1], b.Latency(1))
		}
	}
}

func TestBlockWeightsProperties(t *testing.T) {
	for _, decay := range []float64{0, 0.5, 1.2} {
		w := blockWeights(10, decay)
		sum := 0.0
		for i, v := range w {
			sum += v
			if v <= 0 {
				t.Errorf("decay %v: weight[%d] = %v <= 0", decay, i, v)
			}
			if i > 0 && decay > 0 && v >= w[i-1] {
				t.Errorf("decay %v: weights not decreasing", decay)
			}
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("decay %v: weights sum to %v", decay, sum)
		}
	}
}
