package experiments

import (
	"fmt"
	"time"

	"repro/internal/controller"
	"repro/internal/exitsim"
	"repro/internal/model"
	"repro/internal/ramp"
)

func init() {
	register("fig8", fig8)
	register("fig9", fig9)
	register("fig10", fig10)
}

// fig8 reproduces Figure 8: many lightweight ramps beat fewer, more
// expensive ramps under the same budget. Each style's budget-maximal
// evenly spaced deployment is tuned with the greedy search on the full
// stream (thresholds "optimally selected" as in §2.2), then the mean
// serving latency is compared.
func fig8() []Table {
	t := Table{
		ID:     "fig8",
		Title:  "More lightweight ramps boost EE savings (equal budget)",
		Header: []string{"domain", "style", "ramps", "median_serve_ms"},
	}
	cases := []struct {
		domain string
		m      *model.Model
		kind   exitsim.Kind
		styles []ramp.Style
	}{
		{"cv", model.ResNet50(), exitsim.KindVideo,
			[]ramp.Style{ramp.StyleDefault, ramp.StyleConvAugmented}},
		{"nlp", model.BERTBase(), exitsim.KindAmazon,
			[]ramp.Style{ramp.StyleDefault, ramp.StyleTwoFC, ramp.StyleDeeBERTPooler}},
	}
	for _, c := range cases {
		var stream = func() []exitsim.Sample {
			if c.domain == "cv" {
				return cvStream(0, 8).SamplePrefix(6000)
			}
			return nlpStream("amazon", c.m, 8).SamplePrefix(6000)
		}()
		prof := exitsim.ProfileFor(c.m, c.kind)
		for _, style := range c.styles {
			cfg := ramp.NewConfig(c.m, prof, 0.02)
			cfg.DeployInitial(style)
			recs := recordsFor(cfg, stream)
			res := controller.GreedySearch(cfg, recs, 0.01, 0.1, 0.01)
			cfg.SetThresholds(res.Thresholds)
			med := medianServeMS(cfg, stream)
			t.Rows = append(t.Rows, []string{
				c.domain, style.Name, fmt.Sprint(len(cfg.Active)), f2(med),
			})
		}
	}
	return []Table{t}
}

func medianServeMS(cfg *ramp.Config, samples []exitsim.Sample) float64 {
	lat := make([]float64, len(samples))
	for i, s := range samples {
		lat[i] = cfg.Evaluate(s, 1).ServeMS
	}
	// Median via sort-free selection is overkill; reuse metrics.
	d := distFrom(lat)
	return d.Median()
}

// fig9 reproduces Figure 9: the 2-ramp threshold landscape with the
// accuracy boundary, and the hill-climbing path that reaches it.
func fig9() []Table {
	m := model.ResNet50()
	prof := exitsim.ProfileFor(m, exitsim.KindVideo)
	cfg := ramp.NewConfig(m, prof, 0.02)
	_ = cfg.Activate(cfg.Sites[2], ramp.StyleDefault)
	_ = cfg.Activate(cfg.Sites[8], ramp.StyleDefault)
	samples := cvStream(0, 9).SamplePrefix(2000)
	recs := recordsFor(cfg, samples)

	grid := Table{
		ID:     "fig9",
		Title:  "2-ramp threshold landscape (latency win %, '-' = >1% accuracy loss)",
		Header: []string{"t_ramp1\\t_ramp2", "0.0", "0.2", "0.4", "0.6", "0.8", "1.0"},
	}
	levels := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
	for _, t1 := range levels {
		row := []string{f1(t1)}
		for _, t2 := range levels {
			ev := controller.EvalThresholds(cfg, recs, []float64{t1, t2})
			if ev.AccLoss > 0.01 {
				row = append(row, "-")
			} else {
				row = append(row, pct(ev.SavingFrac*100))
			}
		}
		grid.Rows = append(grid.Rows, row)
	}

	path := Table{
		ID:     "fig9",
		Title:  "Hill-climbing result on the same window",
		Header: []string{"t_ramp1", "t_ramp2", "latency_win", "acc_loss", "evals"},
	}
	res := controller.GreedySearch(cfg, recs, 0.01, 0.1, 0.01)
	path.Rows = append(path.Rows, []string{
		f2(res.Thresholds[0]), f2(res.Thresholds[1]),
		pct(res.SavingFrac * 100), pct(res.AccLoss * 100), fmt.Sprint(res.Evals),
	})
	return []Table{grid, path}
}

// fig10 reproduces Figure 10: greedy threshold tuning runs orders of
// magnitude faster than grid search while staying within a few percent
// of its latency savings, for 2-4 active ramps.
func fig10() []Table {
	t := Table{
		ID:     "fig10",
		Title:  "Greedy vs grid threshold search: runtime and optimality",
		Header: []string{"ramps", "greedy_ms", "grid_ms", "speedup", "saving_gap"},
	}
	m := model.ResNet50()
	prof := exitsim.ProfileFor(m, exitsim.KindVideo)
	samples := cvStream(0, 10).SamplePrefix(512)
	for _, n := range []int{2, 3, 4} {
		cfg := ramp.NewConfig(m, prof, 0.05)
		for i := 0; i < n; i++ {
			idx := (2*i + 1) * len(cfg.Sites) / (2 * n)
			_ = cfg.Activate(cfg.Sites[idx], ramp.StyleDefault)
		}
		recs := recordsFor(cfg, samples[:128])

		start := time.Now()
		greedy := controller.GreedySearch(cfg, recs, 0.01, 0.1, 0.01)
		greedyMS := float64(time.Since(start).Microseconds()) / 1000

		start = time.Now()
		grid := controller.GridSearch(cfg, recs, 0.01, 0.1)
		gridMS := float64(time.Since(start).Microseconds()) / 1000

		gap := 0.0
		if grid.SavingFrac > 0 {
			gap = (grid.SavingFrac - greedy.SavingFrac) / grid.SavingFrac * 100
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), f3(greedyMS), f2(gridMS),
			fmt.Sprintf("%.0fx", gridMS/greedyMS), pct(gap),
		})
	}
	return []Table{t}
}
