package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig2", "fig4", "fig5", "fig8", "fig9", "fig10",
		"fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
		"table1", "table2", "table3", "table4", "table5",
		"quant", "rampstyle", "ablation",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("fig99"); err == nil {
		t.Fatal("Run accepted an unknown experiment")
	}
}

func TestTableString(t *testing.T) {
	tb := Table{ID: "x", Title: "t", Header: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}}
	s := tb.String()
	if !strings.Contains(s, "== x: t ==") || !strings.Contains(s, "bb") {
		t.Fatalf("bad rendering:\n%s", s)
	}
}

// parsePct extracts the numeric part of a "12.3%" cell.
func parsePct(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("cell %q not a percentage: %v", cell, err)
	}
	return v
}

func parseF(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q not a float: %v", cell, err)
	}
	return v
}

func rowsFor(t *testing.T, id string) []Table {
	t.Helper()
	tabs, err := Run(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) == 0 || len(tabs[0].Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	return tabs
}

func TestFig1Tension(t *testing.T) {
	tabs := rowsFor(t, "fig1")
	// Within each model: latency and throughput both rise with batch.
	var prevModel string
	var prevLat, prevTput float64
	for _, row := range tabs[0].Rows {
		lat, tput := parseF(t, row[2]), parseF(t, row[3])
		if row[0] == prevModel {
			if lat <= prevLat {
				t.Errorf("%s: latency not increasing with batch", row[0])
			}
			if tput <= prevTput {
				t.Errorf("%s: throughput not increasing with batch", row[0])
			}
		}
		prevModel, prevLat, prevTput = row[0], lat, tput
	}
}

func TestTable5MatchesPaper(t *testing.T) {
	tabs := rowsFor(t, "table5")
	if len(tabs[0].Rows) != 10 {
		t.Fatalf("table5 has %d rows, want 10", len(tabs[0].Rows))
	}
	for _, row := range tabs[0].Rows {
		if row[0] == "gpt2-medium" && row[1] != "103.0" {
			t.Errorf("gpt2 latency %s, want 103.0", row[1])
		}
	}
}

func TestFig10GreedyFastAndClose(t *testing.T) {
	tabs := rowsFor(t, "fig10")
	for _, row := range tabs[0].Rows {
		gap := parsePct(t, row[4])
		if gap > 10 {
			t.Errorf("ramps=%s: optimality gap %s too large", row[0], row[4])
		}
		greedy, grid := parseF(t, row[1]), parseF(t, row[2])
		if greedy >= grid {
			t.Errorf("ramps=%s: greedy (%vms) not faster than grid (%vms)", row[0], greedy, grid)
		}
	}
}

func TestFig19MonotoneInConstraint(t *testing.T) {
	tabs := rowsFor(t, "fig19")
	// Within each model, wins must not shrink as the constraint loosens.
	byModel := map[string][]float64{}
	var order []string
	for _, row := range tabs[0].Rows {
		if _, ok := byModel[row[0]]; !ok {
			order = append(order, row[0])
		}
		byModel[row[0]] = append(byModel[row[0]], parsePct(t, row[2]))
	}
	for _, m := range order {
		wins := byModel[m]
		for i := 1; i < len(wins); i++ {
			if wins[i] < wins[i-1]-2 { // small tolerance for run noise
				t.Errorf("%s: win dropped from %v to %v as constraint loosened", m, wins[i-1], wins[i])
			}
		}
	}
}

func TestTable3MonotoneInBudget(t *testing.T) {
	tabs := rowsFor(t, "table3")
	var prevR, prevG float64
	for i, row := range tabs[0].Rows {
		r, g := parsePct(t, row[1]), parsePct(t, row[2])
		if i > 0 {
			// Budgets show diminishing returns; allow small inversions
			// from adaptation variance, never large regressions.
			if r < prevR-5 || g < prevG-5 {
				t.Errorf("budget %s: wins shrank (%v->%v, %v->%v)", row[0], prevR, r, prevG, g)
			}
		}
		prevR, prevG = r, g
	}
}
