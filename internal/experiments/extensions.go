package experiments

import (
	"fmt"

	"repro/internal/controller"
	"repro/internal/exitrule"
	"repro/internal/exitsim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/serving"
	"repro/internal/trace"
	"repro/internal/workload"
)

func init() {
	register("exitrules", exitRules)
	register("cluster", cluster)
}

// exitRules is an extension study for the §5 observation that Apparate
// is agnostic to the exit technique: the same controller manages
// entropy, windowed-entropy, and patience-based exiting. Patience-style
// rules are stricter (exit later), trading wins for robustness; the
// accuracy constraint must hold for all of them.
func exitRules() []Table {
	t := Table{
		ID:     "exitrules",
		Title:  "Exit strategies under Apparate's controller (ResNet-50, video)",
		Header: []string{"rule", "median_win", "accuracy", "exit_rate"},
	}
	m := model.ResNet50()
	stream := cvStream(0, 28)
	opts := serving.Options{Platform: serving.Clockwork, SLOms: m.SLO()}
	v := serving.Run(stream.Iter(), &serving.VanillaHandler{Model: m}, opts)
	for _, rule := range []exitrule.Rule{
		exitrule.Entropy{},
		exitrule.Windowed{K: 2},
		exitrule.Patience{P: 2},
	} {
		fresh, _ := model.ByName(m.Name)
		h := serving.NewApparate(fresh, exitsim.ProfileFor(m, exitsim.KindVideo), 0.02, controller.Config{})
		h.Cfg.Rule = rule
		stats := serving.Run(stream.Iter(), h, opts)
		t.Rows = append(t.Rows, []string{
			rule.Name(),
			pct(metrics.WinPercent(v.Latencies().Median(), stats.Latencies().Median())),
			pct(stats.Accuracy * 100),
			pct(float64(stats.Exits) / float64(stats.Total) * 100),
		})
	}
	return []Table{t}
}

// cluster is an extension study of multi-replica serving: the paper runs
// one Apparate controller per replica; aggregate capacity scales while
// each controller adapts to its traffic slice and the accuracy
// constraint holds cluster-wide.
func cluster() []Table {
	t := Table{
		ID:     "cluster",
		Title:  "Multi-replica serving (BERT-base, Amazon at 2x single-replica rate)",
		Header: []string{"replicas", "dispatch", "drop_rate", "p50_ms", "accuracy"},
	}
	m := model.BERTBase()
	streamHot := workload.Amazon(nlpSamples, trace.TargetQPS(m)*2, 29)
	prof := exitsim.ProfileFor(m, exitsim.KindAmazon)
	opts := serving.Options{Platform: serving.Clockwork, SLOms: m.SLO()}
	for _, replicas := range []int{1, 2, 3} {
		for _, d := range []serving.Dispatch{serving.RoundRobin, serving.LeastLoaded} {
			if replicas == 1 && d == serving.LeastLoaded {
				continue // identical to round-robin with one replica
			}
			cs := serving.RunCluster(streamHot, func(int) serving.Handler {
				fresh, _ := model.ByName(m.Name)
				return serving.NewApparate(fresh, prof, 0.02, controller.Config{})
			}, serving.ClusterOptions{Options: opts, Replicas: replicas, Dispatch: d})
			st := cs.Merged
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(replicas), d.String(),
				f3(st.DropRate), f1(st.Latencies().Median()), pct(st.Accuracy * 100),
			})
		}
	}
	return []Table{t}
}
