package experiments

import (
	"repro/internal/exitsim"
	"repro/internal/genserve"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/workload"
)

func init() {
	register("fig18", fig18)
}

// fig18 reproduces Figure 18: generative TPT distributions — T5-large
// against FREE and optimal on CNN/DailyMail and SQuAD, and Llama-2
// 7B/13B against optimal on SQuAD.
func fig18() []Table {
	t5 := Table{
		ID:     "fig18",
		Title:  "T5-large time-per-token (ms): vanilla vs FREE vs Apparate vs optimal",
		Header: []string{"workload", "system", "p25", "p50", "p95", "seq_score"},
	}
	for _, wl := range []string{"cnn-dailymail", "squad"} {
		m := model.T5Large()
		kind := exitsim.KindCNNDailyMail
		var stream *workload.GenStream
		if wl == "squad" {
			kind = exitsim.KindSQuAD
			stream = workload.SQuAD(genSeqs, 2, 18)
		} else {
			stream = workload.CNNDailyMail(genSeqs, 3, 18)
		}
		prof := exitsim.ProfileFor(m, kind)
		e := genserve.NewEngine(m, prof)
		runs := []struct {
			name string
			pol  genserve.Policy
		}{
			{"vanilla", genserve.VanillaGen{}},
			{"free", genserve.NewFREE(m, prof, stream, 0.01)},
			{"apparate", genserve.NewApparateGen(m, prof, 0.01)},
			{"optimal", genserve.NewOptimalGen(m, prof)},
		}
		for _, r := range runs {
			stats := e.Run(stream, r.pol)
			tpt := stats.TPT()
			t5.Rows = append(t5.Rows, []string{
				wl, r.name,
				f2(tpt.Percentile(25)), f2(tpt.Median()), f2(tpt.Percentile(95)),
				f3(stats.MeanScore),
			})
		}
	}

	llama := Table{
		ID:     "fig18",
		Title:  "Llama-2 time-per-token (ms): vanilla vs Apparate vs optimal (SQuAD)",
		Header: []string{"model", "system", "p25", "p50", "p95", "median_win"},
	}
	for _, m := range []*model.Model{model.Llama27B(), model.Llama213B()} {
		prof := exitsim.ProfileFor(m, exitsim.KindSQuAD)
		stream := workload.SQuAD(genSeqs+200, 2, 18)
		e := genserve.NewEngine(m, prof)
		van := e.Run(stream, genserve.VanillaGen{})
		vMed := van.TPT().Median()
		runs := []struct {
			name string
			pol  genserve.Policy
		}{
			{"vanilla", genserve.VanillaGen{}},
			{"apparate", genserve.NewApparateGen(m, prof, 0.01)},
			{"optimal", genserve.NewOptimalGen(m, prof)},
		}
		for _, r := range runs {
			stats := e.Run(stream, r.pol)
			tpt := stats.TPT()
			llama.Rows = append(llama.Rows, []string{
				m.Name, r.name,
				f2(tpt.Percentile(25)), f2(tpt.Median()), f2(tpt.Percentile(95)),
				pct(metrics.WinPercent(vMed, tpt.Median())),
			})
		}
	}
	return []Table{t5, llama}
}
