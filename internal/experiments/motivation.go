package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/controller"
	"repro/internal/exitsim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/ramp"
	"repro/internal/serving"
	"repro/internal/trace"
	"repro/internal/workload"
)

func init() {
	register("fig1", fig1)
	register("fig2", fig2)
	register("fig4", fig4)
	register("fig5", fig5)
	register("table1", table1)
	register("table5", table5)
}

// fig1 reproduces Figure 1: the throughput-latency tradeoff of batched
// serving, sweeping batch sizes 1–16 for four models.
func fig1() []Table {
	t := Table{
		ID:     "fig1",
		Title:  "Throughput-latency tradeoff in model serving (batch sizes 1-16)",
		Header: []string{"model", "batch", "latency_ms", "throughput_qps"},
	}
	for _, name := range []string{"resnet50", "vgg13", "bert-base", "gpt2-medium"} {
		m, err := model.ByName(name)
		if err != nil {
			panic(err)
		}
		for _, b := range []int{1, 2, 4, 8, 16} {
			lat := m.Latency(b)
			t.Rows = append(t.Rows, []string{name, fmt.Sprint(b), f1(lat), f1(float64(b) / lat * 1000)})
		}
	}
	return []Table{t}
}

// fig2 reproduces Figure 2: tuning TF-Serve's max_batch_size lowers
// latencies but harms throughput (bounded-queue rejections under MAF
// bursts).
func fig2() []Table {
	t := Table{
		ID:     "fig2",
		Title:  "TF-Serve max_batch_size knob: latency vs throughput",
		Header: []string{"model", "max_batch", "avg_batch", "p50_ms", "p95_ms", "drop_rate"},
	}
	cases := []struct {
		m      *model.Model
		stream *workload.Stream
	}{
		{model.ResNet50(), workload.Video(0, cvFrames, 120, 2)}, // upsampled to stress batching
		{model.BERTBase(), nlpStream("amazon", model.BERTBase(), 2)},
	}
	for _, c := range cases {
		qps := trace.TargetQPS(c.m)
		for _, mb := range []int{1, 4, 8, 16} {
			h := &serving.VanillaHandler{Model: c.m}
			stats := serving.Run(c.stream.Iter(), h, serving.Options{
				Platform: serving.TFServe, SLOms: c.m.SLO(),
				MaxBatch: mb, BatchTimeoutMS: 1 + float64(mb-1)*1000/qps,
			})
			lat := stats.Latencies()
			t.Rows = append(t.Rows, []string{
				c.m.Name, fmt.Sprint(mb), f2(stats.AvgBatch),
				f1(lat.Median()), f1(lat.Percentile(95)), f3(stats.DropRate),
			})
		}
	}
	return []Table{t}
}

// fig4 reproduces Figure 4: optimal early exiting lowers latencies
// without changing queuing decisions.
func fig4() []Table {
	t := Table{
		ID:     "fig4",
		Title:  "Optimal EEs vs vanilla serving (no queuing changes)",
		Header: []string{"model", "workload", "variant", "p50_ms", "p95_ms"},
	}
	cases := []struct {
		m      *model.Model
		kind   exitsim.Kind
		stream *workload.Stream
	}{
		{model.ResNet50(), exitsim.KindVideo, cvStream(0, 4)},
		{model.BERTBase(), exitsim.KindAmazon, nlpStream("amazon", model.BERTBase(), 4)},
	}
	for _, c := range cases {
		opts := serving.Options{Platform: serving.Clockwork, SLOms: c.m.SLO()}
		v := serving.Run(c.stream.Iter(), &serving.VanillaHandler{Model: c.m}, opts)
		o := serving.Run(c.stream.Iter(), baselines.NewOptimal(c.m, exitsim.ProfileFor(c.m, c.kind)), opts)
		for _, r := range []struct {
			name  string
			stats *serving.Stats
		}{{"vanilla", v}, {"optimal-ee", o}} {
			lat := r.stats.Latencies()
			t.Rows = append(t.Rows, []string{
				c.m.Name, c.stream.Name, r.name, f1(lat.Median()), f1(lat.Percentile(95)),
			})
		}
	}
	return []Table{t}
}

// fig5 reproduces Figure 5: the optimal EE configuration changes
// frequently across 64-request chunks. Per chunk we grid-tune a 2-ramp
// configuration and report how often the best (ramp, threshold) choice
// changes between consecutive chunks.
func fig5() []Table {
	t := Table{
		ID:     "fig5",
		Title:  "Optimal EE configurations churn across 64-request chunks",
		Header: []string{"model", "workload", "chunks", "config_changes", "change_rate"},
	}
	cases := []struct {
		m      *model.Model
		kind   exitsim.Kind
		stream *workload.Stream
	}{
		{model.ResNet50(), exitsim.KindVideo, cvStream(0, 5)},
		{model.BERTBase(), exitsim.KindAmazon, nlpStream("amazon", model.BERTBase(), 5)},
	}
	for _, c := range cases {
		prof := exitsim.ProfileFor(c.m, c.kind)
		cfg := ramp.NewConfig(c.m, prof, 0.02)
		cfg.DeployInitial(ramp.StyleDefault)
		samples := c.stream.Samples()
		const chunk = 64
		nChunks := len(samples) / chunk
		if nChunks > 120 {
			nChunks = 120 // representative prefix keeps the grid cheap
		}
		changes := 0
		var prev []float64
		for i := 0; i < nChunks; i++ {
			recs := recordsFor(cfg, samples[i*chunk:(i+1)*chunk])
			res := controller.GreedySearch(cfg, recs, 0.01, 0.1, 0.01)
			if prev != nil && !thresholdsEqual(prev, res.Thresholds) {
				changes++
			}
			prev = res.Thresholds
		}
		t.Rows = append(t.Rows, []string{
			c.m.Name, c.stream.Name, fmt.Sprint(nChunks), fmt.Sprint(changes),
			pct(float64(changes) / float64(nChunks-1) * 100),
		})
	}
	return []Table{t}
}

func thresholdsEqual(a, b []float64) bool {
	for i := range a {
		d := a[i] - b[i]
		if d > 0.02 || d < -0.02 {
			return false
		}
	}
	return true
}

// recordsFor evaluates samples through the configuration and converts
// the outcomes into controller records.
func recordsFor(cfg *ramp.Config, samples []exitsim.Sample) []controller.Record {
	recs := make([]controller.Record, len(samples))
	for i, s := range samples {
		out := cfg.Evaluate(s, 1)
		rec := controller.Record{Obs: make(map[int]ramp.Observation, len(out.PerRamp))}
		for j, ob := range out.PerRamp {
			rec.Obs[cfg.Active[j].Site.NodeID] = ob
		}
		recs[i] = rec
	}
	return recs
}

// table1 reproduces Table 1: one-time threshold tuning loses accuracy
// under drift; continual tuning holds the constraint at some latency
// cost.
func table1() []Table {
	t := Table{
		ID:     "table1",
		Title:  "Threshold tuning strategies: avg accuracy (median latency win)",
		Header: []string{"strategy", "cv_accuracy", "cv_win", "nlp_accuracy", "nlp_win"},
	}
	type result struct{ acc, win float64 }
	run := func(m *model.Model, kind exitsim.Kind, stream *workload.Stream, strategy string) result {
		prof := exitsim.ProfileFor(m, kind)
		opts := serving.Options{Platform: serving.Clockwork, SLOms: m.SLO()}
		v := serving.Run(stream.Iter(), &serving.VanillaHandler{Model: m}, opts)
		var stats *serving.Stats
		switch strategy {
		case "initial-only":
			boot := stream.SamplePrefix(stream.Len() / 10)
			h := baselines.StaticEE(m, prof, ramp.StyleDefault, 0.02, baselines.PerRamp, boot, nil, 0.01)
			stats = serving.Run(stream.Iter(), h, opts)
		case "uniform-sample":
			samples := stream.Samples()
			var sampled []exitsim.Sample
			for i := 0; i < len(samples); i += 10 {
				sampled = append(sampled, samples[i])
			}
			h := baselines.StaticEE(m, prof, ramp.StyleDefault, 0.02, baselines.PerRamp, sampled, nil, 0.01)
			stats = serving.Run(stream.Iter(), h, opts)
		case "continual":
			h := serving.NewApparate(m, prof, 0.02, controller.Config{DisableRampAdjust: true})
			stats = serving.Run(stream.Iter(), h, opts)
		}
		return result{
			acc: stats.Accuracy * 100,
			win: metrics.WinPercent(v.Latencies().Median(), stats.Latencies().Median()),
		}
	}
	cvM, nlpM := model.ResNet50(), model.BERTBase()
	cvS := cvStream(1, 6)
	nlpS := nlpStream("amazon", nlpM, 6)
	for _, strat := range []string{"initial-only", "uniform-sample", "continual"} {
		cv := run(cvM, exitsim.KindVideo, cvS, strat)
		nl := run(nlpM, exitsim.KindAmazon, nlpS, strat)
		t.Rows = append(t.Rows, []string{
			strat, pct(cv.acc), pct(cv.win), pct(nl.acc), pct(nl.win),
		})
	}
	return []Table{t}
}

// table5 reproduces Table 5: bs=1 latencies and default SLOs.
func table5() []Table {
	t := Table{
		ID:     "table5",
		Title:  "Per-model bs=1 latency and default SLO (2x, floor 10ms)",
		Header: []string{"model", "latency_bs1_ms", "default_slo_ms"},
	}
	for _, m := range model.ClassificationModels() {
		t.Rows = append(t.Rows, []string{m.Name, f1(m.Latency(1)), f1(m.SLO())})
	}
	return []Table{t}
}
