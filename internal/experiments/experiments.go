// Package experiments regenerates every table and figure of the paper's
// evaluation (§2 and §4). Each experiment is registered under the paper
// artifact's id ("fig12", "table2", ...) and returns one or more Tables
// whose rows mirror what the paper reports. Absolute numbers come from
// the simulator substrate and are not expected to match the authors'
// testbed; the shapes — who wins, by roughly what factor, where
// crossovers fall — are the reproduction target (see EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/controller"
	"repro/internal/exitsim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/serving"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Table is one reproduced artifact (or panel of one).
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Generator produces the tables of one experiment.
type Generator func() []Table

var registry = map[string]Generator{}

func register(id string, g Generator) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = g
}

// IDs lists the registered experiment ids in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id.
func Run(id string) ([]Table, error) {
	g, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %s)",
			id, strings.Join(IDs(), ", "))
	}
	return g(), nil
}

// Formatting helpers.
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// Default experiment scales: large enough for the adaptation loops to
// reach steady state, small enough to regenerate every artifact in
// minutes on a laptop.
const (
	cvFrames   = 12000
	nlpSamples = 20000
	genSeqs    = 500
)

// cvStream builds one of the eight videos at 30fps.
func cvStream(video int, seed uint64) *workload.Stream {
	return workload.Video(video, cvFrames, 30, seed)
}

// cvStreamFor builds a video paired with a model, capping the frame rate
// so the load is sustainable with ramps deployed — the §4.1 pairing
// criterion (vanilla serving must not drop >20%). This only matters for
// resnet101, whose 33.3ms bs=1 latency sits exactly at the 30fps frame
// period; every other CV model keeps the full 30fps.
func cvStreamFor(m *model.Model, video int, seed uint64) *workload.Stream {
	fps := 30.0
	capacity := 1000 / (m.Latency(1) * 1.03) // headroom for the ramp budget
	if fps > 0.97*capacity {
		fps = 0.97 * capacity
	}
	return workload.Video(video, cvFrames, fps, seed)
}

// nlpStream builds a classification NLP workload with MAF arrivals at
// the model's sustainable rate.
func nlpStream(name string, m *model.Model, seed uint64) *workload.Stream {
	s, err := workload.ByName(name, nlpSamples, trace.TargetQPS(m), seed)
	if err != nil {
		panic(err)
	}
	return s
}

// kindFor maps a workload name to its exitsim kind.
func kindFor(name string) exitsim.Kind {
	switch {
	case name == "amazon":
		return exitsim.KindAmazon
	case name == "imdb":
		return exitsim.KindIMDB
	default:
		return exitsim.KindVideo
	}
}

// distFrom wraps a slice in a metrics distribution.
func distFrom(vs []float64) *metrics.Dist {
	d := metrics.NewDist(len(vs))
	d.AddAll(vs)
	return d
}

// servePair runs vanilla and Apparate over the same stream on Clockwork
// with the model's default SLO.
func servePair(m *model.Model, kind exitsim.Kind, stream *workload.Stream,
	budget, acc float64) (vanilla, apparate *serving.Stats) {
	opts := serving.Options{Platform: serving.Clockwork, SLOms: m.SLO()}
	vanilla = serving.Run(stream.Iter(), &serving.VanillaHandler{Model: m}, opts)
	fresh, err := model.ByName(m.Name)
	if err != nil {
		panic(err)
	}
	h := serving.NewApparate(fresh, exitsim.ProfileFor(m, kind), budget, controller.Config{AccConstraint: acc})
	apparate = serving.Run(stream.Iter(), h, opts)
	return vanilla, apparate
}
