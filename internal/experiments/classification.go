package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/controller"
	"repro/internal/exitsim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/ramp"
	"repro/internal/serving"
	"repro/internal/workload"
)

func init() {
	register("fig12", fig12)
	register("fig13", fig13)
	register("fig14", fig14)
	register("fig15", fig15)
	register("fig16", fig16)
	register("fig17", fig17)
	register("fig19", fig19)
	register("table2", table2)
	register("table3", table3)
	register("table4", table4)
	register("quant", quant)
	register("rampstyle", rampStyle)
	register("ablation", ablation)
}

var cvModels = []string{"resnet18", "resnet50", "resnet101", "vgg11", "vgg13", "vgg16"}

// fig12 reproduces Figure 12: median latency savings vs vanilla for the
// six CV models across the eight videos, alongside optimal exiting.
func fig12() []Table {
	t := Table{
		ID:     "fig12",
		Title:  "CV median latency savings vs vanilla (median across 8 videos; min-max)",
		Header: []string{"model", "apparate_win", "apparate_min", "apparate_max", "optimal_win"},
	}
	for _, name := range cvModels {
		m, _ := model.ByName(name)
		prof := exitsim.ProfileFor(m, exitsim.KindVideo)
		var appWins, optWins []float64
		for vid := 0; vid < 8; vid++ {
			stream := cvStreamFor(m, vid, uint64(12+vid))
			v, a := servePair(m, exitsim.KindVideo, stream, 0.02, 0.01)
			opts := serving.Options{Platform: serving.Clockwork, SLOms: m.SLO()}
			o := serving.Run(stream.Iter(), baselines.NewOptimal(m, prof), opts)
			vMed := v.Latencies().Median()
			appWins = append(appWins, metrics.WinPercent(vMed, a.Latencies().Median()))
			optWins = append(optWins, metrics.WinPercent(vMed, o.Latencies().Median()))
		}
		app := distFrom(appWins)
		opt := distFrom(optWins)
		t.Rows = append(t.Rows, []string{
			name, pct(app.Median()), pct(app.Min()), pct(app.Max()), pct(opt.Median()),
		})
	}
	return []Table{t}
}

// fig13 reproduces Figure 13: Apparate's P95 latency vs vanilla under
// the 2% ramp budget (tail impact bounded).
func fig13() []Table {
	t := Table{
		ID:     "fig13",
		Title:  "CV P95 latency: Apparate (2% budget) vs vanilla (median across videos)",
		Header: []string{"model", "apparate_p95_ms", "vanilla_p95_ms", "overhead"},
	}
	for _, name := range cvModels {
		m, _ := model.ByName(name)
		var appP95, vanP95 []float64
		for vid := 0; vid < 8; vid += 2 { // 4 videos keep this quick
			stream := cvStreamFor(m, vid, uint64(13+vid))
			v, a := servePair(m, exitsim.KindVideo, stream, 0.02, 0.01)
			appP95 = append(appP95, a.Latencies().Percentile(95))
			vanP95 = append(vanP95, v.Latencies().Percentile(95))
		}
		ap, vp := distFrom(appP95).Median(), distFrom(vanP95).Median()
		t.Rows = append(t.Rows, []string{name, f1(ap), f1(vp), pct((ap - vp) / vp * 100)})
	}
	return []Table{t}
}

// fig14 reproduces Figure 14: NLP latency distributions vs vanilla for
// the four NLP classifiers on Amazon and IMDB.
func fig14() []Table {
	t := Table{
		ID:     "fig14",
		Title:  "NLP classification latencies vs vanilla (2% budget)",
		Header: []string{"model", "workload", "p25_win", "p50_win", "van_p50_ms", "app_p50_ms"},
	}
	for _, name := range []string{"gpt2-medium", "bert-large", "bert-base", "distilbert-base"} {
		m, _ := model.ByName(name)
		for _, wl := range []string{"amazon", "imdb"} {
			stream := nlpStream(wl, m, 14)
			v, a := servePair(m, kindFor(wl), stream, 0.02, 0.01)
			vl, al := v.Latencies(), a.Latencies()
			t.Rows = append(t.Rows, []string{
				name, wl,
				pct(metrics.WinPercent(vl.Percentile(25), al.Percentile(25))),
				pct(metrics.WinPercent(vl.Median(), al.Median())),
				f1(vl.Median()), f1(al.Median()),
			})
		}
	}
	return []Table{t}
}

// fig15 reproduces Figure 15: Apparate vs online and offline optimal
// exiting on the Amazon workload.
func fig15() []Table {
	t := Table{
		ID:     "fig15",
		Title:  "Apparate vs online/offline optimal (Amazon, median latency win)",
		Header: []string{"model", "apparate", "online_optimal", "offline_optimal"},
	}
	for _, name := range []string{"gpt2-medium", "bert-base"} {
		m, _ := model.ByName(name)
		prof := exitsim.ProfileFor(m, exitsim.KindAmazon)
		stream := nlpStream("amazon", m, 15)
		opts := serving.Options{Platform: serving.Clockwork, SLOms: m.SLO()}
		v, a := servePair(m, exitsim.KindAmazon, stream, 0.02, 0.01)
		oo := serving.Run(stream.Iter(),
			baselines.NewOnlineOptimal(m, prof, 0.02, stream.Samples(), 0.01), opts)
		off := serving.Run(stream.Iter(), baselines.NewOptimal(m, prof), opts)
		vMed := v.Latencies().Median()
		t.Rows = append(t.Rows, []string{
			name,
			pct(metrics.WinPercent(vMed, a.Latencies().Median())),
			pct(metrics.WinPercent(vMed, oo.Latencies().Median())),
			pct(metrics.WinPercent(vMed, off.Latencies().Median())),
		})
	}
	return []Table{t}
}

// fig16 reproduces Figure 16: Apparate vs two-layer inference systems
// (FilterForward-style for CV, Tabi-style for NLP).
func fig16() []Table {
	t := Table{
		ID:     "fig16",
		Title:  "Apparate vs two-layer inference systems",
		Header: []string{"model", "workload", "apparate_p50", "twolayer_p50", "apparate_p95", "twolayer_p95"},
	}
	cases := []struct {
		m  *model.Model
		wl string
	}{
		{model.VGG11(), "video-0"}, {model.VGG13(), "video-0"},
		{model.Distilbert(), "amazon"}, {model.BERTBase(), "imdb"},
	}
	for _, c := range cases {
		kind := kindFor(c.wl)
		var stream *workload.Stream
		if kind == exitsim.KindVideo {
			stream = cvStream(0, 16)
		} else {
			stream = nlpStream(c.wl, c.m, 16)
		}
		prof := exitsim.ProfileFor(c.m, kind)
		opts := serving.Options{Platform: serving.Clockwork, SLOms: c.m.SLO()}
		_, a := servePair(c.m, kind, stream, 0.02, 0.01)
		boot := stream.SamplePrefix(stream.Len() / 10)
		two := serving.Run(stream.Iter(), baselines.NewTwoLayer(c.m, prof, boot, 0.01), opts)
		al, tl := a.Latencies(), two.Latencies()
		t.Rows = append(t.Rows, []string{
			c.m.Name, c.wl,
			f1(al.Median()), f1(tl.Median()),
			f1(al.Percentile(95)), f1(tl.Percentile(95)),
		})
	}
	return []Table{t}
}

// fig17 reproduces Figure 17: higher SLOs induce bigger batches and
// queuing delays, dampening Apparate's relative wins. CV videos are
// upsampled to 120fps as in the paper so batching actually engages.
func fig17() []Table {
	t := Table{
		ID:     "fig17",
		Title:  "Impact of SLO on Apparate's median latency wins",
		Header: []string{"model", "slo_mult", "slo_ms", "median_win"},
	}
	cases := []struct {
		m  *model.Model
		wl string
	}{
		{model.ResNet50(), "video"}, {model.VGG13(), "video"},
		{model.BERTBase(), "amazon"}, {model.GPT2Medium(), "amazon"},
	}
	for _, c := range cases {
		for _, mult := range []float64{1, 2, 4} {
			slo := c.m.SLO() * mult
			var stream *workload.Stream
			if c.wl == "video" {
				stream = workload.Video(0, cvFrames, 120, 17)
			} else {
				stream = nlpStream("amazon", c.m, 17)
			}
			kind := kindFor(c.wl)
			// Higher SLOs let operators run larger batch accumulation
			// windows (the throughput-oriented configuration the paper
			// describes); queuing then grows with the SLO while exits
			// keep saving only serving time.
			opts := serving.Options{
				Platform: serving.TFServe, SLOms: slo,
				MaxBatch: 16, BatchTimeoutMS: slo / 2, QueueCap: 256,
			}
			v := serving.Run(stream.Iter(), &serving.VanillaHandler{Model: c.m}, opts)
			fresh, _ := model.ByName(c.m.Name)
			h := serving.NewApparate(fresh, exitsim.ProfileFor(c.m, kind), 0.02, controller.Config{})
			a := serving.Run(stream.Iter(), h, opts)
			t.Rows = append(t.Rows, []string{
				c.m.Name, fmt.Sprintf("%gx", mult), f1(slo),
				pct(metrics.WinPercent(v.Latencies().Median(), a.Latencies().Median())),
			})
		}
	}
	return []Table{t}
}

// fig19 reproduces Figure 19: Apparate's wins shrink as the accuracy
// constraint tightens.
func fig19() []Table {
	t := Table{
		ID:     "fig19",
		Title:  "Median latency wins vs accuracy constraint",
		Header: []string{"model", "acc_target", "median_win", "accuracy"},
	}
	cases := []struct {
		m  *model.Model
		wl string
	}{
		{model.ResNet50(), "video-1"},
		{model.GPT2Medium(), "amazon"},
	}
	for _, c := range cases {
		for _, acc := range []float64{0.01, 0.02, 0.05} {
			kind := kindFor(c.wl)
			var stream *workload.Stream
			if kind == exitsim.KindVideo {
				stream = workload.Video(1, cvFrames, 30, 19)
			} else {
				stream = nlpStream("amazon", c.m, 19)
			}
			v, a := servePair(c.m, kind, stream, 0.02, acc)
			t.Rows = append(t.Rows, []string{
				c.m.Name, pct(acc * 100),
				pct(metrics.WinPercent(v.Latencies().Median(), a.Latencies().Median())),
				pct(a.Accuracy * 100),
			})
		}
	}
	return []Table{t}
}

// table2 reproduces Table 2: Apparate vs existing static EE models
// (BranchyNet for CV, DeeBERT for NLP) across their tuning variants.
func table2() []Table {
	t := Table{
		ID:     "table2",
		Title:  "Apparate vs existing EE models (ranges across workloads)",
		Header: []string{"system", "avg_acc", "median_win", "p95_win"},
	}
	type run struct{ acc, medWin, p95Win float64 }
	collect := func(m *model.Model, kind exitsim.Kind, stream *workload.Stream,
		build func(boot, test []exitsim.Sample) serving.Handler) run {
		opts := serving.Options{Platform: serving.Clockwork, SLOms: m.SLO()}
		v := serving.Run(stream.Iter(), &serving.VanillaHandler{Model: m}, opts)
		samples := stream.Samples()
		h := build(samples[:len(samples)/10], samples)
		s := serving.Run(stream.Iter(), h, opts)
		vl, sl := v.Latencies(), s.Latencies()
		return run{
			acc:    s.Accuracy * 100,
			medWin: metrics.WinPercent(vl.Median(), sl.Median()),
			p95Win: metrics.WinPercent(vl.Percentile(95), sl.Percentile(95)),
		}
	}
	addRows := func(label string, m *model.Model, kind exitsim.Kind, streams []*workload.Stream,
		style ramp.Style, overhead float64) {
		prof := exitsim.ProfileFor(m, kind)
		systems := []struct {
			name  string
			build func(boot, test []exitsim.Sample) serving.Handler
		}{
			{label + "-apparate", func(boot, test []exitsim.Sample) serving.Handler {
				fresh, _ := model.ByName(m.Name)
				return serving.NewApparate(fresh, prof, 0.02, controller.Config{})
			}},
			{label, func(boot, test []exitsim.Sample) serving.Handler {
				return baselines.StaticEE(m, prof, style, overhead, baselines.SharedThreshold, boot, nil, 0.01)
			}},
			{label + "+", func(boot, test []exitsim.Sample) serving.Handler {
				return baselines.StaticEE(m, prof, style, overhead, baselines.PerRamp, boot, nil, 0.01)
			}},
			{label + "-opt", func(boot, test []exitsim.Sample) serving.Handler {
				return baselines.StaticEE(m, prof, style, overhead, baselines.OracleTuned, nil, test, 0.01)
			}},
		}
		for _, sys := range systems {
			var accs, med, p95 []float64
			for _, stream := range streams {
				r := collect(m, kind, stream, sys.build)
				accs = append(accs, r.acc)
				med = append(med, r.medWin)
				p95 = append(p95, r.p95Win)
			}
			a, mw, pw := distFrom(accs), distFrom(med), distFrom(p95)
			t.Rows = append(t.Rows, []string{
				sys.name,
				fmt.Sprintf("%s-%s", pct(a.Min()), pct(a.Max())),
				fmt.Sprintf("%s-%s", pct(mw.Min()), pct(mw.Max())),
				fmt.Sprintf("%s-%s", pct(pw.Min()), pct(pw.Max())),
			})
		}
	}
	cvStreams := []*workload.Stream{cvStream(0, 20), cvStream(1, 21), cvStream(3, 22)}
	addRows("branchynet", model.ResNet50(), exitsim.KindVideo, cvStreams, ramp.StyleDefault, 0.22)
	m := model.BERTBase()
	nlpStreams := []*workload.Stream{nlpStream("amazon", m, 20), nlpStream("imdb", m, 21)}
	addRows("deebert", m, exitsim.KindAmazon, nlpStreams, ramp.StyleDeeBERTPooler, 0.195)
	return []Table{t}
}

// table3 reproduces Table 3: larger ramp budgets yield diminishing
// returns in median latency wins.
func table3() []Table {
	t := Table{
		ID:     "table3",
		Title:  "Median latency wins vs ramp budget",
		Header: []string{"budget", "resnet50_win", "gpt2_win"},
	}
	for _, budget := range []float64{0.02, 0.05, 0.10} {
		var wins []string
		for _, c := range []struct {
			m  *model.Model
			wl string
		}{{model.ResNet50(), "video"}, {model.GPT2Medium(), "amazon"}} {
			kind := kindFor(c.wl)
			// Average across three streams to separate the budget effect
			// from per-stream variation.
			var sum float64
			const streams = 3
			for k := 0; k < streams; k++ {
				var stream *workload.Stream
				if c.wl == "video" {
					stream = cvStream(2*k, uint64(23+k))
				} else {
					stream = nlpStream("amazon", c.m, uint64(23+k))
				}
				v, a := servePair(c.m, kind, stream, budget, 0.01)
				sum += metrics.WinPercent(v.Latencies().Median(), a.Latencies().Median())
			}
			wins = append(wins, pct(sum/streams))
		}
		t.Rows = append(t.Rows, append([]string{pct(budget * 100)}, wins...))
	}
	return []Table{t}
}

// table4 reproduces Table 4: Apparate's wins are insensitive to the
// serving platform underneath.
func table4() []Table {
	t := Table{
		ID:     "table4",
		Title:  "Apparate across serving platforms (median, p95 latency in ms)",
		Header: []string{"platform", "resnet50_p50", "resnet50_p95", "gpt2_p50", "gpt2_p95"},
	}
	for _, platform := range []serving.Platform{serving.Clockwork, serving.TFServe} {
		row := []string{platform.String()}
		for _, c := range []struct {
			m  *model.Model
			wl string
		}{{model.ResNet50(), "video"}, {model.GPT2Medium(), "amazon"}} {
			kind := kindFor(c.wl)
			var stream *workload.Stream
			if c.wl == "video" {
				stream = cvStream(0, 24)
			} else {
				stream = nlpStream("amazon", c.m, 24)
			}
			fresh, _ := model.ByName(c.m.Name)
			h := serving.NewApparate(fresh, exitsim.ProfileFor(c.m, kind), 0.02, controller.Config{})
			stats := serving.Run(stream.Iter(), h, serving.Options{
				Platform: platform, SLOms: c.m.SLO(), MaxBatch: 8, BatchTimeoutMS: 5,
			})
			lat := stats.Latencies()
			row = append(row, f1(lat.Median()), f1(lat.Percentile(95)))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}
}

// quant reproduces the §4.2 quantized-model experiment: Apparate's wins
// largely persist on int8 BERTs, with a mild dip from reduced
// overparameterization.
func quant() []Table {
	t := Table{
		ID:     "quant",
		Title:  "Apparate on post-training int8 quantized BERTs (Amazon)",
		Header: []string{"model", "p25_win", "median_win", "accuracy"},
	}
	for _, m := range []*model.Model{
		model.BERTBase(), model.QuantizedBERTBase(),
		model.BERTLarge(), model.QuantizedBERTLarge(),
	} {
		stream := nlpStream("amazon", m, 25)
		v, a := servePair(m, exitsim.KindAmazon, stream, 0.02, 0.01)
		vl, al := v.Latencies(), a.Latencies()
		t.Rows = append(t.Rows, []string{
			m.Name,
			pct(metrics.WinPercent(vl.Percentile(25), al.Percentile(25))),
			pct(metrics.WinPercent(vl.Median(), al.Median())),
			pct(a.Accuracy * 100),
		})
	}
	return []Table{t}
}

// rampStyle reproduces the §4.5 ramp-architecture study: Apparate still
// meets accuracy with DeeBERT's costlier ramps, at somewhat lower wins.
func rampStyle() []Table {
	t := Table{
		ID:     "rampstyle",
		Title:  "Apparate with alternative ramp architectures (BERT-base, Amazon)",
		Header: []string{"style", "active_ramps", "median_win", "accuracy"},
	}
	m := model.BERTBase()
	stream := nlpStream("amazon", m, 26)
	opts := serving.Options{Platform: serving.Clockwork, SLOms: m.SLO()}
	v := serving.Run(stream.Iter(), &serving.VanillaHandler{Model: m}, opts)
	for _, style := range []ramp.Style{ramp.StyleDefault, ramp.StyleDeeBERTPooler} {
		fresh, _ := model.ByName(m.Name)
		h := serving.NewApparate(fresh, exitsim.ProfileFor(m, exitsim.KindAmazon), 0.02, controller.Config{})
		h.Cfg.DeployInitial(style)
		stats := serving.Run(stream.Iter(), h, opts)
		t.Rows = append(t.Rows, []string{
			style.Name, fmt.Sprint(len(h.Cfg.Active)),
			pct(metrics.WinPercent(v.Latencies().Median(), stats.Latencies().Median())),
			pct(stats.Accuracy * 100),
		})
	}
	return []Table{t}
}

// ablation reproduces the §4.5 technique study: disabling ramp
// adjustment lowers median wins while accuracy stays met.
func ablation() []Table {
	t := Table{
		ID:     "ablation",
		Title:  "Ramp adjustment ablation (median latency wins)",
		Header: []string{"model", "workload", "full", "no_ramp_adjust", "accuracy_no_adjust"},
	}
	for _, c := range []struct {
		m  *model.Model
		wl string
	}{{model.ResNet50(), "video-1"}, {model.GPT2Medium(), "amazon"}} {
		kind := kindFor(c.wl)
		var stream *workload.Stream
		if kind == exitsim.KindVideo {
			stream = workload.Video(1, cvFrames, 30, 27)
		} else {
			stream = nlpStream("amazon", c.m, 27)
		}
		v, full := servePair(c.m, kind, stream, 0.02, 0.01)
		fresh, _ := model.ByName(c.m.Name)
		h := serving.NewApparate(fresh, exitsim.ProfileFor(c.m, kind), 0.02,
			controller.Config{DisableRampAdjust: true})
		no := serving.Run(stream.Iter(), h, serving.Options{Platform: serving.Clockwork, SLOms: c.m.SLO()})
		vMed := v.Latencies().Median()
		t.Rows = append(t.Rows, []string{
			c.m.Name, c.wl,
			pct(metrics.WinPercent(vMed, full.Latencies().Median())),
			pct(metrics.WinPercent(vMed, no.Latencies().Median())),
			pct(no.Accuracy * 100),
		})
	}
	return []Table{t}
}
