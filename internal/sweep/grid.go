// Package sweep is the parallel scenario-sweep engine: it expands a
// grid specification into the cartesian product of scenario axes,
// executes the scenarios concurrently on a bounded worker pool with
// deterministic per-scenario seeds, and emits ranked results as JSON,
// CSV, or a terminal summary table. The paper's evaluation — {8 CV, 6
// NLP, 2 generative models} × {10 classification + 2 generative
// workloads} × {2 platforms} × parameter settings — is one Grid away,
// and the same machinery backs rate sweeps, replica scaling studies,
// and regression gates.
package sweep

import (
	"fmt"
	"hash/fnv"
	"path"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/serving"
	"repro/internal/workload"
)

// Grid is a scenario-grid specification. Empty axes take the full
// supported range (every model, every workload, both platforms) or the
// paper's default parameter (one replica, rate 1×, budget 0.02, accuracy
// loss 0.01). Incompatible model/workload pairings — a ResNet on an NLP
// stream, a classifier on a generative workload — are skipped during
// expansion rather than erroring, so "all models × all workloads"
// means "every pairing the paper's corpus defines".
type Grid struct {
	Models     []string
	Workloads  []string
	Platforms  []string
	Dispatches []string
	Replicas   []int
	RateMults  []float64
	Budgets    []float64
	AccLosses  []float64
	ExitRules  []string
	// Metrics lists recorder modes to sweep ("exact", "sketch"); empty
	// means exact only.
	Metrics []string
	// RateSchedules lists arrival-rate schedule specs
	// ("phases:10x1/10x4", "sine:60/0.5/2", "square:30/0.5/4"); the
	// empty spec is the workload's native stationary process.
	RateSchedules []string
	// Autoscales lists replica-autoscaler specs ("1..4",
	// "1..4/window=2000"); the empty spec keeps the fixed Replicas axis.
	Autoscales []string
	// Heteros lists replica-heterogeneity specs ("1,0.5" cycles speed
	// factors over replica indexes); the empty spec is a homogeneous
	// cluster.
	Heteros []string
	// Faults lists fault-injection specs
	// ("crash:r1@2000+500;loss=0.001", "mtbf:8000/1000;delaydist=exp:2");
	// the empty spec is a perfectly reliable cluster.
	Faults []string
	// Retries lists dispatcher retry/hedging specs ("attempts=3",
	// "attempts=2/hedge=95"); the empty spec dispatches once.
	Retries []string
	// KVBlocks, BlockTokens, PrefixHits, and PrefillChunks sweep the
	// generative KV-block memory runtime (pool size, tokens per block,
	// prefix-cache hit ratio, chunked-prefill threshold); 0 members are
	// the pre-KV engine and classification scenarios clear the axes.
	KVBlocks      []int
	BlockTokens   []int
	PrefixHits    []float64
	PrefillChunks []int

	// Trace and Timeline turn on observability for every expanded
	// scenario — classification runs trace request lifecycles and
	// cluster gauges, generative runs trace sequence lifecycles and
	// KV-pool gauges. They are run-wide switches, not axes —
	// observability never enters a scenario's identity, so a traced
	// sweep expands to exactly the same scenarios and seeds as an
	// untraced one. ObsTickMS sets the timeline sampling period (0 =
	// obs.DefaultTickMS).
	Trace     bool
	Timeline  bool
	ObsTickMS float64

	// N is the request count per classification scenario; GenN is the
	// sequence count per generative scenario (generative decoding costs
	// far more simulated work per item).
	N    int
	GenN int

	// Seed is the sweep's base seed. Each scenario derives its own seed
	// from (Seed, scenario identity), so a scenario's stream does not
	// depend on where in the grid it sits or how many workers run it.
	Seed uint64

	// Only and Skip are per-axis include/exclude filters: glob patterns
	// matched against the scenario's axis tokens ("model=resnet50",
	// "workload=video-*", "platform=tf-serve", "replicas=4",
	// "rate=1.5", "budget=0.02", "accloss=0.01", "rule=entropy").
	// A scenario is kept when, for every axis that has at least one
	// Only pattern, one of that axis's patterns matches — and no Skip
	// pattern matches any token. A pattern without "=" matches its
	// value against every axis.
	Only []string
	Skip []string
}

func (g Grid) withDefaults() Grid {
	if len(g.Models) == 0 {
		for _, m := range model.All() {
			g.Models = append(g.Models, m.Name)
		}
	}
	if len(g.Workloads) == 0 {
		g.Workloads = append(workload.Names(), workload.GenNames()...)
	}
	if len(g.Platforms) == 0 {
		g.Platforms = serving.Platforms()
	}
	if len(g.Dispatches) == 0 {
		g.Dispatches = []string{"round-robin"}
	}
	if len(g.Replicas) == 0 {
		g.Replicas = []int{1}
	}
	if len(g.RateMults) == 0 {
		g.RateMults = []float64{1}
	}
	if len(g.Budgets) == 0 {
		g.Budgets = []float64{0.02}
	}
	if len(g.AccLosses) == 0 {
		g.AccLosses = []float64{0.01}
	}
	if len(g.ExitRules) == 0 {
		g.ExitRules = []string{""}
	}
	if len(g.Metrics) == 0 {
		g.Metrics = []string{""}
	}
	if len(g.RateSchedules) == 0 {
		g.RateSchedules = []string{""}
	}
	if len(g.Autoscales) == 0 {
		g.Autoscales = []string{""}
	}
	if len(g.Heteros) == 0 {
		g.Heteros = []string{""}
	}
	if len(g.Faults) == 0 {
		g.Faults = []string{""}
	}
	if len(g.Retries) == 0 {
		g.Retries = []string{""}
	}
	if len(g.KVBlocks) == 0 {
		g.KVBlocks = []int{0}
	}
	if len(g.BlockTokens) == 0 {
		g.BlockTokens = []int{0}
	}
	if len(g.PrefixHits) == 0 {
		g.PrefixHits = []float64{0}
	}
	if len(g.PrefillChunks) == 0 {
		g.PrefillChunks = []int{0}
	}
	if g.N == 0 {
		g.N = 4000
	}
	if g.GenN == 0 {
		g.GenN = 40
	}
	return g
}

// axisFilter groups glob patterns by the axis they constrain.
type axisFilter map[string][]string

func parseFilters(patterns []string) (axisFilter, error) {
	f := axisFilter{}
	for _, p := range patterns {
		axis, val := "", p
		if i := strings.IndexByte(p, '='); i >= 0 {
			axis, val = p[:i], p[i+1:]
		}
		if _, err := path.Match(val, ""); err != nil {
			return nil, fmt.Errorf("sweep: bad filter pattern %q: %v", p, err)
		}
		f[axis] = append(f[axis], val)
	}
	return f, nil
}

// axisTokens lists a scenario's filterable axis values.
func axisTokens(sc core.Scenario) map[string]string {
	t := map[string]string{
		"model":    sc.Model,
		"workload": sc.Workload,
		"platform": sc.Platform,
		"dispatch": sc.Dispatch,
		"replicas": fmt.Sprintf("%d", sc.Replicas),
		"rate":     fmt.Sprintf("%g", sc.RateMult),
		"budget":   fmt.Sprintf("%g", sc.RampBudget),
		"accloss":  fmt.Sprintf("%g", sc.AccLoss),
		"metrics":  sc.Metrics,
	}
	if sc.ExitRule != "" {
		t["rule"] = sc.ExitRule
	}
	if sc.RateSchedule != "" {
		t["schedule"] = sc.RateSchedule
	}
	if sc.Autoscale != "" {
		t["autoscale"] = sc.Autoscale
	}
	if sc.Hetero != "" {
		t["hetero"] = sc.Hetero
	}
	if sc.Faults != "" {
		t["faults"] = sc.Faults
	}
	if sc.Retry != "" {
		t["retry"] = sc.Retry
	}
	if sc.KVBlocks != 0 {
		t["kv"] = fmt.Sprintf("%d", sc.KVBlocks)
	}
	if sc.BlockTokens != 0 {
		t["blocktok"] = fmt.Sprintf("%d", sc.BlockTokens)
	}
	if sc.PrefixHit != 0 {
		t["prefixhit"] = fmt.Sprintf("%g", sc.PrefixHit)
	}
	if sc.PrefillChunk != 0 {
		t["prefillchunk"] = fmt.Sprintf("%d", sc.PrefillChunk)
	}
	return t
}

// keep applies Only semantics: every constrained axis must match. A
// scenario that lacks a conditional axis token entirely (rule,
// schedule, autoscale) cannot match a constraint on that axis — "only
// autoscale=*" means "only the autoscaled scenarios".
func (f axisFilter) keep(tokens map[string]string) bool {
	for axis, pats := range f {
		matched := false
		for _, pat := range pats {
			if axis == "" {
				for _, v := range tokens {
					if ok, _ := path.Match(pat, v); ok {
						matched = true
						break
					}
				}
			} else if v, present := tokens[axis]; present {
				if ok, _ := path.Match(pat, v); ok {
					matched = true
				}
			}
			if matched {
				break
			}
		}
		if !matched {
			return false
		}
	}
	return true
}

// drops applies Skip semantics: any match excludes the scenario.
// Scenarios lacking a conditional axis token are never dropped by a
// pattern on that axis ("skip autoscale=*" keeps the fixed-replica
// grid points).
func (f axisFilter) drops(tokens map[string]string) bool {
	for axis, pats := range f {
		for _, pat := range pats {
			if axis == "" {
				for _, v := range tokens {
					if ok, _ := path.Match(pat, v); ok {
						return true
					}
				}
			} else if v, present := tokens[axis]; present {
				if ok, _ := path.Match(pat, v); ok {
					return true
				}
			}
		}
	}
	return false
}

// compatible reports whether the model can serve the workload under the
// paper's corpus pairing (mirrors core.Scenario.Validate without
// constructing the model twice per grid point).
func compatible(m *model.Model, wl string) bool {
	switch {
	case workload.IsGenerative(wl):
		return m.Generative
	case m.Generative:
		return false
	case workload.IsVideo(wl):
		return m.Family.IsCV()
	default: // amazon, imdb
		return !m.Family.IsCV()
	}
}

// Expand enumerates the grid's cartesian product, drops incompatible
// pairings, canonicalizes scenarios (generative workloads collapse the
// platform/dispatch/replica axes), deduplicates, applies the Only/Skip
// filters, and derives each scenario's seed. The result is sorted by
// scenario identity, so the same grid always expands to the same
// ordered slice regardless of axis order in the specification.
func (g Grid) Expand() ([]core.Scenario, error) {
	g = g.withDefaults()
	only, err := parseFilters(g.Only)
	if err != nil {
		return nil, err
	}
	skip, err := parseFilters(g.Skip)
	if err != nil {
		return nil, err
	}

	models := make(map[string]*model.Model, len(g.Models))
	for _, name := range g.Models {
		m, err := model.ByName(name)
		if err != nil {
			return nil, err
		}
		models[name] = m
	}

	seen := map[string]bool{}
	// The fault and retry axes expand as a precomputed product so the
	// twelve-deep axis nest does not grow two more levels.
	type faultAxis struct{ faults, retry string }
	faultAxes := make([]faultAxis, 0, len(g.Faults)*len(g.Retries))
	for _, flt := range g.Faults {
		for _, rty := range g.Retries {
			faultAxes = append(faultAxes, faultAxis{flt, rty})
		}
	}
	// The four KV-runtime axes expand the same way, as one precomputed
	// product.
	type kvAxis struct {
		blocks, blockTok int
		prefix           float64
		chunk            int
	}
	kvAxes := make([]kvAxis, 0, len(g.KVBlocks)*len(g.BlockTokens)*len(g.PrefixHits)*len(g.PrefillChunks))
	for _, kb := range g.KVBlocks {
		for _, bt := range g.BlockTokens {
			for _, ph := range g.PrefixHits {
				for _, pc := range g.PrefillChunks {
					kvAxes = append(kvAxes, kvAxis{kb, bt, ph, pc})
				}
			}
		}
	}
	var out []core.Scenario
	var ids []string // out[i]'s identity, kept for the final sort
	for _, mName := range g.Models {
		for _, wl := range g.Workloads {
			if !compatible(models[mName], wl) {
				continue
			}
			n := g.N
			if workload.IsGenerative(wl) {
				n = g.GenN
			}
			for _, plat := range g.Platforms {
				for _, disp := range g.Dispatches {
					for _, rep := range g.Replicas {
						for _, rate := range g.RateMults {
							for _, budget := range g.Budgets {
								for _, accLoss := range g.AccLosses {
									for _, rule := range g.ExitRules {
										for _, mm := range g.Metrics {
											for _, sched := range g.RateSchedules {
												for _, as := range g.Autoscales {
													for _, het := range g.Heteros {
														for _, fr := range faultAxes {
															for _, kv := range kvAxes {
																sc := core.Scenario{
																	Model: mName, Workload: wl,
																	Platform: plat, Dispatch: disp, Replicas: rep,
																	N: n, RateMult: rate,
																	RampBudget: budget, AccLoss: accLoss,
																	ExitRule: rule, Metrics: mm,
																	RateSchedule: sched, Autoscale: as,
																	Hetero: het, Faults: fr.faults, Retry: fr.retry,
																	KVBlocks: kv.blocks, BlockTokens: kv.blockTok,
																	PrefixHit: kv.prefix, PrefillChunk: kv.chunk,
																	Trace: g.Trace, Timeline: g.Timeline,
																	ObsTickMS: g.ObsTickMS,
																}.Normalize()
																id := sc.Identity()
																if seen[id] {
																	continue
																}
																seen[id] = true
																tokens := axisTokens(sc)
																if !only.keep(tokens) || skip.drops(tokens) {
																	continue
																}
																if err := sc.Validate(); err != nil {
																	return nil, err
																}
																sc.Seed = DeriveSeed(g.Seed, id)
																out = append(out, sc)
																ids = append(ids, id)
															}
														}
													}
												}
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	sort.Sort(&byIdentity{out, ids})
	return out, nil
}

// byIdentity sorts scenarios and their precomputed identities together.
type byIdentity struct {
	scs []core.Scenario
	ids []string
}

func (s *byIdentity) Len() int           { return len(s.scs) }
func (s *byIdentity) Less(i, j int) bool { return s.ids[i] < s.ids[j] }
func (s *byIdentity) Swap(i, j int) {
	s.scs[i], s.scs[j] = s.scs[j], s.scs[i]
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
}

// DeriveSeed maps (base seed, scenario identity) to the scenario's
// workload seed: an FNV-1a hash of the identity mixed with the base
// through one SplitMix64 step. The derivation depends only on the
// scenario's own axes, never on grid position, worker count, or
// completion order — the root of the sweep's byte-identical determinism
// guarantee.
func DeriveSeed(base uint64, identity string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(identity))
	return rng.New(h.Sum64() ^ base).Uint64()
}
