package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// RankMetrics lists the supported ranking keys for Rank and Table.
func RankMetrics() []string {
	return []string{"p99", "p95", "p50", "throughput", "acc-loss", "win"}
}

// rankKey returns the sort key for a result under the metric; lower is
// better for every metric (better-is-higher metrics negate).
func rankKey(r Result, metric string) (float64, error) {
	switch metric {
	case "p99":
		return r.Apparate.P99ms, nil
	case "p95":
		return r.Apparate.P95ms, nil
	case "p50":
		return r.Apparate.P50ms, nil
	case "throughput":
		return -r.Apparate.Throughput, nil
	case "acc-loss":
		return r.AccDelta, nil
	case "win":
		return -r.P95Win, nil
	}
	return 0, fmt.Errorf("sweep: unknown rank metric %q (want %s)", metric, strings.Join(RankMetrics(), " | "))
}

// Rank returns a copy of the results sorted best-first under the metric.
// Failed scenarios sort last; ties break on scenario identity so the
// order is total and reproducible.
func Rank(results []Result, metric string) ([]Result, error) {
	if _, err := rankKey(Result{}, metric); err != nil {
		return nil, err
	}
	out := make([]Result, len(results))
	copy(out, results)
	sort.SliceStable(out, func(i, j int) bool {
		if (out[i].Err != "") != (out[j].Err != "") {
			return out[i].Err == ""
		}
		ki, _ := rankKey(out[i], metric)
		kj, _ := rankKey(out[j], metric)
		if ki != kj {
			return ki < kj
		}
		return out[i].Scenario.Identity() < out[j].Scenario.Identity()
	})
	return out, nil
}

// WriteJSON emits the results as indented JSON. Output is byte-stable:
// struct field order is fixed and all values are deterministic given the
// scenarios' seeds.
func WriteJSON(w io.Writer, results []Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// csvHeader is the column set of WriteCSV.
var csvHeader = []string{
	"model", "workload", "platform", "dispatch", "replicas", "n", "seed",
	"rate_mult", "ramp_budget", "acc_loss", "exit_rule", "metrics",
	"rate_schedule", "autoscale", "hetero", "faults", "retry",
	"kv_blocks", "block_tokens", "prefix_hit", "prefill_chunk", "generative", "slo_ms",
	"van_p50_ms", "van_p95_ms", "van_p99_ms", "app_p50_ms", "app_p95_ms", "app_p99_ms",
	"p50_win_pct", "p95_win_pct", "p99_win_pct",
	"van_accuracy", "app_accuracy", "acc_delta",
	"van_throughput", "app_throughput", "app_drop_rate", "app_slo_miss_rate",
	"van_goodput", "app_goodput", "crashes", "lost", "retries", "hedges",
	"downtime_ms", "unavail_ms",
	"kv_util", "prefix_hits", "preemptions", "queue_ms",
	"tune_rounds", "adjust_rounds", "active_ramps",
	"scale_ups", "scale_downs", "peak_replicas", "error",
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteCSV emits the results as CSV with a fixed header. Floats use the
// shortest exact representation, so the file is byte-stable too.
func WriteCSV(w io.Writer, results []Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, r := range results {
		sc := r.Scenario
		rec := []string{
			sc.Model, sc.Workload, sc.Platform, sc.Dispatch,
			strconv.Itoa(sc.Replicas), strconv.Itoa(sc.N), strconv.FormatUint(sc.Seed, 10),
			ftoa(sc.RateMult), ftoa(sc.RampBudget), ftoa(sc.AccLoss), sc.ExitRule, sc.Metrics,
			sc.RateSchedule, sc.Autoscale, sc.Hetero, sc.Faults, sc.Retry,
			strconv.Itoa(sc.KVBlocks), strconv.Itoa(sc.BlockTokens),
			ftoa(sc.PrefixHit), strconv.Itoa(sc.PrefillChunk),
			strconv.FormatBool(r.Generative), ftoa(r.SLOms),
			ftoa(r.Vanilla.P50ms), ftoa(r.Vanilla.P95ms), ftoa(r.Vanilla.P99ms),
			ftoa(r.Apparate.P50ms), ftoa(r.Apparate.P95ms), ftoa(r.Apparate.P99ms),
			ftoa(r.P50Win), ftoa(r.P95Win), ftoa(r.P99Win),
			ftoa(r.Vanilla.Accuracy), ftoa(r.Apparate.Accuracy), ftoa(r.AccDelta),
			ftoa(r.Vanilla.Throughput), ftoa(r.Apparate.Throughput),
			ftoa(r.Apparate.DropRate), ftoa(r.Apparate.SLOMissRate),
			ftoa(r.Vanilla.Goodput), ftoa(r.Apparate.Goodput),
			strconv.Itoa(r.Crashes), strconv.Itoa(r.Lost),
			strconv.Itoa(r.Retries), strconv.Itoa(r.Hedges),
			ftoa(r.DowntimeMS), ftoa(r.UnavailMS),
			ftoa(r.KVUtil), strconv.Itoa(r.PrefixHits),
			strconv.Itoa(r.Preemptions), ftoa(r.QueueMS),
			strconv.Itoa(r.TuneRounds), strconv.Itoa(r.AdjustRounds), strconv.Itoa(r.ActiveRamps),
			strconv.Itoa(r.ScaleUps), strconv.Itoa(r.ScaleDowns), strconv.Itoa(r.PeakReplicas),
			r.Err,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Table renders a compact terminal summary ranked best-first by the
// metric; top bounds the number of rows (0 = all). Latency columns are
// per-request for classification scenarios and per-token (TPT) for
// generative ones; throughput is qps or tokens/s respectively.
func Table(results []Result, metric string, top int) (string, error) {
	ranked, err := Rank(results, metric)
	if err != nil {
		return "", err
	}
	if top > 0 && top < len(ranked) {
		ranked = ranked[:top]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-18s %-14s %-10s %-13s %4s %9s %9s %8s %8s %9s  %s\n",
		"rank", "model", "workload", "platform", "dispatch", "rep",
		"app-p50", "app-p99", "p95-win", "acc-Δ", "tput", "adaptation")
	for i, r := range ranked {
		if r.Err != "" {
			fmt.Fprintf(&b, "%-4d %-18s %-14s %-10s %-13s %4d  ERROR: %s\n",
				i+1, r.Scenario.Model, r.Scenario.Workload, r.Scenario.Platform,
				r.Scenario.Dispatch, r.Scenario.Replicas, r.Err)
			continue
		}
		unit := "qps"
		if r.Generative {
			unit = "tok/s"
		}
		fmt.Fprintf(&b, "%-4d %-18s %-14s %-10s %-13s %4d %7.2fms %7.2fms %7.1f%% %7.3f%% %7.1f%s  %dt/%da/%dr\n",
			i+1, r.Scenario.Model, r.Scenario.Workload, r.Scenario.Platform,
			r.Scenario.Dispatch, r.Scenario.Replicas,
			r.Apparate.P50ms, r.Apparate.P99ms, r.P95Win, r.AccDelta*100,
			r.Apparate.Throughput, unit,
			r.TuneRounds, r.AdjustRounds, r.ActiveRamps)
	}
	return b.String(), nil
}
