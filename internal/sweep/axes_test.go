package sweep

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestExpandLoadDynamicsAxes(t *testing.T) {
	g := Grid{
		Models:        []string{"resnet18"},
		Workloads:     []string{"video-0"},
		Platforms:     []string{"clockwork"},
		RateSchedules: []string{"", "phases:10x1/10x4"},
		Autoscales:    []string{"", "1..4"},
		N:             100,
	}
	scs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 4 {
		t.Fatalf("expanded %d scenarios, want 4 (2 schedules x 2 autoscales)", len(scs))
	}
	// The empty-axis scenario must have the identity (and so the seed)
	// it had before the axes existed.
	plain := core.Scenario{Model: "resnet18", Workload: "video-0",
		Platform: "clockwork", N: 100}.Normalize()
	found := false
	for _, sc := range scs {
		if sc.Identity() == plain.Identity() {
			found = true
			if sc.Seed != DeriveSeed(g.Seed, plain.Identity()) {
				t.Fatal("plain scenario's derived seed changed")
			}
		}
	}
	if !found {
		t.Fatal("plain scenario missing from load-dynamics grid")
	}
}

func TestLoadDynamicsAxisFilters(t *testing.T) {
	g := Grid{
		Models:        []string{"resnet18"},
		Workloads:     []string{"video-0"},
		Platforms:     []string{"clockwork"},
		RateSchedules: []string{"", "phases:10x1/10x4", "sine:60/0.5/2"},
		Autoscales:    []string{"", "1..4"},
		N:             100,
		// Glob patterns are path.Match globs: '*' stops at '/', so a
		// two-phase spec needs a two-segment pattern.
		Only: []string{"schedule=phases:*/*"},
		Skip: []string{"autoscale=*"},
	}
	scs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 1 {
		t.Fatalf("filters kept %d scenarios, want 1", len(scs))
	}
	sc := scs[0]
	if sc.RateSchedule != "phases:10x1/10x4" || sc.Autoscale != "" {
		t.Fatalf("filters kept the wrong scenario: %+v", sc)
	}
}

func TestCSVCarriesLoadDynamicsColumns(t *testing.T) {
	res := Result{Result: core.Result{
		Scenario: core.Scenario{
			Model: "resnet18", Workload: "video-0", N: 10,
			RateSchedule: "phases:10x1/10x4", Autoscale: "1..4",
		}.Normalize(),
		ScaleUps: 3, ScaleDowns: 2, PeakReplicas: 4,
	}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []Result{res}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines, want header + 1 row", len(lines))
	}
	header := strings.Split(lines[0], ",")
	row := strings.Split(lines[1], ",")
	if len(header) != len(row) {
		t.Fatalf("header has %d columns, row has %d", len(header), len(row))
	}
	col := func(name string) string {
		for i, h := range header {
			if h == name {
				return row[i]
			}
		}
		t.Fatalf("CSV header missing column %q", name)
		return ""
	}
	if col("rate_schedule") != "phases:10x1/10x4" || col("autoscale") != "1..4" {
		t.Fatalf("scenario axis columns wrong: schedule=%q autoscale=%q",
			col("rate_schedule"), col("autoscale"))
	}
	if col("scale_ups") != "3" || col("scale_downs") != "2" || col("peak_replicas") != "4" {
		t.Fatalf("autoscale activity columns wrong: %q/%q/%q",
			col("scale_ups"), col("scale_downs"), col("peak_replicas"))
	}
}
