package sweep

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestExpandLoadDynamicsAxes(t *testing.T) {
	g := Grid{
		Models:        []string{"resnet18"},
		Workloads:     []string{"video-0"},
		Platforms:     []string{"clockwork"},
		RateSchedules: []string{"", "phases:10x1/10x4"},
		Autoscales:    []string{"", "1..4"},
		N:             100,
	}
	scs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 4 {
		t.Fatalf("expanded %d scenarios, want 4 (2 schedules x 2 autoscales)", len(scs))
	}
	// The empty-axis scenario must have the identity (and so the seed)
	// it had before the axes existed.
	plain := core.Scenario{Model: "resnet18", Workload: "video-0",
		Platform: "clockwork", N: 100}.Normalize()
	found := false
	for _, sc := range scs {
		if sc.Identity() == plain.Identity() {
			found = true
			if sc.Seed != DeriveSeed(g.Seed, plain.Identity()) {
				t.Fatal("plain scenario's derived seed changed")
			}
		}
	}
	if !found {
		t.Fatal("plain scenario missing from load-dynamics grid")
	}
}

func TestLoadDynamicsAxisFilters(t *testing.T) {
	g := Grid{
		Models:        []string{"resnet18"},
		Workloads:     []string{"video-0"},
		Platforms:     []string{"clockwork"},
		RateSchedules: []string{"", "phases:10x1/10x4", "sine:60/0.5/2"},
		Autoscales:    []string{"", "1..4"},
		N:             100,
		// Glob patterns are path.Match globs: '*' stops at '/', so a
		// two-phase spec needs a two-segment pattern.
		Only: []string{"schedule=phases:*/*"},
		Skip: []string{"autoscale=*"},
	}
	scs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 1 {
		t.Fatalf("filters kept %d scenarios, want 1", len(scs))
	}
	sc := scs[0]
	if sc.RateSchedule != "phases:10x1/10x4" || sc.Autoscale != "" {
		t.Fatalf("filters kept the wrong scenario: %+v", sc)
	}
}

func TestExpandFaultAxes(t *testing.T) {
	g := Grid{
		Models:    []string{"resnet18"},
		Workloads: []string{"video-0"},
		Platforms: []string{"clockwork"},
		Replicas:  []int{2},
		Faults:    []string{"", "crash:r1@2000+500"},
		Retries:   []string{"", "attempts=3"},
		N:         100,
	}
	scs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 4 {
		t.Fatalf("expanded %d scenarios, want 4 (2 faults x 2 retries)", len(scs))
	}
	// The fault-free scenario must keep the identity (and so the seed)
	// it had before the fault axes existed.
	plain := core.Scenario{Model: "resnet18", Workload: "video-0",
		Platform: "clockwork", Replicas: 2, N: 100}.Normalize()
	found := false
	for _, sc := range scs {
		if sc.Identity() == plain.Identity() {
			found = true
			if sc.Seed != DeriveSeed(g.Seed, plain.Identity()) {
				t.Fatal("fault-free scenario's derived seed changed")
			}
		}
	}
	if !found {
		t.Fatal("fault-free scenario missing from faulty grid")
	}
}

func TestFaultAxisFilters(t *testing.T) {
	g := Grid{
		Models:    []string{"resnet18"},
		Workloads: []string{"video-0"},
		Platforms: []string{"clockwork"},
		Replicas:  []int{2},
		Faults:    []string{"", "crash:r1@2000+500", "loss=0.01"},
		Retries:   []string{"", "attempts=3"},
		N:         100,
		Only:      []string{"faults=crash:*"},
		Skip:      []string{"retry=*"},
	}
	scs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 1 {
		t.Fatalf("filters kept %d scenarios, want 1", len(scs))
	}
	if sc := scs[0]; sc.Faults != "crash:r1@2000+500" || sc.Retry != "" {
		t.Fatalf("filters kept the wrong scenario: %+v", sc)
	}
}

// TestDeterministicAcrossWorkersFaulty extends the workers-1-vs-8
// byte-identity gate over a faulty grid: crash schedules, churn, lossy
// transit, and retry/hedging all ride the deterministic engine clock
// and labeled rng streams, so concurrency must not be observable.
func TestDeterministicAcrossWorkersFaulty(t *testing.T) {
	g := Grid{
		Models:    []string{"resnet18", "distilbert-base"},
		Workloads: []string{"video-0", "amazon"},
		Platforms: []string{"clockwork", "tf-serve"},
		Replicas:  []int{2},
		Faults:    []string{"crash:r1@2000+500", "mtbf:6000/800;delaydist=exp:2;loss=0.005"},
		Retries:   []string{"", "attempts=3/hedge=95"},
		N:         800,
		Seed:      5,
	}
	scs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) < 8 {
		t.Fatalf("faulty grid expanded to only %d scenarios", len(scs))
	}
	emit := func(workers int) string {
		results := Run(scs, Options{Workers: workers})
		for _, r := range results {
			if r.Err != "" {
				t.Fatalf("faulty scenario %s failed: %s", r.Scenario.Key(), r.Err)
			}
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, results); err != nil {
			t.Fatal(err)
		}
		if err := WriteCSV(&buf, results); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if emit(1) != emit(8) {
		t.Fatal("faulty sweep output differs between -workers 1 and -workers 8")
	}
}

func TestCSVCarriesFaultColumns(t *testing.T) {
	res := Result{Result: core.Result{
		Scenario: core.Scenario{
			Model: "resnet18", Workload: "video-0", N: 10, Replicas: 2,
			Faults: "crash:r1@2000+500;loss=0.001", Retry: "attempts=3",
		}.Normalize(),
		Crashes: 1, Lost: 2, Retries: 7, Hedges: 3,
		DowntimeMS: 500, UnavailMS: 0,
	}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []Result{res}); err != nil {
		t.Fatal(err)
	}
	r := csv.NewReader(strings.NewReader(buf.String()))
	rows, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("CSV has %d rows, want header + 1", len(rows))
	}
	col := func(name string) string {
		for i, h := range rows[0] {
			if h == name {
				return rows[1][i]
			}
		}
		t.Fatalf("CSV header missing column %q", name)
		return ""
	}
	if col("faults") != "crash:r1@2000+500;loss=0.001" || col("retry") != "attempts=3" {
		t.Fatalf("fault axis columns wrong: faults=%q retry=%q", col("faults"), col("retry"))
	}
	if col("crashes") != "1" || col("lost") != "2" || col("retries") != "7" ||
		col("hedges") != "3" || col("downtime_ms") != "500" {
		t.Fatalf("availability columns wrong: %q/%q/%q/%q/%q",
			col("crashes"), col("lost"), col("retries"), col("hedges"), col("downtime_ms"))
	}
}

func TestCSVCarriesLoadDynamicsColumns(t *testing.T) {
	res := Result{Result: core.Result{
		Scenario: core.Scenario{
			Model: "resnet18", Workload: "video-0", N: 10,
			RateSchedule: "phases:10x1/10x4", Autoscale: "1..4",
		}.Normalize(),
		ScaleUps: 3, ScaleDowns: 2, PeakReplicas: 4,
	}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []Result{res}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines, want header + 1 row", len(lines))
	}
	header := strings.Split(lines[0], ",")
	row := strings.Split(lines[1], ",")
	if len(header) != len(row) {
		t.Fatalf("header has %d columns, row has %d", len(header), len(row))
	}
	col := func(name string) string {
		for i, h := range header {
			if h == name {
				return row[i]
			}
		}
		t.Fatalf("CSV header missing column %q", name)
		return ""
	}
	if col("rate_schedule") != "phases:10x1/10x4" || col("autoscale") != "1..4" {
		t.Fatalf("scenario axis columns wrong: schedule=%q autoscale=%q",
			col("rate_schedule"), col("autoscale"))
	}
	if col("scale_ups") != "3" || col("scale_downs") != "2" || col("peak_replicas") != "4" {
		t.Fatalf("autoscale activity columns wrong: %q/%q/%q",
			col("scale_ups"), col("scale_downs"), col("peak_replicas"))
	}
}

func TestExpandKVAxes(t *testing.T) {
	g := Grid{
		Models:        []string{"t5-large"},
		Workloads:     []string{"cnn-dailymail"},
		Platforms:     []string{"clockwork"},
		KVBlocks:      []int{0, 64},
		PrefixHits:    []float64{0, 0.5},
		PrefillChunks: []int{0, 128},
		GenN:          10,
	}
	scs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 8 {
		t.Fatalf("expanded %d scenarios, want 8 (2 kv x 2 prefix x 2 chunk)", len(scs))
	}
	// The empty-axis scenario must have the identity (and so the seed)
	// it had before the KV axes existed.
	plain := core.Scenario{Model: "t5-large", Workload: "cnn-dailymail",
		Platform: "clockwork", N: 10}.Normalize()
	found := false
	for _, sc := range scs {
		if sc.Identity() == plain.Identity() {
			found = true
			if sc.Seed != DeriveSeed(g.Seed, plain.Identity()) {
				t.Fatal("plain generative scenario's derived seed changed")
			}
		}
	}
	if !found {
		t.Fatal("plain scenario missing from KV grid")
	}
}

func TestKVAxesCollapseOnClassification(t *testing.T) {
	// Classification scenarios normalize the KV knobs away, so a KV
	// grid over a classification workload dedups to one scenario.
	g := Grid{
		Models:    []string{"resnet18"},
		Workloads: []string{"video-0"},
		Platforms: []string{"clockwork"},
		KVBlocks:  []int{0, 64},
		N:         100,
	}
	scs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 1 {
		t.Fatalf("expanded %d scenarios, want 1 (KV axes collapse on classification)", len(scs))
	}
}

func TestKVAxisFilters(t *testing.T) {
	g := Grid{
		Models:     []string{"t5-large"},
		Workloads:  []string{"cnn-dailymail"},
		Platforms:  []string{"clockwork"},
		KVBlocks:   []int{0, 64, 128},
		PrefixHits: []float64{0, 0.5},
		GenN:       10,
		Only:       []string{"kv=64"},
		Skip:       []string{"prefixhit=*"},
	}
	scs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 1 {
		t.Fatalf("filtered grid expanded %d scenarios, want 1 (kv=64, no prefix)", len(scs))
	}
	if scs[0].KVBlocks != 64 || scs[0].PrefixHit != 0 {
		t.Fatalf("filters kept wrong scenario: kv=%d prefixhit=%g", scs[0].KVBlocks, scs[0].PrefixHit)
	}
}

func TestCSVCarriesKVColumns(t *testing.T) {
	res := Result{Result: core.Result{
		Scenario: core.Scenario{
			Model: "t5-large", Workload: "cnn-dailymail", N: 10,
			KVBlocks: 96, BlockTokens: 8, PrefixHit: 0.5, PrefillChunk: 128,
		}.Normalize(),
		Generative: true,
		KVUtil:     0.75, PrefixHits: 4, Preemptions: 2, QueueMS: 120.5,
	}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []Result{res}); err != nil {
		t.Fatal(err)
	}
	r := csv.NewReader(strings.NewReader(buf.String()))
	rows, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("CSV has %d rows, want header + 1", len(rows))
	}
	col := func(name string) string {
		for i, h := range rows[0] {
			if h == name {
				return rows[1][i]
			}
		}
		t.Fatalf("CSV header missing column %q", name)
		return ""
	}
	if col("kv_blocks") != "96" || col("block_tokens") != "8" ||
		col("prefix_hit") != "0.5" || col("prefill_chunk") != "128" {
		t.Fatalf("KV scenario columns wrong: %q/%q/%q/%q",
			col("kv_blocks"), col("block_tokens"), col("prefix_hit"), col("prefill_chunk"))
	}
	if col("kv_util") != "0.75" || col("prefix_hits") != "4" ||
		col("preemptions") != "2" || col("queue_ms") != "120.5" {
		t.Fatalf("KV result columns wrong: %q/%q/%q/%q",
			col("kv_util"), col("prefix_hits"), col("preemptions"), col("queue_ms"))
	}
}
