package sweep

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/workload"
)

// smallGrid is a fast mixed grid: CV + NLP + generative, both
// platforms, two budgets, a cluster axis.
func smallGrid() Grid {
	return Grid{
		Models:    []string{"resnet18", "distilbert-base", "t5-large"},
		Workloads: []string{"video-0", "amazon", "cnn-dailymail"},
		Budgets:   []float64{0.01, 0.02},
		Replicas:  []int{1, 2},
		N:         600,
		GenN:      6,
		Seed:      7,
	}
}

func TestExpandPairsCompatibly(t *testing.T) {
	scs, err := smallGrid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) == 0 {
		t.Fatal("empty expansion")
	}
	for _, sc := range scs {
		m, err := model.ByName(sc.Model)
		if err != nil {
			t.Fatal(err)
		}
		if workload.IsGenerative(sc.Workload) != m.Generative {
			t.Fatalf("incompatible pairing expanded: %s", sc.Key())
		}
		if workload.IsVideo(sc.Workload) && !m.Family.IsCV() {
			t.Fatalf("non-CV model on video: %s", sc.Key())
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("expanded scenario invalid: %v", err)
		}
	}
	// resnet18×video-0 and distilbert×amazon: 2 platforms × 2 budgets ×
	// 2 replica counts = 8 each. t5-large×cnn-dailymail collapses the
	// platform and replica axes: 2 budgets = 2 scenarios. Total 18.
	if len(scs) != 18 {
		t.Fatalf("expanded %d scenarios, want 18", len(scs))
	}
}

func TestExpandGenerativeAxesCollapse(t *testing.T) {
	g := Grid{
		Models:    []string{"t5-large"},
		Workloads: []string{"squad"},
		Platforms: []string{"clockwork", "tf-serve"},
		Replicas:  []int{1, 2, 4},
		GenN:      5,
	}
	scs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 1 {
		t.Fatalf("generative axes did not collapse: %d scenarios, want 1", len(scs))
	}
	sc := scs[0]
	if sc.Platform != "clockwork" || sc.Replicas != 1 || sc.Dispatch != "round-robin" {
		t.Fatalf("generative scenario not canonical: %s", sc.Key())
	}
}

func TestExpandOnlySkipFilters(t *testing.T) {
	g := smallGrid()
	g.Only = []string{"model=resnet*", "platform=clockwork"}
	scs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) == 0 {
		t.Fatal("filters removed everything")
	}
	for _, sc := range scs {
		if !strings.HasPrefix(sc.Model, "resnet") || sc.Platform != "clockwork" {
			t.Fatalf("Only filter leaked: %s", sc.Key())
		}
	}

	g = smallGrid()
	g.Skip = []string{"workload=video-*", "replicas=2"}
	scs, err = g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scs {
		if workload.IsVideo(sc.Workload) || sc.Replicas == 2 {
			t.Fatalf("Skip filter leaked: %s", sc.Key())
		}
	}

	if _, err := (Grid{Only: []string{"model=[bad"}}).Expand(); err == nil {
		t.Fatal("malformed filter pattern accepted")
	}
}

func TestDeriveSeedStable(t *testing.T) {
	a := DeriveSeed(1, "model=x workload=y")
	if b := DeriveSeed(1, "model=x workload=y"); a != b {
		t.Fatalf("same inputs, different seeds: %d vs %d", a, b)
	}
	if b := DeriveSeed(2, "model=x workload=y"); a == b {
		t.Fatal("base seed ignored")
	}
	if b := DeriveSeed(1, "model=x workload=z"); a == b {
		t.Fatal("identity ignored")
	}
}

// TestDeterministicAcrossWorkers is the sweep's core guarantee: the
// same grid and seed produce byte-identical JSON and CSV no matter how
// many workers run it or in what order scenarios complete.
func TestDeterministicAcrossWorkers(t *testing.T) {
	scs, err := smallGrid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	emit := func(workers int) (string, string) {
		results := Run(scs, Options{Workers: workers})
		var j, c bytes.Buffer
		if err := WriteJSON(&j, results); err != nil {
			t.Fatal(err)
		}
		if err := WriteCSV(&c, results); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}
	j1, c1 := emit(1)
	j8, c8 := emit(8)
	if j1 != j8 {
		t.Fatal("JSON output differs between -workers 1 and -workers 8")
	}
	if c1 != c8 {
		t.Fatal("CSV output differs between -workers 1 and -workers 8")
	}
	if !strings.Contains(c1, "resnet18") || !strings.Contains(j1, "cnn-dailymail") {
		t.Fatal("emitted output missing expected scenarios")
	}
}

// TestDeterministicAcrossWorkersSketch extends the determinism gate to
// sketch-mode metrics: the bounded-memory recorder must not introduce
// any order- or concurrency-dependent state, so workers=1 and workers=8
// emit byte-identical JSON and CSV here too.
func TestDeterministicAcrossWorkersSketch(t *testing.T) {
	g := smallGrid()
	g.Metrics = []string{"sketch"}
	scs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scs {
		if sc.Metrics != "sketch" {
			t.Fatalf("metrics axis not plumbed: %s", sc.Key())
		}
	}
	emit := func(workers int) (string, string) {
		results := Run(scs, Options{Workers: workers})
		var j, c bytes.Buffer
		if err := WriteJSON(&j, results); err != nil {
			t.Fatal(err)
		}
		if err := WriteCSV(&c, results); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}
	j1, c1 := emit(1)
	j8, c8 := emit(8)
	if j1 != j8 {
		t.Fatal("sketch-mode JSON output differs between -workers 1 and -workers 8")
	}
	if c1 != c8 {
		t.Fatal("sketch-mode CSV output differs between -workers 1 and -workers 8")
	}
	if !strings.Contains(c1, "sketch") {
		t.Fatal("CSV missing metrics column value")
	}
}

// TestMetricsAxisKeepsExactSeeds pins that adding the metrics axis did
// not shift the seed derivation for pre-existing exact scenarios: the
// exact default is omitted from the identity string.
func TestMetricsAxisKeepsExactSeeds(t *testing.T) {
	sc := core.Scenario{Model: "resnet18", Workload: "video-0", N: 100}.Normalize()
	if sc.Metrics != "exact" {
		t.Fatalf("normalized metrics = %q", sc.Metrics)
	}
	if strings.Contains(sc.Identity(), "metrics=") {
		t.Fatalf("exact metrics leaked into identity: %s", sc.Identity())
	}
	sk := sc
	sk.Metrics = "sketch"
	if !strings.Contains(sk.Identity(), "metrics=sketch") {
		t.Fatalf("sketch metrics missing from identity: %s", sk.Identity())
	}
}

func TestRunReportsPerScenarioErrors(t *testing.T) {
	scs := []core.Scenario{
		{Model: "resnet18", Workload: "video-0", N: 200, Seed: 1},
		{Model: "no-such-model", Workload: "video-0", N: 200, Seed: 1},
	}
	results := Run(scs, Options{Workers: 2})
	if results[0].Err != "" {
		t.Fatalf("valid scenario errored: %s", results[0].Err)
	}
	if results[1].Err == "" {
		t.Fatal("invalid scenario did not report an error")
	}
	if results[1].Scenario.Model != "no-such-model" {
		t.Fatal("failed scenario lost its slot")
	}
}

func TestRankAndTable(t *testing.T) {
	scs, err := (Grid{
		Models:    []string{"resnet18"},
		Workloads: []string{"video-0", "video-1"},
		Platforms: []string{"clockwork"},
		N:         400,
	}).Expand()
	if err != nil {
		t.Fatal(err)
	}
	results := Run(scs, Options{})
	ranked, err := Rank(results, "p99")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i-1].Apparate.P99ms > ranked[i].Apparate.P99ms {
			t.Fatal("p99 ranking not ascending")
		}
	}
	if _, err := Rank(results, "bogus"); err == nil {
		t.Fatal("unknown rank metric accepted")
	}
	tab, err := Table(results, "throughput", 1)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(tab, "\n"); lines != 2 { // header + 1 row
		t.Fatalf("table with top=1 has %d lines, want 2", lines)
	}
}

func TestProgressCallback(t *testing.T) {
	scs, err := (Grid{
		Models:    []string{"resnet18"},
		Workloads: []string{"video-0"},
		Platforms: []string{"clockwork", "tf-serve"},
		N:         200,
	}).Expand()
	if err != nil {
		t.Fatal(err)
	}
	var calls int
	var last int
	Run(scs, Options{Workers: 2, Progress: func(done, total int) {
		calls++
		last = done
		if total != len(scs) {
			t.Fatalf("progress total %d, want %d", total, len(scs))
		}
	}})
	if calls != len(scs) || last != len(scs) {
		t.Fatalf("progress called %d times (last done=%d), want %d", calls, last, len(scs))
	}
}
