package sweep

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// obsGrid is a small mixed grid — single-replica, cluster, reliable,
// and faulty points — with both observability sinks on.
func obsGrid() Grid {
	return Grid{
		Models:    []string{"resnet18"},
		Workloads: []string{"video-0"},
		Platforms: []string{"clockwork"},
		Replicas:  []int{1, 2},
		Faults:    []string{"", "crash:r0@1000+400;loss=0.01"},
		Retries:   []string{"", "attempts=2"},
		Trace:     true,
		Timeline:  true,
		ObsTickMS: 200,
		N:         600,
		Seed:      11,
	}
}

// TestObsKnobsDoNotChangeIdentity pins the observability axiom at the
// grid level: a traced grid expands to the same scenarios, identities,
// and seeds as an untraced one.
func TestObsKnobsDoNotChangeIdentity(t *testing.T) {
	traced := obsGrid()
	plain := traced
	plain.Trace, plain.Timeline, plain.ObsTickMS = false, false, 0
	ts, err := traced.Expand()
	if err != nil {
		t.Fatal(err)
	}
	ps, err := plain.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != len(ps) {
		t.Fatalf("traced grid expands to %d scenarios, plain to %d", len(ts), len(ps))
	}
	for i := range ts {
		if ts[i].Identity() != ps[i].Identity() || ts[i].Seed != ps[i].Seed {
			t.Fatalf("scenario %d: traced (%s, seed %d) != plain (%s, seed %d)",
				i, ts[i].Identity(), ts[i].Seed, ps[i].Identity(), ps[i].Seed)
		}
		if !ts[i].Trace || !ts[i].Timeline || ts[i].ObsTickMS != 200 {
			t.Fatalf("scenario %d lost its observability knobs: %+v", i, ts[i])
		}
	}
}

// TestObsFilesDeterministicAcrossWorkers is the observability
// byte-identity gate: a traced sweep at 1 worker and at 8 workers must
// write identical trace and timeline files for every scenario.
func TestObsFilesDeterministicAcrossWorkers(t *testing.T) {
	scs, err := obsGrid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) < 4 {
		t.Fatalf("obs grid expanded to only %d scenarios", len(scs))
	}
	runTo := func(workers int) string {
		dir := t.TempDir()
		results := Run(scs, Options{Workers: workers, ObsDir: dir})
		for _, r := range results {
			if r.Err != "" {
				t.Fatalf("scenario %s failed: %s", r.Scenario.Key(), r.Err)
			}
		}
		return dir
	}
	d1, d8 := runTo(1), runTo(8)
	for i := range scs {
		for _, pat := range []string{"trace_%03d.jsonl", "timeline_%03d.csv"} {
			name := filepath.Join(d1, fmt.Sprintf(pat, i))
			b1, err := os.ReadFile(name)
			if err != nil {
				t.Fatalf("missing obs file for scenario %d: %v", i, err)
			}
			if len(b1) == 0 {
				t.Fatalf("obs file %s is empty", name)
			}
			b8, err := os.ReadFile(filepath.Join(d8, fmt.Sprintf(pat, i)))
			if err != nil {
				t.Fatal(err)
			}
			if string(b1) != string(b8) {
				t.Fatalf("obs file %s differs between -workers 1 and -workers 8", fmt.Sprintf(pat, i))
			}
		}
	}
}

// genObsGrid is a traced generative-KV grid: bounded and unbounded
// pools with prefix caching and chunked prefill.
func genObsGrid() Grid {
	return Grid{
		Models:        []string{"t5-large"},
		Workloads:     []string{"cnn-dailymail"},
		KVBlocks:      []int{0, 48},
		PrefixHits:    []float64{0, 0.4},
		PrefillChunks: []int{128},
		Trace:         true,
		Timeline:      true,
		ObsTickMS:     200,
		GenN:          12,
		Seed:          8,
	}
}

// TestGenObsFilesDeterministicAcrossWorkers extends the observability
// byte-identity gate to the generative path: traced KV sweeps at 1 and
// 8 workers write identical trace and timeline files.
func TestGenObsFilesDeterministicAcrossWorkers(t *testing.T) {
	scs, err := genObsGrid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) < 4 {
		t.Fatalf("gen obs grid expanded to only %d scenarios", len(scs))
	}
	for _, sc := range scs {
		if !sc.Generative() {
			t.Fatalf("scenario %s is not generative", sc.Key())
		}
		if !sc.Trace || !sc.Timeline {
			t.Fatalf("generative scenario %s lost its observability knobs", sc.Key())
		}
	}
	runTo := func(workers int) string {
		dir := t.TempDir()
		results := Run(scs, Options{Workers: workers, ObsDir: dir})
		for _, r := range results {
			if r.Err != "" {
				t.Fatalf("scenario %s failed: %s", r.Scenario.Key(), r.Err)
			}
		}
		return dir
	}
	d1, d8 := runTo(1), runTo(8)
	for i := range scs {
		for _, pat := range []string{"trace_%03d.jsonl", "timeline_%03d.csv"} {
			name := filepath.Join(d1, fmt.Sprintf(pat, i))
			b1, err := os.ReadFile(name)
			if err != nil {
				t.Fatalf("missing gen obs file for scenario %d: %v", i, err)
			}
			if len(b1) == 0 {
				t.Fatalf("gen obs file %s is empty", name)
			}
			b8, err := os.ReadFile(filepath.Join(d8, fmt.Sprintf(pat, i)))
			if err != nil {
				t.Fatal(err)
			}
			if string(b1) != string(b8) {
				t.Fatalf("gen obs file %s differs between -workers 1 and -workers 8", fmt.Sprintf(pat, i))
			}
		}
	}
}

// TestObsDirUnsetSkipsWriting checks a traced grid with no ObsDir still
// runs (sinks collected and discarded) and writes nothing.
func TestObsDirUnsetSkipsWriting(t *testing.T) {
	sc := core.Scenario{
		Model: "resnet18", Workload: "video-0", N: 300, Trace: true, Timeline: true,
	}.Normalize()
	results := Run([]core.Scenario{sc}, Options{Workers: 2})
	if results[0].Err != "" {
		t.Fatalf("traced scenario failed without ObsDir: %s", results[0].Err)
	}
	if results[0].Requests != 300 {
		t.Fatalf("Requests = %d, want 300", results[0].Requests)
	}
}
