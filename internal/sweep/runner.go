package sweep

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"repro/internal/core"
)

// Result is one sweep entry: the scenario's outcome, or the error that
// kept it from completing. Failed scenarios keep their slot so a sweep's
// output always has one row per expanded scenario.
type Result struct {
	core.Result
	Err string `json:"error,omitempty"`
}

// Options configures a sweep run.
type Options struct {
	// Workers bounds concurrent scenario executions; 0 means GOMAXPROCS.
	Workers int
	// Progress, when non-nil, is called after each scenario completes
	// with the number done so far and the total. Calls are serialized
	// but arrive in completion order, which varies run to run — use it
	// for progress display only, never for output.
	Progress func(done, total int)
	// ObsDir, when non-empty, writes each traced scenario's
	// observability output into that directory: trace_<idx>.jsonl when
	// the scenario's Trace knob is set, timeline_<idx>.csv when its
	// Timeline knob is set, where <idx> is the scenario's position in
	// the expanded (identity-sorted) slice. Index naming keeps the
	// filenames — and, with the per-scenario seeds, the file bytes —
	// identical for any worker count. The directory must exist.
	ObsDir string
}

// Run executes the scenarios on a bounded worker pool. Results are
// returned in scenario order, not completion order, and every scenario
// derives all randomness from its own seed, so the output is identical
// for any worker count.
func Run(scenarios []core.Scenario, opts Options) []Result {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	results := make([]Result, len(scenarios))
	if len(scenarios) == 0 {
		return results
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	done := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = runOne(scenarios[i], i, opts.ObsDir)
				if opts.Progress != nil {
					mu.Lock()
					done++
					opts.Progress(done, len(scenarios))
					mu.Unlock()
				}
			}
		}()
	}
	for i := range scenarios {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// runOne executes a single scenario, converting panics into per-scenario
// errors so one pathological grid point cannot take down a sweep. When
// the scenario asks for observability and obsDir is set, the sinks are
// written as idx-named files alongside the run.
func runOne(sc core.Scenario, idx int, obsDir string) (out Result) {
	defer func() {
		if r := recover(); r != nil {
			out = Result{Result: core.Result{Scenario: sc}, Err: fmt.Sprintf("panic: %v", r)}
		}
	}()
	if obsDir == "" || (!sc.Trace && !sc.Timeline) {
		res, err := core.RunScenario(sc)
		if err != nil {
			return Result{Result: core.Result{Scenario: sc}, Err: err.Error()}
		}
		return Result{Result: *res}
	}
	res, od, err := core.RunScenarioObs(sc)
	if err != nil {
		return Result{Result: core.Result{Scenario: sc}, Err: err.Error()}
	}
	if err := writeObs(od, obsDir, idx); err != nil {
		return Result{Result: *res, Err: err.Error()}
	}
	return Result{Result: *res}
}

// writeObs writes a scenario's observability sinks into dir under
// deterministic index-derived names.
func writeObs(od *core.ObsData, dir string, idx int) error {
	if od.Trace != nil {
		name := filepath.Join(dir, fmt.Sprintf("trace_%03d.jsonl", idx))
		if err := writeSink(name, od.Trace.WriteJSONL); err != nil {
			return err
		}
	}
	if od.Timeline != nil {
		name := filepath.Join(dir, fmt.Sprintf("timeline_%03d.csv", idx))
		if err := writeSink(name, od.Timeline.WriteCSV); err != nil {
			return err
		}
	}
	return nil
}

func writeSink(name string, write func(io.Writer) error) error {
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
