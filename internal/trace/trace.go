// Package trace generates request arrival processes: fixed-rate streams
// (video frames), Poisson arrivals (generative workloads, §4.1), and
// Microsoft-Azure-Functions-like (MAF) bursty traces used for the NLP
// classification workloads, following the methodology of §4.1.
//
// Every process is available in two forms: a pull-based Arrivals source
// that generates timestamps one at a time in O(1) memory (the form the
// streaming workload iterators consume), and a slice helper that
// materializes the first n timestamps for tests and small studies.
package trace

import (
	"math"

	"repro/internal/model"
	"repro/internal/rng"
)

// Arrivals is an unbounded stream of arrival timestamps in milliseconds,
// non-decreasing across calls. Implementations hold O(1) state (at most
// one second of buffered arrivals for the bursty MAF process), so a
// consumer that pulls n timestamps never materializes the trace.
type Arrivals interface {
	// Next returns the next arrival timestamp.
	Next() float64
}

// fixedRate emits arrivals at a constant period.
type fixedRate struct {
	period float64
	i      int
}

// NewFixedRate returns a constant-rate arrival source of qps requests
// per second (e.g., 30 fps video).
func NewFixedRate(qps float64) Arrivals {
	if qps <= 0 {
		panic("trace: FixedRate qps must be positive")
	}
	return &fixedRate{period: 1000 / qps}
}

func (f *fixedRate) Next() float64 {
	t := float64(f.i) * f.period
	f.i++
	return t
}

// FixedRate returns n arrival timestamps in milliseconds at a constant
// rate of qps requests per second.
func FixedRate(n int, qps float64) []float64 {
	return collect(NewFixedRate(qps), n)
}

// poisson emits arrivals from a homogeneous Poisson process.
type poisson struct {
	r         *rng.Rand
	ratePerMS float64
	t         float64
}

// NewPoisson returns a homogeneous Poisson arrival source with the given
// mean rate.
func NewPoisson(qps float64, r *rng.Rand) Arrivals {
	if qps <= 0 {
		panic("trace: Poisson qps must be positive")
	}
	return &poisson{r: r, ratePerMS: qps / 1000}
}

func (p *poisson) Next() float64 {
	p.t += p.r.Exp(p.ratePerMS)
	return p.t
}

// Poisson returns n arrival timestamps (ms) from a homogeneous Poisson
// process with the given mean rate.
func Poisson(n int, qps float64, r *rng.Rand) []float64 {
	return collect(NewPoisson(qps, r), n)
}

// maf emits arrivals from the bursty MAF-style process one second at a
// time: the per-second rate follows a mean-reverting AR(1) on the log
// scale with occasional multiplicative spikes, and arrivals within each
// second are Poisson at that second's rate. Only the current second's
// arrivals are buffered, so memory is O(peak per-second rate), not O(n).
type maf struct {
	r       *rng.Rand
	meanQPS float64
	statVar float64
	x       float64
	sec     int
	buf     []float64
	next    int
}

// MAF process parameters.
const (
	mafPhi      = 0.90 // AR(1) persistence of the log-rate
	mafSigma    = 0.28 // innovation scale
	mafSpikeP   = 0.01 // probability of a burst second
	mafSpikeMul = 3.0  // burst magnitude
)

// NewMAF returns a bursty, rate-modulated arrival source in the style of
// the Microsoft Azure Functions traces.
func NewMAF(meanQPS float64, r *rng.Rand) Arrivals {
	if meanQPS <= 0 {
		panic("trace: MAF meanQPS must be positive")
	}
	// Stationary variance of the AR(1); subtracting half of it keeps the
	// mean rate at meanQPS despite the lognormal modulation.
	return &maf{
		r:       r,
		meanQPS: meanQPS,
		statVar: mafSigma * mafSigma / (1 - mafPhi*mafPhi),
	}
}

func (m *maf) Next() float64 {
	for m.next >= len(m.buf) {
		m.fillSecond()
	}
	v := m.buf[m.next]
	m.next++
	return v
}

// fillSecond draws the next second's rate and its Poisson arrival batch.
// Uniform offsets within the second are sorted before use; seconds never
// interleave, so the emitted stream is globally sorted.
func (m *maf) fillSecond() {
	m.x = mafPhi*m.x + mafSigma*m.r.Norm()
	rate := m.meanQPS * math.Exp(m.x-m.statVar/2)
	if m.r.Bool(mafSpikeP) {
		rate *= mafSpikeMul
	}
	k := m.r.Poisson(rate)
	base := float64(m.sec) * 1000
	m.sec++
	m.buf = m.buf[:0]
	m.next = 0
	for i := 0; i < k; i++ {
		m.buf = append(m.buf, base+m.r.Float64()*1000)
	}
	insertionSort(m.buf)
}

// MAF returns n arrival timestamps (ms) following the bursty MAF-style
// process.
func MAF(n int, meanQPS float64, r *rng.Rand) []float64 {
	return collect(NewMAF(meanQPS, r), n)
}

// collect materializes the first n arrivals of a source.
func collect(a Arrivals, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = a.Next()
	}
	return out
}

// insertionSort sorts one second's arrival batch; batches are small and
// nearly random, and avoiding sort.Float64s keeps the hot path
// allocation-free.
func insertionSort(a []float64) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// TargetQPS returns a sustainable mean request rate for the model at its
// default SLO, mirroring the paper's snippet-selection criterion that
// vanilla serving should not drop more than 20% of requests (§4.1). The
// rate is a fixed fraction of the capacity at the largest batch size that
// still fits within the SLO.
func TargetQPS(m *model.Model) float64 {
	slo := m.SLO()
	b := 1
	for b < 64 && m.Latency(b+1) <= slo {
		b++
	}
	capacity := float64(b) / m.Latency(b) * 1000 // requests per second
	// MAF traces are bursty (~2× swings around the mean), so the
	// sustainable mean rate sits well below raw capacity.
	return 0.30 * capacity
}
