// Package trace generates request arrival processes: fixed-rate streams
// (video frames), Poisson arrivals (generative workloads, §4.1), and
// Microsoft-Azure-Functions-like (MAF) bursty traces used for the NLP
// classification workloads, following the methodology of §4.1.
package trace

import (
	"math"

	"repro/internal/model"
	"repro/internal/rng"
)

// FixedRate returns n arrival timestamps in milliseconds at a constant
// rate of qps requests per second (e.g., 30 fps video).
func FixedRate(n int, qps float64) []float64 {
	if qps <= 0 {
		panic("trace: FixedRate qps must be positive")
	}
	out := make([]float64, n)
	period := 1000 / qps
	for i := range out {
		out[i] = float64(i) * period
	}
	return out
}

// Poisson returns n arrival timestamps (ms) from a homogeneous Poisson
// process with the given mean rate.
func Poisson(n int, qps float64, r *rng.Rand) []float64 {
	if qps <= 0 {
		panic("trace: Poisson qps must be positive")
	}
	out := make([]float64, n)
	t := 0.0
	ratePerMS := qps / 1000
	for i := range out {
		t += r.Exp(ratePerMS)
		out[i] = t
	}
	return out
}

// MAF returns n arrival timestamps (ms) following a bursty,
// rate-modulated process in the style of the Microsoft Azure Functions
// traces: the per-second rate follows a mean-reverting AR(1) on the log
// scale with occasional multiplicative spikes, and arrivals within each
// second are Poisson at that second's rate.
func MAF(n int, meanQPS float64, r *rng.Rand) []float64 {
	if meanQPS <= 0 {
		panic("trace: MAF meanQPS must be positive")
	}
	const (
		phi      = 0.90 // AR(1) persistence of the log-rate
		sigma    = 0.28 // innovation scale
		spikeP   = 0.01 // probability of a burst second
		spikeMul = 3.0  // burst magnitude
	)
	// Stationary variance of the AR(1); subtracting half of it keeps the
	// mean rate at meanQPS despite the lognormal modulation.
	statVar := sigma * sigma / (1 - phi*phi)
	x := 0.0
	out := make([]float64, 0, n)
	sec := 0
	for len(out) < n {
		x = phi*x + sigma*r.Norm()
		rate := meanQPS * math.Exp(x-statVar/2)
		if r.Bool(spikeP) {
			rate *= spikeMul
		}
		k := r.Poisson(rate)
		base := float64(sec) * 1000
		for i := 0; i < k && len(out) < n; i++ {
			out = append(out, base+r.Float64()*1000)
		}
		sec++
	}
	// Arrivals within a second are unordered; sort by insertion since we
	// appended uniform offsets. A simple insertion pass suffices because
	// only same-second entries can be out of order.
	sortWithinSeconds(out)
	return out
}

// sortWithinSeconds sorts a nearly-sorted arrival slice (entries are out
// of order only within one-second windows) via insertion sort, which is
// O(n·k) for displacement k.
func sortWithinSeconds(a []float64) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// TargetQPS returns a sustainable mean request rate for the model at its
// default SLO, mirroring the paper's snippet-selection criterion that
// vanilla serving should not drop more than 20% of requests (§4.1). The
// rate is a fixed fraction of the capacity at the largest batch size that
// still fits within the SLO.
func TargetQPS(m *model.Model) float64 {
	slo := m.SLO()
	b := 1
	for b < 64 && m.Latency(b+1) <= slo {
		b++
	}
	capacity := float64(b) / m.Latency(b) * 1000 // requests per second
	// MAF traces are bursty (~2× swings around the mean), so the
	// sustainable mean rate sits well below raw capacity.
	return 0.30 * capacity
}
