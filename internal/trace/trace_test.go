package trace

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/rng"
)

func TestFixedRateSpacing(t *testing.T) {
	a := FixedRate(5, 30)
	if len(a) != 5 {
		t.Fatalf("len = %d, want 5", len(a))
	}
	want := 1000.0 / 30
	for i := 1; i < len(a); i++ {
		if math.Abs(a[i]-a[i-1]-want) > 1e-9 {
			t.Fatalf("spacing %v, want %v", a[i]-a[i-1], want)
		}
	}
}

func TestFixedRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FixedRate(0 qps) did not panic")
		}
	}()
	FixedRate(1, 0)
}

func TestPoissonMeanRate(t *testing.T) {
	r := rng.New(1)
	const n = 50000
	a := Poisson(n, 100, r)
	// Duration should be ~ n/rate seconds = 500s = 5e5 ms.
	dur := a[n-1] / 1000
	want := float64(n) / 100
	if math.Abs(dur-want) > 0.05*want {
		t.Fatalf("Poisson duration %vs, want ~%vs", dur, want)
	}
}

func TestPoissonSorted(t *testing.T) {
	a := Poisson(1000, 50, rng.New(2))
	if !sort.Float64sAreSorted(a) {
		t.Fatal("Poisson arrivals not sorted")
	}
}

func TestMAFSortedAndPositive(t *testing.T) {
	check := func(seed uint64) bool {
		a := MAF(2000, 80, rng.New(seed))
		if len(a) != 2000 {
			return false
		}
		if !sort.Float64sAreSorted(a) {
			return false
		}
		for _, v := range a {
			if v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMAFMeanRateApproximate(t *testing.T) {
	r := rng.New(3)
	const n = 100000
	a := MAF(n, 100, r)
	durSec := a[n-1] / 1000
	rate := float64(n) / durSec
	if rate < 60 || rate > 160 {
		t.Fatalf("MAF realized rate %v qps, want within [60,160] for mean 100", rate)
	}
}

func TestMAFBurstier(t *testing.T) {
	// The MAF trace must exhibit substantially higher inter-arrival
	// variability than Poisson at the same mean rate (burstiness).
	cv := func(a []float64) float64 {
		gaps := make([]float64, len(a)-1)
		sum := 0.0
		for i := 1; i < len(a); i++ {
			gaps[i-1] = a[i] - a[i-1]
			sum += gaps[i-1]
		}
		mean := sum / float64(len(gaps))
		varr := 0.0
		for _, g := range gaps {
			varr += (g - mean) * (g - mean)
		}
		varr /= float64(len(gaps))
		return math.Sqrt(varr) / mean
	}
	maf := MAF(30000, 100, rng.New(4))
	poi := Poisson(30000, 100, rng.New(4))
	if cv(maf) <= cv(poi) {
		t.Fatalf("MAF cv %v not burstier than Poisson cv %v", cv(maf), cv(poi))
	}
}

func TestTargetQPSSustainable(t *testing.T) {
	for _, m := range model.ClassificationModels() {
		qps := TargetQPS(m)
		if qps <= 0 {
			t.Errorf("%s: non-positive target qps", m.Name)
		}
		// The target must be below the single-stream capacity at the
		// largest SLO-respecting batch size.
		slo := m.SLO()
		b := 1
		for b < 64 && m.Latency(b+1) <= slo {
			b++
		}
		capacity := float64(b) / m.Latency(b) * 1000
		if qps >= capacity {
			t.Errorf("%s: target %v >= capacity %v", m.Name, qps, capacity)
		}
	}
}

func TestTargetQPSScalesDown(t *testing.T) {
	// Heavier models must get lower target rates.
	small := TargetQPS(model.Distilbert())
	big := TargetQPS(model.GPT2Medium())
	if big >= small {
		t.Fatalf("gpt2 target %v not below distilbert target %v", big, small)
	}
}
