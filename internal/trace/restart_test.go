package trace

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// The restartable-Arrivals contract: rebuilding a source from the same
// construction parameters (and an identically seeded generator) must
// replay the identical arrival sequence, timestamps must be
// non-decreasing, and the empirical rate must converge to the nominal
// rate. Cluster dispatch replay depends on the first property — every
// replica re-derives the same trace from a fresh iterator — and the
// autoscale planning pass depends on all three.

// arrivalSource names one constructor under test.
type arrivalSource struct {
	name string
	qps  float64 // nominal mean rate
	tol  float64 // relative tolerance on the empirical rate
	mk   func(r *rng.Rand) Arrivals
}

func sources() []arrivalSource {
	sched := func(spec string) Schedule {
		s, err := ParseSchedule(spec)
		if err != nil {
			panic(err)
		}
		return s
	}
	phases := sched("phases:10x1/10x4")
	sine := sched("sine:40/0.5/2")
	square := sched("square:30/0.5/3/0.25")
	return []arrivalSource{
		{"fixed-rate", 30, 0.01, func(r *rng.Rand) Arrivals { return NewFixedRate(30) }},
		{"poisson", 80, 0.10, func(r *rng.Rand) Arrivals { return NewPoisson(80, r) }},
		// The MAF rate modulation is heavy-tailed and autocorrelated, so
		// its empirical mean converges slowly; the wide tolerance checks
		// calibration, not burstiness.
		{"maf", 60, 0.35, func(r *rng.Rand) Arrivals { return NewMAF(60, r) }},
		{"scheduled-phases", 40 * phases.(*PhaseSchedule).MeanMult(), 0.10,
			func(r *rng.Rand) Arrivals { return NewScheduled(40, phases, r) }},
		{"scheduled-sine", 40 * sine.(*SineSchedule).MeanMult(), 0.10,
			func(r *rng.Rand) Arrivals { return NewScheduled(40, sine, r) }},
		{"scheduled-square", 40 * square.(*SquareSchedule).MeanMult(), 0.10,
			func(r *rng.Rand) Arrivals { return NewScheduled(40, square, r) }},
	}
}

func TestArrivalsRestartIdentical(t *testing.T) {
	const n = 20000
	for _, src := range sources() {
		for _, seed := range []uint64{1, 7, 12345} {
			a := collect(src.mk(rng.New(seed)), n)
			b := collect(src.mk(rng.New(seed)), n)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s seed %d: restart diverged at arrival %d: %v vs %v",
						src.name, seed, i, a[i], b[i])
				}
			}
		}
	}
}

func TestArrivalsNonDecreasing(t *testing.T) {
	const n = 20000
	for _, src := range sources() {
		a := collect(src.mk(rng.New(42)), n)
		for i := 1; i < n; i++ {
			if a[i] < a[i-1] {
				t.Fatalf("%s: arrivals not sorted at %d: %v after %v", src.name, i, a[i], a[i-1])
			}
		}
		if a[0] < 0 {
			t.Fatalf("%s: negative first arrival %v", src.name, a[0])
		}
	}
}

func TestArrivalsEmpiricalRate(t *testing.T) {
	const n = 50000
	for _, src := range sources() {
		a := collect(src.mk(rng.New(9)), n)
		span := a[n-1] - a[0]
		if span <= 0 {
			t.Fatalf("%s: degenerate span %v", src.name, span)
		}
		got := float64(n-1) / span * 1000
		if rel := math.Abs(got-src.qps) / src.qps; rel > src.tol {
			t.Fatalf("%s: empirical rate %.2f qps vs nominal %.2f (rel err %.3f > %.3f)",
				src.name, got, src.qps, rel, src.tol)
		}
	}
}

// TestScheduledTracksPhases checks that a scheduled source actually
// modulates: the per-phase empirical rates of a 1×/4× phase schedule
// differ by roughly the programmed ratio.
func TestScheduledTracksPhases(t *testing.T) {
	sched, err := ParseSchedule("phases:10x1/10x4")
	if err != nil {
		t.Fatal(err)
	}
	const base = 50.0
	src := NewScheduled(base, sched, rng.New(3))
	loCount, hiCount := 0, 0
	loSec, hiSec := 0.0, 0.0
	// 40 full cycles of 20 s each.
	limit := 40 * 20.0 * 1000
	for {
		ts := src.Next()
		if ts >= limit {
			break
		}
		phase := math.Mod(ts/1000, 20)
		if phase < 10 {
			loCount++
		} else {
			hiCount++
		}
	}
	loSec, hiSec = 40*10, 40*10
	loRate, hiRate := float64(loCount)/loSec, float64(hiCount)/hiSec
	if math.Abs(loRate-base)/base > 0.1 {
		t.Fatalf("low phase rate %.1f, want ~%.1f", loRate, base)
	}
	if math.Abs(hiRate-4*base)/(4*base) > 0.1 {
		t.Fatalf("high phase rate %.1f, want ~%.1f", hiRate, 4*base)
	}
}

func TestParseScheduleRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"phases:10x1/10x4",
		"phases:5x0.5/20x2/5x1",
		"sine:60/0.5/2",
		"square:30/0.5/4/0.25",
	} {
		s, err := ParseSchedule(spec)
		if err != nil {
			t.Fatalf("ParseSchedule(%q): %v", spec, err)
		}
		s2, err := ParseSchedule(s.String())
		if err != nil {
			t.Fatalf("reparse %q (from %q): %v", s.String(), spec, err)
		}
		for _, tt := range []float64{0, 0.5, 7, 12, 29.9, 61, 1000.25} {
			if s.Rate(tt) != s2.Rate(tt) {
				t.Fatalf("%q: round-tripped schedule disagrees at t=%v", spec, tt)
			}
		}
	}
	for _, bad := range []string{
		"phases:", "phases:10", "phases:0x1", "phases:10x-1", "phases:10x0",
		"sine:60/2/0.5", "sine:0/1/2", "square:30/0.5", "square:30/0.5/4/1.5",
		"diurnal:60/1/2", "nonsense",
	} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Fatalf("ParseSchedule(%q) unexpectedly succeeded", bad)
		}
	}
	if s, err := ParseSchedule(""); s != nil || err != nil {
		t.Fatalf("empty spec: got (%v, %v), want (nil, nil)", s, err)
	}
}
