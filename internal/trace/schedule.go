package trace

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/rng"
)

// Schedule is a deterministic time-varying rate profile: Rate reports
// the instantaneous rate multiplier at time t (seconds). Multipliers
// compose with a workload's native rate, so the same schedule drives a
// 30 fps video stream and a trace-derived NLP stream alike. Schedules
// are pure values — two schedules parsed from the same spec are
// interchangeable — which is what makes scheduled arrival sources
// restartable: rebuilding a source from (spec, base rate, seed) replays
// the identical arrival sequence.
type Schedule interface {
	// Rate returns the rate multiplier at time t in seconds (>= 0).
	Rate(tSec float64) float64
	// String returns the canonical spec the schedule parses back from.
	String() string
}

// Phase is one leg of a piecewise-constant schedule.
type Phase struct {
	DurSec float64 // phase length in seconds
	Mult   float64 // rate multiplier during the phase
}

// PhaseSchedule cycles through its phases forever: a
// piecewise-constant rate profile ("10 s at 1×, then 10 s at 4×, ...").
type PhaseSchedule struct {
	Phases []Phase
	total  float64
}

// NewPhaseSchedule builds a cycling piecewise schedule. Every phase
// needs a positive duration and a non-negative multiplier, and at least
// one phase must have a positive multiplier (an all-zero schedule would
// never produce an arrival).
func NewPhaseSchedule(phases []Phase) (*PhaseSchedule, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("trace: phase schedule needs at least one phase")
	}
	total, positive := 0.0, false
	for _, p := range phases {
		if p.DurSec <= 0 {
			return nil, fmt.Errorf("trace: phase duration %g must be positive", p.DurSec)
		}
		if p.Mult < 0 {
			return nil, fmt.Errorf("trace: phase multiplier %g must be non-negative", p.Mult)
		}
		if p.Mult > 0 {
			positive = true
		}
		total += p.DurSec
	}
	if !positive {
		return nil, fmt.Errorf("trace: phase schedule needs at least one positive multiplier")
	}
	return &PhaseSchedule{Phases: phases, total: total}, nil
}

// Rate returns the multiplier of the phase containing t (cycling).
func (s *PhaseSchedule) Rate(tSec float64) float64 {
	t := math.Mod(tSec, s.total)
	if t < 0 {
		t += s.total
	}
	for _, p := range s.Phases {
		if t < p.DurSec {
			return p.Mult
		}
		t -= p.DurSec
	}
	return s.Phases[len(s.Phases)-1].Mult
}

// PeriodSec returns the cycle length.
func (s *PhaseSchedule) PeriodSec() float64 { return s.total }

// MeanMult returns the duration-weighted mean multiplier over one cycle.
func (s *PhaseSchedule) MeanMult() float64 {
	sum := 0.0
	for _, p := range s.Phases {
		sum += p.DurSec * p.Mult
	}
	return sum / s.total
}

// String returns the canonical "phases:DURxMULT/..." spec.
func (s *PhaseSchedule) String() string {
	var b strings.Builder
	b.WriteString("phases:")
	for i, p := range s.Phases {
		if i > 0 {
			b.WriteByte('/')
		}
		fmt.Fprintf(&b, "%gx%g", p.DurSec, p.Mult)
	}
	return b.String()
}

// SineSchedule is a diurnal-style sinusoid oscillating between Min and
// Max with the given period, starting at the midpoint and rising.
type SineSchedule struct {
	PeriodSec float64
	Min, Max  float64
}

// Rate returns the sinusoidal multiplier at t.
func (s *SineSchedule) Rate(tSec float64) float64 {
	mid := (s.Min + s.Max) / 2
	amp := (s.Max - s.Min) / 2
	return mid + amp*math.Sin(2*math.Pi*tSec/s.PeriodSec)
}

// MeanMult returns the mean multiplier over one period.
func (s *SineSchedule) MeanMult() float64 { return (s.Min + s.Max) / 2 }

// String returns the canonical "sine:PERIOD/MIN/MAX" spec.
func (s *SineSchedule) String() string {
	return fmt.Sprintf("sine:%g/%g/%g", s.PeriodSec, s.Min, s.Max)
}

// SquareSchedule is a square-wave burst profile: each period spends
// Duty of its length at Hi and the rest at Lo, starting with the burst.
type SquareSchedule struct {
	PeriodSec float64
	Lo, Hi    float64
	Duty      float64
}

// Rate returns Hi during the burst fraction of each period, Lo after.
func (s *SquareSchedule) Rate(tSec float64) float64 {
	t := math.Mod(tSec, s.PeriodSec)
	if t < 0 {
		t += s.PeriodSec
	}
	if t < s.Duty*s.PeriodSec {
		return s.Hi
	}
	return s.Lo
}

// MeanMult returns the duty-weighted mean multiplier.
func (s *SquareSchedule) MeanMult() float64 {
	return s.Duty*s.Hi + (1-s.Duty)*s.Lo
}

// String returns the canonical "square:PERIOD/LO/HI/DUTY" spec.
func (s *SquareSchedule) String() string {
	return fmt.Sprintf("square:%g/%g/%g/%g", s.PeriodSec, s.Lo, s.Hi, s.Duty)
}

// ParseSchedule parses a schedule spec. Three forms are supported;
// tokens are '/'-separated so specs compose with comma-separated CLI
// lists:
//
//	phases:10x1/10x4        10 s at 1×, 10 s at 4×, cycling
//	sine:60/0.5/2           60 s period oscillating between 0.5× and 2×
//	square:30/0.5/4         30 s period, 4× burst for half of it, else 0.5×
//	square:30/0.5/4/0.25    as above with a 25% burst duty cycle
//
// The empty spec returns (nil, nil): no schedule.
func ParseSchedule(spec string) (Schedule, error) {
	if spec == "" {
		return nil, nil
	}
	kind, rest, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("trace: schedule spec %q needs a kind prefix (phases: | sine: | square:)", spec)
	}
	parts := strings.Split(rest, "/")
	switch kind {
	case "phases":
		phases := make([]Phase, 0, len(parts))
		for _, p := range parts {
			durS, multS, ok := strings.Cut(p, "x")
			if !ok {
				return nil, fmt.Errorf("trace: phase %q must be DURxMULT (e.g. 10x4)", p)
			}
			dur, err := strconv.ParseFloat(durS, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: phase duration %q: %v", durS, err)
			}
			mult, err := strconv.ParseFloat(multS, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: phase multiplier %q: %v", multS, err)
			}
			phases = append(phases, Phase{DurSec: dur, Mult: mult})
		}
		return NewPhaseSchedule(phases)
	case "sine":
		vals, err := parseFloats(spec, parts, 3, 3)
		if err != nil {
			return nil, err
		}
		s := &SineSchedule{PeriodSec: vals[0], Min: vals[1], Max: vals[2]}
		if s.PeriodSec <= 0 {
			return nil, fmt.Errorf("trace: sine period %g must be positive", s.PeriodSec)
		}
		if s.Min < 0 || s.Max <= 0 || s.Max < s.Min {
			return nil, fmt.Errorf("trace: sine range [%g, %g] must satisfy 0 <= min <= max, max > 0", s.Min, s.Max)
		}
		return s, nil
	case "square":
		vals, err := parseFloats(spec, parts, 3, 4)
		if err != nil {
			return nil, err
		}
		s := &SquareSchedule{PeriodSec: vals[0], Lo: vals[1], Hi: vals[2], Duty: 0.5}
		if len(vals) == 4 {
			s.Duty = vals[3]
		}
		if s.PeriodSec <= 0 {
			return nil, fmt.Errorf("trace: square period %g must be positive", s.PeriodSec)
		}
		if s.Lo < 0 || s.Hi <= 0 {
			return nil, fmt.Errorf("trace: square levels lo=%g hi=%g must satisfy lo >= 0, hi > 0", s.Lo, s.Hi)
		}
		if s.Duty <= 0 || s.Duty >= 1 {
			return nil, fmt.Errorf("trace: square duty %g must be in (0, 1)", s.Duty)
		}
		return s, nil
	}
	return nil, fmt.Errorf("trace: unknown schedule kind %q (want phases | sine | square)", kind)
}

func parseFloats(spec string, parts []string, min, max int) ([]float64, error) {
	if len(parts) < min || len(parts) > max {
		return nil, fmt.Errorf("trace: schedule spec %q wants %d-%d '/'-separated values, got %d", spec, min, max, len(parts))
	}
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: schedule value %q: %v", p, err)
		}
		out[i] = v
	}
	return out, nil
}

// scheduled emits arrivals from a rate-scheduled Poisson process, one
// second at a time like the MAF source: each second's arrival count is
// Poisson at baseQPS × Rate(mid-second), with uniform offsets inside
// the second. Only the current second is buffered, so memory is O(peak
// per-second rate) — the streaming pipeline's bound — and the emitted
// stream is globally sorted.
type scheduled struct {
	r       *rng.Rand
	baseQPS float64
	sched   Schedule
	sec     int
	buf     []float64
	next    int
}

// NewScheduled returns an arrival source whose rate follows
// baseQPS × sched.Rate(t). Randomness comes from r only, so rebuilding
// the source with an identically seeded generator replays the same
// sequence (the restartable-Arrivals contract).
func NewScheduled(baseQPS float64, sched Schedule, r *rng.Rand) Arrivals {
	if baseQPS <= 0 {
		panic("trace: Scheduled baseQPS must be positive")
	}
	if sched == nil {
		panic("trace: Scheduled needs a schedule")
	}
	return &scheduled{r: r, baseQPS: baseQPS, sched: sched}
}

func (s *scheduled) Next() float64 {
	for s.next >= len(s.buf) {
		s.fillSecond()
	}
	v := s.buf[s.next]
	s.next++
	return v
}

func (s *scheduled) fillSecond() {
	rate := s.baseQPS * s.sched.Rate(float64(s.sec)+0.5)
	k := s.r.Poisson(rate)
	base := float64(s.sec) * 1000
	s.sec++
	s.buf = s.buf[:0]
	s.next = 0
	for i := 0; i < k; i++ {
		s.buf = append(s.buf, base+s.r.Float64()*1000)
	}
	insertionSort(s.buf)
}

// Scheduled returns n arrival timestamps (ms) from the rate-scheduled
// Poisson process.
func Scheduled(n int, baseQPS float64, sched Schedule, r *rng.Rand) []float64 {
	return collect(NewScheduled(baseQPS, sched, r), n)
}
