// Package workload generates the request streams of §4.1: eight one-hour
// videos for CV classification, Amazon and IMDB review streams for NLP
// classification, and CNN/DailyMail and SQuAD sequences for generative
// serving. Each request carries an exitsim.Sample whose latent difficulty
// follows the temporal structure the paper identifies — high
// spatiotemporal continuity for video, weak continuity with category- and
// user-level regime shifts for NLP — because that structure is what makes
// continual adaptation necessary (Figure 5, Table 1).
//
// Streams are lazy: a Stream is a restartable generator, and Iter()
// returns a pull-based iterator that derives each request from the
// stream's seed on demand. Generating a million-request trace therefore
// costs O(1) memory; Materialize and Samples exist as compatibility
// shims for tests and small offline studies that want the whole slice.
package workload

import (
	"fmt"

	"repro/internal/exitsim"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Request is one classification inference request.
type Request struct {
	ID        int
	ArrivalMS float64
	Sample    exitsim.Sample
}

// Stream is a classification workload: a name, a calibration kind, a
// length, and a restartable request generator. Every Iter() call starts
// a fresh deterministic pass over the same trace, so a stream can be
// served any number of times (vanilla, Apparate, baselines) with
// identical requests and no materialized state.
type Stream struct {
	Name string
	Kind exitsim.Kind

	n int
	// gen returns a fresh generator closure; the closure is called once
	// per request, in order, and must be deterministic given the
	// stream's construction parameters.
	gen func() func(i int) Request
}

// NewStream builds a lazy stream from a generator factory. n is the
// request count; gen must return a closure producing request i on its
// i-th call.
func NewStream(name string, kind exitsim.Kind, n int, gen func() func(i int) Request) *Stream {
	return &Stream{Name: name, Kind: kind, n: n, gen: gen}
}

// FromSlice wraps an explicit request slice in a Stream, for tests and
// callers that build traces by hand.
func FromSlice(name string, kind exitsim.Kind, reqs []Request) *Stream {
	return NewStream(name, kind, len(reqs), func() func(i int) Request {
		return func(i int) Request { return reqs[i] }
	})
}

// Len returns the number of requests.
func (s *Stream) Len() int { return s.n }

// Iter returns a fresh iterator over the stream's requests in arrival
// order.
func (s *Stream) Iter() *Iter {
	return &Iter{next: s.gen(), n: s.n}
}

// Iter is a pull-based pass over one stream; obtain one with
// Stream.Iter.
type Iter struct {
	next func(i int) Request
	i    int
	n    int
}

// Next returns the next request, or ok=false when the stream is
// exhausted.
func (it *Iter) Next() (Request, bool) {
	if it.i >= it.n {
		return Request{}, false
	}
	r := it.next(it.i)
	it.i++
	return r, true
}

// Materialize generates the full request slice — the compatibility shim
// for callers that need random access. It costs O(n) memory; the
// serving simulators consume Iter instead.
func (s *Stream) Materialize() []Request {
	out := make([]Request, 0, s.n)
	it := s.Iter()
	for {
		r, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// Samples returns just the samples, in order.
func (s *Stream) Samples() []exitsim.Sample {
	return s.SamplePrefix(s.n)
}

// SamplePrefix returns the first n samples — the bootstrap-set helper
// that avoids materializing the whole trace when only a prefix is
// needed.
func (s *Stream) SamplePrefix(n int) []exitsim.Sample {
	if n > s.n {
		n = s.n
	}
	out := make([]exitsim.Sample, 0, n)
	it := s.Iter()
	for len(out) < n {
		r, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, r.Sample)
	}
	return out
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Video returns a synthetic video-analytics workload: frames arriving at
// a fixed rate whose difficulty follows a mean-reverting
// (Ornstein-Uhlenbeck) walk with scene regimes. Eight distinct videos
// (id 0–7) differ in base difficulty (day vs. night urban scenes) and
// regime volatility, mirroring the corpus of [12, 34].
func Video(id, frames int, fps float64, seed uint64) *Stream {
	return videoSched(id, frames, fps, seed, nil)
}

// videoScheduleSalt decorrelates a scheduled video's arrival rng from
// its sample rng (which is seeded with seed^id*0x9e37 and must stay
// byte-identical with and without a schedule).
const videoScheduleSalt = 0xa5f152c9b1e44d7b

// videoSched is Video with an optional arrival-rate schedule: a nil
// schedule keeps the fixed frame rate; otherwise arrivals follow a
// rate-scheduled Poisson process at fps × Rate(t) (a camera whose
// ingest rate tracks activity). Sample generation is untouched, so the
// restartable-iterator contract holds for both forms.
func videoSched(id, frames int, fps float64, seed uint64, sched trace.Schedule) *Stream {
	if id < 0 || id > 7 {
		panic(fmt.Sprintf("workload: video id %d out of [0,7]", id))
	}
	gen := func() func(i int) Request {
		r := rng.New(seed ^ uint64(id)*0x9e37)
		// Day scenes (even ids) are easier than night scenes (odd ids).
		baseMu := 0.22 + 0.05*float64(id%4)
		if id%2 == 1 {
			baseMu += 0.16
		}
		const (
			theta = 0.025 // mean reversion strength
			sigma = 0.018 // per-frame volatility
		)
		mu := baseMu
		bias := 0.0
		sceneStart := 0
		d := mu
		var arrivals trace.Arrivals
		if sched != nil {
			// The arrival stream is seeded from the video seed directly
			// rather than split off r: the native path draws nothing for
			// its fixed-rate arrivals, so drawing here would perturb the
			// scene/difficulty trace and confound load studies that
			// compare the same video with and without a schedule.
			arrivals = trace.NewScheduled(fps, sched, rng.New(seed^uint64(id)*0x9e37^videoScheduleSalt))
		} else {
			arrivals = trace.NewFixedRate(fps)
		}
		nextSwitch := 1500 + r.Intn(2000)
		return func(i int) Request {
			if i == nextSwitch {
				// Scene change: new regime mean; novel scenes carry a
				// transient miscalibration bias for ramps trained on
				// bootstrap data, fading as the scene's appearance becomes
				// familiar again.
				mu = clamp(baseMu+(r.Float64()-0.35)*0.3, 0.05, 0.9)
				if r.Bool(0.3) && i > frames/10 {
					bias = r.Float64() * 0.05
				} else {
					bias = 0
				}
				sceneStart = i
				nextSwitch = i + 1500 + r.Intn(2000)
			}
			frameBias := bias * (1 - float64(i-sceneStart)/600)
			if frameBias < 0 {
				frameBias = 0
			}
			d = clamp(d+theta*(mu-d)+sigma*r.Norm(), 0.02, 1.15)
			// Per-frame difficulty spikes: occluded or small objects make
			// some frames hard even in easy scenes, so deep ramps always
			// see a trickle of exits.
			df := d
			if r.Bool(0.12) {
				df = clamp(d+r.Float64()*0.35, 0.02, 1.15)
			}
			return Request{
				ID:        i,
				ArrivalMS: arrivals.Next(),
				Sample: exitsim.Sample{
					Difficulty: df,
					MatchU:     r.Float64(),
					Bias:       frameBias,
					NoiseKey:   r.Uint64(),
				},
			}
		}
	}
	return NewStream(fmt.Sprintf("video-%d", id), exitsim.KindVideo, frames, gen)
}

// Amazon returns the Amazon-reviews classification workload: requests
// ordered by product category, and within each category by frequent
// user, with MAF arrivals at meanQPS. Category changes shift the
// difficulty regime abruptly (weak continuity), and categories outside
// the bootstrap prefix carry miscalibration bias — the structure behind
// the paper's smaller NLP wins and frequent adaptation (§4.2).
func Amazon(n int, meanQPS float64, seed uint64) *Stream {
	return amazonSched(n, meanQPS, seed, nil)
}

// amazonSched is Amazon with an optional arrival-rate schedule
// replacing the native MAF process. The rng split feeding the arrival
// source is identical either way, so the difficulty stream is the same
// trace under either arrival process.
func amazonSched(n int, meanQPS float64, seed uint64, sched trace.Schedule) *Stream {
	gen := func() func(i int) Request {
		r := rng.New(seed)
		arrivals := scheduledOrNative(meanQPS, sched, r.Split())
		catMu := 0.0
		catBias := 0.0
		userOffset := 0.0
		catLeft, userLeft := 0, 0
		return func(i int) Request {
			if catLeft == 0 {
				catLeft = 2000 + r.Intn(8000)
				catMu = 0.22 + r.Float64()*0.33
				// Categories streamed after the bootstrap prefix may be
				// out-of-distribution for the trained ramps.
				if i > n/10 && r.Bool(0.3) {
					catBias = r.Float64() * 0.04
				} else {
					catBias = 0
				}
				userLeft = 0
			}
			if userLeft == 0 {
				userLeft = 20 + r.Intn(120)
				userOffset = r.Norm() * 0.08
			}
			d := clamp(catMu+userOffset+r.Norm()*0.17, 0.02, 1.2)
			catLeft--
			userLeft--
			return Request{
				ID:        i,
				ArrivalMS: arrivals.Next(),
				Sample: exitsim.Sample{
					Difficulty: d,
					MatchU:     r.Float64(),
					Bias:       catBias,
					NoiseKey:   r.Uint64(),
				},
			}
		}
	}
	return NewStream("amazon", exitsim.KindAmazon, n, gen)
}

// IMDB returns the IMDB movie-review workload streamed sentence by
// sentence: sentences within one review share the review's difficulty
// level (mild continuity), while consecutive reviews are unrelated.
func IMDB(n int, meanQPS float64, seed uint64) *Stream {
	return imdbSched(n, meanQPS, seed, nil)
}

// imdbSched is IMDB with an optional arrival-rate schedule replacing
// the native MAF process.
func imdbSched(n int, meanQPS float64, seed uint64, sched trace.Schedule) *Stream {
	gen := func() func(i int) Request {
		r := rng.New(seed)
		arrivals := scheduledOrNative(meanQPS, sched, r.Split())
		reviewMu := 0.0
		reviewBias := 0.0
		sentLeft := 0
		return func(i int) Request {
			if sentLeft == 0 {
				sentLeft = 3 + r.Intn(12)
				reviewMu = 0.14 + r.Float64()*0.5
				if i > n/10 && r.Bool(0.2) {
					reviewBias = r.Float64() * 0.04
				} else {
					reviewBias = 0
				}
			}
			d := clamp(reviewMu+r.Norm()*0.13, 0.02, 1.2)
			sentLeft--
			return Request{
				ID:        i,
				ArrivalMS: arrivals.Next(),
				Sample: exitsim.Sample{
					Difficulty: d,
					MatchU:     r.Float64(),
					Bias:       reviewBias,
					NoiseKey:   r.Uint64(),
				},
			}
		}
	}
	return NewStream("imdb", exitsim.KindIMDB, n, gen)
}

// Names lists every classification workload name in canonical order:
// the eight videos, then the two NLP streams.
func Names() []string {
	out := make([]string, 0, 10)
	for id := 0; id < 8; id++ {
		out = append(out, fmt.Sprintf("video-%d", id))
	}
	return append(out, "amazon", "imdb")
}

// GenNames lists every generative workload name in canonical order.
func GenNames() []string { return []string{"cnn-dailymail", "squad"} }

// IsGenerative reports whether the named workload drives the generative
// serving path (sequences and tokens) rather than classification
// requests.
func IsGenerative(name string) bool {
	return name == "cnn-dailymail" || name == "squad"
}

// IsVideo reports whether the named workload is one of the fixed-rate
// video streams (whose arrival rate is a frame rate, not a trace-derived
// QPS).
func IsVideo(name string) bool {
	var id int
	_, err := fmt.Sscanf(name, "video-%d", &id)
	return err == nil && id >= 0 && id <= 7
}

// scheduledOrNative picks the arrival source for an NLP workload: the
// native bursty MAF process, or a rate-scheduled Poisson process when a
// schedule is set. Both consume the same dedicated rng split, so the
// choice never perturbs the difficulty stream drawn from the parent.
func scheduledOrNative(meanQPS float64, sched trace.Schedule, r *rng.Rand) trace.Arrivals {
	if sched != nil {
		return trace.NewScheduled(meanQPS, sched, r)
	}
	return trace.NewMAF(meanQPS, r)
}

// ByName builds a named classification workload ("video-0".."video-7",
// "amazon", "imdb") with n requests at the given rate.
func ByName(name string, n int, qps float64, seed uint64) (*Stream, error) {
	return ByNameSched(name, n, qps, seed, nil)
}

// ByNameSched builds a named classification workload whose arrival rate
// follows the schedule — multipliers over the workload's native rate —
// instead of the native stationary process. A nil schedule is exactly
// ByName. Scheduled streams satisfy the same restartable-iterator
// contract: every Iter() replays the identical arrivals and samples.
func ByNameSched(name string, n int, qps float64, seed uint64, sched trace.Schedule) (*Stream, error) {
	switch name {
	case "amazon":
		return amazonSched(n, qps, seed, sched), nil
	case "imdb":
		return imdbSched(n, qps, seed, sched), nil
	}
	var id int
	if _, err := fmt.Sscanf(name, "video-%d", &id); err == nil && id >= 0 && id <= 7 {
		return videoSched(id, n, qps, seed, sched), nil
	}
	return nil, fmt.Errorf("workload: unknown workload %q", name)
}
