// Package workload generates the request streams of §4.1: eight one-hour
// videos for CV classification, Amazon and IMDB review streams for NLP
// classification, and CNN/DailyMail and SQuAD sequences for generative
// serving. Each request carries an exitsim.Sample whose latent difficulty
// follows the temporal structure the paper identifies — high
// spatiotemporal continuity for video, weak continuity with category- and
// user-level regime shifts for NLP — because that structure is what makes
// continual adaptation necessary (Figure 5, Table 1).
package workload

import (
	"fmt"

	"repro/internal/exitsim"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Request is one classification inference request.
type Request struct {
	ID        int
	ArrivalMS float64
	Sample    exitsim.Sample
}

// Stream is a complete classification workload: requests in arrival
// order.
type Stream struct {
	Name     string
	Kind     exitsim.Kind
	Requests []Request
}

// Len returns the number of requests.
func (s *Stream) Len() int { return len(s.Requests) }

// Samples returns just the samples, in order.
func (s *Stream) Samples() []exitsim.Sample {
	out := make([]exitsim.Sample, len(s.Requests))
	for i, r := range s.Requests {
		out[i] = r.Sample
	}
	return out
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Video returns a synthetic video-analytics workload: frames arriving at
// a fixed rate whose difficulty follows a mean-reverting
// (Ornstein-Uhlenbeck) walk with scene regimes. Eight distinct videos
// (id 0–7) differ in base difficulty (day vs. night urban scenes) and
// regime volatility, mirroring the corpus of [12, 34].
func Video(id, frames int, fps float64, seed uint64) *Stream {
	if id < 0 || id > 7 {
		panic(fmt.Sprintf("workload: video id %d out of [0,7]", id))
	}
	r := rng.New(seed ^ uint64(id)*0x9e37)
	// Day scenes (even ids) are easier than night scenes (odd ids).
	baseMu := 0.22 + 0.05*float64(id%4)
	if id%2 == 1 {
		baseMu += 0.16
	}
	const (
		theta = 0.025 // mean reversion strength
		sigma = 0.018 // per-frame volatility
	)
	mu := baseMu
	bias := 0.0
	sceneStart := 0
	d := mu
	arrivals := trace.FixedRate(frames, fps)
	reqs := make([]Request, frames)
	nextSwitch := 1500 + r.Intn(2000)
	for i := 0; i < frames; i++ {
		if i == nextSwitch {
			// Scene change: new regime mean; novel scenes carry a
			// transient miscalibration bias for ramps trained on
			// bootstrap data, fading as the scene's appearance becomes
			// familiar again.
			mu = clamp(baseMu+(r.Float64()-0.35)*0.3, 0.05, 0.9)
			if r.Bool(0.3) && i > frames/10 {
				bias = r.Float64() * 0.05
			} else {
				bias = 0
			}
			sceneStart = i
			nextSwitch = i + 1500 + r.Intn(2000)
		}
		frameBias := bias * (1 - float64(i-sceneStart)/600)
		if frameBias < 0 {
			frameBias = 0
		}
		d = clamp(d+theta*(mu-d)+sigma*r.Norm(), 0.02, 1.15)
		// Per-frame difficulty spikes: occluded or small objects make
		// some frames hard even in easy scenes, so deep ramps always
		// see a trickle of exits.
		df := d
		if r.Bool(0.12) {
			df = clamp(d+r.Float64()*0.35, 0.02, 1.15)
		}
		reqs[i] = Request{
			ID:        i,
			ArrivalMS: arrivals[i],
			Sample: exitsim.Sample{
				Difficulty: df,
				MatchU:     r.Float64(),
				Bias:       frameBias,
				NoiseKey:   r.Uint64(),
			},
		}
	}
	return &Stream{
		Name:     fmt.Sprintf("video-%d", id),
		Kind:     exitsim.KindVideo,
		Requests: reqs,
	}
}

// Amazon returns the Amazon-reviews classification workload: requests
// ordered by product category, and within each category by frequent
// user, with MAF arrivals at meanQPS. Category changes shift the
// difficulty regime abruptly (weak continuity), and categories outside
// the bootstrap prefix carry miscalibration bias — the structure behind
// the paper's smaller NLP wins and frequent adaptation (§4.2).
func Amazon(n int, meanQPS float64, seed uint64) *Stream {
	r := rng.New(seed)
	arrivals := trace.MAF(n, meanQPS, r.Split())
	reqs := make([]Request, 0, n)
	catMu := 0.0
	catBias := 0.0
	userOffset := 0.0
	catLeft, userLeft := 0, 0
	for i := 0; i < n; i++ {
		if catLeft == 0 {
			catLeft = 2000 + r.Intn(8000)
			catMu = 0.22 + r.Float64()*0.33
			// Categories streamed after the bootstrap prefix may be
			// out-of-distribution for the trained ramps.
			if i > n/10 && r.Bool(0.3) {
				catBias = r.Float64() * 0.04
			} else {
				catBias = 0
			}
			userLeft = 0
		}
		if userLeft == 0 {
			userLeft = 20 + r.Intn(120)
			userOffset = r.Norm() * 0.08
		}
		d := clamp(catMu+userOffset+r.Norm()*0.17, 0.02, 1.2)
		reqs = append(reqs, Request{
			ID:        i,
			ArrivalMS: arrivals[i],
			Sample: exitsim.Sample{
				Difficulty: d,
				MatchU:     r.Float64(),
				Bias:       catBias,
				NoiseKey:   r.Uint64(),
			},
		})
		catLeft--
		userLeft--
	}
	return &Stream{Name: "amazon", Kind: exitsim.KindAmazon, Requests: reqs}
}

// IMDB returns the IMDB movie-review workload streamed sentence by
// sentence: sentences within one review share the review's difficulty
// level (mild continuity), while consecutive reviews are unrelated.
func IMDB(n int, meanQPS float64, seed uint64) *Stream {
	r := rng.New(seed)
	arrivals := trace.MAF(n, meanQPS, r.Split())
	reqs := make([]Request, 0, n)
	reviewMu := 0.0
	reviewBias := 0.0
	sentLeft := 0
	for i := 0; i < n; i++ {
		if sentLeft == 0 {
			sentLeft = 3 + r.Intn(12)
			reviewMu = 0.14 + r.Float64()*0.5
			if i > n/10 && r.Bool(0.2) {
				reviewBias = r.Float64() * 0.04
			} else {
				reviewBias = 0
			}
		}
		d := clamp(reviewMu+r.Norm()*0.13, 0.02, 1.2)
		reqs = append(reqs, Request{
			ID:        i,
			ArrivalMS: arrivals[i],
			Sample: exitsim.Sample{
				Difficulty: d,
				MatchU:     r.Float64(),
				Bias:       reviewBias,
				NoiseKey:   r.Uint64(),
			},
		})
		sentLeft--
	}
	return &Stream{Name: "imdb", Kind: exitsim.KindIMDB, Requests: reqs}
}

// Names lists every classification workload name in canonical order:
// the eight videos, then the two NLP streams.
func Names() []string {
	out := make([]string, 0, 10)
	for id := 0; id < 8; id++ {
		out = append(out, fmt.Sprintf("video-%d", id))
	}
	return append(out, "amazon", "imdb")
}

// GenNames lists every generative workload name in canonical order.
func GenNames() []string { return []string{"cnn-dailymail", "squad"} }

// IsGenerative reports whether the named workload drives the generative
// serving path (sequences and tokens) rather than classification
// requests.
func IsGenerative(name string) bool {
	return name == "cnn-dailymail" || name == "squad"
}

// IsVideo reports whether the named workload is one of the fixed-rate
// video streams (whose arrival rate is a frame rate, not a trace-derived
// QPS).
func IsVideo(name string) bool {
	var id int
	_, err := fmt.Sscanf(name, "video-%d", &id)
	return err == nil && id >= 0 && id <= 7
}

// ByName builds a named classification workload ("video-0".."video-7",
// "amazon", "imdb") with n requests at the given rate.
func ByName(name string, n int, qps float64, seed uint64) (*Stream, error) {
	switch name {
	case "amazon":
		return Amazon(n, qps, seed), nil
	case "imdb":
		return IMDB(n, qps, seed), nil
	}
	var id int
	if _, err := fmt.Sscanf(name, "video-%d", &id); err == nil && id >= 0 && id <= 7 {
		return Video(id, n, qps, seed), nil
	}
	return nil, fmt.Errorf("workload: unknown workload %q", name)
}
