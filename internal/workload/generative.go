package workload

import (
	"fmt"

	"repro/internal/exitsim"
	"repro/internal/rng"
	"repro/internal/trace"
)

// GenRequest is one generative request: a prompt to prefill and a number
// of tokens to decode. Per-token difficulty is derived deterministically
// from SeqSeed by a TokenSampler.
type GenRequest struct {
	ID        int
	ArrivalMS float64
	PromptLen int
	GenLen    int
	SeqSeed   uint64
	// BaseDifficulty is the sequence's difficulty level around which
	// token difficulties fluctuate.
	BaseDifficulty float64
	// Bias is the sequence-level miscalibration bias.
	Bias float64
}

// GenStream is a generative workload: like Stream, a restartable lazy
// generator rather than a materialized slice.
type GenStream struct {
	Name string
	Kind exitsim.Kind

	n   int
	gen func() func(i int) GenRequest
}

// Len returns the number of requests.
func (s *GenStream) Len() int { return s.n }

// Iter returns a fresh iterator over the stream's requests in arrival
// order.
func (s *GenStream) Iter() *GenIter {
	return &GenIter{next: s.gen(), n: s.n}
}

// GenIter is a pull-based pass over one generative stream.
type GenIter struct {
	next func(i int) GenRequest
	i    int
	n    int
}

// Next returns the next request, or ok=false when exhausted.
func (it *GenIter) Next() (GenRequest, bool) {
	if it.i >= it.n {
		return GenRequest{}, false
	}
	r := it.next(it.i)
	it.i++
	return r, true
}

// Prefix materializes the first n requests — the bootstrap helper for
// policies tuned on a stream prefix (FREE's one-time tuning).
func (s *GenStream) Prefix(n int) []GenRequest {
	if n > s.n {
		n = s.n
	}
	out := make([]GenRequest, 0, n)
	it := s.Iter()
	for len(out) < n {
		r, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out
}

// Materialize generates the full request slice (compatibility shim).
func (s *GenStream) Materialize() []GenRequest { return s.Prefix(s.n) }

// GenFromSlice wraps an explicit request slice in a GenStream — the
// generative counterpart of FromSlice, for tests and custom traces.
// Requests must already be in arrival order.
func GenFromSlice(name string, kind exitsim.Kind, reqs []GenRequest) *GenStream {
	cp := append([]GenRequest(nil), reqs...)
	return &GenStream{Name: name, Kind: kind, n: len(cp), gen: func() func(i int) GenRequest {
		return func(i int) GenRequest { return cp[i] }
	}}
}

// TokenSampler produces the per-token samples of one sequence. Token
// difficulties follow an AR(1) around the sequence's base difficulty:
// auto-regressive generation gives tokens high continuity (§4.3), which
// is why generative adaptation closes most of the gap to optimal.
type TokenSampler struct {
	r    *rng.Rand
	mu   float64
	bias float64
	d    float64
}

// NewTokenSampler returns the sampler for a request. Sampling is
// deterministic given the request.
func NewTokenSampler(req GenRequest) *TokenSampler {
	return &TokenSampler{
		r:    rng.New(req.SeqSeed),
		mu:   req.BaseDifficulty,
		bias: req.Bias,
		d:    req.BaseDifficulty,
	}
}

// Next returns the sample for the next token.
func (t *TokenSampler) Next() exitsim.Sample {
	const (
		rho   = 0.85
		sigma = 0.06
	)
	t.d = clamp(t.mu+rho*(t.d-t.mu)+sigma*t.r.Norm(), 0.02, 1.2)
	return exitsim.Sample{
		Difficulty: t.d,
		MatchU:     t.r.Float64(),
		Bias:       t.bias,
		NoiseKey:   t.r.Uint64(),
	}
}

func genStream(name string, kind exitsim.Kind, n int, qps float64, seed uint64,
	promptLo, promptHi, genLo, genHi int, baseMu, muSpread float64) *GenStream {
	gen := func() func(i int) GenRequest {
		r := rng.New(seed)
		arrivals := trace.NewPoisson(qps, r.Split())
		return func(i int) GenRequest {
			// Sequences outside the bootstrap prefix can be
			// out-of-distribution for statically tuned ramps (topic drift):
			// some carry a miscalibration bias, and the topic mix drifts
			// harder over the stream — the structure that penalizes FREE's
			// one-time tuning (§4.4) while Apparate retunes.
			bias := 0.0
			if i > n/10 && r.Bool(0.15) {
				bias = r.Float64() * 0.04
			}
			drift := 0.30 * float64(i) / float64(n)
			return GenRequest{
				ID:             i,
				ArrivalMS:      arrivals.Next(),
				PromptLen:      promptLo + r.Intn(promptHi-promptLo+1),
				GenLen:         genLo + r.Intn(genHi-genLo+1),
				SeqSeed:        r.Uint64(),
				BaseDifficulty: clamp(baseMu+drift+(r.Float64()-0.5)*muSpread, 0.05, 1.0),
				Bias:           bias,
			}
		}
	}
	return &GenStream{Name: name, Kind: kind, n: n, gen: gen}
}

// CNNDailyMail returns the text-summarization workload: long prompts,
// medium-length abstractive summaries, Poisson arrivals configured to
// saturate resources (§4.1).
func CNNDailyMail(n int, qps float64, seed uint64) *GenStream {
	return genStream("cnn-dailymail", exitsim.KindCNNDailyMail, n, qps, seed,
		400, 800, 45, 90, 0.30, 0.30)
}

// SQuAD returns the question-answering workload: shorter prompts and
// short extractive answers.
func SQuAD(n int, qps float64, seed uint64) *GenStream {
	return genStream("squad", exitsim.KindSQuAD, n, qps, seed,
		120, 400, 4, 30, 0.28, 0.28)
}

// GenByName builds a named generative workload ("cnn-dailymail",
// "squad").
func GenByName(name string, n int, qps float64, seed uint64) (*GenStream, error) {
	switch name {
	case "cnn-dailymail":
		return CNNDailyMail(n, qps, seed), nil
	case "squad":
		return SQuAD(n, qps, seed), nil
	}
	return nil, fmt.Errorf("workload: unknown generative workload %q", name)
}
