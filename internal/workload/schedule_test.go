package workload

import (
	"math"
	"testing"

	"repro/internal/trace"
)

func mustSchedule(t *testing.T, spec string) trace.Schedule {
	t.Helper()
	s, err := trace.ParseSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestScheduledStreamsRestartable extends the restartable-iterator
// contract to scheduled workloads: two Iter() passes over the same
// scheduled stream must replay identical requests — arrivals AND
// samples — for every workload class. Cluster dispatch replay (and the
// autoscale planning pass) depend on this.
func TestScheduledStreamsRestartable(t *testing.T) {
	sched := mustSchedule(t, "phases:10x1/10x4")
	for _, name := range []string{"video-0", "amazon", "imdb"} {
		s, err := ByNameSched(name, 2000, 40, 9, sched)
		if err != nil {
			t.Fatal(err)
		}
		a, b := s.Iter(), s.Iter()
		for i := 0; i < 2000; i++ {
			ra, oka := a.Next()
			rb, okb := b.Next()
			if !oka || !okb {
				t.Fatalf("%s: iterator ended early at %d", name, i)
			}
			if ra != rb {
				t.Fatalf("%s: restarted pass diverged at request %d", name, i)
			}
		}
	}
}

// TestScheduledStreamKeepsSampleTrace checks that scheduling a
// workload changes only the arrival process: the difficulty trace must
// be the request-for-request trace of the unscheduled stream, because
// the scheduled arrival source never draws from the sample rng (NLP
// workloads hand it the split the MAF source would have consumed;
// video seeds it from the stream seed directly). Without this, a
// burst-absorption study would confound the load change with a
// different difficulty trace.
func TestScheduledStreamKeepsSampleTrace(t *testing.T) {
	sched := mustSchedule(t, "square:30/0.5/3")
	for _, name := range []string{"video-0", "amazon", "imdb"} {
		native, err := ByName(name, 1000, 40, 4)
		if err != nil {
			t.Fatal(err)
		}
		scheduled, err := ByNameSched(name, 1000, 40, 4, sched)
		if err != nil {
			t.Fatal(err)
		}
		a, b := native.Iter(), scheduled.Iter()
		arrivalsDiffer := false
		for i := 0; i < 1000; i++ {
			ra, _ := a.Next()
			rb, _ := b.Next()
			if ra.Sample != rb.Sample {
				t.Fatalf("%s: scheduling perturbed sample %d", name, i)
			}
			if ra.ArrivalMS != rb.ArrivalMS {
				arrivalsDiffer = true
			}
		}
		if !arrivalsDiffer {
			t.Fatalf("%s: schedule left the arrival process unchanged", name)
		}
	}
}

// TestScheduledStreamModulatesRate checks the end-to-end effect: a
// video stream under a 1x/4x phase schedule must put far more requests
// in the high phases than the low ones.
func TestScheduledStreamModulatesRate(t *testing.T) {
	s, err := ByNameSched("video-0", 6000, 30, 2, mustSchedule(t, "phases:10x1/10x4"))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 0, 0
	it := s.Iter()
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		if math.Mod(r.ArrivalMS/1000, 20) < 10 {
			lo++
		} else {
			hi++
		}
	}
	if hi < 3*lo {
		t.Fatalf("high phases got %d requests vs %d in low phases; want ~4x", hi, lo)
	}
}
