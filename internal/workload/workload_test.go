package workload

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/exitsim"
)

func TestVideoBasics(t *testing.T) {
	s := Video(0, 1000, 30, 1)
	if s.Len() != 1000 {
		t.Fatalf("len = %d, want 1000", s.Len())
	}
	if s.Kind != exitsim.KindVideo {
		t.Fatalf("kind = %v", s.Kind)
	}
	reqs := s.Materialize()
	if len(reqs) != 1000 {
		t.Fatalf("materialized %d requests, want 1000", len(reqs))
	}
	for i, r := range reqs {
		if r.ID != i {
			t.Fatalf("request %d has ID %d", i, r.ID)
		}
		if r.Sample.Difficulty < 0 || r.Sample.Difficulty > 1.2 {
			t.Fatalf("difficulty out of range: %v", r.Sample.Difficulty)
		}
	}
	// Fixed 30fps arrivals.
	if math.Abs(reqs[1].ArrivalMS-1000.0/30) > 1e-9 {
		t.Fatalf("frame spacing = %v", reqs[1].ArrivalMS)
	}
}

// TestIterMatchesMaterialize pins the streaming contract: a pull-based
// pass yields exactly the materialized trace, and a second Iter() call
// replays it from the start.
func TestIterMatchesMaterialize(t *testing.T) {
	for _, s := range []*Stream{Video(1, 800, 30, 3), Amazon(800, 100, 3), IMDB(800, 100, 3)} {
		reqs := s.Materialize()
		for pass := 0; pass < 2; pass++ {
			it := s.Iter()
			for i := 0; ; i++ {
				r, ok := it.Next()
				if !ok {
					if i != len(reqs) {
						t.Fatalf("%s pass %d: iterator ended at %d, want %d", s.Name, pass, i, len(reqs))
					}
					break
				}
				if r != reqs[i] {
					t.Fatalf("%s pass %d: request %d differs between Iter and Materialize", s.Name, pass, i)
				}
			}
		}
	}
}

func TestSamplePrefix(t *testing.T) {
	s := Amazon(2000, 100, 4)
	full := s.Samples()
	pre := s.SamplePrefix(100)
	if len(pre) != 100 {
		t.Fatalf("SamplePrefix len = %d", len(pre))
	}
	for i := range pre {
		if pre[i] != full[i] {
			t.Fatalf("SamplePrefix diverges at %d", i)
		}
	}
	if got := s.SamplePrefix(5000); len(got) != 2000 {
		t.Fatalf("SamplePrefix over length = %d, want 2000", len(got))
	}
}

func TestFromSlice(t *testing.T) {
	reqs := []Request{{ID: 0, ArrivalMS: 1}, {ID: 1, ArrivalMS: 2}}
	s := FromSlice("manual", exitsim.KindVideo, reqs)
	got := s.Materialize()
	if len(got) != 2 || got[0] != reqs[0] || got[1] != reqs[1] {
		t.Fatalf("FromSlice round-trip mismatch: %+v", got)
	}
}

func TestVideoDeterministic(t *testing.T) {
	a := Video(3, 500, 30, 7).Materialize()
	b := Video(3, 500, 30, 7).Materialize()
	for i := range a {
		if a[i].Sample != b[i].Sample {
			t.Fatalf("video not deterministic at request %d", i)
		}
	}
}

func TestVideosDiffer(t *testing.T) {
	a := Video(0, 100, 30, 1).Materialize()
	b := Video(1, 100, 30, 1).Materialize()
	same := 0
	for i := range a {
		if a[i].Sample.Difficulty == b[i].Sample.Difficulty {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("videos 0 and 1 share %d/100 difficulties", same)
	}
}

func TestVideoNightHarder(t *testing.T) {
	mean := func(s *Stream) float64 {
		sum := 0.0
		it := s.Iter()
		for {
			r, ok := it.Next()
			if !ok {
				break
			}
			sum += r.Sample.Difficulty
		}
		return sum / float64(s.Len())
	}
	day := mean(Video(0, 20000, 30, 5))
	night := mean(Video(1, 20000, 30, 5))
	if night <= day {
		t.Fatalf("night video (%.3f) not harder than day (%.3f)", night, day)
	}
}

func TestVideoTemporalContinuity(t *testing.T) {
	// Lag-1 autocorrelation of video difficulty must be high (the paper's
	// spatiotemporal-similarity argument), and much higher than Amazon's.
	autocorr := func(d []float64) float64 {
		n := len(d)
		mean := 0.0
		for _, v := range d {
			mean += v
		}
		mean /= float64(n)
		num, den := 0.0, 0.0
		for i := 0; i < n-1; i++ {
			num += (d[i] - mean) * (d[i+1] - mean)
		}
		for _, v := range d {
			den += (v - mean) * (v - mean)
		}
		return num / den
	}
	diffs := func(s *Stream) []float64 {
		out := make([]float64, s.Len())
		for i, r := range s.Materialize() {
			out[i] = r.Sample.Difficulty
		}
		return out
	}
	vid := autocorr(diffs(Video(0, 10000, 30, 9)))
	amz := autocorr(diffs(Amazon(10000, 100, 9)))
	// Per-frame difficulty spikes (occlusions) cap the raw lag-1
	// autocorrelation; the scene-level signal must still dominate.
	if vid < 0.5 {
		t.Fatalf("video autocorrelation %v < 0.5", vid)
	}
	if vid <= amz {
		t.Fatalf("video continuity (%v) not above amazon (%v)", vid, amz)
	}
}

func TestVideoIDRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Video(8,...) did not panic")
		}
	}()
	Video(8, 10, 30, 1)
}

func TestAmazonBasics(t *testing.T) {
	s := Amazon(5000, 100, 2)
	if s.Len() != 5000 || s.Kind != exitsim.KindAmazon {
		t.Fatalf("bad stream: len=%d kind=%v", s.Len(), s.Kind)
	}
	arr := make([]float64, s.Len())
	for i, r := range s.Materialize() {
		arr[i] = r.ArrivalMS
	}
	if !sort.Float64sAreSorted(arr) {
		t.Fatal("amazon arrivals not sorted")
	}
}

func TestAmazonBootstrapUnbiased(t *testing.T) {
	s := Amazon(20000, 100, 3)
	reqs := s.Materialize()
	for i := 0; i < s.Len()/10-1; i++ {
		if reqs[i].Sample.Bias != 0 {
			t.Fatalf("bootstrap-prefix request %d has bias %v", i, reqs[i].Sample.Bias)
		}
	}
	// Some later requests must carry bias (drift that forces retuning).
	biased := 0
	for _, r := range reqs[s.Len()/10:] {
		if r.Sample.Bias > 0 {
			biased++
		}
	}
	if biased == 0 {
		t.Fatal("no post-bootstrap bias anywhere in the stream")
	}
}

func TestIMDBSentenceContinuity(t *testing.T) {
	s := IMDB(5000, 100, 4)
	if s.Kind != exitsim.KindIMDB {
		t.Fatalf("kind = %v", s.Kind)
	}
	// Sentences of one review cluster: lag-1 absolute difficulty change
	// should be smaller than for a shuffled stream on average.
	d := make([]float64, s.Len())
	for i, r := range s.Materialize() {
		d[i] = r.Sample.Difficulty
	}
	adjacent := 0.0
	for i := 1; i < len(d); i++ {
		adjacent += math.Abs(d[i] - d[i-1])
	}
	adjacent /= float64(len(d) - 1)
	// Compare with distance between far-apart entries.
	far := 0.0
	for i := 0; i+100 < len(d); i++ {
		far += math.Abs(d[i] - d[i+100])
	}
	far /= float64(len(d) - 100)
	if adjacent >= far {
		t.Fatalf("IMDB adjacent diff %v not below far diff %v", adjacent, far)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"amazon", "imdb", "video-0", "video-7"} {
		s, err := ByName(name, 100, 50, 1)
		if err != nil || s.Len() != 100 {
			t.Fatalf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("yelp", 10, 1, 1); err == nil {
		t.Fatal("ByName accepted unknown workload")
	}
	if _, err := ByName("video-9", 10, 1, 1); err == nil {
		t.Fatal("ByName accepted out-of-range video")
	}
}

func TestSamplesAccessor(t *testing.T) {
	s := Amazon(50, 100, 5)
	samples := s.Samples()
	if len(samples) != 50 {
		t.Fatalf("Samples len = %d", len(samples))
	}
	reqs := s.Materialize()
	for i := range samples {
		if samples[i] != reqs[i].Sample {
			t.Fatal("Samples mismatch")
		}
	}
}

func TestGenStreams(t *testing.T) {
	for _, name := range []string{"cnn-dailymail", "squad"} {
		g, err := GenByName(name, 200, 2, 6)
		if err != nil {
			t.Fatal(err)
		}
		if g.Len() != 200 {
			t.Fatalf("%s len = %d", name, g.Len())
		}
		for _, r := range g.Materialize() {
			if r.PromptLen <= 0 || r.GenLen <= 0 {
				t.Fatalf("%s: non-positive lengths %+v", name, r)
			}
		}
	}
	if _, err := GenByName("xsum", 10, 1, 1); err == nil {
		t.Fatal("GenByName accepted unknown workload")
	}
}

func TestSQuADShorterThanCNN(t *testing.T) {
	cnn := CNNDailyMail(2000, 2, 7)
	sq := SQuAD(2000, 2, 7)
	meanGen := func(g *GenStream) float64 {
		sum := 0
		it := g.Iter()
		for {
			r, ok := it.Next()
			if !ok {
				break
			}
			sum += r.GenLen
		}
		return float64(sum) / float64(g.Len())
	}
	if meanGen(sq) >= meanGen(cnn) {
		t.Fatal("SQuAD generations not shorter than CNN/DailyMail")
	}
}

func TestTokenSamplerDeterministic(t *testing.T) {
	req := GenRequest{SeqSeed: 42, BaseDifficulty: 0.4, GenLen: 50}
	a, b := NewTokenSampler(req), NewTokenSampler(req)
	for i := 0; i < 50; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("token sampler diverged at token %d", i)
		}
	}
}

func TestTokenSamplerContinuity(t *testing.T) {
	// Token difficulties must be correlated within a sequence.
	check := func(seed uint64) bool {
		req := GenRequest{SeqSeed: seed, BaseDifficulty: 0.4}
		ts := NewTokenSampler(req)
		prev := ts.Next().Difficulty
		jumps := 0
		for i := 0; i < 100; i++ {
			d := ts.Next().Difficulty
			if math.Abs(d-prev) > 0.4 {
				jumps++
			}
			prev = d
		}
		return jumps < 5
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTokenSamplerBounds(t *testing.T) {
	req := GenRequest{SeqSeed: 9, BaseDifficulty: 0.9, Bias: 0.04}
	ts := NewTokenSampler(req)
	for i := 0; i < 500; i++ {
		s := ts.Next()
		if s.Difficulty < 0.02 || s.Difficulty > 1.2 {
			t.Fatalf("token difficulty out of range: %v", s.Difficulty)
		}
		if s.Bias != 0.04 {
			t.Fatalf("token bias %v, want 0.04", s.Bias)
		}
	}
}
