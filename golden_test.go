package repro

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sweep"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/ instead of comparing")

// goldenGrid is the pinned regression grid: a small fixed-seed sweep
// spanning both scenario classes (CV video, NLP trace), both metrics
// modes, and the load-dynamics axes (scheduled rates, autoscaling).
// Every quantity in the pipeline is deterministic, so its CSV output is
// byte-stable across runs and worker counts on a given architecture —
// any diff there is a behavior change, intended or not. Across
// architectures the Go spec permits different floating-point fusion
// (e.g. FMA on arm64), which can flip last-ulp bits in the
// full-precision CSV floats; the committed pin is generated on the CI
// architecture (linux/amd64), so refresh it there, not on a laptop of
// a different architecture.
func goldenGrid() sweep.Grid {
	return sweep.Grid{
		Models:    []string{"resnet18", "distilbert-base"},
		Workloads: []string{"video-0", "amazon"},
		Platforms: []string{"clockwork"},
		Metrics:   []string{"exact", "sketch"},
		// The exact-queue-state dispatch policies are pinned through the
		// autoscaled rows (dispatch collapses to round-robin at one fixed
		// replica, so the non-autoscaled half of the grid dedups).
		Dispatches:    []string{"round-robin", "least-loaded", "join-shortest-queue"},
		Heteros:       []string{"", "1,0.5"},
		RateSchedules: []string{"", "phases:20x1/20x3"},
		Autoscales:    []string{"", "1..4"},
		N:             800,
		Seed:          7,
	}
}

// goldenFaultGrid extends the pin to the fault/retry axes: one-shot
// crash and churn+delay+loss fault models, with and without
// retry/hedging, under both exact-queue-state dispatch policies. It is
// a separate grid (appended after the base rows) so the fault axes do
// not multiply the whole base product.
func goldenFaultGrid() sweep.Grid {
	return sweep.Grid{
		Models:     []string{"resnet18"},
		Workloads:  []string{"video-0"},
		Platforms:  []string{"clockwork"},
		Dispatches: []string{"round-robin", "least-loaded"},
		Replicas:   []int{2},
		Faults:     []string{"crash:r1@3000+2000", "mtbf:8000/1000;delaydist=exp:2;loss=0.002"},
		Retries:    []string{"", "attempts=3/hedge=95"},
		N:          800,
		Seed:       7,
	}
}

// goldenKVGrid extends the pin to the generative KV-block memory
// runtime: exit-rate (acc-loss) × KV-pressure (pool size) ×
// prefix-cache × chunked-prefill rows over the summarization workload.
// The interaction it quantifies is the paper's second dividend of early
// exits under memory-bounded admission — exit-heavy configurations
// finish sequences sooner, freeing KV blocks and shrinking queue_ms /
// preemptions at the same pool size — with tokens/sec, kv_util, and the
// preemption counters as the pinned observables.
func goldenKVGrid() sweep.Grid {
	return sweep.Grid{
		Models:        []string{"t5-large"},
		Workloads:     []string{"cnn-dailymail"},
		Platforms:     []string{"clockwork"},
		AccLosses:     []float64{0.01, 0.05},
		KVBlocks:      []int{0, 96},
		PrefixHits:    []float64{0, 0.5},
		PrefillChunks: []int{0, 128},
		GenN:          12,
		Seed:          7,
	}
}

// TestGoldenSweep is the regression gate the sweep substrate was built
// for: it runs the pinned grid (base rows plus the fault/retry and
// generative-KV rows) and byte-compares the CSV against
// testdata/golden_sweep.csv. When a change intentionally shifts
// results, refresh the pin with `make golden` and review the diff like
// any other code change.
func TestGoldenSweep(t *testing.T) {
	scenarios, err := goldenGrid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := goldenFaultGrid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	scenarios = append(scenarios, faulty...)
	kv, err := goldenKVGrid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	scenarios = append(scenarios, kv...)
	if len(scenarios) == 0 {
		t.Fatal("golden grid expanded to zero scenarios")
	}
	results := sweep.Run(scenarios, sweep.Options{Workers: 4})
	for _, r := range results {
		if r.Err != "" {
			t.Fatalf("golden scenario %s failed: %s", r.Scenario.Key(), r.Err)
		}
	}
	var buf bytes.Buffer
	if err := sweep.WriteCSV(&buf, results); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("testdata", "golden_sweep.csv")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d scenarios)", path, len(results))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file: %v (run `make golden` to create it)", err)
	}
	if bytes.Equal(buf.Bytes(), want) {
		return
	}
	t.Fatalf("sweep output diverged from %s:\n%s\nIf the change is intended, refresh with `make golden` and commit the diff.",
		path, firstDiff(want, buf.Bytes()))
}

// firstDiff renders the first differing line of the two CSV bodies.
func firstDiff(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("line %d:\n  golden: %s\n  got:    %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("golden has %d lines, got %d", len(wl), len(gl))
}
