package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exitsim"
	"repro/internal/model"
	"repro/internal/workload"
)

// BenchmarkGenKV measures the generative serving engine across the
// KV-block memory axes: the classic unbounded path (kv=off), a bounded
// pool with and without the prefix cache, and a deliberately saturated
// small pool with chunked prefill that realizes preemptions. Beyond
// ns/op, each case reports the engine's own observables (tok/s,
// kv_util, prefix_hits, preempts, queue_ms) so BENCH_gen.json records
// what the memory model did, not just what it cost. The kv=off row is
// the zero-cost-when-off gate for the KV runtime: it runs the pre-KV
// event path untouched.
func BenchmarkGenKV(b *testing.B) {
	const (
		n    = 200
		qps  = 6
		seed = 11
	)
	cases := []struct {
		name string
		cfg  core.Config
	}{
		{"kv=off", core.Config{}},
		{"kv=96/prefix=0", core.Config{KVBlocks: 96, Seed: seed}},
		{"kv=96/prefix=0.5", core.Config{KVBlocks: 96, PrefixHitRatio: 0.5, Seed: seed}},
		{"kv=48/prefix=0.5/chunk=256", core.Config{
			KVBlocks: 48, PrefixHitRatio: 0.5, PrefillChunkTokens: 256, Seed: seed,
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			g := core.NewGen(model.T5Large(), exitsim.KindCNNDailyMail, tc.cfg)
			b.ReportAllocs()
			b.ResetTimer()
			var last = g.Serve(workload.CNNDailyMail(n, qps, seed))
			for i := 1; i < b.N; i++ {
				last = g.Serve(workload.CNNDailyMail(n, qps, seed))
			}
			if last.Seqs != n {
				b.Fatalf("served %d sequences, want %d", last.Seqs, n)
			}
			b.ReportMetric(last.TokensPerSec, "tok/s")
			b.ReportMetric(last.KVUtil, "kv_util")
			b.ReportMetric(float64(last.PrefixHits), "prefix_hits")
			b.ReportMetric(float64(last.Preemptions), "preempts")
			b.ReportMetric(last.QueueMS, "queue_ms")
		})
	}
}
