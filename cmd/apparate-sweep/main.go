// Command apparate-sweep expands a scenario grid — the cartesian
// product of models, workloads, platforms, dispatch policies, replica
// counts, rate multipliers, ramp budgets, and accuracy constraints —
// and runs every scenario in parallel on a bounded worker pool, with
// deterministic per-scenario seeding: the same grid and seed produce
// byte-identical output at any worker count.
//
// Usage:
//
//	apparate-sweep -models resnet18,resnet50 -workloads video-0,video-1
//	apparate-sweep -workloads 'video-*' -platforms clockwork -rank p99
//	apparate-sweep -budgets 0.01,0.02,0.04 -out results.json
//	apparate-sweep -skip 'model=vgg*' -format csv -out results.csv
//	apparate-sweep -models resnet18 -workloads video-0 -obs-dir obs/   # per-scenario traces
//	apparate-sweep -cpuprofile cpu.pprof -memprofile mem.pprof
//	apparate-sweep -list            # print the expanded grid, don't run
//
// Axis flags take comma-separated values; empty axes expand to the full
// supported range (all compatible model/workload pairings, both
// platforms) or the paper's default parameter. -only and -skip take
// comma-separated glob patterns over axis tokens such as
// "model=resnet*" or "workload=video-3".
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/sweep"
)

func splitOn(s, sep string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, sep)
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func splitList(s string) []string { return splitOn(s, ",") }

// splitSemiList splits on semicolons — for axes whose values themselves
// contain commas, like hetero speed specs.
func splitSemiList(s string) []string { return splitOn(s, ";") }

// splitPipeList splits on pipes — for the faults axis, whose specs use
// both commas (delay-distribution parameters) and semicolons (clause
// separators) internally.
func splitPipeList(s string) []string { return splitOn(s, "|") }

// splitFilters splits -only/-skip pattern lists: on pipes when one is
// present (so patterns over semicolon-valued tokens like multi-clause
// fault specs stay intact — append a trailing '|' to force it for a
// single pattern), else on semicolons when one is present (patterns
// over comma-valued tokens like hetero=1,0.5 — trailing ';' forces
// it), else on commas.
func splitFilters(s string) []string {
	if strings.Contains(s, "|") {
		return splitPipeList(s)
	}
	if strings.Contains(s, ";") {
		return splitSemiList(s)
	}
	return splitList(s)
}

func splitInts(s, flagName string) []int {
	var out []int
	for _, p := range splitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			fatalf("-%s: bad value %q: %v", flagName, p, err)
		}
		out = append(out, v)
	}
	return out
}

func splitFloats(s, flagName string) []float64 {
	var out []float64
	for _, p := range splitList(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			fatalf("-%s: bad value %q: %v", flagName, p, err)
		}
		out = append(out, v)
	}
	return out
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		models     = flag.String("models", "", "comma-separated model names (default: entire zoo)")
		workloads  = flag.String("workloads", "", "comma-separated workloads (default: all; video-0..7, amazon, imdb, cnn-dailymail, squad)")
		platforms  = flag.String("platforms", "", "comma-separated platforms (default: clockwork,tf-serve)")
		dispatches = flag.String("dispatch", "", "comma-separated dispatch policies: round-robin | least-loaded | join-shortest-queue (default: round-robin)")
		replicas   = flag.String("replicas", "", "comma-separated replica counts (default: 1)")
		rates      = flag.String("rates", "", "comma-separated arrival-rate multipliers (default: 1)")
		budgets    = flag.String("budgets", "", "comma-separated ramp budgets (default: 0.02)")
		accLosses  = flag.String("acc-losses", "", "comma-separated accuracy-loss constraints (default: 0.01)")
		rules      = flag.String("exit-rules", "", "comma-separated exit rules (default: entropy)")
		metricsMd  = flag.String("metrics", "", "comma-separated recorder modes: exact | sketch (default: exact)")
		schedules  = flag.String("rate-schedule", "", "comma-separated arrival-rate schedules, e.g. 'phases:10x1/10x4,sine:60/0.5/2' (default: native stationary arrivals)")
		autoscales = flag.String("autoscale", "", "comma-separated replica-autoscaler specs, e.g. '1..4,1..4/window=2000' (default: fixed replicas)")
		heteros    = flag.String("hetero", "", "semicolon-separated replica-speed specs, e.g. '1,0.5;1,1,0.25' (default: homogeneous clusters)")
		faultsAx   = flag.String("faults", "", "pipe-separated fault-injection specs, e.g. 'crash:r1@2000+500|mtbf:8000/1000;delaydist=exp:2;loss=0.001' (default: reliable clusters)")
		retries    = flag.String("retry", "", "comma-separated dispatcher retry/hedging specs, e.g. 'attempts=3,attempts=2/hedge=95' (default: dispatch once)")
		kvBlocks   = flag.String("kv-blocks", "", "comma-separated generative KV-block pool sizes (0 = unbounded)")
		blockToks  = flag.String("block-tokens", "", "comma-separated tokens-per-KV-block values (0 = 16)")
		prefixHits = flag.String("prefix-hit", "", "comma-separated generative prefix-cache hit ratios in [0,1] (default: 0)")
		prefillChs = flag.String("prefill-chunk", "", "comma-separated chunked-prefill thresholds in prompt tokens (0 = monolithic)")
		n          = flag.Int("n", 4000, "requests per classification scenario")
		genN       = flag.Int("gen-n", 40, "sequences per generative scenario")
		seed       = flag.Uint64("seed", 1, "base seed; per-scenario seeds derive from it")
		only       = flag.String("only", "", "comma-separated include globs over axis tokens (e.g. 'model=resnet*,workload=video-0'); use ';' separators when a pattern contains commas (e.g. 'hetero=1,0.5;'), '|' when it contains semicolons (e.g. 'faults=mtbf:*;loss=*|')")
		skip       = flag.String("skip", "", "comma-separated exclude globs over axis tokens; ';' separators when a pattern contains commas, '|' when it contains semicolons")
		workers    = flag.Int("workers", 0, "concurrent scenario executions (0 = GOMAXPROCS)")
		shards     = flag.Int("shards", 0, "parallel engine shards inside each cluster scenario (round-robin replays, least-loaded/JSQ run the lookahead dispatcher, unsupported configs fall back serial; 0/1 = serial; output is byte-identical either way)")
		out        = flag.String("out", "", "write results to this file (format from -format)")
		format     = flag.String("format", "json", "output format for -out: json | csv")
		rank       = flag.String("rank", "p99", "table ranking metric: "+strings.Join(sweep.RankMetrics(), " | "))
		top        = flag.Int("top", 0, "show only the best N table rows (0 = all)")
		list       = flag.Bool("list", false, "print the expanded scenario grid and exit without running")
		quiet      = flag.Bool("quiet", false, "suppress progress output")
		obsDir     = flag.String("obs-dir", "", "write per-scenario observability files (trace_NNN.jsonl, timeline_NNN.csv) into this directory; enables both sinks unless -obs-trace/-obs-timeline narrows them")
		obsTrace   = flag.Bool("obs-trace", false, "with -obs-dir: write only the lifecycle traces")
		obsTimelin = flag.Bool("obs-timeline", false, "with -obs-dir: write only the gauge timelines")
		obsTick    = flag.Float64("obs-tick", 0, "timeline sampling period in virtual ms (0 = 100ms default)")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile (post-sweep) to this file")
	)
	flag.Parse()

	// -obs-dir alone turns on both sinks; the narrowing flags pick one.
	wantTrace, wantTimeline := *obsTrace, *obsTimelin
	if *obsDir != "" && !wantTrace && !wantTimeline {
		wantTrace, wantTimeline = true, true
	}
	if *obsDir == "" && (wantTrace || wantTimeline) {
		fatalf("-obs-trace/-obs-timeline need -obs-dir to write into")
	}

	grid := sweep.Grid{
		Models:        splitList(*models),
		Workloads:     splitList(*workloads),
		Platforms:     splitList(*platforms),
		Dispatches:    splitList(*dispatches),
		Replicas:      splitInts(*replicas, "replicas"),
		RateMults:     splitFloats(*rates, "rates"),
		Budgets:       splitFloats(*budgets, "budgets"),
		AccLosses:     splitFloats(*accLosses, "acc-losses"),
		ExitRules:     splitList(*rules),
		Metrics:       splitList(*metricsMd),
		RateSchedules: splitList(*schedules),
		Autoscales:    splitList(*autoscales),
		Heteros:       splitSemiList(*heteros),
		Faults:        splitPipeList(*faultsAx),
		Retries:       splitList(*retries),
		KVBlocks:      splitInts(*kvBlocks, "kv-blocks"),
		BlockTokens:   splitInts(*blockToks, "block-tokens"),
		PrefixHits:    splitFloats(*prefixHits, "prefix-hit"),
		PrefillChunks: splitInts(*prefillChs, "prefill-chunk"),
		N:             *n,
		GenN:          *genN,
		Seed:          *seed,
		Only:          splitFilters(*only),
		Skip:          splitFilters(*skip),
		Trace:         wantTrace,
		Timeline:      wantTimeline,
		ObsTickMS:     *obsTick,
	}
	// Reject bad output options before spending compute on the grid.
	if _, err := sweep.Rank(nil, *rank); err != nil {
		fatalf("%v", err)
	}
	if *out != "" && *format != "json" && *format != "csv" {
		fatalf("-format: want json or csv, got %q", *format)
	}

	scenarios, err := grid.Expand()
	if err != nil {
		fatalf("%v", err)
	}
	if len(scenarios) == 0 {
		fatalf("grid expanded to zero scenarios (filters too strict?)")
	}
	// Shards is an execution knob, not a grid axis: it never enters a
	// scenario's identity, so it is applied uniformly after expansion.
	for i := range scenarios {
		scenarios[i].Shards = *shards
	}
	if *list {
		for _, sc := range scenarios {
			fmt.Println(sc.Key())
		}
		fmt.Fprintf(os.Stderr, "%d scenarios\n", len(scenarios))
		return
	}

	if *obsDir != "" {
		if err := os.MkdirAll(*obsDir, 0o755); err != nil {
			fatalf("%v", err)
		}
	}
	stopProfiles := startProfiles(*cpuprofile, *memprofile)

	opts := sweep.Options{Workers: *workers, ObsDir: *obsDir}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "sweep: %d scenarios, %d workers\n", len(scenarios), effectiveWorkers(*workers, len(scenarios)))
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rsweep: %d/%d done", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	start := time.Now()
	results := sweep.Run(scenarios, opts)
	stopProfiles()
	if !*quiet {
		fmt.Fprintf(os.Stderr, "sweep: completed in %.1fs\n", time.Since(start).Seconds())
	}

	table, err := sweep.Table(results, *rank, *top)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Print(table)

	failed := 0
	for _, r := range results {
		if r.Err != "" {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "sweep: %d/%d scenarios failed\n", failed, len(results))
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		if *format == "json" {
			err = sweep.WriteJSON(f, results)
		} else {
			err = sweep.WriteCSV(f, results)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatalf("writing %s: %v", *out, err)
		}
		fmt.Fprintf(os.Stderr, "sweep: wrote %s (%s)\n", *out, *format)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// startProfiles begins CPU profiling and returns a stop function that
// also snapshots the heap; both paths are no-ops when unset. The stop
// runs right after the sweep so profiles capture scenario execution,
// not output formatting.
func startProfiles(cpu, mem string) func() {
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fatalf("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("%v", err)
		}
	}
	return func() {
		if cpu != "" {
			pprof.StopCPUProfile()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fatalf("%v", err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatalf("%v", err)
			}
			f.Close()
		}
	}
}

func effectiveWorkers(workers, scenarios int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > scenarios {
		workers = scenarios
	}
	return workers
}
