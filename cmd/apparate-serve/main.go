// Command apparate-serve runs one serving simulation: a model, a
// workload, a platform, and Apparate's two parameters, printing the
// latency distribution, accuracy, and adaptation activity against the
// vanilla baseline.
//
// Usage:
//
//	apparate-serve -model resnet50 -workload video-0 -n 12000
//	apparate-serve -model bert-base -workload amazon -platform tf-serve
//	apparate-serve -model t5-large -workload cnn-dailymail -n 500
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/exitsim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/serving"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		modelName = flag.String("model", "resnet50", "model name (see internal/model zoo)")
		wlName    = flag.String("workload", "video-0", "workload: video-0..7, amazon, imdb, cnn-dailymail, squad")
		n         = flag.Int("n", 12000, "number of requests (sequences for generative)")
		platform  = flag.String("platform", "clockwork", "serving platform: clockwork | tf-serve")
		budget    = flag.Float64("ramp-budget", 0.02, "ramp budget (fraction of worst-case latency)")
		accLoss   = flag.Float64("acc-loss", 0.01, "tolerable accuracy loss")
		seed      = flag.Uint64("seed", 1, "workload seed")
		fps       = flag.Float64("fps", 30, "frame rate for video workloads")
	)
	flag.Parse()

	m, err := model.ByName(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	cfg := core.Config{AccuracyConstraint: *accLoss, RampBudget: *budget}
	switch *platform {
	case "clockwork":
		cfg.Platform = serving.Clockwork
	case "tf-serve":
		cfg.Platform = serving.TFServe
	default:
		fmt.Fprintf(os.Stderr, "unknown platform %q\n", *platform)
		os.Exit(1)
	}

	if *wlName == "cnn-dailymail" || *wlName == "squad" {
		runGenerative(m, *wlName, *n, *seed, cfg)
		return
	}

	qps := *fps
	kind := exitsim.KindVideo
	switch *wlName {
	case "amazon":
		kind, qps = exitsim.KindAmazon, trace.TargetQPS(m)
	case "imdb":
		kind, qps = exitsim.KindIMDB, trace.TargetQPS(m)
	}
	stream, err := workload.ByName(*wlName, *n, qps, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	sys := core.New(m, kind, cfg)
	v := sys.ServeVanilla(stream)
	a := sys.Serve(stream)
	vl, al := v.Latencies(), a.Latencies()

	fmt.Printf("model=%s workload=%s n=%d platform=%s slo=%.1fms\n",
		m.Name, stream.Name, stream.Len(), *platform, sys.Opts.SLOms)
	fmt.Printf("%-10s %10s %10s %10s\n", "", "vanilla", "apparate", "win")
	for _, p := range []struct {
		name string
		q    float64
	}{{"p25", 25}, {"p50", 50}, {"p95", 95}} {
		vv, aa := vl.Percentile(p.q), al.Percentile(p.q)
		fmt.Printf("%-10s %9.1fms %9.1fms %9.1f%%\n", p.name, vv, aa, metrics.WinPercent(vv, aa))
	}
	fmt.Printf("accuracy   %10.2f%% %9.2f%%\n", v.Accuracy*100, a.Accuracy*100)
	fmt.Printf("throughput %8.1fqps %7.1fqps\n", v.ThroughputQPS, a.ThroughputQPS)
	ctl := sys.Controller()
	fmt.Printf("adaptation: %d threshold tuning rounds, %d ramp adjustment rounds, %d active ramps\n",
		ctl.TuneRounds, ctl.AdjustRounds, len(sys.Handler.Cfg.Active))
}

func runGenerative(m *model.Model, wlName string, n int, seed uint64, cfg core.Config) {
	stream, err := workload.GenByName(wlName, n, 2, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	kind := exitsim.KindCNNDailyMail
	if wlName == "squad" {
		kind = exitsim.KindSQuAD
	}
	g := core.NewGen(m, kind, cfg)
	v := g.ServeVanilla(stream)
	a := g.Serve(stream)
	vt, at := v.TPT(), a.TPT()
	fmt.Printf("model=%s workload=%s sequences=%d\n", m.Name, stream.Name, stream.Len())
	fmt.Printf("%-10s %10s %10s %10s\n", "TPT", "vanilla", "apparate", "win")
	for _, p := range []struct {
		name string
		q    float64
	}{{"p25", 25}, {"p50", 50}, {"p95", 95}} {
		vv, aa := vt.Percentile(p.q), at.Percentile(p.q)
		fmt.Printf("%-10s %9.2fms %9.2fms %9.1f%%\n", p.name, vv, aa, metrics.WinPercent(vv, aa))
	}
	fmt.Printf("sequence score: vanilla %.4f, apparate %.4f\n", v.MeanScore, a.MeanScore)
}
