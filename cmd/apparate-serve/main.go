// Command apparate-serve runs one serving scenario — a model, a
// workload, a platform, and Apparate's two parameters — printing the
// latency distribution, accuracy, and adaptation activity against the
// vanilla baseline. It is the single-scenario special case of the sweep
// engine: the same core.RunScenario entry point that apparate-sweep
// drives in parallel over a grid.
//
// Usage:
//
//	apparate-serve -model resnet50 -workload video-0 -n 12000
//	apparate-serve -model bert-base -workload amazon -platform tf-serve
//	apparate-serve -model bert-base -workload amazon -replicas 4 -dispatch least-loaded
//	apparate-serve -model t5-large -workload cnn-dailymail -n 500
//	apparate-serve -model resnet18 -workload video-0 -n 1000000 -metrics sketch
//	apparate-serve -model resnet50 -workload video-0 -trace run.jsonl -trace-chrome run.trace.json
//	apparate-serve -model resnet50 -workload video-0 -replicas 4 -timeline run.csv -obs-tick 50
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/metrics"
)

func main() {
	var (
		modelName = flag.String("model", "resnet50", "model name (see internal/model zoo)")
		wlName    = flag.String("workload", "video-0", "workload: video-0..7, amazon, imdb, cnn-dailymail, squad")
		n         = flag.Int("n", 12000, "number of requests (sequences for generative)")
		platform  = flag.String("platform", "clockwork", "serving platform: clockwork | tf-serve")
		dispatch  = flag.String("dispatch", "round-robin", "cluster dispatch policy: round-robin | least-loaded | join-shortest-queue")
		replicas  = flag.Int("replicas", 1, "replica count (replicas > 1 runs the cluster simulator)")
		rate      = flag.Float64("rate", 1, "arrival-rate multiplier over the workload's native rate (video: 30fps × rate)")
		budget    = flag.Float64("ramp-budget", 0.02, "ramp budget (fraction of worst-case latency)")
		accLoss   = flag.Float64("acc-loss", 0.01, "tolerable accuracy loss")
		exitRule  = flag.String("exit-rule", "", "exit rule override: entropy | windowed-K | patience-P")
		genSlots  = flag.Int("gen-slots", 0, "generative continuous-batching slots (0 = engine default)")
		genFlush  = flag.Int("gen-flush", 0, "generative pending-token flush threshold (0 = engine default)")
		kvBlocks  = flag.Int("kv-blocks", 0, "generative KV-block pool size; admission blocks and the youngest running sequence preempts when exhausted (0 = unbounded)")
		blockTok  = flag.Int("block-tokens", 0, "tokens per KV block (0 = 16; meaningful with -kv-blocks)")
		prefixHit = flag.Float64("prefix-hit", 0, "generative prefix-cache hit probability in [0,1]; hits skip prompt prefill")
		prefillCh = flag.Int("prefill-chunk", 0, "chunked-prefill threshold in prompt tokens; longer prompts prefill in chunks interleaved with decode (0 = monolithic)")
		metricsMd = flag.String("metrics", "exact", "latency recorder: exact | sketch (sketch = O(1) memory for huge -n)")
		schedule  = flag.String("rate-schedule", "", "time-varying arrival schedule, e.g. phases:10x1/10x4 | sine:60/0.5/2 | square:30/0.5/4 (empty = native arrivals)")
		autoscl   = flag.String("autoscale", "", "replica autoscaler spec, e.g. 1..4 or 1..4/window=2000/cool=6000 (empty = fixed -replicas)")
		hetero    = flag.String("hetero", "", "replica speed factors cycled over replica indexes, e.g. 1,0.5 (empty = homogeneous cluster)")
		faultSpec = flag.String("faults", "", "fault-injection spec, e.g. 'crash:r1@2000+500;mtbf:8000/1000;delaydist=lognormal:5,1;loss=0.001' (empty = reliable cluster)")
		retry     = flag.String("retry", "", "dispatcher retry/hedging spec, e.g. attempts=3 or attempts=2/hedge=95 (empty = dispatch once)")
		seed      = flag.Uint64("seed", 1, "workload seed")
		tracePath = flag.String("trace", "", "write the Apparate run's request-lifecycle trace as JSONL to this file")
		chromeP   = flag.String("trace-chrome", "", "write the trace in Chrome trace-event format (open in Perfetto or chrome://tracing)")
		timelineP = flag.String("timeline", "", "write the sampled gauge timeline as CSV to this file")
		obsTick   = flag.Float64("obs-tick", 0, "timeline sampling period in virtual ms (0 = 100ms default)")
		shards    = flag.Int("shards", 0, "parallel engine shards inside the scenario: round-robin clusters shard by replay, least-loaded/join-shortest-queue by the conservative-lookahead dispatcher; unsupported configs fall back serial and say so (0/1 = serial; output is byte-identical either way)")
	)
	flag.Parse()

	sc := core.Scenario{
		Model:        *modelName,
		Workload:     *wlName,
		Platform:     *platform,
		Dispatch:     *dispatch,
		Replicas:     *replicas,
		N:            *n,
		Seed:         *seed,
		RateMult:     *rate,
		RampBudget:   *budget,
		AccLoss:      *accLoss,
		ExitRule:     *exitRule,
		GenSlots:     *genSlots,
		GenFlush:     *genFlush,
		KVBlocks:     *kvBlocks,
		BlockTokens:  *blockTok,
		PrefixHit:    *prefixHit,
		PrefillChunk: *prefillCh,
		Metrics:      *metricsMd,
		RateSchedule: *schedule,
		Autoscale:    *autoscl,
		Hetero:       *hetero,
		Faults:       *faultSpec,
		Retry:        *retry,
		Trace:        *tracePath != "" || *chromeP != "",
		Timeline:     *timelineP != "",
		ObsTickMS:    *obsTick,
		Shards:       *shards,
	}
	if !sc.Trace && !sc.Timeline {
		res, err := core.RunScenario(sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		printResult(res)
		return
	}
	res, od, err := core.RunScenarioObs(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	printResult(res)
	if *tracePath != "" {
		writeSink(*tracePath, od.Trace.WriteJSONL)
		fmt.Fprintf(os.Stderr, "trace: wrote %s (%d events, JSONL)\n", *tracePath, od.Trace.Len())
	}
	if *chromeP != "" {
		writeSink(*chromeP, od.Trace.WriteChrome)
		fmt.Fprintf(os.Stderr, "trace: wrote %s (Chrome trace-event; open in Perfetto)\n", *chromeP)
	}
	if *timelineP != "" {
		writeSink(*timelineP, od.Timeline.WriteCSV)
		fmt.Fprintf(os.Stderr, "timeline: wrote %s (%d rows)\n", *timelineP, len(od.Timeline.Rows))
	}
}

func writeSink(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err == nil {
		err = write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func printResult(res *core.Result) {
	sc := res.Scenario
	if res.Generative {
		fmt.Printf("model=%s workload=%s sequences=%d\n", sc.Model, sc.Workload, res.Requests)
	} else {
		hetero := ""
		if sc.Hetero != "" {
			hetero = " hetero=" + sc.Hetero
		}
		fmt.Printf("model=%s workload=%s n=%d platform=%s dispatch=%s replicas=%d%s slo=%.1fms\n",
			sc.Model, sc.Workload, res.Requests, sc.Platform, sc.Dispatch, sc.Replicas, hetero, res.SLOms)
	}

	label := ""
	if res.Generative {
		label = "TPT"
	}
	fmt.Printf("%-10s %10s %10s %10s\n", label, "vanilla", "apparate", "win")
	rows := []struct {
		name string
		v, a float64
	}{
		{"p25", res.Vanilla.P25ms, res.Apparate.P25ms},
		{"p50", res.Vanilla.P50ms, res.Apparate.P50ms},
		{"p95", res.Vanilla.P95ms, res.Apparate.P95ms},
		{"p99", res.Vanilla.P99ms, res.Apparate.P99ms},
	}
	for _, r := range rows {
		fmt.Printf("%-10s %9.2fms %9.2fms %9.1f%%\n", r.name, r.v, r.a, metrics.WinPercent(r.v, r.a))
	}

	if res.Generative {
		fmt.Printf("sequence score: vanilla %.4f, apparate %.4f\n", res.Vanilla.Accuracy, res.Apparate.Accuracy)
		fmt.Printf("throughput: vanilla %.1f tok/s, apparate %.1f tok/s\n", res.Vanilla.Throughput, res.Apparate.Throughput)
		if sc.KVBlocks > 0 || sc.PrefixHit > 0 || sc.PrefillChunk > 0 {
			fmt.Printf("kv: util %.1f%%, %d prefix hits, %d preemptions, mean queue %.1fms\n",
				res.KVUtil*100, res.PrefixHits, res.Preemptions, res.QueueMS)
		}
	} else {
		fmt.Printf("accuracy   %10.2f%% %9.2f%%   (loss %.3f%%, constraint %.1f%%)\n",
			res.Vanilla.Accuracy*100, res.Apparate.Accuracy*100, res.AccDelta*100, sc.AccLoss*100)
		fmt.Printf("throughput %8.1fqps %7.1fqps\n", res.Vanilla.Throughput, res.Apparate.Throughput)
	}
	fmt.Printf("adaptation: %d threshold tuning rounds, %d ramp adjustment rounds, %d active ramps\n",
		res.TuneRounds, res.AdjustRounds, res.ActiveRamps)
	// Surface how -shards actually executed: a fallback ("serial:...")
	// must be distinguishable from a sharded run ("replay:N" /
	// "lookahead:N"), otherwise a silent no-op looks like parallelism.
	if sc.Shards > 1 && res.ApparateShardMode != "" {
		fmt.Printf("shards:     requested %d — vanilla %s, apparate %s\n",
			sc.Shards, res.VanillaShardMode, res.ApparateShardMode)
	}
	if res.PeakReplicas > 0 {
		fmt.Printf("autoscale:  %d scale-ups, %d scale-downs, peak %d replicas (spec %s)\n",
			res.ScaleUps, res.ScaleDowns, res.PeakReplicas, sc.Autoscale)
	}
	// The availability block prints only for fault/retry scenarios, in
	// the same aligned vanilla/apparate columns as the latency table.
	if sc.Faults != "" || sc.Retry != "" {
		fmt.Printf("goodput    %8.1fqps %7.1fqps   (delivered within SLO)\n",
			res.Vanilla.Goodput, res.Apparate.Goodput)
		fmt.Printf("downtime   %9.0fms %8.0fms   (per-replica sum / zero-live)\n",
			res.DowntimeMS, res.UnavailMS)
		fmt.Printf("faults:     %d crashes, %d lost, %d retries, %d hedges\n",
			res.Crashes, res.Lost, res.Retries, res.Hedges)
	}
}
