// Command apparate-trace generates and inspects workload and arrival
// traces: per-second arrival rates, difficulty statistics, and regime
// structure. Useful for understanding what the adaptation loops face.
//
// Usage:
//
//	apparate-trace -workload amazon -n 20000 -qps 30
//	apparate-trace -workload video-1 -n 12000
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/metrics"
	"repro/internal/workload"
)

func main() {
	var (
		wlName = flag.String("workload", "video-0", "workload: video-0..7, amazon, imdb")
		n      = flag.Int("n", 12000, "number of requests")
		qps    = flag.Float64("qps", 30, "mean arrival rate")
		seed   = flag.Uint64("seed", 1, "seed")
		binSec = flag.Float64("bin", 10, "histogram bin width in seconds")
	)
	flag.Parse()

	stream, err := workload.ByName(*wlName, *n, *qps, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	diff := metrics.NewDist(stream.Len())
	biased := 0
	for _, r := range stream.Requests {
		diff.Add(r.Sample.Difficulty)
		if r.Sample.Bias > 0 {
			biased++
		}
	}
	last := stream.Requests[stream.Len()-1].ArrivalMS
	fmt.Printf("workload=%s n=%d span=%.1fs realized_rate=%.1fqps\n",
		stream.Name, stream.Len(), last/1000, float64(stream.Len())/(last/1000))
	s := diff.Summarize()
	fmt.Printf("difficulty: p25=%.3f p50=%.3f p95=%.3f mean=%.3f\n", s.P25, s.Median, s.P95, s.Mean)
	fmt.Printf("biased requests: %.1f%%\n", float64(biased)/float64(stream.Len())*100)

	// Arrival-rate histogram over time bins.
	fmt.Println("\narrival rate over time:")
	bin := *binSec * 1000
	counts := map[int]int{}
	maxBin := 0
	for _, r := range stream.Requests {
		b := int(r.ArrivalMS / bin)
		counts[b]++
		if b > maxBin {
			maxBin = b
		}
	}
	step := 1
	if maxBin > 24 {
		step = maxBin / 24
	}
	for b := 0; b <= maxBin; b += step {
		total := 0
		for i := b; i < b+step && i <= maxBin; i++ {
			total += counts[i]
		}
		rate := float64(total) / (*binSec * float64(step))
		bar := int(rate / 2)
		if bar > 60 {
			bar = 60
		}
		fmt.Printf("%6.0fs %6.1fqps ", float64(b)*(*binSec), rate)
		for i := 0; i < bar; i++ {
			fmt.Print("#")
		}
		fmt.Println()
	}
}
