// Command apparate-trace generates and inspects workload and arrival
// traces: per-second arrival rates, difficulty statistics, and regime
// structure. Useful for understanding what the adaptation loops face.
//
// The trace is streamed from the workload iterator in a single pass:
// nothing is materialized, so inspecting a million-request trace costs
// the same memory as a thousand-request one (with -metrics sketch, the
// difficulty distribution is sketched too, keeping the whole run O(1)).
//
// Usage:
//
//	apparate-trace -workload amazon -n 20000 -qps 30
//	apparate-trace -workload video-1 -n 12000
//	apparate-trace -workload amazon -n 1000000 -qps 200 -metrics sketch
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	"repro/internal/metrics"
	"repro/internal/workload"
)

func main() {
	var (
		wlName = flag.String("workload", "video-0", "workload: video-0..7, amazon, imdb")
		n      = flag.Int("n", 12000, "number of requests")
		qps    = flag.Float64("qps", 30, "mean arrival rate")
		seed   = flag.Uint64("seed", 1, "seed")
		binSec = flag.Float64("bin", 10, "histogram bin width in seconds")
		mdName = flag.String("metrics", "exact", "difficulty recorder: exact | sketch (use sketch for -n in the millions)")
		cpu    = flag.String("cpuprofile", "", "write a pprof CPU profile of the streaming pass to this file")
	)
	flag.Parse()

	if *cpu != "" {
		f, err := os.Create(*cpu)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	mode, err := metrics.ParseMode(*mdName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	stream, err := workload.ByName(*wlName, *n, *qps, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// One streaming pass: difficulty stats, bias counts, and the
	// per-second arrival histogram accumulate as requests are generated.
	diff := metrics.NewRecorder(mode, stream.Len())
	biased := 0
	bin := *binSec * 1000
	counts := map[int]int{}
	maxBin := 0
	last := 0.0
	it := stream.Iter()
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		diff.Add(r.Sample.Difficulty)
		if r.Sample.Bias > 0 {
			biased++
		}
		b := int(r.ArrivalMS / bin)
		counts[b]++
		if b > maxBin {
			maxBin = b
		}
		last = r.ArrivalMS
	}

	fmt.Printf("workload=%s n=%d span=%.1fs realized_rate=%.1fqps\n",
		stream.Name, stream.Len(), last/1000, float64(stream.Len())/(last/1000))
	s := diff.Summarize()
	fmt.Printf("difficulty: p25=%.3f p50=%.3f p95=%.3f mean=%.3f\n", s.P25, s.Median, s.P95, s.Mean)
	fmt.Printf("biased requests: %.1f%%\n", float64(biased)/float64(stream.Len())*100)

	// Arrival-rate histogram over time bins.
	fmt.Println("\narrival rate over time:")
	step := 1
	if maxBin > 24 {
		step = maxBin / 24
	}
	for b := 0; b <= maxBin; b += step {
		total := 0
		for i := b; i < b+step && i <= maxBin; i++ {
			total += counts[i]
		}
		rate := float64(total) / (*binSec * float64(step))
		bar := int(rate / 2)
		if bar > 60 {
			bar = 60
		}
		fmt.Printf("%6.0fs %6.1fqps ", float64(b)*(*binSec), rate)
		for i := 0; i < bar; i++ {
			fmt.Print("#")
		}
		fmt.Println()
	}
}
