// Command apparate-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	apparate-bench -list
//	apparate-bench fig12 table2
//	apparate-bench -cpuprofile cpu.pprof fig12
//	apparate-bench all
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiment ids")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the experiments to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile (post-run) to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: apparate-bench [-list] <experiment-id>... | all\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = experiments.IDs()
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
	}
	for _, id := range args {
		start := time.Now()
		tables, err := experiments.Run(id)
		if err != nil {
			stopProfiles(*cpuprofile, *memprofile)
			fatal(err)
		}
		for _, t := range tables {
			fmt.Println(t.String())
		}
		fmt.Printf("(%s completed in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
	stopProfiles(*cpuprofile, *memprofile)
}

// stopProfiles finalizes whichever pprof outputs were requested.
func stopProfiles(cpu, mem string) {
	if cpu != "" {
		pprof.StopCPUProfile()
	}
	if mem != "" {
		f, err := os.Create(mem)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
