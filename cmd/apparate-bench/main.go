// Command apparate-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	apparate-bench -list
//	apparate-bench fig12 table2
//	apparate-bench -cpuprofile cpu.pprof fig12
//	apparate-bench -count 10 fig12 | tee old.txt   # benchstat old.txt new.txt
//	apparate-bench all
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiment ids")
	count := flag.Int("count", 0, "repeat each experiment N times, emitting one benchstat-compatible line per iteration instead of the tables")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the experiments to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile (post-run) to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: apparate-bench [-list] <experiment-id>... | all\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = experiments.IDs()
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
	}
	if *count > 0 {
		benchstatRun(args, *count)
		stopProfiles(*cpuprofile, *memprofile)
		return
	}
	for _, id := range args {
		start := time.Now()
		tables, err := experiments.Run(id)
		if err != nil {
			stopProfiles(*cpuprofile, *memprofile)
			fatal(err)
		}
		for _, t := range tables {
			fmt.Println(t.String())
		}
		fmt.Printf("(%s completed in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
	stopProfiles(*cpuprofile, *memprofile)
}

// benchstatRun times each experiment count times and prints results in
// the `go test -bench` text format, so two runs pipe straight into
// benchstat for a statistically sound before/after comparison:
//
//	apparate-bench -count 10 fig12 > old.txt
//	<make changes>
//	apparate-bench -count 10 fig12 > new.txt
//	benchstat old.txt new.txt
//
// Tables are suppressed; each iteration is one Benchmark line.
func benchstatRun(ids []string, count int) {
	fmt.Printf("goos: %s\n", runtime.GOOS)
	fmt.Printf("goarch: %s\n", runtime.GOARCH)
	fmt.Printf("pkg: repro/internal/experiments\n")
	fmt.Printf("cpu: GOMAXPROCS=%d\n", runtime.GOMAXPROCS(0))
	for _, id := range ids {
		for i := 0; i < count; i++ {
			start := time.Now()
			if _, err := experiments.Run(id); err != nil {
				fatal(err)
			}
			fmt.Printf("BenchmarkExperiment/%s \t       1\t%d ns/op\n", id, time.Since(start).Nanoseconds())
		}
	}
}

// stopProfiles finalizes whichever pprof outputs were requested.
func stopProfiles(cpu, mem string) {
	if cpu != "" {
		pprof.StopCPUProfile()
	}
	if mem != "" {
		f, err := os.Create(mem)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
