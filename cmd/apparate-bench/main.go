// Command apparate-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	apparate-bench -list
//	apparate-bench fig12 table2
//	apparate-bench all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiment ids")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: apparate-bench [-list] <experiment-id>... | all\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = experiments.IDs()
	}
	for _, id := range args {
		start := time.Now()
		tables, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t.String())
		}
		fmt.Printf("(%s completed in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
}
