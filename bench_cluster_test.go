package repro

import (
	"fmt"
	"testing"

	"repro/internal/model"
	"repro/internal/serving"
	"repro/internal/workload"
)

// BenchmarkClusterScaling measures RunCluster's cost as the replica
// count grows with the aggregate arrival rate (per-replica load held
// constant): 100k requests over 1, 4, and 16 replicas under both
// dispatch policies. The per-replica trace-replay design paid
// O(replicas × trace) — every replica re-generated and re-filtered the
// full stream — so its wall time grew with the replica count even at
// fixed per-replica work; the single-pass event engine visits each
// request once (O(trace × log replicas)). Before/after numbers live in
// BENCH_cluster.json.
//
// Round-robin multi-replica cases also run with shards=4: the same
// scenario split over four parallel engine loops with a deterministic
// merge. Sharded results are byte-identical to serial (pinned by
// TestShardedClusterByteIdentity); the benchmark row records what the
// parallelism buys in wall-clock on the benchmarking machine.
func BenchmarkClusterScaling(b *testing.B) {
	const n = 100_000
	m := model.ResNet18()
	for _, disp := range []serving.Dispatch{serving.RoundRobin, serving.LeastLoaded} {
		for _, replicas := range []int{1, 4, 16} {
			shardCounts := []int{0}
			if disp == serving.RoundRobin && replicas > 1 {
				shardCounts = []int{0, 4}
			}
			for _, shards := range shardCounts {
				name := fmt.Sprintf("dispatch=%s/replicas=%d", disp, replicas)
				if shards > 0 {
					name += fmt.Sprintf("/shards=%d", shards)
				}
				b.Run(name, func(b *testing.B) {
					s := workload.Video(0, n, 30*float64(replicas), 9)
					opts := serving.ClusterOptions{
						Options:  serving.Options{Platform: serving.Clockwork, SLOms: m.SLO()},
						Replicas: replicas,
						Dispatch: disp,
						Shards:   shards,
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						cs := serving.RunCluster(s, func(int) serving.Handler {
							return &serving.VanillaHandler{Model: m}
						}, opts)
						if cs.Merged.Total != n {
							b.Fatalf("cluster served %d requests, want %d", cs.Merged.Total, n)
						}
					}
				})
			}
		}
	}
}
