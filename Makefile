GO ?= go

.PHONY: build test vet race bench sweep-smoke mem-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass over the concurrent sweep engine (and the layers
# it drives).
race:
	$(GO) test -race ./internal/sweep ./internal/serving ./internal/core

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# A 24+-scenario mixed grid at -workers 8, then the determinism gate:
# the same grid at -workers 1 must emit byte-identical JSON.
SMOKE_FLAGS = -models resnet18,resnet50,vgg11,distilbert-base,bert-base,t5-large \
	-workloads video-0,video-1,amazon,imdb,cnn-dailymail \
	-budgets 0.01,0.02 -n 1500 -gen-n 10 -seed 1 -quiet

sweep-smoke:
	$(GO) run ./cmd/apparate-sweep $(SMOKE_FLAGS) -workers 8 -out /tmp/sweep-w8.json
	$(GO) run ./cmd/apparate-sweep $(SMOKE_FLAGS) -workers 1 -out /tmp/sweep-w1.json >/dev/null
	cmp /tmp/sweep-w1.json /tmp/sweep-w8.json
	$(GO) run ./cmd/apparate-sweep $(SMOKE_FLAGS) -metrics sketch -workers 8 -out /tmp/sweep-sk-w8.json >/dev/null
	$(GO) run ./cmd/apparate-sweep $(SMOKE_FLAGS) -metrics sketch -workers 1 -out /tmp/sweep-sk-w1.json >/dev/null
	cmp /tmp/sweep-sk-w1.json /tmp/sweep-sk-w8.json
	@echo "sweep-smoke: deterministic across worker counts (exact + sketch)"

# Memory guard: one 1,000,000-request scenario in sketch mode must
# complete under a 256 MiB soft heap limit with a bounded live heap —
# the streaming pipeline's O(1)-memory claim, enforced.
mem-smoke:
	GOMEMLIMIT=256MiB APPARATE_MEM_GUARD=1 $(GO) test -run TestStreamingMillionBoundedMemory -v .

ci: build test vet race sweep-smoke mem-smoke
