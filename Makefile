GO ?= go

.PHONY: build test vet race bench bench-cluster bench-faults bench-obs sweep-smoke mem-smoke golden ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass over the concurrent sweep engine (and the layers
# it drives: the event engine, the cluster runtime, the autoscaled
# path, and the observability sinks sweep workers write in parallel).
race:
	$(GO) test -race ./internal/sweep/... ./internal/serving/... ./internal/autoscale/... ./internal/core/... ./internal/engine/... ./internal/faults/... ./internal/obs/...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Cluster-scaling benchmark (replicas 1/4/16 at constant per-replica
# load, 100k requests) emitted as BENCH_cluster.json. The historical
# pre-engine per-replica-replay numbers are inlined below so
# regenerating the file preserves the before/after trajectory.
define BENCH_CLUSTER_BEFORE
  "before_engine_refactor": {
    "commit": "a4687a6 (per-replica dispatch replay: O(replicas x trace) work)",
    "machine": "Intel Xeon @ 2.10GHz, go1.24, linux/amd64",
    "results": [
      {"case": "dispatch=round-robin/replicas=1", "iters": 5, "ns_per_op": 21682353, "bytes_per_op": 9770488, "allocs_per_op": 99985},
      {"case": "dispatch=round-robin/replicas=4", "iters": 5, "ns_per_op": 43114198, "bytes_per_op": 10566364, "allocs_per_op": 99901},
      {"case": "dispatch=round-robin/replicas=16", "iters": 5, "ns_per_op": 121495048, "bytes_per_op": 11595276, "allocs_per_op": 99502},
      {"case": "dispatch=least-loaded/replicas=1", "iters": 5, "ns_per_op": 22133416, "bytes_per_op": 9770512, "allocs_per_op": 99988},
      {"case": "dispatch=least-loaded/replicas=4", "iters": 5, "ns_per_op": 45133739, "bytes_per_op": 9879712, "allocs_per_op": 100039},
      {"case": "dispatch=least-loaded/replicas=16", "iters": 5, "ns_per_op": 197858673, "bytes_per_op": 11004793, "allocs_per_op": 100114}
    ]
  },
endef
export BENCH_CLUSTER_BEFORE

bench-cluster:
	$(GO) test -run '^$$' -bench BenchmarkClusterScaling -benchtime 5x . | tee /tmp/bench_cluster.txt
	@printf '{\n  "description": "BenchmarkClusterScaling: serving.RunCluster over 100k requests at constant per-replica load (aggregate rate scales with replicas). Regenerate with make bench-cluster; before_engine_refactor preserves the pre-engine per-replica-replay numbers.",\n' > BENCH_cluster.json
	@echo "$$BENCH_CLUSTER_BEFORE" >> BENCH_cluster.json
	@awk 'BEGIN { printf("  \"results\": [\n") } \
	  /^BenchmarkClusterScaling\// { sub(/^BenchmarkClusterScaling\//, "", $$1); sub(/-[0-9]+$$/, "", $$1); printf("%s    {\"case\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", sep, $$1, $$2, $$3, $$5, $$7); sep=",\n" } \
	  END { printf("\n  ]\n}\n") }' /tmp/bench_cluster.txt >> BENCH_cluster.json
	@echo "bench-cluster: wrote BENCH_cluster.json"

# Fault-injection overhead benchmark (faults=off vs a full churn +
# delay + loss + retry stack at 1/4/16 replicas, 100k requests)
# emitted as BENCH_faults.json.
bench-faults:
	$(GO) test -run '^$$' -bench BenchmarkFaultInjection -benchtime 5x . | tee /tmp/bench_faults.txt
	@printf '{\n  "description": "BenchmarkFaultInjection: serving.RunCluster over 100k requests at constant per-replica load, reliable (faults=off) vs mtbf:20000/1000;delaydist=exp:1;loss=0.001 with attempts=3 retries. faults=off should track BenchmarkClusterScaling; the faulty rows bound the per-request cost of a chaos study. Regenerate with make bench-faults.",\n' > BENCH_faults.json
	@awk 'BEGIN { printf("  \"results\": [\n") } \
	  /^BenchmarkFaultInjection\// { sub(/^BenchmarkFaultInjection\//, "", $$1); sub(/-[0-9]+$$/, "", $$1); printf("%s    {\"case\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", sep, $$1, $$2, $$3, $$5, $$7); sep=",\n" } \
	  END { printf("\n  ]\n}\n") }' /tmp/bench_faults.txt >> BENCH_faults.json
	@echo "bench-faults: wrote BENCH_faults.json"

# Observability overhead benchmark (obs=off vs lifecycle trace vs
# trace+timeline on a 100k-request, 4-replica cluster) emitted as
# BENCH_obs.json. The obs=off row is the zero-cost-when-off gate: it
# must track BENCH_cluster.json's round-robin/replicas=4 row within
# noise, with identical allocs/op.
bench-obs:
	$(GO) test -run '^$$' -bench BenchmarkObsOverhead -benchtime 5x . | tee /tmp/bench_obs.txt
	@printf '{\n  "description": "BenchmarkObsOverhead: serving.RunCluster over 100k requests on 4 replicas, untraced vs lifecycle trace vs trace+timeline. obs=off must match BENCH_cluster.json dispatch=round-robin/replicas=4 within noise and add zero allocs/op (every emission site is one nil check); the traced rows bound the cost of a fully observed study. Regenerate with make bench-obs.",\n' > BENCH_obs.json
	@awk 'BEGIN { printf("  \"results\": [\n") } \
	  /^BenchmarkObsOverhead\// { sub(/^BenchmarkObsOverhead\//, "", $$1); sub(/-[0-9]+$$/, "", $$1); printf("%s    {\"case\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", sep, $$1, $$2, $$3, $$5, $$7); sep=",\n" } \
	  END { printf("\n  ]\n}\n") }' /tmp/bench_obs.txt >> BENCH_obs.json
	@echo "bench-obs: wrote BENCH_obs.json"

# A 24+-scenario mixed grid at -workers 8, then the determinism gate:
# the same grid at -workers 1 must emit byte-identical JSON.
SMOKE_FLAGS = -models resnet18,resnet50,vgg11,distilbert-base,bert-base,t5-large \
	-workloads video-0,video-1,amazon,imdb,cnn-dailymail \
	-budgets 0.01,0.02 -n 1500 -gen-n 10 -seed 1 -quiet

# Bursty-schedule autoscaling grid (2-phase and square-wave schedules,
# 1..4 replicas): the load-dynamics acceptance gate, byte-identical at
# any worker count in both metrics modes like the main grid.
AUTOSCALE_FLAGS = -models resnet50,bert-base -workloads video-1,amazon \
	-rate-schedule 'phases:15x1/15x4,square:30/0.5/3' -autoscale 1..4 \
	-n 2000 -seed 3 -quiet

# Faulty grid (one-shot crash and churn+delay+loss fault models under
# retry/hedging over 2 replicas): the chaos-study acceptance gate —
# crash schedules, lossy transit, and hedging must all stay
# byte-identical at any worker count. (The no-retry variants are
# pinned by the golden grid; empty axis members are not expressible
# from the CLI list flags.)
FAULTS_FLAGS = -models resnet50,bert-base -workloads video-1,amazon \
	-replicas 2 -dispatch round-robin,least-loaded \
	-faults 'crash:r1@3000+2000|mtbf:8000/1000;delaydist=exp:2;loss=0.002' \
	-retry attempts=3/hedge=95 -n 2000 -seed 4 -quiet

# Traced grid (lifecycle trace + gauge timeline over single-replica,
# cluster, and faulty points): the observability determinism gate —
# every per-scenario trace_NNN.jsonl and timeline_NNN.csv must be
# byte-identical at any worker count.
OBS_FLAGS = -models resnet18,resnet50 -workloads video-0,video-1 \
	-replicas 1,2 -faults 'crash:r0@2000+800;loss=0.002' \
	-retry attempts=2 -n 1500 -seed 6 -quiet

sweep-smoke:
	$(GO) run ./cmd/apparate-sweep $(SMOKE_FLAGS) -workers 8 -out /tmp/sweep-w8.json
	$(GO) run ./cmd/apparate-sweep $(SMOKE_FLAGS) -workers 1 -out /tmp/sweep-w1.json >/dev/null
	cmp /tmp/sweep-w1.json /tmp/sweep-w8.json
	$(GO) run ./cmd/apparate-sweep $(SMOKE_FLAGS) -metrics sketch -workers 8 -out /tmp/sweep-sk-w8.json >/dev/null
	$(GO) run ./cmd/apparate-sweep $(SMOKE_FLAGS) -metrics sketch -workers 1 -out /tmp/sweep-sk-w1.json >/dev/null
	cmp /tmp/sweep-sk-w1.json /tmp/sweep-sk-w8.json
	$(GO) run ./cmd/apparate-sweep $(AUTOSCALE_FLAGS) -workers 8 -out /tmp/sweep-as-w8.json >/dev/null
	$(GO) run ./cmd/apparate-sweep $(AUTOSCALE_FLAGS) -workers 1 -out /tmp/sweep-as-w1.json >/dev/null
	cmp /tmp/sweep-as-w1.json /tmp/sweep-as-w8.json
	$(GO) run ./cmd/apparate-sweep $(AUTOSCALE_FLAGS) -metrics sketch -workers 8 -out /tmp/sweep-as-sk-w8.json >/dev/null
	$(GO) run ./cmd/apparate-sweep $(AUTOSCALE_FLAGS) -metrics sketch -workers 1 -out /tmp/sweep-as-sk-w1.json >/dev/null
	cmp /tmp/sweep-as-sk-w1.json /tmp/sweep-as-sk-w8.json
	$(GO) run ./cmd/apparate-sweep $(FAULTS_FLAGS) -workers 8 -out /tmp/sweep-flt-w8.json >/dev/null
	$(GO) run ./cmd/apparate-sweep $(FAULTS_FLAGS) -workers 1 -out /tmp/sweep-flt-w1.json >/dev/null
	cmp /tmp/sweep-flt-w1.json /tmp/sweep-flt-w8.json
	rm -rf /tmp/sweep-obs-w8 /tmp/sweep-obs-w1
	$(GO) run ./cmd/apparate-sweep $(OBS_FLAGS) -obs-dir /tmp/sweep-obs-w8 -workers 8 -out /tmp/sweep-obs-w8.json >/dev/null
	$(GO) run ./cmd/apparate-sweep $(OBS_FLAGS) -obs-dir /tmp/sweep-obs-w1 -workers 1 -out /tmp/sweep-obs-w1.json >/dev/null
	cmp /tmp/sweep-obs-w1.json /tmp/sweep-obs-w8.json
	diff -r /tmp/sweep-obs-w1 /tmp/sweep-obs-w8
	@echo "sweep-smoke: deterministic across worker counts (exact + sketch, incl. autoscale, faulty, and traced grids)"

# Memory guard: one 1,000,000-request scheduled-rate scenario in sketch
# mode must complete under a 256 MiB soft heap limit with a bounded live
# heap — the streaming pipeline's O(1)-memory claim, enforced, including
# the time-varying arrival source.
mem-smoke:
	GOMEMLIMIT=256MiB APPARATE_MEM_GUARD=1 $(GO) test -run TestStreamingMillionBoundedMemory -v .

# Refresh the pinned golden sweep CSV (testdata/golden_sweep.csv) after
# an intentional behavior change; review the diff like code.
golden:
	$(GO) test -run TestGoldenSweep -update .

ci: build test vet race sweep-smoke mem-smoke
