GO ?= go

.PHONY: build test vet race bench bench-cluster bench-faults bench-obs bench-stream bench-gen bench-shards bench-all sweep-smoke mem-smoke mem-soak golden ci

# Stamps the measurement provenance — commit, toolchain, machine — into
# a freshly regenerated BENCH_*.json, so numbers from different epochs
# are never compared without knowing what produced them.
bench_meta = printf '  "commit": "%s",\n  "go": "%s %s/%s",\n  "machine": "%s (%s cpu)",\n' \
	"$$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
	"$$($(GO) env GOVERSION)" "$$($(GO) env GOOS)" "$$($(GO) env GOARCH)" \
	"$$(sed -n 's/^model name[[:space:]]*: //p' /proc/cpuinfo | head -1)" "$$(nproc)" >> $(1)

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass over the concurrent sweep engine (and the layers
# it drives: the event engine, the cluster runtime, the autoscaled
# path, and the observability sinks sweep workers write in parallel).
# The serving tests include the sharded-runtime suite, so shards>1
# engine loops run under the detector; the trailing sweep run crosses
# sharded scenarios with parallel sweep workers end to end.
race:
	$(GO) test -race ./internal/sweep/... ./internal/serving/... ./internal/autoscale/... ./internal/core/... ./internal/engine/... ./internal/faults/... ./internal/obs/... ./internal/genserve/...
	$(GO) run -race ./cmd/apparate-sweep -models resnet18,resnet50 -workloads video-0 \
		-replicas 4 -dispatch round-robin -shards 4 -n 1500 -seed 5 -quiet >/dev/null
	$(GO) run -race ./cmd/apparate-sweep -models resnet18,resnet50 -workloads video-0 \
		-replicas 4 -dispatch least-loaded -shards 4 -n 1500 -seed 5 -quiet >/dev/null
	@echo "race: clean (incl. shards=4 replay and lookahead-dispatcher loops under parallel sweep workers)"

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Cluster-scaling benchmark (replicas 1/4/16 at constant per-replica
# load, 100k requests) emitted as BENCH_cluster.json. The historical
# pre-engine per-replica-replay numbers are inlined below so
# regenerating the file preserves the before/after trajectory.
define BENCH_CLUSTER_BEFORE
  "before_engine_refactor": {
    "commit": "a4687a6 (per-replica dispatch replay: O(replicas x trace) work)",
    "machine": "Intel Xeon @ 2.10GHz, go1.24, linux/amd64",
    "results": [
      {"case": "dispatch=round-robin/replicas=1", "iters": 5, "ns_per_op": 21682353, "bytes_per_op": 9770488, "allocs_per_op": 99985},
      {"case": "dispatch=round-robin/replicas=4", "iters": 5, "ns_per_op": 43114198, "bytes_per_op": 10566364, "allocs_per_op": 99901},
      {"case": "dispatch=round-robin/replicas=16", "iters": 5, "ns_per_op": 121495048, "bytes_per_op": 11595276, "allocs_per_op": 99502},
      {"case": "dispatch=least-loaded/replicas=1", "iters": 5, "ns_per_op": 22133416, "bytes_per_op": 9770512, "allocs_per_op": 99988},
      {"case": "dispatch=least-loaded/replicas=4", "iters": 5, "ns_per_op": 45133739, "bytes_per_op": 9879712, "allocs_per_op": 100039},
      {"case": "dispatch=least-loaded/replicas=16", "iters": 5, "ns_per_op": 197858673, "bytes_per_op": 11004793, "allocs_per_op": 100114}
    ]
  },
endef
export BENCH_CLUSTER_BEFORE

# Pre-pooling epoch: the single-pass event engine, but with a closure
# allocated per scheduled event, copy-shifted replica queues, and a
# fresh sketch per observability window — ~1 allocation per request.
define BENCH_CLUSTER_BEFORE_ZERO_ALLOC
  "before_zero_alloc": {
    "commit": "c0cfe3e (closure-per-event engine, copy-shifted queues)",
    "machine": "Intel Xeon @ 2.70GHz, go1.24, linux/amd64",
    "results": [
      {"case": "dispatch=round-robin/replicas=1", "iters": 5, "ns_per_op": 22275084, "bytes_per_op": 9771104, "allocs_per_op": 100056},
      {"case": "dispatch=round-robin/replicas=4", "iters": 5, "ns_per_op": 22862991, "bytes_per_op": 10566688, "allocs_per_op": 100139},
      {"case": "dispatch=round-robin/replicas=16", "iters": 5, "ns_per_op": 30721242, "bytes_per_op": 11594944, "allocs_per_op": 100404},
      {"case": "dispatch=least-loaded/replicas=1", "iters": 5, "ns_per_op": 21617522, "bytes_per_op": 9771104, "allocs_per_op": 100056},
      {"case": "dispatch=least-loaded/replicas=4", "iters": 5, "ns_per_op": 24769247, "bytes_per_op": 9870656, "allocs_per_op": 100076},
      {"case": "dispatch=least-loaded/replicas=16", "iters": 5, "ns_per_op": 34821759, "bytes_per_op": 10965280, "allocs_per_op": 100215}
    ]
  },
endef
export BENCH_CLUSTER_BEFORE_ZERO_ALLOC

bench-cluster:
	$(GO) test -run '^$$' -bench BenchmarkClusterScaling -benchtime 5x . | tee /tmp/bench_cluster.txt
	@printf '{\n  "description": "BenchmarkClusterScaling: serving.RunCluster over 100k requests at constant per-replica load (aggregate rate scales with replicas). Regenerate with make bench-cluster; before_engine_refactor preserves the pre-engine per-replica-replay numbers, before_zero_alloc the pre-pooling closure-per-event numbers. shards=4 rows run the same scenario over 4 parallel engine loops (byte-identical results; wall-clock gain needs cores).",\n' > BENCH_cluster.json
	@$(call bench_meta,BENCH_cluster.json)
	@echo "$$BENCH_CLUSTER_BEFORE" >> BENCH_cluster.json
	@echo "$$BENCH_CLUSTER_BEFORE_ZERO_ALLOC" >> BENCH_cluster.json
	@awk 'BEGIN { printf("  \"results\": [\n") } \
	  /^BenchmarkClusterScaling\// { sub(/^BenchmarkClusterScaling\//, "", $$1); sub(/-[0-9]+$$/, "", $$1); printf("%s    {\"case\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", sep, $$1, $$2, $$3, $$5, $$7); sep=",\n" } \
	  END { printf("\n  ]\n}\n") }' /tmp/bench_cluster.txt >> BENCH_cluster.json
	@echo "bench-cluster: wrote BENCH_cluster.json"

# Fault-injection overhead benchmark (faults=off vs a full churn +
# delay + loss + retry stack at 1/4/16 replicas, 100k requests)
# emitted as BENCH_faults.json.

# Pre-pooling epoch: per-request arbiter map entries and a closure per
# fault event put the faulty path at ~4 allocations per request.
define BENCH_FAULTS_BEFORE_ZERO_ALLOC
  "before_zero_alloc": {
    "commit": "c0cfe3e (map-based fault arbiter, closure-per-event engine)",
    "machine": "Intel Xeon @ 2.70GHz, go1.24, linux/amd64",
    "results": [
      {"case": "faults=off/replicas=1", "iters": 5, "ns_per_op": 23016014, "bytes_per_op": 9771232, "allocs_per_op": 100057},
      {"case": "faults=off/replicas=4", "iters": 5, "ns_per_op": 25326539, "bytes_per_op": 9870928, "allocs_per_op": 100080},
      {"case": "faults=off/replicas=16", "iters": 5, "ns_per_op": 35800302, "bytes_per_op": 10966128, "allocs_per_op": 100231},
      {"case": "faults=faulty/replicas=1", "iters": 5, "ns_per_op": 58594558, "bytes_per_op": 23550323, "allocs_per_op": 400967},
      {"case": "faults=faulty/replicas=4", "iters": 5, "ns_per_op": 63766901, "bytes_per_op": 23872683, "allocs_per_op": 400690},
      {"case": "faults=faulty/replicas=16", "iters": 5, "ns_per_op": 94661094, "bytes_per_op": 24254846, "allocs_per_op": 400929}
    ]
  },
endef
export BENCH_FAULTS_BEFORE_ZERO_ALLOC

bench-faults:
	$(GO) test -run '^$$' -bench BenchmarkFaultInjection -benchtime 5x . | tee /tmp/bench_faults.txt
	@printf '{\n  "description": "BenchmarkFaultInjection: serving.RunCluster over 100k requests at constant per-replica load, reliable (faults=off) vs mtbf:20000/1000;delaydist=exp:1;loss=0.001 with attempts=3 retries. faults=off should track BenchmarkClusterScaling; the faulty rows bound the per-request cost of a chaos study. Regenerate with make bench-faults; before_zero_alloc preserves the pre-pooling map-arbiter numbers.",\n' > BENCH_faults.json
	@$(call bench_meta,BENCH_faults.json)
	@echo "$$BENCH_FAULTS_BEFORE_ZERO_ALLOC" >> BENCH_faults.json
	@awk 'BEGIN { printf("  \"results\": [\n") } \
	  /^BenchmarkFaultInjection\// { sub(/^BenchmarkFaultInjection\//, "", $$1); sub(/-[0-9]+$$/, "", $$1); printf("%s    {\"case\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", sep, $$1, $$2, $$3, $$5, $$7); sep=",\n" } \
	  END { printf("\n  ]\n}\n") }' /tmp/bench_faults.txt >> BENCH_faults.json
	@echo "bench-faults: wrote BENCH_faults.json"

# Observability overhead benchmark (obs=off vs lifecycle trace vs
# trace+timeline, on both the 100k-request 4-replica cluster and the
# saturated generative-KV engine) emitted as BENCH_obs.json. The
# obs=off row is the zero-cost-when-off gate: it must track
# BENCH_cluster.json's round-robin/replicas=4 row within noise, with
# identical allocs/op; the gen-obs=off row likewise must match
# BENCH_gen.json's kv=48/prefix=0.5/chunk=256 row with zero extra
# allocs.
# Pre-pooling epoch: a fresh sketch per timeline window and a fresh
# QueueDepths slice per tick row put trace+timeline 25k allocs over the
# untraced run.
define BENCH_OBS_BEFORE_ZERO_ALLOC
  "before_zero_alloc": {
    "commit": "c0cfe3e (per-window sketch and per-tick gauge allocations)",
    "machine": "Intel Xeon @ 2.70GHz, go1.24, linux/amd64",
    "results": [
      {"case": "obs=off/replicas=4", "iters": 5, "ns_per_op": 22680384, "bytes_per_op": 10567072, "allocs_per_op": 100143},
      {"case": "obs=trace/replicas=4", "iters": 5, "ns_per_op": 149499795, "bytes_per_op": 210101816, "allocs_per_op": 100180},
      {"case": "obs=trace+timeline/replicas=4", "iters": 5, "ns_per_op": 286993129, "bytes_per_op": 453130648, "allocs_per_op": 125207}
    ]
  },
endef
export BENCH_OBS_BEFORE_ZERO_ALLOC

bench-obs:
	$(GO) test -run '^$$' -bench 'ObsOverhead' -benchtime 5x . | tee /tmp/bench_obs.txt
	@printf '{\n  "description": "BenchmarkObsOverhead + BenchmarkGenObsOverhead: untraced vs lifecycle trace vs trace+timeline on serving.RunCluster (100k requests, 4 replicas) and on the saturated generative-KV engine (200 cnn-dailymail sequences, kv=48/prefix=0.5/chunk=256). obs=off must match BENCH_cluster.json dispatch=round-robin/replicas=4 and gen-obs=off must match BENCH_gen.json kv=48/prefix=0.5/chunk=256, each within noise and with zero extra allocs/op (every emission site is one nil check); the traced rows bound the cost of a fully observed study. Regenerate with make bench-obs; before_zero_alloc preserves the pre-pooling per-window-allocation numbers.",\n' > BENCH_obs.json
	@$(call bench_meta,BENCH_obs.json)
	@echo "$$BENCH_OBS_BEFORE_ZERO_ALLOC" >> BENCH_obs.json
	@awk 'BEGIN { printf("  \"results\": [\n") } \
	  /^Benchmark(Gen)?ObsOverhead\// { sub(/^Benchmark(Gen)?ObsOverhead\//, "", $$1); sub(/-[0-9]+$$/, "", $$1); printf("%s    {\"case\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", sep, $$1, $$2, $$3, $$5, $$7); sep=",\n" } \
	  END { printf("\n  ]\n}\n") }' /tmp/bench_obs.txt >> BENCH_obs.json
	@echo "bench-obs: wrote BENCH_obs.json"

# Streaming-pipeline record: the materializing-vs-streaming history is
# frozen below (those epochs predate the current code and cannot be
# re-measured); bench-stream re-measures only the current 1M-request
# end-to-end row.
define BENCH_STREAM_HISTORY
  "before": {
    "commit": "5b14a8b (materializing pipeline)",
    "scenario_100k": {
      "n": 100000,
      "metrics": "exact (only mode)",
      "time_ms": 575,
      "bytes_allocated": 71858808
    },
    "scenario_1m": {
      "n": 1000000,
      "note": "not runnable under GOMEMLIMIT=256MiB: trace + 2x result slices + 2x latency slices exceed the limit (>400 MB live)"
    }
  },
  "after_streaming": {
    "commit": "streaming pipeline refactor",
    "machine": "Intel Xeon @ 2.10GHz, go1.24, linux/amd64",
    "scenario_100k_exact": {
      "n": 100000,
      "metrics": "exact",
      "time_ms": 508,
      "bytes_allocated": 63317728
    },
    "scenario_100k_sketch": {
      "n": 100000,
      "metrics": "sketch",
      "time_ms": 505,
      "bytes_allocated": 53501136
    },
    "scenario_1m_sketch": {
      "n": 1000000,
      "metrics": "sketch",
      "time_ms": 4954,
      "peak_live_heap_bytes": 4089446,
      "note": "peak live heap is O(queue + handlers + sketches), independent of trace length; verified by TestStreamingMillionBoundedMemory under GOMEMLIMIT=256MiB (make mem-smoke)"
    }
  },
  "dist_interleaved_microbench": {
    "workload": "200 bursts of 100 Adds, one Percentile(99) query per burst (20k samples)",
    "naive_full_resort_ns_per_op": 139174386,
    "merge_sorted_runs_ns_per_op": 4192997,
    "speedup": "33x"
  },
endef
export BENCH_STREAM_HISTORY

bench-stream:
	$(GO) test -run '^$$' -bench BenchmarkStreamingMillion -benchtime 1x . | tee /tmp/bench_stream.txt
	@printf '{\n  "description": "Streaming-pipeline record for core.RunScenario (vanilla + Apparate runs) on resnet18/video-0, seed 1. The results row is the current 1M-request sketch-mode scheduled-rate scenario end to end (BenchmarkStreamingMillion, 1 iteration); before/after_streaming freeze the materializing-pipeline history. Regenerate with make bench-stream.",\n' > BENCH_stream.json
	@$(call bench_meta,BENCH_stream.json)
	@echo "$$BENCH_STREAM_HISTORY" >> BENCH_stream.json
	@awk 'BEGIN { printf("  \"results\": [\n") } \
	  /^BenchmarkStreamingMillion/ { sub(/-[0-9]+$$/, "", $$1); printf("%s    {\"case\": \"streaming_1m_sketch\", \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", sep, $$2, $$3, $$5, $$7); sep=",\n" } \
	  END { printf("\n  ]\n}\n") }' /tmp/bench_stream.txt >> BENCH_stream.json
	@echo "bench-stream: wrote BENCH_stream.json"

# Generative KV-runtime benchmark (kv=off vs bounded pools with/without
# the prefix cache, plus a saturated small pool with chunked prefill)
# emitted as BENCH_gen.json. Rows carry the engine's own observables
# (tok/s, kv_util, prefix_hits, preempts, queue_ms) alongside ns/op;
# the awk below parses the value/unit pairs generically so new
# ReportMetric columns flow through without Makefile changes.
bench-gen:
	$(GO) test -run '^$$' -bench BenchmarkGenKV -benchtime 5x . | tee /tmp/bench_gen.txt
	@printf '{\n  "description": "BenchmarkGenKV: the generative engine over 200 cnn-dailymail sequences at 6 seq/s — kv=off (classic unbounded path) vs a 96-block pool with/without the prefix cache vs a saturated 48-block pool with chunked prefill. Each row records the engine observables (tok_per_s, kv_util, prefix_hits, preempts, queue_ms) alongside ns/op; the saturated rows must show preempts > 0 and the kv=off row must track the pre-KV engine cost. Regenerate with make bench-gen.",\n' > BENCH_gen.json
	@$(call bench_meta,BENCH_gen.json)
	@awk 'BEGIN { printf("  \"results\": [\n") } \
	  /^BenchmarkGenKV\// { sub(/^BenchmarkGenKV\//, "", $$1); sub(/-[0-9]+$$/, "", $$1); \
	    printf("%s    {\"case\": \"%s\", \"iters\": %s", sep, $$1, $$2); \
	    for (i = 3; i < NF; i += 2) { u = $$(i+1); gsub(/\//, "_per_", u); printf(", \"%s\": %s", u, $$i) } \
	    printf("}"); sep=",\n" } \
	  END { printf("\n  ]\n}\n") }' /tmp/bench_gen.txt >> BENCH_gen.json
	@echo "bench-gen: wrote BENCH_gen.json"

# Shard-speedup benchmark: the cluster grid at shards=1 vs
# shards=GOMAXPROCS for round-robin (replay mode) and least-loaded
# (conservative-lookahead dispatcher mode), 8 replicas, 100k requests,
# emitted as BENCH_shards.json. The cpu count is stamped as its own
# field on top of the shared machine provenance because it is the
# variable that decides what these rows mean: on a 1-cpu container the
# sharded rows only show the coordination-overhead side (the
# dispatcher's shadow simulation is extra total work that free cores
# would absorb); the speedup side needs multi-core hardware.
bench-shards:
	$(GO) test -run '^$$' -bench BenchmarkShardSpeedup -benchtime 5x . | tee /tmp/bench_shards.txt
	@printf '{\n  "description": "BenchmarkShardSpeedup: serving.RunCluster over 100k requests on 8 replicas at shards=1 vs shards=GOMAXPROCS (min 2), round-robin and least-loaded. Results are byte-identical to serial in both modes; rows measure wall-clock only. Interpret against the cpus field: 1 cpu measures coordination overhead, the speedup side needs cores. Regenerate with make bench-shards.",\n' > BENCH_shards.json
	@printf '  "cpus": %s,\n' "$$(nproc)" >> BENCH_shards.json
	@$(call bench_meta,BENCH_shards.json)
	@awk 'BEGIN { printf("  \"results\": [\n") } \
	  /^BenchmarkShardSpeedup\// { sub(/^BenchmarkShardSpeedup\//, "", $$1); sub(/-[0-9]+$$/, "", $$1); printf("%s    {\"case\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", sep, $$1, $$2, $$3, $$5, $$7); sep=",\n" } \
	  END { printf("\n  ]\n}\n") }' /tmp/bench_shards.txt >> BENCH_shards.json
	@echo "bench-shards: wrote BENCH_shards.json"

# Regenerate every BENCH_*.json in one shot, all stamped with the same
# commit/machine metadata.
bench-all: bench-cluster bench-faults bench-obs bench-stream bench-gen bench-shards

# A 24+-scenario mixed grid at -workers 8, then the determinism gate:
# the same grid at -workers 1 must emit byte-identical JSON.
SMOKE_FLAGS = -models resnet18,resnet50,vgg11,distilbert-base,bert-base,t5-large \
	-workloads video-0,video-1,amazon,imdb,cnn-dailymail \
	-budgets 0.01,0.02 -n 1500 -gen-n 10 -seed 1 -quiet

# Bursty-schedule autoscaling grid (2-phase and square-wave schedules,
# 1..4 replicas): the load-dynamics acceptance gate, byte-identical at
# any worker count in both metrics modes like the main grid.
AUTOSCALE_FLAGS = -models resnet50,bert-base -workloads video-1,amazon \
	-rate-schedule 'phases:15x1/15x4,square:30/0.5/3' -autoscale 1..4 \
	-n 2000 -seed 3 -quiet

# Faulty grid (one-shot crash and churn+delay+loss fault models under
# retry/hedging over 2 replicas): the chaos-study acceptance gate —
# crash schedules, lossy transit, and hedging must all stay
# byte-identical at any worker count. (The no-retry variants are
# pinned by the golden grid; empty axis members are not expressible
# from the CLI list flags.)
FAULTS_FLAGS = -models resnet50,bert-base -workloads video-1,amazon \
	-replicas 2 -dispatch round-robin,least-loaded \
	-faults 'crash:r1@3000+2000|mtbf:8000/1000;delaydist=exp:2;loss=0.002' \
	-retry attempts=3/hedge=95 -n 2000 -seed 4 -quiet

# Traced grid (lifecycle trace + gauge timeline over single-replica,
# cluster, and faulty points): the observability determinism gate —
# every per-scenario trace_NNN.jsonl and timeline_NNN.csv must be
# byte-identical at any worker count.
OBS_FLAGS = -models resnet18,resnet50 -workloads video-0,video-1 \
	-replicas 1,2 -faults 'crash:r0@2000+800;loss=0.002' \
	-retry attempts=2 -n 1500 -seed 6 -quiet

# Generative KV grid (bounded KV pool × prefix cache × chunked prefill
# crossed with exit-rate over both generative workloads): the
# memory-runtime determinism gate — block accounting, preemption order,
# and the gen.prefix stream must all stay byte-identical at any worker
# count.
GENKV_FLAGS = -models t5-large -workloads cnn-dailymail,squad \
	-kv-blocks 0,64 -prefix-hit 0,0.4 -prefill-chunk 128 \
	-acc-losses 0.01,0.05 -gen-n 10 -seed 8 -quiet

# Traced generative-KV grid: the same axes with both observability
# sinks on — every sequence-lifecycle trace and KV-pool timeline must
# be byte-identical at any worker count, and tracing must not move the
# result JSON off the untraced run's.
GENKV_OBS_FLAGS = -models t5-large -workloads cnn-dailymail,squad \
	-kv-blocks 0,64 -prefix-hit 0,0.4 -prefill-chunk 128 \
	-gen-n 10 -seed 8 -quiet

# Sharded-execution grid (round-robin multi-replica points, exact and
# sketch recorders): -shards 4 splits each scenario over four parallel
# engine loops and must emit byte-identical JSON to the serial run —
# sharding is an execution knob, never a results knob.
SHARDS_FLAGS = -models resnet18,resnet50 -workloads video-0,video-1 \
	-replicas 2,4 -dispatch round-robin -metrics exact,sketch \
	-n 1500 -seed 5 -quiet

# Queue-state sharded grid (least-loaded and join-shortest-queue
# multi-replica points, homogeneous and heterogeneous): -shards 4
# routes the vanilla run of each scenario through the conservative-
# lookahead dispatcher (the adaptive Apparate run falls back serial)
# and must emit byte-identical JSON to the serial run.
SHARDS_QS_FLAGS = -models resnet18,resnet50 -workloads video-0,video-1 \
	-replicas 2,4 -dispatch least-loaded,join-shortest-queue \
	-hetero '1;1,0.5' -metrics exact,sketch \
	-n 1500 -seed 5 -quiet

sweep-smoke:
	$(GO) run ./cmd/apparate-sweep $(SMOKE_FLAGS) -workers 8 -out /tmp/sweep-w8.json
	$(GO) run ./cmd/apparate-sweep $(SMOKE_FLAGS) -workers 1 -out /tmp/sweep-w1.json >/dev/null
	cmp /tmp/sweep-w1.json /tmp/sweep-w8.json
	$(GO) run ./cmd/apparate-sweep $(SMOKE_FLAGS) -metrics sketch -workers 8 -out /tmp/sweep-sk-w8.json >/dev/null
	$(GO) run ./cmd/apparate-sweep $(SMOKE_FLAGS) -metrics sketch -workers 1 -out /tmp/sweep-sk-w1.json >/dev/null
	cmp /tmp/sweep-sk-w1.json /tmp/sweep-sk-w8.json
	$(GO) run ./cmd/apparate-sweep $(AUTOSCALE_FLAGS) -workers 8 -out /tmp/sweep-as-w8.json >/dev/null
	$(GO) run ./cmd/apparate-sweep $(AUTOSCALE_FLAGS) -workers 1 -out /tmp/sweep-as-w1.json >/dev/null
	cmp /tmp/sweep-as-w1.json /tmp/sweep-as-w8.json
	$(GO) run ./cmd/apparate-sweep $(AUTOSCALE_FLAGS) -metrics sketch -workers 8 -out /tmp/sweep-as-sk-w8.json >/dev/null
	$(GO) run ./cmd/apparate-sweep $(AUTOSCALE_FLAGS) -metrics sketch -workers 1 -out /tmp/sweep-as-sk-w1.json >/dev/null
	cmp /tmp/sweep-as-sk-w1.json /tmp/sweep-as-sk-w8.json
	$(GO) run ./cmd/apparate-sweep $(FAULTS_FLAGS) -workers 8 -out /tmp/sweep-flt-w8.json >/dev/null
	$(GO) run ./cmd/apparate-sweep $(FAULTS_FLAGS) -workers 1 -out /tmp/sweep-flt-w1.json >/dev/null
	cmp /tmp/sweep-flt-w1.json /tmp/sweep-flt-w8.json
	rm -rf /tmp/sweep-obs-w8 /tmp/sweep-obs-w1
	$(GO) run ./cmd/apparate-sweep $(OBS_FLAGS) -obs-dir /tmp/sweep-obs-w8 -workers 8 -out /tmp/sweep-obs-w8.json >/dev/null
	$(GO) run ./cmd/apparate-sweep $(OBS_FLAGS) -obs-dir /tmp/sweep-obs-w1 -workers 1 -out /tmp/sweep-obs-w1.json >/dev/null
	cmp /tmp/sweep-obs-w1.json /tmp/sweep-obs-w8.json
	diff -r /tmp/sweep-obs-w1 /tmp/sweep-obs-w8
	$(GO) run ./cmd/apparate-sweep $(GENKV_FLAGS) -workers 8 -out /tmp/sweep-kv-w8.json >/dev/null
	$(GO) run ./cmd/apparate-sweep $(GENKV_FLAGS) -workers 1 -out /tmp/sweep-kv-w1.json >/dev/null
	cmp /tmp/sweep-kv-w1.json /tmp/sweep-kv-w8.json
	rm -rf /tmp/sweep-kvobs-w8 /tmp/sweep-kvobs-w1
	$(GO) run ./cmd/apparate-sweep $(GENKV_OBS_FLAGS) -obs-dir /tmp/sweep-kvobs-w8 -workers 8 -out /tmp/sweep-kvobs-w8.json >/dev/null
	$(GO) run ./cmd/apparate-sweep $(GENKV_OBS_FLAGS) -obs-dir /tmp/sweep-kvobs-w1 -workers 1 -out /tmp/sweep-kvobs-w1.json >/dev/null
	cmp /tmp/sweep-kvobs-w1.json /tmp/sweep-kvobs-w8.json
	diff -r /tmp/sweep-kvobs-w1 /tmp/sweep-kvobs-w8
	$(GO) run ./cmd/apparate-sweep $(SHARDS_FLAGS) -workers 8 -out /tmp/sweep-sh1.json >/dev/null
	$(GO) run ./cmd/apparate-sweep $(SHARDS_FLAGS) -shards 4 -workers 8 -out /tmp/sweep-sh4.json >/dev/null
	cmp /tmp/sweep-sh1.json /tmp/sweep-sh4.json
	$(GO) run ./cmd/apparate-sweep $(SHARDS_QS_FLAGS) -workers 8 -out /tmp/sweep-shqs0.json >/dev/null
	$(GO) run ./cmd/apparate-sweep $(SHARDS_QS_FLAGS) -shards 4 -workers 8 -out /tmp/sweep-shqs4.json >/dev/null
	cmp /tmp/sweep-shqs0.json /tmp/sweep-shqs4.json
	@echo "sweep-smoke: deterministic across worker counts (exact + sketch, incl. autoscale, faulty, traced, generative-KV, and traced generative-KV grids) and shard counts (replay + lookahead modes)"

# Memory guard: one 10,000,000-request scheduled-rate scenario in
# sketch mode must complete under a 256 MiB soft heap limit with a
# bounded live heap — the streaming pipeline's O(1)-memory claim,
# enforced at 10x the original 1M gate (the zero-alloc hot path made
# the extra requests nearly free in both time and allocator pressure),
# including the time-varying arrival source. Override the request count
# with APPARATE_MEM_N (e.g. APPARATE_MEM_N=100000000 for a 100M soak).
APPARATE_MEM_N ?= 10000000
mem-smoke:
	GOMEMLIMIT=256MiB APPARATE_MEM_GUARD=1 APPARATE_MEM_N=$(APPARATE_MEM_N) $(GO) test -run TestStreamingMillionBoundedMemory -v .

# The 100M-request soak named in ROADMAP item 4: the same bounded-heap
# assertion as mem-smoke at 10x the requests (~9 min on the bench
# machine). Not part of ci — run it before claiming production-scale
# memory behavior.
mem-soak:
	GOMEMLIMIT=256MiB APPARATE_MEM_GUARD=1 APPARATE_MEM_N=100000000 $(GO) test -run TestStreamingMillionBoundedMemory -v -timeout 30m .

# Refresh the pinned golden sweep CSV (testdata/golden_sweep.csv) after
# an intentional behavior change; review the diff like code.
golden:
	$(GO) test -run TestGoldenSweep -update .

ci: build test vet race sweep-smoke mem-smoke
