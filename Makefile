GO ?= go

.PHONY: build test vet race bench sweep-smoke mem-smoke golden ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass over the concurrent sweep engine (and the layers
# it drives, including the autoscaled cluster path).
race:
	$(GO) test -race ./internal/sweep/... ./internal/serving/... ./internal/autoscale/... ./internal/core/...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# A 24+-scenario mixed grid at -workers 8, then the determinism gate:
# the same grid at -workers 1 must emit byte-identical JSON.
SMOKE_FLAGS = -models resnet18,resnet50,vgg11,distilbert-base,bert-base,t5-large \
	-workloads video-0,video-1,amazon,imdb,cnn-dailymail \
	-budgets 0.01,0.02 -n 1500 -gen-n 10 -seed 1 -quiet

# Bursty-schedule autoscaling grid (2-phase and square-wave schedules,
# 1..4 replicas): the load-dynamics acceptance gate, byte-identical at
# any worker count in both metrics modes like the main grid.
AUTOSCALE_FLAGS = -models resnet50,bert-base -workloads video-1,amazon \
	-rate-schedule 'phases:15x1/15x4,square:30/0.5/3' -autoscale 1..4 \
	-n 2000 -seed 3 -quiet

sweep-smoke:
	$(GO) run ./cmd/apparate-sweep $(SMOKE_FLAGS) -workers 8 -out /tmp/sweep-w8.json
	$(GO) run ./cmd/apparate-sweep $(SMOKE_FLAGS) -workers 1 -out /tmp/sweep-w1.json >/dev/null
	cmp /tmp/sweep-w1.json /tmp/sweep-w8.json
	$(GO) run ./cmd/apparate-sweep $(SMOKE_FLAGS) -metrics sketch -workers 8 -out /tmp/sweep-sk-w8.json >/dev/null
	$(GO) run ./cmd/apparate-sweep $(SMOKE_FLAGS) -metrics sketch -workers 1 -out /tmp/sweep-sk-w1.json >/dev/null
	cmp /tmp/sweep-sk-w1.json /tmp/sweep-sk-w8.json
	$(GO) run ./cmd/apparate-sweep $(AUTOSCALE_FLAGS) -workers 8 -out /tmp/sweep-as-w8.json >/dev/null
	$(GO) run ./cmd/apparate-sweep $(AUTOSCALE_FLAGS) -workers 1 -out /tmp/sweep-as-w1.json >/dev/null
	cmp /tmp/sweep-as-w1.json /tmp/sweep-as-w8.json
	$(GO) run ./cmd/apparate-sweep $(AUTOSCALE_FLAGS) -metrics sketch -workers 8 -out /tmp/sweep-as-sk-w8.json >/dev/null
	$(GO) run ./cmd/apparate-sweep $(AUTOSCALE_FLAGS) -metrics sketch -workers 1 -out /tmp/sweep-as-sk-w1.json >/dev/null
	cmp /tmp/sweep-as-sk-w1.json /tmp/sweep-as-sk-w8.json
	@echo "sweep-smoke: deterministic across worker counts (exact + sketch, incl. autoscale grid)"

# Memory guard: one 1,000,000-request scheduled-rate scenario in sketch
# mode must complete under a 256 MiB soft heap limit with a bounded live
# heap — the streaming pipeline's O(1)-memory claim, enforced, including
# the time-varying arrival source.
mem-smoke:
	GOMEMLIMIT=256MiB APPARATE_MEM_GUARD=1 $(GO) test -run TestStreamingMillionBoundedMemory -v .

# Refresh the pinned golden sweep CSV (testdata/golden_sweep.csv) after
# an intentional behavior change; review the diff like code.
golden:
	$(GO) test -run TestGoldenSweep -update .

ci: build test vet race sweep-smoke mem-smoke
