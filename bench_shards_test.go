package repro

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/model"
	"repro/internal/serving"
	"repro/internal/workload"
)

// BenchmarkShardSpeedup measures what intra-scenario sharding buys in
// wall-clock: the same 8-replica, 100k-request cluster at shards=1
// (serial) vs shards=GOMAXPROCS, for round-robin (replay mode — shards
// are fully decoupled) and least-loaded (conservative-lookahead mode —
// a dispatcher shard resolves every queue-state decision while worker
// shards simulate their replica groups). Results are byte-identical to
// serial in both modes (TestShardedClusterByteIdentity); only the
// wall-clock differs. On a single-cpu machine the sharded rows can only
// show the coordination overhead side — the dispatcher's shadow
// simulation roughly doubles least-loaded's total work, which free
// cores absorb — so `make bench-shards` stamps the cpu count into
// BENCH_shards.json and the speedup side needs multi-core hardware.
func BenchmarkShardSpeedup(b *testing.B) {
	const n = 100_000
	const replicas = 8
	m := model.ResNet18()
	high := runtime.GOMAXPROCS(0)
	if high < 2 {
		high = 2 // a 1-cpu machine still measures the overhead side at 2 shards
	}
	if high > replicas {
		high = replicas
	}
	for _, disp := range []serving.Dispatch{serving.RoundRobin, serving.LeastLoaded} {
		for _, shards := range []int{1, high} {
			name := fmt.Sprintf("dispatch=%s/replicas=%d/shards=%d", disp, replicas, shards)
			b.Run(name, func(b *testing.B) {
				s := workload.Video(0, n, 30*replicas, 9)
				opts := serving.ClusterOptions{
					Options:  serving.Options{Platform: serving.Clockwork, SLOms: m.SLO()},
					Replicas: replicas,
					Dispatch: disp,
					Shards:   shards,
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cs := serving.RunCluster(s, func(int) serving.Handler {
						return &serving.VanillaHandler{Model: m}
					}, opts)
					if cs.Merged.Total != n {
						b.Fatalf("cluster served %d requests, want %d", cs.Merged.Total, n)
					}
				}
			})
		}
	}
}
