package repro

import (
	"fmt"
	"testing"

	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/serving"
	"repro/internal/workload"
)

// BenchmarkFaultInjection measures the fault subsystem's overhead on
// the cluster runtime: 100k requests over 1, 4, and 16 replicas
// (aggregate rate scaled with width), reliable versus a full fault
// stack (periodic churn + exponential network delay + transit loss
// with retries). faults=off must track BenchmarkClusterScaling — the
// fault path is guarded out of the hot loop — and the faulty runs
// bound what a chaos study costs per request. Before/after numbers
// live in BENCH_faults.json (make bench-faults).
func BenchmarkFaultInjection(b *testing.B) {
	const n = 100_000
	m := model.ResNet18()
	spec, err := faults.Parse("mtbf:20000/1000;delaydist=exp:1;loss=0.001")
	if err != nil {
		b.Fatal(err)
	}
	retry, err := faults.ParseRetry("attempts=3")
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []string{"off", "faulty"} {
		for _, replicas := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("faults=%s/replicas=%d", mode, replicas), func(b *testing.B) {
				s := workload.Video(0, n, 30*float64(replicas), 9)
				opts := serving.ClusterOptions{
					Options:  serving.Options{Platform: serving.Clockwork, SLOms: m.SLO()},
					Replicas: replicas,
					Dispatch: serving.LeastLoaded,
				}
				if mode == "faulty" {
					opts.Faults, opts.Retry, opts.FaultSeed = spec, retry, 9
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cs := serving.RunCluster(s, func(int) serving.Handler {
						return &serving.VanillaHandler{Model: m}
					}, opts)
					if cs.Merged.Total != n {
						b.Fatalf("cluster resolved %d requests, want %d", cs.Merged.Total, n)
					}
				}
			})
		}
	}
}
