package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/exitsim"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/serving"
	"repro/internal/workload"
)

// BenchmarkObsOverhead measures the observability layer's cost on the
// cluster hot path: the same 100k-request, 4-replica run as
// BenchmarkClusterScaling, untraced (obs=off — must track
// BENCH_cluster.json's dispatch=round-robin/replicas=4 row within
// noise, with no new allocs/op, since every emission site is one nil
// check), with the lifecycle trace attached (obs=trace), and with
// trace plus timeline sampling (obs=trace+timeline). The traced rows
// bound the per-request cost of a fully observed study.
func BenchmarkObsOverhead(b *testing.B) {
	const n = 100_000
	const replicas = 4
	m := model.ResNet18()
	cases := []struct {
		name string
		mk   func() (*obs.Tracer, *obs.Timeline)
	}{
		{"obs=off", func() (*obs.Tracer, *obs.Timeline) { return nil, nil }},
		{"obs=trace", func() (*obs.Tracer, *obs.Timeline) { return obs.NewTracer(), nil }},
		{"obs=trace+timeline", func() (*obs.Tracer, *obs.Timeline) {
			return obs.NewTracer(), obs.NewTimeline(0, m.SLO())
		}},
	}
	for _, tc := range cases {
		b.Run(fmt.Sprintf("%s/replicas=%d", tc.name, replicas), func(b *testing.B) {
			s := workload.Video(0, n, 30*float64(replicas), 9)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr, tl := tc.mk()
				opts := serving.ClusterOptions{
					Options: serving.Options{
						Platform: serving.Clockwork, SLOms: m.SLO(),
						Trace: tr, Timeline: tl,
					},
					Replicas: replicas,
					Dispatch: serving.RoundRobin,
				}
				cs := serving.RunCluster(s, func(int) serving.Handler {
					return &serving.VanillaHandler{Model: m}
				}, opts)
				if cs.Merged.Total != n {
					b.Fatalf("cluster served %d requests, want %d", cs.Merged.Total, n)
				}
				if tr != nil && tr.Len() == 0 {
					b.Fatal("traced run emitted no events")
				}
			}
		})
	}
}

// BenchmarkGenObsOverhead measures the observability layer's cost on
// the generative KV hot path: BenchmarkGenKV's saturated
// kv=48/prefix=0.5/chunk=256 configuration, untraced (gen-obs=off —
// must track BENCH_gen.json's matching row within noise, with no new
// allocs/op, since every emission site is one nil check), with the
// sequence-lifecycle trace attached (gen-obs=trace), and with trace
// plus KV-pool timeline sampling (gen-obs=trace+timeline).
func BenchmarkGenObsOverhead(b *testing.B) {
	const (
		n    = 200
		qps  = 6
		seed = 11
	)
	cfg := core.Config{KVBlocks: 48, PrefixHitRatio: 0.5, PrefillChunkTokens: 256, Seed: seed}
	cases := []struct {
		name string
		mk   func() (*obs.Tracer, *obs.Timeline)
	}{
		{"gen-obs=off", func() (*obs.Tracer, *obs.Timeline) { return nil, nil }},
		{"gen-obs=trace", func() (*obs.Tracer, *obs.Timeline) { return obs.NewTracer(), nil }},
		{"gen-obs=trace+timeline", func() (*obs.Tracer, *obs.Timeline) {
			return obs.NewTracer(), obs.NewTimeline(0, 0)
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			g := core.NewGen(model.T5Large(), exitsim.KindCNNDailyMail, cfg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr, tl := tc.mk()
				g.Engine.Trace, g.Engine.Timeline = tr, tl
				last := g.Serve(workload.CNNDailyMail(n, qps, seed))
				if last.Seqs != n {
					b.Fatalf("served %d sequences, want %d", last.Seqs, n)
				}
				if tr != nil && tr.Len() == 0 {
					b.Fatal("traced run emitted no events")
				}
			}
		})
	}
}
