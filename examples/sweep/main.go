// Sweep example: expand a scenario grid programmatically, run it on a
// worker pool, and rank the outcomes — the library-level equivalent of
// the apparate-sweep CLI, for embedding scenario studies in tools and
// regression gates.
package main

import (
	"fmt"
	"os"

	"repro/internal/sweep"
)

func main() {
	// A small study: how do two CV models behave across both serving
	// platforms and two ramp budgets at 2× the native frame rate?
	grid := sweep.Grid{
		Models:    []string{"resnet18", "resnet50"},
		Workloads: []string{"video-0"},
		Budgets:   []float64{0.01, 0.04},
		RateMults: []float64{2},
		N:         3000,
		Seed:      1,
	}
	scenarios, err := grid.Expand()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("grid expanded to %d scenarios\n\n", len(scenarios))

	// Run them concurrently. Results come back in scenario order and
	// are byte-identical for any worker count: every scenario derives
	// its seed from the grid seed and its own identity.
	results := sweep.Run(scenarios, sweep.Options{Workers: 4})

	table, err := sweep.Table(results, "p99", 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(table)
}
