// Quickstart: register a model with Apparate, serve a video workload,
// and compare latencies against vanilla serving — the minimal end-to-end
// use of the public API.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exitsim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/workload"
)

func main() {
	// 1. Pick a model from the zoo. Graph shape and latency profile are
	// calibrated to the paper's Table 5.
	m := model.ResNet50()

	// 2. Register it with Apparate: a 1% accuracy constraint and a 2%
	// ramp budget (the paper's defaults). Apparate finds feasible ramp
	// sites via cut-vertex analysis and deploys evenly spaced ramps with
	// zero thresholds — exiting only begins once the runtime controller
	// has evidence it is safe.
	sys := core.New(m, exitsim.KindVideo, core.Config{})
	fmt.Printf("model %s: %d graph operators, %d feasible ramp sites, %d ramps deployed\n",
		m.Name, m.Graph.Len(), len(sys.Handler.Cfg.Sites), len(sys.Handler.Cfg.Active))

	// 3. Build a workload: one of the eight 30fps videos.
	stream := workload.Video(0, 10000, 30, 1)

	// 4. Serve it twice: vanilla and with Apparate managing exits.
	vanilla := sys.ServeVanilla(stream)
	apparate := sys.Serve(stream)

	vl, al := vanilla.Latencies(), apparate.Latencies()
	fmt.Printf("\n%-12s %10s %10s %8s\n", "percentile", "vanilla", "apparate", "win")
	for _, p := range []float64{25, 50, 95} {
		v, a := vl.Percentile(p), al.Percentile(p)
		fmt.Printf("p%-11.0f %8.2fms %8.2fms %7.1f%%\n", p, v, a, metrics.WinPercent(v, a))
	}
	fmt.Printf("\naccuracy vs original model: %.2f%% (constraint: >= 99%%)\n", apparate.Accuracy*100)
	fmt.Printf("throughput: vanilla %.1f qps, apparate %.1f qps\n",
		vanilla.ThroughputQPS, apparate.ThroughputQPS)

	ctl := sys.Controller()
	fmt.Printf("adaptation: %d threshold-tuning rounds, %d ramp-adjustment rounds\n",
		ctl.TuneRounds, ctl.AdjustRounds)

	// 5. The same experiment as one declarative scenario — the uniform
	// entry point apparate-serve and apparate-sweep are built on.
	res, err := core.RunScenario(core.Scenario{
		Model: "resnet50", Workload: "video-0", N: 10000, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nscenario API: p95 %.2fms -> %.2fms (win %.1f%%), accuracy loss %.3f%%\n",
		res.Vanilla.P95ms, res.Apparate.P95ms, res.P95Win, res.AccDelta*100)
}
