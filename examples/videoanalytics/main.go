// Video analytics: the paper's motivating CV scenario (§2.1). Serves all
// eight one-hour-style videos through ResNet-50 under a tight SLO,
// printing per-video latency distributions and the adaptation activity
// that tracked scene changes (day/night regimes, novel scenes).
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exitsim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/workload"
)

func main() {
	const frames = 10000
	fmt.Println("real-time object classification, ResNet-50 @ 30fps, SLO 32.8ms")
	fmt.Printf("\n%-9s %9s %9s %8s %9s %9s %7s %7s\n",
		"video", "van_p50", "app_p50", "win", "van_p95", "app_p95", "acc", "tunes")
	for vid := 0; vid < 8; vid++ {
		// A fresh system per video: each video is its own deployment.
		sys := core.New(model.ResNet50(), exitsim.KindVideo, core.Config{})
		stream := workload.Video(vid, frames, 30, uint64(100+vid))
		vanilla := sys.ServeVanilla(stream)
		apparate := sys.Serve(stream)
		vl, al := vanilla.Latencies(), apparate.Latencies()
		fmt.Printf("%-9s %7.2fms %7.2fms %7.1f%% %7.2fms %7.2fms %6.2f%% %7d\n",
			stream.Name,
			vl.Median(), al.Median(),
			metrics.WinPercent(vl.Median(), al.Median()),
			vl.Percentile(95), al.Percentile(95),
			apparate.Accuracy*100,
			sys.Controller().TuneRounds,
		)
	}
	fmt.Println("\nnight videos (odd ids) are harder: exits move deeper and tuning")
	fmt.Println("fires more often, but the accuracy constraint holds on every video.")
}
