// Sentiment analysis: the paper's NLP classification scenario. Serves
// the Amazon and IMDB review streams through the BERT family on both
// serving platforms, showing that wins grow with model size and are
// insensitive to the platform underneath (§4.2, Table 4).
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exitsim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/serving"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	const n = 15000
	fmt.Println("sentiment analysis over review streams (MAF arrivals)")
	fmt.Printf("\n%-16s %-7s %-10s %9s %9s %8s %7s\n",
		"model", "dataset", "platform", "van_p50", "app_p50", "win", "acc")
	for _, name := range []string{"distilbert-base", "bert-base", "bert-large"} {
		m, err := model.ByName(name)
		if err != nil {
			panic(err)
		}
		for _, dataset := range []string{"amazon", "imdb"} {
			stream, err := workload.ByName(dataset, n, trace.TargetQPS(m), 7)
			if err != nil {
				panic(err)
			}
			kind := exitsim.KindAmazon
			if dataset == "imdb" {
				kind = exitsim.KindIMDB
			}
			for _, platform := range []serving.Platform{serving.Clockwork, serving.TFServe} {
				sys := core.New(m, kind, core.Config{Platform: platform, MaxBatch: 8})
				vanilla := sys.ServeVanilla(stream)
				apparate := sys.Serve(stream)
				vm, am := vanilla.Latencies().Median(), apparate.Latencies().Median()
				fmt.Printf("%-16s %-7s %-10s %7.1fms %7.1fms %7.1f%% %6.2f%%\n",
					name, dataset, platform, vm, am,
					metrics.WinPercent(vm, am), apparate.Accuracy*100)
			}
		}
	}
	fmt.Println("\nNLP wins are smaller than CV (queuing delays + weak inter-request")
	fmt.Println("continuity), and absolute savings grow with model size.")
}
