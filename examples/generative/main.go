// Generative serving: per-token early exits with synchronized parallel
// decoding (§3.4). Serves summarization and question answering through
// T5-large and the Llama-2 models, reporting time-per-token against
// vanilla decoding and the sequence-quality proxy.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exitsim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/workload"
)

func main() {
	cases := []struct {
		m    *model.Model
		kind exitsim.Kind
		wl   string
		n    int
	}{
		{model.T5Large(), exitsim.KindCNNDailyMail, "cnn-dailymail", 400},
		{model.T5Large(), exitsim.KindSQuAD, "squad", 600},
		{model.Llama27B(), exitsim.KindSQuAD, "squad", 1000},
		{model.Llama213B(), exitsim.KindSQuAD, "squad", 1000},
	}
	fmt.Println("generative serving with token-level exits + parallel decoding")
	fmt.Printf("\n%-12s %-14s %10s %10s %8s %9s %7s\n",
		"model", "workload", "van_tpt", "app_tpt", "win", "p95_ratio", "score")
	for _, c := range cases {
		stream, err := workload.GenByName(c.wl, c.n, 2, 9)
		if err != nil {
			panic(err)
		}
		sys := core.NewGen(c.m, c.kind, core.Config{})
		vanilla := sys.ServeVanilla(stream)
		apparate := sys.Serve(stream)
		vt, at := vanilla.TPT(), apparate.TPT()
		fmt.Printf("%-12s %-14s %8.2fms %8.2fms %7.1f%% %9.3f %7.3f\n",
			c.m.Name, c.wl, vt.Median(), at.Median(),
			metrics.WinPercent(vt.Median(), at.Median()),
			at.Percentile(95)/vt.Percentile(95),
			apparate.MeanScore)
	}
	fmt.Println("\nmedian TPT falls sharply; P95 can exceed vanilla slightly because")
	fmt.Println("non-exiting tokens catch up the deferred layers of exited tokens.")
}
